package graphrules

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestFacadeMVCCAndWAL drives the new MVCC surface end to end through the
// facade alone: batch epochs, snapshots, commit subscriptions, the metric
// maintainer, and WAL group commit with crash recovery.
func TestFacadeMVCCAndWAL(t *testing.T) {
	g := NewGraph("facade-mvcc")
	var wal bytes.Buffer
	w := NewGroupWAL(&wal, 2*time.Millisecond)
	detach := AttachWAL(g, w)

	var epochs int
	cancel := OnGraphCommit(g, func(d *GraphDelta) { epochs++ })

	b := NewBatch(g)
	n1 := b.AddNode([]string{"T"}, Props{"id": NewIntValue(1)})
	n2 := b.AddNode([]string{"T"}, Props{"id": NewIntValue(2)})
	b.AddEdge(n1.ID, n2.ID, []string{"REL"}, nil)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	g.AddNode([]string{"T"}, nil) // missing id

	snap := SnapshotOf(g)
	g.AddNode([]string{"T"}, Props{"id": NewIntValue(3)})
	if snap.NodeCount() != 3 || g.NodeCount() != 4 {
		t.Fatalf("snapshot %d / live %d", snap.NodeCount(), g.NodeCount())
	}
	if epochs != 3 {
		t.Fatalf("subscriber saw %d epochs, want 3", epochs)
	}
	cancel()

	// Maintained metrics through the facade.
	r, ok := ParseRuleNL("Each T node should have a id property.")
	if !ok {
		t.Fatal("rule NL did not parse")
	}
	m := NewMaintainer(g, []Rule{r})
	defer m.Attach()()
	g.AddNode([]string{"T"}, Props{"id": NewIntValue(4)})
	s := m.Scores()[0]
	if s.Err != nil || s.Counts.Support != 4 || s.Counts.Body != 5 {
		t.Fatalf("maintained score %+v err=%v", s.Counts, s.Err)
	}
	if st := m.Stats(); st.Epochs != 1 || st.Rescored != 1 {
		t.Fatalf("maintainer stats %+v", st)
	}

	// Recover from the WAL: only marker-closed epochs, and the tail of a
	// torn log is discarded.
	detach()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info, err := RecoverWAL("rec", bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn || rec.NodeCount() != g.NodeCount() || rec.EdgeCount() != g.EdgeCount() {
		t.Fatalf("recovered %d/%d (torn %v), want %d/%d",
			rec.NodeCount(), rec.EdgeCount(), info.Torn, g.NodeCount(), g.EdgeCount())
	}
	torn, info, err := RecoverWAL("torn", strings.NewReader(string(wal.Bytes())+`{"op":"add-n`))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn || torn.NodeCount() != g.NodeCount() {
		t.Fatalf("torn recovery: %+v, %d nodes", info, torn.NodeCount())
	}

	// Footprints through the facade.
	f, err := FootprintOf("MATCH (x:T) WHERE x.id IS NOT NULL RETURN count(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Wild() || !f.NodeLabels["T"] || !f.Keys["id"] {
		t.Fatalf("footprint %s", f)
	}
}
