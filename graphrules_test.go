package graphrules

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the README shows: build a
// graph, mine rules, query violations, explain a rule.
func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph("facade")
	var users []*Node
	for i := 0; i < 12; i++ {
		users = append(users, g.AddNode([]string{"User"}, Props{
			"id":   NewIntValue(int64(i % 11)), // one duplicate
			"name": NewStringValue("u" + string(rune('a'+i))),
		}))
	}
	for i := 0; i < 8; i++ {
		tw := g.AddNode([]string{"Tweet"}, Props{"id": NewIntValue(int64(100 + i))})
		g.MustAddEdge(users[i].ID, tw.ID, []string{"POSTS"}, nil)
	}

	res, err := Mine(g, MiningConfig{
		Model:         NewSimModel(LLaMA3(), 3),
		WindowTokens:  600,
		OverlapTokens: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined through the facade")
	}

	// Find the User-id uniqueness rule and drill into it.
	for _, mr := range res.Rules {
		if mr.Rule.DedupKey() != "unique:User.id" {
			continue
		}
		q, err := RuleViolations(mr.Rule, 10)
		if err != nil {
			t.Fatal(err)
		}
		vr, err := NewExecutor(g).Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if vr.Len() != 1 {
			t.Errorf("violating groups = %d, want 1", vr.Len())
		}
		expl := ExplainRule(mr.Rule, mr.Score.Counts)
		if !strings.Contains(expl, "unique id property") || !strings.Contains(expl, "confidence") {
			t.Errorf("explanation wrong: %s", expl)
		}
		return
	}
	t.Log("unique:User.id not in merged set (budget), checking any rule explains")
	expl := ExplainRule(res.Rules[0].Rule, res.Rules[0].Score.Counts)
	if expl == "" {
		t.Error("empty explanation")
	}
}

func TestFacadeDatasetAndQuery(t *testing.T) {
	g := Dataset("Cybersecurity", DefaultDatasetOptions())
	if g.NodeCount() != 953 {
		t.Fatalf("dataset size = %d", g.NodeCount())
	}
	res, err := NewExecutor(g).Run(`MATCH (u:User) RETURN count(*) AS n`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstInt("n") == 0 {
		t.Error("no users")
	}
	if ExtractSchema(g).NodeTotal != 953 {
		t.Error("schema totals wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset should panic")
		}
	}()
	Dataset("nope", DefaultDatasetOptions())
}

func TestFacadeSession(t *testing.T) {
	g := Dataset("Cybersecurity", DefaultDatasetOptions())
	s, err := NewSession(g, MiningConfig{Model: NewSimModel(Mixtral(), 2), Method: RAG})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pending()) == 0 {
		t.Fatal("session should have pending rules")
	}
	if err := s.Reject(s.Pending()[0].Rule.DedupKey()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refine(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBaseline(t *testing.T) {
	g := Dataset("WWC2019", DefaultDatasetOptions())
	res, err := BaselineMine(g, BaselineConfig{MinConfidence: 95})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) == 0 {
		t.Error("baseline found nothing")
	}
}

func TestFacadeValueConstructors(t *testing.T) {
	if NewBoolValue(true).String() != "true" ||
		NewIntValue(4).String() != "4" ||
		NewFloatValue(0.5).String() != "0.5" ||
		NewStringValue("x").Str() != "x" ||
		!NullValue.IsNull() {
		t.Error("value constructors wrong")
	}
	if len(DatasetNames()) != 3 {
		t.Error("DatasetNames wrong")
	}
}
