// Command rulemine runs the LLM consistency-rule mining pipeline on one of
// the paper's datasets (or a saved snapshot) and prints the mined rules
// with their support / coverage / confidence scores.
//
// Usage:
//
//	rulemine -dataset WWC2019 -model llama3 -method swa -mode zero
//	rulemine -snapshot graph.snap -model mixtral -method rag -mode few -v
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/report"
	"github.com/graphrules/graphrules/internal/resilience"
	"github.com/graphrules/graphrules/internal/storage"
	"github.com/graphrules/graphrules/internal/textenc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rulemine:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rulemine", flag.ContinueOnError)
	datasetName := fs.String("dataset", "WWC2019", "dataset to mine (WWC2019, Cybersecurity, Twitter)")
	snapshot := fs.String("snapshot", "", "binary snapshot file to mine instead of a generated dataset")
	modelName := fs.String("model", "llama3", "model profile: llama3 or mixtral")
	methodName := fs.String("method", "swa", "encoding method: swa (sliding window) or rag")
	modeName := fs.String("mode", "zero", "prompting: zero or few")
	encoderName := fs.String("encoder", "incident", "graph encoder: incident, adjacency or triplet")
	seed := fs.Int64("seed", 42, "model seed")
	graphSeed := fs.Int64("graph-seed", 42, "dataset generator seed")
	violations := fs.Float64("violations", 0.03, "dataset violation injection rate")
	verbose := fs.Bool("v", false, "print generated and corrected Cypher")
	asJSON := fs.Bool("json", false, "emit the full run report as JSON instead of text")
	tableName := fs.String("table", "", `print a summary table instead of the rule listing: "errors" (§4.4 category + lint analyzer census)`)
	scoreWorkers := fs.Int("score-workers", 0, "metric scoring worker pool (0 = Parallel's value, negative = GOMAXPROCS)")
	shardWorkers := fs.Int("shard-workers", 0, "partition anchor scans inside each scoring query across N workers (0 = serial)")
	morselSize := fs.Int("morsel-size", 0, "anchor candidates per work-stealing morsel in sharded scans (0 = default 256)")
	retries := fs.Int("retries", 0, "retry each failed LLM call up to N extra times (transient errors only)")
	callTimeout := fs.Duration("call-timeout", 0, "per-attempt LLM call deadline (0 = none); hung calls become retryable timeouts")
	bestEffort := fs.Bool("best-effort", false, "mine from surviving windows when some LLM calls fail instead of aborting")
	minWindowSuccess := fs.Float64("min-window-success", 0, "minimum fraction of windows that must succeed under -best-effort (0 = at least one)")
	deltaMetrics := fs.Bool("delta-metrics", false, "after mining, maintain the rule scores incrementally through a stream of graph mutations and report the refreshed aggregate")
	deltaEpochs := fs.Int("delta-epochs", 8, "mutation epochs to drive under -delta-metrics")
	deltaSeed := fs.Int64("delta-seed", 1, "mutation stream seed for -delta-metrics")
	maxRows := fs.Int("max-rows", 0, "per-query result row budget for metric scoring (0 = unlimited); over-budget rules report a typed evaluation error")
	memBudget := fs.Int64("mem-budget", 0, "per-query memory budget in bytes for metric scoring (0 = unlimited)")
	queryQueue := fs.Int("query-queue", 0, "admit at most N concurrent scoring queries with a bounded FIFO wait queue (0 = no admission control)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	if *snapshot != "" {
		var err error
		if g, err = storage.LoadFile(*snapshot); err != nil {
			return err
		}
	} else {
		gen, err := datasets.ByName(*datasetName)
		if err != nil {
			return err
		}
		g = gen(datasets.Options{Seed: *graphSeed, ViolationRate: *violations})
	}

	var profile llm.Profile
	switch strings.ToLower(*modelName) {
	case "llama3", "llama-3", "llama":
		profile = llm.LLaMA3()
	case "mixtral":
		profile = llm.Mixtral()
	default:
		return fmt.Errorf("unknown model %q (want llama3 or mixtral)", *modelName)
	}

	var method mining.Method
	switch strings.ToLower(*methodName) {
	case "swa", "sliding", "window":
		method = mining.SlidingWindow
	case "rag":
		method = mining.RAG
	default:
		return fmt.Errorf("unknown method %q (want swa or rag)", *methodName)
	}

	var mode prompt.Mode
	switch strings.ToLower(*modeName) {
	case "zero", "zero-shot":
		mode = prompt.ZeroShot
	case "few", "few-shot":
		mode = prompt.FewShot
	default:
		return fmt.Errorf("unknown mode %q (want zero or few)", *modeName)
	}

	encoder, ok := textenc.Encoders()[strings.ToLower(*encoderName)]
	if !ok {
		return fmt.Errorf("unknown encoder %q (want %v)", *encoderName, textenc.EncoderNames())
	}

	policy := mining.FailFast
	if *bestEffort {
		policy = mining.BestEffort
	}
	cfg := mining.Config{
		Model:            llm.NewSim(profile, *seed),
		Method:           method,
		Mode:             mode,
		Encoder:          encoder,
		ScoreWorkers:     *scoreWorkers,
		ShardWorkers:     *shardWorkers,
		MorselSize:       *morselSize,
		FailurePolicy:    policy,
		MinWindowSuccess: *minWindowSuccess,
		MaxRows:          *maxRows,
		MemoryBudget:     *memBudget,
		Resilience: resilience.Config{
			Retries:     *retries,
			CallTimeout: *callTimeout,
			Seed:        *seed,
		},
	}
	var gov *governor.Governor
	if *queryQueue > 0 {
		gov = governor.New(governor.Config{
			MaxConcurrent: *queryQueue,
			MaxQueue:      *queryQueue,
			QueueTimeout:  2 * time.Second,
		})
		cfg.Admission = gov
	}
	res, err := mining.Mine(g, cfg)
	if err != nil {
		return err
	}

	if *asJSON {
		return res.WriteJSON(out)
	}
	switch *tableName {
	case "":
	case "errors":
		fmt.Fprint(out, report.Census(res.ErrorCounts, res.LintCounts))
		return nil
	default:
		return fmt.Errorf("unknown table %q (want errors)", *tableName)
	}

	fmt.Fprintf(out, "Dataset %s: %d nodes, %d edges\n", g.Name(), g.NodeCount(), g.EdgeCount())
	fmt.Fprintf(out, "Model %s | %s | %s | encoder %s\n", res.Model, res.Method, res.Mode, res.Encoder)
	fmt.Fprintf(out, "LLM calls: %d | simulated mining time: %.2fs (+%.2fs translation) | wall clock: %s\n",
		res.Windows, res.MiningSeconds+res.IndexSeconds, res.TranslationSeconds, res.WallClock.Round(1000000))
	if res.Method == mining.SlidingWindow {
		fmt.Fprintf(out, "Patterns broken across window boundaries: %d\n", res.BrokenPatterns)
	}
	fmt.Fprintf(out, "Cypher correctness: %d/%d\n", res.CypherCorrect, res.CypherTotal)
	if len(res.WindowErrors) > 0 {
		fmt.Fprintf(out, "Windows lost to LLM failures: %d\n", len(res.WindowErrors))
		for _, we := range res.WindowErrors {
			fmt.Fprintf(out, "    window %d after %d attempt(s): %v\n", we.Window, we.Attempts, we.Err)
		}
	}
	if rs := res.Resilience; rs != nil && rs.Retry != nil && rs.Retry.Retries > 0 {
		fmt.Fprintf(out, "LLM retries: %d (%d call(s) exhausted all attempts)\n", rs.Retry.Retries, rs.Retry.Exhausted)
	}
	fmt.Fprintln(out)

	for i, mr := range res.Rules {
		fmt.Fprintf(out, "%2d. %s\n", i+1, mr.NL)
		fmt.Fprintf(out, "    kind=%s complexity=%d category=%s corrected=%v\n",
			mr.Rule.Kind(), mr.Rule.Complexity(), mr.Category, mr.Corrected)
		if mr.TranslateErr != nil {
			fmt.Fprintf(out, "    translation failed: %v\n", mr.TranslateErr)
		} else if mr.EvalErr != nil {
			fmt.Fprintf(out, "    evaluation failed: %v\n", mr.EvalErr)
		} else {
			fmt.Fprintf(out, "    support=%d coverage=%.2f%% confidence=%.2f%%\n",
				mr.Score.Counts.Support, mr.Score.Coverage, mr.Score.Confidence)
		}
		if *verbose {
			fmt.Fprintf(out, "    generated: %s\n", mr.Generated.Support)
			if mr.Corrected {
				fmt.Fprintf(out, "    corrected: %s\n", mr.Final.Support)
			}
		}
	}
	agg := res.Aggregate
	fmt.Fprintf(out, "\nAggregate: %d rules | mean support %.0f | mean coverage %.2f%% | mean confidence %.2f%%\n",
		agg.Rules, agg.MeanSupport, agg.MeanCoverage, agg.MeanConfidence)
	if gov != nil {
		fmt.Fprintf(out, "Governor: %s\n", gov.Stats())
	}

	if *deltaMetrics {
		return runDeltaMetrics(out, g, res, *deltaEpochs, *deltaSeed)
	}
	return nil
}

// runDeltaMetrics demonstrates incremental metric maintenance: the mined
// rules' scores are kept current through a seeded stream of graph
// mutations, re-scoring only the rules each epoch's delta can affect, and
// the final maintained state is verified against a full recompute.
func runDeltaMetrics(out io.Writer, g *graph.Graph, res *mining.Result, epochs int, seed int64) error {
	maintained := res.MaintainedRules()
	if len(maintained) == 0 {
		fmt.Fprintln(out, "\nDelta metrics: no successfully scored rules to maintain")
		return nil
	}
	ctx := context.Background()
	m := res.MaintainerCtx(ctx, g)
	detach := m.AttachCtx(ctx)
	defer detach()

	rng := rand.New(rand.NewSource(seed))
	labels := graph.ExtractSchema(g).NodeLabelNames()
	for e := 0; e < epochs; e++ {
		switch rng.Intn(3) {
		case 0:
			l := labels[rng.Intn(len(labels))]
			g.AddNode([]string{l}, graph.Props{"id": graph.NewInt(rng.Int63n(1 << 30))})
		case 1:
			ids := g.Nodes()
			g.RemoveNode(ids[rng.Intn(len(ids))])
		case 2:
			ids := g.Nodes()
			_ = g.SetNodeProp(ids[rng.Intn(len(ids))], "id", graph.NewInt(rng.Int63n(1<<30)))
		}
	}

	st := m.Stats()
	fmt.Fprintf(out, "\nDelta metrics: %d epochs | %d rule re-scores | %d provably unaffected (skipped)\n",
		st.Epochs, st.Rescored, st.Skipped)
	diffs, err := m.Diff(ctx)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(out, "  MISMATCH:", d)
		}
		return fmt.Errorf("delta metrics: %d maintained score(s) diverged from full recompute", len(diffs))
	}
	agg := m.Aggregate()
	fmt.Fprintf(out, "Maintained aggregate (verified against full recompute): %d rules | mean support %.0f | mean coverage %.2f%% | mean confidence %.2f%%\n",
		agg.Rules, agg.MeanSupport, agg.MeanCoverage, agg.MeanConfidence)
	return nil
}
