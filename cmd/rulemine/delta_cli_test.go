package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDeltaMetrics: -delta-metrics drives a mutation stream after the
// mining run, reports the maintenance stats, and verifies the maintained
// scores against a full recompute (a mismatch is a hard error).
func TestDeltaMetrics(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "Cybersecurity", "-delta-metrics", "-delta-epochs", "6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Delta metrics: 6 epochs") {
		t.Errorf("delta stats missing:\n%s", s)
	}
	if !strings.Contains(s, "Maintained aggregate (verified against full recompute)") {
		t.Errorf("verified aggregate missing:\n%s", s)
	}
	if strings.Contains(s, "MISMATCH") {
		t.Errorf("maintained scores diverged:\n%s", s)
	}
}
