package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/storage"
)

func TestRunDefaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "Cybersecurity"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Dataset Cybersecurity: 953 nodes, 4838 edges",
		"Llama-3", "Sliding Window Attention", "zero-shot",
		"Cypher correctness:",
		"Aggregate:",
		"confidence",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRAGMixtralVerbose(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "Cybersecurity", "-model", "mixtral", "-method", "rag", "-mode", "few", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Mixtral") || !strings.Contains(s, "RAG") || !strings.Contains(s, "few-shot") {
		t.Errorf("config not reflected:\n%s", s)
	}
	if !strings.Contains(s, "generated: ") {
		t.Error("-v should print generated queries")
	}
}

func TestRunFromSnapshot(t *testing.T) {
	g := datasets.Cybersecurity(datasets.DefaultOptions())
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := storage.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-snapshot", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "953 nodes") {
		t.Error("snapshot not loaded")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "Cybersecurity", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if decoded["dataset"] != "Cybersecurity" {
		t.Error("json dataset wrong")
	}
}

func TestRunGoverned(t *testing.T) {
	// Generous budgets plus admission control: every rule still scores and
	// the governor reconciles its counters in the printed summary.
	var out bytes.Buffer
	if err := run([]string{"-dataset", "Cybersecurity",
		"-max-rows", "1000000", "-mem-budget", "1073741824",
		"-query-queue", "2", "-score-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Governor:") {
		t.Errorf("governed run should print governor stats:\n%s", s)
	}
	if strings.Contains(s, "evaluation failed") {
		t.Errorf("generous budgets should not kill any query:\n%s", s)
	}
}

func TestRunTinyRowBudget(t *testing.T) {
	// A one-row budget kills broad scoring queries with the typed error,
	// surfaced per rule as an evaluation failure — the run itself succeeds.
	var out bytes.Buffer
	if err := run([]string{"-dataset", "Cybersecurity", "-max-rows", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-row budget") {
		t.Errorf("tiny row budget should surface budget kills:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-model", "gpt4"},
		{"-method", "teleport"},
		{"-mode", "many"},
		{"-encoder", "morse"},
		{"-snapshot", "/no/such/file"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
