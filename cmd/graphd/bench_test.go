package main

import (
	"testing"

	"github.com/graphrules/graphrules/internal/bolt"
)

// BenchmarkBoltStream measures end-to-end record streaming throughput
// over loopback TCP: one connection, RUN + PULL(-1) over a 5000-row
// streamed MATCH per iteration, reporting records/s.
func BenchmarkBoltStream(b *testing.B) {
	const rows = 5000
	addr, _, _, _, _ := startTestServer(b, rows)
	c, err := bolt.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("bench"); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, recs, err := c.RunAll(`MATCH (n:N) RETURN n.i AS i`, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != rows {
			b.Fatalf("streamed %d records, want %d", len(recs), rows)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*rows)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkBoltSessions measures full session setup cost: TCP connect,
// handshake, HELLO, one point query, GOODBYE. Reports sessions/s.
func BenchmarkBoltSessions(b *testing.B) {
	addr, _, _, _, _ := startTestServer(b, 100)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := bolt.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Hello("bench"); err != nil {
			b.Fatal(err)
		}
		_, recs, err := c.RunAll(`MATCH (n:N) WHERE n.i = $i RETURN n.i AS i`,
			map[string]any{"i": int64(i % 100)})
		if err != nil || len(recs) != 1 {
			b.Fatalf("point read: %d recs, %v", len(recs), err)
		}
		c.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}
