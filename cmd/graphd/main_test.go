package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/bolt"
)

// syncWriter lets the test read run()'s output while it is still being
// written from the server goroutine.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// listenAddr scans run()'s output for the "<what> listening on" line and
// returns the bound address.
func listenAddr(t *testing.T, out *syncWriter, what string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		sc := bufio.NewScanner(strings.NewReader(out.String()))
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, what+" listening on ") {
				continue
			}
			addr := line[strings.LastIndex(line, " ")+1:]
			addr = strings.TrimPrefix(addr, "http://")
			return strings.TrimSuffix(addr, "/metrics")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no %q listen line in output:\n%s", what, out.String())
	return ""
}

// TestGraphdLifecycle boots the full binary entry point on ephemeral
// ports, connects a Bolt client, scrapes the metrics endpoint, and shuts
// down via context cancellation.
func TestGraphdLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-metrics-addr", "127.0.0.1:0",
			"-dataset", "WWC2019",
			"-max-rows", "100000",
		}, out)
	}()

	boltAddr := listenAddr(t, out, "bolt")
	metricsAddr := listenAddr(t, out, "metrics")

	c, err := bolt.Dial(boltAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello("graphd-test"); err != nil {
		t.Fatal(err)
	}
	_, recs, err := c.RunAll(`MATCH (n) RETURN n LIMIT 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	c.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Governor.Admitted < 1 {
		t.Fatalf("metrics governor.admitted = %d, want >= 1", snap.Governor.Admitted)
	}
	if snap.Server.QueriesRun < 1 || snap.Server.RecordsOut < 5 {
		t.Fatalf("metrics server counters: %+v", snap.Server)
	}
	if snap.Graph.Nodes == 0 {
		t.Fatalf("metrics graph info empty: %+v", snap.Graph)
	}

	hz, err := http.Get(fmt.Sprintf("http://%s/healthz", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hz.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down on context cancellation")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("no shutdown line in output:\n%s", out.String())
	}
}

func TestGraphdBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-dataset", "NoSuchDataset"}, &syncWriter{}); err == nil {
		t.Fatal("run accepted an unknown dataset")
	}
	if err := run(context.Background(), []string{"-snapshot", "/nonexistent/graph.snap"}, &syncWriter{}); err == nil {
		t.Fatal("run accepted a missing snapshot file")
	}
}
