// Command graphd serves a property graph over the Bolt wire protocol,
// so stock Neo4j drivers and tools can run Cypher against the
// graphrules engine. Every connection gets an engine session: queries
// stream record-by-record under client flow control, pass governor
// admission, and run under the configured row/memory/deadline budgets;
// explicit transactions (BEGIN/COMMIT/ROLLBACK) are single-writer with
// snapshot rollback.
//
// Usage:
//
//	graphd -dataset Twitter                          # Bolt on :7687
//	graphd -snapshot graph.snap -addr :7687 -metrics-addr :7688
//	graphd -dataset WWC2019 -max-rows 100000 -query-timeout 5s
//
// The -metrics-addr endpoint serves GET /metrics: a JSON document with
// the governor counters (admitted/queued/rejected/killed/active), the
// Bolt server counters (connections, queries, records, failures,
// transactions) and graph size, plus GET /healthz for liveness.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/graphrules/graphrules/internal/bolt"
	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/storage"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphd", flag.ContinueOnError)
	addr := fs.String("addr", ":7687", "Bolt listen address")
	metricsAddr := fs.String("metrics-addr", "", "HTTP metrics listen address (empty = disabled)")
	datasetName := fs.String("dataset", "", "dataset to load (WWC2019, Cybersecurity, Twitter)")
	snapshot := fs.String("snapshot", "", "binary snapshot file to load")
	seed := fs.Int64("graph-seed", 42, "dataset generator seed")
	violations := fs.Float64("violations", 0.03, "dataset violation injection rate")
	shardWorkers := fs.Int("shard-workers", 0, "partition eligible MATCH anchor scans across N workers (0 = serial; serial queries stream)")
	queryTimeout := fs.Duration("query-timeout", 0, "kill any query running longer than this (0 = no limit)")
	maxRows := fs.Int("max-rows", 0, "kill any query emitting more than N rows with a typed budget error (0 = unlimited)")
	memBudget := fs.Int64("mem-budget", 0, "kill any query retaining more than ~N bytes (0 = unlimited)")
	maxConcurrent := fs.Int("max-concurrent", 64, "admit at most N concurrently executing queries")
	maxQueue := fs.Int("max-queue", 64, "queue at most N queries waiting for an execution slot")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "reject queries queued longer than this")
	walPath := fs.String("wal", "", "append every committed mutation epoch to this write-ahead log file")
	commitWindow := fs.Duration("commit-window", 0, "group-commit fsync window for -wal (0 = eager per-epoch sync)")
	pinSnapshot := fs.Bool("pin-snapshot", false, "pin each read-only query to the graph epoch current at its start")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	switch {
	case *snapshot != "":
		var err error
		if g, err = storage.LoadFile(*snapshot); err != nil {
			return err
		}
	case *datasetName != "":
		gen, err := datasets.ByName(*datasetName)
		if err != nil {
			return err
		}
		g = gen(datasets.Options{Seed: *seed, ViolationRate: *violations})
	default:
		g = graph.New("empty")
	}
	fmt.Fprintf(out, "graphd: loaded %s: %d nodes, %d edges\n", g.Name(), g.NodeCount(), g.EdgeCount())

	if *walPath != "" {
		f, err := os.OpenFile(*walPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		wal := storage.NewGroupWAL(f, *commitWindow)
		detach := storage.AttachWAL(g, wal)
		defer func() {
			detach()
			if err := wal.Close(); err != nil {
				fmt.Fprintln(out, "graphd: wal close:", err)
			}
			f.Close()
		}()
		fmt.Fprintf(out, "graphd: WAL %s (commit window %s)\n", *walPath, *commitWindow)
	}

	gov := governor.New(governor.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
	})
	ex := cypher.NewExecutor(g,
		cypher.WithShardWorkers(*shardWorkers),
		cypher.WithSnapshotPin(*pinSnapshot),
		cypher.WithMaxRows(*maxRows),
		cypher.WithMemoryBudget(*memBudget),
		cypher.WithQueryDeadline(*queryTimeout),
		cypher.WithAdmission(gov),
	)
	srv := bolt.NewServer(bolt.Config{
		Executor: ex,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(out, "graphd: "+format+"\n", a...)
		},
		// Signal-driven shutdown cancels in-flight queries, not just the
		// accept loop.
		BaseContext: func() context.Context { return ctx },
	})

	boltLn, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graphd: bolt listening on %s\n", boltLn.Addr())

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsLn, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			boltLn.Close()
			return err
		}
		metricsSrv = &http.Server{Handler: metricsMux(srv, gov, g)}
		go metricsSrv.Serve(metricsLn)
		fmt.Fprintf(out, "graphd: metrics listening on http://%s/metrics\n", metricsLn.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(boltLn) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "graphd: shutting down")
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	if metricsSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		metricsSrv.Shutdown(sctx)
		cancel()
	}
	return srv.Close()
}

// metricsSnapshot is the /metrics response document.
type metricsSnapshot struct {
	Governor governor.Stats   `json:"governor"`
	Server   bolt.ServerStats `json:"server"`
	Graph    graphInfo        `json:"graph"`
}

type graphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Epoch uint64 `json:"epoch"`
}

func metricsMux(srv *bolt.Server, gov *governor.Governor, g *graph.Graph) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := metricsSnapshot{
			Governor: gov.Stats(),
			Server:   srv.Stats(),
			Graph: graphInfo{
				Name:  g.Name(),
				Nodes: g.NodeCount(),
				Edges: g.EdgeCount(),
				Epoch: g.Epoch(),
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
