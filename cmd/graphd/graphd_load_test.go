package main

// Load harness: N concurrent Bolt client sessions over real loopback
// TCP, mixed read/write/transaction/budget-kill traffic, run under
// -race in CI. Afterwards the governor counters must reconcile
// (admitted == completed + killed, nothing active) and a disconnect
// storm — connections dropped mid-stream without GOODBYE — must leak no
// goroutines and leave the transaction lock free.

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/bolt"
	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
)

// startTestServer brings up an in-process graphd core (graph + governor
// + executor + Bolt server) on a loopback listener.
func startTestServer(t testing.TB, nodes int, opts ...cypher.Option) (addr string, gov *governor.Governor, ex *cypher.Executor, srv *bolt.Server, g *graph.Graph) {
	t.Helper()
	g = graph.New("load")
	var prev *graph.Node
	for i := 0; i < nodes; i++ {
		n := g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
		if prev != nil {
			g.MustAddEdge(prev.ID, n.ID, []string{"NEXT"}, nil)
		}
		prev = n
	}
	gov = governor.New(governor.Config{MaxConcurrent: 8, MaxQueue: 32, QueueTimeout: 5 * time.Second})
	ex = cypher.NewExecutor(g, append([]cypher.Option{cypher.WithAdmission(gov)}, opts...)...)
	srv = bolt.NewServer(bolt.Config{Executor: ex})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), gov, ex, srv, g
}

// session runs one client's mixed workload.
func session(addr string, id, iters int) error {
	c, err := bolt.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Hello(fmt.Sprintf("load-%d", id)); err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		switch i % 4 {
		case 0: // pipelined streamed read: RUN and PULL in one flight
			if err := c.SendRun(`MATCH (n:N) RETURN n.i AS i LIMIT 50`, nil); err != nil {
				return err
			}
			if err := c.SendPull(-1); err != nil {
				return err
			}
			if _, err := c.RecvSummary(); err != nil {
				return fmt.Errorf("session %d iter %d run: %w", id, i, err)
			}
			recs, _, _, err := c.RecvStream()
			if err != nil {
				return fmt.Errorf("session %d iter %d pull: %w", id, i, err)
			}
			if len(recs) != 50 {
				return fmt.Errorf("session %d iter %d: %d records, want 50", id, i, len(recs))
			}
		case 1: // paged read with early DISCARD
			if _, err := c.Run(`MATCH (a:N)-[:NEXT]->(b:N) RETURN a.i AS x`, nil); err != nil {
				return err
			}
			if _, _, _, err := c.Pull(10); err != nil {
				return err
			}
			if err := c.Send(0x2F, map[string]any{}); err != nil { // DISCARD
				return err
			}
			if _, err := c.RecvSummary(); err != nil {
				return err
			}
		case 2: // transaction: create then roll back (no net graph growth)
			if err := c.Begin(); err != nil {
				return err
			}
			if _, _, err := c.RunAll(fmt.Sprintf(`CREATE (t:Tmp {s: %d})`, id), nil); err != nil {
				return err
			}
			if err := c.Rollback(); err != nil {
				return err
			}
		case 3: // parameterized point read
			_, recs, err := c.RunAll(`MATCH (n:N) WHERE n.i = $i RETURN n.i AS i`,
				map[string]any{"i": int64(i % 100)})
			if err != nil {
				return err
			}
			if len(recs) != 1 {
				return fmt.Errorf("session %d iter %d: point read %d records", id, i, len(recs))
			}
		}
	}
	return nil
}

func TestLoadConcurrentSessions(t *testing.T) {
	addr, gov, _, srv, g := startTestServer(t, 400)

	const sessions = 12
	const iters = 16
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs <- session(addr, id, iters)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := gov.Stats()
	if st.Active != 0 {
		t.Fatalf("governor still has %d active queries", st.Active)
	}
	if st.Admitted != st.Completed+st.Killed {
		t.Fatalf("governor counters do not reconcile: %+v", st)
	}
	if st.Admitted < sessions*iters {
		t.Fatalf("admitted %d queries, expected at least %d", st.Admitted, sessions*iters)
	}
	if n := len(g.NodesWithLabel("Tmp")); n != 0 {
		t.Fatalf("%d Tmp nodes leaked past rollback", n)
	}
	// Handlers unwind asynchronously after the clients' GOODBYE.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ConnectionsActive != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ss := srv.Stats(); ss.ConnectionsActive != 0 {
		t.Fatalf("%d connections still active", ss.ConnectionsActive)
	}
}

// TestLoadBudgetKillsUnderConcurrency mixes budget-killed queries with
// healthy ones; kills must map to the typed transient code and the
// governor must count them as kills yet still reconcile.
func TestLoadBudgetKillsUnderConcurrency(t *testing.T) {
	addr, gov, _, _, _ := startTestServer(t, 300, cypher.WithMaxRows(100))

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := bolt.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Hello("kill"); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 6; i++ {
				// Over-budget scan: must fail with the typed code.
				_, _, err := c.RunAll(`MATCH (n:N) RETURN n.i AS i`, nil)
				var sf *bolt.ServerFailure
				if !errors.As(err, &sf) || sf.Code != "Neo.TransientError.General.ResourceExhausted" {
					errs <- fmt.Errorf("session %d: err = %v, want ResourceExhausted", id, err)
					return
				}
				if err := c.Reset(); err != nil {
					errs <- err
					return
				}
				// In-budget read still works on the same connection.
				if _, recs, err := c.RunAll(`MATCH (n:N) RETURN n.i AS i LIMIT 10`, nil); err != nil || len(recs) != 10 {
					errs <- fmt.Errorf("session %d: healthy read: %d recs, %v", id, len(recs), err)
					return
				}
			}
			errs <- nil
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := gov.Stats()
	if st.Active != 0 || st.Admitted != st.Completed+st.Killed {
		t.Fatalf("governor counters do not reconcile: %+v", st)
	}
	if st.Killed < 8*6 {
		t.Fatalf("killed %d, want at least %d budget kills", st.Killed, 8*6)
	}
}

// TestLoadDisconnectStorm drops connections mid-stream and mid-
// transaction without GOODBYE; the server must release every stream,
// slot and lock, and leak no goroutines.
func TestLoadDisconnectStorm(t *testing.T) {
	addr, gov, ex, srv, g := startTestServer(t, 2000)

	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for s := 0; s < 10; s++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c, err := bolt.Dial(addr)
				if err != nil {
					return
				}
				if _, err := c.Hello("storm"); err != nil {
					c.Close()
					return
				}
				switch id % 3 {
				case 0: // drop mid-stream: scan far larger than the cursor buffer
					c.SendRun(`MATCH (a:N), (b:N) RETURN a.i AS x`, nil)
					c.SendPull(1)
				case 1: // drop mid-transaction with uncommitted writes
					c.Begin()
					c.RunAll(`CREATE (t:Storm {s: 1})`, nil)
				case 2: // drop between messages
					c.RunAll(`MATCH (n:N) RETURN n.i AS i LIMIT 5`, nil)
				}
				// Abrupt close: no GOODBYE, no drain.
				c.CloseAbrupt()
			}(s)
		}
		wg.Wait()
	}

	// The handlers unwind asynchronously; wait for the governor and the
	// goroutine count to settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if gov.Stats().Active == 0 && runtime.NumGoroutine() <= before+4 &&
			srv.Stats().ConnectionsActive == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := gov.Stats()
	if st.Active != 0 {
		t.Fatalf("governor still has %d active queries after the storm", st.Active)
	}
	if st.Admitted != st.Completed+st.Killed {
		t.Fatalf("governor counters do not reconcile: %+v", st)
	}
	if n := runtime.NumGoroutine(); n > before+4 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, n,
			buf[:runtime.Stack(buf, true)])
	}
	if n := len(g.NodesWithLabel("Storm")); n != 0 {
		t.Fatalf("%d Storm nodes survived dropped transactions", n)
	}
	// The transaction lock must be free: a fresh session can Begin.
	s := ex.OpenSession()
	defer s.Close()
	if err := s.Begin(nil); err != nil {
		t.Fatalf("transaction lock leaked by the storm: %v", err)
	}
}
