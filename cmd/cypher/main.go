// Command cypher loads a property graph (a generated dataset or a
// snapshot) and executes Cypher queries against it: a single -q query or an
// interactive REPL on stdin.
//
// Usage:
//
//	cypher -dataset Twitter -q 'MATCH (u:User)-[:FOLLOWS]->(u) RETURN count(*) AS selfFollows'
//	cypher -snapshot graph.snap          # REPL
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
	"github.com/graphrules/graphrules/internal/storage"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cypher:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("cypher", flag.ContinueOnError)
	datasetName := fs.String("dataset", "", "dataset to load (WWC2019, Cybersecurity, Twitter)")
	snapshot := fs.String("snapshot", "", "binary snapshot file to load")
	query := fs.String("q", "", "single query to run (omit for a REPL)")
	seed := fs.Int64("graph-seed", 42, "dataset generator seed")
	violations := fs.Float64("violations", 0.03, "dataset violation injection rate")
	shardWorkers := fs.Int("shard-workers", 0, "partition eligible MATCH anchor scans across N workers (0 = serial)")
	morselSize := fs.Int("morsel-size", 0, "anchor candidates per work-stealing morsel in sharded scans (0 = default 256)")
	noReorder := fs.Bool("no-reorder", false, "disable cost-based pattern-part ordering")
	noRangePushdown := fs.Bool("no-range-pushdown", false, "disable ordered-index range seeks for inequality/STARTS WITH predicates")
	queryTimeout := fs.Duration("query-timeout", 0, "abort any query running longer than this (0 = no limit)")
	maxRows := fs.Int("max-rows", 0, "kill any query materializing more than N rows with a typed budget error (0 = unlimited)")
	memBudget := fs.Int64("mem-budget", 0, "kill any query retaining more than ~N bytes (rows + aggregate state; 0 = unlimited)")
	queryQueue := fs.Int("query-queue", 0, "admit at most N concurrent queries, with an N-deep FIFO wait queue and 2s queue timeout (0 = ungated)")
	lintOnly := fs.Bool("lint", false, "lint the -q query against the graph's schema instead of executing it (exit 1 on error-severity findings)")
	walPath := fs.String("wal", "", "append every committed mutation epoch to this write-ahead log file")
	commitWindow := fs.Duration("commit-window", 0, "group-commit fsync window for -wal (0 = flush and sync eagerly per epoch)")
	replay := fs.String("replay", "", "recover the graph from this WAL file (exactly the epochs closed by a commit marker)")
	pinSnapshot := fs.Bool("pin-snapshot", false, "pin each read-only query to the graph epoch current at its start (stable scans under concurrent writers)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		var info storage.RecoveryInfo
		g, info, err = storage.RecoverReplay("recovered", f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Recovered %d record(s) through epoch %d", info.Applied, info.Epoch)
		if info.Discarded > 0 || info.Torn {
			fmt.Fprintf(out, " (discarded %d uncommitted record(s), torn tail: %v)", info.Discarded, info.Torn)
		}
		fmt.Fprintln(out)
	case *snapshot != "":
		var err error
		if g, err = storage.LoadFile(*snapshot); err != nil {
			return err
		}
	case *datasetName != "":
		gen, err := datasets.ByName(*datasetName)
		if err != nil {
			return err
		}
		g = gen(datasets.Options{Seed: *seed, ViolationRate: *violations})
	default:
		g = graph.New("empty")
	}
	fmt.Fprintf(out, "Loaded %s: %d nodes, %d edges\n", g.Name(), g.NodeCount(), g.EdgeCount())

	if *walPath != "" {
		f, err := os.OpenFile(*walPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		wal := storage.NewGroupWAL(f, *commitWindow)
		detach := storage.AttachWAL(g, wal)
		defer func() {
			detach()
			if err := wal.Close(); err != nil {
				fmt.Fprintln(out, "wal close:", err)
			}
			f.Close()
		}()
		if *commitWindow > 0 {
			fmt.Fprintf(out, "WAL %s (group commit, %s window)\n", *walPath, *commitWindow)
		} else {
			fmt.Fprintf(out, "WAL %s (eager sync)\n", *walPath)
		}
	}

	opts := []cypher.Option{
		cypher.WithShardWorkers(*shardWorkers),
		cypher.WithMorselSize(*morselSize),
		cypher.WithReorder(!*noReorder),
		cypher.WithRangePushdown(!*noRangePushdown),
		cypher.WithSnapshotPin(*pinSnapshot),
		cypher.WithMaxRows(*maxRows),
		cypher.WithMemoryBudget(*memBudget),
	}
	var gov *governor.Governor
	if *queryQueue > 0 {
		gov = governor.New(governor.Config{
			MaxConcurrent: *queryQueue,
			MaxQueue:      *queryQueue,
			QueueTimeout:  2 * time.Second,
		})
		opts = append(opts, cypher.WithAdmission(gov))
	}
	ex := cypher.NewExecutor(g, opts...)
	sess := ex.OpenSession()
	defer sess.Close()
	if *lintOnly {
		if *query == "" {
			return fmt.Errorf("-lint requires -q")
		}
		diags := lint.Source(*query, graph.ExtractSchema(g), lint.Options{})
		printDiagnostics(out, *query, diags)
		if lint.HasError(diags) {
			return fmt.Errorf("%d lint finding(s)", len(diags))
		}
		return nil
	}
	if *query != "" {
		return runQuery(sess, gov, *query, *queryTimeout, out, false)
	}

	fmt.Fprintln(out, `Interactive Cypher ("exit" quits; "schema", "stats", "explain <query>", "lint <query>", "profile <query>", "shard <n>", "morsel <n>", "limit <rows> <bytes>" and "governor" inspect/configure; "begin", "commit", "rollback" bracket a transaction)`)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == "exit" || line == "quit":
			return nil
		case line == "schema":
			fmt.Fprint(out, graph.ExtractSchema(g).Describe())
			continue
		case line == "stats":
			fmt.Fprint(out, graph.ComputeStats(g).String())
			continue
		case strings.HasPrefix(line, "shard "):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, "shard "), "%d", &n); err != nil {
				fmt.Fprintln(out, "error: shard requires an integer worker count")
			} else {
				ex.SetShardWorkers(n)
				fmt.Fprintf(out, "shard workers: %d\n", ex.ShardWorkerCount())
			}
			continue
		case strings.HasPrefix(line, "morsel "):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, "morsel "), "%d", &n); err != nil {
				fmt.Fprintln(out, "error: morsel requires an integer size")
			} else {
				cypher.WithMorselSize(n)(ex)
				fmt.Fprintf(out, "morsel size: %d\n", ex.MorselSize())
			}
			continue
		case strings.HasPrefix(line, "limit "):
			var rows int
			var mem int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, "limit "), "%d %d", &rows, &mem); err != nil {
				fmt.Fprintln(out, "error: limit requires <max rows> <memory bytes> (0 disables each)")
			} else {
				cypher.WithMaxRows(rows)(ex)
				cypher.WithMemoryBudget(mem)(ex)
				fmt.Fprintf(out, "budgets: max rows %d, memory %d bytes\n", rows, mem)
			}
			continue
		case line == "begin":
			if err := sess.Begin(context.Background()); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "transaction open (single writer; rollback restores the pre-transaction state)")
			}
			continue
		case line == "commit":
			if err := sess.Commit(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "committed")
			}
			continue
		case line == "rollback":
			if err := sess.Rollback(); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "rolled back")
			}
			continue
		case line == "governor":
			if gov == nil {
				fmt.Fprintln(out, "no admission governor (start with -query-queue N)")
			} else {
				fmt.Fprintln(out, gov.Stats().String())
			}
			continue
		case strings.HasPrefix(line, "lint "):
			src := strings.TrimSpace(strings.TrimPrefix(line, "lint "))
			diags := lint.Source(src, graph.ExtractSchema(g), lint.Options{})
			if len(diags) == 0 {
				fmt.Fprintln(out, "clean")
			} else {
				printDiagnostics(out, src, diags)
			}
			continue
		case strings.HasPrefix(line, "explain "):
			plan, err := ex.Explain(strings.TrimPrefix(line, "explain "))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprint(out, plan)
			}
			continue
		case strings.HasPrefix(line, "profile "):
			if err := runQuery(sess, gov, strings.TrimPrefix(line, "profile "), *queryTimeout, out, true); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
			continue
		}
		if err := runQuery(sess, gov, line, *queryTimeout, out, false); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}

// printDiagnostics renders lint findings with their source span and, where a
// machine-applicable fix exists, the fixed query.
func printDiagnostics(out io.Writer, src string, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(out, d.String())
		if s, e := d.Span.Start, d.Span.End; s >= 0 && e <= len(src) && s < e {
			fmt.Fprintf(out, "  %s\n", src[s:e])
		}
		if d.Fix != nil {
			if fixed, err := lint.ApplyFix(src, d.Fix); err == nil {
				fmt.Fprintf(out, "  fix (%s): %s\n", d.Fix.Message, fixed)
			}
		}
	}
}

// runQuery streams one query through the session's cursor: rows print as
// the engine produces them (the first 50; the rest are drained and
// counted), and the closing summary carries the stats and any budget
// kill, which arrives after whatever partial rows were streamed.
func runQuery(sess *cypher.Session, gov *governor.Governor, src string, timeout time.Duration, out io.Writer, profile bool) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	cur, err := sess.Run(ctx, src, nil)
	if err != nil {
		if profile && gov != nil {
			fmt.Fprintln(out, "governor:", gov.Stats().String())
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("query exceeded the %s time limit", timeout)
		}
		return err
	}
	defer cur.Close()

	const maxDisplay = 50
	cols := cur.Columns()
	if len(cols) > 0 {
		fmt.Fprintln(out, strings.Join(cols, "\t"))
	}
	rows := 0
	for cur.Next() {
		rows++
		if rows > maxDisplay {
			continue
		}
		row := cur.Record()
		cells := make([]string, len(row))
		for j, d := range row {
			cells[j] = d.Display()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
	}
	if rows > maxDisplay {
		fmt.Fprintf(out, "... (%d more rows)\n", rows-maxDisplay)
	}
	res, err := cur.Summary()
	elapsed := time.Since(start)
	if profile && res != nil {
		fmt.Fprint(out, res.Exec.String())
		if gov != nil {
			fmt.Fprintln(out, "governor:", gov.Stats().String())
		}
	}
	if err != nil {
		var re *cypher.ResourceExhaustedError
		if errors.As(err, &re) {
			fmt.Fprintf(out, "budget kill: %s budget exceeded (limit %d, used %d)\n", re.Resource, re.Limit, re.Used)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("query exceeded the %s time limit", timeout)
		}
		return err
	}
	st := res.Stats
	if st.NodesCreated+st.EdgesCreated+st.NodesDeleted+st.EdgesDeleted+st.PropertiesSet+st.LabelsAdded > 0 {
		fmt.Fprintf(out, "(created %d nodes, %d rels; deleted %d nodes, %d rels; set %d props)\n",
			st.NodesCreated, st.EdgesCreated, st.NodesDeleted, st.EdgesDeleted, st.PropertiesSet)
	}
	fmt.Fprintf(out, "%d row(s) in %s\n", rows, elapsed.Round(time.Microsecond))
	return nil
}
