package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSingleQuery(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "Cybersecurity", "-q", "MATCH (u:User) RETURN count(*) AS n"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Loaded Cybersecurity") || !strings.Contains(s, "400") {
		t.Errorf("output wrong:\n%s", s)
	}
	if !strings.Contains(s, "1 row(s)") {
		t.Error("row count missing")
	}
}

func TestREPL(t *testing.T) {
	input := strings.Join([]string{
		"",
		"schema",
		"stats",
		"explain MATCH (u:User) RETURN count(*) AS n",
		"explain BROKEN (",
		"MATCH (u:User) RETURN count(*) AS n",
		"profile MATCH (u:User) RETURN count(*) AS n",
		"profile BROKEN (",
		"THIS IS NOT CYPHER",
		"exit",
	}, "\n")
	var out bytes.Buffer
	err := run([]string{"-dataset", "Cybersecurity"}, strings.NewReader(input), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Node labels:") {
		t.Error("schema command failed")
	}
	if !strings.Contains(s, "MaxInDegree") {
		t.Error("stats command failed")
	}
	if !strings.Contains(s, "NodeByLabelScan(u:User)") {
		t.Error("explain command failed")
	}
	if !strings.Contains(s, "plan cache hit: true") || !strings.Contains(s, "count fast path: true") {
		t.Errorf("profile command failed:\n%s", s)
	}
	if !strings.Contains(s, "error:") {
		t.Error("bad query should print an error, not abort")
	}
	if !strings.Contains(s, "400") {
		t.Error("query result missing")
	}
}

// TestREPLTransactions drives begin/commit/rollback: committed writes
// persist in the session, rolled-back ones vanish, and transaction
// commands out of order report errors instead of aborting the REPL.
func TestREPLTransactions(t *testing.T) {
	input := strings.Join([]string{
		"commit", // no transaction open: error line, REPL continues
		"begin",
		"CREATE (a:Keep {id: 1})",
		"commit",
		"begin",
		"CREATE (b:Drop {id: 2})",
		"rollback",
		"MATCH (n:Keep) RETURN count(*) AS kept",
		"MATCH (n:Drop) RETURN count(*) AS dropped",
		"exit",
	}, "\n")
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "error:") {
		t.Error("commit without a transaction should print an error")
	}
	if !strings.Contains(s, "transaction open") || !strings.Contains(s, "committed") ||
		!strings.Contains(s, "rolled back") {
		t.Errorf("transaction command feedback missing:\n%s", s)
	}
	// kept count 1, dropped count 0, each under its own header.
	if !strings.Contains(s, "kept\n1") {
		t.Errorf("committed write lost:\n%s", s)
	}
	if !strings.Contains(s, "dropped\n0") {
		t.Errorf("rolled-back write survived:\n%s", s)
	}
}

func TestREPLEOF(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Loaded empty") {
		t.Error("empty graph default missing")
	}
}

func TestMutationStats(t *testing.T) {
	var out bytes.Buffer
	input := "CREATE (a:X {id: 1})-[:R]->(b:X {id: 2})\nexit\n"
	if err := run(nil, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "created 2 nodes, 1 rels") {
		t.Errorf("mutation stats missing:\n%s", out.String())
	}
}

func TestRowTruncation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "Cybersecurity", "-q", "MATCH (u:User) RETURN u.id AS id"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "more rows") {
		t.Error("long results should truncate with a notice")
	}
}

func TestBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-snapshot", "/no/such"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing snapshot should fail")
	}
	if err := run([]string{"-q", "BROKEN ("}, strings.NewReader(""), &out); err == nil {
		t.Error("broken single query should fail")
	}
}
