package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWALWriteThenReplay: mutations run with -wal land in the log file,
// and -replay rebuilds the graph from exactly the committed epochs.
func TestWALWriteThenReplay(t *testing.T) {
	walFile := filepath.Join(t.TempDir(), "graph.wal")

	input := strings.Join([]string{
		"CREATE (a:City {name: 'Oslo'}) RETURN a",
		"CREATE (b:City {name: 'Bergen'}) RETURN b",
		"MATCH (c:City) RETURN count(c) AS n",
		"exit",
	}, "\n")
	var out bytes.Buffer
	if err := run([]string{"-wal", walFile, "-commit-window", "5ms"},
		strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "group commit, 5ms window") {
		t.Errorf("WAL banner missing:\n%s", out.String())
	}
	if fi, err := os.Stat(walFile); err != nil || fi.Size() == 0 {
		t.Fatalf("WAL file empty or missing: %v", err)
	}

	out.Reset()
	if err := run([]string{"-replay", walFile, "-q", "MATCH (c:City) RETURN count(c) AS n"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Recovered") {
		t.Errorf("recovery banner missing:\n%s", s)
	}
	if !strings.Contains(s, "Loaded recovered: 2 nodes, 0 edges") {
		t.Errorf("replayed graph wrong:\n%s", s)
	}
}

// TestWALReplayTornTail: a torn trailing record is discarded and reported,
// and the committed prefix survives.
func TestWALReplayTornTail(t *testing.T) {
	walFile := filepath.Join(t.TempDir(), "torn.wal")
	var out bytes.Buffer
	if err := run([]string{"-wal", walFile, "-q", "CREATE (a:K) RETURN a"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	// Append a fragment with no trailing newline: a torn final write.
	if err := os.WriteFile(walFile, append(data, []byte(`{"op":"add-node"`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-replay", walFile, "-q", "MATCH (a:K) RETURN count(a) AS n"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "torn tail: true") {
		t.Errorf("torn tail not reported:\n%s", s)
	}
	if !strings.Contains(s, "Loaded recovered: 1 nodes, 0 edges") {
		t.Errorf("committed prefix lost:\n%s", s)
	}
}

// TestPinSnapshotFlag: the flag parses and queries still run.
func TestPinSnapshotFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "Cybersecurity", "-pin-snapshot",
		"-q", "MATCH (u:User) RETURN count(*) AS n"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "400") {
		t.Errorf("pinned query result missing:\n%s", out.String())
	}
}
