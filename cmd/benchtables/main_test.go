package main

import "testing"

func TestSingleTable(t *testing.T) {
	if err := run([]string{"-table", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestNarrativeTables(t *testing.T) {
	if err := run([]string{"-table", "errors", "-datasets", "Cybersecurity"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "boundaries", "-datasets", "Cybersecurity"}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexTable(t *testing.T) {
	if err := run([]string{"-table", "index", "-bench-file", "../../BENCH_index.json"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-table", "index", "-bench-file", "no-such-file.json"}); err == nil {
		t.Error("missing bench file should fail")
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-table", "99", "-datasets", "Cybersecurity"}); err == nil {
		t.Error("unknown table should fail")
	}
	if err := run([]string{"-datasets", "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}
