// Command benchtables regenerates every table of the paper's evaluation
// section (Tables 1-6), plus the §4.4 error census and §4.5 boundary audit,
// by running the full experimental grid.
//
// Usage:
//
//	benchtables                       # everything, all three datasets
//	benchtables -table 2              # only Table 2 (runs WWC2019)
//	benchtables -datasets WWC2019,Cybersecurity
//	benchtables -table index           # recorded index-seek benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	table := fs.String("table", "all", "which table to regenerate: 1-6, errors, boundaries, index or all")
	benchFile := fs.String("bench-file", "BENCH_index.json", "recorded index benchmark file rendered by -table index")
	names := fs.String("datasets", "", "comma-separated dataset subset (default: all)")
	seed := fs.Int64("seed", 42, "model seed")
	graphSeed := fs.Int64("graph-seed", 42, "dataset generator seed")
	violations := fs.Float64("violations", 0.03, "violation injection rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := datasets.Options{Seed: *graphSeed, ViolationRate: *violations}

	if *table == "index" {
		t, err := report.IndexBenchTable(*benchFile)
		if err != nil {
			return err
		}
		fmt.Print(t)
		return nil
	}

	if *table == "1" {
		t1, err := report.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Print(t1)
		return nil
	}

	var subset []string
	if *names != "" {
		subset = strings.Split(*names, ",")
	}
	// Single-table runs only need their own dataset.
	switch *table {
	case "2":
		subset = []string{"WWC2019"}
	case "3":
		subset = []string{"Cybersecurity"}
	case "4":
		subset = []string{"Twitter"}
	}

	start := time.Now()
	grid, err := report.RunAll(subset, opts, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "grid of %d runs completed in %s\n\n", len(grid.Cells), time.Since(start).Round(time.Millisecond))

	printed := false
	show := func(want string, render func() string) {
		if *table == want || *table == "all" {
			if printed {
				fmt.Println()
			}
			fmt.Print(render())
			printed = true
		}
	}

	if *table == "all" {
		t1, err := report.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Print(t1)
		printed = true
	}
	for _, name := range grid.Datasets() {
		name := name
		no := report.TableForDataset(name)
		show(fmt.Sprint(no), func() string { return grid.MetricsTable(name, no) })
	}
	show("5", grid.TimeTable)
	show("6", grid.CorrectnessTable)
	show("errors", grid.ErrorCensus)
	show("boundaries", grid.Boundaries)
	if !printed {
		return fmt.Errorf("nothing to print for -table %q", *table)
	}
	return nil
}
