package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/graphrules/graphrules/internal/storage"
)

func TestTable1Print(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cyber.snap")
	if err := run([]string{"-dataset", "Cybersecurity", "-out", path}); err != nil {
		t.Fatal(err)
	}
	g, err := storage.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 953 || g.EdgeCount() != 4838 {
		t.Errorf("snapshot sizes = %d/%d", g.NodeCount(), g.EdgeCount())
	}
}

func TestJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	if err := run([]string{"-dataset", "Cybersecurity", "-format", "json", "-out", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := storage.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 953 {
		t.Error("json export wrong")
	}
}

func TestCSVExport(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cyber")
	if err := run([]string{"-dataset", "Cybersecurity", "-format", "csv", "-out", base}); err != nil {
		t.Fatal(err)
	}
	nodes, err := os.Open(base + "_nodes.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer nodes.Close()
	edges, err := os.Open(base + "_edges.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer edges.Close()
	g, err := storage.ReadCSV("cyber", nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 4838 {
		t.Error("csv export wrong")
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-out", "/tmp/x.snap"},                                           // missing dataset
		{"-dataset", "nope", "-out", "/tmp/x.snap"},                       // unknown dataset
		{"-dataset", "Cybersecurity", "-format", "xml", "-out", "/tmp/x"}, // unknown format
		{"-bogus-flag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
