// Command graphgen generates the paper's evaluation datasets and exports
// them as binary snapshots, JSON or CSV; with no -out it prints Table 1.
//
// Usage:
//
//	graphgen                                  # print Table 1 from live graphs
//	graphgen -dataset Twitter -out tw.snap    # binary snapshot
//	graphgen -dataset WWC2019 -format json -out wwc.json
//	graphgen -dataset Cybersecurity -format csv -out cyber   # cyber_nodes.csv + cyber_edges.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/report"
	"github.com/graphrules/graphrules/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	datasetName := fs.String("dataset", "", "dataset to generate (WWC2019, Cybersecurity, Twitter)")
	out := fs.String("out", "", "output path (prints Table 1 when empty)")
	format := fs.String("format", "snapshot", "output format: snapshot, json or csv")
	seed := fs.Int64("seed", 42, "generator seed")
	violations := fs.Float64("violations", 0.03, "violation injection rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := datasets.Options{Seed: *seed, ViolationRate: *violations}

	if *out == "" {
		table, err := report.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Print(table)
		return nil
	}

	if *datasetName == "" {
		return fmt.Errorf("-dataset is required with -out")
	}
	gen, err := datasets.ByName(*datasetName)
	if err != nil {
		return err
	}
	g := gen(opts)

	switch *format {
	case "snapshot":
		if err := storage.SaveFile(*out, g); err != nil {
			return err
		}
	case "json":
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := storage.WriteJSON(f, g); err != nil {
			return err
		}
	case "csv":
		nf, err := os.Create(*out + "_nodes.csv")
		if err != nil {
			return err
		}
		defer nf.Close()
		ef, err := os.Create(*out + "_edges.csv")
		if err != nil {
			return err
		}
		defer ef.Close()
		if err := storage.WriteNodesCSV(nf, g); err != nil {
			return err
		}
		if err := storage.WriteEdgesCSV(ef, g); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Printf("wrote %s (%d nodes, %d edges) as %s\n", g.Name(), g.NodeCount(), g.EdgeCount(), *format)
	return nil
}
