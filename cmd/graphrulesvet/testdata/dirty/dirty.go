// Package dirty is a deliberately violating fixture for graphrulesvet's
// CLI tests. It lives under testdata so wildcard patterns, the build and
// the repo-wide vet gate never see it; the tests load it by explicit
// path.
package dirty

import (
	"context"
	"errors"
)

var ErrStop = errors.New("stop")

func Pump(fn func(context.Context) error) error {
	ctx := context.Background() // ctxflow: severs cancellation
	for {
		if err := fn(ctx); err != nil {
			if err == ErrStop { // typederr: identity comparison
				return nil
			}
			return err
		}
	}
}
