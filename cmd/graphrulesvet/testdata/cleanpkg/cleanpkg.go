// Package cleanpkg is a violation-free fixture for graphrulesvet's CLI
// tests: every analyzer stays silent here, so the checker must exit 0.
package cleanpkg

import (
	"context"
	"errors"
)

var ErrStop = errors.New("stop")

func Pump(ctx context.Context, fn func(context.Context) error) error {
	for {
		if err := fn(ctx); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
}
