package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/analysis"
)

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanPackage(t *testing.T) {
	code, stdout, stderr := runVet(t, "./testdata/cleanpkg")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean package produced output:\n%s", stdout)
	}
}

func TestExitFindings(t *testing.T) {
	code, stdout, stderr := runVet(t, "./testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"(ctxflow)", "(typederr)"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("text output missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr missing findings summary:\n%s", stderr)
	}
}

func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{"-enable", "nosuchanalyzer", "./testdata/cleanpkg"},
		{"-disable", "nosuchanalyzer", "./testdata/cleanpkg"},
		{"-format", "xml", "./testdata/cleanpkg"},
		{"-nosuchflag"},
		{"./testdata/nosuchdir"},
	}
	for _, args := range cases {
		if code, stdout, _ := runVet(t, args...); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2; stdout:\n%s", args, code, stdout)
		}
	}
}

func TestEnableDisableFiltering(t *testing.T) {
	// Only typederr enabled: the ctxflow violation is invisible.
	code, stdout, _ := runVet(t, "-enable", "typederr", "./testdata/dirty")
	if code != 1 {
		t.Fatalf("-enable typederr exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "ctxflow") || !strings.Contains(stdout, "typederr") {
		t.Errorf("-enable typederr output wrong:\n%s", stdout)
	}

	// Both offending analyzers disabled: the dirty package passes.
	code, stdout, _ = runVet(t, "-disable", "ctxflow,typederr", "./testdata/dirty")
	if code != 0 {
		t.Fatalf("-disable ctxflow,typederr exit = %d, want 0; stdout:\n%s", code, stdout)
	}
}

func TestListRoster(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"budgetcharge", "copylocks", "ctxflow", "frozenwrite",
		"lockorder", "loopclosure", "nilness", "typederr", "unusedwrite",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing %s:\n%s", name, stdout)
		}
	}
}

func TestVersionProbe(t *testing.T) {
	code, stdout, _ := runVet(t, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "graphrulesvet version") {
		t.Errorf("-V=full output %q lacks version banner", stdout)
	}
}

// TestJSONGolden pins the machine-readable output shape: one array of
// findings with file/span/severity/analyzer/message fields. Paths are
// normalized to basenames because the loader reports them relative to
// the go list directory.
func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runVet(t, "-format", "json", "./testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	var got []analysis.Finding
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, stdout)
	}
	for i := range got {
		got[i].File = filepath.Base(got[i].File)
	}
	want := []analysis.Finding{
		{File: "dirty.go", Line: 15, Col: 9, EndLine: 15, EndCol: 29,
			Severity: "error", Analyzer: "ctxflow",
			Message: "context.Background() in library code severs cancellation; thread the caller's ctx (or mark a sanctioned shim with //graphrules:ctxshim)"},
		{File: "dirty.go", Line: 18, Col: 7, EndLine: 18, EndCol: 21,
			Severity: "error", Analyzer: "typederr",
			Message: "error compared with ==; use errors.Is to match across wrapping layers"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), stdout)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("finding %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, stdout, _ := runVet(t, "-format", "json", "./testdata/cleanpkg")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean JSON output = %q, want []", stdout)
	}
}

// TestVetToolProtocol drives the full go vet -vettool path end to end:
// build the checker, hand it to go vet, and check both the clean and
// dirty fixtures' exit behavior and diagnostics.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "graphrulesvet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	vet := func(pkg string) (int, string) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Env = append(os.Environ(), "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("go vet: %v\n%s", err, out)
		return -1, ""
	}

	if code, out := vet("./testdata/cleanpkg"); code != 0 {
		t.Errorf("go vet on clean fixture exited %d:\n%s", code, out)
	}
	code, out := vet("./testdata/dirty")
	if code == 0 {
		t.Fatalf("go vet on dirty fixture exited 0:\n%s", out)
	}
	for _, want := range []string{"severs cancellation", "errors.Is"} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

// TestRepoClean is the regression pin for the whole tree: every real
// violation was fixed or sanctioned when the suite landed, and this test
// keeps it that way.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	code, stdout, stderr := runVet(t, "-C", "../..", "./...")
	if code != 0 {
		t.Errorf("graphrulesvet over the repo exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
