// Command graphrulesvet is the engine-invariant multichecker: a custom
// static-analysis suite proving this repo's hand-enforced disciplines —
// the MVCC commitMu→mu lock order, the query-budget charge rule,
// ctx-first APIs, typed-error matching, frozen-snapshot immutability —
// at compile time, plus curated stock-lite passes (copylocks,
// loopclosure, unusedwrite, nilness).
//
// It runs two ways:
//
//	graphrulesvet ./...                # standalone, over package patterns
//	go vet -vettool=$(which graphrulesvet) ./...   # as a vet tool
//
// Standalone flags:
//
//	-enable a,b    run only these analyzers
//	-disable a,b   skip these analyzers
//	-format json   machine-readable diagnostics (CI annotation)
//	-list          print the analyzer roster and exit
//	-tests         also analyze _test.go files (analyzers that exempt
//	               tests still do)
//	-C dir         change directory before resolving patterns
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/graphrules/graphrules/internal/analysis"
	"github.com/graphrules/graphrules/internal/analysis/analyzers"
)

const version = "graphrulesvet version 1 (graphrules engine-invariant analyzers)"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go command probes `-V=full` before using a vet tool; answer
	// before normal flag parsing so the probe never trips on it.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-V" {
			fmt.Fprintln(stdout, version)
			return 0
		}
	}
	// `go vet` may interrogate supported flags with -flags.
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	fs := flag.NewFlagSet("graphrulesvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	format := fs.String("format", "text", "output format: text or json")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	chdir := fs.String("C", "", "resolve package patterns in this directory")
	jsonVet := fs.Bool("json", false, "unit-checker mode: emit JSON diagnostics (set by go vet)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	selected, err := analysis.Filter(analyzers.All(), analysis.SplitList(*enable), analysis.SplitList(*disable))
	if err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}

	if *list {
		for _, a := range selected {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Summary())
		}
		return 0
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "graphrulesvet: unknown -format %q (want text or json)\n", *format)
		return 2
	}

	// go vet -vettool invocation: a single vet.cfg positional argument.
	if analysis.IsVetCfg(fs.Args()) {
		return analysis.RunVetTool(fs.Args()[0], selected, *jsonVet || *format == "json", stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *chdir, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			// Surfaced but non-fatal: analysis is best-effort on
			// packages that do not fully type-check.
			fmt.Fprintf(stderr, "graphrulesvet: %s: typecheck: %v\n", p.ImportPath, terr)
		}
	}

	findings, err := analysis.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}
	if *format == "json" {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "graphrulesvet:", err)
			return 2
		}
	} else {
		analysis.WriteText(stdout, findings)
	}
	if len(findings) > 0 {
		if *format == "text" {
			fmt.Fprintf(stderr, "graphrulesvet: %d finding(s) in %s\n", len(findings), strings.Join(patterns, " "))
		}
		return 1
	}
	return 0
}
