// Command cypherlint runs the schema-aware Cypher analyzers over query
// corpora, vet-style: findings go to stdout as "file:line:offset: severity:
// message (analyzer)" and the exit status is nonzero when any finding has
// error severity. It is the CI gate for LLM-generated query corpora.
//
// Each input file holds one query per line; blank lines and lines starting
// with '#' are skipped. "-" reads stdin.
//
// Usage:
//
//	cypherlint -dataset Twitter queries.cypher
//	rulemine -dataset WWC2019 ... | cypherlint -dataset WWC2019 -
//	cypherlint -snapshot graph.snap -disable unusedvar,indexseek corpus.cypher
//	cypherlint -dataset Twitter -format json corpus.cypher   # CI annotation
//
// -format json emits one array of
// {file, line, span, severity, analyzer, message, suggested_fix}
// records (the suggested fix carries both raw edits and the corrected
// query), mirroring graphrulesvet's machine-readable mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
	"github.com/graphrules/graphrules/internal/storage"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cypherlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// schemaAnalyzers need property/label statistics to say anything useful;
// without a graph they are disabled rather than flagging every identifier.
var schemaAnalyzers = []string{"unknownlabel", "unknownreltype", "unknownprop", "reldirection", "typecheck", "indexseek"}

func run(args []string, stdin io.Reader, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("cypherlint", flag.ContinueOnError)
	datasetName := fs.String("dataset", "", "lint against this generated dataset's schema (WWC2019, Cybersecurity, Twitter)")
	snapshot := fs.String("snapshot", "", "lint against the schema of this binary graph snapshot")
	seed := fs.Int64("graph-seed", 42, "dataset generator seed")
	violations := fs.Float64("violations", 0.03, "dataset violation injection rate")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	showFix := fs.Bool("fix", false, "print the corrected query under findings that carry a suggested fix")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown -format %q (want text or json)", *format)
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-14s %-7s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0, nil
	}

	var schema *graph.Schema
	opts := lint.Options{Enable: splitList(*enable), Disable: splitList(*disable)}
	switch {
	case *snapshot != "":
		g, err := storage.LoadFile(*snapshot)
		if err != nil {
			return 2, err
		}
		schema = graph.ExtractSchema(g)
	case *datasetName != "":
		gen, err := datasets.ByName(*datasetName)
		if err != nil {
			return 2, err
		}
		schema = graph.ExtractSchema(gen(datasets.Options{Seed: *seed, ViolationRate: *violations}))
	default:
		// No graph, no schema: run only the schema-free analyzers.
		schema = &graph.Schema{}
		opts.Disable = append(opts.Disable, schemaAnalyzers...)
	}

	files := fs.Args()
	if len(files) == 0 {
		files = []string{"-"}
	}
	failed := false
	var findings []finding // collected only in JSON mode
	for _, name := range files {
		var r io.Reader
		if name == "-" {
			r = stdin
			name = "<stdin>"
		} else {
			f, err := os.Open(name)
			if err != nil {
				return 2, err
			}
			defer f.Close()
			r = f
		}
		lf := &lintRun{name: name, schema: schema, opts: opts, showFix: *showFix}
		if *format == "text" {
			lf.out = out
		}
		bad, err := lf.lint(r)
		if err != nil {
			return 2, fmt.Errorf("%s: %w", name, err)
		}
		findings = append(findings, lf.findings...)
		failed = failed || bad
	}
	if *format == "json" {
		if findings == nil {
			findings = []finding{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}

// finding is one diagnostic in the machine-readable -format json output:
// file/line locate the query, span is the byte range within it, and the
// suggested fix (when the analyzer carries one) comes with both the raw
// edits and the fully corrected query.
type finding struct {
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Span     [2]int      `json:"span"`
	Severity string      `json:"severity"`
	Analyzer string      `json:"analyzer"`
	Message  string      `json:"message"`
	Fix      *findingFix `json:"suggested_fix,omitempty"`
}

type findingFix struct {
	Message string        `json:"message"`
	Edits   []findingEdit `json:"edits,omitempty"`
	Fixed   string        `json:"fixed,omitempty"`
}

// findingEdit replaces bytes [Start, End) of the query with New.
type findingEdit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// lintRun lints one input stream, writing text findings to out (when
// non-nil) and collecting structured findings for JSON output.
type lintRun struct {
	name     string
	schema   *graph.Schema
	opts     lint.Options
	showFix  bool
	out      io.Writer // nil in JSON mode
	findings []finding
}

func (l *lintRun) lint(r io.Reader) (failed bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	fuzzCorpus := false
	for sc.Scan() {
		lineNo++
		src := strings.TrimSpace(sc.Text())
		if lineNo == 1 && strings.HasPrefix(src, "go test fuzz v") {
			// A go-fuzz corpus entry: subsequent lines are Go-quoted values
			// like string("MATCH ...").
			fuzzCorpus = true
			continue
		}
		if fuzzCorpus {
			q, ok := unquoteFuzzLine(src)
			if !ok {
				continue
			}
			src = q
		}
		if src == "" || strings.HasPrefix(src, "#") {
			continue
		}
		diags := lint.Source(src, l.schema, l.opts)
		for _, d := range diags {
			if l.out != nil {
				fmt.Fprintf(l.out, "%s:%d:%d: %s: %s (%s)\n", l.name, lineNo, d.Span.Start, d.Severity, d.Message, d.Analyzer)
				if l.showFix && d.Fix != nil {
					if fixed, ferr := lint.ApplyFix(src, d.Fix); ferr == nil {
						fmt.Fprintf(l.out, "%s:%d: fix (%s): %s\n", l.name, lineNo, d.Fix.Message, fixed)
					}
				}
			} else {
				l.findings = append(l.findings, toFinding(l.name, lineNo, src, d))
			}
		}
		if lint.HasError(diags) {
			failed = true
		}
	}
	return failed, sc.Err()
}

// toFinding converts a lint diagnostic on one query line to the JSON
// output record, resolving the suggested fix to a corrected query.
func toFinding(name string, lineNo int, src string, d lint.Diagnostic) finding {
	f := finding{
		File:     name,
		Line:     lineNo,
		Span:     [2]int{d.Span.Start, d.Span.End},
		Severity: d.Severity.String(),
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
	if d.Fix != nil {
		ff := &findingFix{Message: d.Fix.Message}
		for _, e := range d.Fix.Edits {
			ff.Edits = append(ff.Edits, findingEdit{Start: e.Span.Start, End: e.Span.End, New: e.NewText})
		}
		if fixed, err := lint.ApplyFix(src, d.Fix); err == nil {
			ff.Fixed = fixed
		}
		f.Fix = ff
	}
	return f
}

// unquoteFuzzLine extracts the query from a go-fuzz corpus line of the form
// string("..."). Non-string lines are skipped.
func unquoteFuzzLine(line string) (string, bool) {
	body, ok := strings.CutPrefix(line, "string(")
	if !ok {
		return "", false
	}
	body, ok = strings.CutSuffix(body, ")")
	if !ok {
		return "", false
	}
	q, err := strconv.Unquote(body)
	if err != nil {
		return "", false
	}
	return q, true
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
