package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCleanCorpusPasses(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "testdata/twitter_clean.cypher"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean corpus exits %d:\n%s", code, out.String())
	}
}

func TestHallucinatedCorpusFails(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "testdata/twitter_hallucinated.cypher"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("hallucinated corpus exits %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"unknownprop", "reldirection", "regexeq", "syntax"} {
		if !strings.Contains(out.String(), "("+want+")") {
			t.Errorf("output missing a %s finding:\n%s", want, out.String())
		}
	}
}

func TestStdinAndDisable(t *testing.T) {
	in := strings.NewReader("MATCH (u:User) WHERE u.followerCount > 10 RETURN u.name\n")
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "-disable", "unknownprop", "-"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("with unknownprop disabled the query should pass, got exit %d:\n%s", code, out.String())
	}
}

func TestNoSchemaSkipsSchemaAnalyzers(t *testing.T) {
	// Without a -dataset/-snapshot the label is unknown to nobody: the
	// schema-dependent analyzers are disabled instead of flagging it.
	in := strings.NewReader("MATCH (u:Madeup) WHERE u.whatever > 10 RETURN u.whatever\n")
	var out strings.Builder
	code, err := run([]string{"-"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("schema-free run should pass, got exit %d:\n%s", code, out.String())
	}
}

func TestJSONFormat(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "-format", "json", "testdata/twitter_hallucinated.cypher"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("hallucinated corpus exits %d, want 1:\n%s", code, out.String())
	}
	var findings []finding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected findings in JSON output")
	}
	analyzers := map[string]bool{}
	sawFix := false
	for _, f := range findings {
		if f.File != "testdata/twitter_hallucinated.cypher" {
			t.Errorf("finding file = %q", f.File)
		}
		if f.Line <= 0 || f.Severity == "" || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if f.Span[1] < f.Span[0] {
			t.Errorf("inverted span: %+v", f)
		}
		analyzers[f.Analyzer] = true
		if f.Fix != nil {
			sawFix = true
			if f.Fix.Fixed == "" || len(f.Fix.Edits) == 0 {
				t.Errorf("fix without edits or corrected query: %+v", f.Fix)
			}
		}
	}
	for _, want := range []string{"unknownprop", "reldirection", "syntax"} {
		if !analyzers[want] {
			t.Errorf("JSON output missing a %s finding; saw %v", want, analyzers)
		}
	}
	if !sawFix {
		t.Error("expected at least one finding with a suggested fix")
	}
}

func TestJSONFormatCleanIsEmptyArray(t *testing.T) {
	in := strings.NewReader("MATCH (u:User) RETURN u.name\n")
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "-format", "json", "-"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean query exits %d:\n%s", code, out.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean JSON output = %q, want []", out.String())
	}
}

func TestBadFormatIsUsageError(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-format", "xml", "-"}, strings.NewReader(""), &out)
	if err == nil || code != 2 {
		t.Fatalf("bad -format: code %d err %v, want 2 and an error", code, err)
	}
}

func TestListAnalyzers(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-list"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out.String()), "\n")); n < 8 {
		t.Fatalf("expected at least 8 registered analyzers, -list printed %d", n)
	}
}
