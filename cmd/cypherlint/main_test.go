package main

import (
	"strings"
	"testing"
)

func TestCleanCorpusPasses(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "testdata/twitter_clean.cypher"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean corpus exits %d:\n%s", code, out.String())
	}
}

func TestHallucinatedCorpusFails(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "testdata/twitter_hallucinated.cypher"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("hallucinated corpus exits %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"unknownprop", "reldirection", "regexeq", "syntax"} {
		if !strings.Contains(out.String(), "("+want+")") {
			t.Errorf("output missing a %s finding:\n%s", want, out.String())
		}
	}
}

func TestStdinAndDisable(t *testing.T) {
	in := strings.NewReader("MATCH (u:User) WHERE u.followerCount > 10 RETURN u.name\n")
	var out strings.Builder
	code, err := run([]string{"-dataset", "Twitter", "-disable", "unknownprop", "-"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("with unknownprop disabled the query should pass, got exit %d:\n%s", code, out.String())
	}
}

func TestNoSchemaSkipsSchemaAnalyzers(t *testing.T) {
	// Without a -dataset/-snapshot the label is unknown to nobody: the
	// schema-dependent analyzers are disabled instead of flagging it.
	in := strings.NewReader("MATCH (u:Madeup) WHERE u.whatever > 10 RETURN u.whatever\n")
	var out strings.Builder
	code, err := run([]string{"-"}, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("schema-free run should pass, got exit %d:\n%s", code, out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-list"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(out.String()), "\n")); n < 8 {
		t.Fatalf("expected at least 8 registered analyzers, -list printed %d", n)
	}
}
