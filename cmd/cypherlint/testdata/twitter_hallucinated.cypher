# Corpus with one finding per §4.4 error category; cypherlint must exit 1.
# Hallucinated properties (never observed on the schema):
MATCH (u:User) WHERE u.followerCount > 10 RETURN u.name
MATCH (t:Tweet) WHERE t.sentiment = 'positive' RETURN t.id
# Relationship direction flipped against the dominant endpoints:
MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN u.name
# Regex literal compared with = instead of =~ :
MATCH (l:Link) WHERE l.url = 'https?://.+' RETURN l.url
# Unparseable:
MATCH (u:User RETURN u
