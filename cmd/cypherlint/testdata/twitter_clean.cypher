# Lint-clean queries against the Twitter schema (one per line).
MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.followers > 1000 RETURN u.name, t.id
MATCH (t:Tweet)-[:TAGS]->(h:Hashtag) RETURN h.name, count(*) AS uses
MATCH (u:User) WHERE u.screen_name STARTS WITH 'a' RETURN u.screen_name
MATCH (a:User)-[:FOLLOWS]->(b:User) WHERE a.id < b.id RETURN count(*) AS pairs
MATCH (t:Tweet)-[:ABOUT]->(tp:Topic) WITH tp, count(*) AS n WHERE n > 3 RETURN tp.name, n
MATCH (u:User {name: 'x'})-[:POSTS]->(t:Tweet) RETURN t.text
