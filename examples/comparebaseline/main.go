// Comparebaseline contrasts the LLM mining pipeline with the classical
// AMIE-style frequency miner on the same graph — the comparison the paper's
// introduction motivates: data mining is exhaustive but overwhelming, the
// LLM pipeline is selective and readable.
//
// Run with: go run ./examples/comparebaseline
package main

import (
	"fmt"
	"log"

	"github.com/graphrules/graphrules/internal/baseline"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
)

func main() {
	g := datasets.WWC2019(datasets.DefaultOptions())
	fmt.Printf("mining %s: %d nodes, %d edges\n\n", g.Name(), g.NodeCount(), g.EdgeCount())

	// LLM pipeline (Mixtral profile, sliding windows).
	llmRes, err := mining.Mine(g, mining.Config{Model: llm.NewSim(llm.Mixtral(), 42)})
	if err != nil {
		log.Fatal(err)
	}
	llmKeys := map[string]bool{}
	fmt.Printf("=== LLM pipeline: %d rules ===\n", len(llmRes.Rules))
	for _, mr := range llmRes.Rules {
		llmKeys[mr.Rule.DedupKey()] = true
		fmt.Printf("  [%5.1f%%] %s\n", mr.Score.Confidence, mr.NL)
	}

	// Classical baseline, unpruned then pruned.
	loose, err := baseline.Mine(g, baseline.Config{MinConfidence: 5, MinSupport: 1, IncludeComplex: true})
	if err != nil {
		log.Fatal(err)
	}
	strict, err := baseline.Mine(g, baseline.Config{MinConfidence: 95, MinSupport: 10, IncludeComplex: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== AMIE-style baseline ===\n")
	fmt.Printf("candidates tried: %d\n", loose.CandidatesTried)
	fmt.Printf("rules at confidence >= 5%%:  %d  (the 'overwhelming number' problem)\n", len(loose.Scores))
	fmt.Printf("rules at confidence >= 95%%: %d\n", len(strict.Scores))

	// Overlap: how many of the LLM's rules does the strict baseline confirm?
	confirmed := 0
	for _, s := range strict.Scores {
		if llmKeys[s.Rule.DedupKey()] {
			confirmed++
		}
	}
	fmt.Printf("\nLLM rules confirmed by the strict baseline: %d/%d\n", confirmed, len(llmRes.Rules))

	// What the baseline finds that the LLM missed (top 5 by support).
	fmt.Println("\nhigh-confidence baseline rules the LLM pipeline did not surface:")
	shown := 0
	for _, s := range strict.Scores {
		if llmKeys[s.Rule.DedupKey()] || shown == 5 {
			continue
		}
		fmt.Printf("  [supp %6d] %s\n", s.Counts.Support, s.Rule.NL())
		shown++
	}
}
