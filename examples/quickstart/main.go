// Quickstart: build a tiny property graph, mine consistency rules with the
// simulated LLM pipeline, and print each rule with its metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
)

func main() {
	// 1. Build a small social graph with a couple of deliberate
	//    inconsistencies: a duplicate user id and a self-follow.
	g := graph.New("quickstart")
	var users []*graph.Node
	for i := 0; i < 20; i++ {
		id := int64(i)
		if i == 19 {
			id = 0 // violation: duplicate id
		}
		users = append(users, g.AddNode([]string{"User"}, graph.Props{
			"id":   graph.NewInt(id),
			"name": graph.NewString(fmt.Sprintf("user-%02d", i)),
		}))
	}
	for i := 0; i < 30; i++ {
		t := g.AddNode([]string{"Tweet"}, graph.Props{
			"id":        graph.NewInt(int64(100 + i)),
			"text":      graph.NewString(fmt.Sprintf("post %d", i)),
			"createdAt": graph.NewInt(int64(1000 + i)),
		})
		g.MustAddEdge(users[i%20].ID, t.ID, []string{"POSTS"}, nil)
	}
	for i := 0; i < 15; i++ {
		to := (i + 3) % 20
		if i == 7 {
			to = i // violation: self-follow
		}
		g.MustAddEdge(users[i].ID, users[to].ID, []string{"FOLLOWS"}, nil)
	}

	// 2. Mine rules with the LLaMA-3 profile over sliding windows.
	res, err := mining.Mine(g, mining.Config{
		Model:         llm.NewSim(llm.LLaMA3(), 1),
		WindowTokens:  800, // tiny graph, tiny windows
		OverlapTokens: 80,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the results.
	fmt.Printf("mined %d rules from %d windows (%.1f simulated LLM seconds)\n\n",
		len(res.Rules), res.Windows, res.TotalSimSeconds())
	for _, mr := range res.Rules {
		fmt.Printf("- %s\n    support=%d coverage=%.1f%% confidence=%.1f%% (cypher: %s)\n",
			mr.NL, mr.Score.Counts.Support, mr.Score.Coverage, mr.Score.Confidence, mr.Category)
	}
	fmt.Printf("\naggregate: coverage %.1f%%, confidence %.1f%%\n",
		res.Aggregate.MeanCoverage, res.Aggregate.MeanConfidence)
}
