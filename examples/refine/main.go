// Refine demonstrates the paper's future-work direction of interactive
// rule mining (§5): a domain expert reviews the mined rules, accepts the
// useful ones, rejects the noise, and re-mines — with rejections fed back
// to the model as prompt exclusions so fresh candidates surface.
//
// Run with: go run ./examples/refine
package main

import (
	"fmt"
	"log"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/rules"
)

func main() {
	g := datasets.Cybersecurity(datasets.DefaultOptions())
	session, err := mining.NewSession(g, mining.Config{Model: llm.NewSim(llm.Mixtral(), 7)})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== round 1: initial mining ===")
	for _, mr := range session.Pending() {
		fmt.Printf("  [%5.1f%%] %s\n", mr.Score.Confidence, mr.NL)
	}

	// Play the expert: keep high-confidence structural facts, reject
	// anything with zero support (hallucinations) or trivially low value.
	var kept, dropped int
	for _, mr := range session.Pending() {
		switch {
		case mr.Score.Counts.Support == 0:
			if err := session.Reject(mr.Rule.DedupKey()); err != nil {
				log.Fatal(err)
			}
			dropped++
		case mr.Score.Confidence >= 99:
			if err := session.Accept(mr.Rule.DedupKey()); err != nil {
				log.Fatal(err)
			}
			kept++
		}
	}
	fmt.Printf("\nexpert feedback: accepted %d, rejected %d\n\n", kept, dropped)

	if _, err := session.Refine(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== round %d: after refinement (rejections excluded from the prompt) ===\n", session.Rounds())
	for _, mr := range session.Pending() {
		fmt.Printf("  new candidate [%5.1f%%] %s\n", mr.Score.Confidence, mr.NL)
	}

	fmt.Println("\n=== final rule set ===")
	for _, r := range session.Export() {
		fmt.Printf("  %s\n", r.NL())
	}

	// Explain one accepted rule the way the paper's future work imagines.
	if accepted := session.Accepted(); len(accepted) > 0 {
		fmt.Println("\nrationale for the first accepted rule:")
		fmt.Println("  " + rules.Explain(accepted[0].Rule, accepted[0].Score.Counts))
	}
}
