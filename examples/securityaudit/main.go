// Securityaudit mines consistency rules on the Cybersecurity (active
// directory) graph and contrasts zero-shot with few-shot prompting — the
// comparison behind the paper's Table 3 — then drills into the dataset's
// flagship rule, "the owned property should only be true or false".
//
// Run with: go run ./examples/securityaudit
package main

import (
	"fmt"
	"log"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
)

func main() {
	g := datasets.Cybersecurity(datasets.Options{Seed: 42, ViolationRate: 0.04})
	fmt.Printf("auditing %s: %d nodes, %d edges\n\n", g.Name(), g.NodeCount(), g.EdgeCount())

	model := llm.NewSim(llm.LLaMA3(), 42)
	for _, mode := range prompt.Modes {
		res, err := mining.Mine(g, mining.Config{Model: model, Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s prompting: %d rules, mean confidence %.1f%%, cypher %d/%d correct ===\n",
			mode, len(res.Rules), res.Aggregate.MeanConfidence, res.CypherCorrect, res.CypherTotal)
		for _, mr := range res.Rules {
			marker := " "
			if mr.Corrected {
				marker = "*" // query was auto-corrected (§4.4 protocol)
			}
			fmt.Printf(" %s [%5.1f%%] %s\n", marker, mr.Score.Confidence, mr.NL)
		}
		fmt.Println()
	}

	// Drill-down: accounts whose `owned` flag is not a boolean.
	ex := cypher.NewExecutor(g)
	res, err := ex.Run(`MATCH (u:User) WHERE u.owned IS NOT NULL AND NOT u.owned IN [true, false]
		RETURN u.name AS account LIMIT 5`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accounts violating `owned must be boolean`:")
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("- %s\n", res.Value(i, "account").Str())
	}
	total, err := ex.Run(`MATCH (u:User) WHERE u.owned IS NOT NULL AND NOT u.owned IN [true, false]
		RETURN count(*) AS n`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d total)\n", total.FirstInt("n"))
}
