// Socialaudit reproduces the paper's motivating scenario (§1): a Twitter
// graph where consistency rules enforce temporal retweet order, forbid
// self-follows, and require every tweet to have a valid posting user. It
// mines rules with the fast RAG pipeline, then uses the Cypher engine to
// list concrete violating elements for the intro's three rules.
//
// Run with: go run ./examples/socialaudit
package main

import (
	"fmt"
	"log"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
)

func main() {
	g := datasets.Twitter(datasets.Options{Seed: 42, ViolationRate: 0.02})
	fmt.Printf("auditing %s: %d nodes, %d edges\n\n", g.Name(), g.NodeCount(), g.EdgeCount())

	// Mine rules with the RAG pipeline (one LLM call).
	res, err := mining.Mine(g, mining.Config{
		Model:  llm.NewSim(llm.Mixtral(), 42),
		Method: mining.RAG,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d rules in %.1f simulated LLM seconds (+%.0fs one-time index build):\n",
		len(res.Rules), res.MiningSeconds+res.TranslationSeconds, res.IndexSeconds)
	for _, mr := range res.Rules {
		fmt.Printf("- [conf %5.1f%%] %s\n", mr.Score.Confidence, mr.NL)
	}

	// The intro's three rules, checked explicitly with Cypher.
	ex := cypher.NewExecutor(g)
	checks := []struct {
		title string
		query string
	}{
		{
			"retweets posted before their original (temporal violation)",
			`MATCH (r:Tweet)-[:RETWEETS]->(o:Tweet) WHERE r.createdAt < o.createdAt RETURN count(*) AS n`,
		},
		{
			"users following themselves",
			`MATCH (u:User)-[:FOLLOWS]->(u) RETURN count(*) AS n`,
		},
		{
			"tweets without a valid posting user",
			`MATCH (t:Tweet) WHERE NOT (t)<-[:POSTS]-(:User) RETURN count(*) AS n`,
		},
	}
	fmt.Println("\nintro-scenario violation census:")
	for _, c := range checks {
		r, err := ex.Run(c.query, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("- %-55s %d\n", c.title+":", r.FirstInt("n"))
	}

	// Show a few concrete self-follow offenders.
	r, err := ex.Run(`MATCH (u:User)-[:FOLLOWS]->(u) RETURN u.screen_name AS who LIMIT 5`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexample self-follow offenders:")
	for i := 0; i < r.Len(); i++ {
		fmt.Printf("- @%s\n", r.Value(i, "who").Str())
	}
}
