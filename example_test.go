package graphrules_test

import (
	"fmt"

	"github.com/graphrules/graphrules"
)

// ExampleMine mines consistency rules on a small social graph with the
// simulated LLaMA-3 model and prints the statement of the top rule.
func ExampleMine() {
	g := graphrules.NewGraph("demo")
	var users []*graphrules.Node
	for i := 0; i < 10; i++ {
		users = append(users, g.AddNode([]string{"User"}, graphrules.Props{
			"id": graphrules.NewIntValue(int64(i)),
		}))
	}
	for i := 0; i < 9; i++ {
		tw := g.AddNode([]string{"Tweet"}, graphrules.Props{
			"id": graphrules.NewIntValue(int64(100 + i)),
		})
		g.MustAddEdge(users[i].ID, tw.ID, []string{"POSTS"}, nil)
	}

	res, err := graphrules.Mine(g, graphrules.MiningConfig{
		Model:         graphrules.NewSimModel(graphrules.LLaMA3(), 1),
		WindowTokens:  400,
		OverlapTokens: 40,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Rules[0].NL)
	fmt.Printf("confidence %.0f%%\n", res.Rules[0].Score.Confidence)
	// Output:
	// Each User node should have a unique id property.
	// confidence 100%
}

// ExampleExecutor_Run executes a Cypher aggregation against a graph.
func ExampleExecutor_Run() {
	g := graphrules.NewGraph("q")
	a := g.AddNode([]string{"User"}, graphrules.Props{"name": graphrules.NewStringValue("ann")})
	b := g.AddNode([]string{"User"}, graphrules.Props{"name": graphrules.NewStringValue("bob")})
	g.MustAddEdge(a.ID, b.ID, []string{"FOLLOWS"}, nil)
	g.MustAddEdge(b.ID, a.ID, []string{"FOLLOWS"}, nil)

	res, err := graphrules.NewExecutor(g).Run(
		`MATCH (u:User)-[:FOLLOWS]->(v:User) RETURN count(*) AS follows`, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("follows:", res.FirstInt("follows"))
	// Output:
	// follows: 2
}

// ExampleParseRuleNL round-trips a rule between its natural-language and
// structured forms.
func ExampleParseRuleNL() {
	r, ok := graphrules.ParseRuleNL("Each Tweet node should have a unique id property.")
	if !ok {
		fmt.Println("unparseable")
		return
	}
	fmt.Println(r.Kind())
	fmt.Println(r.Formal())
	// Output:
	// unique-property
	// ∀x,y: Tweet(x) ∧ Tweet(y) ∧ x.id = y.id → x = y
}

// ExampleRuleViolations lists the concrete elements violating a rule.
func ExampleRuleViolations() {
	g := graphrules.NewGraph("v")
	g.AddNode([]string{"User"}, graphrules.Props{"id": graphrules.NewIntValue(1)})
	g.AddNode([]string{"User"}, graphrules.Props{"id": graphrules.NewIntValue(1)}) // duplicate
	g.AddNode([]string{"User"}, graphrules.Props{"id": graphrules.NewIntValue(2)})

	r, _ := graphrules.ParseRuleNL("Each User node should have a unique id property.")
	q, err := graphrules.RuleViolations(r, 10)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := graphrules.NewExecutor(g).Run(q, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("violating groups:", res.Len())
	fmt.Println("duplicated value:", res.Value(0, "value").Display())
	// Output:
	// violating groups: 1
	// duplicated value: 1
}
