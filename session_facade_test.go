package graphrules

import (
	"context"
	"testing"
)

// TestFacadeQuerySession exercises the transport-agnostic session API
// from the facade: streamed iteration, summaries, and transactions.
func TestFacadeQuerySession(t *testing.T) {
	g := NewGraph("qsession")
	for i := 0; i < 30; i++ {
		g.AddNode([]string{"User"}, Props{"id": NewIntValue(int64(i))})
	}

	s := OpenSession(g)
	defer s.Close()

	cur, err := s.Run(context.Background(), `MATCH (u:User) RETURN u.id AS id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for cur.Next() {
		if len(cur.Record()) != 1 {
			t.Fatalf("record = %v", cur.Record())
		}
		n++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("streamed %d rows, want 30", n)
	}
	if cols := cur.Columns(); len(cols) != 1 || cols[0] != "id" {
		t.Fatalf("columns = %v", cols)
	}

	// Explicit transaction: rolled-back writes leave no trace.
	if err := s.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}
	cur, err = s.Run(context.Background(), `CREATE (x:Tmp {k: 1})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesWithLabel("Tmp")); n != 0 {
		t.Fatalf("%d Tmp nodes survived rollback", n)
	}

	// State errors are the exported sentinels.
	if err := s.Rollback(); err != ErrNoTx {
		t.Fatalf("Rollback without tx = %v, want ErrNoTx", err)
	}
}
