package graphrules

import (
	"testing"

	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/report"
	"github.com/graphrules/graphrules/internal/rules"
)

// TestPaperShapeInvariants asserts, on the WWC2019 grid, the qualitative
// findings EXPERIMENTS.md claims to reproduce. Each invariant mirrors a
// sentence of the paper's §4.3-§4.5.
func TestPaperShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	cells, err := report.RunDataset(Dataset("WWC2019", DefaultDatasetOptions()), 42)
	if err != nil {
		t.Fatal(err)
	}
	get := func(model string, method mining.Method, mode prompt.Mode) *mining.Result {
		for _, c := range cells {
			if c.Model == model && c.Method == method && c.Mode == mode {
				return c.Result
			}
		}
		t.Fatalf("missing cell %s/%s/%s", model, method, mode)
		return nil
	}

	// "Our preliminary results show ... mainly consisting of schema-based
	// constraints": every configuration mines 5-12 rules.
	for _, c := range cells {
		if n := len(c.Result.Rules); n < 5 || n > 12 {
			t.Errorf("%s/%s/%s: %d rules outside the paper's 5-12 band",
				c.Model, c.Method, c.Mode, n)
		}
	}

	// "LLaMA-3 generates rules with higher support, coverage, and
	// confidence than Mixtral" (on average).
	var llamaConf, mixtralConf float64
	for _, c := range cells {
		if c.Model == "Llama-3" {
			llamaConf += c.Result.Aggregate.MeanConfidence
		} else {
			mixtralConf += c.Result.Aggregate.MeanConfidence
		}
	}
	if llamaConf <= mixtralConf {
		t.Errorf("LLaMA-3 mean confidence %.1f should exceed Mixtral's %.1f",
			llamaConf/4, mixtralConf/4)
	}

	// "Few-Shot prompting results in a higher confidence score" (LLaMA-3,
	// sliding windows — the paper's clearest instance).
	zero := get("Llama-3", mining.SlidingWindow, prompt.ZeroShot)
	few := get("Llama-3", mining.SlidingWindow, prompt.FewShot)
	if few.Aggregate.MeanConfidence <= zero.Aggregate.MeanConfidence {
		t.Errorf("few-shot confidence %.1f should beat zero-shot %.1f",
			few.Aggregate.MeanConfidence, zero.Aggregate.MeanConfidence)
	}

	// "the RAG method offers substantial improvements [in time], as the LLM
	// is prompted only once".
	for _, model := range []string{"Llama-3", "Mixtral"} {
		swa := get(model, mining.SlidingWindow, prompt.ZeroShot)
		rag := get(model, mining.RAG, prompt.ZeroShot)
		if rag.Windows != 1 {
			t.Errorf("%s RAG should prompt once", model)
		}
		if rag.MiningSeconds*10 > swa.MiningSeconds {
			t.Errorf("%s: RAG %.1fs should be far below SWA %.1fs",
				model, rag.MiningSeconds, swa.MiningSeconds)
		}
	}

	// "both LLMs tend to correctly generate the queries": overall Cypher
	// accuracy well above half.
	correct, total := 0, 0
	for _, c := range cells {
		correct += c.Result.CypherCorrect
		total += c.Result.CypherTotal
	}
	if float64(correct) < 0.6*float64(total) {
		t.Errorf("overall cypher accuracy %d/%d below the paper's band", correct, total)
	}

	// "the number of patterns broken in this way was relatively small":
	// single or low double digits against dozens of windows.
	swa := get("Llama-3", mining.SlidingWindow, prompt.ZeroShot)
	if swa.BrokenPatterns == 0 || swa.BrokenPatterns > swa.Windows {
		t.Errorf("broken patterns %d implausible for %d windows", swa.BrokenPatterns, swa.Windows)
	}

	// "Mixtral appears to generate more complex rules": at least one
	// complex-class rule across its SWA runs.
	complexSeen := false
	for _, mode := range prompt.Modes {
		for _, mr := range get("Mixtral", mining.SlidingWindow, mode).Rules {
			if mr.Rule.Complexity() == rules.Complex {
				complexSeen = true
			}
		}
	}
	if !complexSeen {
		t.Error("Mixtral mined no complex rules on WWC2019")
	}
}

// TestParallelFutureWorkShape checks §4.3's parallelization claim: more
// workers shrink the simulated wall time without changing the result.
func TestParallelFutureWorkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	g := Dataset("Cybersecurity", DefaultDatasetOptions())
	m := llm.NewSim(llm.LLaMA3(), 42)
	serial, err := Mine(g, MiningConfig{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	par8, err := Mine(g, MiningConfig{Model: m, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par8.ParallelSeconds*2 > serial.MiningSeconds {
		t.Errorf("8 workers should at least halve %.1fs, got %.1fs",
			serial.MiningSeconds, par8.ParallelSeconds)
	}
}
