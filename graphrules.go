// Package graphrules is a complete Go implementation of the pipeline from
// "Graph Consistency Rule Mining with LLMs: an Exploratory Study" (EDBT
// 2025): mining data-quality rules for property graphs with a large
// language model, scoring them with AMIE-style support / coverage /
// confidence, and auto-correcting the LLM's generated Cypher.
//
// The package is a curated facade over the implementation packages:
//
//   - graph: the in-memory property-graph store
//   - cypher: the embedded Cypher execution engine (the Neo4j stand-in)
//   - textenc: graph-to-text encoders, sliding windows, RAG chunks
//   - llm: the deterministic simulated LLaMA-3 / Mixtral models
//   - rules, metrics, correction: the rule model and its evaluation
//   - mining: the end-to-end pipeline
//   - datasets: the paper's three evaluation graphs
//   - baseline: a classical AMIE-style comparator
//   - storage: snapshots, JSON, CSV and WAL persistence
//
// Quickstart:
//
//	g := graphrules.Dataset("WWC2019", graphrules.DefaultDatasetOptions())
//	res, err := graphrules.Mine(g, graphrules.MiningConfig{
//		Model: graphrules.NewSimModel(graphrules.LLaMA3(), 42),
//	})
//	for _, r := range res.Rules {
//		fmt.Println(r.NL, r.Score.Confidence)
//	}
package graphrules

import (
	"context"
	"io"
	"time"

	"github.com/graphrules/graphrules/internal/baseline"
	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/resilience"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/storage"
)

// Graph model.
type (
	// Graph is an in-memory property graph.
	Graph = graph.Graph
	// Node is a labeled vertex with properties.
	Node = graph.Node
	// Edge is a directed, labeled relationship with properties.
	Edge = graph.Edge
	// Value is a dynamically typed property value.
	Value = graph.Value
	// Props maps property keys to values.
	Props = graph.Props
	// Schema is an extracted structural summary of a graph.
	Schema = graph.Schema
)

// NewGraph returns an empty property graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Value constructors.
var (
	// NullValue is the null property value.
	NullValue = graph.Null
)

// NewBoolValue wraps a boolean property value.
func NewBoolValue(b bool) Value { return graph.NewBool(b) }

// NewIntValue wraps an integer property value.
func NewIntValue(i int64) Value { return graph.NewInt(i) }

// NewFloatValue wraps a floating-point property value.
func NewFloatValue(f float64) Value { return graph.NewFloat(f) }

// NewStringValue wraps a string property value.
func NewStringValue(s string) Value { return graph.NewString(s) }

// ExtractSchema summarizes a graph's labels, properties and endpoints.
func ExtractSchema(g *Graph) *Schema { return graph.ExtractSchema(g) }

// MVCC epochs and change feeds.
type (
	// GraphDelta summarizes one committed epoch: the ops applied and which
	// (label, property-key) / (type, property-key) pairs they touched. It
	// is what OnCommit subscribers and the metric maintainer consume.
	GraphDelta = graph.Delta
	// GraphBatch buffers mutations and commits them as one atomic epoch
	// (all-or-nothing, one delta, one subscriber notification).
	GraphBatch = graph.Batch
)

// NewBatch opens a mutation batch on g; see GraphBatch.
func NewBatch(g *Graph) *GraphBatch { return g.NewBatch() }

// SnapshotOf returns a frozen point-in-time view of g: reads see exactly
// the epoch current at the call, concurrent commits never move it, and
// mutating it panics. Snapshots are cheap (shallow map copies, cached per
// epoch) — take one per scan, not one per read.
func SnapshotOf(g *Graph) *Graph { return g.Snapshot() }

// OnGraphCommit subscribes fn to g's committed epochs; fn runs on the
// commit path before the next writer can commit, in subscription order.
// The returned cancel detaches it.
func OnGraphCommit(g *Graph, fn func(*GraphDelta)) (cancel func()) { return g.OnCommit(fn) }

// Write-ahead logging and crash recovery.
type (
	// WAL is a write-ahead log of graph mutations, with optional group
	// commit (batched fsync) via NewGroupWAL.
	WAL = storage.WAL
	// WALRecord is one logged mutation (or commit marker).
	WALRecord = storage.Record
	// LoggedGraph pairs a graph with a WAL: every mutation is applied,
	// logged, and made durable (Commit barrier) before the call returns.
	LoggedGraph = storage.LoggedGraph
	// RecoveryInfo reports what RecoverWAL salvaged from a damaged log.
	RecoveryInfo = storage.RecoveryInfo
	// WALPoisonedError is a WAL's typed sticky error after a storage
	// fault: durability can no longer be promised past its Durable
	// sequence number. The graph keeps serving; ReattachWAL resumes
	// durable logging on a fresh sink.
	WALPoisonedError = storage.WALPoisonedError
	// FaultSink wraps a WAL sink with deterministic, schedulable storage
	// faults (short writes, fsync errors, ENOSPC, latency) for chaos
	// testing durability guarantees.
	FaultSink = storage.FaultSink
)

// NewWAL wraps w as an eager write-ahead log (flush + sync per append).
func NewWAL(w io.Writer) *WAL { return storage.NewWAL(w) }

// NewGroupWAL wraps w as a group-commit write-ahead log: appends buffer,
// a background flusher syncs every window, and Commit() barriers until
// the caller's records are durable. window <= 0 flushes only on demand.
func NewGroupWAL(w io.Writer, window time.Duration) *WAL {
	return storage.NewGroupWAL(w, window)
}

// NewLoggedGraph pairs g with wal; see LoggedGraph.
func NewLoggedGraph(g *Graph, wal *WAL) *LoggedGraph { return storage.NewLoggedGraph(g, wal) }

// AttachWAL subscribes wal to g's commit stream: every committed epoch is
// appended (with its commit marker) from the commit path. The returned
// detach unsubscribes.
func AttachWAL(g *Graph, wal *WAL) (detach func()) { return storage.AttachWAL(g, wal) }

// RecoverWAL rebuilds a graph from a possibly torn log, applying exactly
// the epochs closed by a commit marker and reporting what was discarded.
func RecoverWAL(name string, r io.Reader) (*Graph, RecoveryInfo, error) {
	return storage.RecoverReplay(name, r)
}

// ReattachWAL resumes durable logging after a WAL was poisoned by a
// storage fault: it writes g's full state into wal as a bootstrap epoch,
// waits for durability, then attaches the commit subscription — the new
// log alone recovers everything. Quiesce writers until it returns.
func ReattachWAL(g *Graph, wal *WAL) (detach func(), err error) {
	return storage.ReattachWAL(g, wal)
}

// NewFaultSink wraps w with a seeded deterministic fault injector; see
// FaultSink.
func NewFaultSink(w io.Writer, seed int64) *FaultSink { return storage.NewFaultSink(w, seed) }

// Query engine.
type (
	// Executor runs Cypher queries against a graph.
	Executor = cypher.Executor
	// QueryResult is the outcome of one query.
	QueryResult = cypher.Result
	// ExecStats instruments one query execution (rows scanned, index
	// seeks, plan-cache hit, per-clause timings).
	ExecStats = cypher.ExecStats
	// PlanCacheStats reports an executor's prepared-query cache counters.
	PlanCacheStats = cypher.PlanCacheStats
	// ExecutorOption configures an Executor at construction
	// (NewExecutor(g, WithShardWorkers(8), ...)).
	ExecutorOption = cypher.Option
	// SeekInfo describes one index seek of an executed or explained query:
	// variable, label/type, key, bounds, and estimated vs actual rows.
	SeekInfo = cypher.SeekInfo
)

// NewExecutor returns a Cypher executor bound to g, configured by opts.
func NewExecutor(g *Graph, opts ...ExecutorOption) *Executor {
	return cypher.NewExecutor(g, opts...)
}

// Executor construction options (see the cypher package for the full set).
var (
	// WithShardWorkers sets the worker count for sharded scans (0 disables
	// sharding, <0 selects GOMAXPROCS).
	WithShardWorkers = cypher.WithShardWorkers
	// WithMorselSize sets the anchor-candidate morsel size for sharded
	// scans (0 keeps the default of 256); a pure scheduling knob that
	// never changes results.
	WithMorselSize = cypher.WithMorselSize
	// WithReorder toggles cost-based reordering of match parts.
	WithReorder = cypher.WithReorder
	// WithIndexPushdown toggles the label+property equality index.
	WithIndexPushdown = cypher.WithIndexPushdown
	// WithRangePushdown toggles ordered-index range seeks for inequality,
	// interval and STARTS WITH predicates.
	WithRangePushdown = cypher.WithRangePushdown
	// WithCountFastPath toggles the count(*) shortcut.
	WithCountFastPath = cypher.WithCountFastPath
	// WithPlanCacheCap bounds the prepared-plan cache (0 disables it).
	WithPlanCacheCap = cypher.WithPlanCacheCap
	// WithSnapshotPin pins each read-only query to the epoch current at
	// its start, so concurrent commits never change what one scan sees.
	WithSnapshotPin = cypher.WithSnapshotPin
	// WithMaxRows caps the rows one query may materialize; exceeding it
	// kills the query with a *ResourceExhaustedError (0 disables).
	WithMaxRows = cypher.WithMaxRows
	// WithMemoryBudget bounds a query's approximate retained allocation
	// in bytes (0 disables).
	WithMemoryBudget = cypher.WithMemoryBudget
	// WithQueryDeadline bounds a query's wall-clock time, enforced
	// cooperatively with typed errors (0 disables).
	WithQueryDeadline = cypher.WithQueryDeadline
	// WithAdmission gates every query through an admission controller
	// (NewGovernor provides one; nil disables).
	WithAdmission = cypher.WithAdmission
)

// Resource governance: per-query budgets and admission control.
type (
	// ResourceExhaustedError reports a query killed by a resource budget
	// (rows, memory or deadline), carrying the partial ExecStats.
	ResourceExhaustedError = cypher.ResourceExhaustedError
	// QueryPanicError is an evaluator panic recovered into an error —
	// the query fails, the process survives.
	QueryPanicError = cypher.PanicError
	// Admission is the contract between the executor and an admission
	// controller; *Governor implements it.
	Admission = cypher.Admission
	// Governor bounds concurrent query execution with a FIFO wait queue,
	// queue timeout, and typed rejections.
	Governor = governor.Governor
	// GovernorConfig tunes a Governor (concurrency limit, queue bound,
	// queue timeout).
	GovernorConfig = governor.Config
	// GovernorStats snapshots a Governor's admission counters
	// (admitted/queued/rejected/active/peak, completions vs budget kills).
	GovernorStats = governor.Stats
	// AdmissionRejectedError is the typed backpressure signal for a
	// rejected (queue-full / timed-out / cancelled) query.
	AdmissionRejectedError = governor.AdmissionRejectedError
)

// NewGovernor returns an admission controller with the given limits; pass
// it to NewExecutor via WithAdmission.
func NewGovernor(cfg GovernorConfig) *Governor { return governor.New(cfg) }

// Transport-agnostic query sessions: streamed results under caller flow
// control plus explicit transactions. This is the API the Bolt server
// (cmd/graphd) and the cypher REPL are built on.
type (
	// QuerySession is a stateful query channel over one executor: Run
	// returns a QueryCursor streaming records as the engine produces
	// them, and Begin/Commit/Rollback bracket explicit single-writer
	// transactions with snapshot rollback. One in-flight cursor at a
	// time; not safe for concurrent use.
	QuerySession = cypher.Session
	// QueryCursor iterates one result set: Next / Record / Columns /
	// Err / Close / Summary. Closing early cancels the producing query.
	QueryCursor = cypher.Cursor
)

// Session-state errors returned by QuerySession methods.
var (
	// ErrSessionClosed reports use of a closed QuerySession.
	ErrSessionClosed = cypher.ErrSessionClosed
	// ErrTxOpen reports Begin while a transaction is already open.
	ErrTxOpen = cypher.ErrTxOpen
	// ErrNoTx reports Commit/Rollback without an open transaction.
	ErrNoTx = cypher.ErrNoTx
)

// OpenSession builds an executor over g configured by opts and opens a
// query session on it. For several sessions sharing one executor (and
// its plan cache, budgets and admission), call NewExecutor once and use
// Executor.OpenSession per connection instead.
func OpenSession(g *Graph, opts ...ExecutorOption) *QuerySession {
	return cypher.NewExecutor(g, opts...).OpenSession()
}

// QueryFootprint over-approximates the labels, edge types and property
// keys a query's result can depend on; intersected with a GraphDelta it
// answers "can this epoch have changed this query's result?".
type QueryFootprint = cypher.Footprint

// FootprintOf parses a query and extracts its footprint.
func FootprintOf(src string) (*QueryFootprint, error) { return cypher.FootprintOf(src) }

// GraphStats summarizes a graph's size and connectivity.
type GraphStats = graph.Stats

// ComputeStats scans a graph and summarizes it.
func ComputeStats(g *Graph) *GraphStats { return graph.ComputeStats(g) }

// Rules and metrics.
type (
	// Rule is one consistency rule.
	Rule = rules.Rule
	// RuleCounts are the raw support/body/head counts of one evaluation.
	RuleCounts = rules.Counts
	// Score is one rule's support/coverage/confidence evaluation.
	Score = metrics.Score
	// ErrorCategory classifies generated Cypher per the paper's §4.4.
	ErrorCategory = correction.Category
)

// Scorer evaluates rules through one shared executor and plan cache; it
// is safe for concurrent use.
type Scorer = metrics.Scorer

// NewScorer returns a rule scorer bound to g; opts configure its shared
// executor (e.g. WithShardWorkers(8)).
func NewScorer(g *Graph, opts ...ExecutorOption) *Scorer { return metrics.NewScorer(g, opts...) }

// Incremental metric maintenance.
type (
	// Maintainer keeps a rule set's metric scores current as the graph
	// evolves: each committed epoch re-scores only the rules whose query
	// footprint the epoch's delta intersects (O(delta), not O(rules)).
	Maintainer = metrics.Maintainer
	// MaintainedScore is a maintained rule's current score plus its
	// sticky evaluation error, if any.
	MaintainedScore = metrics.MaintainedScore
	// MaintainerStats counts applied epochs and rescored/skipped rules.
	MaintainerStats = metrics.MaintainerStats
)

// NewMaintainer scores rs in full once and returns a maintainer that
// keeps the scores exact incrementally; call Attach to subscribe it to
// g's commit stream. Options configure the shared scoring executor.
func NewMaintainer(g *Graph, rs []Rule, opts ...ExecutorOption) *Maintainer {
	return metrics.NewMaintainer(g, rs, opts...)
}

// NewMaintainerCtx is NewMaintainer with the initial full scoring bound
// to ctx; pair it with Maintainer.AttachCtx to bound commit-path
// re-scoring too.
func NewMaintainerCtx(ctx context.Context, g *Graph, rs []Rule, opts ...ExecutorOption) *Maintainer {
	return metrics.NewMaintainerCtx(ctx, g, rs, opts...)
}

// ParseRuleNL parses a natural-language rule statement.
func ParseRuleNL(line string) (Rule, bool) { return rules.ParseNL(line) }

// EvaluateRule scores a rule on a graph via its reference Cypher.
func EvaluateRule(g *Graph, r Rule) (Score, error) { return metrics.EvaluateRule(g, r) }

// EvaluateRules scores a rule list serially; failed rules land in the
// second return value.
func EvaluateRules(g *Graph, rs []Rule) ([]Score, []error) { return metrics.EvaluateRules(g, rs) }

// EvaluateRulesParallel scores a rule list with a worker pool. Output
// order is the input order at any worker count; workers <= 0 selects
// GOMAXPROCS.
func EvaluateRulesParallel(g *Graph, rs []Rule, workers int) ([]Score, []error) {
	return metrics.EvaluateRulesParallel(g, rs, workers)
}

// EvaluateRulesParallelCtx is EvaluateRulesParallel with cancellation: a
// done context stops dispatching and aborts in-flight metric queries.
func EvaluateRulesParallelCtx(ctx context.Context, g *Graph, rs []Rule, workers int) ([]Score, []error) {
	return metrics.EvaluateRulesParallelCtx(ctx, g, rs, workers)
}

// Models.
type (
	// Model is a language model (prompt in, completion out).
	Model = llm.Model
	// ModelProfile calibrates a simulated model.
	ModelProfile = llm.Profile
	// SimModel is a deterministic simulated LLM.
	SimModel = llm.SimModel
)

// LLaMA3 returns the LLaMA-3 behavioural profile.
func LLaMA3() ModelProfile { return llm.LLaMA3() }

// Mixtral returns the Mixtral behavioural profile.
func Mixtral() ModelProfile { return llm.Mixtral() }

// NewSimModel returns a simulated model with the given profile and seed.
func NewSimModel(p ModelProfile, seed int64) *SimModel { return llm.NewSim(p, seed) }

// Mining pipeline.
type (
	// MiningConfig parameterizes one pipeline run.
	MiningConfig = mining.Config
	// MiningResult is the outcome of one pipeline run.
	MiningResult = mining.Result
	// MinedRule is one rule's journey through the pipeline.
	MinedRule = mining.MinedRule
	// Method selects sliding-window or RAG encoding delivery.
	Method = mining.Method
	// PromptMode selects zero-shot or few-shot prompting.
	PromptMode = prompt.Mode
	// FailurePolicy selects how Mine treats window-level LLM failures.
	FailurePolicy = mining.FailurePolicy
	// WindowError records one window whose completion ultimately failed.
	WindowError = mining.WindowError
	// ResilienceConfig configures the middleware stack Mine installs
	// around the model (retries, per-call timeout, circuit breaker, rate
	// limit); set it on MiningConfig.Resilience.
	ResilienceConfig = resilience.Config
	// ResilienceStats snapshots the per-layer middleware counters of a
	// resilient run (MiningResult.Resilience).
	ResilienceStats = resilience.StackStats
)

// Pipeline method and prompting constants.
const (
	SlidingWindow = mining.SlidingWindow
	RAG           = mining.RAG
	ZeroShot      = prompt.ZeroShot
	FewShot       = prompt.FewShot
	// FailFast aborts a run when any window's completion fails.
	FailFast = mining.FailFast
	// BestEffort mines from surviving windows, recording the failures.
	BestEffort = mining.BestEffort
)

// Mine runs the full rule-mining pipeline on a graph.
func Mine(g *Graph, cfg MiningConfig) (*MiningResult, error) { return mining.Mine(g, cfg) }

// MineCtx is Mine with cancellation: a done context aborts in-flight LLM
// calls and metric queries and returns ctx.Err() promptly.
func MineCtx(ctx context.Context, g *Graph, cfg MiningConfig) (*MiningResult, error) {
	return mining.MineCtx(ctx, g, cfg)
}

// Session supports interactive rule refinement (accept / reject / refine).
type Session = mining.Session

// NewSession mines an initial rule set and opens a review session.
func NewSession(g *Graph, cfg MiningConfig) (*Session, error) { return mining.NewSession(g, cfg) }

// NewSessionCtx is NewSession with cancellation for the initial round.
func NewSessionCtx(ctx context.Context, g *Graph, cfg MiningConfig) (*Session, error) {
	return mining.NewSessionCtx(ctx, g, cfg)
}

// RuleViolations renders a Cypher query listing the elements violating a
// rule (at most limit rows; limit <= 0 means 25).
func RuleViolations(r Rule, limit int) (string, error) { return rules.Violations(r, limit) }

// ExplainRule renders a domain-expert-facing rationale for a rule and its
// evaluated counts.
func ExplainRule(r Rule, c RuleCounts) string { return rules.Explain(r, c) }

// Datasets.
type (
	// DatasetOptions configures dataset generation.
	DatasetOptions = datasets.Options
)

// DefaultDatasetOptions returns the benchmark harness defaults.
func DefaultDatasetOptions() DatasetOptions { return datasets.DefaultOptions() }

// DatasetNames lists the paper's datasets.
func DatasetNames() []string { return datasets.Names() }

// Dataset generates one of the paper's datasets by name; it panics on an
// unknown name (use datasets.ByName for error handling).
func Dataset(name string, opts DatasetOptions) *Graph {
	gen, err := datasets.ByName(name)
	if err != nil {
		panic(err)
	}
	return gen(opts)
}

// Baseline miner.
type (
	// BaselineConfig controls the classical miner's pruning.
	BaselineConfig = baseline.Config
	// BaselineResult is the classical miner's output.
	BaselineResult = baseline.Result
)

// BaselineMine runs the AMIE-style comparator on a graph.
func BaselineMine(g *Graph, cfg BaselineConfig) (*BaselineResult, error) {
	return baseline.Mine(g, cfg)
}
