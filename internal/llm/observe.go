package llm

import (
	"regexp"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// observed is the partial schema a simulated model reconstructs from the
// encoded-graph text inside its prompt window. It deliberately contains
// only what the window shows: nodes outside the window are unknown, so
// edges pointing at them have unresolved endpoint labels — exactly the
// context-limit effect the paper's windowing trades against.
type observed struct {
	nodeLabels map[int64][]string   // node id -> labels (any sighting)
	described  map[int64]bool       // ids whose full node line is in-window
	labels     map[string]*labelObs // node label -> stats
	edgeTypes  map[string]*edgeObs  // edge type -> stats
	edgeLines  []edgeLine           // raw edge sightings
}

type labelObs struct {
	count int
	props map[string]*propObs
	// incomingBy counts how many of the label's nodes have at least one
	// incoming edge of each type (from incident "incoming" lines).
	incomingBy map[string]int
	outgoingBy map[string]int
}

type propObs struct {
	count    int
	kinds    map[graph.Kind]int
	distinct map[string]bool
	samples  []graph.Value
}

type edgeObs struct {
	count     int
	fromLabel map[string]int // resolved source labels
	toLabel   map[string]int
	resolved  int // edges with both endpoints visible
	selfLoops int
	props     map[string]*propObs
}

type edgeLine struct {
	typ      string
	from, to int64
	props    string
}

var (
	reNodeLine = regexp.MustCompile(`Node (\d+) with labels ([A-Za-z0-9_, ]+?) (?:has no properties|has properties \((.*?)\))\.`)
	reOutEdge  = regexp.MustCompile(`Node (\d+) has edge ([A-Za-z0-9_]+) to node (\d+)(?: \(([A-Za-z0-9_, ]+)\))?(?: with properties \((.*?)\))?\.`)
	reInEdge   = regexp.MustCompile(`Node (\d+) has incoming edge ([A-Za-z0-9_]+) from node (\d+)(?: \(([A-Za-z0-9_, ]+)\))?\.`)
	reAdjEdge  = regexp.MustCompile(`Node (\d+)(?: \(([A-Za-z0-9_, ]+)\))? is connected by ([A-Za-z0-9_]+) to node (\d+)(?: \(([A-Za-z0-9_, ]+)\))?(?: with properties \((.*?)\))?\.`)
	reTriplet  = regexp.MustCompile(`\(node (\d+): ([A-Za-z0-9_,]+) (?:has no properties|has properties \((.*?)\))\)`)
	reTripEdge = regexp.MustCompile(`\) ([A-Za-z0-9_]+) \(node (\d+):`)
)

const maxPropSamples = 8

// observe re-parses the encoded graph text of one prompt window.
func observe(text string) *observed {
	o := &observed{
		nodeLabels: map[int64][]string{},
		described:  map[int64]bool{},
		labels:     map[string]*labelObs{},
		edgeTypes:  map[string]*edgeObs{},
	}
	// Node descriptions (incident + adjacency encodings).
	for _, m := range reNodeLine.FindAllStringSubmatch(text, -1) {
		o.addNode(parseInt(m[1]), splitLabels(m[2]), m[3])
	}
	// Triplet-encoding node descriptions.
	for _, m := range reTriplet.FindAllStringSubmatch(text, -1) {
		o.addNode(parseInt(m[1]), strings.Split(m[2], ","), m[3])
	}
	// Outgoing edges (with inline neighbour labels).
	for _, m := range reOutEdge.FindAllStringSubmatch(text, -1) {
		to := parseInt(m[3])
		o.registerLabels(to, m[4])
		o.edgeLines = append(o.edgeLines, edgeLine{typ: m[2], from: parseInt(m[1]), to: to, props: m[5]})
	}
	for _, m := range reAdjEdge.FindAllStringSubmatch(text, -1) {
		from, to := parseInt(m[1]), parseInt(m[4])
		o.registerLabels(from, m[2])
		o.registerLabels(to, m[5])
		o.edgeLines = append(o.edgeLines, edgeLine{typ: m[3], from: from, to: to, props: m[6]})
	}
	// Incoming edges: (to has incoming T from from).
	incoming := map[int64]map[string]bool{}
	outgoing := map[int64]map[string]bool{}
	for _, m := range reInEdge.FindAllStringSubmatch(text, -1) {
		to, typ, from := parseInt(m[1]), m[2], parseInt(m[3])
		o.registerLabels(from, m[4])
		set := incoming[to]
		if set == nil {
			set = map[string]bool{}
			incoming[to] = set
		}
		set[typ] = true
		// Incoming lines witness the same edges as some node's outgoing
		// lines; they feed only the incoming-by-type statistics so that
		// parallel edges in outgoing lines keep their multiplicity.
		_ = from
	}
	// Triplet edges (endpoint ids only, via adjacency of matches).
	for _, m := range reTripEdge.FindAllStringSubmatch(text, -1) {
		o.edgeLines = append(o.edgeLines, edgeLine{typ: m[1], to: parseInt(m[2]), from: -1})
	}

	for _, el := range o.edgeLines {
		eo := o.edgeTypes[el.typ]
		if eo == nil {
			eo = &edgeObs{fromLabel: map[string]int{}, toLabel: map[string]int{}, props: map[string]*propObs{}}
			o.edgeTypes[el.typ] = eo
		}
		eo.count++
		fromLabels, fromOK := o.nodeLabels[el.from]
		toLabels, toOK := o.nodeLabels[el.to]
		if fromOK && toOK {
			eo.resolved++
			for _, l := range fromLabels {
				eo.fromLabel[l]++
			}
			for _, l := range toLabels {
				eo.toLabel[l]++
			}
			if el.from == el.to {
				eo.selfLoops++
			}
		}
		if el.props != "" {
			observeProps(eo.props, el.props)
		}
		if fromOK {
			set := outgoing[el.from]
			if set == nil {
				set = map[string]bool{}
				outgoing[el.from] = set
			}
			set[el.typ] = true
		}
		if toOK {
			set := incoming[el.to]
			if set == nil {
				set = map[string]bool{}
				incoming[el.to] = set
			}
			set[el.typ] = true
		}
	}

	// Fold incoming/outgoing per label, over fully described nodes only
	// (label sightings from edge lines carry no property/degree context).
	for id := range o.described {
		for _, l := range o.nodeLabels[id] {
			lo := o.labels[l]
			if lo == nil {
				continue
			}
			for typ := range incoming[id] {
				lo.incomingBy[typ]++
			}
			for typ := range outgoing[id] {
				lo.outgoingBy[typ]++
			}
		}
	}
	return o
}

// registerLabels records label knowledge about a node gleaned from an edge
// line's inline annotation, without counting the node as described.
func (o *observed) registerLabels(id int64, labelsText string) {
	if id < 0 || labelsText == "" {
		return
	}
	if _, known := o.nodeLabels[id]; known {
		return
	}
	var clean []string
	for _, l := range splitLabels(labelsText) {
		l = strings.TrimSpace(l)
		if l != "" {
			clean = append(clean, l)
		}
	}
	o.nodeLabels[id] = clean
}

func (o *observed) addNode(id int64, labels []string, propsText string) {
	var clean []string
	for _, l := range labels {
		l = strings.TrimSpace(l)
		if l != "" {
			clean = append(clean, l)
		}
	}
	if o.described[id] {
		return // overlap regions show nodes twice
	}
	o.described[id] = true
	o.nodeLabels[id] = clean
	for _, l := range clean {
		lo := o.labels[l]
		if lo == nil {
			lo = &labelObs{props: map[string]*propObs{}, incomingBy: map[string]int{}, outgoingBy: map[string]int{}}
			o.labels[l] = lo
		}
		lo.count++
		if propsText != "" {
			observeProps(lo.props, propsText)
		}
	}
}

func observeProps(dst map[string]*propObs, propsText string) {
	for _, part := range splitTopLevel(propsText) {
		i := strings.Index(part, ": ")
		if i < 0 {
			continue
		}
		key := strings.TrimSpace(part[:i])
		val, ok := graph.ParseLiteral(part[i+2:])
		if !ok {
			continue
		}
		po := dst[key]
		if po == nil {
			po = &propObs{kinds: map[graph.Kind]int{}, distinct: map[string]bool{}}
			dst[key] = po
		}
		po.count++
		po.kinds[val.Kind()]++
		h := val.Hashable()
		if !po.distinct[h] {
			po.distinct[h] = true
			if len(po.samples) < maxPropSamples {
				po.samples = append(po.samples, val)
			}
		}
	}
}

func (p *propObs) onlyKind() (graph.Kind, bool) {
	if len(p.kinds) != 1 {
		return graph.KindNull, false
	}
	for k := range p.kinds {
		return k, true
	}
	return graph.KindNull, false
}

func splitLabels(s string) []string { return strings.Split(s, ", ") }

func parseInt(s string) int64 {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// splitTopLevel splits "k: v, k2: v2" on commas outside quotes/brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}
