package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// echoModel is a trivial deterministic backend for harness tests.
type echoModel struct{}

func (echoModel) Name() string { return "echo" }
func (echoModel) Complete(p string) (Response, error) {
	return Response{Text: "RULE: echo of " + p}, nil
}

func TestFaultyTransientBoundedThenSucceeds(t *testing.T) {
	fm := NewFaulty(echoModel{}, FaultConfig{Seed: 7, TransientRate: 1, MaxTransient: 3})
	const prompt = "hello"
	var failures int
	for i := 0; i < 10; i++ {
		resp, err := fm.Complete(prompt)
		if err == nil {
			if resp.Text != "RULE: echo of hello" {
				t.Fatalf("clean completion corrupted: %q", resp.Text)
			}
			break
		}
		failures++
		var te *TransientError
		if !errors.As(err, &te) || !te.Transient() {
			t.Fatalf("injected error not transient: %v", err)
		}
	}
	if failures == 0 || failures > 3 {
		t.Fatalf("transient failures = %d, want 1..3", failures)
	}
	// Once a prompt succeeds it stays healthy.
	if _, err := fm.Complete(prompt); err != nil {
		t.Fatalf("prompt regressed after recovery: %v", err)
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	cfg := FaultConfig{Seed: 3, TransientRate: 0.5, PermanentRate: 0.2, GarbageRate: 0.3, MaxTransient: 2}
	a := NewFaulty(echoModel{}, cfg)
	b := NewFaulty(echoModel{}, cfg)
	prompts := []string{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"}
	for round := 0; round < 4; round++ {
		for _, p := range prompts {
			ra, ea := a.Complete(p)
			rb, eb := b.Complete(p)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("round %d prompt %q: error divergence %v vs %v", round, p, ea, eb)
			}
			if ra.Text != rb.Text {
				t.Fatalf("round %d prompt %q: text divergence", round, p)
			}
		}
	}
}

func TestFaultyPermanentAlwaysFails(t *testing.T) {
	fm := NewFaulty(echoModel{}, FaultConfig{Seed: 1, PermanentRate: 1})
	for i := 0; i < 5; i++ {
		_, err := fm.Complete("doomed")
		if err == nil {
			t.Fatal("permanent fault should never succeed")
		}
		var te *TransientError
		if errors.As(err, &te) {
			t.Fatal("permanent fault must not classify as transient")
		}
	}
	if fm.Stats().Permanents != 5 {
		t.Fatalf("permanent count = %d", fm.Stats().Permanents)
	}
}

func TestFaultyHangRespectsContext(t *testing.T) {
	fm := NewFaulty(echoModel{}, FaultConfig{
		Seed: 2, TransientRate: 1, HangRate: 1, Hang: time.Minute,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fm.CompleteCtx(ctx, "hang me")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored cancellation (%s)", elapsed)
	}
	if fm.Stats().Hangs == 0 {
		t.Fatal("hang not recorded")
	}
}

func TestFaultyGarbageCompletions(t *testing.T) {
	fm := NewFaulty(echoModel{}, FaultConfig{Seed: 4, GarbageRate: 1})
	resp, err := fm.Complete("mangle")
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := echoModel{}.Complete("mangle")
	if resp.Text == clean.Text {
		t.Fatal("garbage fault did not corrupt the completion")
	}
	if len(ParseRuleLines(resp.Text)) != 0 {
		t.Fatal("garbled text still parses as rules; garble too gentle")
	}
	if fm.Stats().Garbage != 1 {
		t.Fatalf("garbage count = %d", fm.Stats().Garbage)
	}
}

func TestFaultyResetReplaysSchedule(t *testing.T) {
	cfg := FaultConfig{Seed: 9, TransientRate: 1, MaxTransient: 2}
	fm := NewFaulty(echoModel{}, cfg)
	_, err1 := fm.Complete("x")
	fm.Reset()
	_, err2 := fm.Complete("x")
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("Reset did not replay the fault schedule")
	}
}

func TestFaultyUnwrap(t *testing.T) {
	inner := echoModel{}
	fm := NewFaulty(inner, FaultConfig{})
	if fm.Unwrap() != Model(inner) {
		t.Fatal("Unwrap must return the wrapped model")
	}
	if fm.Name() != "echo" {
		t.Fatal("Name must be transparent")
	}
}
