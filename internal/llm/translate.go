package llm

import (
	"fmt"
	"strings"

	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/rules"
)

// completeTranslation answers a step-2 prompt: it reconstructs the rule
// from its natural-language statement, renders the three metric queries,
// and injects the paper's §4.4 translation errors at profile rates —
// direction flips and syntax mistakes (the `=` for `=~` confusion, a typoed
// keyword). Hallucinated properties need no injection here: they enter at
// rule-generation time and flow into the queries naturally.
func (m *SimModel) completeTranslation(promptText string) Response {
	ruleNL := prompt.ExtractRuleNL(promptText)
	r, ok := rules.ParseNL(ruleNL)
	if !ok {
		return m.respond(promptText, "-- unable to translate the rule into Cypher\n")
	}
	qs := r.Queries()
	rng := m.rng("translate|" + ruleNL)

	u := rng.Float64()
	switch {
	case u < m.profile.SyntaxErrRate:
		qs = corruptSyntax(qs, rng)
	case u < m.profile.SyntaxErrRate+m.profile.DirectionErrRate:
		qs = corruptDirection(qs)
	}

	text := fmt.Sprintf("SUPPORT: %s\nBODY: %s\nHEAD: %s\n", qs.Support, qs.Body, qs.HeadTotal)
	return m.respond(promptText, text)
}

// ParseQuerySet extracts the three labeled queries from a translation
// answer. ok is false when the model declined or the answer is malformed.
func ParseQuerySet(text string) (rules.QuerySet, bool) {
	var qs rules.QuerySet
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "SUPPORT: "):
			qs.Support = strings.TrimPrefix(line, "SUPPORT: ")
		case strings.HasPrefix(line, "BODY: "):
			qs.Body = strings.TrimPrefix(line, "BODY: ")
		case strings.HasPrefix(line, "HEAD: "):
			qs.HeadTotal = strings.TrimPrefix(line, "HEAD: ")
		}
	}
	if qs.Support == "" || qs.Body == "" || qs.HeadTotal == "" {
		return rules.QuerySet{}, false
	}
	return qs, true
}

// corruptSyntax introduces one §4.4 third-category error into the support
// query: `=` where `=~` is required when a regex is present, otherwise a
// typoed RETURN keyword.
func corruptSyntax(qs rules.QuerySet, rng interface{ Intn(int) int }) rules.QuerySet {
	out := qs
	switch {
	case strings.Contains(qs.Support, "=~"):
		out.Support = strings.Replace(qs.Support, "=~", "=", 1)
	case rng.Intn(2) == 0:
		out.Support = strings.Replace(qs.Support, "RETURN", "RETRUN", 1)
	default:
		// Drop the final closing parenthesis.
		if i := strings.LastIndex(qs.Support, ")"); i >= 0 {
			out.Support = qs.Support[:i] + qs.Support[i+1:]
		}
	}
	return out
}

// corruptDirection reverses the first directed relationship in every query
// of the set (the model misread the data model's direction, §4.4's first
// category).
func corruptDirection(qs rules.QuerySet) rules.QuerySet {
	return rules.QuerySet{
		Support:   FlipFirstArrow(qs.Support),
		Body:      FlipFirstArrow(qs.Body),
		HeadTotal: FlipFirstArrow(qs.HeadTotal),
	}
}

// FlipFirstArrow reverses the first directed relationship pattern in a
// Cypher string: (a)-[..]->(b) becomes (a)<-[..]-(b) and vice versa. The
// input is returned unchanged when no directed pattern is found.
func FlipFirstArrow(q string) string {
	// Outgoing "]->" with its opening ")-[".
	if i := strings.Index(q, "]->"); i >= 0 {
		if j := strings.LastIndex(q[:i], ")-["); j >= 0 {
			return q[:j] + ")<-[" + q[j+3:i] + "]-" + q[i+3:]
		}
	}
	// Incoming ")<-[" with its closing "]-(".
	if j := strings.Index(q, ")<-["); j >= 0 {
		if i := strings.Index(q[j:], "]-("); i >= 0 {
			i += j
			return q[:j] + ")-[" + q[j+4:i] + "]->(" + q[i+3:]
		}
	}
	return q
}
