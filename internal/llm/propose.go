package llm

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// candidate is one rule proposal with its evidence score in [0, 1].
type candidate struct {
	rule  rules.Rule
	score float64
}

// Format heuristics the proposal engine recognizes in string samples.
var (
	domainFormatRe = regexp.MustCompile(`^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$`)
	dateFormatRe   = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)
	urlFormatRe    = regexp.MustCompile(`^https?://[^\s]+$`)
)

// Patterns (as emitted in rules) for the corresponding ValueFormat rules.
const (
	domainPattern = `([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}`
	datePattern   = `\d{4}-\d{2}-\d{2}`
	urlPattern    = `https?://.+`
)

// timeishKeys are property names treated as event timestamps for temporal
// rules.
var timeishKeys = map[string]bool{
	"createdAt": true, "created_at": true, "timestamp": true, "date": true,
	"at": true, "time": true, "pwdlastset": true,
}

// propose generates rule candidates from an observed window schema. All
// thresholds come from the model profile (possibly adjusted for few-shot).
func propose(o *observed, p thresholds) []candidate {
	var cands []candidate
	add := func(r rules.Rule, score float64) {
		cands = append(cands, candidate{rule: r, score: score})
	}

	labelNames := make([]string, 0, len(o.labels))
	for l := range o.labels {
		labelNames = append(labelNames, l)
	}
	sort.Strings(labelNames)

	for _, label := range labelNames {
		lo := o.labels[label]
		if lo.count < p.minEvidence {
			continue
		}
		keys := make([]string, 0, len(lo.props))
		for k := range lo.props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			po := lo.props[key]
			presence := float64(po.count) / float64(lo.count)
			if presence >= p.requiredThreshold {
				add(&rules.RequiredProperty{Label: label, Key: key}, presence)
			}
			distinctRatio := float64(len(po.distinct)) / float64(po.count)
			// Uniqueness needs more evidence than presence: a handful of
			// coincidentally distinct values at a window boundary is not a
			// key.
			if po.count >= 4*p.minEvidence && distinctRatio >= p.uniqueThreshold {
				score := distinctRatio
				if strings.EqualFold(key, "id") || strings.HasSuffix(key, "_id") {
					score += 0.15
				}
				add(&rules.UniqueProperty{Label: label, Key: key}, score)
			}
			if kind, ok := po.onlyKind(); ok && po.count >= p.minEvidence {
				if kind == graph.KindBool {
					add(&rules.ValueDomain{Label: label, Key: key,
						Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}}, 0.9)
					add(&rules.PropertyType{Label: label, Key: key, PropKind: graph.KindBool}, 0.55)
				}
				if kind == graph.KindString {
					if pat, score := formatOf(po); pat != "" {
						add(&rules.ValueFormat{Label: label, Key: key, Pattern: pat}, score)
					}
					// Small enumerations: few distinct values over many
					// observations.
					if len(po.distinct) > 1 && len(po.distinct) <= 6 && po.count >= 3*len(po.distinct) &&
						len(po.samples) == len(po.distinct) {
						allowed := make([]graph.Value, len(po.samples))
						copy(allowed, po.samples)
						sort.Slice(allowed, func(i, j int) bool { return allowed[i].SortKey() < allowed[j].SortKey() })
						add(&rules.ValueDomain{Label: label, Key: key, Allowed: allowed}, 0.62)
					}
				}
				if kind == graph.KindInt && po.count >= p.minEvidence {
					add(&rules.PropertyType{Label: label, Key: key, PropKind: graph.KindInt}, 0.5)
				}
			}
		}
	}

	typeNames := make([]string, 0, len(o.edgeTypes))
	for t := range o.edgeTypes {
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)

	for _, typ := range typeNames {
		eo := o.edgeTypes[typ]
		if eo.resolved < p.minEvidence {
			continue
		}
		fromLabel, fromPurity := dominant(eo.fromLabel, eo.resolved)
		toLabel, toPurity := dominant(eo.toLabel, eo.resolved)
		if fromLabel != "" && toLabel != "" {
			purity := minF(fromPurity, toPurity)
			if purity >= p.endpointThreshold {
				add(&rules.EdgeEndpoints{EdgeType: typ, FromLabel: fromLabel, ToLabel: toLabel}, purity)
			}
			// Mandatory incoming edge: most observed target-label nodes have
			// an incoming edge of this type.
			if lo := o.labels[toLabel]; lo != nil && lo.count >= p.minEvidence {
				frac := float64(lo.incomingBy[typ]) / float64(lo.count)
				if frac >= p.mandatoryThreshold {
					add(&rules.MandatoryEdge{Label: toLabel, EdgeType: typ, Incoming: true, OtherLabel: fromLabel}, frac)
				}
			}
			// Mandatory outgoing edge.
			if lo := o.labels[fromLabel]; lo != nil && lo.count >= p.minEvidence {
				frac := float64(lo.outgoingBy[typ]) / float64(lo.count)
				if frac >= p.mandatoryThreshold {
					add(&rules.MandatoryEdge{Label: fromLabel, EdgeType: typ, Incoming: false, OtherLabel: toLabel}, frac)
				}
			}
			// Same-label relationships: self-loop prohibition and temporal
			// ordering candidates.
			if fromLabel == toLabel {
				selfFrac := float64(eo.selfLoops) / float64(eo.resolved)
				add(&rules.NoSelfLoop{EdgeType: typ}, 0.75-selfFrac)
				if lo := o.labels[fromLabel]; lo != nil {
					for key := range lo.props {
						if timeishKeys[key] {
							add(&rules.TemporalOrder{EdgeType: typ, FromLabel: fromLabel, ToLabel: toLabel, Key: key}, 0.72)
						}
					}
				}
			}
			// Parallel-edge property uniqueness for edges with properties.
			for key := range eo.props {
				add(&rules.UniqueEdgeProp{EdgeType: typ, FromLabel: fromLabel, ToLabel: toLabel, Key: key}, 0.78)
				// Edge property presence.
				po := eo.props[key]
				pres := float64(po.count) / float64(eo.count)
				if pres >= p.requiredThreshold {
					add(&rules.RequiredProperty{Label: typ, Key: key, OnEdge: true}, pres*0.9)
				}
			}
		}
	}

	cands = append(cands, proposeAssociations(o, p)...)
	return cands
}

// proposeAssociations searches the window for the multi-hop association
// shape: (a:A)-[:E1]->(b:B)-[:E2]->(c:C) co-occurring with
// (a)-[:E3]->(d:D)-[:E4]->(c). Expensive, so the search is capped.
func proposeAssociations(o *observed, p thresholds) []candidate {
	if !p.complexSearch {
		return nil
	}
	// Index out-edges per node.
	out := map[int64][]edgeLine{}
	for _, el := range o.edgeLines {
		if el.from >= 0 {
			out[el.from] = append(out[el.from], el)
		}
	}
	found := map[assocShape]int{}
	budget := 200000
	ids := make([]int64, 0, len(o.nodeLabels))
	for id := range o.nodeLabels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	firstLabel := func(id int64) string {
		ls := o.nodeLabels[id]
		if len(ls) == 0 {
			return ""
		}
		return ls[0]
	}
	for _, a := range ids {
		for _, e1 := range out[a] {
			for _, e2 := range out[e1.to] {
				for _, e3 := range out[a] {
					if e3.typ == e1.typ {
						continue
					}
					for _, e4 := range out[e3.to] {
						budget--
						if budget <= 0 {
							return shapesToCands(found, p)
						}
						if e4.to != e2.to || e4.typ == e2.typ {
							continue
						}
						s := assocShape{
							aL: firstLabel(a), e1: e1.typ, bL: firstLabel(e1.to), e2: e2.typ,
							cL: firstLabel(e2.to), e3: e3.typ, dL: firstLabel(e3.to), e4: e4.typ,
						}
						if s.aL == "" || s.bL == "" || s.cL == "" || s.dL == "" {
							continue
						}
						if s.bL == s.dL {
							continue // degenerate: same intermediary label
						}
						found[s]++
					}
				}
			}
		}
	}
	return shapesToCands(found, p)
}

// assocShape is one labeled association shape found in a window.
type assocShape struct {
	aL, e1, bL, e2, cL, e3, dL, e4 string
}

// shapesToCands turns frequent association shapes into PathAssociation
// candidates. Only shapes seen a few times in the window survive.
func shapesToCands(found map[assocShape]int, p thresholds) []candidate {
	shapes := make([]assocShape, 0, len(found))
	for s := range found {
		shapes = append(shapes, s)
	}
	sort.Slice(shapes, func(i, j int) bool {
		if found[shapes[i]] != found[shapes[j]] {
			return found[shapes[i]] > found[shapes[j]]
		}
		return fmt.Sprint(shapes[i]) < fmt.Sprint(shapes[j])
	})
	var cands []candidate
	for _, s := range shapes {
		if found[s] < p.minEvidence {
			continue
		}
		cands = append(cands, candidate{
			rule: &rules.PathAssociation{
				ALabel: s.aL, E1: s.e1, BLabel: s.bL, E2: s.e2, CLabel: s.cL,
				ReqE1: s.e3, ReqLabel: s.dL, ReqE2: s.e4,
			},
			score: 0.92,
		})
		if len(cands) >= 2 {
			break // a window yields at most a couple of association rules
		}
	}
	return cands
}

func dominant(hist map[string]int, total int) (string, float64) {
	best, bestN := "", -1
	for l, n := range hist {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	if total == 0 || best == "" {
		return "", 0
	}
	return best, float64(bestN) / float64(total)
}

func formatOf(po *propObs) (string, float64) {
	if len(po.samples) < 2 {
		return "", 0
	}
	match := func(re *regexp.Regexp) bool {
		for _, v := range po.samples {
			if v.Kind() != graph.KindString || !re.MatchString(v.Str()) {
				return false
			}
		}
		return true
	}
	switch {
	case match(dateFormatRe):
		return datePattern, 0.8
	case match(urlFormatRe):
		return urlPattern, 0.8
	case match(domainFormatRe):
		return domainPattern, 0.78
	default:
		return "", 0
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// hallucinatedKeys is the pool of invented property names a hallucinating
// model substitutes into a rule (mirroring the paper's score / minutes /
// penaltyScore example).
var hallucinatedKeys = []string{"score", "minutes", "penaltyScore", "status", "validFrom"}

// hallucinate rewrites one proposed rule to reference a property that does
// not exist, reproducing rule-level hallucination (§4.4). It returns nil
// when the rule kind has no property to corrupt.
func hallucinate(r rules.Rule, rng *rand.Rand) rules.Rule {
	pick := func(current string) string {
		for i := 0; i < len(hallucinatedKeys); i++ {
			k := hallucinatedKeys[rng.Intn(len(hallucinatedKeys))]
			if k != current {
				return k
			}
		}
		return hallucinatedKeys[0] + "X"
	}
	switch x := r.(type) {
	case *rules.RequiredProperty:
		return &rules.RequiredProperty{Label: x.Label, Key: pick(x.Key), OnEdge: x.OnEdge}
	case *rules.UniqueProperty:
		return &rules.UniqueProperty{Label: x.Label, Key: pick(x.Key)}
	case *rules.TemporalOrder:
		return &rules.TemporalOrder{EdgeType: x.EdgeType, FromLabel: x.FromLabel, ToLabel: x.ToLabel, Key: pick(x.Key)}
	case *rules.UniqueEdgeProp:
		return &rules.UniqueEdgeProp{EdgeType: x.EdgeType, FromLabel: x.FromLabel, ToLabel: x.ToLabel, Key: pick(x.Key)}
	default:
		return nil
	}
}

// renderRules renders proposed rules as the model's textual answer.
func renderRules(rs []rules.Rule) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "RULE: %s\n", r.NL())
	}
	if b.Len() == 0 {
		b.WriteString("No consistency rules could be derived from this fragment.\n")
	}
	return b.String()
}
