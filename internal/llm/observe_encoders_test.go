package llm

import (
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/textenc"
)

// TestObserveAdjacencyEncoding checks the sim can reconstruct schema from
// the adjacency encoder's output (node lines up front, edge lines after).
func TestObserveAdjacencyEncoding(t *testing.T) {
	g, _ := encodeFixture()
	text := textenc.AdjacencyEncoder{}.Encode(g).Text()
	o := observe(text)
	if o.labels["User"] == nil || o.labels["User"].count != 12 {
		t.Fatalf("User count = %+v", o.labels["User"])
	}
	posts := o.edgeTypes["POSTS"]
	if posts == nil || posts.count != 10 {
		t.Fatalf("POSTS = %+v", posts)
	}
	if posts.resolved != 10 {
		t.Errorf("adjacency endpoints should resolve via inline labels: %+v", posts)
	}
	if posts.fromLabel["User"] != 10 || posts.toLabel["Tweet"] != 10 {
		t.Error("endpoint histograms wrong")
	}
}

// TestObserveTripletEncoding checks the best-effort triplet support: node
// descriptions are recovered even though edge endpoints are partial.
func TestObserveTripletEncoding(t *testing.T) {
	g, _ := encodeFixture()
	text := textenc.TripletEncoder{}.Encode(g).Text()
	o := observe(text)
	if o.labels["User"] == nil {
		t.Fatal("triplet nodes not observed")
	}
	if o.edgeTypes["POSTS"] == nil {
		t.Error("triplet edge types not observed")
	}
}

// TestEncoderAblationShape: the incident encoder must let the model mine at
// least as many well-formed rules as the triplet encoder (the ablation A1
// claim).
func TestEncoderAblationShape(t *testing.T) {
	g, _ := encodeFixture()
	m := NewSim(LLaMA3(), 5)
	count := func(enc textenc.Encoder) int {
		text := enc.Encode(g).Text()
		resp, err := m.Complete(promptFor(text))
		if err != nil {
			t.Fatal(err)
		}
		return len(ParseRuleLines(resp.Text))
	}
	incident := count(textenc.IncidentEncoder{})
	triplet := count(textenc.TripletEncoder{})
	if incident < triplet {
		t.Errorf("incident (%d rules) should match or beat triplet (%d)", incident, triplet)
	}
	if incident == 0 {
		t.Error("incident encoding mined nothing")
	}
}

// TestObserveValueKinds checks typed property reconstruction across kinds.
func TestObserveValueKinds(t *testing.T) {
	g := graph.New("vk")
	g.AddNode([]string{"N"}, graph.Props{
		"b": graph.NewBool(true),
		"i": graph.NewInt(1),
		"f": graph.NewFloat(1.5),
		"s": graph.NewString("x y"),
		"l": graph.NewList(graph.NewInt(1), graph.NewString("a")),
	})
	g.AddNode([]string{"N"}, graph.Props{
		"b": graph.NewBool(false),
		"i": graph.NewInt(2),
		"f": graph.NewFloat(2.5),
		"s": graph.NewString("z"),
	})
	text := textenc.IncidentEncoder{}.Encode(g).Text()
	o := observe(text)
	props := o.labels["N"].props
	wantKinds := map[string]graph.Kind{
		"b": graph.KindBool, "i": graph.KindInt, "f": graph.KindFloat,
		"s": graph.KindString, "l": graph.KindList,
	}
	for key, want := range wantKinds {
		po := props[key]
		if po == nil {
			t.Errorf("prop %q not observed", key)
			continue
		}
		if k, ok := po.onlyKind(); !ok || k != want {
			t.Errorf("prop %q kind = %v, want %v", key, k, want)
		}
	}
	if props["s"].count != 2 || len(props["s"].distinct) != 2 {
		t.Errorf("string prop stats wrong: %+v", props["s"])
	}
}

func promptFor(graphText string) string {
	return "generate consistency rules\n\nProperty graph:\n" + graphText
}
