package llm

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/textenc"
)

// encodeFixture builds a small social graph and returns its incident text.
func encodeFixture() (*graph.Graph, string) {
	g := graph.New("fix")
	var users, tweets []*graph.Node
	for i := 0; i < 12; i++ {
		users = append(users, g.AddNode([]string{"User"}, graph.Props{
			"id":   graph.NewInt(int64(i)),
			"name": graph.NewString([]string{"ann", "bob", "cat", "dan"}[i%4] + string(rune('0'+i))),
		}))
	}
	for i := 0; i < 10; i++ {
		tweets = append(tweets, g.AddNode([]string{"Tweet"}, graph.Props{
			"id":        graph.NewInt(int64(100 + i)),
			"createdAt": graph.NewInt(int64(1000 + i)),
		}))
		g.MustAddEdge(users[i%12].ID, tweets[i].ID, []string{"POSTS"}, nil)
	}
	for i := 0; i < 6; i++ {
		g.MustAddEdge(users[i].ID, users[(i+1)%12].ID, []string{"FOLLOWS"}, nil)
	}
	g.MustAddEdge(tweets[5].ID, tweets[2].ID, []string{"RETWEETS"}, nil)
	g.MustAddEdge(tweets[7].ID, tweets[1].ID, []string{"RETWEETS"}, nil)
	return g, textenc.IncidentEncoder{}.Encode(g).Text()
}

func TestObserveReconstructsSchema(t *testing.T) {
	_, text := encodeFixture()
	o := observe(text)
	if o.labels["User"] == nil || o.labels["User"].count != 12 {
		t.Fatalf("User count = %+v", o.labels["User"])
	}
	if o.labels["Tweet"].count != 10 {
		t.Errorf("Tweet count = %d", o.labels["Tweet"].count)
	}
	up := o.labels["User"].props
	if up["id"].count != 12 || up["name"].count != 12 {
		t.Errorf("User prop counts: %+v", up)
	}
	if k, ok := up["id"].onlyKind(); !ok || k != graph.KindInt {
		t.Error("id kind should be int")
	}
	posts := o.edgeTypes["POSTS"]
	if posts == nil || posts.count != 10 {
		t.Fatalf("POSTS = %+v", posts)
	}
	if posts.resolved != 10 || posts.fromLabel["User"] != 10 || posts.toLabel["Tweet"] != 10 {
		t.Errorf("POSTS endpoints unresolved: %+v", posts)
	}
	// Every tweet has an incoming POSTS.
	if o.labels["Tweet"].incomingBy["POSTS"] != 10 {
		t.Errorf("incomingBy POSTS = %d", o.labels["Tweet"].incomingBy["POSTS"])
	}
}

func TestObservePartialWindow(t *testing.T) {
	_, text := encodeFixture()
	toks := textenc.Tokenize(text)
	half := strings.Join(toks[:len(toks)/3], " ")
	o := observe(half)
	full := observe(text)
	if o.labels["User"] == nil {
		t.Skip("window too small to contain users")
	}
	if o.labels["User"].count >= full.labels["User"].count {
		t.Error("partial window should see fewer users")
	}
}

func TestObserveEmptyAndGarbage(t *testing.T) {
	o := observe("")
	if len(o.labels) != 0 || len(o.edgeTypes) != 0 {
		t.Error("empty text should observe nothing")
	}
	o = observe("The quick brown fox. Node banana! ( : )")
	if len(o.labels) != 0 {
		t.Error("garbage should observe nothing")
	}
}

func TestProposeFindsCoreRules(t *testing.T) {
	_, text := encodeFixture()
	o := observe(text)
	cands := propose(o, Mixtral().Base)
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.rule.DedupKey()] = true
	}
	for _, want := range []string{
		"required:false:User.id",
		"unique:User.id",
		"endpoints:POSTS:User->Tweet",
		"noselfloop:FOLLOWS",
		"temporal:RETWEETS:createdAt",
		"mandatory:Tweet:in:POSTS:User",
	} {
		if !keys[want] {
			t.Errorf("missing expected candidate %s (have %v)", want, keys)
		}
	}
}

func TestProposeRespectsThresholds(t *testing.T) {
	_, text := encodeFixture()
	o := observe(text)
	strict := Mixtral().Base
	strict.minEvidence = 1000
	if got := propose(o, strict); len(got) != 0 {
		t.Errorf("impossible evidence threshold should yield nothing, got %d", len(got))
	}
}

func TestSimModelRuleGeneration(t *testing.T) {
	_, text := encodeFixture()
	m := NewSim(LLaMA3(), 7)
	resp, err := m.Complete(prompt.RuleGeneration(prompt.ZeroShot, text))
	if err != nil {
		t.Fatal(err)
	}
	lines := ParseRuleLines(resp.Text)
	if len(lines) == 0 || len(lines) > LLaMA3().MaxRules {
		t.Fatalf("rule lines = %d", len(lines))
	}
	for _, nl := range lines {
		if _, ok := rules.ParseNL(nl); !ok {
			t.Errorf("model emitted unparseable rule: %q", nl)
		}
	}
	if resp.SimSeconds <= 0 || resp.PromptTokens == 0 || resp.OutputTokens == 0 {
		t.Error("response accounting missing")
	}
	// Determinism.
	resp2, _ := m.Complete(prompt.RuleGeneration(prompt.ZeroShot, text))
	if resp2.Text != resp.Text {
		t.Error("same prompt must yield identical completion")
	}
}

func TestFewShotFewerRules(t *testing.T) {
	_, text := encodeFixture()
	m := NewSim(Mixtral(), 3)
	zero, _ := m.Complete(prompt.RuleGeneration(prompt.ZeroShot, text))
	few, _ := m.Complete(prompt.RuleGeneration(prompt.FewShot, text))
	if len(ParseRuleLines(few.Text)) > len(ParseRuleLines(zero.Text)) {
		t.Errorf("few-shot should not emit more rules: zero=%d few=%d",
			len(ParseRuleLines(zero.Text)), len(ParseRuleLines(few.Text)))
	}
}

func TestModelProfilesDiffer(t *testing.T) {
	_, text := encodeFixture()
	p := prompt.RuleGeneration(prompt.ZeroShot, text)
	la, _ := NewSim(LLaMA3(), 1).Complete(p)
	mx, _ := NewSim(Mixtral(), 1).Complete(p)
	complexCount := func(text string) int {
		n := 0
		for _, nl := range ParseRuleLines(text) {
			if r, ok := rules.ParseNL(nl); ok && r.Complexity() == rules.Complex {
				n++
			}
		}
		return n
	}
	if complexCount(mx.Text) <= complexCount(la.Text)-1 {
		t.Errorf("mixtral should lean complex: llama=%d mixtral=%d",
			complexCount(la.Text), complexCount(mx.Text))
	}
}

func TestSimModelTranslation(t *testing.T) {
	m := NewSim(LLaMA3(), 7)
	nl := "Each User node should have a id property."
	resp, err := m.Complete(prompt.CypherTranslation(nl, "schema"))
	if err != nil {
		t.Fatal(err)
	}
	qs, ok := ParseQuerySet(resp.Text)
	if !ok {
		t.Fatalf("unparseable translation: %q", resp.Text)
	}
	if !strings.Contains(qs.Support, "MATCH") || !strings.Contains(qs.Body, "count(*)") {
		t.Errorf("queries look wrong: %+v", qs)
	}
}

func TestTranslationUnknownRule(t *testing.T) {
	m := NewSim(LLaMA3(), 7)
	resp, err := m.Complete(prompt.CypherTranslation("gibberish sentence.", "schema"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ParseQuerySet(resp.Text); ok {
		t.Error("unknown rule should not yield a query set")
	}
}

func TestCompleteRejectsForeignPrompt(t *testing.T) {
	m := NewSim(LLaMA3(), 7)
	if _, err := m.Complete("what is the weather?"); err == nil {
		t.Error("foreign prompt should error")
	}
}

func TestTranslationErrorInjectionRates(t *testing.T) {
	// Across many distinct rules, the Mixtral profile must inject both
	// error classes at roughly its configured rates.
	m := NewSim(Mixtral(), 99)
	syntax, direction, total := 0, 0, 0
	for _, typ := range []string{"POSTS", "FOLLOWS", "TAGS", "MENTIONS", "LIKES", "OWNS", "LINKS", "USES"} {
		for _, label := range []string{"User", "Tweet", "Match", "Team", "Squad", "Person", "Hashtag", "Link"} {
			nl := (&rules.EdgeEndpoints{EdgeType: typ, FromLabel: label, ToLabel: "Tweet"}).NL()
			resp, err := m.Complete(prompt.CypherTranslation(nl, "schema"))
			if err != nil {
				t.Fatal(err)
			}
			qs, ok := ParseQuerySet(resp.Text)
			if !ok {
				t.Fatalf("translation failed for %q", nl)
			}
			total++
			if strings.Contains(qs.Support, "RETRUN") || !strings.HasSuffix(qs.Support, ")") && strings.Count(qs.Support, "(") != strings.Count(qs.Support, ")") {
				syntax++
			}
			if strings.Contains(qs.Support, "<-[") {
				direction++
			}
		}
	}
	if syntax == 0 {
		t.Error("no syntax errors injected across 64 rules")
	}
	if direction == 0 {
		t.Error("no direction errors injected across 64 rules")
	}
	if syntax+direction > total/2 {
		t.Errorf("error injection too aggressive: %d+%d of %d", syntax, direction, total)
	}
}

func TestFlipFirstArrow(t *testing.T) {
	cases := map[string]string{
		`MATCH (a:User)-[r:POSTS]->(b:Tweet) RETURN count(*) AS n`: `MATCH (a:User)<-[r:POSTS]-(b:Tweet) RETURN count(*) AS n`,
		`MATCH (a:User)<-[r:POSTS]-(b:Tweet) RETURN count(*) AS n`: `MATCH (a:User)-[r:POSTS]->(b:Tweet) RETURN count(*) AS n`,
		`MATCH (x) RETURN count(*) AS n`:                           `MATCH (x) RETURN count(*) AS n`,
	}
	for in, want := range cases {
		if got := FlipFirstArrow(in); got != want {
			t.Errorf("FlipFirstArrow(%q)\n got %q\nwant %q", in, got, want)
		}
	}
	// Flipped queries must still parse.
	flipped := FlipFirstArrow(`MATCH (x:Tweet) WHERE (x)<-[:POSTS]-(:User) RETURN count(*) AS n`)
	if !strings.Contains(flipped, "]->") {
		t.Errorf("pattern predicate flip failed: %s", flipped)
	}
}

func TestHallucinateChangesKey(t *testing.T) {
	m := NewSim(Mixtral(), 1)
	rng := m.rng("x")
	r := &rules.RequiredProperty{Label: "User", Key: "id"}
	h := hallucinate(r, rng)
	if h == nil {
		t.Fatal("hallucinate should handle RequiredProperty")
	}
	hr := h.(*rules.RequiredProperty)
	if hr.Key == "id" || hr.Label != "User" {
		t.Errorf("hallucinated rule wrong: %+v", hr)
	}
	if hallucinate(&rules.NoSelfLoop{EdgeType: "X"}, rng) != nil {
		t.Error("NoSelfLoop has no property to hallucinate")
	}
}

func TestParseRuleLines(t *testing.T) {
	text := "preamble\nRULE: A.\n  RULE: B.\nnot a rule\nRULE:missing space\n"
	got := ParseRuleLines(text)
	if len(got) != 2 || got[0] != "A." || got[1] != "B." {
		t.Errorf("ParseRuleLines = %v", got)
	}
}

func TestParseQuerySetIncomplete(t *testing.T) {
	if _, ok := ParseQuerySet("SUPPORT: MATCH (n) RETURN count(*) AS n\n"); ok {
		t.Error("incomplete set should fail")
	}
}

func TestRuleGenHonorsExclusions(t *testing.T) {
	_, text := encodeFixture()
	m := NewSim(LLaMA3(), 7)
	base, _ := m.Complete(prompt.RuleGeneration(prompt.ZeroShot, text))
	lines := ParseRuleLines(base.Text)
	if len(lines) < 2 {
		t.Skip("not enough rules to exclude")
	}
	resp, err := m.Complete(prompt.RuleGenerationWithExclusions(prompt.ZeroShot, text, lines[:2]))
	if err != nil {
		t.Fatal(err)
	}
	for _, nl := range ParseRuleLines(resp.Text) {
		if nl == lines[0] || nl == lines[1] {
			t.Errorf("excluded rule re-proposed: %q", nl)
		}
	}
}

func TestRuleBudget(t *testing.T) {
	m := NewSim(LLaMA3(), 1)
	if m.RuleBudget(false) != LLaMA3().MaxRules || m.RuleBudget(true) != LLaMA3().MaxRulesFewShot {
		t.Error("RuleBudget wrong")
	}
}
