package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the chaos harness: FaultyModel wraps any Model and injects
// deterministic faults — transient errors, permanent errors, hangs, and
// garbage completions — so the pipeline's resilience layer can be tested
// without a flaky backend. Every fault decision derives from the seed and
// the prompt text plus a per-prompt call counter, so a whole chaotic run
// is reproducible call-for-call, and a prompt whose faults are transient
// always succeeds after a bounded number of retries.

// FaultConfig sets the chaos harness's injection rates. All rates are
// per-prompt probabilities in [0, 1], sampled deterministically from Seed
// and the prompt text.
type FaultConfig struct {
	// Seed drives all fault sampling.
	Seed int64
	// TransientRate is the chance a prompt fails transiently before
	// succeeding; the number of consecutive transient failures is 1 +
	// uniform(MaxTransient-1), so at most MaxTransient attempts are wasted.
	TransientRate float64
	// MaxTransient bounds consecutive transient failures per prompt
	// (default 2). A retry budget of MaxTransient always recovers.
	MaxTransient int
	// PermanentRate is the chance a prompt fails on every attempt.
	PermanentRate float64
	// HangRate is the chance a transient failure manifests as a hang (the
	// call blocks for Hang or until ctx is done) instead of an immediate
	// error.
	HangRate float64
	// Hang is how long a hanging call blocks (default 30s). CompleteCtx
	// hangs respect cancellation; plain Complete sleeps the full duration.
	Hang time.Duration
	// GarbageRate is the chance a prompt's first successful completion is
	// replaced by truncated garbage text. No error is returned — this is
	// the fault class retries cannot see; downstream parsing must degrade
	// gracefully instead.
	GarbageRate float64
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxTransient == 0 {
		c.MaxTransient = 2
	}
	if c.Hang == 0 {
		c.Hang = 30 * time.Second
	}
	return c
}

// FaultStats counts the faults a FaultyModel injected.
type FaultStats struct {
	Calls      int64
	Transients int64
	Hangs      int64
	Permanents int64
	Garbage    int64
}

// TransientError wraps an injected transient fault. It reports
// Transient() == true, the convention the resilience layer's retry
// classification checks.
type TransientError struct{ Err error }

func (e *TransientError) Error() string   { return e.Err.Error() }
func (e *TransientError) Unwrap() error   { return e.Err }
func (e *TransientError) Transient() bool { return true }

// FaultyModel wraps a Model with deterministic fault injection. It is safe
// for concurrent use when the wrapped model is.
type FaultyModel struct {
	inner Model
	cfg   FaultConfig

	mu    sync.Mutex
	calls map[string]int // per-prompt attempt counter

	stats struct {
		calls, transients, hangs, permanents, garbage atomic.Int64
	}
}

// NewFaulty wraps model with the chaos harness.
func NewFaulty(model Model, cfg FaultConfig) *FaultyModel {
	return &FaultyModel{inner: model, cfg: cfg.withDefaults(), calls: map[string]int{}}
}

// Name implements Model; the harness is transparent.
func (f *FaultyModel) Name() string { return f.inner.Name() }

// Unwrap exposes the wrapped model (ModelWrapper).
func (f *FaultyModel) Unwrap() Model { return f.inner }

// Stats returns the injected-fault counters so far.
func (f *FaultyModel) Stats() FaultStats {
	return FaultStats{
		Calls:      f.stats.calls.Load(),
		Transients: f.stats.transients.Load(),
		Hangs:      f.stats.hangs.Load(),
		Permanents: f.stats.permanents.Load(),
		Garbage:    f.stats.garbage.Load(),
	}
}

// Reset clears the per-prompt call counters (not the stats), so a fresh
// run over the same prompts replays the same fault schedule.
func (f *FaultyModel) Reset() {
	f.mu.Lock()
	f.calls = map[string]int{}
	f.mu.Unlock()
}

// faultPlan is the deterministic per-prompt fault schedule.
type faultPlan struct {
	permanent  bool
	transients int    // consecutive transient failures before success
	hangs      []bool // per transient attempt: hang instead of erroring
	garbage    bool   // first successful completion is garbage
}

func (f *FaultyModel) plan(promptText string) faultPlan {
	h := fnv.New64a()
	fmt.Fprintf(h, "faulty|%d|", f.cfg.Seed)
	h.Write([]byte(promptText))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	var p faultPlan
	p.permanent = rng.Float64() < f.cfg.PermanentRate
	if rng.Float64() < f.cfg.TransientRate {
		p.transients = 1 + rng.Intn(f.cfg.MaxTransient)
	}
	p.hangs = make([]bool, p.transients)
	for i := range p.hangs {
		p.hangs[i] = rng.Float64() < f.cfg.HangRate
	}
	p.garbage = rng.Float64() < f.cfg.GarbageRate
	return p
}

// Complete implements Model. Hangs block for the full configured duration.
func (f *FaultyModel) Complete(promptText string) (Response, error) {
	return f.CompleteCtx(context.Background(), promptText)
}

// CompleteCtx implements ContextModel. Injected hangs block on ctx.Done()
// or the hang timer, whichever fires first, so a per-call timeout upstream
// converts a hang into a retryable deadline error without leaking the call.
func (f *FaultyModel) CompleteCtx(ctx context.Context, promptText string) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	f.stats.calls.Add(1)
	p := f.plan(promptText)

	f.mu.Lock()
	attempt := f.calls[promptText]
	f.calls[promptText]++
	f.mu.Unlock()

	if p.permanent {
		f.stats.permanents.Add(1)
		return Response{}, fmt.Errorf("llm: %s: injected permanent backend failure", f.inner.Name())
	}
	if attempt < p.transients {
		if p.hangs[attempt] {
			f.stats.hangs.Add(1)
			t := time.NewTimer(f.cfg.Hang)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return Response{}, ctx.Err()
			case <-t.C:
			}
		}
		f.stats.transients.Add(1)
		return Response{}, &TransientError{Err: fmt.Errorf(
			"llm: %s: injected transient failure (attempt %d of %d fated)",
			f.inner.Name(), attempt+1, p.transients)}
	}

	resp, err := CompleteCtx(ctx, f.inner, promptText)
	if err != nil {
		return resp, err
	}
	if p.garbage && attempt == p.transients {
		f.stats.garbage.Add(1)
		resp.Text = garble(resp.Text)
	}
	return resp, nil
}

// garble drops the head of a completion and prepends decoder junk,
// modeling a corrupted or mid-stream-truncated generation: line prefixes
// are lost, so the pipeline's line-oriented answer parsers must cope with
// text that no longer matches their format.
func garble(text string) string {
	cut := len(text) / 2
	return "\x00\x00�" + text[cut:]
}
