// Package llm provides the language-model layer of the pipeline. Because
// the study's LLaMA-3 and Mixtral checkpoints cannot run in this offline
// environment, the package implements deterministic *simulated* models with
// per-model behavioural profiles (see DESIGN.md, "Substitutions").
//
// The simulation boundary is honest: a SimModel sees only the prompt
// string. For rule generation it re-parses the encoded graph text found in
// the prompt (observe.go) and proposes rules from that partial view
// (propose.go); for Cypher translation it renders the rule's queries and
// injects the paper's three §4.4 error classes at profile-calibrated rates
// (translate.go). Everything is reproducible from the model seed.
package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/textenc"
)

// Response is one completion.
type Response struct {
	Text         string
	PromptTokens int
	OutputTokens int
	// SimSeconds is the simulated inference latency under the profile's
	// token-throughput cost model. Wall-clock time of the simulation itself
	// is unrelated (and far smaller).
	SimSeconds float64
	// Attempts is how many model calls this completion took; resilience
	// middleware sets it when it retries. Zero means "unknown" and should be
	// read as a single attempt.
	Attempts int
}

// Model is a language model: prompt in, completion out.
type Model interface {
	Name() string
	Complete(promptText string) (Response, error)
}

// ContextModel is a Model that honors context cancellation and deadlines.
// Backends whose calls can block (network models, the FaultyModel chaos
// harness, resilience middleware) implement it so callers can abandon a
// hung or no-longer-needed call.
type ContextModel interface {
	Model
	CompleteCtx(ctx context.Context, promptText string) (Response, error)
}

// ModelWrapper is implemented by middleware that decorates another Model.
// Unwrap exposes the decorated model so callers can reach capabilities of
// the innermost model (e.g. the mining layer's rule-budget lookup) through
// any middleware stack.
type ModelWrapper interface {
	Unwrap() Model
}

// CompleteCtx completes promptText through m, honoring ctx. Models that
// implement ContextModel receive ctx directly; for a plain Model the call
// runs after a pre-flight cancellation check (it cannot be interrupted
// mid-call).
func CompleteCtx(ctx context.Context, m Model, promptText string) (Response, error) {
	if cm, ok := m.(ContextModel); ok {
		return cm.CompleteCtx(ctx, promptText)
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	return m.Complete(promptText)
}

// thresholds govern the proposal engine's evidence requirements.
type thresholds struct {
	minEvidence        int
	requiredThreshold  float64
	uniqueThreshold    float64
	endpointThreshold  float64
	mandatoryThreshold float64
	complexSearch      bool
}

// Profile is a simulated model's behavioural calibration.
type Profile struct {
	Name string

	// Rule selection.
	MaxRules         int // per call, zero-shot
	MaxRulesFewShot  int
	SimpleWeight     float64
	StructuralWeight float64
	ComplexWeight    float64
	// HallucinationRate is the chance a selected rule's property is
	// replaced by an invented one (rule-level hallucination, §4.4).
	HallucinationRate float64

	// Cypher translation error rates (§4.4's first and third categories).
	DirectionErrRate float64
	SyntaxErrRate    float64

	// Cost model (tokens per simulated second) and fixed per-call overhead.
	PromptSpeed  float64
	GenSpeed     float64
	CallOverhead float64

	Base thresholds
}

// LLaMA3 returns the LLaMA-3 profile: prefers simple schema rules (high
// support/coverage/confidence), hallucinates rarely, translates accurately.
func LLaMA3() Profile {
	return Profile{
		Name:              "Llama-3",
		MaxRules:          12,
		MaxRulesFewShot:   8,
		SimpleWeight:      1.3,
		StructuralWeight:  1.0,
		ComplexWeight:     0.25,
		HallucinationRate: 0.04,
		DirectionErrRate:  0.07,
		SyntaxErrRate:     0.07,
		PromptSpeed:       6000,
		GenSpeed:          200,
		CallOverhead:      0.3,
		Base: thresholds{
			minEvidence:        2,
			requiredThreshold:  0.93,
			uniqueThreshold:    0.98,
			endpointThreshold:  0.9,
			mandatoryThreshold: 0.92,
			complexSearch:      false,
		},
	}
}

// Mixtral returns the Mixtral profile: fewer but riskier rules, including
// complex multi-hop and temporal patterns; more translation errors.
func Mixtral() Profile {
	return Profile{
		Name:              "Mixtral",
		MaxRules:          10,
		MaxRulesFewShot:   8,
		SimpleWeight:      0.85,
		StructuralWeight:  1.0,
		ComplexWeight:     1.8,
		HallucinationRate: 0.10,
		DirectionErrRate:  0.11,
		SyntaxErrRate:     0.09,
		PromptSpeed:       6400,
		GenSpeed:          210,
		CallOverhead:      0.3,
		Base: thresholds{
			minEvidence:        2,
			requiredThreshold:  0.82,
			uniqueThreshold:    0.9,
			endpointThreshold:  0.8,
			mandatoryThreshold: 0.8,
			complexSearch:      true,
		},
	}
}

// sparseContextTokens is the graph-text size below which hallucination
// intensifies (see completeRuleGen).
const sparseContextTokens = 4000

// Profiles returns the two paper models in table order.
func Profiles() []Profile { return []Profile{LLaMA3(), Mixtral()} }

// SimModel is a deterministic simulated LLM.
type SimModel struct {
	profile Profile
	seed    int64
}

// NewSim returns a simulated model for the profile; seed drives all its
// sampling.
func NewSim(profile Profile, seed int64) *SimModel {
	return &SimModel{profile: profile, seed: seed}
}

// Name implements Model.
func (m *SimModel) Name() string { return m.profile.Name }

// Profile returns the model's calibration.
func (m *SimModel) Profile() Profile { return m.profile }

// RuleBudget reports how many merged rules a full mining run should keep
// for this model, mirroring the per-configuration rule counts the paper's
// tables show (fewer, more precise rules under few-shot prompting).
func (m *SimModel) RuleBudget(fewShot bool) int {
	if fewShot {
		return m.profile.MaxRulesFewShot
	}
	return m.profile.MaxRules
}

// rng derives a deterministic generator from the model seed and a context
// string (typically the prompt), so identical prompts always sample
// identically.
func (m *SimModel) rng(context string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", m.profile.Name, m.seed)
	h.Write([]byte(context))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// CompleteCtx implements ContextModel. The simulation itself is fast and
// non-blocking, so honoring ctx reduces to a pre-flight check.
func (m *SimModel) CompleteCtx(ctx context.Context, promptText string) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	return m.Complete(promptText)
}

// Complete implements Model. It dispatches on the prompt template.
func (m *SimModel) Complete(promptText string) (Response, error) {
	switch {
	case prompt.IsRuleGeneration(promptText):
		return m.completeRuleGen(promptText), nil
	case prompt.IsTranslation(promptText):
		return m.completeTranslation(promptText), nil
	default:
		return Response{}, fmt.Errorf("llm: %s: prompt does not match a known pipeline template", m.profile.Name)
	}
}

func (m *SimModel) completeRuleGen(promptText string) Response {
	graphText := prompt.ExtractGraphText(promptText)
	o := observe(graphText)
	fewShot := prompt.IsFewShot(promptText)
	rng := m.rng(promptText)

	// Sparse graph context invites confabulation: with little evidence in
	// front of it, the model fills gaps from its priors. This is the §4.5
	// failure mode of RAG runs, whose retrieved context is far smaller
	// than a full sliding window.
	hallucinationRate := m.profile.HallucinationRate
	if textenc.CountTokens(graphText) < sparseContextTokens {
		hallucinationRate *= 1.5
	}

	th := m.profile.Base
	maxRules := m.profile.MaxRules
	simpleW := m.profile.SimpleWeight
	if fewShot {
		// Worked examples anchor the model on precise schema rules: higher
		// evidence bars, fewer rules, a stronger pull toward the
		// exemplified (simple) kinds.
		th.requiredThreshold = minF(th.requiredThreshold+0.05, 0.99)
		th.uniqueThreshold = minF(th.uniqueThreshold+0.04, 0.995)
		th.endpointThreshold = minF(th.endpointThreshold+0.05, 0.98)
		th.mandatoryThreshold = minF(th.mandatoryThreshold+0.05, 0.98)
		maxRules = m.profile.MaxRulesFewShot
		simpleW *= 1.25
	}

	cands := propose(o, th)

	// Honor interactive-refinement exclusions: the prompt may carry rules a
	// domain expert rejected (§5 future work); an instruction-following
	// model does not propose them again.
	if rejected := prompt.ExtractExclusions(promptText); len(rejected) > 0 {
		excluded := map[string]bool{}
		for _, nl := range rejected {
			if r, ok := rules.ParseNL(nl); ok {
				excluded[r.DedupKey()] = true
			}
		}
		kept := cands[:0]
		for _, c := range cands {
			if !excluded[c.rule.DedupKey()] {
				kept = append(kept, c)
			}
		}
		cands = kept
	}

	// Weight by complexity preference with a small deterministic jitter so
	// different windows don't emit byte-identical rankings.
	type scored struct {
		c candidate
		w float64
	}
	best := map[string]scored{}
	for _, c := range cands {
		w := c.score
		switch c.rule.Complexity() {
		case rules.Simple:
			w *= simpleW
		case rules.Structural:
			w *= m.profile.StructuralWeight
		case rules.Complex:
			w *= m.profile.ComplexWeight
		}
		w *= 1 + 0.08*(rng.Float64()-0.5)
		key := c.rule.DedupKey()
		if prev, ok := best[key]; !ok || w > prev.w {
			best[key] = scored{c: c, w: w}
		}
	}
	ranked := make([]scored, 0, len(best))
	for _, s := range best {
		ranked = append(ranked, s)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].w != ranked[j].w {
			return ranked[i].w > ranked[j].w
		}
		return ranked[i].c.rule.DedupKey() < ranked[j].c.rule.DedupKey()
	})
	if len(ranked) > maxRules {
		ranked = ranked[:maxRules]
	}

	selected := make([]rules.Rule, 0, len(ranked))
	for _, s := range ranked {
		r := s.c.rule
		// Hallucination is a systematic blind spot: the decision is seeded
		// by the rule's identity, so every window that proposes the same
		// rule corrupts it the same way (and the corrupted rule survives
		// the pipeline's frequency-based merge, as in §4.4).
		hrng := m.rng("halluc|" + r.DedupKey())
		if hrng.Float64() < hallucinationRate {
			if h := hallucinate(r, hrng); h != nil {
				r = h
			}
		}
		selected = append(selected, r)
	}

	text := renderRules(selected)
	return m.respond(promptText, text)
}

func (m *SimModel) respond(promptText, output string) Response {
	pt := textenc.CountTokens(promptText)
	ot := textenc.CountTokens(output)
	return Response{
		Text:         output,
		PromptTokens: pt,
		OutputTokens: ot,
		SimSeconds: float64(pt)/m.profile.PromptSpeed +
			float64(ot)/m.profile.GenSpeed +
			m.profile.CallOverhead,
	}
}

// ParseRuleLines extracts the "RULE: ..." statements from a model's
// rule-generation answer.
func ParseRuleLines(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "RULE: "); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}
