package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// This file renders the ordered-index benchmark record (BENCH_index.json)
// as a table, wired into `benchtables -table index`. Unlike the paper
// tables, which re-run the full grid, the index table reads a recorded
// measurement file: benchmark numbers are machine-dependent and belong in
// version control next to the code change that produced them.

// indexBenchFile mirrors BENCH_index.json.
type indexBenchFile struct {
	Dataset    string                `json:"dataset"`
	CPU        string                `json:"cpu"`
	Note       string                `json:"note"`
	Benchmarks map[string]indexBench `json:"benchmarks"`
}

type indexBench struct {
	Query string                    `json:"query"`
	Modes map[string]indexBenchMode `json:"modes"`
}

type indexBenchMode struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// IndexBenchTable reads a BENCH_index.json file and renders the
// seek-vs-fullscan comparison, recomputing each speedup from the recorded
// ns/op so the table cannot drift from the raw numbers.
func IndexBenchTable(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var f indexBenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return "", fmt.Errorf("report: parsing %s: %w", path, err)
	}
	names := make([]string, 0, len(f.Benchmarks))
	for name := range f.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "Ordered-index range seeks vs. full scans (%s, %s)\n\n", f.Dataset, f.CPU)
	fmt.Fprintf(&b, "%-14s %14s %14s %9s\n", "benchmark", "seek ns/op", "fullscan ns/op", "speedup")
	for _, name := range names {
		bench := f.Benchmarks[name]
		seek, okSeek := bench.Modes["seek"]
		full, okFull := bench.Modes["fullscan"]
		if !okSeek || !okFull || seek.NsPerOp <= 0 {
			return "", fmt.Errorf("report: %s: benchmark %q needs seek and fullscan modes", path, name)
		}
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %8.1fx\n", name, seek.NsPerOp, full.NsPerOp, full.NsPerOp/seek.NsPerOp)
	}
	for _, name := range names {
		fmt.Fprintf(&b, "\n%s: %s\n", name, f.Benchmarks[name].Query)
	}
	return b.String(), nil
}
