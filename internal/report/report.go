// Package report runs the full experimental grid of the paper and renders
// every table of its evaluation section (Tables 1-6) plus the §4.4 error
// census and §4.5 boundary audit, in a layout matching the paper's.
package report

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
)

// Cell is one experimental configuration's outcome.
type Cell struct {
	Dataset string
	Model   string
	Method  mining.Method
	Mode    prompt.Mode
	Result  *mining.Result
}

// Grid holds the full set of runs for all datasets.
type Grid struct {
	Cells []Cell
}

// RunDataset executes the 2 models x 2 methods x 2 prompting modes grid on
// one graph.
func RunDataset(g *graph.Graph, seed int64) ([]Cell, error) {
	var cells []Cell
	for _, profile := range llm.Profiles() {
		model := llm.NewSim(profile, seed)
		for _, method := range mining.Methods {
			for _, mode := range prompt.Modes {
				// ScoreWorkers only parallelizes metric scoring and
				// ShardWorkers only the anchor scans inside each query;
				// neither can perturb the mined rules, the counts, or the
				// simulated LLM timings.
				res, err := mining.Mine(g, mining.Config{
					Model: model, Method: method, Mode: mode,
					ScoreWorkers: runtime.GOMAXPROCS(0),
					ShardWorkers: runtime.GOMAXPROCS(0),
				})
				if err != nil {
					return nil, fmt.Errorf("report: %s/%s/%s/%s: %w", g.Name(), profile.Name, method, mode, err)
				}
				cells = append(cells, Cell{
					Dataset: g.Name(), Model: profile.Name, Method: method, Mode: mode, Result: res,
				})
			}
		}
	}
	return cells, nil
}

// RunAll executes the grid for the named datasets (nil = all of Table 1).
func RunAll(names []string, opts datasets.Options, seed int64) (*Grid, error) {
	if names == nil {
		names = datasets.Names()
	}
	grid := &Grid{}
	for _, name := range names {
		gen, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		cells, err := RunDataset(gen(opts), seed)
		if err != nil {
			return nil, err
		}
		grid.Cells = append(grid.Cells, cells...)
	}
	return grid, nil
}

// cell returns the cell for a configuration, or nil.
func (g *Grid) cell(dataset, model string, method mining.Method, mode prompt.Mode) *Cell {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Dataset == dataset && c.Model == model && c.Method == method && c.Mode == mode {
			return c
		}
	}
	return nil
}

// Datasets returns the dataset names present in the grid, in Table 1 order.
func (g *Grid) Datasets() []string {
	seen := map[string]bool{}
	var out []string
	for _, want := range datasets.Names() {
		for _, c := range g.Cells {
			if c.Dataset == want && !seen[want] {
				seen[want] = true
				out = append(out, want)
			}
		}
	}
	// Any non-standard datasets, alphabetically.
	var extra []string
	for _, c := range g.Cells {
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			extra = append(extra, c.Dataset)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Table1 renders the dataset-statistics table from live graphs.
func Table1(opts datasets.Options) (string, error) {
	var b strings.Builder
	b.WriteString("Table 1: Size of the datasets\n")
	fmt.Fprintf(&b, "%-15s %8s %8s %12s %12s\n", "", "Nodes", "Edges", "Node Labels", "Edge Labels")
	for _, info := range datasets.Table1 {
		gen, err := datasets.ByName(info.Name)
		if err != nil {
			return "", err
		}
		g := gen(opts)
		fmt.Fprintf(&b, "%-15s %8d %8d %12d %12d\n",
			info.Name, g.NodeCount(), g.EdgeCount(), len(g.NodeLabels()), len(g.EdgeTypes()))
	}
	return b.String(), nil
}

// MetricsTable renders the Table 2/3/4 layout (support, coverage,
// confidence per model x method x prompting) for one dataset.
func (g *Grid) MetricsTable(dataset string, tableNo int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: Support, coverage and confidence for the %s dataset\n", tableNo, dataset)
	fmt.Fprintf(&b, "%-10s | %-38s | %-38s\n", "", "Sliding Window Attention", "RAG")
	fmt.Fprintf(&b, "%-10s | %6s %9s %7s %7s | %6s %9s %7s %7s\n",
		"", "#rules", "Supp", "Cov%", "Conf%", "#rules", "Supp", "Cov%", "Conf%")
	for _, mode := range prompt.Modes {
		fmt.Fprintf(&b, "--- %s ---\n", mode)
		for _, profile := range llm.Profiles() {
			swa := g.cell(dataset, profile.Name, mining.SlidingWindow, mode)
			rag := g.cell(dataset, profile.Name, mining.RAG, mode)
			if swa == nil || rag == nil {
				continue
			}
			a, r := swa.Result.Aggregate, rag.Result.Aggregate
			fmt.Fprintf(&b, "%-10s | %6d %9.0f %7.2f %7.2f | %6d %9.0f %7.2f %7.2f\n",
				profile.Name,
				a.Rules, a.MeanSupport, a.MeanCoverage, a.MeanConfidence,
				r.Rules, r.MeanSupport, r.MeanCoverage, r.MeanConfidence)
		}
	}
	return b.String()
}

// TimeTable renders Table 5 (simulated LLM mining times in seconds).
func (g *Grid) TimeTable() string {
	var b strings.Builder
	b.WriteString("Table 5: LLM rule mining times (simulated seconds)\n")
	fmt.Fprintf(&b, "%-10s | %-25s | %-25s\n", "Model", "Sliding Window Attention", "RAG")
	fmt.Fprintf(&b, "%-10s | %11s %13s | %11s %13s\n", "", "Zero-shot", "Few-shot", "Zero-shot", "Few-shot")
	for _, dataset := range g.Datasets() {
		fmt.Fprintf(&b, "--- %s ---\n", dataset)
		for _, profile := range llm.Profiles() {
			row := []float64{}
			for _, method := range mining.Methods {
				for _, mode := range prompt.Modes {
					c := g.cell(dataset, profile.Name, method, mode)
					if c == nil {
						row = append(row, -1)
						continue
					}
					// Mining time only: RAG vector-index construction is
					// one-time setup the paper's Table 5 excludes.
					row = append(row, c.Result.MiningSeconds)
				}
			}
			fmt.Fprintf(&b, "%-10s | %11.2f %13.2f | %11.2f %13.2f\n",
				profile.Name, row[0], row[1], row[2], row[3])
		}
	}
	return b.String()
}

// CorrectnessTable renders Table 6 (correct / generated Cypher queries).
func (g *Grid) CorrectnessTable() string {
	var b strings.Builder
	b.WriteString("Table 6: Number of correctly generated Cypher queries\n")
	fmt.Fprintf(&b, "%-10s | %-25s | %-25s\n", "Model", "Sliding Window Attention", "RAG")
	fmt.Fprintf(&b, "%-10s | %11s %13s | %11s %13s\n", "", "Zero-shot", "Few-shot", "Zero-shot", "Few-shot")
	for _, dataset := range g.Datasets() {
		fmt.Fprintf(&b, "--- %s ---\n", dataset)
		for _, profile := range llm.Profiles() {
			cells := []string{}
			for _, method := range mining.Methods {
				for _, mode := range prompt.Modes {
					c := g.cell(dataset, profile.Name, method, mode)
					if c == nil {
						cells = append(cells, "-")
						continue
					}
					cells = append(cells, fmt.Sprintf("%d/%d", c.Result.CypherCorrect, c.Result.CypherTotal))
				}
			}
			fmt.Fprintf(&b, "%-10s | %11s %13s | %11s %13s\n",
				profile.Name, cells[0], cells[1], cells[2], cells[3])
		}
	}
	return b.String()
}

// ErrorCensus renders the §4.4 error-category counts across all runs,
// followed by the finer-grained per-analyzer lint census (which also counts
// findings outside the paper's three error classes, such as unknown labels
// or cartesian-product warnings).
func (g *Grid) ErrorCensus() string {
	totals := map[correction.Category]int{}
	lintTotals := map[string]int{}
	for _, c := range g.Cells {
		for cat, n := range c.Result.ErrorCounts {
			totals[cat] += n
		}
		for name, n := range c.Result.LintCounts {
			lintTotals[name] += n
		}
	}
	return Census(totals, lintTotals)
}

// Census renders one §4.4 error-category table plus the per-analyzer lint
// breakdown; it is shared by the grid report and `rulemine -table errors`.
func Census(errCounts map[correction.Category]int, lintCounts map[string]int) string {
	var b strings.Builder
	b.WriteString("Error categories across all generated query sets (§4.4)\n")
	for _, cat := range correction.Categories {
		fmt.Fprintf(&b, "%-22s %4d\n", cat.String(), errCounts[cat])
	}
	b.WriteString("\nLint findings by analyzer\n")
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		seen[a.Name] = true
		if n := lintCounts[a.Name]; n > 0 {
			fmt.Fprintf(&b, "%-22s %4d  (%s)\n", a.Name, n, a.Severity)
		}
	}
	// Findings from pseudo-analyzers not in the registry (the "syntax"
	// parse gate and the cross-query "ruleset" pass), alphabetically.
	var rest []string
	for name, n := range lintCounts {
		if !seen[name] && n > 0 {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		sev := lint.Error
		if name == lint.RuleSetAnalyzer {
			sev = lint.Warning
		}
		fmt.Fprintf(&b, "%-22s %4d  (%s)\n", name, lintCounts[name], sev)
	}
	return b.String()
}

// Boundaries renders the §4.5 broken-pattern counts per dataset.
func (g *Grid) Boundaries() string {
	var b strings.Builder
	b.WriteString("Patterns broken across window boundaries (§4.5; paper: 6 / 11 / 6)\n")
	for _, dataset := range g.Datasets() {
		for _, c := range g.Cells {
			if c.Dataset == dataset && c.Method == mining.SlidingWindow {
				fmt.Fprintf(&b, "%-15s %4d broken blocks over %d windows\n",
					dataset, c.Result.BrokenPatterns, c.Result.Windows)
				break
			}
		}
	}
	return b.String()
}

// TableForDataset maps a dataset name to its paper table number (2-4).
func TableForDataset(name string) int {
	switch name {
	case "WWC2019":
		return 2
	case "Cybersecurity":
		return 3
	case "Twitter":
		return 4
	default:
		return 0
	}
}
