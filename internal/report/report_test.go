package report

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/mining"
	"github.com/graphrules/graphrules/internal/prompt"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	grid, err := RunAll([]string{"Cybersecurity"}, datasets.DefaultOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

func TestRunAllGridShape(t *testing.T) {
	grid := smallGrid(t)
	if len(grid.Cells) != 8 {
		t.Fatalf("cells = %d, want 8 (2 models x 2 methods x 2 modes)", len(grid.Cells))
	}
	if grid.cell("Cybersecurity", "Llama-3", mining.RAG, prompt.FewShot) == nil {
		t.Error("missing expected cell")
	}
	if grid.cell("Nope", "Llama-3", mining.RAG, prompt.FewShot) != nil {
		t.Error("phantom cell")
	}
	if ds := grid.Datasets(); len(ds) != 1 || ds[0] != "Cybersecurity" {
		t.Errorf("Datasets = %v", ds)
	}
}

func TestRunAllUnknownDataset(t *testing.T) {
	if _, err := RunAll([]string{"nope"}, datasets.DefaultOptions(), 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestTable1(t *testing.T) {
	out, err := Table1(datasets.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WWC2019", "2468", "14799", "Cybersecurity", "953", "4838", "Twitter", "43325", "56493"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsTableRendering(t *testing.T) {
	grid := smallGrid(t)
	out := grid.MetricsTable("Cybersecurity", 3)
	for _, want := range []string{"Table 3", "Llama-3", "Mixtral", "zero-shot", "few-shot", "#rules", "Cov%"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}

func TestTimeAndCorrectnessTables(t *testing.T) {
	grid := smallGrid(t)
	tt := grid.TimeTable()
	if !strings.Contains(tt, "Table 5") || !strings.Contains(tt, "Cybersecurity") {
		t.Errorf("time table wrong:\n%s", tt)
	}
	ct := grid.CorrectnessTable()
	if !strings.Contains(ct, "Table 6") || !strings.Contains(ct, "/") {
		t.Errorf("correctness table wrong:\n%s", ct)
	}
}

func TestErrorCensusAndBoundaries(t *testing.T) {
	grid := smallGrid(t)
	ec := grid.ErrorCensus()
	for _, want := range []string{"correct", "direction-error", "hallucinated-property", "syntax-error"} {
		if !strings.Contains(ec, want) {
			t.Errorf("census missing %q:\n%s", want, ec)
		}
	}
	bd := grid.Boundaries()
	if !strings.Contains(bd, "broken blocks") {
		t.Errorf("boundaries wrong:\n%s", bd)
	}
}

func TestCensusPseudoAnalyzerSeverities(t *testing.T) {
	out := Census(nil, map[string]int{"ruleset": 2, "syntax": 1})
	if !strings.Contains(out, "ruleset") || !strings.Contains(out, "(warning)") {
		t.Errorf("ruleset findings should render at warning severity:\n%s", out)
	}
	if !strings.Contains(out, "syntax") || !strings.Contains(out, "(error)") {
		t.Errorf("syntax findings should render at error severity:\n%s", out)
	}
}

func TestTableForDataset(t *testing.T) {
	if TableForDataset("WWC2019") != 2 || TableForDataset("Cybersecurity") != 3 ||
		TableForDataset("Twitter") != 4 || TableForDataset("x") != 0 {
		t.Error("table numbering wrong")
	}
}

// TestPaperShapes asserts the qualitative findings of §4.3/§4.5 hold on the
// Cybersecurity grid: LLaMA-3 beats Mixtral on confidence, and RAG is much
// faster than sliding windows.
func TestPaperShapes(t *testing.T) {
	grid := smallGrid(t)
	var llamaConf, mixtralConf, llamaRules, mixtralRules float64
	for _, c := range grid.Cells {
		switch c.Model {
		case "Llama-3":
			llamaConf += c.Result.Aggregate.MeanConfidence
			llamaRules += float64(c.Result.Aggregate.Rules)
		case "Mixtral":
			mixtralConf += c.Result.Aggregate.MeanConfidence
			mixtralRules += float64(c.Result.Aggregate.Rules)
		}
	}
	if llamaConf <= mixtralConf {
		t.Errorf("LLaMA-3 should lead on confidence: %f vs %f", llamaConf/4, mixtralConf/4)
	}
	for _, profile := range []string{"Llama-3", "Mixtral"} {
		swa := grid.cell("Cybersecurity", profile, mining.SlidingWindow, prompt.ZeroShot).Result
		rag := grid.cell("Cybersecurity", profile, mining.RAG, prompt.ZeroShot).Result
		if rag.MiningSeconds*5 > swa.MiningSeconds {
			t.Errorf("%s: RAG should be much faster (%f vs %f)", profile, rag.MiningSeconds, swa.MiningSeconds)
		}
	}
}
