package baseline

import (
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/rules"
)

func TestMineWWC(t *testing.T) {
	g := datasets.WWC2019(datasets.DefaultOptions())
	res, err := Mine(g, Config{MinConfidence: 90, IncludeComplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesTried < 30 {
		t.Errorf("candidates tried = %d, expected an exhaustive sweep", res.CandidatesTried)
	}
	if len(res.Scores) == 0 {
		t.Fatal("no rules survived")
	}
	keys := map[string]bool{}
	for _, s := range res.Scores {
		keys[s.Rule.DedupKey()] = true
		if s.Confidence < 90 {
			t.Errorf("rule %s below confidence threshold: %f", s.Rule.DedupKey(), s.Confidence)
		}
	}
	for _, want := range []string{
		"endpoints:IN_TOURNAMENT:Match->Tournament",
		"required:false:Team.name",
		"uniqueedge:SCORED_GOAL.minute",
	} {
		if !keys[want] {
			t.Errorf("expected surviving rule %s", want)
		}
	}
	// Sorted best-first.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Confidence > res.Scores[i-1].Confidence {
			t.Fatal("scores not sorted by confidence")
		}
	}
}

func TestMineFindsAssociation(t *testing.T) {
	g := datasets.WWC2019(datasets.Options{Seed: 42, ViolationRate: 0})
	res, err := Mine(g, Config{MinConfidence: 99, IncludeComplex: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Scores {
		if s.Rule.Kind() == rules.KindPathAssociation {
			found = true
		}
	}
	if !found {
		t.Error("clean WWC graph should yield the squad/tournament association rule")
	}
}

func TestPruningShrinksOutput(t *testing.T) {
	g := datasets.Cybersecurity(datasets.DefaultOptions())
	loose, err := Mine(g, Config{MinConfidence: 10, MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Mine(g, Config{MinConfidence: 99.5, MinSupport: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Scores) >= len(loose.Scores) {
		t.Errorf("stricter thresholds should prune: loose=%d strict=%d",
			len(loose.Scores), len(strict.Scores))
	}
	capped, err := Mine(g, Config{MinConfidence: 10, MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Scores) != 5 {
		t.Errorf("cap not applied: %d", len(capped.Scores))
	}
}

func TestBaselineOverwhelms(t *testing.T) {
	// The intro's point: unpruned data mining yields many more rules than
	// the LLM pipeline's ~dozen.
	g := datasets.WWC2019(datasets.DefaultOptions())
	res, err := Mine(g, Config{MinConfidence: 10, MinSupport: 1, IncludeComplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) < 25 {
		t.Errorf("unpruned baseline should overwhelm: %d rules", len(res.Scores))
	}
}
