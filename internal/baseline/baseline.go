// Package baseline implements a classical, AMIE-style frequency miner for
// property-graph consistency rules: exhaustive candidate enumeration over
// the graph's schema followed by support/confidence pruning. It is the
// "data-mined constraints" comparator the paper's introduction contrasts
// with the LLM pipeline — complete and exact, but prone to emitting an
// overwhelming number of rules without aggressive thresholds.
package baseline

import (
	"fmt"
	"sort"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/rules"
)

// Config controls candidate pruning.
type Config struct {
	// MinSupport drops rules satisfied by fewer elements. Default 1.
	MinSupport int64
	// MinConfidence (percent) drops unreliable rules. Default 80.
	MinConfidence float64
	// MinBody drops rules whose premise barely ever holds. Default 3.
	MinBody int64
	// MaxRules caps the output (0 = unlimited).
	MaxRules int
	// IncludeComplex enables temporal, parallel-edge and multi-hop
	// association candidates.
	IncludeComplex bool
}

func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 1
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 80
	}
	if c.MinBody == 0 {
		c.MinBody = 3
	}
	return c
}

// Result is the baseline miner's output.
type Result struct {
	// Scores are the surviving rules, best-first (confidence, then
	// support).
	Scores []metrics.Score
	// CandidatesTried counts enumerated candidates before pruning.
	CandidatesTried int
}

// Mine enumerates and scores rule candidates over the full graph.
func Mine(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	schema := graph.ExtractSchema(g)
	cands := enumerate(schema, cfg.IncludeComplex)

	res := &Result{CandidatesTried: len(cands)}
	for _, r := range cands {
		counts, err := r.CountsNative(g)
		if err != nil {
			return nil, fmt.Errorf("baseline: %s: %w", r.DedupKey(), err)
		}
		if counts.Support < cfg.MinSupport || counts.Body < cfg.MinBody {
			continue
		}
		conf := counts.Confidence()
		if conf < cfg.MinConfidence {
			continue
		}
		res.Scores = append(res.Scores, metrics.Score{
			Rule:       r,
			Counts:     counts,
			Coverage:   counts.Coverage(),
			Confidence: conf,
		})
	}
	sort.Slice(res.Scores, func(i, j int) bool {
		a, b := res.Scores[i], res.Scores[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Counts.Support != b.Counts.Support {
			return a.Counts.Support > b.Counts.Support
		}
		return a.Rule.DedupKey() < b.Rule.DedupKey()
	})
	if cfg.MaxRules > 0 && len(res.Scores) > cfg.MaxRules {
		res.Scores = res.Scores[:cfg.MaxRules]
	}
	return res, nil
}

// timeishKeys mirror the heuristic the LLM layer uses for temporal rules.
var timeishKeys = map[string]bool{
	"createdAt": true, "created_at": true, "timestamp": true, "date": true,
	"at": true, "time": true, "pwdlastset": true,
}

// enumerate produces every schema-derivable candidate.
func enumerate(s *graph.Schema, includeComplex bool) []rules.Rule {
	var out []rules.Rule

	for _, label := range s.NodeLabelNames() {
		ls := s.NodeLabels[label]
		for _, key := range ls.PropKeys() {
			ps := ls.Props[key]
			out = append(out,
				&rules.RequiredProperty{Label: label, Key: key},
				&rules.UniqueProperty{Label: label, Key: key},
				&rules.PropertyType{Label: label, Key: key, PropKind: ps.DominantKind()},
			)
			if ps.DominantKind() == graph.KindBool {
				out = append(out, &rules.ValueDomain{Label: label, Key: key,
					Allowed: []graph.Value{graph.NewBool(true), graph.NewBool(false)}})
			}
		}
	}

	for _, typ := range s.EdgeLabelNames() {
		es := s.EdgeLabels[typ]
		from, to := es.DominantEndpoints()
		if from == "" || to == "" {
			continue
		}
		out = append(out,
			&rules.EdgeEndpoints{EdgeType: typ, FromLabel: from, ToLabel: to},
			&rules.MandatoryEdge{Label: to, EdgeType: typ, Incoming: true, OtherLabel: from},
			&rules.MandatoryEdge{Label: from, EdgeType: typ, Incoming: false, OtherLabel: to},
		)
		for _, key := range es.PropKeys() {
			out = append(out, &rules.RequiredProperty{Label: typ, Key: key, OnEdge: true})
		}
		if from == to {
			out = append(out, &rules.NoSelfLoop{EdgeType: typ})
		}
		if !includeComplex {
			continue
		}
		if from == to {
			if ls := s.NodeLabels[from]; ls != nil {
				for _, key := range ls.PropKeys() {
					if timeishKeys[key] {
						out = append(out, &rules.TemporalOrder{EdgeType: typ, FromLabel: from, ToLabel: to, Key: key})
					}
				}
			}
		}
		for _, key := range es.PropKeys() {
			out = append(out, &rules.UniqueEdgeProp{EdgeType: typ, FromLabel: from, ToLabel: to, Key: key})
		}
	}

	if includeComplex {
		out = append(out, enumerateAssociations(s)...)
	}
	return rules.Dedupe(out)
}

// enumerateAssociations builds multi-hop association candidates from the
// schema's dominant endpoint pairs: body (A-E1->B-E2->C) with requirement
// (A-E3->D-E4->C), B != D.
func enumerateAssociations(s *graph.Schema) []rules.Rule {
	type ep struct{ typ, from, to string }
	var eps []ep
	for _, typ := range s.EdgeLabelNames() {
		from, to := s.EdgeLabels[typ].DominantEndpoints()
		if from != "" && to != "" {
			eps = append(eps, ep{typ, from, to})
		}
	}
	var out []rules.Rule
	for _, e1 := range eps {
		for _, e2 := range eps {
			if e2.from != e1.to {
				continue
			}
			for _, e3 := range eps {
				if e3.from != e1.from || e3.typ == e1.typ || e3.to == e1.to {
					continue
				}
				for _, e4 := range eps {
					if e4.from != e3.to || e4.to != e2.to || e4.typ == e2.typ {
						continue
					}
					out = append(out, &rules.PathAssociation{
						ALabel: e1.from, E1: e1.typ, BLabel: e1.to, E2: e2.typ, CLabel: e2.to,
						ReqE1: e3.typ, ReqLabel: e3.to, ReqE2: e4.typ,
					})
				}
			}
		}
	}
	return out
}
