// Package storage persists property graphs: a compact binary snapshot
// format, a JSON interchange format, CSV import/export and a write-ahead
// log for incremental mutation capture. Together these make the in-memory
// graph engine a durable substrate (the Neo4j-storage stand-in).
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/graphrules/graphrules/internal/graph"
)

// Binary snapshot layout:
//
//	magic "GRSN" | version u8 | name | nodeCount uvarint | nodes | edgeCount
//	uvarint | edges
//
// where each node is: id uvarint | labels | props, each edge is: id | from
// | to | labels | props; strings are uvarint length + bytes; props are
// count + (key, value) pairs; values are a kind byte + payload.
const (
	snapshotMagic   = "GRSN"
	snapshotVersion = 1
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("storage: bad snapshot")

// WriteSnapshot serializes the graph to w in the binary snapshot format.
func WriteSnapshot(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	writeString(bw, g.Name())

	nodes := g.Nodes()
	writeUvarint(bw, uint64(len(nodes)))
	for _, id := range nodes {
		n := g.Node(id)
		writeUvarint(bw, uint64(n.ID))
		writeStringSlice(bw, n.Labels)
		if err := writeProps(bw, n.Props); err != nil {
			return err
		}
	}
	edges := g.Edges()
	writeUvarint(bw, uint64(len(edges)))
	for _, id := range edges {
		e := g.Edge(id)
		writeUvarint(bw, uint64(e.ID))
		writeUvarint(bw, uint64(e.From))
		writeUvarint(bw, uint64(e.To))
		writeStringSlice(bw, e.Labels)
		if err := writeProps(bw, e.Props); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a graph from the binary snapshot format. Node
// and edge IDs are NOT preserved verbatim; topology, labels and properties
// are (IDs are reassigned densely in snapshot order).
func ReadSnapshot(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, ver)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	g := graph.New(name)

	nodeCount, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	idMap := make(map[graph.ID]graph.ID, nodeCount)
	for i := uint64(0); i < nodeCount; i++ {
		oldID, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		labels, err := readStringSlice(br)
		if err != nil {
			return nil, err
		}
		props, err := readProps(br)
		if err != nil {
			return nil, err
		}
		n := g.AddNode(labels, props)
		idMap[graph.ID(oldID)] = n.ID
	}
	edgeCount, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < edgeCount; i++ {
		if _, err := readUvarint(br); err != nil { // edge id (regenerated)
			return nil, err
		}
		from, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		to, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		labels, err := readStringSlice(br)
		if err != nil {
			return nil, err
		}
		props, err := readProps(br)
		if err != nil {
			return nil, err
		}
		nf, ok1 := idMap[graph.ID(from)]
		nt, ok2 := idMap[graph.ID(to)]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: edge references unknown node %d->%d", ErrBadSnapshot, from, to)
		}
		if _, err := g.AddEdge(nf, nt, labels, props); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}
	return g, nil
}

// SaveFile writes a binary snapshot to path (atomically via a temp file).
func SaveFile(path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, g); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a binary snapshot from path.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ---------- low-level encoding ----------

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return v, nil
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

const maxStringLen = 1 << 26 // 64 MiB, a sanity bound against corruption

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d", ErrBadSnapshot, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return string(buf), nil
}

func writeStringSlice(w *bufio.Writer, ss []string) {
	writeUvarint(w, uint64(len(ss)))
	for _, s := range ss {
		writeString(w, s)
	}
}

func readStringSlice(r *bufio.Reader) ([]string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxStringLen {
		return nil, fmt.Errorf("%w: slice length %d", ErrBadSnapshot, n)
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = readString(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func writeProps(w *bufio.Writer, p graph.Props) error {
	keys := p.Keys()
	writeUvarint(w, uint64(len(keys)))
	for _, k := range keys {
		writeString(w, k)
		if err := writeValue(w, p[k]); err != nil {
			return err
		}
	}
	return nil
}

func readProps(r *bufio.Reader) (graph.Props, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxStringLen {
		return nil, fmt.Errorf("%w: props length %d", ErrBadSnapshot, n)
	}
	if n == 0 {
		return nil, nil
	}
	p := make(graph.Props, n)
	for i := uint64(0); i < n; i++ {
		k, err := readString(r)
		if err != nil {
			return nil, err
		}
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		p[k] = v
	}
	return p, nil
}

func writeValue(w *bufio.Writer, v graph.Value) error {
	w.WriteByte(byte(v.Kind()))
	switch v.Kind() {
	case graph.KindNull:
	case graph.KindBool:
		if v.Bool() {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	case graph.KindInt:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.Int())
		w.Write(buf[:n])
	case graph.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		w.Write(buf[:])
	case graph.KindString:
		writeString(w, v.Str())
	case graph.KindList:
		writeUvarint(w, uint64(len(v.List())))
		for _, e := range v.List() {
			if err := writeValue(w, e); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("storage: unsupported value kind %v", v.Kind())
	}
	return nil
}

func readValue(r *bufio.Reader) (graph.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return graph.Null, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	switch graph.Kind(kb) {
	case graph.KindNull:
		return graph.Null, nil
	case graph.KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return graph.Null, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return graph.NewBool(b != 0), nil
	case graph.KindInt:
		n, err := binary.ReadVarint(r)
		if err != nil {
			return graph.Null, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return graph.NewInt(n), nil
	case graph.KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return graph.Null, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return graph.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case graph.KindString:
		s, err := readString(r)
		if err != nil {
			return graph.Null, err
		}
		return graph.NewString(s), nil
	case graph.KindList:
		n, err := readUvarint(r)
		if err != nil {
			return graph.Null, err
		}
		if n > maxStringLen {
			return graph.Null, fmt.Errorf("%w: list length %d", ErrBadSnapshot, n)
		}
		elems := make([]graph.Value, n)
		for i := range elems {
			if elems[i], err = readValue(r); err != nil {
				return graph.Null, err
			}
		}
		return graph.NewList(elems...), nil
	default:
		return graph.Null, fmt.Errorf("%w: value kind %d", ErrBadSnapshot, kb)
	}
}
