package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// crashSink is an in-memory WAL sink that models a crash-prone disk: Write
// lands in a volatile buffer, Sync moves the high-water mark of what would
// survive a crash. durableBytes is "the disk after pulling the plug".
type crashSink struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	synced int
	syncs  int
}

func (s *crashSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *crashSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = s.buf.Len()
	s.syncs++
	return nil
}

func (s *crashSink) durableBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()[:s.synced]...)
}

func (s *crashSink) allBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

// fidelityProps exercises every value kind, including the adversarial
// cases: whole floats (marshal as bare ints), int64 beyond float64's 2^53
// integer range, and nested lists mixing all of it.
func fidelityProps() graph.Props {
	return graph.Props{
		"i":     graph.NewInt(42),
		"big":   graph.NewInt(int64(1)<<62 + 3),
		"neg":   graph.NewInt(-9007199254740993), // 2^53+1, float64-unrepresentable
		"f":     graph.NewFloat(3.25),
		"whole": graph.NewFloat(1.0),
		"tiny":  graph.NewFloat(5e-324),
		"b":     graph.NewBool(true),
		"s":     graph.NewString("héllo \"wal\"\nline"),
		"list": graph.NewList(
			graph.NewInt(1), graph.NewFloat(2.0), graph.NewString("x"),
			graph.NewList(graph.NewBool(false), graph.NewFloat(0.5)),
		),
	}
}

func valuesEqualExact(t *testing.T, path string, want, got graph.Value) {
	t.Helper()
	if want.Kind() != got.Kind() {
		t.Errorf("%s: kind %v -> %v", path, want.Kind(), got.Kind())
		return
	}
	switch want.Kind() {
	case graph.KindInt:
		if want.Int() != got.Int() {
			t.Errorf("%s: int %d -> %d", path, want.Int(), got.Int())
		}
	case graph.KindFloat:
		if math.Float64bits(want.Float()) != math.Float64bits(got.Float()) {
			t.Errorf("%s: float %v -> %v", path, want.Float(), got.Float())
		}
	case graph.KindBool:
		if want.Bool() != got.Bool() {
			t.Errorf("%s: bool %v -> %v", path, want.Bool(), got.Bool())
		}
	case graph.KindString:
		if want.Str() != got.Str() {
			t.Errorf("%s: string %q -> %q", path, want.Str(), got.Str())
		}
	case graph.KindList:
		if len(want.List()) != len(got.List()) {
			t.Errorf("%s: list len %d -> %d", path, len(want.List()), len(got.List()))
			return
		}
		for i := range want.List() {
			valuesEqualExact(t, fmt.Sprintf("%s[%d]", path, i), want.List()[i], got.List()[i])
		}
	}
}

// TestWALRoundTripFidelity pins the satellite fix: Append -> Replay is
// value-identical (kind AND bits) for int/float/bool/string/list props —
// whole floats stay floats, big int64s keep every bit.
func TestWALRoundTripFidelity(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLoggedGraph(graph.New("fid"), NewWAL(&buf))
	props := fidelityProps()
	n, err := lg.AddNode([]string{"N"}, props)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.SetNodeProp(n.ID, "set-whole", graph.NewFloat(7.0)); err != nil {
		t.Fatal(err)
	}
	if err := lg.SetNodeProp(n.ID, "set-big", graph.NewInt(1<<61)); err != nil {
		t.Fatal(err)
	}

	got, err := Replay("fid", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rn := got.Node(got.Nodes()[0])
	for k, want := range props {
		valuesEqualExact(t, k, want, rn.Prop(k))
	}
	valuesEqualExact(t, "set-whole", graph.NewFloat(7.0), rn.Prop("set-whole"))
	valuesEqualExact(t, "set-big", graph.NewInt(1<<61), rn.Prop("set-big"))
}

// TestWALRoundTripFidelityProperty fuzzes random value trees through
// Append -> Replay and demands exact identity.
func TestWALRoundTripFidelityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var randomValue func(depth int) graph.Value
	randomValue = func(depth int) graph.Value {
		switch k := rng.Intn(6); {
		case k == 0:
			return graph.NewInt(rng.Int63() - rng.Int63())
		case k == 1:
			// Mix whole and fractional floats deliberately.
			if rng.Intn(2) == 0 {
				return graph.NewFloat(float64(rng.Intn(100)))
			}
			return graph.NewFloat(rng.NormFloat64())
		case k == 2:
			return graph.NewBool(rng.Intn(2) == 0)
		case k == 3:
			return graph.NewString(fmt.Sprintf("s%d\n\"%d\"", rng.Intn(1000), rng.Intn(1000)))
		case k == 4 && depth < 2:
			n := rng.Intn(4)
			elems := make([]graph.Value, n)
			for i := range elems {
				elems[i] = randomValue(depth + 1)
			}
			return graph.NewList(elems...)
		default:
			return graph.NewInt(int64(rng.Intn(10)))
		}
	}

	for trial := 0; trial < 50; trial++ {
		var buf bytes.Buffer
		lg := NewLoggedGraph(graph.New("prop"), NewWAL(&buf))
		props := graph.Props{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			props[fmt.Sprintf("k%d", i)] = randomValue(0)
		}
		if _, err := lg.AddNode([]string{"N"}, props); err != nil {
			t.Fatal(err)
		}
		got, err := Replay("prop", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rn := got.Node(got.Nodes()[0])
		for k, want := range props {
			valuesEqualExact(t, fmt.Sprintf("trial %d %s", trial, k), want, rn.Prop(k))
		}
	}
}

// buildEpochLog writes a WAL with a mix of single-mutator epochs and a
// multi-op batch epoch (with a cascading removal), returning the log bytes.
func buildEpochLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	lg := NewLoggedGraph(graph.New("crash"), NewWAL(&buf))
	a, err := lg.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "w": graph.NewFloat(1.0)})
	if err != nil {
		t.Fatal(err)
	}
	bNode, _ := lg.AddNode([]string{"Tweet"}, nil)
	if _, err := lg.AddEdge(a.ID, bNode.ID, []string{"POSTS"}, graph.Props{"at": graph.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if err := lg.SetNodeProp(a.ID, "name", graph.NewString("alice")); err != nil {
		t.Fatal(err)
	}

	// One batch epoch: adds, an edge, a prop, and a cascading removal.
	lb := lg.NewBatch()
	c := lb.AddNode([]string{"Temp"}, nil)
	d := lb.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(2)})
	if _, err := lb.AddEdge(c.ID, d.ID, []string{"REF"}, nil); err != nil {
		t.Fatal(err)
	}
	lb.SetNodeProp(d.ID, "name", graph.NewString("bob"))
	lb.RemoveNode(c.ID) // cascades over the REF edge inside the same epoch
	if _, err := lb.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := lg.AddNodeLabels(a.ID, "Admin"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// committedPrefixEnds returns the byte offsets just past each commit
// marker's newline — the valid recovery points of the log.
func committedPrefixEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		off += len(line)
		var rec Record
		if err := unmarshalRecord(bytes.TrimSuffix(line, []byte("\n")), &rec); err != nil {
			t.Fatalf("bad log line: %v", err)
		}
		if rec.Op == OpCommit {
			ends = append(ends, off)
		}
	}
	return ends
}

func renderGraph(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCrashRecoveryEveryOffset simulates a torn WAL tail at EVERY byte
// offset of the log and asserts RecoverReplay reconstructs exactly the
// longest committed prefix that fully fits — never a half-epoch, never
// less than the last durable commit marker.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	data := buildEpochLog(t)
	ends := committedPrefixEnds(t, data)
	if len(ends) < 3 {
		t.Fatalf("log has %d commit markers, want several", len(ends))
	}

	// Reference graphs: strict replay of each committed prefix.
	refs := map[int]string{0: renderGraph(t, graph.New("crash"))}
	for _, end := range ends {
		g, err := Replay("crash", bytes.NewReader(data[:end]))
		if err != nil {
			t.Fatal(err)
		}
		refs[end] = renderGraph(t, g)
	}

	for cut := 0; cut <= len(data); cut++ {
		// The expected recovery point: last marker end <= cut.
		want := 0
		for _, end := range ends {
			if end <= cut {
				want = end
			}
		}
		g, info, err := RecoverReplay("crash", bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := renderGraph(t, g); got != refs[want] {
			t.Fatalf("cut %d: recovered graph != committed prefix (want prefix end %d)\n got: %s\nwant: %s",
				cut, want, got, refs[want])
		}
		wantTorn := cut > 0 && data[cut-1] != '\n'
		if info.Torn != wantTorn {
			t.Errorf("cut %d: Torn = %v, want %v", cut, info.Torn, wantTorn)
		}
	}
}

// TestRecoverReplayMidFileCorruption flips bytes mid-log: recovery keeps
// the committed prefix before the corrupt line and discards the rest.
func TestRecoverReplayMidFileCorruption(t *testing.T) {
	data := buildEpochLog(t)
	ends := committedPrefixEnds(t, data)
	corruptAt := ends[1] + 3 // inside the record after the 2nd marker
	mut := append([]byte(nil), data...)
	mut[corruptAt] = 0x01

	g, info, err := RecoverReplay("crash", bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Error("corruption not flagged as torn")
	}
	want, err := Replay("crash", bytes.NewReader(data[:ends[1]]))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, g) != renderGraph(t, want) {
		t.Error("recovery after corruption != committed prefix before it")
	}
}

// TestRecoverReplayLegacyLog: a marker-less log (every record its own
// commit) recovers the whole well-formed prefix, torn fragment dropped.
func TestRecoverReplayLegacyLog(t *testing.T) {
	legacy := `{"op":"add-node","id":0,"labels":["N"],"props":{"x":1}}
{"op":"add-node","id":1,"labels":["N"]}
{"op":"add-edge","id":0,"from":0,"to":1,"labels":["R"]}
{"op":"add-node","id":2,"la`
	g, info, err := RecoverReplayLegacy("legacy", bytes.NewReader([]byte(legacy)))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn || info.Applied != 3 {
		t.Fatalf("legacy recovery: %+v", info)
	}
	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatalf("legacy graph: %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
}

// TestGroupCommitNeverAcksUnflushedEpoch drives a group WAL over a
// crash-modeling sink with an effectively disabled timer: the ONLY way an
// epoch becomes durable is the Commit barrier. After every acknowledged
// commit, a simulated crash (keeping only synced bytes) must recover that
// epoch.
func TestGroupCommitNeverAcksUnflushedEpoch(t *testing.T) {
	sink := &crashSink{}
	wal := NewGroupWAL(sink, time.Hour)
	defer wal.Close()
	lg := NewLoggedGraph(graph.New("ack"), wal)

	var ids []graph.ID
	for i := 0; i < 10; i++ {
		lb := lg.NewBatch()
		n := lb.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
		if len(ids) > 0 {
			if _, err := lb.AddEdge(ids[len(ids)-1], n.ID, []string{"R"}, nil); err != nil {
				t.Fatal(err)
			}
		}
		d, err := lb.Commit() // ack: must imply durability
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, n.ID)

		g, info, rerr := RecoverReplay("ack", bytes.NewReader(sink.durableBytes()))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if info.Epoch != d.Epoch {
			t.Fatalf("iter %d: acked epoch %d but crash recovers epoch %d", i, d.Epoch, info.Epoch)
		}
		if g.NodeCount() != i+1 {
			t.Fatalf("iter %d: crash recovers %d nodes", i, g.NodeCount())
		}
	}
	if sink.syncs == 0 {
		t.Fatal("no syncs observed")
	}
}

// TestGroupCommitCoalesces shows the point of group commit: many appends
// from concurrent epochs share fsyncs instead of one sync per record.
func TestGroupCommitCoalesces(t *testing.T) {
	sink := &crashSink{}
	wal := NewGroupWAL(sink, 2*time.Millisecond)
	g := graph.New("coalesce")
	detach := AttachWAL(g, wal)
	defer detach()

	const writers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.AddNode([]string{"N"}, graph.Props{"w": graph.NewInt(int64(w))})
			}
		}(w)
	}
	wg.Wait()
	if err := wal.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	records := writers * per * 2 // one op + one marker per epoch
	if wal.Len() != records {
		t.Fatalf("wal len = %d, want %d", wal.Len(), records)
	}
	if sink.syncs >= records {
		t.Errorf("group commit did not coalesce: %d syncs for %d records", sink.syncs, records)
	}
	got, err := Replay("coalesce", bytes.NewReader(sink.allBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != writers*per {
		t.Fatalf("replayed %d nodes", got.NodeCount())
	}
}

// TestGroupWALCloseAndErrors covers lifecycle edges: append-after-close,
// commit-after-close, double close.
func TestGroupWALCloseAndErrors(t *testing.T) {
	sink := &crashSink{}
	wal := NewGroupWAL(sink, time.Hour)
	if err := wal.Append(Record{Op: OpCommit, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if wal.Durable() != wal.LSN() {
		t.Error("close did not flush")
	}
	if err := wal.Append(Record{Op: OpCommit}); err != ErrWALClosed {
		t.Errorf("append after close: %v", err)
	}
	if err := wal.Commit(); err != nil {
		t.Errorf("commit after close: %v", err)
	}
	if err := wal.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestAttachWALMatchesLoggedGraph: the subscriber path and the explicit
// LoggedGraph path produce replay-identical logs for the same mutations.
func TestAttachWALMatchesLoggedGraph(t *testing.T) {
	run := func(mutate func(addNode func(labels []string, props graph.Props) graph.ID)) string {
		var buf bytes.Buffer
		g := graph.New("m")
		detach := AttachWAL(g, NewWAL(&buf))
		defer detach()
		mutate(func(labels []string, props graph.Props) graph.ID {
			return g.AddNode(labels, props).ID
		})
		got, err := Replay("m", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return renderGraph(t, got)
	}
	a := run(func(addNode func([]string, graph.Props) graph.ID) {
		id := addNode([]string{"N"}, fidelityProps())
		_ = id
	})

	var buf bytes.Buffer
	lg := NewLoggedGraph(graph.New("m"), NewWAL(&buf))
	if _, err := lg.AddNode([]string{"N"}, fidelityProps()); err != nil {
		t.Fatal(err)
	}
	got, err := Replay("m", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, got) != a {
		t.Error("AttachWAL log diverges from LoggedGraph log")
	}
}

// TestRecordJSONStability pins the wire encoding of the fidelity-critical
// value shapes.
func TestRecordJSONStability(t *testing.T) {
	b, err := json.Marshal(Record{Op: OpSetNodeProp, ID: 3, Key: "x", Value: walValue(graph.NewFloat(1.0))})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`{"$f":"1"}`)) {
		t.Errorf("whole float encoding: %s", b)
	}
	b, _ = json.Marshal(Record{Op: OpSetNodeProp, ID: 3, Key: "x", Value: walValue(graph.NewInt(1 << 62))})
	if !bytes.Contains(b, []byte(`4611686018427387904`)) {
		t.Errorf("big int encoding: %s", b)
	}
}
