package storage

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// CSV layout: two streams.
//
//	nodes: id,labels,props        (labels ";"-joined, props as JSON object)
//	edges: id,from,to,labels,props
//
// This mirrors the neo4j-admin import convention closely enough for
// eyeballing and spreadsheet work.

// WriteNodesCSV writes the node table.
func WriteNodesCSV(w io.Writer, g *graph.Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "labels", "props"}); err != nil {
		return err
	}
	var outErr error
	g.ForEachNode(func(n *graph.Node) {
		if outErr != nil {
			return
		}
		props, err := json.Marshal(propsToAny(n.Props))
		if err != nil {
			outErr = err
			return
		}
		outErr = cw.Write([]string{
			strconv.FormatInt(int64(n.ID), 10),
			strings.Join(n.Labels, ";"),
			string(props),
		})
	})
	if outErr != nil {
		return outErr
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgesCSV writes the edge table.
func WriteEdgesCSV(w io.Writer, g *graph.Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "from", "to", "labels", "props"}); err != nil {
		return err
	}
	var outErr error
	g.ForEachEdge(func(e *graph.Edge) {
		if outErr != nil {
			return
		}
		props, err := json.Marshal(propsToAny(e.Props))
		if err != nil {
			outErr = err
			return
		}
		outErr = cw.Write([]string{
			strconv.FormatInt(int64(e.ID), 10),
			strconv.FormatInt(int64(e.From), 10),
			strconv.FormatInt(int64(e.To), 10),
			strings.Join(e.Labels, ";"),
			string(props),
		})
	})
	if outErr != nil {
		return outErr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV builds a graph named name from node and edge CSV streams in the
// layout written by WriteNodesCSV / WriteEdgesCSV.
func ReadCSV(name string, nodes, edges io.Reader) (*graph.Graph, error) {
	g := graph.New(name)
	nr := csv.NewReader(nodes)
	nr.FieldsPerRecord = 3
	rows, err := nr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: nodes csv: %w", err)
	}
	idMap := map[int64]graph.ID{}
	for i, row := range rows {
		if i == 0 && row[0] == "id" {
			continue // header
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("storage: nodes csv row %d: bad id %q", i, row[0])
		}
		props, err := parseCSVProps(row[2])
		if err != nil {
			return nil, fmt.Errorf("storage: nodes csv row %d: %w", i, err)
		}
		n := g.AddNode(splitCSVLabels(row[1]), props)
		idMap[id] = n.ID
	}

	er := csv.NewReader(edges)
	er.FieldsPerRecord = 5
	rows, err = er.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: edges csv: %w", err)
	}
	for i, row := range rows {
		if i == 0 && row[0] == "id" {
			continue
		}
		from, err1 := strconv.ParseInt(row[1], 10, 64)
		to, err2 := strconv.ParseInt(row[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("storage: edges csv row %d: bad endpoints", i)
		}
		props, err := parseCSVProps(row[4])
		if err != nil {
			return nil, fmt.Errorf("storage: edges csv row %d: %w", i, err)
		}
		nf, ok1 := idMap[from]
		nt, ok2 := idMap[to]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("storage: edges csv row %d: unknown node", i)
		}
		if _, err := g.AddEdge(nf, nt, splitCSVLabels(row[3]), props); err != nil {
			return nil, fmt.Errorf("storage: edges csv row %d: %w", i, err)
		}
	}
	return g, nil
}

func splitCSVLabels(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ";")
}

func parseCSVProps(s string) (graph.Props, error) {
	if s == "" || s == "null" {
		return nil, nil
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		return nil, fmt.Errorf("bad props json: %w", err)
	}
	return anyToProps(m)
}
