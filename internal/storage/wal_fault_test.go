package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// memSink is an in-memory "disk" that distinguishes written from synced
// bytes: Sync advances the durable prefix. Recovery in these tests reads
// only the synced prefix — the strongest crash model, where everything
// past the last fsync is lost.
type memSink struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	synced int
}

func (m *memSink) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

func (m *memSink) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced = m.buf.Len()
	return nil
}

func (m *memSink) SyncedBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf.Bytes()[:m.synced]...)
}

// faultScenario is one deterministic multi-epoch run against a group WAL
// behind a FaultSink.
type faultScenario struct {
	g     *graph.Graph
	wal   *WAL
	sink  *FaultSink
	disk  *memSink
	acked map[uint64]bool   // epoch -> Commit returned nil
	refs  map[uint64]string // epoch -> graph render after that epoch
	nodes []graph.ID
}

// runFaultScenario drives a fixed mutation script — adds, edges, property
// sets, each its own epoch with a Commit barrier — through a group WAL
// whose sink carries the given fault schedule. Commit errors must be the
// typed poison; panics and hangs are failures by construction.
func runFaultScenario(t *testing.T, schedule map[int]Fault) *faultScenario {
	t.Helper()
	s := &faultScenario{
		g:     graph.New("fault"),
		disk:  &memSink{},
		acked: map[uint64]bool{},
		refs:  map[uint64]string{},
	}
	s.refs[0] = renderGraph(t, graph.New("fault"))
	s.sink = NewFaultSink(s.disk, 1)
	for op, f := range schedule {
		s.sink.Schedule(op, f)
	}
	s.wal = NewGroupWAL(s.sink, 0) // flush only on Commit barriers
	detach := AttachWAL(s.g, s.wal)
	defer detach()

	const rounds = 12
	for i := 0; i < rounds; i++ {
		switch {
		case i < 2 || i%3 == 1:
			n := s.g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
			s.nodes = append(s.nodes, n.ID)
		case i%3 == 2:
			s.g.MustAddEdge(s.nodes[len(s.nodes)-2], s.nodes[len(s.nodes)-1],
				[]string{"E"}, graph.Props{"w": graph.NewFloat(float64(i) + 0.5)})
		default:
			if err := s.g.SetNodeProp(s.nodes[0], fmt.Sprintf("k%d", i), graph.NewString("v")); err != nil {
				t.Fatal(err)
			}
		}
		epoch := s.g.Epoch()
		err := s.wal.Commit()
		s.acked[epoch] = err == nil
		s.refs[epoch] = renderGraph(t, s.g)
		if err != nil {
			var pe *WALPoisonedError
			if !errors.As(err, &pe) {
				t.Fatalf("epoch %d: commit error is %T (%v), want *WALPoisonedError", epoch, err, err)
			}
			if s.wal.Poisoned() == nil {
				t.Fatalf("epoch %d: commit failed but Poisoned() is nil", epoch)
			}
		}
	}
	_ = s.wal.Close()
	return s
}

// verifyScenario checks the durability contract against the synced disk
// prefix: recovery restores exactly a marker-closed prefix, every acked
// epoch is inside it, and the graph still serves reads (and non-logged
// writes) regardless of poisoning.
func verifyScenario(t *testing.T, s *faultScenario, label string) {
	t.Helper()
	rec, info, err := RecoverReplay("fault", bytes.NewReader(s.disk.SyncedBytes()))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	ref, ok := s.refs[info.Epoch]
	if !ok {
		t.Fatalf("%s: recovered to unknown epoch %d", label, info.Epoch)
	}
	if got := renderGraph(t, rec); got != ref {
		t.Fatalf("%s: recovered graph != committed state at epoch %d", label, info.Epoch)
	}
	for e, acked := range s.acked {
		if acked && info.Epoch < e {
			t.Fatalf("%s: epoch %d was acknowledged but recovery stopped at %d", label, e, info.Epoch)
		}
	}
	// Reads never block on a poisoned WAL: memory stays primary.
	if n := s.g.NodeCount(); n == 0 {
		t.Fatalf("%s: graph lost its nodes", label)
	}
	before := s.g.NodeCount()
	s.g.AddNode([]string{"Unlogged"}, nil)
	if s.g.NodeCount() != before+1 {
		t.Fatalf("%s: non-logged write failed after fault", label)
	}
}

// TestWALFaultInjectionEverySchedule schedules each fault kind at every
// operation boundary of the multi-epoch log — the op-granularity mirror
// of the every-byte-offset crash suite — and asserts the contract at each:
// acked ⇒ recoverable, unacked ⇒ cleanly errored, reads never blocked.
func TestWALFaultInjectionEverySchedule(t *testing.T) {
	clean := runFaultScenario(t, nil)
	totalOps := clean.sink.Ops()
	if totalOps < 10 {
		t.Fatalf("clean run saw only %d sink ops, want a real multi-epoch log", totalOps)
	}
	for e, acked := range clean.acked {
		if !acked {
			t.Fatalf("clean run failed to ack epoch %d", e)
		}
	}
	verifyScenario(t, clean, "clean")

	kinds := []FaultKind{FaultWriteErr, FaultShortWrite, FaultSyncErr, FaultENOSPC}
	for _, kind := range kinds {
		for op := 0; op < totalOps; op++ {
			label := fmt.Sprintf("%s@op%d", kind, op)
			s := runFaultScenario(t, map[int]Fault{op: {Kind: kind}})
			if s.sink.Injected() != 1 {
				t.Fatalf("%s: injected %d faults, want 1", label, s.sink.Injected())
			}
			verifyScenario(t, s, label)
		}
	}
}

// TestWALFaultLatencyOnly: latency faults delay but never fail — every
// epoch still acks and recovers.
func TestWALFaultLatencyOnly(t *testing.T) {
	s := runFaultScenario(t, map[int]Fault{
		2: {Kind: FaultLatency, Latency: 2 * time.Millisecond},
		7: {Kind: FaultLatency, Latency: 2 * time.Millisecond},
	})
	for e, acked := range s.acked {
		if !acked {
			t.Fatalf("latency fault failed epoch %d", e)
		}
	}
	verifyScenario(t, s, "latency")
}

// TestWALFaultRandomSchedules: seeded multi-fault schedules keep the same
// contract — determinism comes from the sink's seed.
func TestWALFaultRandomSchedules(t *testing.T) {
	clean := runFaultScenario(t, nil)
	totalOps := clean.sink.Ops()
	for seed := int64(1); seed <= 8; seed++ {
		sink := NewFaultSink(&memSink{}, seed)
		sink.RandomSchedule(3, totalOps, FaultWriteErr, FaultSyncErr, FaultShortWrite)
		// Re-run the scenario with the pre-armed schedule copied over.
		sched := map[int]Fault{}
		sink.mu.Lock()
		for op, f := range sink.schedule {
			sched[op] = f
		}
		sink.mu.Unlock()
		got := runFaultScenario(t, sched)
		verifyScenario(t, got, fmt.Sprintf("random-seed%d", seed))
	}
}

// recordLines marshals records as the JSON-lines stream a WAL would hold.
func recordLines(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestReattachWALResumesDurability: after a fault poisons the WAL, the
// graph keeps serving (reads and writes), and ReattachWAL on a fresh sink
// bootstraps the full state so the new log alone recovers everything —
// including the epochs the poisoned log lost.
func TestReattachWALResumesDurability(t *testing.T) {
	// Poison the first WAL early: its first flush dies.
	s := runFaultScenario(t, map[int]Fault{0: {Kind: FaultWriteErr}})
	if s.wal.Poisoned() == nil {
		t.Fatal("first WAL should be poisoned")
	}
	ackedAny := false
	for _, a := range s.acked {
		ackedAny = ackedAny || a
	}
	if ackedAny {
		t.Fatal("no epoch should have been acked after op-0 poisoning")
	}

	// The graph kept every mutation in memory; reattach on a healthy sink.
	disk2 := &memSink{}
	wal2 := NewGroupWAL(NewFaultSink(disk2, 2), 0)
	detach2, err := ReattachWAL(s.g, wal2)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}

	// Durable logging has resumed: new epochs ack and recover.
	n := s.g.AddNode([]string{"AfterReattach"}, graph.Props{"ok": graph.NewBool(true)})
	s.nodes = append(s.nodes, n.ID)
	if err := wal2.Commit(); err != nil {
		t.Fatalf("commit after reattach: %v", err)
	}
	detach2()
	if err := wal2.Close(); err != nil {
		t.Fatalf("close after reattach: %v", err)
	}

	rec, info, err := RecoverReplay("fault", bytes.NewReader(disk2.SyncedBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != s.g.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", info.Epoch, s.g.Epoch())
	}
	// Normalize the live graph through its own bootstrap stream so IDs are
	// replay-remapped identically, then compare renders.
	want, err := Replay("fault", bytes.NewReader(recordLines(t, BootstrapRecords(s.g))))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, rec) != renderGraph(t, want) {
		t.Fatal("recovery of the reattached WAL != live graph state")
	}
}
