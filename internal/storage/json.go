package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/graphrules/graphrules/internal/graph"
)

// jsonGraph is the JSON interchange shape.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID     int64          `json:"id"`
	Labels []string       `json:"labels"`
	Props  map[string]any `json:"props,omitempty"`
}

type jsonEdge struct {
	ID     int64          `json:"id"`
	From   int64          `json:"from"`
	To     int64          `json:"to"`
	Labels []string       `json:"labels"`
	Props  map[string]any `json:"props,omitempty"`
}

// WriteJSON serializes the graph as indented JSON.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	jg := jsonGraph{Name: g.Name()}
	g.ForEachNode(func(n *graph.Node) {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: int64(n.ID), Labels: n.Labels, Props: propsToAny(n.Props)})
	})
	g.ForEachEdge(func(e *graph.Edge) {
		jg.Edges = append(jg.Edges, jsonEdge{
			ID: int64(e.ID), From: int64(e.From), To: int64(e.To),
			Labels: e.Labels, Props: propsToAny(e.Props),
		})
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON deserializes a graph from the JSON interchange format. As with
// snapshots, IDs are reassigned densely; topology is preserved. Numbers
// are decoded via json.Number, so int64 values survive beyond float64's
// 2^53 integer range.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("storage: bad json graph: %w", err)
	}
	g := graph.New(jg.Name)
	idMap := make(map[int64]graph.ID, len(jg.Nodes))
	for _, jn := range jg.Nodes {
		props, err := anyToProps(jn.Props)
		if err != nil {
			return nil, err
		}
		n := g.AddNode(jn.Labels, props)
		idMap[jn.ID] = n.ID
	}
	for _, je := range jg.Edges {
		props, err := anyToProps(je.Props)
		if err != nil {
			return nil, err
		}
		from, ok1 := idMap[je.From]
		to, ok2 := idMap[je.To]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("storage: json edge %d references unknown node", je.ID)
		}
		if _, err := g.AddEdge(from, to, je.Labels, props); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
	}
	return g, nil
}

func propsToAny(p graph.Props) map[string]any {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = valueToAny(v)
	}
	return out
}

func valueToAny(v graph.Value) any {
	switch v.Kind() {
	case graph.KindBool:
		return v.Bool()
	case graph.KindInt:
		return v.Int()
	case graph.KindFloat:
		return v.Float()
	case graph.KindString:
		return v.Str()
	case graph.KindList:
		out := make([]any, len(v.List()))
		for i, e := range v.List() {
			out[i] = valueToAny(e)
		}
		return out
	default:
		return nil
	}
}

func anyToProps(m map[string]any) (graph.Props, error) {
	if len(m) == 0 {
		return nil, nil
	}
	p := make(graph.Props, len(m))
	for k, raw := range m {
		v, err := anyToValue(raw)
		if err != nil {
			return nil, fmt.Errorf("storage: property %q: %w", k, err)
		}
		p[k] = v
	}
	return p, nil
}

// walProps encodes a property map for the WAL with exact round-trip
// fidelity: floats are wrapped in a {"$f":"<decimal>"} tag so whole floats
// (which marshal as bare integers) keep their kind, and anyToValue's
// json.Number path preserves int64 precision.
func walProps(p graph.Props) map[string]any {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = walValue(v)
	}
	return out
}

func walValue(v graph.Value) any {
	switch v.Kind() {
	case graph.KindFloat:
		return map[string]any{"$f": strconv.FormatFloat(v.Float(), 'g', -1, 64)}
	case graph.KindList:
		out := make([]any, len(v.List()))
		for i, e := range v.List() {
			out[i] = walValue(e)
		}
		return out
	default:
		return valueToAny(v)
	}
}

func anyToValue(raw any) (graph.Value, error) {
	switch x := raw.(type) {
	case nil:
		return graph.Null, nil
	case bool:
		return graph.NewBool(x), nil
	case string:
		return graph.NewString(x), nil
	case json.Number:
		// UseNumber decoding path: integral spellings stay int64-exact,
		// everything else is a float.
		if i, err := x.Int64(); err == nil {
			return graph.NewInt(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return graph.Null, fmt.Errorf("bad number %q", x.String())
		}
		return graph.NewFloat(f), nil
	case float64:
		// JSON numbers arrive as float64; keep integers integral.
		if x == float64(int64(x)) {
			return graph.NewInt(int64(x)), nil
		}
		return graph.NewFloat(x), nil
	case map[string]any:
		// Tagged float from the WAL encoding (see walValue).
		if len(x) == 1 {
			if s, ok := x["$f"]; ok {
				str, ok := s.(string)
				if !ok {
					if num, isNum := s.(json.Number); isNum {
						str = num.String()
						ok = true
					}
				}
				if ok {
					f, err := strconv.ParseFloat(str, 64)
					if err != nil {
						return graph.Null, fmt.Errorf("bad tagged float %q", str)
					}
					return graph.NewFloat(f), nil
				}
			}
		}
		return graph.Null, fmt.Errorf("unsupported JSON object value %v", x)
	case []any:
		elems := make([]graph.Value, len(x))
		for i, e := range x {
			v, err := anyToValue(e)
			if err != nil {
				return graph.Null, err
			}
			elems[i] = v
		}
		return graph.NewList(elems...), nil
	default:
		return graph.Null, fmt.Errorf("unsupported JSON value %T", raw)
	}
}
