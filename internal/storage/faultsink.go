package storage

// FaultSink is a deterministic storage-fault injector: it wraps the WAL's
// io.Writer (and Syncer) and fails, truncates, or delays scheduled
// operations. Chaos tests use it to prove the durability contract — a
// Commit acknowledged through any fault schedule must be recoverable, a
// Commit that errored may be lost — without touching a real filesystem.
//
// Faults are addressed by operation index: every Write and every Sync the
// sink sees increments one shared op counter, and an op whose index
// appears in the schedule suffers its fault instead of (or, for latency,
// before) reaching the underlying writer. Schedules are either explicit
// (Schedule) or seeded-random (RandomSchedule), both fully deterministic.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the injectable storage faults.
type FaultKind int

const (
	// FaultWriteErr fails a Write outright: no bytes reach the sink.
	FaultWriteErr FaultKind = iota
	// FaultShortWrite persists only the first half of the buffer, then
	// reports a short write — a torn record, exactly what a crash
	// mid-write leaves on disk.
	FaultShortWrite
	// FaultSyncErr fails a Sync: the buffered bytes reached the sink but
	// durability was never confirmed.
	FaultSyncErr
	// FaultENOSPC fails a Write with ErrNoSpace, the disk-full condition.
	FaultENOSPC
	// FaultLatency delays the op, then lets it proceed normally. The only
	// kind that does not error.
	FaultLatency
)

func (k FaultKind) String() string {
	switch k {
	case FaultWriteErr:
		return "write-error"
	case FaultShortWrite:
		return "short-write"
	case FaultSyncErr:
		return "sync-error"
	case FaultENOSPC:
		return "enospc"
	case FaultLatency:
		return "latency"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Injected fault errors. ErrNoSpace stands in for the kernel's ENOSPC so
// tests need no platform-specific errno plumbing.
var (
	ErrInjectedWrite = errors.New("storage: injected write fault")
	ErrInjectedSync  = errors.New("storage: injected sync fault")
	ErrNoSpace       = errors.New("storage: injected no space left on device")
)

// Fault is one scheduled fault.
type Fault struct {
	Kind FaultKind
	// Latency delays the op before it proceeds (FaultLatency) or before
	// it fails (other kinds, optional).
	Latency time.Duration
}

// FaultSink wraps an io.Writer with scheduled fault injection. It
// implements Syncer regardless of the underlying writer; Sync on a
// non-Syncer sink is a healthy no-op (matching NewWAL's own detection —
// wrap a Syncer to exercise sync faults).
type FaultSink struct {
	mu       sync.Mutex
	w        io.Writer
	syncer   Syncer
	rng      *rand.Rand
	schedule map[int]Fault
	ops      int
	injected int
	healed   bool
}

// NewFaultSink wraps w with a fault injector seeded for deterministic
// random scheduling.
func NewFaultSink(w io.Writer, seed int64) *FaultSink {
	s := &FaultSink{w: w, rng: rand.New(rand.NewSource(seed)), schedule: map[int]Fault{}}
	if sy, ok := w.(Syncer); ok {
		s.syncer = sy
	}
	return s
}

// Schedule arms fault f at operation index op (0-based, counting every
// Write and Sync the sink sees).
func (s *FaultSink) Schedule(op int, f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schedule[op] = f
}

// RandomSchedule arms n faults at distinct op indices drawn uniformly
// from [0, maxOp), with kinds cycled from kinds — deterministic in the
// sink's seed.
func (s *FaultSink) RandomSchedule(n, maxOp int, kinds ...FaultKind) {
	if len(kinds) == 0 || maxOp <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < n; i++ {
		s.schedule[s.rng.Intn(maxOp)] = Fault{Kind: kinds[i%len(kinds)]}
	}
}

// Heal disarms every remaining fault: subsequent ops pass through
// untouched. The op and injection counters keep counting.
func (s *FaultSink) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healed = true
}

// Ops returns how many operations (writes + syncs) the sink has seen;
// Injected how many suffered a fault.
func (s *FaultSink) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Injected returns the number of operations that suffered a fault.
func (s *FaultSink) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// take claims the next op index and returns its scheduled fault, if any.
func (s *FaultSink) take() (Fault, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.ops
	s.ops++
	if s.healed {
		return Fault{}, false
	}
	f, ok := s.schedule[op]
	if ok {
		s.injected++
	}
	return f, ok
}

// Write implements io.Writer with fault injection.
func (s *FaultSink) Write(p []byte) (int, error) {
	f, ok := s.take()
	if !ok {
		return s.w.Write(p)
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	switch f.Kind {
	case FaultWriteErr:
		return 0, ErrInjectedWrite
	case FaultENOSPC:
		return 0, ErrNoSpace
	case FaultShortWrite:
		// Persist a prefix, then report the tear: the sink now holds a
		// torn record, exactly the shape RecoverReplay must tolerate.
		n, err := s.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	default: // FaultLatency, or sync kinds landing on a write op
		return s.w.Write(p)
	}
}

// Sync implements Syncer with fault injection.
func (s *FaultSink) Sync() error {
	f, ok := s.take()
	if !ok {
		return s.syncThrough()
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	switch f.Kind {
	case FaultSyncErr, FaultWriteErr, FaultENOSPC:
		return ErrInjectedSync
	default:
		return s.syncThrough()
	}
}

func (s *FaultSink) syncThrough() error {
	if s.syncer != nil {
		return s.syncer.Sync()
	}
	return nil
}
