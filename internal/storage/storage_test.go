package storage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

func sampleGraph() *graph.Graph {
	g := graph.New("sample")
	a := g.AddNode([]string{"User", "Admin"}, graph.Props{
		"id":   graph.NewInt(1),
		"name": graph.NewString("alice, \"the\" admin"),
		"pi":   graph.NewFloat(3.25),
		"ok":   graph.NewBool(true),
		"tags": graph.NewList(graph.NewString("a"), graph.NewInt(2)),
	})
	b := g.AddNode([]string{"Tweet"}, nil)
	g.MustAddEdge(a.ID, b.ID, []string{"POSTS"}, graph.Props{"at": graph.NewInt(7)})
	g.MustAddEdge(b.ID, b.ID, []string{"SELF"}, nil)
	return g
}

// equalGraphs compares two graphs structurally via their schema description
// plus full node/edge walks.
func equalGraphs(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Errorf("names differ: %q vs %q", a.Name(), b.Name())
	}
	if a.NodeCount() != b.NodeCount() || a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.NodeCount(), a.EdgeCount(), b.NodeCount(), b.EdgeCount())
	}
	sa, sb := graph.ExtractSchema(a), graph.ExtractSchema(b)
	if sa.Describe() != sb.Describe() {
		t.Errorf("schemas differ:\n%s\nvs\n%s", sa.Describe(), sb.Describe())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, got)
	// Props survive bit-exactly.
	n := got.Node(got.NodesWithLabel("User")[0])
	if n.Prop("name").Str() != `alice, "the" admin` || n.Prop("pi").Float() != 3.25 {
		t.Errorf("props lost: %v", n.Props)
	}
	if n.Prop("tags").List()[1].Int() != 2 {
		t.Error("list prop lost")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty should fail")
	}
	// Truncated stream.
	g := sampleGraph()
	var buf bytes.Buffer
	WriteSnapshot(&buf, g)
	for _, cut := range []int{5, 10, buf.Len() / 2} {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated snapshot at %d should fail", cut)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, got)
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSnapshotDataset(t *testing.T) {
	g := datasets.Cybersecurity(datasets.DefaultOptions())
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, got)
}

func TestJSONRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, got)
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("bad json should fail")
	}
}

func TestJSONIntegerPreservation(t *testing.T) {
	g := graph.New("ints")
	g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(42), "f": graph.NewFloat(1.5)})
	var buf bytes.Buffer
	WriteJSON(&buf, g)
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := got.Node(got.Nodes()[0])
	if n.Prop("i").Kind() != graph.KindInt {
		t.Error("integers must stay integral through JSON")
	}
	if n.Prop("f").Kind() != graph.KindFloat {
		t.Error("floats must stay floats through JSON")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := sampleGraph()
	var nodes, edges bytes.Buffer
	if err := WriteNodesCSV(&nodes, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgesCSV(&edges, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("sample", &nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, got)
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("id,labels,props\nbad,A,{}\n"), strings.NewReader("id,from,to,labels,props\n")); err == nil {
		t.Error("bad node id should fail")
	}
	if _, err := ReadCSV("x",
		strings.NewReader("id,labels,props\n0,A,{}\n"),
		strings.NewReader("id,from,to,labels,props\n0,0,99,R,{}\n")); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestWALReplay(t *testing.T) {
	var buf bytes.Buffer
	wal := NewWAL(&buf)
	g := graph.New("w")
	lg := NewLoggedGraph(g, wal)

	a, err := lg.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := lg.AddNode([]string{"Tweet"}, nil)
	e, err := lg.AddEdge(a.ID, b.ID, []string{"POSTS"}, graph.Props{"at": graph.NewInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.SetNodeProp(a.ID, "name", graph.NewString("x")); err != nil {
		t.Fatal(err)
	}
	if err := lg.SetEdgeProp(e.ID, "at", graph.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	c, _ := lg.AddNode([]string{"Temp"}, nil)
	if err := lg.RemoveNode(c.ID); err != nil {
		t.Fatal(err)
	}
	// 7 mutation records, each closed by its own commit marker.
	if wal.Len() != 14 {
		t.Errorf("wal records = %d", wal.Len())
	}

	replayed, err := Replay("w", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g, replayed)
	rn := replayed.Node(replayed.NodesWithLabel("User")[0])
	if rn.Prop("name").Str() != "x" {
		t.Error("replayed prop wrong")
	}
	re := replayed.Edge(replayed.EdgesWithType("POSTS")[0])
	if re.Prop("at").Int() != 10 {
		t.Error("replayed edge prop wrong")
	}
}

func TestWALReplayErrors(t *testing.T) {
	bad := []string{
		`{"op":"add-edge","from":1,"to":2,"labels":["R"]}`,
		`{"op":"set-node-prop","id":5,"key":"x","value":1}`,
		`{"op":"bogus"}`,
		`{"op":`,
	}
	for _, line := range bad {
		if _, err := Replay("x", strings.NewReader(line+"\n")); err == nil {
			t.Errorf("Replay(%q) should fail", line)
		}
	}
}

// Property: any graph of random scalar props survives a snapshot round
// trip with identical schema.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(ids []int8, names []string) bool {
		g := graph.New("q")
		var nodes []graph.ID
		for i, id := range ids {
			name := ""
			if i < len(names) {
				name = names[i]
			}
			n := g.AddNode([]string{"N"}, graph.Props{
				"id":   graph.NewInt(int64(id)),
				"name": graph.NewString(name),
			})
			nodes = append(nodes, n.ID)
		}
		for i := 1; i < len(nodes); i++ {
			g.MustAddEdge(nodes[i-1], nodes[i], []string{"R"}, nil)
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, g); err != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return got.NodeCount() == g.NodeCount() && got.EdgeCount() == g.EdgeCount() &&
			graph.ExtractSchema(got).Describe() == graph.ExtractSchema(g).Describe()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
