package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// OpKind identifies one WAL record type.
type OpKind string

// WAL record kinds.
const (
	OpAddNode     OpKind = "add-node"
	OpAddEdge     OpKind = "add-edge"
	OpSetNodeProp OpKind = "set-node-prop"
	OpSetEdgeProp OpKind = "set-edge-prop"
	OpAddLabels   OpKind = "add-labels"
	OpRemoveNode  OpKind = "remove-node"
	OpRemoveEdge  OpKind = "remove-edge"

	// OpCommit is an epoch commit marker: every record since the previous
	// marker belongs to the epoch it closes. Recovery (RecoverReplay)
	// applies only marker-closed prefixes after a torn tail.
	OpCommit OpKind = "commit"
)

// Record is one WAL entry (JSON-lines on disk). Property values are
// encoded for exact round-tripping: integers as JSON numbers (decoded via
// json.Number, so int64 precision survives), floats as a tagged
// {"$f":"<decimal>"} object (so 1.0 does not collapse into the integer 1).
type Record struct {
	Op     OpKind         `json:"op"`
	ID     int64          `json:"id,omitempty"`
	From   int64          `json:"from,omitempty"`
	To     int64          `json:"to,omitempty"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
	Key    string         `json:"key,omitempty"`
	Value  any            `json:"value,omitempty"`
	Epoch  uint64         `json:"epoch,omitempty"`
}

// Syncer is the optional durability hook of a WAL sink (os.File satisfies
// it). When the sink implements it, a flush is followed by Sync before any
// record is considered durable.
type Syncer interface{ Sync() error }

// ErrWALClosed is returned by appends to a closed WAL.
var ErrWALClosed = errors.New("storage: wal closed")

// WALPoisonedError is the WAL's typed sticky error: a write, flush or
// fsync failed, so durability can no longer be promised for anything past
// Durable. Every Append and every Commit waiting on a lost window returns
// it; Commits whose records were already durable before the fault still
// succeed. The graph itself keeps working — only logging is poisoned —
// and ReattachWAL re-establishes durable logging on a fresh sink once
// the fault clears.
type WALPoisonedError struct {
	// Cause is the underlying I/O error.
	Cause error
	// Durable is the sequence number of the last record that was flushed
	// and synced before the fault: everything at or below it survived.
	Durable uint64
}

func (e *WALPoisonedError) Error() string {
	return fmt.Sprintf("storage: wal poisoned after durable record %d: %v", e.Durable, e.Cause)
}

func (e *WALPoisonedError) Unwrap() error { return e.Cause }

// WAL is a write-ahead log capturing graph mutations as JSON lines. It is
// safe for concurrent use.
//
// Two durability modes exist. NewWAL gives the legacy eager mode: every
// Append flushes (and Syncs, when the sink is a Syncer) before returning.
// NewGroupWAL gives group commit: appends only buffer, and a background
// flusher makes them durable in batches — on a tunable window tick and on
// Commit barriers — so many concurrent epochs share one fsync. Commit
// returns only after every record appended before the call is flushed and
// synced; an epoch is never acknowledged before it is durable.
type WAL struct {
	mu      sync.Mutex
	cond    *sync.Cond
	w       *bufio.Writer
	syncer  Syncer
	n       int
	err     error
	lsn     uint64 // sequence number of the last appended record
	durable uint64 // sequence number of the last flushed+synced record
	closed  bool

	grouped bool
	window  time.Duration
	kick    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewWAL returns an eager WAL writing to w: every Append is flushed (and
// synced, when w is a Syncer) before it returns.
func NewWAL(w io.Writer) *WAL {
	l := &WAL{w: bufio.NewWriter(w)}
	if s, ok := w.(Syncer); ok {
		l.syncer = s
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// NewGroupWAL returns a group-commit WAL: appends buffer in memory and are
// made durable in batches by a background flusher, at most window apart
// (window <= 0 disables the timer: flushes then happen only on Commit
// barriers and Close). Callers needing durability call Commit.
func NewGroupWAL(w io.Writer, window time.Duration) *WAL {
	l := NewWAL(w)
	l.grouped = true
	l.window = window
	l.kick = make(chan struct{}, 1)
	l.done = make(chan struct{})
	l.wg.Add(1)
	go l.flushLoop()
	return l
}

func (l *WAL) flushLoop() {
	defer l.wg.Done()
	var tickC <-chan time.Time
	if l.window > 0 {
		tick := time.NewTicker(l.window)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
		case <-tickC:
		}
		l.mu.Lock()
		l.flushLocked()
		l.mu.Unlock()
	}
}

// poisonLocked latches an I/O failure into the typed sticky error,
// recording how far durability actually reached. Called with mu held;
// the first fault wins.
func (l *WAL) poisonLocked(cause error) {
	if l.err == nil {
		l.err = &WALPoisonedError{Cause: cause, Durable: l.durable}
	}
}

// Poisoned returns the WAL's sticky *WALPoisonedError, or nil while the
// log is healthy (or failed for a non-I/O reason).
func (l *WAL) Poisoned() *WALPoisonedError {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pe *WALPoisonedError
	if errors.As(l.err, &pe) {
		return pe
	}
	return nil
}

// flushLocked makes every appended record durable. Called with mu held.
func (l *WAL) flushLocked() {
	defer l.cond.Broadcast()
	if l.err != nil || l.durable >= l.lsn {
		return
	}
	target := l.lsn
	if err := l.w.Flush(); err != nil {
		l.poisonLocked(err)
		return
	}
	if l.syncer != nil {
		if err := l.syncer.Sync(); err != nil {
			l.poisonLocked(err)
			return
		}
	}
	l.durable = target
}

// Len returns the number of records appended so far (commit markers
// included).
func (l *WAL) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Durable returns the sequence number of the last record known flushed and
// synced. LSN returns the sequence number of the last appended record.
func (l *WAL) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// LSN returns the sequence number of the last appended record.
func (l *WAL) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Err returns the sticky write error, if any.
func (l *WAL) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append writes one record. In eager mode it is durable when Append
// returns; in group mode it is buffered until the next window tick or
// Commit barrier.
func (l *WAL) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrWALClosed
	}
	if l.err != nil {
		return l.err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.poisonLocked(err)
		return l.err
	}
	l.n++
	l.lsn++
	if !l.grouped {
		l.flushLocked()
	}
	return l.err
}

// Commit is the durability barrier: it returns once every record appended
// before the call is flushed and synced (or with the sticky error). This
// is what "acknowledging an epoch" means — callers must not report an
// epoch as committed until Commit returns.
//
// Under a storage fault the barrier is exact: every Commit whose records
// were lost in the failed flush window returns the *WALPoisonedError (the
// epoch was never acknowledged, so recovery correctly omits it), while a
// Commit whose records were already durable before the fault returns nil
// — those epochs were acknowledged by an earlier successful sync and
// survive recovery.
func (l *WAL) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.lsn
	for l.err == nil && l.durable < target {
		if !l.grouped || l.closed {
			l.flushLocked()
			break
		}
		select {
		case l.kick <- struct{}{}:
		default:
		}
		l.cond.Wait()
	}
	if l.durable >= target {
		return nil
	}
	return l.err
}

// Close stops the group flusher (if any) and flushes outstanding records.
// Further appends fail with ErrWALClosed.
func (l *WAL) Close() error {
	l.mu.Lock()
	if l.closed {
		defer l.mu.Unlock()
		return l.err
	}
	l.closed = true
	grouped := l.grouped
	l.mu.Unlock()
	if grouped {
		close(l.done)
		l.wg.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushLocked()
	return l.err
}

// RecordsFromDelta converts one committed epoch's Delta into its WAL
// representation: the epoch's ops in apply order, closed by a commit
// marker carrying the epoch number.
func RecordsFromDelta(d *graph.Delta) []Record {
	recs := make([]Record, 0, len(d.Ops)+1)
	for _, op := range d.Ops {
		switch op.Kind {
		case graph.OpAddNode:
			recs = append(recs, Record{
				Op: OpAddNode, ID: int64(op.Node.ID),
				Labels: op.Node.Labels, Props: walProps(op.Node.Props),
			})
		case graph.OpAddEdge:
			recs = append(recs, Record{
				Op: OpAddEdge, ID: int64(op.Edge.ID),
				From: int64(op.Edge.From), To: int64(op.Edge.To),
				Labels: op.Edge.Labels, Props: walProps(op.Edge.Props),
			})
		case graph.OpSetNodeProp:
			recs = append(recs, Record{Op: OpSetNodeProp, ID: int64(op.ID), Key: op.Key, Value: walValue(op.Value)})
		case graph.OpSetEdgeProp:
			recs = append(recs, Record{Op: OpSetEdgeProp, ID: int64(op.ID), Key: op.Key, Value: walValue(op.Value)})
		case graph.OpAddLabels:
			recs = append(recs, Record{Op: OpAddLabels, ID: int64(op.ID), Labels: op.Labels})
		case graph.OpRemoveNode:
			recs = append(recs, Record{Op: OpRemoveNode, ID: int64(op.ID)})
		case graph.OpRemoveEdge:
			recs = append(recs, Record{Op: OpRemoveEdge, ID: int64(op.ID)})
		}
	}
	return append(recs, Record{Op: OpCommit, Epoch: d.Epoch})
}

// AttachWAL subscribes the WAL to the graph's commit stream: every epoch's
// ops and commit marker are appended (in epoch order) as it commits. With
// a group WAL this is the high-throughput path — epochs buffer and share
// fsyncs; call wal.Commit() where durability must be acknowledged. Append
// errors latch into the WAL's sticky error (visible via Err/Commit). The
// returned function detaches the subscription.
func AttachWAL(g *graph.Graph, wal *WAL) (detach func()) {
	return g.OnCommit(func(d *graph.Delta) {
		for _, rec := range RecordsFromDelta(d) {
			if wal.Append(rec) != nil {
				return
			}
		}
	})
}

// BootstrapRecords renders the graph's entire current state as one
// marker-closed epoch: every node then every edge in ascending ID order,
// closed by a commit marker at the graph's current epoch. Replaying just
// these records reproduces the graph — they are the opening epoch of a
// fresh WAL for a graph that already has history.
func BootstrapRecords(g *graph.Graph) []Record {
	var recs []Record
	g.ForEachNode(func(n *graph.Node) {
		recs = append(recs, Record{
			Op: OpAddNode, ID: int64(n.ID),
			Labels: n.Labels, Props: walProps(n.Props),
		})
	})
	g.ForEachEdge(func(e *graph.Edge) {
		recs = append(recs, Record{
			Op: OpAddEdge, ID: int64(e.ID),
			From: int64(e.From), To: int64(e.To),
			Labels: e.Labels, Props: walProps(e.Props),
		})
	})
	return append(recs, Record{Op: OpCommit, Epoch: g.Epoch()})
}

// ReattachWAL resumes durable logging on a fresh WAL after the previous
// one was poisoned by a storage fault: it writes the graph's full current
// state as a bootstrap epoch (BootstrapRecords), waits for it to be
// durable, then attaches the commit subscription — so recovering the new
// log alone restores everything, including the epochs the poisoned log
// lost. The caller must quiesce writers between detaching the old WAL and
// ReattachWAL returning, or concurrently committed epochs may predate the
// subscription and go unlogged.
func ReattachWAL(g *graph.Graph, wal *WAL) (detach func(), err error) {
	for _, rec := range BootstrapRecords(g) {
		if err := wal.Append(rec); err != nil {
			return nil, err
		}
	}
	if err := wal.Commit(); err != nil {
		return nil, err
	}
	return AttachWAL(g, wal), nil
}

// LoggedGraph wraps a Graph so that every mutation is appended to a WAL as
// its own marker-closed epoch, with a durability barrier before the call
// returns: when a LoggedGraph mutator reports success, the mutation is on
// stable storage. Memory is primary — the mutation is applied to the graph
// first, then logged (a crash between the two loses only unacknowledged
// work, which recovery correctly omits).
type LoggedGraph struct {
	*graph.Graph
	wal *WAL
}

// NewLoggedGraph wraps g with WAL capture.
func NewLoggedGraph(g *graph.Graph, wal *WAL) *LoggedGraph {
	return &LoggedGraph{Graph: g, wal: wal}
}

// WAL returns the underlying log.
func (lg *LoggedGraph) WAL() *WAL { return lg.wal }

// logEpoch appends recs plus a commit marker for the graph's current
// epoch, then waits for durability.
func (lg *LoggedGraph) logEpoch(recs ...Record) error {
	for _, rec := range recs {
		if err := lg.wal.Append(rec); err != nil {
			return err
		}
	}
	if err := lg.wal.Append(Record{Op: OpCommit, Epoch: lg.Graph.Epoch()}); err != nil {
		return err
	}
	return lg.wal.Commit()
}

// AddNode logs then applies a node insertion.
func (lg *LoggedGraph) AddNode(labels []string, props graph.Props) (*graph.Node, error) {
	n := lg.Graph.AddNode(labels, props)
	err := lg.logEpoch(Record{Op: OpAddNode, ID: int64(n.ID), Labels: n.Labels, Props: walProps(n.Props)})
	return n, err
}

// AddEdge logs then applies an edge insertion.
func (lg *LoggedGraph) AddEdge(from, to graph.ID, labels []string, props graph.Props) (*graph.Edge, error) {
	e, err := lg.Graph.AddEdge(from, to, labels, props)
	if err != nil {
		return nil, err
	}
	err = lg.logEpoch(Record{
		Op: OpAddEdge, ID: int64(e.ID), From: int64(from), To: int64(to),
		Labels: e.Labels, Props: walProps(e.Props),
	})
	return e, err
}

// SetNodeProp logs then applies a node property update.
func (lg *LoggedGraph) SetNodeProp(id graph.ID, key string, v graph.Value) error {
	if err := lg.Graph.SetNodeProp(id, key, v); err != nil {
		return err
	}
	return lg.logEpoch(Record{Op: OpSetNodeProp, ID: int64(id), Key: key, Value: walValue(v)})
}

// SetEdgeProp logs then applies an edge property update.
func (lg *LoggedGraph) SetEdgeProp(id graph.ID, key string, v graph.Value) error {
	if err := lg.Graph.SetEdgeProp(id, key, v); err != nil {
		return err
	}
	return lg.logEpoch(Record{Op: OpSetEdgeProp, ID: int64(id), Key: key, Value: walValue(v)})
}

// AddNodeLabels logs then applies a label addition.
func (lg *LoggedGraph) AddNodeLabels(id graph.ID, labels ...string) error {
	if err := lg.Graph.AddNodeLabels(id, labels...); err != nil {
		return err
	}
	return lg.logEpoch(Record{Op: OpAddLabels, ID: int64(id), Labels: labels})
}

// RemoveNode logs then applies a node removal.
func (lg *LoggedGraph) RemoveNode(id graph.ID) error {
	lg.Graph.RemoveNode(id)
	return lg.logEpoch(Record{Op: OpRemoveNode, ID: int64(id)})
}

// RemoveEdge logs then applies an edge removal.
func (lg *LoggedGraph) RemoveEdge(id graph.ID) error {
	lg.Graph.RemoveEdge(id)
	return lg.logEpoch(Record{Op: OpRemoveEdge, ID: int64(id)})
}

// LoggedBatch is a graph.Batch whose commit is written to the WAL as one
// marker-closed epoch — the exact ops the commit applied, cascades
// included — with a durability barrier before Commit returns.
type LoggedBatch struct {
	lg *LoggedGraph
	b  *graph.Batch
}

// NewBatch starts a logged write batch.
func (lg *LoggedGraph) NewBatch() *LoggedBatch {
	return &LoggedBatch{lg: lg, b: lg.Graph.NewBatch()}
}

// AddNode buffers a node insertion (see graph.Batch.AddNode).
func (lb *LoggedBatch) AddNode(labels []string, props graph.Props) *graph.Node {
	return lb.b.AddNode(labels, props)
}

// AddEdge buffers an edge insertion (see graph.Batch.AddEdge).
func (lb *LoggedBatch) AddEdge(from, to graph.ID, labels []string, props graph.Props) (*graph.Edge, error) {
	return lb.b.AddEdge(from, to, labels, props)
}

// SetNodeProp buffers a node property update.
func (lb *LoggedBatch) SetNodeProp(id graph.ID, key string, v graph.Value) {
	lb.b.SetNodeProp(id, key, v)
}

// SetEdgeProp buffers an edge property update.
func (lb *LoggedBatch) SetEdgeProp(id graph.ID, key string, v graph.Value) {
	lb.b.SetEdgeProp(id, key, v)
}

// AddNodeLabels buffers a label addition.
func (lb *LoggedBatch) AddNodeLabels(id graph.ID, labels ...string) {
	lb.b.AddNodeLabels(id, labels...)
}

// RemoveNode buffers a node removal.
func (lb *LoggedBatch) RemoveNode(id graph.ID) { lb.b.RemoveNode(id) }

// RemoveEdge buffers an edge removal.
func (lb *LoggedBatch) RemoveEdge(id graph.ID) { lb.b.RemoveEdge(id) }

// Commit applies the batch as one graph epoch, logs the epoch's ops and
// commit marker, and returns after the epoch is durable. The delta is
// returned even when logging fails (the memory commit already happened);
// the error then reports the durability failure.
func (lb *LoggedBatch) Commit() (*graph.Delta, error) {
	d, err := lb.b.Commit()
	if err != nil {
		return nil, err
	}
	for _, rec := range RecordsFromDelta(d) {
		if err := lb.lg.wal.Append(rec); err != nil {
			return d, err
		}
	}
	return d, lb.lg.wal.Commit()
}

// applyRecord applies one mutation record to g, remapping logged IDs to
// the replayed graph's IDs. Commit markers carry no mutation and must be
// filtered by the caller.
func applyRecord(g *graph.Graph, rec Record, nodeMap, edgeMap map[int64]graph.ID) error {
	switch rec.Op {
	case OpAddNode:
		props, err := anyToProps(rec.Props)
		if err != nil {
			return err
		}
		n := g.AddNode(rec.Labels, props)
		nodeMap[rec.ID] = n.ID
	case OpAddEdge:
		props, err := anyToProps(rec.Props)
		if err != nil {
			return err
		}
		from, ok1 := nodeMap[rec.From]
		to, ok2 := nodeMap[rec.To]
		if !ok1 || !ok2 {
			return fmt.Errorf("unknown endpoint")
		}
		e, err := g.AddEdge(from, to, rec.Labels, props)
		if err != nil {
			return err
		}
		edgeMap[rec.ID] = e.ID
	case OpSetNodeProp:
		id, ok := nodeMap[rec.ID]
		if !ok {
			return fmt.Errorf("unknown node %d", rec.ID)
		}
		v, err := anyToValue(rec.Value)
		if err != nil {
			return err
		}
		return g.SetNodeProp(id, rec.Key, v)
	case OpSetEdgeProp:
		id, ok := edgeMap[rec.ID]
		if !ok {
			return fmt.Errorf("unknown edge %d", rec.ID)
		}
		v, err := anyToValue(rec.Value)
		if err != nil {
			return err
		}
		return g.SetEdgeProp(id, rec.Key, v)
	case OpAddLabels:
		id, ok := nodeMap[rec.ID]
		if !ok {
			return fmt.Errorf("unknown node %d", rec.ID)
		}
		return g.AddNodeLabels(id, rec.Labels...)
	case OpRemoveNode:
		id, ok := nodeMap[rec.ID]
		if !ok {
			return fmt.Errorf("unknown node %d", rec.ID)
		}
		g.RemoveNode(id)
	case OpRemoveEdge:
		id, ok := edgeMap[rec.ID]
		if !ok {
			return fmt.Errorf("unknown edge %d", rec.ID)
		}
		g.RemoveEdge(id)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// Replay applies a WAL stream to an empty graph and returns it. Node and
// edge IDs in the log are mapped to the replayed graph's IDs. Replay is
// strict: any malformed record is an error. For crash recovery — tolerant
// of a torn tail — use RecoverReplay.
func Replay(name string, r io.Reader) (*graph.Graph, error) {
	g := graph.New(name)
	nodeMap := map[int64]graph.ID{}
	edgeMap := map[int64]graph.ID{}
	dec := json.NewDecoder(r)
	dec.UseNumber()
	line := 0
	for {
		var rec Record
		if err := dec.Decode(&rec); errors.Is(err, io.EOF) {
			return g, nil
		} else if err != nil {
			return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
		}
		line++
		if rec.Op == OpCommit {
			continue
		}
		if err := applyRecord(g, rec, nodeMap, edgeMap); err != nil {
			return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
		}
	}
}

// RecoveryInfo describes what RecoverReplay reconstructed.
type RecoveryInfo struct {
	Applied   int    // mutation records applied
	Discarded int    // well-formed records discarded (uncommitted tail)
	Epoch     uint64 // epoch of the last applied commit marker (0 if none)
	Torn      bool   // the log ended in a torn/corrupt tail
}

// RecoverReplay reconstructs a graph from a WAL that may have a torn tail
// (a crash mid-write). It recovers the longest committed prefix:
//
//   - The well-formed prefix is the run of complete '\n'-terminated lines
//     that unmarshal cleanly; a trailing fragment without '\n', or the
//     first malformed line, ends it (Torn=true, everything after is lost).
//   - Only records up to the last commit marker in the well-formed prefix
//     are applied: a crash can never surface a half-epoch, and trailing
//     records whose marker never hit the disk are discarded. (A log
//     truncated before its first marker therefore recovers empty — it is
//     indistinguishable from an epoch that never committed.)
//
// For legacy marker-less WALs — where every record was its own commit —
// use RecoverReplayLegacy, which applies the entire well-formed prefix.
func RecoverReplay(name string, r io.Reader) (*graph.Graph, RecoveryInfo, error) {
	return recoverReplay(name, r, false)
}

// RecoverReplayLegacy recovers a marker-less WAL written before epoch
// markers existed: the longest well-formed prefix is applied in full, a
// torn tail is dropped. Do not use it on marker-bearing logs — it would
// resurrect uncommitted trailing records.
func RecoverReplayLegacy(name string, r io.Reader) (*graph.Graph, RecoveryInfo, error) {
	return recoverReplay(name, r, true)
}

func recoverReplay(name string, r io.Reader, legacy bool) (*graph.Graph, RecoveryInfo, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("storage: recover: %w", err)
	}
	var recs []Record
	info := RecoveryInfo{}
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			// Trailing fragment without its newline: torn mid-write.
			info.Torn = true
			break
		}
		line := data[:i]
		data = data[i+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := unmarshalRecord(line, &rec); err != nil {
			info.Torn = true
			break
		}
		recs = append(recs, rec)
	}

	// Everything after the last commit marker is an unacknowledged (hence
	// uncommitted) tail — unless this is a legacy marker-less log, where
	// every record was its own commit.
	keep := recs
	if !legacy {
		lastMarker := -1
		for i, rec := range recs {
			if rec.Op == OpCommit {
				lastMarker = i
			}
		}
		keep = recs[:lastMarker+1]
	}
	info.Discarded = len(recs) - len(keep)

	g := graph.New(name)
	nodeMap := map[int64]graph.ID{}
	edgeMap := map[int64]graph.ID{}
	for i, rec := range keep {
		if rec.Op == OpCommit {
			info.Epoch = rec.Epoch
			continue
		}
		if err := applyRecord(g, rec, nodeMap, edgeMap); err != nil {
			return nil, info, fmt.Errorf("storage: recover: record %d: %w", i, err)
		}
		info.Applied++
	}
	return g, info, nil
}

// unmarshalRecord decodes one WAL line with number fidelity and rejects
// trailing garbage (a sign of a torn write landing mid-line).
func unmarshalRecord(line []byte, rec *Record) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	if err := dec.Decode(rec); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after record")
	}
	return nil
}
