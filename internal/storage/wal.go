package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/graphrules/graphrules/internal/graph"
)

// OpKind identifies one WAL record type.
type OpKind string

// WAL record kinds.
const (
	OpAddNode     OpKind = "add-node"
	OpAddEdge     OpKind = "add-edge"
	OpSetNodeProp OpKind = "set-node-prop"
	OpSetEdgeProp OpKind = "set-edge-prop"
	OpRemoveNode  OpKind = "remove-node"
	OpRemoveEdge  OpKind = "remove-edge"
)

// Record is one WAL entry (JSON-lines on disk).
type Record struct {
	Op     OpKind         `json:"op"`
	ID     int64          `json:"id,omitempty"`
	From   int64          `json:"from,omitempty"`
	To     int64          `json:"to,omitempty"`
	Labels []string       `json:"labels,omitempty"`
	Props  map[string]any `json:"props,omitempty"`
	Key    string         `json:"key,omitempty"`
	Value  any            `json:"value,omitempty"`
}

// WAL is a write-ahead log capturing graph mutations as JSON lines. It is
// safe for concurrent use.
type WAL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	n   int
	err error
}

// NewWAL returns a WAL writing to w.
func NewWAL(w io.Writer) *WAL {
	return &WAL{w: bufio.NewWriter(w)}
}

// Len returns the number of records appended so far.
func (l *WAL) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Append writes one record and flushes it.
func (l *WAL) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		return err
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	l.n++
	return nil
}

// LoggedGraph wraps a Graph so that every mutation is appended to a WAL
// before being applied.
type LoggedGraph struct {
	*graph.Graph
	wal *WAL
}

// NewLoggedGraph wraps g with WAL capture.
func NewLoggedGraph(g *graph.Graph, wal *WAL) *LoggedGraph {
	return &LoggedGraph{Graph: g, wal: wal}
}

// AddNode logs then applies a node insertion.
func (lg *LoggedGraph) AddNode(labels []string, props graph.Props) (*graph.Node, error) {
	n := lg.Graph.AddNode(labels, props)
	err := lg.wal.Append(Record{Op: OpAddNode, ID: int64(n.ID), Labels: labels, Props: propsToAny(props)})
	return n, err
}

// AddEdge logs then applies an edge insertion.
func (lg *LoggedGraph) AddEdge(from, to graph.ID, labels []string, props graph.Props) (*graph.Edge, error) {
	e, err := lg.Graph.AddEdge(from, to, labels, props)
	if err != nil {
		return nil, err
	}
	err = lg.wal.Append(Record{
		Op: OpAddEdge, ID: int64(e.ID), From: int64(from), To: int64(to),
		Labels: labels, Props: propsToAny(props),
	})
	return e, err
}

// SetNodeProp logs then applies a node property update.
func (lg *LoggedGraph) SetNodeProp(id graph.ID, key string, v graph.Value) error {
	if err := lg.Graph.SetNodeProp(id, key, v); err != nil {
		return err
	}
	return lg.wal.Append(Record{Op: OpSetNodeProp, ID: int64(id), Key: key, Value: valueToAny(v)})
}

// SetEdgeProp logs then applies an edge property update.
func (lg *LoggedGraph) SetEdgeProp(id graph.ID, key string, v graph.Value) error {
	if err := lg.Graph.SetEdgeProp(id, key, v); err != nil {
		return err
	}
	return lg.wal.Append(Record{Op: OpSetEdgeProp, ID: int64(id), Key: key, Value: valueToAny(v)})
}

// RemoveNode logs then applies a node removal.
func (lg *LoggedGraph) RemoveNode(id graph.ID) error {
	lg.Graph.RemoveNode(id)
	return lg.wal.Append(Record{Op: OpRemoveNode, ID: int64(id)})
}

// RemoveEdge logs then applies an edge removal.
func (lg *LoggedGraph) RemoveEdge(id graph.ID) error {
	lg.Graph.RemoveEdge(id)
	return lg.wal.Append(Record{Op: OpRemoveEdge, ID: int64(id)})
}

// Replay applies a WAL stream to an empty graph and returns it. Node and
// edge IDs in the log are mapped to the replayed graph's IDs.
func Replay(name string, r io.Reader) (*graph.Graph, error) {
	g := graph.New(name)
	nodeMap := map[int64]graph.ID{}
	edgeMap := map[int64]graph.ID{}
	dec := json.NewDecoder(r)
	line := 0
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return g, nil
		} else if err != nil {
			return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
		}
		line++
		switch rec.Op {
		case OpAddNode:
			props, err := anyToProps(rec.Props)
			if err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
			n := g.AddNode(rec.Labels, props)
			nodeMap[rec.ID] = n.ID
		case OpAddEdge:
			props, err := anyToProps(rec.Props)
			if err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
			from, ok1 := nodeMap[rec.From]
			to, ok2 := nodeMap[rec.To]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("storage: wal line %d: unknown endpoint", line)
			}
			e, err := g.AddEdge(from, to, rec.Labels, props)
			if err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
			edgeMap[rec.ID] = e.ID
		case OpSetNodeProp:
			id, ok := nodeMap[rec.ID]
			if !ok {
				return nil, fmt.Errorf("storage: wal line %d: unknown node %d", line, rec.ID)
			}
			v, err := anyToValue(rec.Value)
			if err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
			if err := g.SetNodeProp(id, rec.Key, v); err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
		case OpSetEdgeProp:
			id, ok := edgeMap[rec.ID]
			if !ok {
				return nil, fmt.Errorf("storage: wal line %d: unknown edge %d", line, rec.ID)
			}
			v, err := anyToValue(rec.Value)
			if err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
			if err := g.SetEdgeProp(id, rec.Key, v); err != nil {
				return nil, fmt.Errorf("storage: wal line %d: %w", line, err)
			}
		case OpRemoveNode:
			id, ok := nodeMap[rec.ID]
			if !ok {
				return nil, fmt.Errorf("storage: wal line %d: unknown node %d", line, rec.ID)
			}
			g.RemoveNode(id)
		case OpRemoveEdge:
			id, ok := edgeMap[rec.ID]
			if !ok {
				return nil, fmt.Errorf("storage: wal line %d: unknown edge %d", line, rec.ID)
			}
			g.RemoveEdge(id)
		default:
			return nil, fmt.Errorf("storage: wal line %d: unknown op %q", line, rec.Op)
		}
	}
}
