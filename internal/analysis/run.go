package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to concrete file positions — the
// unit of the checker's text and JSON output, shared by graphrulesvet
// and the unitchecker mode.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EndLine  int    `json:"end_line,omitempty"`
	EndCol   int    `json:"end_col,omitempty"`
	Severity string `json:"severity"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`

	SuggestedFixes []FindingFix `json:"suggested_fixes,omitempty"`
}

// FindingFix is a SuggestedFix with offsets resolved.
type FindingFix struct {
	Message string        `json:"message"`
	Edits   []FindingEdit `json:"edits,omitempty"`
}

// FindingEdit replaces bytes [Start, End) of File with New.
type FindingEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// RunAnalyzers applies each analyzer to each package and returns the
// findings in deterministic (file, offset, analyzer) order. An analyzer
// whose Run returns an error aborts the whole run — analyzer bugs should
// fail loudly, not silently drop coverage.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				markers:   pkg.markers,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		sortDiagnostics(pkg.Fset, diags)
		for _, d := range diags {
			findings = append(findings, resolve(pkg.Fset, d))
		}
	}
	return findings, nil
}

func resolve(fset *token.FileSet, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	f := Finding{
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Severity: "error",
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
	if d.End.IsValid() {
		end := fset.Position(d.End)
		f.EndLine, f.EndCol = end.Line, end.Column
	}
	for _, fix := range d.SuggestedFixes {
		ff := FindingFix{Message: fix.Message}
		for _, e := range fix.TextEdits {
			ff.Edits = append(ff.Edits, FindingEdit{
				File:  fset.Position(e.Pos).Filename,
				Start: fset.Position(e.Pos).Offset,
				End:   fset.Position(e.End).Offset,
				New:   string(e.NewText),
			})
		}
		f.SuggestedFixes = append(f.SuggestedFixes, ff)
	}
	return f
}

// Filter returns the analyzers selected by the -enable/-disable comma
// lists (empty enable = all). Unknown names are an error so a typo in CI
// cannot silently disable a gate.
func Filter(all []*Analyzer, enable, disable []string) ([]*Analyzer, error) {
	known := map[string]*Analyzer{}
	for _, a := range all {
		known[a.Name] = a
	}
	for _, n := range append(append([]string{}, enable...), disable...) {
		if known[n] == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	off := map[string]bool{}
	for _, n := range disable {
		off[n] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if off[a.Name] {
			continue
		}
		if len(enable) > 0 && !containsStr(enable, a.Name) {
			continue
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// WriteText prints findings vet-style: file:line:col: message (analyzer).
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
}

// WriteJSON prints findings as one indented JSON array — the
// machine-readable mode shared by graphrulesvet and cypherlint
// (-format json), consumed by CI annotators.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// SplitList parses a comma-separated flag value into its non-empty
// trimmed elements.
func SplitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// PositionOf is a convenience for tests.
func PositionOf(fset *token.FileSet, pos token.Pos) token.Position { return fset.Position(pos) }
