// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis driver surface, built so the engine
// can ship custom vet-style analyzers (cmd/graphrulesvet) without a
// network dependency on x/tools. It mirrors the shape of the upstream
// API — Analyzer, Pass, Diagnostic, SuggestedFix — closely enough that
// analyzers written against it port to the real framework mechanically,
// but loads packages itself via `go list -export` (load.go) and speaks
// the `go vet -vettool` unit-checker protocol natively (unitchecker.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package via
// its Pass and reports findings with Pass.Report; analyzers must be
// stateless across packages (Run may be called once per package, in any
// order).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -enable/-disable
	// filters and suppression markers. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description; the first line is the summary
	// shown by -list.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Summary returns the first line of the analyzer's doc string.
func (a *Analyzer) Summary() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// Pass carries one package's parsed and type-checked state to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// markers holds the parsed //graphrules: suppression/sanction
	// markers of the package, keyed by file line (markers.go).
	markers markerIndex

	report func(Diagnostic)
}

// Report records a finding. Diagnostics suppressed by a
// //graphrules:vetignore marker on the same or preceding line are
// dropped here, so analyzers need no suppression logic of their own.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if p.suppressed(d.Pos) {
		return
	}
	p.report(d)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a finding spanning an AST node.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding: a source position plus a message, and
// optionally a machine-applicable fix.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // or NoPos
	Analyzer string    // stamped by Pass.Report
	Message  string

	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a named set of textual edits resolving a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// sortDiagnostics orders findings by file name, offset, then analyzer
// name, giving the checker deterministic output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
