package analyzers

// Stdlib-only reimplementations of curated stock vet passes. The
// upstream golang.org/x/tools analyzers are not vendored in this module,
// so the multichecker bundles these deliberately narrower versions:
// each keeps the high-signal core of its namesake (the part expressible
// without SSA) and documents what it gives up. CI still runs the real
// `go vet` alongside, so nothing is lost there.

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/graphrules/graphrules/internal/analysis"
)

// CopyLocks flags values containing sync locks copied by value:
// by-value parameters and receivers, range-value copies, and local
// copies made by dereferencing a pointer.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc: `flag by-value copies of types containing sync.Mutex/RWMutex/WaitGroup/Once/Cond

A copied lock guards nothing: the copy and the original serialize
independently. This lite version (the upstream analyzer needs x/tools)
checks function parameters and receivers, range-value variables, and
x := *p copies.`,
	Run: runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) error {
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		var fields []*ast.Field
		if fd.Recv != nil {
			fields = append(fields, fd.Recv.List...)
		}
		if fd.Type.Params != nil {
			fields = append(fields, fd.Type.Params.List...)
		}
		for _, f := range fields {
			t := pass.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.ReportRangef(f.Type, "by-value parameter copies a lock (%s); pass a pointer", t.String())
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypeOf(n.Value); t != nil && containsLock(t) {
						pass.ReportRangef(n.Value, "range value copies a lock (%s); range over indices or use pointers", t.String())
					}
				}
			case *ast.UnaryExpr:
				// covered via assignment case below
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					star, ok := ast.Unparen(rhs).(*ast.StarExpr)
					if !ok {
						continue
					}
					if t := pass.TypeOf(star); t != nil && containsLock(t) {
						pass.ReportRangef(rhs, "dereference copies a lock (%s)", t.String())
					}
				}
			}
			return true
		})
	})
	return nil
}

// LoopClosure flags go/defer closures capturing the iteration variable
// of an enclosing loop.
var LoopClosure = &analysis.Analyzer{
	Name: "loopclosure",
	Doc: `flag go/defer closures capturing an enclosing loop's iteration variable

Under Go ≥1.22 loop variables are per-iteration, so a captured range
variable is no longer the classic last-value bug — but a deferred
closure over it still runs after the loop (holding the final iteration
alive), and goroutine captures remain a correctness smell the engine
avoids by passing the variable as an argument (see shard.go's worker
spawn). Lite version of the upstream pass.`,
	Run: runLoopClosure,
}

func runLoopClosure(pass *analysis.Pass) error {
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		var loopVars []map[types.Object]bool
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt, *ast.ForStmt:
					vars := map[types.Object]bool{}
					switch l := n.(type) {
					case *ast.RangeStmt:
						for _, e := range []ast.Expr{l.Key, l.Value} {
							if e != nil {
								if o := objectOf(pass.TypesInfo, e); o != nil {
									vars[o] = true
								}
							}
						}
					case *ast.ForStmt:
						if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
							for _, e := range init.Lhs {
								if o := objectOf(pass.TypesInfo, e); o != nil {
									vars[o] = true
								}
							}
						}
					}
					loopVars = append(loopVars, vars)
					var body *ast.BlockStmt
					if r, ok := n.(*ast.RangeStmt); ok {
						body = r.Body
					} else {
						body = n.(*ast.ForStmt).Body
					}
					walk(body)
					loopVars = loopVars[:len(loopVars)-1]
					return false
				case *ast.GoStmt:
					checkClosureCapture(pass, n.Call, loopVars, "go")
				case *ast.DeferStmt:
					checkClosureCapture(pass, n.Call, loopVars, "defer")
				}
				return true
			})
		}
		walk(fd.Body)
	})
	return nil
}

func checkClosureCapture(pass *analysis.Pass, call *ast.CallExpr, loopVars []map[types.Object]bool, kind string) {
	if len(loopVars) == 0 {
		return
	}
	fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, vars := range loopVars {
			if vars[obj] {
				pass.Reportf(id.Pos(), "%s closure captures loop variable %s; pass it as an argument instead", kind, id.Name)
				return true
			}
		}
		return true
	})
}

// UnusedWrite flags writes to fields of a range-value copy that nothing
// reads afterwards — the classic "mutated the copy, not the element"
// bug.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc: `flag field writes to a range-value struct copy never read afterwards

for _, s := range xs { s.Field = v } mutates a per-iteration copy; the
slice is unchanged. Flagged only when the copy is never read after the
write, so locally-used scratch copies stay legal. Lite version of the
upstream SSA-based pass.`,
	Run: runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) error {
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || rs.Value == nil {
				return true
			}
			obj := objectOf(pass.TypesInfo, rs.Value)
			if obj == nil {
				return true
			}
			if _, isStruct := obj.Type().Underlying().(*types.Struct); !isStruct {
				return true
			}
			var writes []*ast.AssignStmt
			var lastUse token.Pos
			ast.Inspect(rs.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok &&
							objectOf(pass.TypesInfo, sel.X) == obj {
							writes = append(writes, n)
							return true
						}
					}
				case *ast.Ident:
					if pass.TypesInfo.Uses[n] == obj && n.End() > lastUse {
						lastUse = n.End()
					}
				}
				return true
			})
			for _, wr := range writes {
				// The write's own LHS read of the variable doesn't count.
				if lastUse <= wr.End() {
					pass.Reportf(wr.Pos(), "write to range-value copy %s is never read; the ranged element is unchanged (range over indices or pointers)", obj.Name())
				}
			}
			return true
		})
	})
	return nil
}

// Nilness flags uses of a variable inside the then-block of its own
// nil-check — a guaranteed nil dereference.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: `flag uses of v inside "if v == nil { ... }" before any reassignment

Dereferencing, selecting from, or calling a method on a pointer or
interface value in the branch that just proved it nil panics (or, for
interfaces, calls through a nil value). Lite, syntactic version of the
upstream SSA-based pass.`,
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) error {
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.EQL {
				return true
			}
			obj := nilCheckedObj(pass, cond)
			if obj == nil {
				return true
			}
			switch types.Unalias(obj.Type()).(type) {
			case *types.Pointer, *types.Interface:
			default:
				if !types.IsInterface(obj.Type()) {
					return true
				}
			}
			reportNilUses(pass, ifs.Body, obj)
			return true
		})
	})
	return nil
}

func reportNilUses(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if objectOf(pass.TypesInfo, lhs) == obj {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if objectOf(pass.TypesInfo, n.X) == obj {
				pass.ReportRangef(n, "%s is nil on this branch; this selector panics", obj.Name())
				return false
			}
		case *ast.StarExpr:
			if objectOf(pass.TypesInfo, n.X) == obj {
				pass.ReportRangef(n, "%s is nil on this branch; this dereference panics", obj.Name())
				return false
			}
		case *ast.FuncLit:
			return false // separate dataflow
		}
		return true
	})
}
