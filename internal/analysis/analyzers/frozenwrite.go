package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/graphrules/graphrules/internal/analysis"
)

// graphMutators are the methods that commit a write epoch; calling any
// of them on a frozen snapshot view panics at runtime (mvcc.go
// beginWrite). The set mirrors internal/graph's exported mutator API.
var graphMutators = map[string]bool{
	"AddNode": true, "AddEdge": true, "MustAddEdge": true,
	"SetNodeProp": true, "SetEdgeProp": true, "AddNodeLabels": true,
	"RemoveNode": true, "RemoveEdge": true, "NewBatch": true,
}

// FrozenWrite statically flags mutator calls on values derived from
// graph.Snapshot(), which are runtime panics today.
var FrozenWrite = &analysis.Analyzer{
	Name: "frozenwrite",
	Doc: `flag mutator calls on frozen snapshot views (a guaranteed runtime panic)

graph.Snapshot() returns a frozen epoch view; every mutator (AddNode,
AddEdge, SetNodeProp, RemoveNode, NewBatch, ...) on it panics with
"mutation of a frozen snapshot view". This analyzer tracks local
variables assigned (only) from a Snapshot()/SnapshotOf call and reports
mutator calls on them, plus direct chains like g.Snapshot().AddNode(...).
A variable that is also assigned from a non-snapshot source is left
alone (the analysis is flow-insensitive and stays conservative).`,
	Run: runFrozenWrite,
}

func runFrozenWrite(pass *analysis.Pass) error {
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		snap, tainted := map[types.Object]bool{}, map[types.Object]bool{}

		// Pass 1: classify every assignment to a local: from Snapshot()
		// or from anything else.
		classify := func(lhs, rhs ast.Expr) {
			obj := objectOf(pass.TypesInfo, lhs)
			if obj == nil {
				return
			}
			if isSnapshotCall(pass, rhs) {
				snap[obj] = true
			} else {
				tainted[obj] = true
			}
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						classify(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						classify(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})

		// Pass 2: report mutator calls whose receiver is a pure
		// snapshot-derived variable or a direct Snapshot() chain.
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !graphMutators[sel.Sel.Name] {
				return true
			}
			// Only methods (not package-qualified functions).
			if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
				return true
			}
			recv := ast.Unparen(sel.X)
			if isSnapshotCall(pass, recv) {
				pass.ReportRangef(call, "%s on a frozen snapshot view panics at runtime; mutate the live graph instead", sel.Sel.Name)
				return true
			}
			if obj := objectOf(pass.TypesInfo, recv); obj != nil && snap[obj] && !tainted[obj] {
				pass.ReportRangef(call, "%s on %s, which holds a frozen snapshot view; mutating it panics at runtime", sel.Sel.Name, obj.Name())
			}
			return true
		})
	})
	return nil
}

// isSnapshotCall reports whether e is a call of a method named Snapshot
// (or the facade's SnapshotOf helper) returning a same-typed view.
func isSnapshotCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	f := calleeOf(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	return f.Name() == "Snapshot" || f.Name() == "SnapshotOf"
}
