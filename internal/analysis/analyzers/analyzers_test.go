package analyzers_test

import (
	"sort"
	"testing"

	"github.com/graphrules/graphrules/internal/analysis"
	"github.com/graphrules/graphrules/internal/analysis/analyzers"
	"github.com/graphrules/graphrules/internal/analysis/atest"
)

// Each corpus holds at least one true positive (a `// want` line) and
// near-miss negatives exercising the analyzer's sanctioned shapes; any
// unexpected finding or unmatched want fails the test.

func TestLockOrderCorpus(t *testing.T) { atest.Run(t, analyzers.LockOrder, "testdata/lockorder") }

func TestBudgetChargeCorpus(t *testing.T) {
	atest.Run(t, analyzers.BudgetCharge, "testdata/budgetcharge")
}

func TestCtxFlowCorpus(t *testing.T) { atest.Run(t, analyzers.CtxFlow, "testdata/ctxflow") }

func TestTypedErrCorpus(t *testing.T) { atest.Run(t, analyzers.TypedErr, "testdata/typederr") }

func TestFrozenWriteCorpus(t *testing.T) {
	atest.Run(t, analyzers.FrozenWrite, "testdata/frozenwrite")
}

func TestCopyLocksCorpus(t *testing.T) { atest.Run(t, analyzers.CopyLocks, "testdata/copylocks") }

func TestLoopClosureCorpus(t *testing.T) {
	atest.Run(t, analyzers.LoopClosure, "testdata/loopclosure")
}

func TestUnusedWriteCorpus(t *testing.T) {
	atest.Run(t, analyzers.UnusedWrite, "testdata/unusedwrite")
}

func TestNilnessCorpus(t *testing.T) { atest.Run(t, analyzers.Nilness, "testdata/nilness") }

// TestAllCleanOnCleanCorpus pins the whole suite silent on an
// engine-shaped package that follows every discipline: correct lock
// order, charged Row accumulation, ctx threading, errors.Is matching,
// read-only snapshot use.
func TestAllCleanOnCleanCorpus(t *testing.T) {
	for _, a := range analyzers.All() {
		atest.RunClean(t, a, "testdata/clean")
	}
}

func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) != 9 {
		t.Fatalf("All() = %d analyzers, want 9", len(all))
	}
	custom := analyzers.Custom()
	if len(custom) != 5 {
		t.Fatalf("Custom() = %d analyzers, want 5", len(custom))
	}
	names := map[string]bool{}
	var order []string
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc or run function", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		order = append(order, a.Name)
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("All() is not sorted by name: %v", order)
	}
	for _, a := range custom {
		if !names[a.Name] {
			t.Errorf("Custom() analyzer %q is not in All()", a.Name)
		}
	}
	var _ []*analysis.Analyzer = all
}
