package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/graphrules/graphrules/internal/analysis"
)

// TypedErr enforces the engine's error contract: typed errors
// (*ResourceExhaustedError, *WALPoisonedError, *AdmissionRejectedError,
// ...) travel wrapped with %w and are matched with errors.As/errors.Is —
// never by ==, type assertion, type switch, or string comparison, all of
// which silently break the moment anyone adds a wrapping layer.
var TypedErr = &analysis.Analyzer{
	Name: "typederr",
	Doc: `match typed errors with errors.As/Is and wrap with %w, never ==, assertions or string compares

The engine's typed errors cross several wrapping layers (resilience
middleware, fmt.Errorf annotations, errors.Join aggregation). Identity
comparison (err == ErrX), concrete type assertion (err.(*XError)), type
switches over error values, and err.Error() string matching all stop
working under wrapping; fmt.Errorf with %v instead of %w severs the
chain for every caller downstream. _test.go files are exempt.`,
	Run: runTypedErr,
}

func runTypedErr(pass *analysis.Pass) error {
	info := pass.TypesInfo
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.TypeAssertExpr:
				checkErrAssert(pass, n)
			case *ast.TypeSwitchStmt:
				checkErrTypeSwitch(pass, n)
			case *ast.CallExpr:
				checkErrStringMatch(pass, n)
				checkErrWrap(pass, n)
				_ = info
			}
			return true
		})
	})
	return nil
}

// checkErrCompare flags ==/!= between two error values (sentinel
// identity breaks under wrapping; use errors.Is) and between an error
// and a typed-error pointer (use errors.As).
func checkErrCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isErrorDotError(pass, b.X) || isErrorDotError(pass, b.Y) {
		pass.ReportRangef(b, "comparing err.Error() text is brittle; match the typed error with errors.As/Is")
		return
	}
	tx, ty := pass.TypeOf(b.X), pass.TypeOf(b.Y)
	if isUntypedNil(pass, b.X) || isUntypedNil(pass, b.Y) {
		return // err == nil is the one sanctioned identity check
	}
	xErr, yErr := isErrorish(tx), isErrorish(ty)
	if !xErr || !yErr {
		return
	}
	if isConcreteTypedError(tx) || isConcreteTypedError(ty) {
		pass.ReportRangef(b, "typed error compared with %s; use errors.As to match across wrapping layers", b.Op)
		return
	}
	pass.ReportRangef(b, "error compared with %s; use errors.Is to match across wrapping layers", b.Op)
}

// checkErrAssert flags err.(*SomeError): assertion to a concrete error
// implementation bypasses unwrapping. Assertions to interfaces (the
// marker-method pattern, e.g. interface{ ResourceExhausted() }) and
// non-error subjects are fine.
func checkErrAssert(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // part of a type switch; handled there
	}
	if !isErrorType(pass.TypeOf(ta.X)) {
		return
	}
	target := pass.TypeOf(ta.Type)
	if target == nil || types.IsInterface(target) {
		return
	}
	if !implementsError(target) {
		return
	}
	pass.ReportRangef(ta, "type assertion on an error to %s misses wrapped errors; use errors.As", types.TypeString(target, types.RelativeTo(pass.Pkg)))
}

// checkErrTypeSwitch flags concrete error cases in a type switch over an
// error value.
func checkErrTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	var subj ast.Expr
	switch s := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			subj = ta.X
		}
	case *ast.AssignStmt:
		if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
			subj = ta.X
		}
	}
	if subj == nil || !isErrorType(pass.TypeOf(subj)) {
		return
	}
	for _, cl := range ts.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, texpr := range cc.List {
			t := pass.TypeOf(texpr)
			if t == nil || types.IsInterface(t) || !implementsError(t) {
				continue
			}
			pass.ReportRangef(texpr, "type switch on an error with concrete case %s misses wrapped errors; use errors.As", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkErrStringMatch flags err.Error() compared against or searched for
// string literals (including via strings.Contains/HasPrefix/HasSuffix).
func checkErrStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	for _, fn := range []string{"Contains", "HasPrefix", "HasSuffix", "EqualFold"} {
		if isPkgFunc(pass.TypesInfo, call, "strings", fn) && len(call.Args) > 0 && isErrorDotError(pass, call.Args[0]) {
			pass.ReportRangef(call, "matching err.Error() text with strings.%s is brittle; match the typed error with errors.As/Is", fn)
			return
		}
	}
}

// checkErrWrap flags fmt.Errorf calls that format an error argument but
// never use %w: the typed error is flattened to text and errors.As/Is
// stop matching for every caller downstream.
func checkErrWrap(pass *analysis.Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypeOf(arg)
		if t != nil && isErrorish(t) && !isUntypedNil(pass, arg) {
			pass.ReportRangef(call, "fmt.Errorf formats an error without %%w; wrapping with %%w keeps errors.As/Is working downstream")
			return
		}
	}
}

// isErrorDotError reports whether e is a call of Error() on an error
// value, possibly inside a binary comparison already flagged elsewhere.
func isErrorDotError(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || methodName(call) != "Error" || len(call.Args) != 0 {
		return false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	return isErrorish(pass.TypeOf(sel.X))
}

// isErrorish reports whether t is the error interface or a concrete
// implementation of it.
func isErrorish(t types.Type) bool {
	return isErrorType(t) || implementsError(t)
}

// isConcreteTypedError reports whether t is a pointer to a named
// engine-style error struct (name ending in "Error" implementing error).
func isConcreteTypedError(t types.Type) bool {
	n := namedOf(t)
	return n != nil && strings.HasSuffix(n.Obj().Name(), "Error") && implementsError(t)
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
