// Package analyzers holds the engine-invariant analyzer suite bundled
// into cmd/graphrulesvet: five custom analyzers encoding this engine's
// hand-enforced disciplines (lockorder, budgetcharge, ctxflow, typederr,
// frozenwrite) plus stdlib-only reimplementations of curated stock vet
// passes (copylocks, loopclosure, unusedwrite, nilness). See Registry.
package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/graphrules/graphrules/internal/analysis"
)

// eachFuncBody visits every function body in the pass's non-test files:
// declared functions with their FuncDecl, and each top-level closure is
// reached through its enclosing declaration's body walk.
func eachFuncBody(pass *analysis.Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		if analysis.SkipTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// calleeOf resolves the called function object of a call expression,
// looking through parentheses. Returns nil for indirect calls, builtins
// and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether the call is to the named function of the
// named package (by package path), e.g. isPkgFunc(info, call, "context",
// "Background").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// methodName returns the bare selector name of a method-shaped call
// (x.Sel(...)), or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// namedOf unwraps pointers and aliases to the underlying named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// implementsError reports whether t (or *t) has an Error() string
// method, i.e. is a concrete error implementation.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// objectOf returns the object an identifier expression denotes, looking
// through parens; nil for anything more complex.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if o := info.Uses[id]; o != nil {
			return o
		}
		return info.Defs[id]
	}
	return nil
}

// containsLock reports whether t directly or transitively contains a
// sync lock type (Mutex, RWMutex, WaitGroup, Once, Cond) by value.
func containsLock(t types.Type) bool {
	return containsLock1(t, map[types.Type]bool{})
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		if p := n.Obj().Pkg(); p != nil && p.Path() == "sync" {
			switch n.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
		return containsLock1(n.Underlying(), seen)
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if containsLock1(st.Field(i).Type(), seen) {
				return true
			}
		}
	}
	if arr, ok := t.(*types.Array); ok {
		return containsLock1(arr.Elem(), seen)
	}
	return false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	if p := n.Obj().Pkg(); p == nil || p.Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}
