package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/graphrules/graphrules/internal/analysis"
)

// CtxFlow enforces the engine's ctx-first API discipline: library code
// must thread the caller's context.Context, never mint its own root.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `forbid context.Background()/TODO() in library packages outside sanctioned shims

The engine's APIs are ctx-first: every blocking or cancellable path takes
a context.Context and the non-Ctx entry points are one-line wrapper shims.
Minting context.Background() anywhere else silently severs cancellation
(a query kill or mining abort no longer reaches the work). Permitted
shapes: a one-statement wrapper function (the classic FooCtx shim), a
function carrying a //graphrules:ctxshim marker, the nil-default guard
"if ctx == nil { ctx = context.Background() }", and comparisons against
context.Background(). Package main and _test.go files are exempt.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return nil
	}
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		if pass.FuncMarked(fd, "ctxshim") || isOneLineShim(fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := backgroundCallName(pass, call)
			if name == "" {
				return true
			}
			if sanctionedUse(pass, fd.Body, call) {
				return true
			}
			pass.ReportRangef(call,
				"context.%s() in library code severs cancellation; thread the caller's ctx (or mark a sanctioned shim with %sctxshim)",
				name, analysis.MarkerPrefix)
			return true
		})
	})
	return nil
}

// backgroundCallName returns "Background" or "TODO" when the call mints
// a root context, "" otherwise.
func backgroundCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	for _, name := range []string{"Background", "TODO"} {
		if isPkgFunc(pass.TypesInfo, call, "context", name) {
			return name
		}
	}
	return ""
}

// isOneLineShim recognizes the sanctioned wrapper shape: a function
// whose body is exactly one statement (return or expression) delegating
// to the Ctx-variant. Its context.Background() is the shim's whole
// point.
func isOneLineShim(fd *ast.FuncDecl) bool {
	return fd.Body != nil && len(fd.Body.List) == 1
}

// sanctionedUse permits two shapes in arbitrary code: the nil-default
// guard (assignment to a variable the enclosing if-statement checked
// against nil) and comparison operands (detecting the default context,
// not using it).
func sanctionedUse(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	sanctioned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sanctioned {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// cctx != context.Background() — a comparison, not a use.
			if ast.Unparen(n.X) == call || ast.Unparen(n.Y) == call {
				sanctioned = true
				return false
			}
		case *ast.IfStmt:
			// if ctx == nil { ctx = context.Background() }
			cond, ok := n.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			checked := nilCheckedObj(pass, cond)
			if checked == nil {
				return true
			}
			for _, st := range n.Body.List {
				as, ok := st.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					continue
				}
				if ast.Unparen(as.Rhs[0]) == call && objectOf(pass.TypesInfo, as.Lhs[0]) == checked {
					sanctioned = true
					return false
				}
			}
		}
		return true
	})
	return sanctioned
}

// nilCheckedObj returns the object compared against nil in cond, if any.
func nilCheckedObj(pass *analysis.Pass, cond *ast.BinaryExpr) types.Object {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(cond.Y) {
		if o := objectOf(pass.TypesInfo, cond.X); o != nil {
			return o
		}
	}
	if isNil(cond.X) {
		if o := objectOf(pass.TypesInfo, cond.Y); o != nil {
			return o
		}
	}
	return nil
}
