package analyzers

import "github.com/graphrules/graphrules/internal/analysis"

// All returns the full graphrulesvet suite: the five engine-invariant
// analyzers plus the curated stock-lite passes, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		BudgetCharge,
		CopyLocks,
		CtxFlow,
		FrozenWrite,
		LockOrder,
		LoopClosure,
		Nilness,
		TypedErr,
		UnusedWrite,
	}
}

// Custom returns only the five engine-invariant analyzers.
func Custom() []*analysis.Analyzer {
	return []*analysis.Analyzer{BudgetCharge, CtxFlow, FrozenWrite, LockOrder, TypedErr}
}
