// Corpus for the nilness stock-lite pass.
package nilness

type node struct {
	next *node
	val  int
}

func selectNil(n *node) *node {
	if n == nil {
		return n.next // want `n is nil on this branch; this selector panics`
	}
	return n
}

func derefNil(p *int) int {
	if p == nil {
		return *p // want `p is nil on this branch; this dereference panics`
	}
	return *p
}

// ---- near-miss negatives ----

// defaulted reassigns before any use: the nil-default idiom.
func defaulted(n *node) int {
	if n == nil {
		n = &node{}
	}
	return n.val
}

// inverted uses the value only on the non-nil branch.
func inverted(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}
