// Corpus for the loopclosure stock-lite pass.
package loopclosure

import "sync"

func deferInLoop(names []string, log func(string)) {
	for _, n := range names {
		defer func() {
			log(n) // want `defer closure captures loop variable n`
		}()
	}
}

func goCapture(items []int, out chan<- int) {
	for _, it := range items {
		go func() {
			out <- it // want `go closure captures loop variable it`
		}()
	}
}

func forInitCapture(out chan<- int) {
	for i := 0; i < 4; i++ {
		go func() {
			out <- i // want `go closure captures loop variable i`
		}()
	}
}

// ---- near-miss negatives ----

// goArg passes the variable as an argument — the engine's own worker
// spawn idiom.
func goArg(items []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out <- v
		}(it)
	}
	wg.Wait()
}

// goOutside spawns outside any loop: nothing to capture.
func goOutside(v int, out chan<- int) {
	go func() {
		out <- v
	}()
}
