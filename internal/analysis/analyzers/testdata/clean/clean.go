// Clean corpus: a compressed engine-shaped package that exercises every
// analyzer's trigger surface — the MVCC lock pair, Row accumulation with
// charges, ctx threading, typed-error matching, snapshot reads — done
// right. Every analyzer in the suite must stay silent here; the package
// is the regression pin for the disciplines the real tree follows.
package clean

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

type Row map[string]int

type budget struct{ rows, max int }

var errBudget = errors.New("row budget exceeded")

func (b *budget) chargeRow(r Row) error {
	b.rows++
	if b.rows > b.max {
		return errBudget
	}
	return nil
}

type engine struct {
	commitMu sync.Mutex
	mu       sync.RWMutex
	frozen   bool
	rows     []Row
}

// Snapshot returns a frozen read view.
func (e *engine) Snapshot() *engine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return &engine{frozen: true, rows: e.rows}
}

func (e *engine) count() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.rows)
}

// commit takes the locks in the blessed order and releases both on
// every path.
func (e *engine) commit(ctx context.Context, b *budget, r Row) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("commit aborted: %w", err)
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	if err := b.chargeRow(r); err != nil {
		return err
	}
	e.mu.Lock()
	e.rows = append(e.rows, r)
	e.mu.Unlock()
	return nil
}

// Commit is the classic one-line shim over the ctx variant.
func (e *engine) Commit(b *budget, r Row) error {
	return e.commit(context.Background(), b, r)
}

// isBudget matches the sentinel across wrapping layers.
func isBudget(err error) bool { return errors.Is(err, errBudget) }

// readAll reads a frozen snapshot without mutating it and fans results
// out through argument-passing goroutines.
func readAll(e *engine, out chan<- Row) {
	snap := e.Snapshot()
	var wg sync.WaitGroup
	for _, r := range snap.rows {
		wg.Add(1)
		go func(row Row) {
			defer wg.Done()
			out <- row
		}(r)
	}
	wg.Wait()
}
