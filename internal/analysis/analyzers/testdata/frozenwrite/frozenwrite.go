// Corpus for the frozenwrite analyzer: mutating a frozen snapshot view
// is a guaranteed runtime panic; the analyzer finds it at compile time.
// The Graph type mirrors internal/graph's Snapshot/mutator surface.
package frozenwrite

type Props map[string]int

type Graph struct {
	frozen bool
	nodes  map[int]Props
}

func New() *Graph { return &Graph{nodes: map[int]Props{}} }

// Snapshot returns a frozen epoch view sharing storage.
func (g *Graph) Snapshot() *Graph {
	return &Graph{frozen: true, nodes: g.nodes}
}

func (g *Graph) AddNode(p Props) int {
	if g.frozen {
		panic("graph: mutation of a frozen snapshot view")
	}
	id := len(g.nodes)
	g.nodes[id] = p
	return id
}

func (g *Graph) SetNodeProp(id int, k string, v int) {
	if g.frozen {
		panic("graph: mutation of a frozen snapshot view")
	}
	g.nodes[id][k] = v
}

// mutateSnapshot writes through a variable holding a frozen view.
func mutateSnapshot(g *Graph) {
	s := g.Snapshot()
	s.AddNode(Props{"x": 1}) // want `AddNode on s, which holds a frozen snapshot view; mutating it panics at runtime`
}

// mutateChained writes through the snapshot call directly.
func mutateChained(g *Graph) {
	g.Snapshot().SetNodeProp(0, "x", 1) // want `SetNodeProp on a frozen snapshot view panics at runtime`
}

// mutateLive reads the snapshot but mutates the live graph: clean.
func mutateLive(g *Graph) int {
	s := g.Snapshot()
	n := len(s.nodes)
	g.AddNode(Props{"x": n})
	return n
}

// reassigned is also assigned from a non-snapshot source; the
// flow-insensitive analysis stays conservative and keeps quiet.
func reassigned(g *Graph, fresh bool) {
	s := g.Snapshot()
	if fresh {
		s = New()
	}
	s.AddNode(Props{"x": 1})
}
