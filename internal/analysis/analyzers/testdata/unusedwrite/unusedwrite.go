// Corpus for the unusedwrite stock-lite pass.
package unusedwrite

type point struct{ x, y int }

// zeroCopies mutates the per-iteration copy; the slice is unchanged.
func zeroCopies(ps []point) {
	for _, p := range ps {
		p.x = 0 // want `write to range-value copy p is never read`
	}
}

// ---- near-miss negatives ----

// scratch reads the copy after writing it: a legal local scratch value.
func scratch(ps []point) int {
	total := 0
	for _, p := range ps {
		p.x *= 2
		total += p.x
	}
	return total
}

// zeroInPlace mutates through the index: the real fix.
func zeroInPlace(ps []point) {
	for i := range ps {
		ps[i].x = 0
	}
}
