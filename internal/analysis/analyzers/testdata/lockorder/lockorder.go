// Corpus for the lockorder analyzer: the MVCC two-lock discipline.
// The graph type mirrors internal/graph's shape — a commitMu writer
// serialization lock plus a mu structure lock — which is exactly the
// signature the analyzer keys on.
package lockorder

import "sync"

type graph struct {
	commitMu sync.Mutex
	mu       sync.RWMutex
	data     map[int]int
}

// wrongOrder acquires commitMu while already holding mu: deadlock
// against the write path, which takes them the other way around.
func (g *graph) wrongOrder() {
	g.mu.Lock()
	g.commitMu.Lock() // want `g\.commitMu/W acquired while g\.mu/W is held .*; the MVCC order is commitMu before mu`
	g.commitMu.Unlock()
	g.mu.Unlock()
}

// takeCommit acquires commitMu directly; callers holding mu inherit the
// order violation transitively.
func (g *graph) takeCommit() {
	g.commitMu.Lock()
	g.data[0]++
	g.commitMu.Unlock()
}

// indirectWrongOrder hits the same deadlock one call away.
func (g *graph) indirectWrongOrder() {
	g.mu.Lock()
	g.takeCommit() // want `call to takeCommit acquires commitMu while g\.mu/W is held`
	g.mu.Unlock()
}

// leakyEarlyReturn forgets to release mu on the early-return path.
func (g *graph) leakyEarlyReturn(v int) int {
	g.mu.Lock()
	if v == 0 {
		return 0 // want `g\.mu/W \(locked at .*\) is not released on this return path`
	}
	g.mu.Unlock()
	return v
}

// rightOrder is the write path's correct shape: commitMu strictly before
// mu, both released. Near-miss negative for the order check.
func (g *graph) rightOrder() {
	g.commitMu.Lock()
	g.mu.Lock()
	g.data[0]++
	g.mu.Unlock()
	g.commitMu.Unlock()
}

// deferredRead releases via defer: early returns are covered, so the
// pairing check stays quiet. Near-miss negative for the leak check.
func (g *graph) deferredRead(k int) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if v, ok := g.data[k]; ok {
		return v
	}
	return -1
}

// beginWrite intentionally returns holding both locks — the caller owns
// them until endWrite. The locktransfer marker sanctions it.
//
//graphrules:locktransfer
func (g *graph) beginWrite() {
	g.commitMu.Lock()
	g.mu.Lock()
}

// counter has a mu but no commitMu: it is outside the MVCC discipline,
// so even its (buggy) unreleased lock is not this analyzer's business.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) leakOutOfScope() {
	c.mu.Lock()
	c.n++
}
