// Corpus for the copylocks stock-lite pass.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `by-value parameter copies a lock`
	return g.n
}

func (g guarded) get() int { // want `by-value parameter copies a lock`
	return g.n
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies a lock`
		total += g.n
	}
	return total
}

func derefCopy(p *guarded) int {
	g := *p // want `dereference copies a lock`
	return g.n
}

// ---- near-miss negatives ----

func byPointer(g *guarded) int { return g.n }

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func rangeIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
