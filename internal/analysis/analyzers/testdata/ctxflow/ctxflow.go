// Corpus for the ctxflow analyzer: the engine's ctx-first API
// discipline. Library code must thread the caller's context; the only
// sanctioned mints are one-line shims, marked shims, nil-default guards
// and comparisons.
package ctxflow

import "context"

type store struct{ data map[string]string }

func (s *store) GetCtx(ctx context.Context, k string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return s.data[k], nil
}

// Get is the classic one-statement wrapper shim: exempt by shape.
func (s *store) Get(k string) (string, error) { return s.GetCtx(context.Background(), k) }

// refresh mints a root context mid-function, severing cancellation for
// every key lookup: the violation.
func (s *store) refresh(keys []string) error {
	ctx := context.Background() // want `context\.Background\(\) in library code severs cancellation`
	for _, k := range keys {
		if _, err := s.GetCtx(ctx, k); err != nil {
			return err
		}
	}
	return nil
}

// stale does the same with context.TODO — equally severed.
func (s *store) stale(k string) (string, error) {
	c := context.TODO() // want `context\.TODO\(\) in library code severs cancellation`
	return s.GetCtx(c, k)
}

// warm runs from init paths that genuinely have no caller context; the
// marker documents and sanctions the mint.
//
//graphrules:ctxshim
func (s *store) warm(keys []string) {
	ctx := context.Background()
	for _, k := range keys {
		_, _ = s.GetCtx(ctx, k)
	}
}

// GetDefault defaults a nil ctx: the sanctioned nil-guard shape.
func (s *store) GetDefault(ctx context.Context, k string) (string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.GetCtx(ctx, k)
}

// isRoot compares against the default context without using it: the
// sanctioned comparison shape.
func isRoot(ctx context.Context) bool {
	root := ctx == context.Background()
	return root
}
