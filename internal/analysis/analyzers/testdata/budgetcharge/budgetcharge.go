// Corpus for the budgetcharge analyzer: the executor's row-budget
// discipline. The package declares a named Row type plus the charge
// methods, which is the signal that the discipline applies here.
package budgetcharge

import "errors"

type Row map[string]int

type budget struct{ rows, max int }

var errBudget = errors.New("row budget exceeded")

func (b *budget) chargeRow(r Row) error {
	b.rows++
	if b.rows > b.max {
		return errBudget
	}
	return nil
}

func (b *budget) chargeRows(n int) error {
	b.rows += n
	if b.rows > b.max {
		return errBudget
	}
	return nil
}

// collectUncharged materializes fresh rows with no charge anywhere in
// reach: the governor bypass the analyzer exists to catch.
func collectUncharged(n int) []Row {
	var out []Row
	for i := 0; i < n; i++ {
		r := Row{"i": i}
		out = append(out, r) // want `append materializes Row rows in collectUncharged with no reachable budget charge`
	}
	return out
}

// collectCharged charges each row before retaining it: clean.
func collectCharged(b *budget, n int) ([]Row, error) {
	var out []Row
	for i := 0; i < n; i++ {
		r := Row{"i": i}
		if err := b.chargeRow(r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// admit charges through a helper; callers reach the charge transitively.
func admit(b *budget, r Row) error { return b.chargeRow(r) }

// collectViaHelper charges one call away — the reachability analysis
// must not flag it. Near-miss negative.
func collectViaHelper(b *budget, n int) ([]Row, error) {
	var out []Row
	for i := 0; i < n; i++ {
		r := Row{"i": i}
		if err := admit(b, r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// filterRows re-appends the untouched range variable of an
// already-charged []Row: a pass-through, exempt.
func filterRows(in []Row) []Row {
	var out []Row
	for _, r := range in {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// splice re-assembles charged slices with a spread append: exempt.
func splice(dst, src []Row) []Row {
	return append(dst, src...)
}

// seedFixture materializes bounded test-fixture rows; the function-level
// marker waives the charge requirement.
//
//graphrules:nocharge bounded fixture rows, no query budget in play
func seedFixture() []Row {
	var out []Row
	for i := 0; i < 3; i++ {
		out = append(out, Row{"i": i})
	}
	return out
}

// seedOne shows the statement-level marker form.
func seedOne() []Row {
	var out []Row
	out = append(out, Row{"i": 0}) //graphrules:nocharge single bounded row
	return out
}
