// Corpus for the typederr analyzer: the engine's error contract. Typed
// errors travel wrapped with %w and are matched with errors.As/Is; every
// identity, assertion, switch or string shortcut breaks under wrapping.
package typederr

import (
	"errors"
	"fmt"
	"strings"
)

// BudgetError is an engine-style typed error.
type BudgetError struct{ Limit int }

func (e *BudgetError) Error() string { return fmt.Sprintf("budget exceeded: %d", e.Limit) }

var errStop = errors.New("stop")

var errBudget = &BudgetError{Limit: 1}

func compareSentinel(err error) bool {
	return err == errStop // want `error compared with ==; use errors\.Is to match across wrapping layers`
}

func compareTyped(err error) bool {
	return err != errBudget // want `typed error compared with !=; use errors\.As to match across wrapping layers`
}

func assertTyped(err error) int {
	if be, ok := err.(*BudgetError); ok { // want `type assertion on an error to \*BudgetError misses wrapped errors; use errors\.As`
		return be.Limit
	}
	return 0
}

func switchTyped(err error) string {
	switch err.(type) {
	case *BudgetError: // want `type switch on an error with concrete case \*BudgetError misses wrapped errors`
		return "budget"
	default:
		return "other"
	}
}

func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "budget") // want `matching err\.Error\(\) text with strings\.Contains is brittle`
}

func textCompare(err error) bool {
	return err.Error() == "stop" // want `comparing err\.Error\(\) text is brittle`
}

func wrapFlattened(err error) error {
	return fmt.Errorf("loading config: %v", err) // want `fmt\.Errorf formats an error without %w`
}

// ---- near-miss negatives: the contract done right ----

func compareIs(err error) bool { return errors.Is(err, errStop) }

func matchAs(err error) int {
	var be *BudgetError
	if errors.As(err, &be) {
		return be.Limit
	}
	return 0
}

func wrapKept(err error) error { return fmt.Errorf("loading config: %w", err) }

// nilCheck is the one sanctioned identity comparison.
func nilCheck(err error) bool { return err == nil }

// temporary is a marker-method interface; asserting an error to an
// interface unwraps nothing and is exempt.
type temporary interface{ Temporary() bool }

func isTemporary(err error) bool {
	t, ok := err.(temporary)
	return ok && t.Temporary()
}

// intCompare: comparisons between non-errors are none of our business.
func intCompare(a, b int) bool { return a == b }

// vetignored shows the line-level escape hatch: the named-analyzer
// vetignore marker suppresses the finding on this line.
func vetignored(err error) bool {
	return err == errStop //graphrules:vetignore typederr pinned legacy comparison
}
