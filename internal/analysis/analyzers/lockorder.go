package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/graphrules/graphrules/internal/analysis"
)

// LockOrder encodes the MVCC two-lock discipline of internal/graph:
// write epochs take commitMu (writer serialization) strictly BEFORE mu
// (structure lock), and every acquired lock is released on every return
// path. It applies to mutex fields of structs that declare a commitMu
// field — the signature of the MVCC discipline — so unrelated packages
// with their own small mutexes are not second-guessed.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `prove the MVCC commitMu→mu acquisition order and Lock/Unlock pairing across early returns

Acquiring commitMu while holding mu deadlocks against the write path
(beginWrite takes commitMu then mu); the analyzer flags direct
commitMu.Lock() calls and calls into functions that transitively acquire
commitMu while mu is held. It also walks every branch of each function
body and reports locks still held at a return with no deferred unlock.
Functions that intentionally transfer lock ownership to their caller
(beginWrite) carry //graphrules:locktransfer. Functions using goto are
skipped by the pairing check.`,
	Run: runLockOrder,
}

// lockKey identifies one mutex within a function: rendered receiver
// expression + field name + read/write mode, e.g. "g.mu/W".
type lockKey string

// lockEvent is one Lock/Unlock-family call on a tracked mutex.
type lockEvent struct {
	key     lockKey
	field   string // mutex field name: commitMu, mu, subMu, ...
	acquire bool
	pos     token.Pos
}

func runLockOrder(pass *analysis.Pass) error {
	// Transitive "acquires commitMu" summaries over the package-local
	// call graph, for the order check.
	locksCommit := commitLockers(pass)

	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		w := &lockWalker{
			pass:        pass,
			locksCommit: locksCommit,
			transfer:    pass.FuncMarked(fd, "locktransfer"),
			hasGoto:     containsGoto(fd.Body),
			deferred:    map[lockKey]bool{},
			name:        fd.Name.Name,
		}
		w.walkFunc(fd.Body)
	})
	return nil
}

// commitLockers computes the set of package functions that directly or
// transitively acquire a tracked commitMu.
func commitLockers(pass *analysis.Pass) map[types.Object]bool {
	direct := map[types.Object]bool{}
	calls := map[types.Object][]types.Object{}
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ev, ok := lockEventOf(pass, call); ok && ev.acquire && ev.field == "commitMu" {
				direct[obj] = true
			}
			if callee := calleeOf(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				calls[obj] = append(calls[obj], callee)
			}
			return true
		})
	})
	// Reverse-propagate to callers (fixpoint).
	out := map[types.Object]bool{}
	for o := range direct {
		out[o] = true
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if out[caller] {
				continue
			}
			for _, c := range callees {
				if out[c] {
					out[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// lockEventOf decodes a call as a Lock/Unlock-family call on a mutex
// field of an MVCC-disciplined struct (one declaring commitMu).
func lockEventOf(pass *analysis.Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockEvent{}, false
	}
	var acquire bool
	var mode string
	switch sel.Sel.Name {
	case "Lock":
		acquire, mode = true, "W"
	case "Unlock":
		acquire, mode = false, "W"
	case "RLock":
		acquire, mode = true, "R"
	case "RUnlock":
		acquire, mode = false, "R"
	default:
		return lockEvent{}, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !isSyncMutex(pass.TypeOf(field)) {
		return lockEvent{}, false
	}
	owner := namedOf(pass.TypeOf(field.X))
	if owner == nil || !structHasField(owner, "commitMu") {
		return lockEvent{}, false
	}
	key := lockKey(renderExpr(field) + "/" + mode)
	return lockEvent{key: key, field: field.Sel.Name, acquire: acquire, pos: call.Pos()}, true
}

func structHasField(n *types.Named, name string) bool {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name && isSyncMutex(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// renderExpr renders a selector chain of identifiers ("b.g.commitMu");
// non-chain receivers render positionally and simply never match.
func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

func containsGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// lockWalker abstractly interprets one function body, tracking the set
// of definitely-held tracked locks.
type lockWalker struct {
	pass        *analysis.Pass
	locksCommit map[types.Object]bool
	transfer    bool
	hasGoto     bool
	deferred    map[lockKey]bool // keys with a deferred unlock seen
	name        string
}

type heldSet map[lockKey]lockEvent

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// holdsMu reports whether any structure lock (field exactly "mu") is
// held, in either mode.
func (h heldSet) holdsMu() (lockEvent, bool) {
	for _, ev := range h {
		if ev.field == "mu" {
			return ev, true
		}
	}
	return lockEvent{}, false
}

func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	held, terminated := w.walkStmts(body.List, heldSet{})
	if !terminated {
		w.checkLeaks(held, body.End())
	}
}

// walkStmts interprets a statement list, returning the held set at
// fallthrough and whether every path terminated (return/panic/branch).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, st := range stmts {
		var terminated bool
		held, terminated = w.walkStmt(st, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		w.scanExpr(st.X, held)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return held, true
			}
		}
		return held, false
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scanNode(st, held)
		return held, false
	case *ast.DeferStmt:
		if ev, ok := lockEventOf(w.pass, st.Call); ok && !ev.acquire {
			w.deferred[acquireKeyFor(ev)] = true
		} else {
			w.scanFuncLits(st.Call)
		}
		return held, false
	case *ast.GoStmt:
		w.scanFuncLits(st.Call)
		return held, false
	case *ast.ReturnStmt:
		w.scanNode(st, held)
		w.checkLeaks(held, st.Pos())
		return held, true
	case *ast.BranchStmt:
		return held, true // break/continue/goto: conservative cut
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = w.walkStmt(st.Init, held)
		}
		w.scanExpr(st.Cond, held)
		thenHeld, thenTerm := w.walkStmts(st.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if st.Else != nil {
			elseHeld, elseTerm = w.walkStmt(st.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond, held)
		}
		w.walkStmts(st.Body.List, held.clone()) // body checked; sequel assumes 0 iterations
		return held, false
	case *ast.RangeStmt:
		w.scanExpr(st.X, held)
		w.walkStmts(st.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkClauses(st, held)
	default:
		w.scanNode(st, held)
		return held, false
	}
}

// walkClauses handles switch/type-switch/select: each clause runs with a
// copy of the entry state; the sequel sees the intersection of the
// fall-through outcomes (plus the entry state when no default exists).
func (w *lockWalker) walkClauses(st ast.Stmt, held heldSet) (heldSet, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch st := st.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag, held)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	var outs []heldSet
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			hasDefault = hasDefault || cl.List == nil
			body = cl.Body
		case *ast.CommClause:
			hasDefault = hasDefault || cl.Comm == nil
			body = cl.Body
		}
		if out, term := w.walkStmts(body, held.clone()); !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

func intersect(a, b heldSet) heldSet {
	out := heldSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// scanNode processes lock events and order violations in every
// expression of a statement, without descending into function literals
// (their bodies are independent; see scanFuncLits).
func (w *lockWalker) scanNode(n ast.Node, held heldSet) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkLit(fl)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev, ok := lockEventOf(w.pass, call); ok {
			w.apply(ev, held)
			return true
		}
		// Order check through calls: invoking a commitMu-acquiring
		// function while holding mu.
		if callee := calleeOf(w.pass.TypesInfo, call); callee != nil && w.locksCommit[callee] {
			if muEv, holds := held.holdsMu(); holds {
				w.pass.Reportf(call.Pos(),
					"call to %s acquires commitMu while %s is held (locked at %s); the MVCC order is commitMu before mu",
					callee.Name(), muEv.key, w.pass.Fset.Position(muEv.pos))
			}
		}
		return true
	})
}

func (w *lockWalker) scanExpr(e ast.Expr, held heldSet) { w.scanNode(e, held) }

// scanFuncLits analyzes closures reachable from an expression as
// independent functions (goroutines and deferred closures do not
// inherit the spawner's lock state usefully).
func (w *lockWalker) scanFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkLit(fl)
			return false
		}
		return true
	})
}

func (w *lockWalker) walkLit(fl *ast.FuncLit) {
	inner := &lockWalker{
		pass:        w.pass,
		locksCommit: w.locksCommit,
		transfer:    w.transfer, // a closure in a locktransfer func shares the sanction
		hasGoto:     containsGoto(fl.Body),
		deferred:    map[lockKey]bool{},
		name:        w.name + ".func",
	}
	inner.walkFunc(fl.Body)
}

// apply mutates held for one lock event, reporting order violations on
// acquisition.
func (w *lockWalker) apply(ev lockEvent, held heldSet) {
	if ev.acquire {
		if ev.field == "commitMu" {
			if muEv, holds := held.holdsMu(); holds {
				w.pass.Reportf(ev.pos,
					"%s acquired while %s is held (locked at %s); the MVCC order is commitMu before mu",
					ev.key, muEv.key, w.pass.Fset.Position(muEv.pos))
			}
		}
		held[ev.key] = ev
		return
	}
	delete(held, acquireKeyFor(ev))
}

// acquireKeyFor maps an unlock event to the key its acquisition used
// (Unlock releases Lock's key, RUnlock releases RLock's).
func acquireKeyFor(ev lockEvent) lockKey { return ev.key }

// checkLeaks reports locks held at a return with no deferred unlock.
func (w *lockWalker) checkLeaks(held heldSet, pos token.Pos) {
	if w.transfer || w.hasGoto {
		return
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		if !w.deferred[k] {
			keys = append(keys, string(k))
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ev := held[lockKey(k)]
		w.pass.Reportf(pos,
			"%s (locked at %s) is not released on this return path; unlock before returning or defer the unlock",
			k, w.pass.Fset.Position(ev.pos))
	}
}
