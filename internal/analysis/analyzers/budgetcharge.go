package analyzers

import (
	"go/ast"
	"go/types"

	"github.com/graphrules/graphrules/internal/analysis"
)

// chargeMethods are the budget accounting entry points established by
// the query-governor work: every accumulation site must reach one.
var chargeMethods = map[string]bool{"chargeRow": true, "chargeRows": true, "chargeMem": true}

// BudgetCharge enforces the row-budget discipline of the cypher
// executor: code that materializes new Rows must charge the governor.
var BudgetCharge = &analysis.Analyzer{
	Name: "budgetcharge",
	Doc: `flag Row accumulation sites with no reachable budget charge (chargeRow/chargeRows/chargeMem)

The executor's resource governor only works if every site that retains
freshly materialized rows charges the per-query budget; a new
accumulation path that skips the charge silently bypasses WithMaxRows /
WithMemoryBudget. This analyzer runs on the query-engine package (any
package declaring the Row type alongside the charge methods) and flags
append calls that grow a []Row with newly built rows from a function
with no budget charge reachable through the package-local call graph.
Pass-through appends (re-appending the untouched range variable of an
already-charged []Row, or splicing a []Row with append(dst, src...)) are
exempt, as are sites marked //graphrules:nocharge <reason>.`,
	Run: runBudgetCharge,
}

func runBudgetCharge(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	rowType := rowTypeOf(pass.Pkg)
	if rowType == nil || !packageCharges(pass) {
		return nil // not the query-engine package
	}

	// The package-local static call graph, and the set of functions
	// containing a direct charge call.
	calls := map[types.Object][]types.Object{}
	charges := map[types.Object]bool{}
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if chargeMethods[methodName(call)] {
				charges[obj] = true
			}
			if callee := calleeOf(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				calls[obj] = append(calls[obj], callee)
			}
			return true
		})
	})

	// reaches: can fn arrive at a charge call (transitively)?
	memo := map[types.Object]bool{}
	var reaches func(o types.Object, seen map[types.Object]bool) bool
	reaches = func(o types.Object, seen map[types.Object]bool) bool {
		if v, ok := memo[o]; ok {
			return v
		}
		if charges[o] || chargeMethods[o.Name()] {
			memo[o] = true
			return true
		}
		if seen[o] {
			return false
		}
		seen[o] = true
		for _, callee := range calls[o] {
			if reaches(callee, seen) {
				memo[o] = true
				return true
			}
		}
		return false
	}

	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		obj := pass.TypesInfo.Defs[fd.Name]
		if obj == nil || reaches(obj, map[types.Object]bool{}) {
			return
		}
		if pass.FuncMarked(fd, "nocharge") {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRowAppend(pass, call, rowType) || passThroughAppend(pass, fd, call, rowType) {
				return true
			}
			if pass.LineMarked(call.Pos(), "nocharge") {
				return true
			}
			pass.ReportRangef(call,
				"append materializes Row rows in %s with no reachable budget charge; call bud.chargeRow/chargeRows/chargeMem (or mark %snocharge with a reason)",
				fd.Name.Name, analysis.MarkerPrefix)
			return true
		})
	})
	return nil
}

// rowTypeOf finds the package's named Row type.
func rowTypeOf(pkg *types.Package) types.Type {
	if o := pkg.Scope().Lookup("Row"); o != nil {
		if tn, ok := o.(*types.TypeName); ok {
			return tn.Type()
		}
	}
	return nil
}

// packageCharges reports whether the package declares any of the charge
// methods — the signal that the budget discipline applies here at all.
func packageCharges(pass *analysis.Pass) bool {
	found := false
	eachFuncBody(pass, func(fd *ast.FuncDecl) {
		if chargeMethods[fd.Name.Name] {
			found = true
		}
	})
	return found
}

// isRowAppend reports whether call is append(s, ...) growing a []Row.
func isRowAppend(pass *analysis.Pass, call *ast.CallExpr, rowType types.Type) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	sl, ok := pass.TypeOf(call.Args[0]).Underlying().(*types.Slice)
	return ok && types.Identical(sl.Elem(), rowType)
}

// passThroughAppend recognizes appends that retain no NEW rows: a spread
// append of an existing []Row, or appending the untouched value variable
// of a range over a []Row (the rows were charged when first built).
func passThroughAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, rowType types.Type) bool {
	if call.Ellipsis.IsValid() {
		return true // append(dst, src...) splices already-charged rows
	}
	// Every appended element must be a bare range-value identifier.
	rangeVals := rangeValueObjs(pass, fd, rowType)
	for _, arg := range call.Args[1:] {
		obj := objectOf(pass.TypesInfo, arg)
		if obj == nil || !rangeVals[obj] {
			return false
		}
	}
	return true
}

// rangeValueObjs collects the value variables of range statements over
// []Row within the function.
func rangeValueObjs(pass *analysis.Pass, fd *ast.FuncDecl, rowType types.Type) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.Value == nil {
			return true
		}
		sl, ok := pass.TypeOf(rs.X).Underlying().(*types.Slice)
		if !ok || !types.Identical(sl.Elem(), rowType) {
			return true
		}
		if obj := objectOf(pass.TypesInfo, rs.Value); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}
