// Package atest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over a testdata package and checks its findings against
// `// want "regexp"` comments in the sources. Each testdata directory
// is one package; its files may import only the standard library
// (export data is resolved through `go list -export`, no module
// context needed).
package atest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/analysis"
)

// Run loads the testdata package at dir, applies the analyzer, and
// reports mismatches between its findings and the want comments.
// It returns the findings for additional assertions.
func Run(t *testing.T, analyzer *analysis.Analyzer, dir string) []analysis.Finding {
	t.Helper()
	pkg, err := loadDir(dir)
	if err != nil {
		t.Fatalf("atest: loading %s: %v", dir, err)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("atest: running %s on %s: %v", analyzer.Name, dir, err)
	}

	wants, err := parseWants(pkg.GoFiles)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	checkWants(t, analyzer.Name, dir, findings, wants)
	return findings
}

// RunClean asserts the analyzer reports nothing on the package —
// the regression pin for packages proven clean in the real tree.
func RunClean(t *testing.T, analyzer *analysis.Analyzer, dir string) {
	t.Helper()
	fs := Run(t, analyzer, dir)
	if len(fs) != 0 {
		t.Errorf("atest: %s expected clean on %s, got %d finding(s)", analyzer.Name, dir, len(fs))
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts `// want "rx" ["rx" ...]` expectations; each
// quoted regexp on a line must be matched by exactly one finding
// reported on that line.
func parseWants(files []string) ([]*want, error) {
	var wants []*want
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				q, n, err := nextQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %w", name, i+1, err)
				}
				rx, err := regexp.Compile(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %w", name, i+1, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, rx: rx})
				rest = strings.TrimSpace(rest[n:])
			}
		}
	}
	return wants, nil
}

// nextQuoted consumes one Go-quoted or backquoted string from the head
// of s, returning its value and the bytes consumed.
func nextQuoted(s string) (string, int, error) {
	if s == "" || (s[0] != '"' && s[0] != '`') {
		return "", 0, fmt.Errorf("expected quoted regexp at %q", s)
	}
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			q, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", 0, err
			}
			return q, i + 1, nil
		}
	}
	return "", 0, fmt.Errorf("unterminated quote in %q", s)
}

func checkWants(t *testing.T, analyzer, dir string, findings []analysis.Finding, wants []*want) {
	t.Helper()
	unmatched := make([]analysis.Finding, 0, len(findings))
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != f.File || w.line != f.Line {
				continue
			}
			if w.rx.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unmatched = append(unmatched, f)
		}
	}
	for _, f := range unmatched {
		t.Errorf("%s: unexpected finding at %s:%d: %s", analyzer, f.File, f.Line, f.Message)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no finding matched want %q at %s:%d", analyzer, w.rx, w.file, w.line)
		}
	}
}

// ---------- testdata package loading ----------

// loadDir parses every .go file in dir as one package and type-checks
// it against stdlib export data.
func loadDir(dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	imports, err := importsOf(files)
	if err != nil {
		return nil, err
	}
	lookup, err := stdlibLookup(imports)
	if err != nil {
		return nil, err
	}
	return analysis.CheckFiles("testdata/"+filepath.Base(dir), files, lookup)
}

// importsOf collects the import paths of the files.
func importsOf(files []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var out []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{} // import path -> export file
)

// stdlibLookup resolves export data for the given stdlib imports (and
// their dependencies) via `go list -export`, cached across calls so a
// test suite pays the go-command cost once per distinct import.
func stdlibLookup(imports []string) (func(string) (io.ReadCloser, error), error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for _, p := range imports {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %s", strings.Join(missing, " "), strings.TrimSpace(stderr.String()))
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
				break
			} else if derr != nil {
				return nil, derr
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file, ok := exportCache[path]
		exportMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("atest: no export data for %q (testdata may import only the standard library)", path)
		}
		return os.Open(file)
	}, nil
}
