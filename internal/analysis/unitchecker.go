package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Unit-checker mode: the `go vet -vettool=...` protocol. The go command
// invokes the tool once per package with the path of a JSON config file
// (always *.cfg) describing the package's sources and the export data of
// its dependencies, after probing the tool's identity with -V=full.
// Diagnostics go to stderr (or stdout as JSON with -json) and a nonzero
// exit tells `go vet` the package failed.

// VetConfig is the subset of the go command's vet.cfg the checker needs.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsVetCfg reports whether args look like a unit-checker invocation
// (a single *.cfg positional argument, as passed by `go vet -vettool`).
func IsVetCfg(args []string) bool {
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}

// RunVetTool executes one unit-checker invocation against the analyzer
// set and returns the process exit code. jsonOut selects JSON diagnostics
// on stdout (the protocol's -json flag) over vet-style text on stderr.
func RunVetTool(cfgPath string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "graphrulesvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	pkg, err := CheckFiles(cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, stderr)
		}
		fmt.Fprintf(stderr, "graphrulesvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 && !cfg.SucceedOnTypecheckFailure {
		// Tolerated for analysis, but surfaced: a package that does not
		// type-check cleanly gets best-effort findings only.
		fmt.Fprintf(stderr, "graphrulesvet: %s: note: %d type error(s); findings are best-effort\n",
			cfg.ImportPath, len(pkg.TypeErrors))
	}

	if code := writeVetx(cfg, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	findings, err := RunAnalyzers([]*Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}
	if jsonOut {
		// The upstream protocol shape: {"package": {"analyzer": [diags]}}.
		grouped := map[string]map[string][]Finding{cfg.ImportPath: {}}
		for _, f := range findings {
			grouped[cfg.ImportPath][f.Analyzer] = append(grouped[cfg.ImportPath][f.Analyzer], f)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(grouped)
	} else {
		WriteText(stderr, findings)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// writeVetx writes the (empty — this suite exports no cross-package
// facts) serialized facts file the go command expects at VetxOutput.
func writeVetx(cfg VetConfig, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("graphrulesvet-facts-v1\n"), 0o666); err != nil {
		fmt.Fprintln(stderr, "graphrulesvet:", err)
		return 2
	}
	return 0
}
