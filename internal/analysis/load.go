package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// TypeErrors holds type-checking problems. Analysis still runs on a
	// partially-checked package (mirroring unitchecker's tolerance), but
	// drivers surface these to the user.
	TypeErrors []error

	markers markerIndex
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the working directory for the go command ("" = cwd).
	Dir string
	// Tests includes _test.go files of the matched packages. Analyzers
	// that skip test files do so regardless (see SkipTestFile).
	Tests bool
}

// Load resolves package patterns with `go list -export -deps` and
// type-checks every non-dependency match from source, resolving imports
// through the compiler export data the go command just produced. It
// needs no network: the standard library and the module's own packages
// are compiled locally into the build cache.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}

	byPath := map[string]*listPkg{}
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", derr)
		}
		lp := p
		// -test emits synthesized test variants under the same import
		// path (e.g. "pkg [pkg.test]"); keep the first (real) entry as
		// the import-resolution target and analyze variants separately.
		if _, dup := byPath[lp.ImportPath]; !dup {
			byPath[lp.ImportPath] = &lp
		}
		// Name == "" with an Error is a pattern that resolved to nothing
		// (e.g. a typo'd path); keep it so the error surfaces instead of
		// reporting a clean run.
		if !lp.DepOnly && !lp.Standard && (lp.Name != "" || lp.Error != nil) {
			roots = append(roots, &lp)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p.Export)
	}

	var pkgs []*Package
	for _, r := range roots {
		if strings.HasSuffix(r.ImportPath, ".test") {
			continue // synthesized test main packages
		}
		if r.Error != nil && len(r.GoFiles) == 0 {
			return nil, fmt.Errorf("analysis: %s: %s", r.ImportPath, r.Error.Err)
		}
		files := make([]string, len(r.GoFiles))
		for i, f := range r.GoFiles {
			files[i] = filepath.Join(r.Dir, f)
		}
		pkg, err := CheckFiles(r.ImportPath, files, lookup)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", r.ImportPath, err)
		}
		pkg.Dir = r.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from its source files,
// resolving imports through lookup (which must yield gc export data, as
// written by `go list -export` or named in a vet.cfg PackageFile map).
// Type errors are tolerated and collected; parse errors are not.
func CheckFiles(importPath string, filenames []string, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkParsed(importPath, filenames, fset, files, lookup)
}

func checkParsed(importPath string, filenames []string, fset *token.FileSet, files []*ast.File, lookup func(path string) (io.ReadCloser, error)) (*Package, error) {
	var terrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, _ := conf.Check(importPath, fset, files, info) // type errors collected via conf.Error
	return &Package{
		ImportPath: importPath,
		GoFiles:    filenames,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypeErrors: terrs,
		markers:    indexMarkers(fset, files),
	}, nil
}

// SkipTestFile reports whether the file holding pos is a _test.go file.
// The engine's analyzers encode library-code disciplines; tests get to
// use context.Background(), compare errors directly, and so on.
func SkipTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
