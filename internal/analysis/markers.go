package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Sanction/suppression markers. A marker is a comment of the form
//
//	//graphrules:<verb> [args...]
//
// attached to a function (doc comment) or a statement (same line, or a
// line comment immediately above). Verbs understood by the suite:
//
//	ctxshim       — this function is a sanctioned non-Ctx→Ctx wrapper
//	                shim; ctxflow permits its context.Background().
//	nocharge      — this accumulation site is exempt from budgetcharge
//	                (give the reason after the verb).
//	locktransfer  — this function intentionally returns while holding
//	                locks (ownership transfers to the caller); lockorder
//	                skips its held-at-return check.
//	vetignore     — suppress findings on this line (optionally only for
//	                the named analyzers: //graphrules:vetignore typederr).
const MarkerPrefix = "//graphrules:"

type marker struct {
	verb string
	args []string
}

// markerIndex maps file name → line → markers on that line.
type markerIndex map[string]map[int][]marker

// indexMarkers scans every comment in the package for graphrules
// markers.
func indexMarkers(fset *token.FileSet, files []*ast.File) markerIndex {
	idx := markerIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, MarkerPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = map[int][]marker{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], marker{verb: fields[0], args: fields[1:]})
			}
		}
	}
	return idx
}

func (idx markerIndex) at(file string, line int) []marker {
	return idx[file][line]
}

// lineMarked reports whether a marker with the verb (and, when the
// marker carries args, one naming arg) sits on the given line or the
// line above it.
func (idx markerIndex) lineMarked(file string, line int, verb, arg string) bool {
	for _, l := range []int{line, line - 1} {
		for _, m := range idx.at(file, l) {
			if m.verb != verb {
				continue
			}
			if verb == "vetignore" && len(m.args) > 0 && !containsStr(m.args, arg) {
				continue
			}
			return true
		}
	}
	return false
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// suppressed reports whether a //graphrules:vetignore marker covers a
// diagnostic of this pass's analyzer at pos.
func (p *Pass) suppressed(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	pp := p.Fset.Position(pos)
	return p.markers.lineMarked(pp.Filename, pp.Line, "vetignore", p.Analyzer.Name)
}

// FuncMarked reports whether fn carries the marker verb in its doc
// comment or on the line of (or above) its declaration.
func (p *Pass) FuncMarked(fn *ast.FuncDecl, verb string) bool {
	if fn == nil {
		return false
	}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, MarkerPrefix+verb) {
				return true
			}
		}
	}
	pp := p.Fset.Position(fn.Pos())
	return p.markers.lineMarked(pp.Filename, pp.Line, verb, "")
}

// LineMarked reports whether the line holding pos (or the line above)
// carries the marker verb.
func (p *Pass) LineMarked(pos token.Pos, verb string) bool {
	pp := p.Fset.Position(pos)
	return p.markers.lineMarked(pp.Filename, pp.Line, verb, "")
}
