// Package textenc converts property graphs into the textual encodings an
// LLM consumes (step 1 of the paper's pipeline, Figure 1) and splits the
// encoded text into LLM-sized pieces: overlapping sliding windows (§3.1.1)
// or retrieval chunks for RAG (§3.1.2).
//
// The primary encoder is the *incident* encoder of Fatemi et al. ("Talk
// like a Graph"), which describes every node together with its incident
// edges. Adjacency and triplet encoders are provided for ablation.
package textenc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// Paper defaults (§3.1.1): the window size and overlap are "the maximum
// allowed by the LLMs limit, that is 8000 tokens for the window size, and
// 500 tokens overlap".
const (
	DefaultWindowTokens  = 8000
	DefaultOverlapTokens = 500
)

// Block records the token span of one graph element group (a node together
// with its incident-edge descriptions) inside an Encoding. Blocks drive the
// boundary-break audit of §4.5.
type Block struct {
	Node  graph.ID
	Start int // first token index, inclusive
	End   int // last token index, exclusive
}

// Len returns the block length in tokens.
func (b Block) Len() int { return b.End - b.Start }

// Encoding is a tokenized textual rendering of a graph.
type Encoding struct {
	EncoderName string
	Tokens      []string
	Blocks      []Block
}

// Text reconstructs the full encoded text.
func (e *Encoding) Text() string { return strings.Join(e.Tokens, " ") }

// TokenCount returns the number of tokens in the encoding.
func (e *Encoding) TokenCount() int { return len(e.Tokens) }

// Slice renders tokens [start, end) as text.
func (e *Encoding) Slice(start, end int) string {
	if start < 0 {
		start = 0
	}
	if end > len(e.Tokens) {
		end = len(e.Tokens)
	}
	if start >= end {
		return ""
	}
	return strings.Join(e.Tokens[start:end], " ")
}

// Encoder turns a graph into a tokenized text encoding.
type Encoder interface {
	Name() string
	Encode(g *graph.Graph) *Encoding
}

// Tokenize splits text into whitespace-delimited tokens, keeping
// double-quoted strings (with their quotes) as single tokens. The count
// approximates LLM tokens at word granularity, which is the accounting the
// window/overlap budget uses.
func Tokenize(text string) []string {
	var toks []string
	i := 0
	n := len(text)
	for i < n {
		for i < n && isSpace(text[i]) {
			i++
		}
		if i >= n {
			break
		}
		start := i
		if text[i] == '"' {
			i++
			for i < n && text[i] != '"' {
				if text[i] == '\\' && i+1 < n {
					i++
				}
				i++
			}
			if i < n {
				i++ // closing quote
			}
			// Consume trailing punctuation glued to the string.
			for i < n && !isSpace(text[i]) {
				i++
			}
		} else {
			for i < n && !isSpace(text[i]) {
				i++
			}
		}
		toks = append(toks, text[start:i])
	}
	return toks
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// CountTokens returns the token count of a text under Tokenize's rules.
func CountTokens(text string) int { return len(Tokenize(text)) }

// ---------- Incident encoder ----------

// IncidentEncoder renders each node with its labels, properties and
// incident (outgoing and incoming) edges. Edge lines are self-contained:
// they inline the neighbour's labels, so a window never needs the
// neighbour's own description to know what an edge connects:
//
//	Node 42 with labels Person has properties (id: 10042, name: "Alex").
//	Node 42 has edge SCORED_GOAL to node 77 (Match) with properties (minute: 5).
//	Node 42 has incoming edge IN_SQUAD from node 13 (Squad).
type IncidentEncoder struct {
	// SkipIncoming omits incoming-edge lines, halving the encoding size at
	// the cost of per-node locality of in-neighbourhood information.
	SkipIncoming bool
}

// Name implements Encoder.
func (IncidentEncoder) Name() string { return "incident" }

// Encode implements Encoder.
func (enc IncidentEncoder) Encode(g *graph.Graph) *Encoding {
	e := &Encoding{EncoderName: enc.Name()}
	var sb strings.Builder
	g.ForEachNode(func(n *graph.Node) {
		start := len(e.Tokens)
		sb.Reset()
		writeNodeLine(&sb, n)
		for _, eid := range g.OutEdges(n.ID) {
			ed := g.Edge(eid)
			fmt.Fprintf(&sb, "Node %d has edge %s to node %d%s%s. ",
				n.ID, ed.Type(), ed.To, labelSuffix(g.Node(ed.To)), propsSuffix(ed.Props))
		}
		if !enc.SkipIncoming {
			for _, eid := range g.InEdges(n.ID) {
				ed := g.Edge(eid)
				if ed.From == ed.To {
					continue // self-loop already listed as outgoing
				}
				fmt.Fprintf(&sb, "Node %d has incoming edge %s from node %d%s. ",
					n.ID, ed.Type(), ed.From, labelSuffix(g.Node(ed.From)))
			}
		}
		e.Tokens = append(e.Tokens, Tokenize(sb.String())...)
		e.Blocks = append(e.Blocks, Block{Node: n.ID, Start: start, End: len(e.Tokens)})
	})
	return e
}

func writeNodeLine(sb *strings.Builder, n *graph.Node) {
	fmt.Fprintf(sb, "Node %d with labels %s %s. ", n.ID, strings.Join(n.Labels, ", "), propsClause(n.Props))
}

func labelSuffix(n *graph.Node) string {
	if n == nil || len(n.Labels) == 0 {
		return ""
	}
	return " (" + strings.Join(n.Labels, ", ") + ")"
}

func propsClause(p graph.Props) string {
	if len(p) == 0 {
		return "has no properties"
	}
	return "has properties (" + propsList(p) + ")"
}

func propsSuffix(p graph.Props) string {
	if len(p) == 0 {
		return ""
	}
	return " with properties (" + propsList(p) + ")"
}

func propsList(p graph.Props) string {
	keys := p.Keys()
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ": " + p[k].String()
	}
	return strings.Join(parts, ", ")
}

// ---------- Adjacency encoder ----------

// AdjacencyEncoder first lists every node, then every edge as an adjacency
// statement. Node context and edge context are far apart, which is its
// known weakness for rule mining.
type AdjacencyEncoder struct{}

// Name implements Encoder.
func (AdjacencyEncoder) Name() string { return "adjacency" }

// Encode implements Encoder.
func (AdjacencyEncoder) Encode(g *graph.Graph) *Encoding {
	e := &Encoding{EncoderName: "adjacency"}
	var sb strings.Builder
	g.ForEachNode(func(n *graph.Node) {
		start := len(e.Tokens)
		sb.Reset()
		writeNodeLine(&sb, n)
		e.Tokens = append(e.Tokens, Tokenize(sb.String())...)
		e.Blocks = append(e.Blocks, Block{Node: n.ID, Start: start, End: len(e.Tokens)})
	})
	g.ForEachEdge(func(ed *graph.Edge) {
		sb.Reset()
		fmt.Fprintf(&sb, "Node %d%s is connected by %s to node %d%s%s. ",
			ed.From, labelSuffix(g.Node(ed.From)), ed.Type(), ed.To, labelSuffix(g.Node(ed.To)), propsSuffix(ed.Props))
		e.Tokens = append(e.Tokens, Tokenize(sb.String())...)
	})
	return e
}

// ---------- Triplet encoder ----------

// TripletEncoder renders one (subject, predicate, object) style line per
// edge with inline node descriptions, plus one line per isolated node.
type TripletEncoder struct{}

// Name implements Encoder.
func (TripletEncoder) Name() string { return "triplet" }

// Encode implements Encoder.
func (TripletEncoder) Encode(g *graph.Graph) *Encoding {
	e := &Encoding{EncoderName: "triplet"}
	var sb strings.Builder
	nodeRef := func(n *graph.Node) string {
		return fmt.Sprintf("(node %d: %s %s)", n.ID, strings.Join(n.Labels, ","), propsClause(n.Props))
	}
	g.ForEachEdge(func(ed *graph.Edge) {
		sb.Reset()
		from, to := g.Node(ed.From), g.Node(ed.To)
		fmt.Fprintf(&sb, "%s %s %s%s. ", nodeRef(from), ed.Type(), nodeRef(to), propsSuffix(ed.Props))
		e.Tokens = append(e.Tokens, Tokenize(sb.String())...)
	})
	g.ForEachNode(func(n *graph.Node) {
		if g.OutDegree(n.ID) == 0 && g.InDegree(n.ID) == 0 {
			start := len(e.Tokens)
			sb.Reset()
			writeNodeLine(&sb, n)
			e.Tokens = append(e.Tokens, Tokenize(sb.String())...)
			e.Blocks = append(e.Blocks, Block{Node: n.ID, Start: start, End: len(e.Tokens)})
		}
	})
	return e
}

// Encoders returns the available encoders keyed by name.
func Encoders() map[string]Encoder {
	return map[string]Encoder{
		"incident":  IncidentEncoder{},
		"adjacency": AdjacencyEncoder{},
		"triplet":   TripletEncoder{},
	}
}

// EncoderNames returns the sorted encoder names.
func EncoderNames() []string {
	names := make([]string, 0, 3)
	for n := range Encoders() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------- Sliding windows ----------

// Window is one slice of an encoding handed to the LLM.
type Window struct {
	Index int
	Start int // token offset, inclusive
	End   int // token offset, exclusive
	Text  string
}

// TokenCount returns the window length in tokens.
func (w Window) TokenCount() int { return w.End - w.Start }

// SlidingWindows cuts the encoding into overlapping windows of `size`
// tokens advancing by `size-overlap` (§3.1.1). The final window may be
// shorter. size must exceed overlap.
func SlidingWindows(e *Encoding, size, overlap int) ([]Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("textenc: window size must be positive, got %d", size)
	}
	if overlap < 0 || overlap >= size {
		return nil, fmt.Errorf("textenc: overlap %d must be in [0, size) with size %d", overlap, size)
	}
	stride := size - overlap
	var out []Window
	for start := 0; ; start += stride {
		end := start + size
		if end > len(e.Tokens) {
			end = len(e.Tokens)
		}
		if start >= end {
			break
		}
		out = append(out, Window{
			Index: len(out),
			Start: start,
			End:   end,
			Text:  e.Slice(start, end),
		})
		if end == len(e.Tokens) {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, Window{Index: 0})
	}
	return out, nil
}

// BrokenBlocks returns the element blocks that are not fully contained in
// any single window — the "patterns broken" between windows that §4.5
// counts (6 for WWC2019, 11 for Cybersecurity, 6 for Twitter in the paper's
// runs). A block is broken when it is longer than the overlap and straddles
// a window boundary.
func BrokenBlocks(e *Encoding, size, overlap int) ([]Block, error) {
	windows, err := SlidingWindows(e, size, overlap)
	if err != nil {
		return nil, err
	}
	var broken []Block
	for _, b := range e.Blocks {
		contained := false
		for _, w := range windows {
			if b.Start >= w.Start && b.End <= w.End {
				contained = true
				break
			}
		}
		if !contained {
			broken = append(broken, b)
		}
	}
	return broken, nil
}

// ---------- RAG chunks ----------

// Chunks cuts the encoding into non-overlapping pieces of at most
// chunkTokens tokens, aligned to block boundaries where possible (a block
// longer than chunkTokens is split mid-block). These are the units embedded
// into the vector store for RAG.
func Chunks(e *Encoding, chunkTokens int) ([]Window, error) {
	if chunkTokens <= 0 {
		return nil, fmt.Errorf("textenc: chunk size must be positive, got %d", chunkTokens)
	}
	var out []Window
	emit := func(start, end int) {
		if start >= end {
			return
		}
		out = append(out, Window{Index: len(out), Start: start, End: end, Text: e.Slice(start, end)})
	}
	cur := 0
	pos := 0
	for _, b := range e.Blocks {
		// Tokens between blocks (edge lines of non-block encoders) ride
		// along with the preceding block.
		blockEnd := b.End
		if blockEnd-cur > chunkTokens && pos > cur {
			emit(cur, pos)
			cur = pos
		}
		for blockEnd-cur > chunkTokens {
			emit(cur, cur+chunkTokens)
			cur += chunkTokens
		}
		pos = blockEnd
	}
	// Trailing tokens after the last block.
	for len(e.Tokens)-cur > chunkTokens {
		emit(cur, cur+chunkTokens)
		cur += chunkTokens
	}
	emit(cur, len(e.Tokens))
	if len(out) == 0 {
		out = append(out, Window{Index: 0})
	}
	return out, nil
}
