package textenc

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/graphrules/graphrules/internal/graph"
)

func fixture() *graph.Graph {
	g := graph.New("fx")
	a := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("alice smith")})
	b := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(2)})
	c := g.AddNode([]string{"Lonely"}, nil)
	_ = c
	g.MustAddEdge(a.ID, b.ID, []string{"POSTS"}, graph.Props{"at": graph.NewInt(9)})
	g.MustAddEdge(a.ID, a.ID, []string{"SELF"}, nil)
	return g
}

func TestTokenize(t *testing.T) {
	toks := Tokenize(`Node 1 has properties (name: "alice smith", id: 3).`)
	joined := strings.Join(toks, "|")
	if !strings.Contains(joined, `"alice smith",`) {
		t.Errorf("quoted string should stay one token: %v", toks)
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty text should have no tokens")
	}
	if n := CountTokens("a b  c\n d"); n != 4 {
		t.Errorf("CountTokens = %d", n)
	}
	// Escaped quote inside string.
	toks = Tokenize(`"a\"b" rest`)
	if len(toks) != 2 || toks[0] != `"a\"b"` {
		t.Errorf("escaped quote handling wrong: %v", toks)
	}
}

func TestIncidentEncoder(t *testing.T) {
	g := fixture()
	e := IncidentEncoder{}.Encode(g)
	text := e.Text()
	for _, want := range []string{
		"Node 0 with labels User has properties (id: 1, name: \"alice smith\").",
		"Node 0 has edge POSTS to node 1 (Tweet) with properties (at: 9).",
		"Node 0 has edge SELF to node 0 (User).",
		"Node 1 has incoming edge POSTS from node 0 (User).",
		"Node 2 with labels Lonely has no properties.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("incident encoding missing %q\nin: %s", want, text)
		}
	}
	// Self-loop must not be duplicated as incoming.
	if strings.Contains(text, "Node 0 has incoming edge SELF") {
		t.Error("self-loop duplicated as incoming edge")
	}
	if len(e.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(e.Blocks))
	}
	// Blocks are contiguous and ordered.
	for i := 1; i < len(e.Blocks); i++ {
		if e.Blocks[i].Start != e.Blocks[i-1].End {
			t.Error("blocks not contiguous")
		}
	}
	if e.Blocks[len(e.Blocks)-1].End != len(e.Tokens) {
		t.Error("blocks do not cover the token stream")
	}
}

func TestIncidentSkipIncoming(t *testing.T) {
	g := fixture()
	full := IncidentEncoder{}.Encode(g)
	slim := IncidentEncoder{SkipIncoming: true}.Encode(g)
	if slim.TokenCount() >= full.TokenCount() {
		t.Error("SkipIncoming should shrink the encoding")
	}
	if strings.Contains(slim.Text(), "incoming") {
		t.Error("SkipIncoming still has incoming lines")
	}
}

func TestAdjacencyEncoder(t *testing.T) {
	g := fixture()
	e := AdjacencyEncoder{}.Encode(g)
	text := e.Text()
	if !strings.Contains(text, "Node 0 (User) is connected by POSTS to node 1 (Tweet)") {
		t.Errorf("adjacency missing edge line: %s", text)
	}
	if !strings.Contains(text, "Node 2 with labels Lonely") {
		t.Error("adjacency missing node line")
	}
}

func TestTripletEncoder(t *testing.T) {
	g := fixture()
	e := TripletEncoder{}.Encode(g)
	text := e.Text()
	if !strings.Contains(text, "POSTS") || !strings.Contains(text, "(node 0:") {
		t.Errorf("triplet encoding wrong: %s", text)
	}
	if !strings.Contains(text, "Node 2 with labels Lonely") {
		t.Error("isolated node missing from triplet encoding")
	}
}

func TestEncodersRegistry(t *testing.T) {
	names := EncoderNames()
	if len(names) != 3 || names[0] != "adjacency" {
		t.Errorf("EncoderNames = %v", names)
	}
	for name, enc := range Encoders() {
		if enc.Name() != name {
			t.Errorf("encoder %q reports name %q", name, enc.Name())
		}
	}
}

func TestSlidingWindows(t *testing.T) {
	e := &Encoding{Tokens: make([]string, 100)}
	for i := range e.Tokens {
		e.Tokens[i] = "t"
	}
	ws, err := SlidingWindows(e, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// stride 30: [0,40) [30,70) [60,100)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	if ws[1].Start != 30 || ws[1].End != 70 {
		t.Errorf("window 1 = [%d,%d)", ws[1].Start, ws[1].End)
	}
	if ws[2].End != 100 {
		t.Errorf("last window end = %d", ws[2].End)
	}
	if ws[0].TokenCount() != 40 {
		t.Error("window token count wrong")
	}
	// Exact fit: no empty trailing window.
	ws, _ = SlidingWindows(&Encoding{Tokens: make([]string, 40)}, 40, 10)
	if len(ws) != 1 {
		t.Errorf("exact fit windows = %d", len(ws))
	}
	// Empty encoding still yields one (empty) window.
	ws, _ = SlidingWindows(&Encoding{}, 40, 10)
	if len(ws) != 1 {
		t.Error("empty encoding should yield one window")
	}
}

func TestSlidingWindowsErrors(t *testing.T) {
	e := &Encoding{Tokens: []string{"a"}}
	if _, err := SlidingWindows(e, 0, 0); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := SlidingWindows(e, 10, 10); err == nil {
		t.Error("overlap == size should fail")
	}
	if _, err := SlidingWindows(e, 10, -1); err == nil {
		t.Error("negative overlap should fail")
	}
}

func TestWindowCoverageProperty(t *testing.T) {
	f := func(nTokens uint16, size8 uint8, ov8 uint8) bool {
		n := int(nTokens)%500 + 1
		size := int(size8)%100 + 2
		overlap := int(ov8) % size
		e := &Encoding{Tokens: make([]string, n)}
		ws, err := SlidingWindows(e, size, overlap)
		if err != nil {
			return false
		}
		// Coverage: every token is inside at least one window; windows
		// advance monotonically.
		covered := make([]bool, n)
		prevStart := -1
		for _, w := range ws {
			if w.Start <= prevStart {
				return false
			}
			prevStart = w.Start
			for i := w.Start; i < w.End; i++ {
				covered[i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBrokenBlocks(t *testing.T) {
	// Construct an encoding with one small block and one giant block that
	// must straddle a boundary.
	e := &Encoding{}
	addBlock := func(id graph.ID, n int) {
		start := len(e.Tokens)
		for i := 0; i < n; i++ {
			e.Tokens = append(e.Tokens, "x")
		}
		e.Blocks = append(e.Blocks, Block{Node: id, Start: start, End: len(e.Tokens)})
	}
	addBlock(1, 30)
	addBlock(2, 60) // longer than overlap 10 and straddles with window 50
	addBlock(3, 20)
	broken, err := BrokenBlocks(e, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) == 0 {
		t.Fatal("expected broken blocks")
	}
	for _, b := range broken {
		if b.Len() <= 10 {
			t.Errorf("block %d of len %d cannot be broken with overlap 10", b.Node, b.Len())
		}
	}
	// With a window bigger than everything, nothing breaks.
	broken, _ = BrokenBlocks(e, 1000, 10)
	if len(broken) != 0 {
		t.Errorf("oversized window should break nothing, got %d", len(broken))
	}
}

func TestChunks(t *testing.T) {
	g := fixture()
	e := IncidentEncoder{}.Encode(g)
	chunks, err := Chunks(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, c := range chunks {
		if c.TokenCount() > 10 {
			t.Errorf("chunk %d has %d tokens", i, c.TokenCount())
		}
		total += c.TokenCount()
	}
	if total != e.TokenCount() {
		t.Errorf("chunks cover %d of %d tokens", total, e.TokenCount())
	}
	if _, err := Chunks(e, 0); err == nil {
		t.Error("chunk size 0 should fail")
	}
	// Chunks over an empty encoding.
	cs, _ := Chunks(&Encoding{}, 10)
	if len(cs) != 1 {
		t.Error("empty encoding should yield one chunk")
	}
}

func TestChunksAlignToBlocks(t *testing.T) {
	e := &Encoding{}
	for b := 0; b < 5; b++ {
		start := len(e.Tokens)
		for i := 0; i < 8; i++ {
			e.Tokens = append(e.Tokens, "x")
		}
		e.Blocks = append(e.Blocks, Block{Node: graph.ID(b), Start: start, End: len(e.Tokens)})
	}
	chunks, _ := Chunks(e, 20)
	// 5 blocks of 8 tokens, chunk budget 20 -> chunks of 16 tokens
	// (2 blocks each), never splitting a block.
	for _, c := range chunks {
		if c.Start%8 != 0 || c.End%8 != 0 {
			t.Errorf("chunk [%d,%d) splits a block", c.Start, c.End)
		}
	}
}
