// Package governor implements query admission control: a weighted
// semaphore bounding how many queries run concurrently against one graph,
// with a bounded FIFO wait queue, a queue timeout, and typed rejection
// errors. It exists so the engine degrades into backpressure — queue,
// then reject — instead of letting unbounded concurrency multiply the
// memory and CPU of expensive queries until the process dies; the counters
// it keeps are the server metrics a network front-end (cmd/graphd) will
// export.
//
// The package deliberately does not import internal/cypher: the executor
// defines the two-method Admission contract (Admit returning a done
// callback) and *Governor satisfies it, so either side can evolve without
// a dependency cycle. Budget kills are classified structurally — any
// error exposing ResourceExhausted() bool (which *cypher.
// ResourceExhaustedError does) counts as a kill rather than a failure.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Config tunes one Governor.
type Config struct {
	// MaxConcurrent bounds the queries running at once. <= 0 defaults to 4.
	MaxConcurrent int
	// MaxQueue bounds the FIFO wait queue; an arrival beyond it is
	// rejected immediately. < 0 defaults to MaxConcurrent; 0 disables
	// queueing (reject as soon as all slots are busy).
	MaxQueue int
	// QueueTimeout bounds how long one query may wait for a slot; <= 0
	// means wait until the caller's context expires.
	QueueTimeout time.Duration
}

// AdmissionRejectedError is the typed backpressure signal: the governor
// turned a query away because the queue was full, the wait timed out, or
// the caller's context expired while queued.
type AdmissionRejectedError struct {
	// Reason is "queue full", "queue timeout" or "cancelled while queued".
	Reason string
	// Active and Queued are the governor occupancy at rejection.
	Active, Queued int
	// Limit is the concurrency bound the query was waiting on.
	Limit int
}

func (e *AdmissionRejectedError) Error() string {
	return fmt.Sprintf("governor: admission rejected (%s; active %d/%d, queued %d)",
		e.Reason, e.Active, e.Limit, e.Queued)
}

// AdmissionRejected marks the error for structural classification, the
// mirror of the executor's ResourceExhausted() marker.
func (e *AdmissionRejectedError) AdmissionRejected() bool { return true }

// Stats is a point-in-time snapshot of the governor counters. The
// invariant Admitted == Completed + Killed + Active holds at every
// snapshot taken while no query is between states.
type Stats struct {
	// Admitted counts queries granted a slot (immediately or after queueing).
	Admitted int64
	// Queued counts queries that had to wait for a slot before admission
	// or rejection (cumulative, not current occupancy).
	Queued int64
	// Rejected counts queries turned away: full queue, queue timeout, or
	// cancellation while waiting.
	Rejected int64
	// Completed counts admitted queries that finished without a budget kill
	// (successfully or with an ordinary error).
	Completed int64
	// Killed counts admitted queries that died on a resource budget — the
	// done error exposed ResourceExhausted() bool.
	Killed int64
	// Active is the current number of running queries; Peak the high-water
	// mark; Waiting the current queue occupancy.
	Active, Peak, Waiting int
}

// Governor is a concurrency-admission controller satisfying the
// executor's Admission contract. The zero value is not usable; construct
// with New.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	active  int
	waiters []*waiter // FIFO queue of queries waiting for a slot

	admitted  int64
	queued    int64
	rejected  int64
	completed int64
	killed    int64
	peak      int
}

// waiter is one queued admission request. The governor grants a slot by
// sending on grant (buffered, capacity 1) and marking granted under mu;
// a waiter that times out instead marks itself abandoned under mu. The
// two transitions are mutually exclusive, so a slot is never both granted
// and lost.
type waiter struct {
	grant     chan struct{}
	granted   bool
	abandoned bool
}

// New builds a Governor from cfg, applying defaults.
func New(cfg Config) *Governor {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = cfg.MaxConcurrent
	}
	return &Governor{cfg: cfg}
}

// Admit blocks until the query may run, then returns the done callback
// the caller must invoke exactly once with the query's final error.
// Admission order is FIFO among waiters. A full queue rejects
// immediately; QueueTimeout (when set) and ctx bound the wait.
func (g *Governor) Admit(ctx context.Context) (func(err error), error) {
	g.mu.Lock()
	if g.active < g.cfg.MaxConcurrent && len(g.waiters) == 0 {
		g.admitLocked()
		g.mu.Unlock()
		return g.doneFunc(), nil
	}
	if len(g.waiters) >= g.cfg.MaxQueue {
		g.rejected++
		err := g.rejectionLocked("queue full")
		g.mu.Unlock()
		return nil, err
	}
	w := &waiter{grant: make(chan struct{}, 1)}
	g.waiters = append(g.waiters, w)
	g.queued++
	g.mu.Unlock()

	var timeout <-chan time.Time
	if g.cfg.QueueTimeout > 0 {
		t := time.NewTimer(g.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case <-w.grant:
		return g.doneFunc(), nil
	case <-timeout:
		return nil, g.abandon(w, "queue timeout")
	case <-ctx.Done():
		return nil, g.abandon(w, "cancelled while queued")
	}
}

// admitLocked books one admission. Callers hold mu.
func (g *Governor) admitLocked() {
	g.active++
	g.admitted++
	if g.active > g.peak {
		g.peak = g.active
	}
}

// rejectionLocked builds the typed rejection for the current occupancy.
// Callers hold mu and have already counted the rejection.
func (g *Governor) rejectionLocked(reason string) error {
	return &AdmissionRejectedError{
		Reason: reason,
		Active: g.active,
		Queued: len(g.waiters),
		Limit:  g.cfg.MaxConcurrent,
	}
}

// abandon resolves a waiter that stopped waiting. If the grant raced in
// before the waiter could mark itself abandoned, the admission stands —
// the slot is released and the query is still rejected to the caller, so
// no slot leaks and the counters keep reconciling.
func (g *Governor) abandon(w *waiter, reason string) error {
	g.mu.Lock()
	if w.granted {
		// Lost the race: a slot was granted concurrently. Undo it.
		g.mu.Unlock()
		g.doneFunc()(context.Canceled)
		g.mu.Lock()
		g.completed-- // the undo was not a real completion
		g.admitted--  // nor a real admission
	} else {
		w.abandoned = true
		g.removeWaiterLocked(w)
	}
	g.rejected++
	err := g.rejectionLocked(reason)
	g.mu.Unlock()
	return err
}

func (g *Governor) removeWaiterLocked(w *waiter) {
	for i, o := range g.waiters {
		if o == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// doneFunc returns the release callback for one admitted query. The
// sync.Once keeps a double-call from corrupting the counters.
func (g *Governor) doneFunc() func(err error) {
	var once sync.Once
	return func(err error) {
		once.Do(func() { g.release(err) })
	}
}

// release returns one slot, classifies the query's outcome, and hands the
// slot to the head waiter if any.
func (g *Governor) release(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if isBudgetKill(err) {
		g.killed++
	} else {
		g.completed++
	}
	g.active--
	// Hand the freed slot to the oldest live waiter. Skipping abandoned
	// entries here (rather than relying on removal) covers the window
	// where a timed-out waiter hasn't reacquired mu yet.
	for len(g.waiters) > 0 && g.active < g.cfg.MaxConcurrent {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		if w.abandoned {
			continue
		}
		w.granted = true
		g.admitLocked()
		w.grant <- struct{}{}
		return
	}
}

// isBudgetKill reports whether err marks a resource-budget kill,
// classified structurally so this package never imports the executor.
func isBudgetKill(err error) bool {
	var re interface{ ResourceExhausted() bool }
	return errors.As(err, &re) && re.ResourceExhausted()
}

// Stats snapshots the governor counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Admitted:  g.admitted,
		Queued:    g.queued,
		Rejected:  g.rejected,
		Completed: g.completed,
		Killed:    g.killed,
		Active:    g.active,
		Peak:      g.peak,
		Waiting:   len(g.waiters),
	}
}

// String renders the snapshot for CLIs and logs.
func (s Stats) String() string {
	return fmt.Sprintf("admitted %d (queued %d, rejected %d) · completed %d · killed %d · active %d (peak %d, waiting %d)",
		s.Admitted, s.Queued, s.Rejected, s.Completed, s.Killed, s.Active, s.Peak, s.Waiting)
}
