package governor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exhaustedErr mimics the executor's budget-kill marker without importing
// internal/cypher, mirroring how the governor itself classifies kills.
type exhaustedErr struct{}

func (exhaustedErr) Error() string           { return "budget kill" }
func (exhaustedErr) ResourceExhausted() bool { return true }

func TestAdmitImmediate(t *testing.T) {
	g := New(Config{MaxConcurrent: 2})
	done1, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Active != 2 || st.Peak != 2 || st.Admitted != 2 {
		t.Fatalf("stats after 2 admits: %+v", st)
	}
	done1(nil)
	done2(exhaustedErr{})
	st = g.Stats()
	if st.Active != 0 || st.Completed != 1 || st.Killed != 1 {
		t.Fatalf("stats after releases: %+v", st)
	}
	if st.Admitted != st.Completed+st.Killed+int64(st.Active) {
		t.Fatalf("counter invariant broken: %+v", st)
	}
}

func TestRejectQueueFull(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 0})
	done, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Admit(context.Background())
	var re *AdmissionRejectedError
	if !errors.As(err, &re) {
		t.Fatalf("want *AdmissionRejectedError, got %T: %v", err, err)
	}
	if re.Reason != "queue full" || re.Limit != 1 {
		t.Fatalf("rejection %+v", re)
	}
	if !re.AdmissionRejected() {
		t.Fatal("AdmissionRejected() must report true")
	}
	done(nil)
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", st.Rejected)
	}
}

func TestQueueTimeout(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	done, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = g.Admit(context.Background())
	var re *AdmissionRejectedError
	if !errors.As(err, &re) || re.Reason != "queue timeout" {
		t.Fatalf("want queue-timeout rejection, got %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("timed out too early")
	}
	done(nil)
	// The abandoned waiter must not have leaked its queue slot.
	if st := g.Stats(); st.Waiting != 0 || st.Active != 0 {
		t.Fatalf("leaked occupancy: %+v", st)
	}
}

func TestCancelledWhileQueued(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	done, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	_, err = g.Admit(ctx)
	var re *AdmissionRejectedError
	if !errors.As(err, &re) || re.Reason != "cancelled while queued" {
		t.Fatalf("want cancellation rejection, got %v", err)
	}
	done(nil)
	if st := g.Stats(); st.Waiting != 0 || st.Active != 0 {
		t.Fatalf("leaked occupancy: %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	first, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	order := make(chan int, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize queue entry so arrival order is deterministic.
			started.Done()
			done, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("waiter %d rejected: %v", i, err)
				return
			}
			order <- i
			done(nil)
		}(i)
		// Wait until goroutine i is queued before launching i+1.
		deadline := time.Now().Add(time.Second)
		for g.Stats().Waiting != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	started.Wait()
	first(nil)
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("admission order diverged from FIFO: got %d, want %d", got, want)
		}
		want++
	}
}

func TestDoneIdempotent(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	done, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done(nil)
	done(nil) // second call must be a no-op
	if st := g.Stats(); st.Active != 0 || st.Completed != 1 {
		t.Fatalf("double done corrupted counters: %+v", st)
	}
}

// TestAdmissionSoak is the -race soak: many goroutines hammer a small
// governor with mixed outcomes (success, budget kill, cancellation while
// queued), asserting active never exceeds the limit and every counter
// reconciles once the storm passes.
func TestAdmissionSoak(t *testing.T) {
	const limit = 4
	g := New(Config{MaxConcurrent: limit, MaxQueue: 16, QueueTimeout: 50 * time.Millisecond})

	var running, peakSeen atomic.Int64
	var wg sync.WaitGroup
	workers := 32
	perWorker := 50
	if testing.Short() {
		workers, perWorker = 8, 10
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(10) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				done, err := g.Admit(ctx)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					var re *AdmissionRejectedError
					if !errors.As(err, &re) {
						t.Errorf("untyped rejection: %v", err)
					}
					continue
				}
				n := running.Add(1)
				for {
					p := peakSeen.Load()
					if n <= p || peakSeen.CompareAndSwap(p, n) {
						break
					}
				}
				if n > limit {
					t.Errorf("active %d exceeds limit %d", n, limit)
				}
				time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				running.Add(-1)
				switch rng.Intn(3) {
				case 0:
					done(nil)
				case 1:
					done(exhaustedErr{})
				default:
					done(fmt.Errorf("ordinary failure"))
				}
			}
		}(w)
	}
	wg.Wait()

	st := g.Stats()
	if st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("leaked occupancy after soak: %+v", st)
	}
	if st.Admitted != st.Completed+st.Killed {
		t.Fatalf("counter invariant broken after soak: %+v", st)
	}
	if st.Admitted+st.Rejected != int64(workers*perWorker) {
		t.Fatalf("admitted(%d)+rejected(%d) != %d requests", st.Admitted, st.Rejected, workers*perWorker)
	}
	if got := peakSeen.Load(); got > limit {
		t.Fatalf("observed peak %d exceeds limit %d", got, limit)
	}
	if st.Peak > limit {
		t.Fatalf("recorded peak %d exceeds limit %d", st.Peak, limit)
	}
	if st.Killed == 0 || st.Completed == 0 {
		t.Fatalf("soak did not exercise both outcomes: %+v", st)
	}
}

// BenchmarkAdmissionThroughput measures the per-query admission cost with
// uncontended slots — the overhead every governed query pays.
func BenchmarkAdmissionThroughput(b *testing.B) {
	g := New(Config{MaxConcurrent: 64, MaxQueue: 64})
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			done, err := g.Admit(ctx)
			if err != nil {
				b.Fatal(err)
			}
			done(nil)
		}
	})
}
