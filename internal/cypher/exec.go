package cypher

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// Stats counts the side effects and work of one execution.
type Stats struct {
	NodesCreated  int
	EdgesCreated  int
	NodesDeleted  int
	EdgesDeleted  int
	PropertiesSet int
	LabelsAdded   int
	RowsExamined  int
}

// ClauseTiming is the wall-clock cost of one executed clause.
type ClauseTiming struct {
	Clause   string
	Duration time.Duration
}

// ExecStats instruments one execution of a query: how much of the graph
// the matcher touched, which fast paths fired, and where the time went.
type ExecStats struct {
	// PlanCacheHit is true when Run served the parse from the plan cache.
	PlanCacheHit bool
	// CountFastPath is true when the single-aggregate fast path executed
	// the query without materializing binding rows.
	CountFastPath bool
	// RowsScanned counts candidate nodes and edges examined while
	// matching patterns.
	RowsScanned int
	// IndexSeeks counts node anchors served by the label+property equality
	// index instead of a label scan; IndexRows is how many candidates those
	// seeks produced (the scan work the index avoided re-filtering).
	IndexSeeks int
	IndexRows  int
	// RangeSeeks counts node anchors served by the ordered property index
	// (inequality / prefix WHERE conjuncts); RangeRows is how many
	// candidates those seeks produced.
	RangeSeeks int
	RangeRows  int
	// EdgeSeeks counts anchors derived from the ordered edge-property index
	// (a relationship-pattern constraint narrowing the endpoint set);
	// EdgeRows is how many candidate nodes those seeks produced.
	EdgeSeeks int
	EdgeRows  int
	// Seeks details every index seek taken, in execution order: the chosen
	// bounds plus estimated vs. actual candidate rows.
	Seeks []SeekInfo
	// Streamed is true when the query ran on the streaming fast path
	// (session.go / stream.go): result rows were emitted to the cursor
	// incrementally and never materialized in Result.Rows.
	Streamed bool
	// Sharded is true when at least one MATCH ran on the morsel-driven
	// worker pool; ShardWorkers is the configured pool size, Morsels how
	// many morsels the last sharded clause's anchor scan was cut into,
	// MorselSize the cut size used, and ShardRows the rows each morsel
	// produced, in tag (candidate) order.
	Sharded      bool
	ShardWorkers int
	Morsels      int
	MorselSize   int
	ShardRows    []int
	// Reordered is true when cost-based planning changed part order or
	// orientation; PartOrder lists the chosen execution order (original
	// pattern indices) and PartEst the anchor cardinality estimates, both
	// for the last planned multi-part MATCH.
	Reordered bool
	PartOrder []int
	PartEst   []float64
	// Clauses records per-clause wall-clock timings in execution order.
	Clauses []ClauseTiming
}

// SeekInfo describes one index seek the matcher took for an anchor scan.
type SeekInfo struct {
	Var    string // pattern variable the seek anchored ("" for anonymous)
	Label  string // node label, or edge type(s) joined with "|" when Edge
	Key    string // property key seeked
	Bounds string // chosen bounds, e.g. "= 30", ">= 30 AND < 100"
	Edge   bool   // anchor derived from the edge-property index
	Est    int    // estimated candidate rows (index count probe)
	Rows   int    // candidate rows actually enumerated
}

// String renders the seek in Explain-plan style.
func (s SeekInfo) String() string {
	kind := "NodeRangeSeek"
	switch {
	case s.Edge:
		kind = "EdgeIndexSeek"
	case strings.HasPrefix(s.Bounds, "= "): // plain equality
		kind = "NodeIndexSeek"
	}
	return fmt.Sprintf("%s(%s:%s.%s %s) est=%d rows=%d", kind, s.Var, s.Label, s.Key, s.Bounds, s.Est, s.Rows)
}

// String renders the stats as a short multi-line report.
func (s ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan cache hit: %v\n", s.PlanCacheHit)
	fmt.Fprintf(&b, "count fast path: %v\n", s.CountFastPath)
	if s.Streamed {
		fmt.Fprintf(&b, "streamed: true\n")
	}
	fmt.Fprintf(&b, "rows scanned: %d\n", s.RowsScanned)
	fmt.Fprintf(&b, "index seeks: %d (%d candidate(s))\n", s.IndexSeeks, s.IndexRows)
	if s.RangeSeeks > 0 {
		fmt.Fprintf(&b, "range seeks: %d (%d candidate(s))\n", s.RangeSeeks, s.RangeRows)
	}
	if s.EdgeSeeks > 0 {
		fmt.Fprintf(&b, "edge seeks: %d (%d candidate(s))\n", s.EdgeSeeks, s.EdgeRows)
	}
	for _, sk := range s.Seeks {
		fmt.Fprintf(&b, "  %s\n", sk)
	}
	if s.Sharded {
		fmt.Fprintf(&b, "shards: %d worker(s), %d morsel(s) of <=%d, rows per morsel %v\n",
			s.ShardWorkers, s.Morsels, s.MorselSize, s.ShardRows)
	}
	if len(s.PartOrder) > 0 {
		fmt.Fprintf(&b, "part order: %v est %v reordered=%v\n", s.PartOrder, s.PartEst, s.Reordered)
	}
	for _, ct := range s.Clauses {
		fmt.Fprintf(&b, "  %-14s %s\n", ct.Clause, ct.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// Result is the outcome of executing a query.
type Result struct {
	Columns []string
	Rows    [][]Datum
	Stats   Stats
	Exec    ExecStats
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// Column returns the index of the named column, or -1.
func (r *Result) Column(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the scalar value at (row, named column); null when absent.
func (r *Result) Value(row int, col string) graph.Value {
	ci := r.Column(col)
	if ci < 0 || row < 0 || row >= len(r.Rows) {
		return graph.Null
	}
	return r.Rows[row][ci].Scalar()
}

// Int returns the integer at (row, col) or 0. It is lenient — a missing
// column, out-of-range row, NULL or non-numeric value all coerce to 0 —
// which suits display-only callers; correctness-critical callers (metric
// scoring) must use IntErr instead.
func (r *Result) Int(row int, col string) int64 {
	n, err := r.IntErr(row, col)
	if err != nil {
		return 0
	}
	return n
}

// IntErr returns the integer at (row, col), or an error when the column is
// absent, the row is out of range, or the value is NULL or non-numeric.
func (r *Result) IntErr(row int, col string) (int64, error) {
	ci := r.Column(col)
	if ci < 0 {
		return 0, execErrf("result has no column %q (columns: %s)", col, strings.Join(r.Columns, ", "))
	}
	if row < 0 || row >= len(r.Rows) {
		return 0, execErrf("result row %d out of range (%d row(s))", row, len(r.Rows))
	}
	v := r.Rows[row][ci].Scalar()
	switch v.Kind() {
	case graph.KindInt:
		return v.Int(), nil
	case graph.KindFloat:
		return int64(v.Float()), nil
	case graph.KindNull:
		return 0, execErrf("result column %q is NULL, not a count", col)
	default:
		return 0, execErrf("result column %q holds a %s, not a count", col, v.Kind())
	}
}

// FirstInt returns the integer in the first row of the named column (or the
// first column when name is ""), defaulting to 0. Convenient for COUNT
// queries.
func (r *Result) FirstInt(col string) int64 {
	if len(r.Rows) == 0 {
		return 0
	}
	if col == "" {
		if len(r.Columns) == 0 {
			return 0
		}
		col = r.Columns[0]
	}
	return r.Int(0, col)
}

// planCacheLimit is the default bound on cached parses. The cache evicts
// least-recently-used entries beyond the cap, so long-lived services whose
// query sets drift (best-effort mining servers, REPLs) shed stale plans
// instead of pinning the first 4096 texts forever.
const planCacheLimit = 4096

// PlanCacheStats reports the executor's prepared-query cache counters.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Cap       int
}

// planEntry is one cached parse plus its LRU-list position.
type planEntry struct {
	q    *Query
	elem *list.Element // Value is the cache key (query text)
}

// Executor runs parsed queries against a graph. It is safe for concurrent
// use: the plan cache is internally synchronized and each execution builds
// its own evaluation state.
type Executor struct {
	g *graph.Graph

	// noPushdown / noCountFast disable the respective fast paths; they
	// exist for A/B benchmarking and plan debugging. noReorder disables
	// cost-based part ordering (parts then run exactly as written), and
	// shardWorkers >= 1 routes eligible MATCH clauses through the
	// anchor-partitioned worker pool (see shard.go); both also back the
	// differential oracle's reference configurations.
	noPushdown      bool
	noCountFast     bool
	noReorder       bool
	noRangePushdown bool
	shardWorkers    int
	morselSize      int  // anchor candidates per morsel; 0 = defaultMorselSize
	snapshotPin     bool // read-only queries run on a pinned epoch snapshot

	// Resource governor configuration (see governor.go): per-query row /
	// memory / deadline budgets, and an optional admission controller
	// gating execution. All zero by default — ungoverned.
	maxRows       int
	memBudget     int64
	queryDeadline time.Duration
	admission     Admission

	// txMu serializes explicit transactions (session.go): an open
	// Session transaction holds it exclusively, and auto-commit mutating
	// queries take it shared, so a transaction's captured write set is
	// exactly its own writes. Read-only queries never touch it.
	txMu sync.RWMutex

	planMu    sync.Mutex
	plans     map[string]*planEntry
	planLRU   *list.List // front = most recently used
	planCap   int        // 0 means planCacheLimit
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewExecutor returns an executor bound to a graph, configured by the
// given functional options (see options.go for the full set).
func NewExecutor(g *graph.Graph, opts ...Option) *Executor {
	ex := &Executor{g: g}
	for _, opt := range opts {
		opt(ex)
	}
	return ex
}

// SetIndexPushdown toggles the label+property index pushdown (on by
// default). Disabling it forces plain label-bucket scans.
//
// Deprecated: pass WithIndexPushdown to NewExecutor instead.
func (ex *Executor) SetIndexPushdown(on bool) { WithIndexPushdown(on)(ex) }

// SetRangePushdown toggles the ordered-index range pushdown (on by
// default).
//
// Deprecated: pass WithRangePushdown to NewExecutor instead.
func (ex *Executor) SetRangePushdown(on bool) { WithRangePushdown(on)(ex) }

// SetCountFastPath toggles the single-aggregate fast path (on by default).
//
// Deprecated: pass WithCountFastPath to NewExecutor instead.
func (ex *Executor) SetCountFastPath(on bool) { WithCountFastPath(on)(ex) }

// SetReorder toggles cost-based pattern-part ordering (on by default).
// Disabling it pins the written part order and orientation, which also pins
// the serial row order — the differential oracle's reference mode.
//
// Deprecated: pass WithReorder to NewExecutor instead.
func (ex *Executor) SetReorder(on bool) { WithReorder(on)(ex) }

// SetShardWorkers configures sharded MATCH execution; see WithShardWorkers.
//
// Deprecated: pass WithShardWorkers to NewExecutor instead.
func (ex *Executor) SetShardWorkers(n int) { WithShardWorkers(n)(ex) }

// ShardWorkerCount reports the configured shard pool size (0 = serial).
func (ex *Executor) ShardWorkerCount() int { return ex.shardWorkers }

// MorselSize reports the effective morsel size for sharded scans (the
// configured WithMorselSize value, or the default when unset).
func (ex *Executor) MorselSize() int { return ex.morselCap() }

// SetPlanCacheCap bounds the plan cache to n entries, evicting
// least-recently-used plans beyond the cap immediately. n <= 0 restores
// the default cap.
//
// Deprecated: pass WithPlanCacheCap to NewExecutor instead.
func (ex *Executor) SetPlanCacheCap(n int) { ex.setPlanCacheCap(n) }

func (ex *Executor) setPlanCacheCap(n int) {
	ex.planMu.Lock()
	defer ex.planMu.Unlock()
	ex.planCap = n
	for len(ex.plans) > ex.planCapLocked() {
		ex.evictOldestLocked()
	}
}

// planCapLocked returns the effective cache cap; planMu must be held.
func (ex *Executor) planCapLocked() int {
	if ex.planCap > 0 {
		return ex.planCap
	}
	return planCacheLimit
}

// evictOldestLocked drops the least-recently-used plan; planMu must be
// held and the cache must be non-empty.
func (ex *Executor) evictOldestLocked() {
	oldest := ex.planLRU.Back()
	if oldest == nil {
		return
	}
	ex.planLRU.Remove(oldest)
	delete(ex.plans, oldest.Value.(string))
	ex.evictions.Add(1)
}

// PlanCacheStats returns the plan cache's hit/miss/eviction counters and
// size.
func (ex *Executor) PlanCacheStats() PlanCacheStats {
	ex.planMu.Lock()
	n, cap := len(ex.plans), ex.planCapLocked()
	ex.planMu.Unlock()
	return PlanCacheStats{
		Hits:      ex.hits.Load(),
		Misses:    ex.misses.Load(),
		Evictions: ex.evictions.Load(),
		Entries:   n,
		Cap:       cap,
	}
}

// plan returns the parsed query for src, consulting the LRU plan cache.
// The returned Query is shared and read-only; execution never mutates the
// AST. (The lock is a plain mutex because every hit promotes its entry;
// the critical section is two map/list operations, noise next to query
// execution.)
func (ex *Executor) plan(src string) (q *Query, hit bool, err error) {
	ex.planMu.Lock()
	if e, ok := ex.plans[src]; ok {
		ex.planLRU.MoveToFront(e.elem)
		ex.planMu.Unlock()
		ex.hits.Add(1)
		return e.q, true, nil
	}
	ex.planMu.Unlock()

	// Parse outside the lock; two goroutines racing on the same new text
	// duplicate the parse, which is harmless.
	q, err = Parse(src)
	if err != nil {
		return nil, false, err
	}
	ex.misses.Add(1)
	ex.planMu.Lock()
	if ex.plans == nil {
		ex.plans = make(map[string]*planEntry)
		ex.planLRU = list.New()
	}
	if e, ok := ex.plans[src]; ok {
		// Lost the insert race: adopt the cached plan.
		ex.planLRU.MoveToFront(e.elem)
		q = e.q
	} else {
		ex.plans[src] = &planEntry{q: q, elem: ex.planLRU.PushFront(src)}
		for len(ex.plans) > ex.planCapLocked() {
			ex.evictOldestLocked()
		}
	}
	ex.planMu.Unlock()
	return q, false, nil
}

// Run parses and executes a query string. Parses are served from the plan
// cache when the same query text was run before on this executor.
func (ex *Executor) Run(src string, params map[string]graph.Value) (*Result, error) {
	return ex.RunCtx(context.Background(), src, params)
}

// RunCtx is Run with cancellation: execution checks cctx between clauses
// and periodically inside pattern-matching scans (including sharded
// ones), returning cctx.Err() promptly once the context is done.
//
// RunCtx is the materializing shim over the Session/Cursor API
// (session.go): it executes the same path a Session's materialized run
// takes and returns the fully-collected Result. Callers that want
// incremental row delivery, explicit transactions, or per-session state
// should open a Session instead.
//
// On execution error the returned *Result is non-nil and carries the
// execution stats accumulated up to the failure (rows scanned, seeks,
// shard/morsel metadata), so profiling still works for failed queries;
// its Rows are meaningless and callers must check err first.
func (ex *Executor) RunCtx(cctx context.Context, src string, params map[string]graph.Value) (*Result, error) {
	q, hit, err := ex.plan(src)
	if err != nil {
		return nil, err
	}
	res, err := ex.ExecuteCtx(cctx, q, params)
	if res != nil {
		res.Exec.PlanCacheHit = hit
	}
	return res, err
}

// Execute runs a parsed query. The query is treated as read-only, so one
// parsed Query may be executed concurrently.
func (ex *Executor) Execute(q *Query, params map[string]graph.Value) (*Result, error) {
	return ex.ExecuteCtx(context.Background(), q, params)
}

// ExecuteCtx is Execute with cancellation; see RunCtx.
//
// When the executor carries an admission controller (WithAdmission), the
// query first acquires a slot — a full queue or queue timeout rejects it
// with the controller's typed error before it touches the graph. When it
// carries resource budgets (WithMaxRows, WithMemoryBudget,
// WithQueryDeadline), exceeding one kills the query with a typed
// *ResourceExhaustedError carrying the partial ExecStats. A panic anywhere
// in evaluation — serial or inside a morsel worker — is recovered into a
// *PanicError instead of crashing the process.
func (ex *Executor) ExecuteCtx(cctx context.Context, q *Query, params map[string]graph.Value) (res *Result, err error) {
	if ex.admission != nil {
		done, aerr := ex.admission.Admit(cctx)
		if aerr != nil {
			return nil, aerr
		}
		defer func() { done(err) }()
	}
	return ex.executeProtected(cctx, q, params, nil)
}

// executeProtected runs a query under the panic-recovery and
// budget-stamping defers but outside admission: ExecuteCtx admits first,
// and a Session's streaming run admits synchronously at Run before handing
// execution to the cursor goroutine (see session.go).
func (ex *Executor) executeProtected(cctx context.Context, q *Query, params map[string]graph.Value, sink *streamSink) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = recoverToError(p)
		}
		finishExhausted(err, res)
	}()
	return ex.executeGoverned(cctx, q, params, sink)
}

// executeGoverned is the body of ExecuteCtx, after admission and under
// its panic-recovery and budget-stamping defers. When sink is non-nil and
// the query matches the streaming plan, result rows are emitted to the
// sink incrementally instead of materializing in res.Rows (see stream.go);
// otherwise the query materializes as usual and the caller drains res.Rows.
func (ex *Executor) executeGoverned(cctx context.Context, q *Query, params map[string]graph.Value, sink *streamSink) (*Result, error) {
	// Under WithSnapshotPin, a read-only query resolves the graph once to
	// the current epoch's frozen snapshot: the whole scan — serial, sharded
	// or morsel-stolen — observes exactly one epoch even while writers
	// commit concurrently. Mutating queries stay on the live graph (their
	// writes must publish, and execSet/execDelete need read-your-writes).
	eg := ex.g
	if ex.snapshotPin && !QueryMutates(q) {
		eg = ex.g.Snapshot()
	}
	m := &matcher{g: eg, pushdown: !ex.noPushdown, bud: ex.newBudget()}
	if cctx != nil && cctx != context.Background() {
		m.cctx = cctx
	}
	ctx := newEvalCtx(eg, params, m)
	m.ctx = ctx

	res := &Result{}
	m.exec = &res.Exec

	if sink != nil && ex.shardWorkers == 0 {
		if mc, rc, ok := streamFastPlan(q); ok {
			start := time.Now()
			err := ex.execMatchStream(ctx, m, mc, rc, res, sink)
			res.Exec.Clauses = append(res.Exec.Clauses,
				ClauseTiming{Clause: "MatchStream", Duration: time.Since(start)})
			return res, err
		}
	}

	if !ex.noCountFast {
		if mc, item, ok := countFastPlan(q); ok {
			res.Exec.CountFastPath = true
			start := time.Now()
			err := ex.execMatchAggregate(ctx, m, mc, item, res)
			res.Exec.Clauses = append(res.Exec.Clauses,
				ClauseTiming{Clause: "MatchAggregate", Duration: time.Since(start)})
			if err != nil {
				return res, err
			}
			return res, nil
		}
	}

	rows := []Row{{}}
	var returned bool

	for i, clause := range q.Clauses {
		if returned {
			return res, execErrf("RETURN must be the final clause")
		}
		if m.cctx != nil {
			if err := m.cctx.Err(); err != nil {
				return res, err
			}
		}
		if err := m.bud.checkDeadline(); err != nil {
			return res, err
		}
		var err error
		start := time.Now()
		switch cl := clause.(type) {
		case *MatchClause:
			rows, err = ex.execMatch(ctx, m, cl, rows, &res.Stats)
		case *WithClause:
			rows, err = ex.execWith(ctx, cl, rows)
		case *ReturnClause:
			err = ex.execReturn(ctx, cl, rows, res)
			returned = true
		case *UnwindClause:
			rows, err = ex.execUnwind(ctx, cl, rows)
		case *CreateClause:
			rows, err = ex.execCreate(ctx, cl, rows, &res.Stats)
		case *SetClause:
			rows, err = ex.execSet(ctx, cl, rows, &res.Stats)
		case *DeleteClause:
			rows, err = ex.execDelete(ctx, cl, rows, &res.Stats)
		default:
			err = execErrf("unsupported clause at position %d", i)
		}
		res.Exec.Clauses = append(res.Exec.Clauses,
			ClauseTiming{Clause: clauseName(clause), Duration: time.Since(start)})
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

func clauseName(c Clause) string {
	switch cl := c.(type) {
	case *MatchClause:
		if cl.Optional {
			return "OptionalMatch"
		}
		return "Match"
	case *WithClause:
		return "With"
	case *ReturnClause:
		return "Return"
	case *UnwindClause:
		return "Unwind"
	case *CreateClause:
		return "Create"
	case *SetClause:
		return "Set"
	case *DeleteClause:
		if cl.Detach {
			return "DetachDelete"
		}
		return "Delete"
	default:
		return fmt.Sprintf("%T", c)
	}
}

// countFastPlan recognizes the scoring workload's canonical shape — a
// single non-optional MATCH followed by RETURN of exactly one bare
// aggregate (`MATCH ... [WHERE ...] RETURN count(*) AS n`) — which can be
// executed by streaming matches into one aggregate state without ever
// materializing binding rows.
func countFastPlan(q *Query) (*MatchClause, *ReturnItem, bool) {
	if len(q.Clauses) != 2 {
		return nil, nil, false
	}
	mc, ok := q.Clauses[0].(*MatchClause)
	if !ok || mc.Optional {
		return nil, nil, false
	}
	rc, ok := q.Clauses[1].(*ReturnClause)
	if !ok {
		return nil, nil, false
	}
	p := &rc.Projection
	if p.Star || p.Distinct || len(p.OrderBy) > 0 || p.Skip != nil || p.Limit != nil || len(p.Items) != 1 {
		return nil, nil, false
	}
	fc, ok := p.Items[0].Expr.(*FuncCall)
	if !ok || !aggregateFuncs[fc.Name] {
		return nil, nil, false
	}
	return mc, p.Items[0], true
}

// execMatchAggregate is the count fast path: it streams pattern matches
// into a single aggregate state, skipping row materialization, grouping
// and projection. Its observable result is identical to the general path.
// With shard workers configured, the anchor scan is partitioned and the
// per-shard aggregate states are merged (shard.go).
func (ex *Executor) execMatchAggregate(ctx *evalCtx, m *matcher, mc *MatchClause, item *ReturnItem, res *Result) error {
	fc := item.Expr.(*FuncCall)
	m.ranges = ex.clauseRanges(mc.Where)
	plan := ex.planMatch(mc.Patterns, nil, m.ranges)
	recordPlan(m, plan)
	res.Stats.RowsExamined++

	if ex.shardWorkers >= 1 {
		st, err := ex.shardAggregate(ctx, m, plan, mc.Where, fc)
		if err != nil {
			return err
		}
		res.Columns = []string{item.Name()}
		res.Rows = append(res.Rows, []Datum{st.result()})
		return nil
	}

	st := newAggState(fc)
	err := m.matchAll(plan.parts, Row{}, func(r Row) error {
		if mc.Where != nil {
			t, err := ctx.evalBool(mc.Where, r)
			if err != nil {
				return err
			}
			if t != triTrue {
				return nil
			}
		}
		return st.add(ctx, r)
	})
	if err != nil {
		return err
	}
	res.Columns = []string{item.Name()}
	res.Rows = append(res.Rows, []Datum{st.result()})
	return nil
}

// ---------- MATCH ----------

// clauseRanges extracts the seekable WHERE intervals for one MATCH clause,
// or nil when range pushdown (or all pushdown) is disabled.
func (ex *Executor) clauseRanges(where Expr) whereRanges {
	if ex.noPushdown || ex.noRangePushdown {
		return nil
	}
	return extractRanges(where)
}

func (ex *Executor) execMatch(ctx *evalCtx, m *matcher, cl *MatchClause, in []Row, st *Stats) ([]Row, error) {
	newVars := patternVars(cl.Patterns)
	var bound map[string]bool
	if len(in) > 0 {
		bound = make(map[string]bool, len(in[0]))
		for v := range in[0] {
			bound[v] = true
		}
	}
	m.ranges = ex.clauseRanges(cl.Where)
	plan := ex.planMatch(cl.Patterns, bound, m.ranges)
	recordPlan(m, plan)

	if ex.shardWorkers >= 1 && len(in) == 1 && anchorUnbound(plan.parts, in[0]) {
		return ex.execMatchSharded(ctx, m, cl, plan, newVars, in[0], st)
	}

	var out []Row
	for _, row := range in {
		st.RowsExamined++
		matched := false
		err := m.matchAll(plan.parts, row, func(r Row) error {
			if cl.Where != nil {
				t, err := ctx.evalBool(cl.Where, r)
				if err != nil {
					return err
				}
				if t != triTrue {
					return nil
				}
			}
			matched = true
			if err := m.bud.chargeRow(r); err != nil {
				return err
			}
			out = append(out, r.clone())
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !matched && cl.Optional {
			r := row.clone()
			for _, v := range newVars {
				if _, bound := r[v]; !bound {
					r[v] = NullDatum
				}
			}
			if err := m.bud.chargeRow(r); err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// patternVars returns the variable names introduced by a pattern list, in
// first-appearance order.
func patternVars(parts []*PatternPart) []string {
	var names []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			names = append(names, v)
		}
	}
	for _, p := range parts {
		for i, n := range p.Nodes {
			add(n.Var)
			if i < len(p.Rels) {
				add(p.Rels[i].Var)
			}
		}
	}
	return names
}

// matcher performs backtracking pattern matching against the graph.
type matcher struct {
	g        *graph.Graph
	ctx      *evalCtx
	exec     *ExecStats      // optional instrumentation sink
	pushdown bool            // consult the label+property index for constant props
	ranges   whereRanges     // seekable WHERE intervals for the current clause
	cctx     context.Context // optional cancellation; nil means never cancelled
	bud      *budget         // optional resource budget; nil means ungoverned
	polls    uint64          // pollCtx amortization counter
}

// pollCtx reports the matcher's cancellation state and query deadline,
// actually consulting the context (and clock) only once every 256 calls
// so it can sit inside hot candidate loops without measurable cost.
func (m *matcher) pollCtx() error {
	if m.cctx == nil && m.bud == nil {
		return nil
	}
	m.polls++
	if m.polls&0xff != 0 {
		return nil
	}
	if m.cctx != nil {
		if err := m.cctx.Err(); err != nil {
			return err
		}
	}
	return m.bud.checkDeadline()
}

// matchAll matches every pattern part in sequence (sharing one
// relationship-uniqueness scope, Cypher's per-MATCH semantics) and invokes
// cb for each complete assignment.
//
// Bindings are made in-place on the working row and undone on backtrack, so
// cb receives a transient view: it must clone the row if it retains it.
func (m *matcher) matchAll(parts []*PatternPart, row Row, cb func(Row) error) error {
	used := map[graph.ID]bool{}
	var rec func(i int, r Row) error
	rec = func(i int, r Row) error {
		if i == len(parts) {
			return cb(r)
		}
		return m.matchPart(parts[i], r, used, func(r2 Row) error {
			return rec(i+1, r2)
		})
	}
	return rec(0, row)
}

// exists reports whether the pattern has at least one match from the given
// row (used by pattern predicates in WHERE). The clause's range constraints
// are suspended for the probe: a predicate-local variable could share a
// name with a WHERE-constrained one, and narrowing the probe's anchors
// could then change whether the pattern exists.
func (m *matcher) exists(part *PatternPart, row Row) (bool, error) {
	saved := m.ranges
	m.ranges = nil
	defer func() { m.ranges = saved }()
	found := false
	err := m.matchPart(part, row, map[graph.ID]bool{}, func(Row) error {
		found = true
		return errStopMatching
	})
	if err != nil && !errors.Is(err, errStopMatching) {
		return false, err
	}
	return found, nil
}

// errStopMatching is a sentinel used to abort matching early.
var errStopMatching = &ExecError{Msg: "stop"}

// matchPart matches one path pattern, extending row; used tracks
// relationship uniqueness within the clause.
func (m *matcher) matchPart(part *PatternPart, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	return m.bindNode(part, 0, row, used, cb)
}

func (m *matcher) bindNode(part *PatternPart, i int, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	np := part.Nodes[i]

	proceed := func(n *graph.Node, r Row) error {
		if i == len(part.Rels) {
			return cb(r)
		}
		return m.expandRel(part, i, n, r, used, cb)
	}

	// Bound variable: check constraints and continue.
	if np.Var != "" {
		if d, ok := row[np.Var]; ok {
			if d.Node == nil {
				if d.IsNull() {
					return nil // null from OPTIONAL MATCH never re-matches
				}
				return execErrf("variable `%s` is not a node", np.Var)
			}
			ok, err := m.nodeSatisfies(np, d.Node, row)
			if err != nil || !ok {
				return err
			}
			return proceed(d.Node, row)
		}
	}

	candidates := m.anchorCandidates(part)
	if m.exec != nil {
		m.exec.RowsScanned += len(candidates)
	}
	for _, n := range candidates {
		if err := m.pollCtx(); err != nil {
			return err
		}
		ok, err := m.nodeSatisfies(np, n, row)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if np.Var != "" {
			row[np.Var] = NodeDatum(n)
		}
		err = proceed(n, row)
		if np.Var != "" {
			delete(row, np.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// anchorCandidates enumerates the candidate nodes for the part's unbound
// anchor pattern. With pushdown on, it picks the narrowest index access
// available: a constant inline property equality on a labeled pattern
// seeks the label+property equality index, a seekable WHERE range on a
// labeled pattern seeks the ordered index, and for an unlabeled anchor a
// property-constrained first relationship seeks the ordered edge index and
// derives the endpoint set. Otherwise it scans the smallest label bucket,
// else all nodes. Every candidate is re-checked by nodeSatisfies and the
// WHERE filter, so a seek only narrows, never decides; and every seek
// returns a subsequence of the order the fallback scan would enumerate
// (label-bucket insertion order when labeled, ascending ID otherwise), so
// row order is identical with and without pushdown. Index seek stats are
// recorded; the caller accounts the RowsScanned for the slice it walks.
func (m *matcher) anchorCandidates(part *PatternPart) []*graph.Node {
	np := part.Nodes[0]
	var candidates []*graph.Node
	var info SeekInfo
	const (
		srcScan = iota
		srcEq
		srcRange
	)
	src := srcScan
	if m.pushdown && len(np.Labels) > 0 && len(np.Props) > 0 {
		keys := make([]string, 0, len(np.Props))
		for k := range np.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic seek choice across runs
		for _, l := range np.Labels {
			for _, k := range keys {
				lit, ok := np.Props[k].(*Literal)
				if !ok {
					continue // non-constant constraint: cannot index
				}
				ns := m.g.LabelPropNodes(l, k, lit.Value)
				if src == srcScan || len(ns) < len(candidates) {
					candidates = ns
					info = SeekInfo{Var: np.Var, Label: l, Key: k,
						Bounds: "= " + litDisplay(lit.Value), Est: len(ns), Rows: len(ns)}
				}
				src = srcEq
			}
		}
	}
	if m.pushdown && len(np.Labels) > 0 {
		if byKey := m.ranges.forVar(np.Var); len(byKey) > 0 {
			keys := make([]string, 0, len(byKey))
			for k := range byKey {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic seek choice across runs
			bestLabel, bestKey, bestCount := "", "", -1
			for _, l := range np.Labels {
				for _, k := range keys {
					r := byKey[k]
					c := m.g.LabelPropRangeCount(l, k, r.lo, r.hi)
					if bestCount == -1 || c < bestCount {
						bestLabel, bestKey, bestCount = l, k, c
					}
				}
			}
			if bestCount >= 0 && (src == srcScan || bestCount < len(candidates)) {
				r := byKey[bestKey]
				candidates = m.g.LabelPropRange(bestLabel, bestKey, r.lo, r.hi)
				info = SeekInfo{Var: np.Var, Label: bestLabel, Key: bestKey,
					Bounds: r.String(), Est: bestCount, Rows: len(candidates)}
				src = srcRange
			}
		}
	}
	switch src {
	case srcEq:
		if m.exec != nil {
			m.exec.IndexSeeks++
			m.exec.IndexRows += len(candidates)
			m.recordSeek(info)
		}
	case srcRange:
		if m.exec != nil {
			m.exec.RangeSeeks++
			m.exec.RangeRows += len(candidates)
			m.recordSeek(info)
		}
	default:
		if len(np.Labels) > 0 {
			best := -1
			for _, l := range np.Labels {
				ns := m.g.LabelNodes(l)
				if best == -1 || len(ns) < best {
					best = len(ns)
					candidates = ns
				}
			}
		} else if ns, ok := m.edgeAnchorCandidates(part); ok {
			candidates = ns
		} else {
			candidates = m.g.AllNodes()
		}
	}
	return candidates
}

// edgeAnchorCandidates tries to anchor an unlabeled pattern from its first
// relationship: when the rel is single-hop, typed, and constrained by
// constant inline properties or seekable WHERE ranges on its variable, the
// ordered edge index enumerates the matching edges and the near endpoints
// become the candidate set — deduplicated and sorted ascending by ID, a
// subsequence of the AllNodes order the full scan would use. It declines
// (ok=false) when the derived set would not beat the full scan.
func (m *matcher) edgeAnchorCandidates(part *PatternPart) ([]*graph.Node, bool) {
	if !m.pushdown || len(part.Rels) == 0 {
		return nil, false
	}
	rel := part.Rels[0]
	if rel.IsVarLength() || len(rel.Types) == 0 {
		return nil, false
	}
	eq := constRelProps(rel)
	rr := m.ranges.forVar(rel.Var)
	if len(eq) == 0 && len(rr) == 0 {
		return nil, false
	}
	// Deterministic choice: per type, the constrained key with the smallest
	// posting wins (equality keys first, then range keys, each sorted).
	type pick struct {
		key    string
		lo, hi graph.Bound
		bounds string
		count  int
	}
	eqKeys := make([]string, 0, len(eq))
	for k := range eq {
		eqKeys = append(eqKeys, k)
	}
	sort.Strings(eqKeys)
	rrKeys := make([]string, 0, len(rr))
	for k := range rr {
		rrKeys = append(rrKeys, k)
	}
	sort.Strings(rrKeys)

	total := 0
	picks := make([]pick, 0, len(rel.Types))
	for _, t := range rel.Types {
		var best *pick
		for _, k := range eqKeys {
			b := graph.ValueBound(eq[k], true)
			c := m.g.TypePropRangeCount(t, k, b, b)
			if best == nil || c < best.count {
				best = &pick{key: k, lo: b, hi: b, bounds: "= " + litDisplay(eq[k]), count: c}
			}
		}
		for _, k := range rrKeys {
			r := rr[k]
			c := m.g.TypePropRangeCount(t, k, r.lo, r.hi)
			if best == nil || c < best.count {
				best = &pick{key: k, lo: r.lo, hi: r.hi, bounds: r.String(), count: c}
			}
		}
		picks = append(picks, *best)
		total += best.count
	}
	if total >= m.g.NodeCount() {
		return nil, false // a full node scan is no worse
	}

	var nodes []*graph.Node
	seen := map[graph.ID]bool{}
	add := func(id graph.ID) {
		if seen[id] {
			return
		}
		seen[id] = true
		if n := m.g.Node(id); n != nil {
			nodes = append(nodes, n)
		}
	}
	est := total
	if rel.Direction == DirBoth {
		est *= 2
	}
	for i, t := range rel.Types {
		p := picks[i]
		for _, e := range m.g.TypePropRange(t, p.key, p.lo, p.hi) {
			// The anchor is the near endpoint of the (possibly planner-
			// flipped) relationship; an undirected rel admits both.
			switch rel.Direction {
			case DirOut:
				add(e.From)
			case DirIn:
				add(e.To)
			default:
				add(e.From)
				add(e.To)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	if m.exec != nil {
		seekKeys := make([]string, 0, len(picks))
		for _, p := range picks {
			if len(seekKeys) == 0 || seekKeys[len(seekKeys)-1] != p.key {
				seekKeys = append(seekKeys, p.key)
			}
		}
		m.exec.EdgeSeeks++
		m.exec.EdgeRows += len(nodes)
		m.recordSeek(SeekInfo{Var: rel.Var, Label: strings.Join(rel.Types, "|"),
			Key: strings.Join(seekKeys, "|"), Bounds: picks[0].bounds, Edge: true,
			Est: est, Rows: len(nodes)})
	}
	return nodes, true
}

// recordSeek appends a seek descriptor to the stats, collapsing repeat
// enumerations of the same seek (later parts re-anchor once per outer row).
func (m *matcher) recordSeek(info SeekInfo) {
	for _, s := range m.exec.Seeks {
		if s.Var == info.Var && s.Label == info.Label && s.Key == info.Key &&
			s.Bounds == info.Bounds && s.Edge == info.Edge {
			return
		}
	}
	m.exec.Seeks = append(m.exec.Seeks, info)
}

func (m *matcher) nodeSatisfies(np *NodePattern, n *graph.Node, row Row) (bool, error) {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	for k, e := range np.Props {
		want, err := m.ctx.eval(e, row)
		if err != nil {
			return false, err
		}
		if !n.Prop(k).Equal(want.Scalar()) {
			return false, nil
		}
	}
	return true, nil
}

func (m *matcher) edgeSatisfies(rp *RelPattern, e *graph.Edge, row Row) (bool, error) {
	if len(rp.Types) > 0 {
		okType := false
		for _, t := range rp.Types {
			if e.HasLabel(t) {
				okType = true
				break
			}
		}
		if !okType {
			return false, nil
		}
	}
	for k, ex := range rp.Props {
		want, err := m.ctx.eval(ex, row)
		if err != nil {
			return false, err
		}
		if !e.Prop(k).Equal(want.Scalar()) {
			return false, nil
		}
	}
	return true, nil
}

// expandRel matches relationship i of the part from node n, then binds node
// i+1.
func (m *matcher) expandRel(part *PatternPart, i int, n *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	rp := part.Rels[i]
	if rp.IsVarLength() {
		return m.expandVarLength(part, i, n, row, used, cb)
	}

	// Pre-bound relationship variable: verify incidence.
	if rp.Var != "" {
		if d, ok := row[rp.Var]; ok {
			if d.IsNull() {
				return nil
			}
			if d.Edge == nil {
				return execErrf("variable `%s` is not a relationship", rp.Var)
			}
			return m.followEdge(part, i, n, d.Edge, row, used, cb, true)
		}
	}

	tryEdges := func(es []*graph.Edge) error {
		if m.exec != nil {
			m.exec.RowsScanned += len(es)
		}
		for _, e := range es {
			if used[e.ID] {
				continue
			}
			if err := m.followEdge(part, i, n, e, row, used, cb, false); err != nil {
				return err
			}
		}
		return nil
	}

	switch rp.Direction {
	case DirOut:
		return tryEdges(m.g.OutEdgePtrs(n.ID))
	case DirIn:
		return tryEdges(m.g.InEdgePtrs(n.ID))
	default:
		if err := tryEdges(m.g.OutEdgePtrs(n.ID)); err != nil {
			return err
		}
		// Self-loops appear in both lists; skip the duplicate pass for them.
		in := m.g.InEdgePtrs(n.ID)
		filtered := in[:0] // InEdgePtrs hands us an owned slice
		for _, e := range in {
			if e.From == e.To {
				continue
			}
			filtered = append(filtered, e)
		}
		return tryEdges(filtered)
	}
}

// followEdge checks edge e against rel i from node n and recurses into node
// i+1. preBound marks a relationship variable bound by an earlier clause.
func (m *matcher) followEdge(part *PatternPart, i int, n *graph.Node, e *graph.Edge, row Row, used map[graph.ID]bool, cb func(Row) error, preBound bool) error {
	rp := part.Rels[i]
	ok, err := m.edgeSatisfies(rp, e, row)
	if err != nil || !ok {
		return err
	}
	// Determine the far endpoint honoring direction.
	var far graph.ID
	switch rp.Direction {
	case DirOut:
		if e.From != n.ID {
			return nil
		}
		far = e.To
	case DirIn:
		if e.To != n.ID {
			return nil
		}
		far = e.From
	default:
		switch n.ID {
		case e.From:
			far = e.To
		case e.To:
			far = e.From
		default:
			return nil
		}
	}
	if used[e.ID] {
		return nil
	}
	if rp.Var != "" && !preBound {
		row[rp.Var] = EdgeDatum(e)
		defer delete(row, rp.Var)
	}
	used[e.ID] = true
	defer delete(used, e.ID)

	// Bind the far node: constrain against pattern i+1.
	np := part.Nodes[i+1]
	farNode := m.g.Node(far)
	if farNode == nil {
		return nil
	}
	if np.Var != "" {
		if d, bound := row[np.Var]; bound {
			if d.Node == nil || d.Node.ID != far {
				return nil
			}
			ok, err := m.nodeSatisfies(np, farNode, row)
			if err != nil || !ok {
				return err
			}
			return m.afterNode(part, i+1, farNode, row, used, cb)
		}
	}
	ok, err = m.nodeSatisfies(np, farNode, row)
	if err != nil || !ok {
		return err
	}
	if np.Var != "" {
		row[np.Var] = NodeDatum(farNode)
		defer delete(row, np.Var)
	}
	return m.afterNode(part, i+1, farNode, row, used, cb)
}

func (m *matcher) afterNode(part *PatternPart, i int, n *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	if i == len(part.Rels) {
		return cb(row)
	}
	return m.expandRel(part, i, n, row, used, cb)
}

// expandVarLength walks paths of length MinHops..MaxHops for rel i. The
// relationship variable (when named) binds to the list of traversed edge
// IDs.
func (m *matcher) expandVarLength(part *PatternPart, i int, start *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	rp := part.Rels[i]
	np := part.Nodes[i+1]

	emit := func(at *graph.Node, path []graph.ID, r Row) error {
		ok, err := m.nodeSatisfies(np, at, r)
		if err != nil || !ok {
			return err
		}
		if np.Var != "" {
			if d, bound := r[np.Var]; bound {
				if d.Node == nil || d.Node.ID != at.ID {
					return nil
				}
			} else {
				r[np.Var] = NodeDatum(at)
				defer delete(r, np.Var)
			}
		}
		if rp.Var != "" {
			ids := make([]graph.Value, len(path))
			for k, id := range path {
				ids[k] = graph.NewInt(int64(id))
			}
			// The path variable may shadow an outer binding; restore it.
			prev, had := r[rp.Var]
			r[rp.Var] = ValDatum(graph.NewList(ids...))
			defer func() {
				if had {
					r[rp.Var] = prev
				} else {
					delete(r, rp.Var)
				}
			}()
		}
		return m.afterNode(part, i+1, at, r, used, cb)
	}

	var walk func(at *graph.Node, depth int, path []graph.ID) error
	walk = func(at *graph.Node, depth int, path []graph.ID) error {
		if depth >= rp.MinHops {
			if err := emit(at, path, row); err != nil {
				return err
			}
		}
		if rp.MaxHops >= 0 && depth == rp.MaxHops {
			return nil
		}
		step := func(es []*graph.Edge, wantOut bool) error {
			if m.exec != nil {
				m.exec.RowsScanned += len(es)
			}
			for _, e := range es {
				if used[e.ID] {
					continue
				}
				ok, err := m.edgeSatisfies(rp, e, row)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				var far graph.ID
				if wantOut {
					far = e.To
				} else {
					far = e.From
				}
				farNode := m.g.Node(far)
				if farNode == nil {
					continue
				}
				used[e.ID] = true
				err = walk(farNode, depth+1, append(path, e.ID))
				delete(used, e.ID)
				if err != nil {
					return err
				}
			}
			return nil
		}
		switch rp.Direction {
		case DirOut:
			return step(m.g.OutEdgePtrs(at.ID), true)
		case DirIn:
			return step(m.g.InEdgePtrs(at.ID), false)
		default:
			if err := step(m.g.OutEdgePtrs(at.ID), true); err != nil {
				return err
			}
			return step(m.g.InEdgePtrs(at.ID), false)
		}
	}
	return walk(start, 0, nil)
}

// ---------- WITH / RETURN ----------

func (ex *Executor) execWith(ctx *evalCtx, cl *WithClause, in []Row) ([]Row, error) {
	outRows, _, err := ex.project(ctx, &cl.Projection, in)
	if err != nil {
		return nil, err
	}
	if cl.Where == nil {
		return outRows, nil
	}
	var filtered []Row
	for _, r := range outRows {
		t, err := ctx.evalBool(cl.Where, r)
		if err != nil {
			return nil, err
		}
		if t == triTrue {
			filtered = append(filtered, r)
		}
	}
	return filtered, nil
}

func (ex *Executor) execReturn(ctx *evalCtx, cl *ReturnClause, in []Row, res *Result) error {
	outRows, cols, err := ex.project(ctx, &cl.Projection, in)
	if err != nil {
		return err
	}
	res.Columns = cols
	for _, r := range outRows {
		vals := make([]Datum, len(cols))
		for i, c := range cols {
			vals[i] = r[c]
		}
		res.Rows = append(res.Rows, vals)
	}
	return nil
}

// project evaluates a projection over input rows, handling star expansion,
// aggregation grouping, DISTINCT, ORDER BY, SKIP and LIMIT. It returns the
// output rows (bound by output column name) and the column order.
func (ex *Executor) project(ctx *evalCtx, p *Projection, in []Row) ([]Row, []string, error) {
	items := p.Items
	if p.Star {
		var starItems []*ReturnItem
		var scope []string
		if len(in) > 0 {
			scope = sortedVarNames(in[0])
		}
		for _, v := range scope {
			starItems = append(starItems, &ReturnItem{Expr: &Variable{Name: v}, Alias: v})
		}
		items = append(starItems, items...)
	}
	if len(items) == 0 {
		return nil, nil, execErrf("projection requires at least one item")
	}

	cols := make([]string, len(items))
	colSeen := map[string]bool{}
	for i, it := range items {
		name := it.Name()
		for colSeen[name] {
			name += "_"
		}
		colSeen[name] = true
		cols[i] = name
	}

	hasAgg := false
	for _, it := range items {
		if ContainsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var outRows []Row
	var err error
	if hasAgg {
		outRows, err = ex.projectGrouped(ctx, items, cols, in)
	} else {
		outRows, err = ex.projectSimple(ctx, items, cols, in)
	}
	if err != nil {
		return nil, nil, err
	}

	if p.Distinct {
		seen := map[string]bool{}
		var dd []Row
		for _, r := range outRows {
			var b strings.Builder
			for _, c := range cols {
				b.WriteString(r[c].Hashable())
				b.WriteByte('|')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				dd = append(dd, r)
			}
		}
		outRows = dd
	}

	if len(p.OrderBy) > 0 {
		if err := ex.sortRows(ctx, p.OrderBy, cols, outRows); err != nil {
			return nil, nil, err
		}
	}

	if p.Skip != nil {
		n, err := ex.evalPosInt(ctx, p.Skip, "SKIP")
		if err != nil {
			return nil, nil, err
		}
		if n >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[n:]
		}
	}
	if p.Limit != nil {
		n, err := ex.evalPosInt(ctx, p.Limit, "LIMIT")
		if err != nil {
			return nil, nil, err
		}
		if n < len(outRows) {
			outRows = outRows[:n]
		}
	}
	return outRows, cols, nil
}

func (ex *Executor) evalPosInt(ctx *evalCtx, e Expr, what string) (int, error) {
	d, err := ctx.eval(e, Row{})
	if err != nil {
		return 0, err
	}
	v := d.Scalar()
	if v.Kind() != graph.KindInt || v.Int() < 0 {
		return 0, execErrf("%s requires a non-negative integer", what)
	}
	return int(v.Int()), nil
}

func (ex *Executor) projectSimple(ctx *evalCtx, items []*ReturnItem, cols []string, in []Row) ([]Row, error) {
	out := make([]Row, 0, len(in))
	for _, r := range in {
		nr := make(Row, len(items))
		for i, it := range items {
			d, err := ctx.eval(it.Expr, r)
			if err != nil {
				return nil, err
			}
			nr[cols[i]] = d
		}
		if err := ctx.bud().chargeRow(nr); err != nil {
			return nil, err
		}
		out = append(out, nr)
	}
	return out, nil
}

func (ex *Executor) projectGrouped(ctx *evalCtx, items []*ReturnItem, cols []string, in []Row) ([]Row, error) {
	// Grouping keys: items with no aggregate inside.
	type keyItem struct {
		idx int
	}
	var keyItems []keyItem
	var aggCalls []*FuncCall
	for i, it := range items {
		if ContainsAggregate(it.Expr) {
			collectAggregates(it.Expr, &aggCalls)
		} else {
			keyItems = append(keyItems, keyItem{idx: i})
		}
	}

	type group struct {
		keyVals map[int]Datum // item index -> value
		aggs    []*aggState
		first   Row
	}
	groups := map[string]*group{}
	var order []string

	for _, r := range in {
		var kb strings.Builder
		keyVals := make(map[int]Datum, len(keyItems))
		for _, ki := range keyItems {
			d, err := ctx.eval(items[ki.idx].Expr, r)
			if err != nil {
				return nil, err
			}
			keyVals[ki.idx] = d
			kb.WriteString(d.Hashable())
			kb.WriteByte('|')
		}
		k := kb.String()
		grp := groups[k]
		if grp == nil {
			grp = &group{keyVals: keyVals, first: r}
			for _, fc := range aggCalls {
				grp.aggs = append(grp.aggs, newAggState(fc))
			}
			groups[k] = grp
			order = append(order, k)
		}
		for _, st := range grp.aggs {
			if err := st.add(ctx, r); err != nil {
				return nil, err
			}
		}
	}

	// With no grouping keys and no input rows, aggregates still produce one
	// row (count(*) over nothing is 0).
	if len(in) == 0 && len(keyItems) == 0 {
		grp := &group{keyVals: map[int]Datum{}, first: Row{}}
		for _, fc := range aggCalls {
			grp.aggs = append(grp.aggs, newAggState(fc))
		}
		groups["∅"] = grp
		order = append(order, "∅")
	}

	out := make([]Row, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		aggResults := make(map[*FuncCall]Datum, len(grp.aggs))
		for _, st := range grp.aggs {
			aggResults[st.fn] = st.result()
		}
		ctx.aggResults = aggResults
		nr := make(Row, len(items))
		for i, it := range items {
			if d, ok := grp.keyVals[i]; ok {
				nr[cols[i]] = d
				continue
			}
			d, err := ctx.eval(it.Expr, grp.first)
			if err != nil {
				ctx.aggResults = nil
				return nil, err
			}
			nr[cols[i]] = d
		}
		ctx.aggResults = nil
		out = append(out, nr)
	}
	return out, nil
}

func (ex *Executor) sortRows(ctx *evalCtx, orderBy []*SortItem, cols []string, rows []Row) error {
	type keyed struct {
		row  Row
		keys []string
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		keys := make([]string, len(orderBy))
		for j, si := range orderBy {
			// ORDER BY sees output bindings; a bare identifier matching a
			// column refers to it, otherwise the expression is evaluated on
			// the output row.
			d, err := ctx.eval(si.Expr, r)
			if err != nil {
				return err
			}
			keys[j] = d.Scalar().SortKey()
		}
		ks[i] = keyed{row: r, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range orderBy {
			ka, kb := ks[a].keys[j], ks[b].keys[j]
			if ka == kb {
				continue
			}
			if orderBy[j].Desc {
				return ka > kb
			}
			return ka < kb
		}
		return false
	})
	for i := range rows {
		rows[i] = ks[i].row
	}
	return nil
}

// ---------- UNWIND ----------

func (ex *Executor) execUnwind(ctx *evalCtx, cl *UnwindClause, in []Row) ([]Row, error) {
	var out []Row
	for _, r := range in {
		d, err := ctx.eval(cl.Expr, r)
		if err != nil {
			return nil, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			continue
		case graph.KindList:
			for _, e := range v.List() {
				nr := r.clone()
				nr[cl.Alias] = ValDatum(e)
				if err := ctx.bud().chargeRow(nr); err != nil {
					return nil, err
				}
				out = append(out, nr)
			}
		default:
			nr := r.clone()
			nr[cl.Alias] = ValDatum(v)
			if err := ctx.bud().chargeRow(nr); err != nil {
				return nil, err
			}
			out = append(out, nr)
		}
	}
	return out, nil
}

// ---------- CREATE / SET / DELETE ----------

func (ex *Executor) execCreate(ctx *evalCtx, cl *CreateClause, in []Row, st *Stats) ([]Row, error) {
	var out []Row
	for _, row := range in {
		r := row.clone()
		for _, part := range cl.Patterns {
			if err := ex.createPart(ctx, part, r, st); err != nil {
				return nil, err
			}
		}
		if err := ctx.bud().chargeRow(r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (ex *Executor) createPart(ctx *evalCtx, part *PatternPart, r Row, st *Stats) error {
	getOrCreateNode := func(np *NodePattern) (*graph.Node, error) {
		if np.Var != "" {
			if d, ok := r[np.Var]; ok {
				if d.Node == nil {
					return nil, execErrf("CREATE: variable `%s` is not a node", np.Var)
				}
				if len(np.Labels) > 0 || len(np.Props) > 0 {
					return nil, execErrf("CREATE: cannot add labels or properties to bound variable `%s`", np.Var)
				}
				return d.Node, nil
			}
		}
		props := graph.Props{}
		for k, e := range np.Props {
			d, err := ctx.eval(e, r)
			if err != nil {
				return nil, err
			}
			if !d.IsNull() {
				props[k] = d.Scalar()
			}
		}
		n := ex.g.AddNode(np.Labels, props)
		st.NodesCreated++
		if np.Var != "" {
			r[np.Var] = NodeDatum(n)
		}
		return n, nil
	}

	prev, err := getOrCreateNode(part.Nodes[0])
	if err != nil {
		return err
	}
	for i, rp := range part.Rels {
		if rp.Direction == DirBoth {
			return execErrf("CREATE requires a directed relationship")
		}
		if len(rp.Types) != 1 {
			return execErrf("CREATE requires exactly one relationship type")
		}
		if rp.IsVarLength() {
			return execErrf("CREATE cannot use variable-length relationships")
		}
		next, err := getOrCreateNode(part.Nodes[i+1])
		if err != nil {
			return err
		}
		props := graph.Props{}
		for k, e := range rp.Props {
			d, err := ctx.eval(e, r)
			if err != nil {
				return err
			}
			if !d.IsNull() {
				props[k] = d.Scalar()
			}
		}
		from, to := prev, next
		if rp.Direction == DirIn {
			from, to = next, prev
		}
		edge, err := ex.g.AddEdge(from.ID, to.ID, rp.Types, props)
		if err != nil {
			return err
		}
		st.EdgesCreated++
		if rp.Var != "" {
			r[rp.Var] = EdgeDatum(edge)
		}
		prev = next
	}
	return nil
}

// refreshGraphBindings rebinds every node/edge datum in the row to the
// struct currently published by the graph. SET's copy-on-write mutators
// replace the published structs, so a row bound before a write would
// otherwise keep reading the superseded version.
func refreshGraphBindings(g *graph.Graph, r Row) {
	for k, d := range r {
		switch {
		case d.Node != nil:
			if fresh := g.Node(d.Node.ID); fresh != nil && fresh != d.Node {
				r[k] = NodeDatum(fresh)
			}
		case d.Edge != nil:
			if fresh := g.Edge(d.Edge.ID); fresh != nil && fresh != d.Edge {
				r[k] = EdgeDatum(fresh)
			}
		}
	}
}

func (ex *Executor) execSet(ctx *evalCtx, cl *SetClause, in []Row, st *Stats) ([]Row, error) {
	for _, r := range in {
		for _, item := range cl.Items {
			// Several rows may bind the same entity; an earlier row's write
			// superseded the struct this row captured during MATCH.
			refreshGraphBindings(ex.g, r)
			d, ok := r[item.Target]
			if !ok {
				return nil, execErrf("SET: variable `%s` not defined", item.Target)
			}
			if d.IsNull() {
				continue
			}
			if len(item.Labels) > 0 {
				if d.Node == nil {
					return nil, execErrf("SET: labels require a node")
				}
				if err := ex.g.AddNodeLabels(d.Node.ID, item.Labels...); err != nil {
					return nil, err
				}
				st.LabelsAdded += len(item.Labels)
				continue
			}
			vd, err := ctx.eval(item.Value, r)
			if err != nil {
				return nil, err
			}
			switch {
			case d.Node != nil:
				if err := ex.g.SetNodeProp(d.Node.ID, item.Key, vd.Scalar()); err != nil {
					return nil, err
				}
			case d.Edge != nil:
				if err := ex.g.SetEdgeProp(d.Edge.ID, item.Key, vd.Scalar()); err != nil {
					return nil, err
				}
			default:
				return nil, execErrf("SET: `%s` is not a node or relationship", item.Target)
			}
			st.PropertiesSet++
		}
	}
	// Rebind every row to the final post-write structs so RETURN (and any
	// later clause) observes all writes, matching pre-COW semantics.
	for _, r := range in {
		refreshGraphBindings(ex.g, r)
	}
	return in, nil
}

func (ex *Executor) execDelete(ctx *evalCtx, cl *DeleteClause, in []Row, st *Stats) ([]Row, error) {
	delNodes := map[graph.ID]bool{}
	delEdges := map[graph.ID]bool{}
	for _, r := range in {
		for _, e := range cl.Exprs {
			d, err := ctx.eval(e, r)
			if err != nil {
				return nil, err
			}
			switch {
			case d.Node != nil:
				delNodes[d.Node.ID] = true
			case d.Edge != nil:
				delEdges[d.Edge.ID] = true
			case d.IsNull():
				// deleting null is a no-op
			default:
				return nil, execErrf("DELETE requires nodes or relationships")
			}
		}
	}
	for id := range delEdges {
		ex.g.RemoveEdge(id)
		st.EdgesDeleted++
	}
	for id := range delNodes {
		deg := ex.g.OutDegree(id) + ex.g.InDegree(id)
		if deg > 0 && !cl.Detach {
			return nil, execErrf("cannot DELETE node %d with relationships; use DETACH DELETE", id)
		}
		st.EdgesDeleted += deg
		ex.g.RemoveNode(id)
		st.NodesDeleted++
	}
	return in, nil
}
