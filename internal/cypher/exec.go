package cypher

import (
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// Stats counts the side effects and work of one execution.
type Stats struct {
	NodesCreated  int
	EdgesCreated  int
	NodesDeleted  int
	EdgesDeleted  int
	PropertiesSet int
	LabelsAdded   int
	RowsExamined  int
}

// Result is the outcome of executing a query.
type Result struct {
	Columns []string
	Rows    [][]Datum
	Stats   Stats
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// Column returns the index of the named column, or -1.
func (r *Result) Column(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the scalar value at (row, named column); null when absent.
func (r *Result) Value(row int, col string) graph.Value {
	ci := r.Column(col)
	if ci < 0 || row < 0 || row >= len(r.Rows) {
		return graph.Null
	}
	return r.Rows[row][ci].Scalar()
}

// Int returns the integer at (row, col) or 0.
func (r *Result) Int(row int, col string) int64 {
	v := r.Value(row, col)
	if v.Kind() == graph.KindInt {
		return v.Int()
	}
	if v.Kind() == graph.KindFloat {
		return int64(v.Float())
	}
	return 0
}

// FirstInt returns the integer in the first row of the named column (or the
// first column when name is ""), defaulting to 0. Convenient for COUNT
// queries.
func (r *Result) FirstInt(col string) int64 {
	if len(r.Rows) == 0 {
		return 0
	}
	if col == "" {
		if len(r.Columns) == 0 {
			return 0
		}
		col = r.Columns[0]
	}
	return r.Int(0, col)
}

// Executor runs parsed queries against a graph.
type Executor struct {
	g *graph.Graph
}

// NewExecutor returns an executor bound to a graph.
func NewExecutor(g *graph.Graph) *Executor { return &Executor{g: g} }

// Run parses and executes a query string.
func (ex *Executor) Run(src string, params map[string]graph.Value) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ex.Execute(q, params)
}

// Execute runs a parsed query.
func (ex *Executor) Execute(q *Query, params map[string]graph.Value) (*Result, error) {
	m := &matcher{g: ex.g}
	ctx := newEvalCtx(ex.g, params, m)
	m.ctx = ctx

	rows := []Row{{}}
	res := &Result{}
	var returned bool

	for i, clause := range q.Clauses {
		if returned {
			return nil, execErrf("RETURN must be the final clause")
		}
		var err error
		switch cl := clause.(type) {
		case *MatchClause:
			rows, err = ex.execMatch(ctx, m, cl, rows, &res.Stats)
		case *WithClause:
			rows, err = ex.execWith(ctx, cl, rows)
		case *ReturnClause:
			err = ex.execReturn(ctx, cl, rows, res)
			returned = true
		case *UnwindClause:
			rows, err = ex.execUnwind(ctx, cl, rows)
		case *CreateClause:
			rows, err = ex.execCreate(ctx, cl, rows, &res.Stats)
		case *SetClause:
			rows, err = ex.execSet(ctx, cl, rows, &res.Stats)
		case *DeleteClause:
			rows, err = ex.execDelete(ctx, cl, rows, &res.Stats)
		default:
			err = execErrf("unsupported clause at position %d", i)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ---------- MATCH ----------

func (ex *Executor) execMatch(ctx *evalCtx, m *matcher, cl *MatchClause, in []Row, st *Stats) ([]Row, error) {
	newVars := patternVars(cl.Patterns)
	var out []Row
	for _, row := range in {
		st.RowsExamined++
		matched := false
		err := m.matchAll(cl.Patterns, row, func(r Row) error {
			if cl.Where != nil {
				t, err := ctx.evalBool(cl.Where, r)
				if err != nil {
					return err
				}
				if t != triTrue {
					return nil
				}
			}
			matched = true
			out = append(out, r)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !matched && cl.Optional {
			r := row.clone()
			for _, v := range newVars {
				if _, bound := r[v]; !bound {
					r[v] = NullDatum
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// patternVars returns the variable names introduced by a pattern list, in
// first-appearance order.
func patternVars(parts []*PatternPart) []string {
	var names []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			names = append(names, v)
		}
	}
	for _, p := range parts {
		for i, n := range p.Nodes {
			add(n.Var)
			if i < len(p.Rels) {
				add(p.Rels[i].Var)
			}
		}
	}
	return names
}

// matcher performs backtracking pattern matching against the graph.
type matcher struct {
	g   *graph.Graph
	ctx *evalCtx
}

// matchAll matches every pattern part in sequence (sharing one
// relationship-uniqueness scope, Cypher's per-MATCH semantics) and invokes
// cb for each complete assignment.
func (m *matcher) matchAll(parts []*PatternPart, row Row, cb func(Row) error) error {
	used := map[graph.ID]bool{}
	var rec func(i int, r Row) error
	rec = func(i int, r Row) error {
		if i == len(parts) {
			return cb(r.clone())
		}
		return m.matchPart(parts[i], r, used, func(r2 Row) error {
			return rec(i+1, r2)
		})
	}
	return rec(0, row)
}

// exists reports whether the pattern has at least one match from the given
// row (used by pattern predicates in WHERE).
func (m *matcher) exists(part *PatternPart, row Row) (bool, error) {
	found := false
	err := m.matchPart(part, row, map[graph.ID]bool{}, func(Row) error {
		found = true
		return errStopMatching
	})
	if err != nil && err != errStopMatching {
		return false, err
	}
	return found, nil
}

// errStopMatching is a sentinel used to abort matching early.
var errStopMatching = &ExecError{Msg: "stop"}

// matchPart matches one path pattern, extending row; used tracks
// relationship uniqueness within the clause.
func (m *matcher) matchPart(part *PatternPart, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	return m.bindNode(part, 0, row, used, cb)
}

func (m *matcher) bindNode(part *PatternPart, i int, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	np := part.Nodes[i]

	proceed := func(n *graph.Node, r Row) error {
		if i == len(part.Rels) {
			return cb(r)
		}
		return m.expandRel(part, i, n, r, used, cb)
	}

	// Bound variable: check constraints and continue.
	if np.Var != "" {
		if d, ok := row[np.Var]; ok {
			if d.Node == nil {
				if d.IsNull() {
					return nil // null from OPTIONAL MATCH never re-matches
				}
				return execErrf("variable `%s` is not a node", np.Var)
			}
			ok, err := m.nodeSatisfies(np, d.Node, row)
			if err != nil || !ok {
				return err
			}
			return proceed(d.Node, row)
		}
	}

	// Unbound: enumerate candidates (smallest label index, else all nodes).
	var candidates []graph.ID
	if len(np.Labels) > 0 {
		best := -1
		for _, l := range np.Labels {
			ids := m.g.NodesWithLabel(l)
			if best == -1 || len(ids) < best {
				best = len(ids)
				candidates = ids
			}
		}
	} else {
		candidates = m.g.Nodes()
	}
	for _, id := range candidates {
		n := m.g.Node(id)
		if n == nil {
			continue
		}
		ok, err := m.nodeSatisfies(np, n, row)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		r := row
		if np.Var != "" {
			r = row.clone()
			r[np.Var] = NodeDatum(n)
		}
		if err := proceed(n, r); err != nil {
			return err
		}
	}
	return nil
}

func (m *matcher) nodeSatisfies(np *NodePattern, n *graph.Node, row Row) (bool, error) {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	for k, e := range np.Props {
		want, err := m.ctx.eval(e, row)
		if err != nil {
			return false, err
		}
		if !n.Prop(k).Equal(want.Scalar()) {
			return false, nil
		}
	}
	return true, nil
}

func (m *matcher) edgeSatisfies(rp *RelPattern, e *graph.Edge, row Row) (bool, error) {
	if len(rp.Types) > 0 {
		okType := false
		for _, t := range rp.Types {
			if e.HasLabel(t) {
				okType = true
				break
			}
		}
		if !okType {
			return false, nil
		}
	}
	for k, ex := range rp.Props {
		want, err := m.ctx.eval(ex, row)
		if err != nil {
			return false, err
		}
		if !e.Prop(k).Equal(want.Scalar()) {
			return false, nil
		}
	}
	return true, nil
}

// expandRel matches relationship i of the part from node n, then binds node
// i+1.
func (m *matcher) expandRel(part *PatternPart, i int, n *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	rp := part.Rels[i]
	if rp.IsVarLength() {
		return m.expandVarLength(part, i, n, row, used, cb)
	}

	// Pre-bound relationship variable: verify incidence.
	if rp.Var != "" {
		if d, ok := row[rp.Var]; ok {
			if d.IsNull() {
				return nil
			}
			if d.Edge == nil {
				return execErrf("variable `%s` is not a relationship", rp.Var)
			}
			return m.followEdge(part, i, n, d.Edge, row, used, cb, true)
		}
	}

	tryEdges := func(ids []graph.ID) error {
		for _, eid := range ids {
			if used[eid] {
				continue
			}
			e := m.g.Edge(eid)
			if e == nil {
				continue
			}
			if err := m.followEdge(part, i, n, e, row, used, cb, false); err != nil {
				return err
			}
		}
		return nil
	}

	switch rp.Direction {
	case DirOut:
		return tryEdges(m.g.OutEdges(n.ID))
	case DirIn:
		return tryEdges(m.g.InEdges(n.ID))
	default:
		if err := tryEdges(m.g.OutEdges(n.ID)); err != nil {
			return err
		}
		// Self-loops appear in both lists; skip the duplicate pass for them.
		in := m.g.InEdges(n.ID)
		filtered := in[:0:0]
		for _, eid := range in {
			if e := m.g.Edge(eid); e != nil && e.From == e.To {
				continue
			}
			filtered = append(filtered, eid)
		}
		return tryEdges(filtered)
	}
}

// followEdge checks edge e against rel i from node n and recurses into node
// i+1. preBound marks a relationship variable bound by an earlier clause.
func (m *matcher) followEdge(part *PatternPart, i int, n *graph.Node, e *graph.Edge, row Row, used map[graph.ID]bool, cb func(Row) error, preBound bool) error {
	rp := part.Rels[i]
	ok, err := m.edgeSatisfies(rp, e, row)
	if err != nil || !ok {
		return err
	}
	// Determine the far endpoint honoring direction.
	var far graph.ID
	switch rp.Direction {
	case DirOut:
		if e.From != n.ID {
			return nil
		}
		far = e.To
	case DirIn:
		if e.To != n.ID {
			return nil
		}
		far = e.From
	default:
		switch n.ID {
		case e.From:
			far = e.To
		case e.To:
			far = e.From
		default:
			return nil
		}
	}
	if used[e.ID] {
		return nil
	}
	r := row
	if rp.Var != "" && !preBound {
		r = row.clone()
		r[rp.Var] = EdgeDatum(e)
	}
	used[e.ID] = true
	defer delete(used, e.ID)

	// Bind the far node: constrain against pattern i+1.
	np := part.Nodes[i+1]
	farNode := m.g.Node(far)
	if farNode == nil {
		return nil
	}
	if np.Var != "" {
		if d, bound := r[np.Var]; bound {
			if d.Node == nil || d.Node.ID != far {
				return nil
			}
			ok, err := m.nodeSatisfies(np, farNode, r)
			if err != nil || !ok {
				return err
			}
			return m.afterNode(part, i+1, farNode, r, used, cb)
		}
	}
	ok, err = m.nodeSatisfies(np, farNode, r)
	if err != nil || !ok {
		return err
	}
	if np.Var != "" {
		r = r.clone()
		r[np.Var] = NodeDatum(farNode)
	}
	return m.afterNode(part, i+1, farNode, r, used, cb)
}

func (m *matcher) afterNode(part *PatternPart, i int, n *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	if i == len(part.Rels) {
		return cb(row)
	}
	return m.expandRel(part, i, n, row, used, cb)
}

// expandVarLength walks paths of length MinHops..MaxHops for rel i. The
// relationship variable (when named) binds to the list of traversed edge
// IDs.
func (m *matcher) expandVarLength(part *PatternPart, i int, start *graph.Node, row Row, used map[graph.ID]bool, cb func(Row) error) error {
	rp := part.Rels[i]
	np := part.Nodes[i+1]

	emit := func(at *graph.Node, path []graph.ID, r Row) error {
		ok, err := m.nodeSatisfies(np, at, r)
		if err != nil || !ok {
			return err
		}
		r2 := r
		if np.Var != "" {
			if d, bound := r[np.Var]; bound {
				if d.Node == nil || d.Node.ID != at.ID {
					return nil
				}
			} else {
				r2 = r.clone()
				r2[np.Var] = NodeDatum(at)
			}
		}
		if rp.Var != "" {
			ids := make([]graph.Value, len(path))
			for k, id := range path {
				ids[k] = graph.NewInt(int64(id))
			}
			r2 = r2.clone()
			r2[rp.Var] = ValDatum(graph.NewList(ids...))
		}
		return m.afterNode(part, i+1, at, r2, used, cb)
	}

	var walk func(at *graph.Node, depth int, path []graph.ID) error
	walk = func(at *graph.Node, depth int, path []graph.ID) error {
		if depth >= rp.MinHops {
			if err := emit(at, path, row); err != nil {
				return err
			}
		}
		if rp.MaxHops >= 0 && depth == rp.MaxHops {
			return nil
		}
		step := func(ids []graph.ID, wantOut bool) error {
			for _, eid := range ids {
				if used[eid] {
					continue
				}
				e := m.g.Edge(eid)
				if e == nil {
					continue
				}
				ok, err := m.edgeSatisfies(rp, e, row)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				var far graph.ID
				if wantOut {
					far = e.To
				} else {
					far = e.From
				}
				farNode := m.g.Node(far)
				if farNode == nil {
					continue
				}
				used[eid] = true
				err = walk(farNode, depth+1, append(path, eid))
				delete(used, eid)
				if err != nil {
					return err
				}
			}
			return nil
		}
		switch rp.Direction {
		case DirOut:
			return step(m.g.OutEdges(at.ID), true)
		case DirIn:
			return step(m.g.InEdges(at.ID), false)
		default:
			if err := step(m.g.OutEdges(at.ID), true); err != nil {
				return err
			}
			return step(m.g.InEdges(at.ID), false)
		}
	}
	return walk(start, 0, nil)
}

// ---------- WITH / RETURN ----------

func (ex *Executor) execWith(ctx *evalCtx, cl *WithClause, in []Row) ([]Row, error) {
	outRows, _, err := ex.project(ctx, &cl.Projection, in)
	if err != nil {
		return nil, err
	}
	if cl.Where == nil {
		return outRows, nil
	}
	var filtered []Row
	for _, r := range outRows {
		t, err := ctx.evalBool(cl.Where, r)
		if err != nil {
			return nil, err
		}
		if t == triTrue {
			filtered = append(filtered, r)
		}
	}
	return filtered, nil
}

func (ex *Executor) execReturn(ctx *evalCtx, cl *ReturnClause, in []Row, res *Result) error {
	outRows, cols, err := ex.project(ctx, &cl.Projection, in)
	if err != nil {
		return err
	}
	res.Columns = cols
	for _, r := range outRows {
		vals := make([]Datum, len(cols))
		for i, c := range cols {
			vals[i] = r[c]
		}
		res.Rows = append(res.Rows, vals)
	}
	return nil
}

// project evaluates a projection over input rows, handling star expansion,
// aggregation grouping, DISTINCT, ORDER BY, SKIP and LIMIT. It returns the
// output rows (bound by output column name) and the column order.
func (ex *Executor) project(ctx *evalCtx, p *Projection, in []Row) ([]Row, []string, error) {
	items := p.Items
	if p.Star {
		var starItems []*ReturnItem
		var scope []string
		if len(in) > 0 {
			scope = sortedVarNames(in[0])
		}
		for _, v := range scope {
			starItems = append(starItems, &ReturnItem{Expr: &Variable{Name: v}, Alias: v})
		}
		items = append(starItems, items...)
	}
	if len(items) == 0 {
		return nil, nil, execErrf("projection requires at least one item")
	}

	cols := make([]string, len(items))
	colSeen := map[string]bool{}
	for i, it := range items {
		name := it.Name()
		for colSeen[name] {
			name += "_"
		}
		colSeen[name] = true
		cols[i] = name
	}

	hasAgg := false
	for _, it := range items {
		if ContainsAggregate(it.Expr) {
			hasAgg = true
			break
		}
	}

	var outRows []Row
	var err error
	if hasAgg {
		outRows, err = ex.projectGrouped(ctx, items, cols, in)
	} else {
		outRows, err = ex.projectSimple(ctx, items, cols, in)
	}
	if err != nil {
		return nil, nil, err
	}

	if p.Distinct {
		seen := map[string]bool{}
		var dd []Row
		for _, r := range outRows {
			var b strings.Builder
			for _, c := range cols {
				b.WriteString(r[c].Hashable())
				b.WriteByte('|')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				dd = append(dd, r)
			}
		}
		outRows = dd
	}

	if len(p.OrderBy) > 0 {
		if err := ex.sortRows(ctx, p.OrderBy, cols, outRows); err != nil {
			return nil, nil, err
		}
	}

	if p.Skip != nil {
		n, err := ex.evalPosInt(ctx, p.Skip, "SKIP")
		if err != nil {
			return nil, nil, err
		}
		if n >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[n:]
		}
	}
	if p.Limit != nil {
		n, err := ex.evalPosInt(ctx, p.Limit, "LIMIT")
		if err != nil {
			return nil, nil, err
		}
		if n < len(outRows) {
			outRows = outRows[:n]
		}
	}
	return outRows, cols, nil
}

func (ex *Executor) evalPosInt(ctx *evalCtx, e Expr, what string) (int, error) {
	d, err := ctx.eval(e, Row{})
	if err != nil {
		return 0, err
	}
	v := d.Scalar()
	if v.Kind() != graph.KindInt || v.Int() < 0 {
		return 0, execErrf("%s requires a non-negative integer", what)
	}
	return int(v.Int()), nil
}

func (ex *Executor) projectSimple(ctx *evalCtx, items []*ReturnItem, cols []string, in []Row) ([]Row, error) {
	out := make([]Row, 0, len(in))
	for _, r := range in {
		nr := make(Row, len(items))
		for i, it := range items {
			d, err := ctx.eval(it.Expr, r)
			if err != nil {
				return nil, err
			}
			nr[cols[i]] = d
		}
		out = append(out, nr)
	}
	return out, nil
}

func (ex *Executor) projectGrouped(ctx *evalCtx, items []*ReturnItem, cols []string, in []Row) ([]Row, error) {
	// Grouping keys: items with no aggregate inside.
	type keyItem struct {
		idx int
	}
	var keyItems []keyItem
	var aggCalls []*FuncCall
	for i, it := range items {
		if ContainsAggregate(it.Expr) {
			collectAggregates(it.Expr, &aggCalls)
		} else {
			keyItems = append(keyItems, keyItem{idx: i})
		}
	}

	type group struct {
		keyVals map[int]Datum // item index -> value
		aggs    []*aggState
		first   Row
	}
	groups := map[string]*group{}
	var order []string

	for _, r := range in {
		var kb strings.Builder
		keyVals := make(map[int]Datum, len(keyItems))
		for _, ki := range keyItems {
			d, err := ctx.eval(items[ki.idx].Expr, r)
			if err != nil {
				return nil, err
			}
			keyVals[ki.idx] = d
			kb.WriteString(d.Hashable())
			kb.WriteByte('|')
		}
		k := kb.String()
		grp := groups[k]
		if grp == nil {
			grp = &group{keyVals: keyVals, first: r}
			for _, fc := range aggCalls {
				grp.aggs = append(grp.aggs, newAggState(fc))
			}
			groups[k] = grp
			order = append(order, k)
		}
		for _, st := range grp.aggs {
			if err := st.add(ctx, r); err != nil {
				return nil, err
			}
		}
	}

	// With no grouping keys and no input rows, aggregates still produce one
	// row (count(*) over nothing is 0).
	if len(in) == 0 && len(keyItems) == 0 {
		grp := &group{keyVals: map[int]Datum{}, first: Row{}}
		for _, fc := range aggCalls {
			grp.aggs = append(grp.aggs, newAggState(fc))
		}
		groups["∅"] = grp
		order = append(order, "∅")
	}

	out := make([]Row, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		aggResults := make(map[*FuncCall]Datum, len(grp.aggs))
		for _, st := range grp.aggs {
			aggResults[st.fn] = st.result()
		}
		ctx.aggResults = aggResults
		nr := make(Row, len(items))
		for i, it := range items {
			if d, ok := grp.keyVals[i]; ok {
				nr[cols[i]] = d
				continue
			}
			d, err := ctx.eval(it.Expr, grp.first)
			if err != nil {
				ctx.aggResults = nil
				return nil, err
			}
			nr[cols[i]] = d
		}
		ctx.aggResults = nil
		out = append(out, nr)
	}
	return out, nil
}

func (ex *Executor) sortRows(ctx *evalCtx, orderBy []*SortItem, cols []string, rows []Row) error {
	type keyed struct {
		row  Row
		keys []string
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		keys := make([]string, len(orderBy))
		for j, si := range orderBy {
			// ORDER BY sees output bindings; a bare identifier matching a
			// column refers to it, otherwise the expression is evaluated on
			// the output row.
			d, err := ctx.eval(si.Expr, r)
			if err != nil {
				return err
			}
			keys[j] = d.Scalar().SortKey()
		}
		ks[i] = keyed{row: r, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j := range orderBy {
			ka, kb := ks[a].keys[j], ks[b].keys[j]
			if ka == kb {
				continue
			}
			if orderBy[j].Desc {
				return ka > kb
			}
			return ka < kb
		}
		return false
	})
	for i := range rows {
		rows[i] = ks[i].row
	}
	return nil
}

// ---------- UNWIND ----------

func (ex *Executor) execUnwind(ctx *evalCtx, cl *UnwindClause, in []Row) ([]Row, error) {
	var out []Row
	for _, r := range in {
		d, err := ctx.eval(cl.Expr, r)
		if err != nil {
			return nil, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			continue
		case graph.KindList:
			for _, e := range v.List() {
				nr := r.clone()
				nr[cl.Alias] = ValDatum(e)
				out = append(out, nr)
			}
		default:
			nr := r.clone()
			nr[cl.Alias] = ValDatum(v)
			out = append(out, nr)
		}
	}
	return out, nil
}

// ---------- CREATE / SET / DELETE ----------

func (ex *Executor) execCreate(ctx *evalCtx, cl *CreateClause, in []Row, st *Stats) ([]Row, error) {
	var out []Row
	for _, row := range in {
		r := row.clone()
		for _, part := range cl.Patterns {
			if err := ex.createPart(ctx, part, r, st); err != nil {
				return nil, err
			}
		}
		out = append(out, r)
	}
	return out, nil
}

func (ex *Executor) createPart(ctx *evalCtx, part *PatternPart, r Row, st *Stats) error {
	getOrCreateNode := func(np *NodePattern) (*graph.Node, error) {
		if np.Var != "" {
			if d, ok := r[np.Var]; ok {
				if d.Node == nil {
					return nil, execErrf("CREATE: variable `%s` is not a node", np.Var)
				}
				if len(np.Labels) > 0 || len(np.Props) > 0 {
					return nil, execErrf("CREATE: cannot add labels or properties to bound variable `%s`", np.Var)
				}
				return d.Node, nil
			}
		}
		props := graph.Props{}
		for k, e := range np.Props {
			d, err := ctx.eval(e, r)
			if err != nil {
				return nil, err
			}
			if !d.IsNull() {
				props[k] = d.Scalar()
			}
		}
		n := ex.g.AddNode(np.Labels, props)
		st.NodesCreated++
		if np.Var != "" {
			r[np.Var] = NodeDatum(n)
		}
		return n, nil
	}

	prev, err := getOrCreateNode(part.Nodes[0])
	if err != nil {
		return err
	}
	for i, rp := range part.Rels {
		if rp.Direction == DirBoth {
			return execErrf("CREATE requires a directed relationship")
		}
		if len(rp.Types) != 1 {
			return execErrf("CREATE requires exactly one relationship type")
		}
		if rp.IsVarLength() {
			return execErrf("CREATE cannot use variable-length relationships")
		}
		next, err := getOrCreateNode(part.Nodes[i+1])
		if err != nil {
			return err
		}
		props := graph.Props{}
		for k, e := range rp.Props {
			d, err := ctx.eval(e, r)
			if err != nil {
				return err
			}
			if !d.IsNull() {
				props[k] = d.Scalar()
			}
		}
		from, to := prev, next
		if rp.Direction == DirIn {
			from, to = next, prev
		}
		edge, err := ex.g.AddEdge(from.ID, to.ID, rp.Types, props)
		if err != nil {
			return err
		}
		st.EdgesCreated++
		if rp.Var != "" {
			r[rp.Var] = EdgeDatum(edge)
		}
		prev = next
	}
	return nil
}

func (ex *Executor) execSet(ctx *evalCtx, cl *SetClause, in []Row, st *Stats) ([]Row, error) {
	for _, r := range in {
		for _, item := range cl.Items {
			d, ok := r[item.Target]
			if !ok {
				return nil, execErrf("SET: variable `%s` not defined", item.Target)
			}
			if d.IsNull() {
				continue
			}
			if len(item.Labels) > 0 {
				if d.Node == nil {
					return nil, execErrf("SET: labels require a node")
				}
				if err := ex.g.AddNodeLabels(d.Node.ID, item.Labels...); err != nil {
					return nil, err
				}
				st.LabelsAdded += len(item.Labels)
				continue
			}
			vd, err := ctx.eval(item.Value, r)
			if err != nil {
				return nil, err
			}
			switch {
			case d.Node != nil:
				if err := ex.g.SetNodeProp(d.Node.ID, item.Key, vd.Scalar()); err != nil {
					return nil, err
				}
			case d.Edge != nil:
				if err := ex.g.SetEdgeProp(d.Edge.ID, item.Key, vd.Scalar()); err != nil {
					return nil, err
				}
			default:
				return nil, execErrf("SET: `%s` is not a node or relationship", item.Target)
			}
			st.PropertiesSet++
		}
	}
	return in, nil
}

func (ex *Executor) execDelete(ctx *evalCtx, cl *DeleteClause, in []Row, st *Stats) ([]Row, error) {
	delNodes := map[graph.ID]bool{}
	delEdges := map[graph.ID]bool{}
	for _, r := range in {
		for _, e := range cl.Exprs {
			d, err := ctx.eval(e, r)
			if err != nil {
				return nil, err
			}
			switch {
			case d.Node != nil:
				delNodes[d.Node.ID] = true
			case d.Edge != nil:
				delEdges[d.Edge.ID] = true
			case d.IsNull():
				// deleting null is a no-op
			default:
				return nil, execErrf("DELETE requires nodes or relationships")
			}
		}
	}
	for id := range delEdges {
		ex.g.RemoveEdge(id)
		st.EdgesDeleted++
	}
	for id := range delNodes {
		deg := ex.g.OutDegree(id) + ex.g.InDegree(id)
		if deg > 0 && !cl.Detach {
			return nil, execErrf("cannot DELETE node %d with relationships; use DETACH DELETE", id)
		}
		st.EdgesDeleted += deg
		ex.g.RemoveNode(id)
		st.NodesDeleted++
	}
	return in, nil
}
