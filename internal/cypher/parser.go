package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// Parse lexes and parses a Cypher statement.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Type != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(tt TokenType) bool {
	if p.peek().Type == tt {
		p.next()
		return true
	}
	return false
}

// acceptTok is accept returning the consumed token (for span capture).
func (p *parser) acceptTok(tt TokenType) (Token, bool) {
	if p.peek().Type == tt {
		return p.next(), true
	}
	return Token{}, false
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Type == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Type == TokKeyword && t.Text == kw
}

func (p *parser) expect(tt TokenType, what string) (Token, error) {
	t := p.peek()
	if t.Type != tt {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for {
		t := p.peek()
		if t.Type == TokEOF {
			break
		}
		if t.Type == TokSemi {
			p.next()
			continue
		}
		if t.Type != TokKeyword {
			return nil, p.errf("expected a clause keyword, found %s", t)
		}
		var (
			c   Clause
			err error
		)
		switch t.Text {
		case "MATCH", "OPTIONAL":
			c, err = p.parseMatch()
		case "WITH":
			c, err = p.parseWith()
		case "RETURN":
			c, err = p.parseReturn()
		case "UNWIND":
			c, err = p.parseUnwind()
		case "CREATE":
			c, err = p.parseCreate()
		case "SET":
			c, err = p.parseSet()
		case "DELETE", "DETACH":
			c, err = p.parseDelete()
		case "MERGE", "UNION":
			return nil, p.errf("%s is not supported by this Cypher subset", t.Text)
		default:
			return nil, p.errf("unexpected keyword %s", t.Text)
		}
		if err != nil {
			return nil, err
		}
		q.Clauses = append(q.Clauses, c)
		if _, isReturn := c.(*ReturnClause); isReturn {
			p.accept(TokSemi)
			if t := p.peek(); t.Type != TokEOF {
				return nil, p.errf("RETURN must be the final clause, found %s", t)
			}
		}
	}
	if len(q.Clauses) == 0 {
		return nil, &SyntaxError{Pos: 0, Msg: "empty query"}
	}
	return q, nil
}

func (p *parser) parseMatch() (*MatchClause, error) {
	m := &MatchClause{}
	if p.acceptKeyword("OPTIONAL") {
		m.Optional = true
	}
	if err := p.expectKeyword("MATCH"); err != nil {
		return nil, err
	}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		m.Patterns = append(m.Patterns, pat)
		if !p.accept(TokComma) {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		m.Where = w
	}
	return m, nil
}

func (p *parser) parsePattern() (*PatternPart, error) {
	part := &PatternPart{}
	n, err := p.parseNodePattern()
	if err != nil {
		return nil, err
	}
	part.Nodes = append(part.Nodes, n)
	for {
		t := p.peek()
		if t.Type != TokMinus && t.Type != TokLt {
			break
		}
		rel, err := p.parseRelPattern()
		if err != nil {
			return nil, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return nil, err
		}
		part.Rels = append(part.Rels, rel)
		part.Nodes = append(part.Nodes, n)
	}
	return part, nil
}

func (p *parser) parseNodePattern() (*NodePattern, error) {
	lparen, err := p.expect(TokLParen, "'(' opening a node pattern")
	if err != nil {
		return nil, err
	}
	n := &NodePattern{}
	if t := p.peek(); t.Type == TokIdent {
		n.Var = t.Text
		p.next()
	}
	for p.peek().Type == TokColon {
		p.next()
		lbl, err := p.parseLabelName()
		if err != nil {
			return nil, err
		}
		n.Labels = append(n.Labels, lbl.Name())
		n.LabelSpans = append(n.LabelSpans, lbl.Span())
	}
	if p.peek().Type == TokLBrace {
		props, err := p.parseMapLiteral()
		if err != nil {
			return nil, err
		}
		n.Props = props
	}
	rparen, err := p.expect(TokRParen, "')' closing a node pattern")
	if err != nil {
		return nil, err
	}
	n.Span = Span{Start: lparen.Pos, End: rparen.End}
	return n, nil
}

// parseLabelName accepts identifiers and (to be forgiving about LLM output)
// keywords used as labels, returning the consumed token so callers can
// record both the name and its span.
func (p *parser) parseLabelName() (Token, error) {
	t := p.peek()
	if t.Type == TokIdent || t.Type == TokKeyword {
		p.next()
		return t, nil
	}
	return Token{}, p.errf("expected a label name, found %s", t)
}

func (p *parser) parseRelPattern() (*RelPattern, error) {
	r := &RelPattern{MinHops: 1, MaxHops: 1}
	start := p.peek().Pos
	if p.accept(TokLt) {
		r.Direction = DirIn
	}
	if _, err := p.expect(TokMinus, "'-' in a relationship pattern"); err != nil {
		return nil, err
	}
	if p.accept(TokLBracket) {
		if t := p.peek(); t.Type == TokIdent {
			r.Var = t.Text
			p.next()
		}
		if p.accept(TokColon) {
			for {
				typ, err := p.parseLabelName()
				if err != nil {
					return nil, err
				}
				r.Types = append(r.Types, typ.Name())
				r.TypeSpans = append(r.TypeSpans, typ.Span())
				if p.accept(TokPipe) {
					p.accept(TokColon) // tolerate :A|:B and :A|B
					continue
				}
				break
			}
		}
		if p.accept(TokStar) {
			r.MinHops, r.MaxHops = 1, -1
			if t := p.peek(); t.Type == TokInt {
				lo, _ := strconv.Atoi(t.Text)
				p.next()
				r.MinHops, r.MaxHops = lo, lo
				if p.accept(TokDotDot) {
					r.MaxHops = -1
					if t := p.peek(); t.Type == TokInt {
						hi, _ := strconv.Atoi(t.Text)
						p.next()
						r.MaxHops = hi
					}
				}
			} else if p.accept(TokDotDot) {
				if t := p.peek(); t.Type == TokInt {
					hi, _ := strconv.Atoi(t.Text)
					p.next()
					r.MaxHops = hi
				}
			}
		}
		if p.peek().Type == TokLBrace {
			props, err := p.parseMapLiteral()
			if err != nil {
				return nil, err
			}
			r.Props = props
		}
		if _, err := p.expect(TokRBracket, "']' closing a relationship pattern"); err != nil {
			return nil, err
		}
	}
	dash, err := p.expect(TokMinus, "'-' in a relationship pattern")
	if err != nil {
		return nil, err
	}
	end := dash.End
	if gt, ok := p.acceptTok(TokGt); ok {
		if r.Direction == DirIn {
			return nil, p.errf("relationship cannot point both ways")
		}
		r.Direction = DirOut
		end = gt.End
	}
	r.Span = Span{Start: start, End: end}
	return r, nil
}

func (p *parser) parseMapLiteral() (map[string]Expr, error) {
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	props := map[string]Expr{}
	if p.accept(TokRBrace) {
		return props, nil
	}
	for {
		keyTok := p.peek()
		if keyTok.Type != TokIdent && keyTok.Type != TokKeyword {
			return nil, p.errf("expected a property key, found %s", keyTok)
		}
		p.next()
		if _, err := p.expect(TokColon, "':' after property key"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		props[keyTok.Name()] = v
		if p.accept(TokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace, "'}' closing a map"); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *parser) parseWith() (*WithClause, error) {
	if err := p.expectKeyword("WITH"); err != nil {
		return nil, err
	}
	w := &WithClause{}
	proj, err := p.parseProjection(true)
	if err != nil {
		return nil, err
	}
	w.Projection = *proj
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		w.Where = e
	}
	return w, nil
}

func (p *parser) parseReturn() (*ReturnClause, error) {
	if err := p.expectKeyword("RETURN"); err != nil {
		return nil, err
	}
	proj, err := p.parseProjection(false)
	if err != nil {
		return nil, err
	}
	return &ReturnClause{Projection: *proj}, nil
}

func (p *parser) parseProjection(isWith bool) (*Projection, error) {
	proj := &Projection{}
	if p.acceptKeyword("DISTINCT") {
		proj.Distinct = true
	}
	// A leading '*' means "all variables"; it may be followed by more items.
	if p.peek().Type == TokStar {
		p.next()
		proj.Star = true
		if p.accept(TokComma) {
			if err := p.parseReturnItems(proj); err != nil {
				return nil, err
			}
		}
	} else {
		if err := p.parseReturnItems(proj); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			si := &SortItem{Expr: e}
			if p.acceptKeyword("DESC") || p.acceptKeyword("DESCENDING") {
				si.Desc = true
			} else if p.acceptKeyword("ASC") || p.acceptKeyword("ASCENDING") {
				si.Desc = false
			}
			proj.OrderBy = append(proj.OrderBy, si)
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if p.acceptKeyword("SKIP") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		proj.Skip = e
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		proj.Limit = e
	}
	_ = isWith
	return proj, nil
}

func (p *parser) parseReturnItems(proj *Projection) error {
	for {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		item := &ReturnItem{Expr: e}
		if p.acceptKeyword("AS") {
			t := p.peek()
			if t.Type != TokIdent && t.Type != TokKeyword {
				return p.errf("expected an alias after AS, found %s", t)
			}
			p.next()
			item.Alias = t.Name()
		}
		proj.Items = append(proj.Items, item)
		if !p.accept(TokComma) {
			return nil
		}
	}
}

func (p *parser) parseUnwind() (*UnwindClause, error) {
	if err := p.expectKeyword("UNWIND"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "variable name")
	if err != nil {
		return nil, err
	}
	return &UnwindClause{Expr: e, Alias: t.Text}, nil
}

func (p *parser) parseCreate() (*CreateClause, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	c := &CreateClause{}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		c.Patterns = append(c.Patterns, pat)
		if !p.accept(TokComma) {
			break
		}
	}
	return c, nil
}

func (p *parser) parseSet() (*SetClause, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	s := &SetClause{}
	for {
		t, err := p.expect(TokIdent, "variable name in SET")
		if err != nil {
			return nil, err
		}
		item := &SetItem{Target: t.Text}
		switch {
		case p.accept(TokDot):
			key := p.peek()
			if key.Type != TokIdent && key.Type != TokKeyword {
				return nil, p.errf("expected property key, found %s", key)
			}
			p.next()
			item.Key = key.Name()
			if _, err := p.expect(TokEq, "'=' in SET"); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Value = v
		case p.peek().Type == TokColon:
			for p.accept(TokColon) {
				lbl, err := p.parseLabelName()
				if err != nil {
					return nil, err
				}
				item.Labels = append(item.Labels, lbl.Name())
			}
		default:
			return nil, p.errf("expected '.' or ':' in SET item, found %s", p.peek())
		}
		s.Items = append(s.Items, item)
		if !p.accept(TokComma) {
			break
		}
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteClause, error) {
	d := &DeleteClause{}
	if p.acceptKeyword("DETACH") {
		d.Detach = true
	}
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Exprs = append(d.Exprs, e)
		if !p.accept(TokComma) {
			break
		}
	}
	return d, nil
}

// ---------- expressions ----------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("XOR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpXor, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parseComparison()
}

var compOps = map[TokenType]BinaryOp{
	TokEq: OpEq, TokNeq: OpNeq, TokLt: OpLt, TokGt: OpGt,
	TokLte: OpLte, TokGte: OpGte, TokRegex: OpRegex,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if op, ok := compOps[t.Type]; ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r, OpSpan: t.Span()}
			continue
		}
		if t.Type == TokKeyword {
			switch t.Text {
			case "IN":
				p.next()
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: OpIn, L: l, R: r, OpSpan: t.Span()}
				continue
			case "STARTS":
				p.next()
				if err := p.expectKeyword("WITH"); err != nil {
					return nil, err
				}
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: OpStartsWith, L: l, R: r, OpSpan: t.Span()}
				continue
			case "ENDS":
				p.next()
				if err := p.expectKeyword("WITH"); err != nil {
					return nil, err
				}
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: OpEndsWith, L: l, R: r, OpSpan: t.Span()}
				continue
			case "CONTAINS":
				p.next()
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: OpContains, L: l, R: r, OpSpan: t.Span()}
				continue
			case "IS":
				p.next()
				negate := p.acceptKeyword("NOT")
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				l = &IsNull{E: l, Negate: negate}
				continue
			}
		}
		return l, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Type {
		case TokPlus:
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case TokMinus:
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Type {
		case TokStar:
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case TokSlash:
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		case TokPercent:
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().Type {
	case TokMinus:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{E: e}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Type {
		case TokDot:
			p.next()
			t := p.peek()
			if t.Type != TokIdent && t.Type != TokKeyword {
				return nil, p.errf("expected property key after '.', found %s", t)
			}
			p.next()
			e = &PropAccess{Target: e, Key: t.Name(), KeySpan: t.Span()}
		case TokLBracket:
			p.next()
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket, "']'"); err != nil {
				return nil, err
			}
			e = &Index{Target: e, Sub: sub}
		case TokColon:
			// Label predicate: only meaningful on a variable-rooted
			// expression, and only when followed by a name.
			if _, isVar := e.(*Variable); !isVar {
				return e, nil
			}
			if nt := p.peekAt(1); nt.Type != TokIdent && nt.Type != TokKeyword {
				return e, nil
			}
			var labels []string
			for p.peek().Type == TokColon {
				nt := p.peekAt(1)
				if nt.Type != TokIdent && nt.Type != TokKeyword {
					break
				}
				p.next() // colon
				p.next() // label
				labels = append(labels, nt.Name())
			}
			e = &HasLabels{E: e, Labels: labels}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal %q", t.Text)
		}
		return &Literal{Value: graph.NewInt(n)}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("invalid float literal %q", t.Text)
		}
		return &Literal{Value: graph.NewFloat(f)}, nil
	case TokString:
		p.next()
		return &Literal{Value: graph.NewString(t.Text)}, nil
	case TokDollar:
		p.next()
		name := p.peek()
		if name.Type != TokIdent && name.Type != TokKeyword && name.Type != TokInt {
			return nil, p.errf("expected parameter name after '$', found %s", name)
		}
		p.next()
		return &Parameter{Name: name.Name()}, nil
	case TokLBracket:
		p.next()
		lst := &ListLit{}
		if p.accept(TokRBracket) {
			return lst, nil
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
			if p.accept(TokComma) {
				continue
			}
			break
		}
		if _, err := p.expect(TokRBracket, "']' closing a list"); err != nil {
			return nil, err
		}
		return lst, nil
	case TokLParen:
		// Either a parenthesized expression or a pattern predicate.
		if e, ok := p.tryParsePatternPred(); ok {
			return e, nil
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: graph.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: graph.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: graph.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			return p.parseExistsBody()
		case "COUNT", "ALL":
			// permit count(...) even though COUNT could be a keyword in
			// other dialects; here it lexes as ident, so this is unreachable,
			// kept for safety.
			p.next()
			return nil, p.errf("unexpected keyword %s in expression", t.Text)
		default:
			return nil, p.errf("unexpected keyword %s in expression", t.Text)
		}
	case TokIdent:
		// Function call or variable.
		if p.peekAt(1).Type == TokLParen {
			return p.parseFuncCall()
		}
		p.next()
		return &Variable{Name: t.Text, Span: t.Span()}, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

// parseExistsBody parses what follows the EXISTS keyword: either
// exists(expr), exists(pattern) or exists { pattern }.
func (p *parser) parseExistsBody() (Expr, error) {
	if p.peek().Type == TokLBrace {
		p.next()
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace, "'}' closing EXISTS"); err != nil {
			return nil, err
		}
		return &PatternPred{Pattern: pat}, nil
	}
	if _, err := p.expect(TokLParen, "'(' after EXISTS"); err != nil {
		return nil, err
	}
	if e, ok := p.tryParsePatternPred(); ok {
		if _, err := p.expect(TokRParen, "')' closing EXISTS"); err != nil {
			return nil, err
		}
		return e, nil
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, "')' closing EXISTS"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: "exists", Args: []Expr{arg}}, nil
}

// tryParsePatternPred attempts to parse a pattern predicate starting at the
// current '(' token. It backtracks and reports false when the tokens do not
// form a multi-element pattern.
func (p *parser) tryParsePatternPred() (Expr, bool) {
	save := p.pos
	pat, err := p.parsePattern()
	if err != nil || len(pat.Rels) == 0 {
		p.pos = save
		return nil, false
	}
	return &PatternPred{Pattern: pat}, true
}

func (p *parser) parseFuncCall() (Expr, error) {
	nameTok := p.next()
	name := strings.ToLower(nameTok.Text)
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name, NameSpan: nameTok.Span()}
	if name == "exists" {
		// exists(pattern) or exists(expr); the '(' is already consumed.
		if e, ok := p.tryParsePatternPred(); ok {
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	if p.peek().Type == TokStar {
		p.next()
		fc.Star = true
		if _, err := p.expect(TokRParen, "')' after '*'"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(TokRParen) {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if p.accept(TokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen, "')' closing call"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, w)
		c.Thens = append(c.Thens, th)
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
