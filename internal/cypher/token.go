// Package cypher implements a Cypher query subset sufficient to express and
// execute property-graph consistency rules: MATCH / OPTIONAL MATCH / WHERE /
// WITH / UNWIND / RETURN with aggregation, plus CREATE / SET / DELETE for
// mutation. It is the Neo4j stand-in used to score mined rules with the
// paper's support/coverage/confidence metrics.
package cypher

import "fmt"

// TokenType identifies a lexical token class.
type TokenType uint8

const (
	TokEOF TokenType = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokKeyword

	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokComma    // ,
	TokColon    // :
	TokSemi     // ;
	TokDot      // .
	TokDotDot   // ..
	TokPipe     // |
	TokDollar   // $

	TokEq      // =
	TokNeq     // <>
	TokLt      // <
	TokGt      // >
	TokLte     // <=
	TokGte     // >=
	TokRegex   // =~
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
)

// Token is one lexical token with its source position: Pos is the byte
// offset of its first source byte and End the offset one past its last
// (so src[Pos:End] is the original spelling, including any quotes).
type Token struct {
	Type TokenType
	Text string // identifier/keyword text (keywords uppercased), literal text
	Orig string // original source spelling for keywords (e.g. "Match")
	Pos  int
	End  int
}

// Span returns the token's source span.
func (t Token) Span() Span { return Span{Start: t.Pos, End: t.End} }

// Span is a half-open [Start, End) byte-offset range in the query source.
// The zero Span marks an AST node built programmatically rather than parsed.
type Span struct {
	Start int
	End   int
}

// IsZero reports whether the span carries no position information.
func (s Span) IsZero() bool { return s.Start == 0 && s.End == 0 }

// Name returns the token's original spelling when it is used as a name
// (label, property key, alias) rather than as a keyword.
func (t Token) Name() string {
	if t.Type == TokKeyword && t.Orig != "" {
		return t.Orig
	}
	return t.Text
}

func (t Token) String() string {
	switch t.Type {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords are reserved words recognized case-insensitively. Function names
// (count, collect, ...) are deliberately NOT keywords; they lex as
// identifiers.
var keywords = map[string]bool{
	"MATCH": true, "OPTIONAL": true, "WHERE": true, "WITH": true,
	"RETURN": true, "AS": true, "AND": true, "OR": true, "XOR": true,
	"NOT": true, "IN": true, "IS": true, "NULL": true, "TRUE": true,
	"FALSE": true, "DISTINCT": true, "ORDER": true, "BY": true,
	"ASC": true, "ASCENDING": true, "DESC": true, "DESCENDING": true,
	"SKIP": true, "LIMIT": true, "UNWIND": true, "CREATE": true,
	"SET": true, "DELETE": true, "DETACH": true, "STARTS": true,
	"ENDS": true, "CONTAINS": true, "EXISTS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "UNION": true,
	"ALL": true, "MERGE": true,
}
