package cypher

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// poisonGraph builds n Person nodes {idx, poison: 1} in insertion order,
// with poison = 0 on the node at poisonAt — the query
// `WHERE 1 / p.poison >= 0` then fails with "division by zero" exactly at
// that candidate, everywhere else it passes.
func poisonGraph(n, poisonAt int) *graph.Graph {
	g := graph.New("poison")
	for i := 0; i < n; i++ {
		p := int64(1)
		if i == poisonAt {
			p = 0
		}
		g.AddNode([]string{"Person"}, graph.Props{
			"idx":    graph.NewInt(int64(i)),
			"poison": graph.NewInt(p),
		})
	}
	return g
}

const poisonQuery = `MATCH (p:Person) WHERE 1 / p.poison >= 0 RETURN p.idx`

// Regression test: the first morsel error must cancel the sibling workers.
// The poisoned candidate sits in the very first morsel, so after its error
// cancels the scan the remaining ~300 morsels must not be matched — the
// merged RowsScanned stays far below the candidate count. (Before the
// cancelable per-scan context, every sibling shard ran its whole chunk to
// completion after the failure and RowsScanned came back ≈ n.)
func TestMorselErrorCancelsSiblings(t *testing.T) {
	const n = 20000
	g := poisonGraph(n, 5)
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(64))
	res, err := ex.Run(poisonQuery, nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
	if res == nil {
		t.Fatal("error path returned nil result")
	}
	if res.Exec.RowsScanned == 0 {
		t.Fatal("error path reports zero rows scanned")
	}
	if res.Exec.RowsScanned > n/2 {
		t.Errorf("RowsScanned = %d after early error; siblings kept scanning (want << %d)",
			res.Exec.RowsScanned, n)
	}
}

// Regression test: a failed sharded query must still report its execution
// stats — completed workers' scan counters merged and the shard/morsel
// metadata recorded — so `profile` after a failure shows the work done.
// (Previously the error return skipped both the stats merge and the
// Sharded/ShardWorkers/ShardRows assignment.)
func TestMorselErrorPathKeepsStats(t *testing.T) {
	g := poisonGraph(1000, 900)
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(100))
	res, err := ex.Run(poisonQuery, nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
	if res == nil {
		t.Fatal("error path returned nil result")
	}
	st := res.Exec
	if !st.Sharded || st.ShardWorkers != 4 {
		t.Errorf("Sharded=%v ShardWorkers=%d, want true/4", st.Sharded, st.ShardWorkers)
	}
	if st.Morsels != 10 || st.MorselSize != 100 || len(st.ShardRows) != 10 {
		t.Errorf("Morsels=%d MorselSize=%d ShardRows=%v, want 10/100/10 entries",
			st.Morsels, st.MorselSize, st.ShardRows)
	}
	if st.RowsScanned == 0 {
		t.Error("RowsScanned = 0 on error path, want the completed morsels' scan work")
	}
	// The count-aggregate fast path records stats on failure too.
	res, err = ex.Run(`MATCH (p:Person) WHERE 1 / p.poison >= 0 RETURN count(*) AS n`, nil)
	if err == nil || res == nil {
		t.Fatalf("aggregate: res=%v err=%v, want stats-bearing result plus error", res, err)
	}
	if !res.Exec.Sharded || res.Exec.RowsScanned == 0 {
		t.Errorf("aggregate error path: Sharded=%v RowsScanned=%d, want stats recorded",
			res.Exec.Sharded, res.Exec.RowsScanned)
	}
}

// Regression test: merged sharded seek stats must match the serial run
// exactly. Every worker re-records the inner part's index seek; the merge
// dedups by the seek identity recordSeek uses, so the final list — entries,
// order, Est and Rows — is byte-identical to serial. (The old merge
// compared full structs, so worker copies with differing enumeration
// counts survived as duplicates.)
func TestMorselSeekStatsMatchSerial(t *testing.T) {
	g := chainGraph(300)
	q := `MATCH (p:Person), (q:Person {idx: 5}) WHERE p.idx < 3 RETURN p.idx, q.idx`
	serial := NewExecutor(g, WithReorder(false))
	want, err := serial.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded := NewExecutor(g, WithReorder(false), WithShardWorkers(3), WithMorselSize(1))
	got, err := sharded.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Exec.Seeks) == 0 {
		t.Fatal("test query recorded no seeks; it no longer exercises the merge path")
	}
	if !reflect.DeepEqual(want.Exec.Seeks, got.Exec.Seeks) {
		t.Errorf("sharded Seeks diverge from serial\nserial:  %v\nsharded: %v",
			want.Exec.Seeks, got.Exec.Seeks)
	}
	if want.Exec.IndexSeeks != got.Exec.IndexSeeks || want.Exec.RowsScanned != got.Exec.RowsScanned {
		t.Errorf("scan counters diverge: serial seeks=%d rows=%d, sharded seeks=%d rows=%d",
			want.Exec.IndexSeeks, want.Exec.RowsScanned, got.Exec.IndexSeeks, got.Exec.RowsScanned)
	}
}

// Morsel reassembly edge cases: empty anchor set, a single morsel, morsel
// size exceeding the candidate count, and OPTIONAL MATCH producing zero
// rows must all agree with serial execution at every worker count.
func TestMorselReassemblyEdgeCases(t *testing.T) {
	g := chainGraph(100)
	queries := []string{
		`MATCH (x:Nope) RETURN x.idx`,                                 // empty anchor set
		`OPTIONAL MATCH (x:Nope) RETURN x.idx`,                        // optional, empty anchor
		`MATCH (t:Tag) WHERE t.decade > 999 RETURN t.decade`,          // candidates but no rows
		`OPTIONAL MATCH (t:Tag) WHERE t.decade > 999 RETURN t.decade`, // optional, no rows
		`MATCH (t:Tag) RETURN t.decade`,                               // 10 candidates
	}
	serial := NewExecutor(g, WithReorder(false))
	for _, workers := range []int{1, 3, 8} {
		for _, size := range []int{1, 7, 1000} {
			ex := NewExecutor(g, WithReorder(false), WithShardWorkers(workers), WithMorselSize(size))
			for _, q := range queries {
				want, wantErr := oracleRun(serial, q)
				got, gotErr := oracleRun(ex, q)
				if wantErr != gotErr {
					t.Fatalf("workers=%d size=%d %q: serial err=%q sharded err=%q",
						workers, size, q, wantErr, gotErr)
				}
				if !rowsEqual(want, got) {
					t.Errorf("workers=%d size=%d %q:\nserial:  %v\nsharded: %v",
						workers, size, q, want, got)
				}
			}
		}
	}

	// Morsel size above the candidate count collapses to a single morsel.
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(1000))
	res, err := ex.Run(`MATCH (p:Person) RETURN count(*) AS n`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Morsels != 1 || len(res.Exec.ShardRows) != 1 {
		t.Errorf("Morsels=%d ShardRows=%v, want one morsel", res.Exec.Morsels, res.Exec.ShardRows)
	}
}

// Live mutation under a running morsel scan, mirroring the graph package's
// COW tests: a writer goroutine keeps updating properties and adding nodes
// while sharded queries stream morsels. Run with -race; the copy-on-write
// snapshots must keep every morsel's view consistent (no torn reads, no
// lost candidates below the starting population).
func TestMorselScanUnderMutation(t *testing.T) {
	g := chainGraph(500)
	ids := g.NodesWithLabel("Person")
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(32))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		added := 0
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = g.SetNodeProp(ids[i%len(ids)], "w", graph.NewInt(int64(i%5)))
			// Bound the growth so query cost stays flat while the test runs.
			if i%13 == 0 && added < 1000 {
				added++
				g.AddNode([]string{"Person"}, graph.Props{"idx": graph.NewInt(int64(100000 + i))})
			}
		}
	}()

	for iter := 0; iter < 40; iter++ {
		res, err := ex.Run(`MATCH (p:Person) RETURN count(*) AS n`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.FirstInt("n"); n < 500 {
			t.Fatalf("count = %d under mutation, want >= 500 (nodes are only added)", n)
		}
		rows, err := ex.Run(`MATCH (p:Person) WHERE p.w = 1 RETURN p.idx`, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = rows
	}
	close(stop)
	wg.Wait()
}
