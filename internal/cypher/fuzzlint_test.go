package cypher_test

// FuzzLint lives in the external test package: the lint framework imports
// internal/cypher, so the fuzzer for it cannot sit in package cypher itself.

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
)

// lintFuzzGraph builds a tiny schema-conforming social graph: every label,
// relationship type and property key the seeds mention is observed, so
// lint-clean queries have nothing left to trip over at bind time.
func lintFuzzGraph() *graph.Graph {
	g := graph.New("lintfuzz")
	u1 := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("ann"), "followers": graph.NewInt(10)})
	u2 := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(2), "name": graph.NewString("bob"), "followers": graph.NewInt(3)})
	t1 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(3), "text": graph.NewString("hello world")})
	t2 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(4), "text": graph.NewString("bye")})
	g.MustAddEdge(u1.ID, u2.ID, []string{"FOLLOWS"}, nil)
	g.MustAddEdge(u1.ID, t1.ID, []string{"POSTS"}, nil)
	g.MustAddEdge(u2.ID, t2.ID, []string{"POSTS"}, nil)
	return g
}

// FuzzLint asserts two invariants of the analyzer framework:
//
//  1. lint.Source never panics, whatever the input — unparseable input must
//     yield exactly one syntax diagnostic, parseable input any number.
//  2. Soundness of the error severity: a lint-clean query (no error-severity
//     findings against the graph's schema) executes without the engine's
//     semantic binding failures ("variable ... not defined", "unknown
//     function"). Warnings and infos carry no such guarantee.
func FuzzLint(f *testing.F) {
	seeds := []string{
		`MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.followers > 1 RETURN u.name, t.id`,
		`MATCH (u:User) WITH u.name AS n, count(*) AS c WHERE c > 1 RETURN n ORDER BY n LIMIT 2`,
		`MATCH (a:User)-[r:FOLLOWS]->(b:User) RETURN count(r) AS follows`,
		`MATCH (u:Usr) WHERE u.folowers > 1 RETURN u`,
		`MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN u`,
		`MATCH (u:User) WHERE u.name = '^a.*$' RETURN u`,
		`MATCH (u:User) WHERE cout(u) > 1 RETURN u`,
		`MATCH (a:User), (b:Tweet) RETURN a, b`,
		`UNWIND [1, 2] AS x RETURN sum(x) + x`,
		`MATCH (u:User) RETURN v`,
		`MATCH (u:User RETURN u`,
		`RETURN count(count(1))`,
		`MATCH (n) SET n.name = 'x' DELETE n`,
		`MATCH (u:User) WHERE u.id = 1 AND u.id = 2 RETURN u`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := lintFuzzGraph()
	schema := graph.ExtractSchema(g)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 500 {
			return
		}
		diags := lint.Source(src, schema, lint.Options{}) // must never panic
		q, err := cypher.Parse(src)
		if err != nil {
			if len(diags) != 1 || diags[0].Analyzer != lint.SyntaxAnalyzer {
				t.Fatalf("unparseable input wants exactly one syntax diagnostic, got %v", diags)
			}
			return
		}
		if lint.HasError(diags) {
			return
		}
		if _, err := cypher.NewExecutor(g).Execute(q, nil); err != nil {
			msg := err.Error()
			if strings.Contains(msg, "not defined") || strings.Contains(msg, "unknown function") {
				t.Fatalf("lint-clean query hit a semantic binding error at runtime:\nquery: %q\nerror: %v\ndiags: %v", src, err, diags)
			}
		}
	})
}
