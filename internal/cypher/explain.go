package cypher

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the logical execution plan of a query against the bound
// graph: one line per pipeline stage, annotated with the anchor choices the
// matcher will make (which label index seeds each pattern) and estimated
// candidate counts. It executes nothing.
func (ex *Executor) Explain(src string) (string, error) {
	q, _, err := ex.plan(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Plan:\n")
	depth := 1
	line := func(format string, args ...any) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	bound := map[string]bool{}

	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *MatchClause:
			kw := "Match"
			if c.Optional {
				kw = "OptionalMatch"
			}
			line("%s (%d pattern(s))", kw, len(c.Patterns))
			depth++
			ranges := ex.clauseRanges(c.Where)
			mp := ex.planMatch(c.Patterns, bound, ranges)
			if mp.reordered {
				line("CostOrder: order=%v reversed=%v est=%v [smallest anchor first]", mp.order, mp.reversed, mp.est)
			}
			if ex.shardWorkers >= 1 && anchorUnbound(mp.parts, boundRow(bound)) {
				line("MorselScan(%d worker(s), morsel size %d) [work-stealing over anchor morsels, merged in tag order]",
					ex.shardWorkers, ex.morselCap())
			}
			for _, part := range mp.parts {
				ex.explainPart(part, bound, ranges, line)
			}
			if c.Where != nil {
				line("Filter: %s", c.Where.exprString())
			}
			depth--
		case *WithClause:
			line("Project (WITH): %s", projectionSummary(&c.Projection))
			rebind(bound, &c.Projection)
			if c.Where != nil {
				line("Filter: %s", c.Where.exprString())
			}
		case *ReturnClause:
			line("Project (RETURN): %s", projectionSummary(&c.Projection))
		case *UnwindClause:
			line("Unwind %s AS %s", c.Expr.exprString(), c.Alias)
			bound[c.Alias] = true
		case *CreateClause:
			line("Create (%d pattern(s))", len(c.Patterns))
			for _, part := range c.Patterns {
				markPatternVars(part, bound)
			}
		case *SetClause:
			line("Set (%d item(s))", len(c.Items))
		case *DeleteClause:
			kw := "Delete"
			if c.Detach {
				kw = "DetachDelete"
			}
			line("%s (%d target(s))", kw, len(c.Exprs))
		}
	}
	if !ex.noCountFast {
		if _, _, ok := countFastPlan(q); ok {
			depth = 1
			line("[count fast path: streams matches into one aggregate]")
		}
	}
	pc := ex.PlanCacheStats()
	is := ex.g.IndexStats()
	fmt.Fprintf(&b, "Cache: plan hits=%d misses=%d entries=%d; prop index builds=%d lookups=%d live=%d",
		pc.Hits, pc.Misses, pc.Entries, is.EqBuilds, is.EqLookups, is.EqLive)
	if is.OrdNodeBuilds+is.OrdEdgeBuilds > 0 {
		fmt.Fprintf(&b, "; ordered index builds=%d/%d seeks=%d rows=%d",
			is.OrdNodeBuilds, is.OrdEdgeBuilds, is.OrdSeeks, is.OrdRows)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

func (ex *Executor) explainPart(part *PatternPart, bound map[string]bool, ranges whereRanges, line func(string, ...any)) {
	n0 := part.Nodes[0]
	byKey := ranges.forVar(n0.Var)
	switch {
	case n0.Var != "" && bound[n0.Var]:
		line("AnchorOnBound(%s)", n0.Var)
	case !ex.noPushdown && len(n0.Labels) > 0 && (hasConstProp(n0) || len(byKey) > 0):
		// Mirror the matcher: the equality posting and the range count
		// compete, smallest candidate set wins.
		eqN := -1
		var eqLabel, eqKey string
		if hasConstProp(n0) {
			eqLabel, eqKey = seekChoice(n0)
			for _, l := range n0.Labels {
				for _, k := range sortedPropKeys(n0.Props) {
					lit, ok := n0.Props[k].(*Literal)
					if !ok {
						continue
					}
					if n := len(ex.g.LabelPropNodes(l, k, lit.Value)); eqN == -1 || n < eqN {
						eqN, eqLabel, eqKey = n, l, k
					}
				}
			}
		}
		rN := -1
		var rLabel, rKey string
		for _, l := range n0.Labels {
			for _, k := range sortedRangeKeys(byKey) {
				r := byKey[k]
				if c := ex.g.LabelPropRangeCount(l, k, r.lo, r.hi); rN == -1 || c < rN {
					rN, rLabel, rKey = c, l, k
				}
			}
		}
		if rN >= 0 && (eqN == -1 || rN < eqN) {
			line("NodeRangeSeek(%s:%s.%s %s) ~%d candidate(s) [ordered index]",
				varOrAnon(n0.Var), rLabel, rKey, byKey[rKey], rN)
		} else {
			line("NodeIndexSeek(%s:%s.%s) [label+property index]", varOrAnon(n0.Var), eqLabel, eqKey)
		}
	case len(n0.Labels) > 0:
		label, count := ex.bestLabel(n0.Labels)
		line("NodeByLabelScan(%s:%s) ~%d candidate(s)", varOrAnon(n0.Var), label, count)
	default:
		est, edgeSeek := 0.0, false
		if !ex.noPushdown {
			est, edgeSeek = ex.estEdgeAnchor(part, ranges)
		}
		if edgeSeek {
			rel := part.Rels[0]
			line("EdgeIndexSeek(%s:%s) ~%d endpoint(s) [ordered edge index]",
				varOrAnon(rel.Var), strings.Join(rel.Types, "|"), int(est))
		} else {
			line("AllNodesScan(%s) ~%d candidate(s)", varOrAnon(n0.Var), ex.g.NodeCount())
		}
	}
	markPatternVars(part, bound)
	for i, rel := range part.Rels {
		dir := "both"
		switch rel.Direction {
		case DirOut:
			dir = "out"
		case DirIn:
			dir = "in"
		}
		target := part.Nodes[i+1]
		typ := "*any*"
		if len(rel.Types) > 0 {
			typ = strings.Join(rel.Types, "|")
		}
		hops := ""
		if rel.IsVarLength() {
			if rel.MaxHops < 0 {
				hops = fmt.Sprintf(" hops %d..inf", rel.MinHops)
			} else {
				hops = fmt.Sprintf(" hops %d..%d", rel.MinHops, rel.MaxHops)
			}
		}
		sel := ""
		if len(rel.Types) == 1 {
			sel = fmt.Sprintf(" ~%d edge(s) of type", len(ex.g.EdgesWithType(rel.Types[0])))
		}
		line("Expand(%s, dir=%s%s) -> %s%s", typ, dir, hops, nodeSummary(target), sel)
	}
}

// hasConstProp reports whether the node pattern carries at least one
// constant (literal) property constraint — the precondition for an index
// seek in bindNode.
func hasConstProp(n *NodePattern) bool {
	for _, e := range n.Props {
		if _, ok := e.(*Literal); ok {
			return true
		}
	}
	return false
}

// seekChoice mirrors bindNode's deterministic seek choice for display: the
// first declared label and the first (sorted) constant property key.
func seekChoice(n *NodePattern) (label, key string) {
	keys := make([]string, 0, len(n.Props))
	for k := range n.Props {
		if _, ok := n.Props[k].(*Literal); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return n.Labels[0], keys[0]
}

// bestLabel returns the smallest label index among the candidates (the
// matcher's anchor heuristic) and its cardinality.
func (ex *Executor) bestLabel(labels []string) (string, int) {
	best, bestN := labels[0], len(ex.g.NodesWithLabel(labels[0]))
	for _, l := range labels[1:] {
		if n := len(ex.g.NodesWithLabel(l)); n < bestN {
			best, bestN = l, n
		}
	}
	return best, bestN
}

// boundRow adapts Explain's bound-variable set to the Row shape
// anchorUnbound checks (only key presence matters).
func boundRow(bound map[string]bool) Row {
	r := make(Row, len(bound))
	for v, ok := range bound {
		if ok {
			r[v] = NullDatum
		}
	}
	return r
}

func varOrAnon(v string) string {
	if v == "" {
		return "_"
	}
	return v
}

func nodeSummary(n *NodePattern) string {
	s := "(" + varOrAnon(n.Var)
	for _, l := range n.Labels {
		s += ":" + l
	}
	return s + ")"
}

func markPatternVars(part *PatternPart, bound map[string]bool) {
	for _, n := range part.Nodes {
		if n.Var != "" {
			bound[n.Var] = true
		}
	}
	for _, r := range part.Rels {
		if r.Var != "" {
			bound[r.Var] = true
		}
	}
}

func projectionSummary(p *Projection) string {
	var parts []string
	if p.Distinct {
		parts = append(parts, "DISTINCT")
	}
	if p.Star {
		parts = append(parts, "*")
	}
	agg := false
	for _, it := range p.Items {
		if ContainsAggregate(it.Expr) {
			agg = true
		}
		parts = append(parts, it.Name())
	}
	s := strings.Join(parts, ", ")
	if agg {
		s += " [grouped aggregate]"
	}
	if len(p.OrderBy) > 0 {
		s += fmt.Sprintf(" [sort x%d]", len(p.OrderBy))
	}
	if p.Skip != nil || p.Limit != nil {
		s += " [paginate]"
	}
	return s
}

func rebind(bound map[string]bool, p *Projection) {
	if !p.Star {
		for k := range bound {
			delete(bound, k)
		}
	}
	for _, it := range p.Items {
		bound[it.Name()] = true
	}
}
