package cypher

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// equivalence queries exercised against every engine configuration: fast
// paths must be observably identical to the general path.
var equivQueries = []string{
	`MATCH (u:User) RETURN count(*) AS n`,
	`MATCH (u:User {verified: true}) RETURN count(*) AS n`,
	`MATCH (u:User {name: 'alice'}) RETURN count(*) AS n`,
	`MATCH (u:User {name: 'nobody'}) RETURN count(*) AS n`,
	`MATCH (t:Tweet {createdAt: 1000}) RETURN count(*) AS n`,
	`MATCH (t:Tweet {createdAt: 1000.0}) RETURN count(*) AS n`, // cross-numeric key
	`MATCH (u:User) WHERE u.id > 1 RETURN count(*) AS n`,
	`MATCH (u:User {verified: false})-[:FOLLOWS]->(v:User) RETURN count(*) AS n`,
	`MATCH (u:User)-[:POSTS]->(t:Tweet) RETURN count(t.text) AS n`,
	`MATCH (u:User)-[:FOLLOWS]->(v:User) RETURN count(DISTINCT v) AS n`,
	`MATCH (a)-[:FOLLOWS*1..2]->(b) RETURN count(*) AS n`,
	`MATCH (u:User) RETURN u.name AS name, count(*) AS n ORDER BY name`,
	`MATCH (u:User {id: 1})-[:POSTS]->(t) RETURN t.id AS id ORDER BY id`,
}

func resultSignature(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", res.Columns)
	for _, row := range res.Rows {
		for _, d := range row {
			fmt.Fprintf(&b, "%s|", d.Scalar().String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFastPathEquivalence cross-checks pushdown and the count fast path
// against the plain scan engine on the same graph.
func TestFastPathEquivalence(t *testing.T) {
	g := socialGraph()
	base := NewExecutor(g)
	base.SetIndexPushdown(false)
	base.SetCountFastPath(false)

	configs := []struct {
		name               string
		pushdown, fastPath bool
	}{
		{"pushdown", true, false},
		{"fastpath", false, true},
		{"both", true, true},
	}
	for _, cfg := range configs {
		ex := NewExecutor(g)
		ex.SetIndexPushdown(cfg.pushdown)
		ex.SetCountFastPath(cfg.fastPath)
		for _, q := range equivQueries {
			want, err := base.Run(q, nil)
			if err != nil {
				t.Fatalf("base %q: %v", q, err)
			}
			got, err := ex.Run(q, nil)
			if err != nil {
				t.Fatalf("%s %q: %v", cfg.name, q, err)
			}
			if resultSignature(got) != resultSignature(want) {
				t.Errorf("%s %q:\n got %q\nwant %q", cfg.name, q, resultSignature(got), resultSignature(want))
			}
		}
	}
}

// TestCountFastPathZeroMatches pins the empty-group contract: a bare
// aggregate over zero matches still yields exactly one row.
func TestCountFastPathZeroMatches(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (x:Nope) RETURN count(*) AS n`)
	if !res.Exec.CountFastPath {
		t.Fatalf("expected count fast path, stats: %+v", res.Exec)
	}
	if res.Len() != 1 || res.FirstInt("n") != 0 {
		t.Fatalf("zero-match count: rows=%d n=%d", res.Len(), res.FirstInt("n"))
	}
}

func TestCountFastPathNotTakenWhenDisqualified(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	for _, q := range []string{
		`MATCH (u:User) RETURN count(*) AS n, u.name AS name`, // two items
		`MATCH (u:User) RETURN u.name AS name`,                // no aggregate
		`OPTIONAL MATCH (u:Nope) RETURN count(*) AS n`,        // optional
		`MATCH (u:User) RETURN count(*) AS n ORDER BY n`,      // order by
	} {
		res, err := ex.Run(q, nil)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if res.Exec.CountFastPath {
			t.Errorf("%q unexpectedly took the count fast path", q)
		}
	}
}

func TestPlanCacheCounters(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	const q = `MATCH (u:User) RETURN count(*) AS n`

	res, err := ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.PlanCacheHit {
		t.Error("first run should be a cache miss")
	}
	res, err = ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exec.PlanCacheHit {
		t.Error("second run should be a cache hit")
	}
	st := ex.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want hits=1 misses=1 entries=1", st)
	}
	if _, err := ex.Run(`MATCH (`, nil); err == nil {
		t.Error("parse error expected")
	}
	if st := ex.PlanCacheStats(); st.Entries != 1 {
		t.Errorf("parse failures must not be cached: %+v", st)
	}
}

// TestPlanCacheConcurrent hammers one executor from many goroutines; run
// under -race this verifies the cache and shared-AST execution are safe.
func TestPlanCacheConcurrent(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	queries := []string{
		`MATCH (u:User) RETURN count(*) AS n`,
		`MATCH (u:User {verified: true}) RETURN count(*) AS n`,
		`MATCH (u:User)-[:FOLLOWS]->(v) RETURN count(*) AS n`,
		`MATCH (t:Tweet) RETURN count(t.text) AS n`,
	}
	want := make([]int64, len(queries))
	for i, q := range queries {
		res, err := ex.Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.FirstInt("n")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := iter % len(queries)
				res, err := ex.Run(queries[i], nil)
				if err != nil {
					errs <- err
					return
				}
				if got := res.FirstInt("n"); got != want[i] {
					errs <- fmt.Errorf("%q: got %d want %d", queries[i], got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPushdownUsesIndexAndInvalidates(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	const q = `MATCH (u:User {name: 'alice'}) RETURN count(*) AS n`

	res, err := ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.IndexSeeks == 0 {
		t.Fatalf("expected an index seek, stats: %+v", res.Exec)
	}
	if res.FirstInt("n") != 1 {
		t.Fatalf("n = %d, want 1", res.FirstInt("n"))
	}
	builds0, _, _ := g.PropIndexStats()
	if builds0 == 0 {
		t.Fatal("expected a posting map build")
	}

	// Mutate: rename bob to alice. The index must be invalidated, not stale.
	var bob graph.ID
	for _, n := range g.LabelNodes("User") {
		if n.Prop("name").Equal(graph.NewString("bob")) {
			bob = n.ID
		}
	}
	if err := g.SetNodeProp(bob, "name", graph.NewString("alice")); err != nil {
		t.Fatal(err)
	}
	res, err = ex.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstInt("n") != 2 {
		t.Fatalf("after rename n = %d, want 2 (stale index?)", res.FirstInt("n"))
	}
	builds1, _, _ := g.PropIndexStats()
	if builds1 <= builds0 {
		t.Errorf("expected a rebuild after invalidation: builds %d -> %d", builds0, builds1)
	}
}

func TestExecStatsTimings(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) WHERE u.verified RETURN u.name AS name ORDER BY name`)
	if len(res.Exec.Clauses) != 2 {
		t.Fatalf("clause timings = %+v, want Match+Return", res.Exec.Clauses)
	}
	if res.Exec.Clauses[0].Clause != "Match" || res.Exec.Clauses[1].Clause != "Return" {
		t.Errorf("clause names = %+v", res.Exec.Clauses)
	}
	if res.Exec.RowsScanned == 0 {
		t.Errorf("RowsScanned not tracked: %+v", res.Exec)
	}
	if s := res.Exec.String(); !strings.Contains(s, "rows scanned") {
		t.Errorf("ExecStats.String() = %q", s)
	}
}

// TestIntErrStrict is the headline regression: a count column that is
// missing, NULL, or non-numeric must error rather than read as zero.
func TestIntErrStrict(t *testing.T) {
	g := socialGraph()

	res := run(t, g, `MATCH (u:User) RETURN count(*) AS support`)
	if _, err := res.IntErr(0, "n"); err == nil {
		t.Error("mismatched alias: want error, got none")
	} else if !strings.Contains(err.Error(), `no column "n"`) {
		t.Errorf("alias error = %v", err)
	}
	if got := res.Int(0, "n"); got != 0 {
		t.Errorf("lenient Int on missing column = %d, want 0", got)
	}
	if n, err := res.IntErr(0, "support"); err != nil || n != 3 {
		t.Errorf("IntErr(support) = %d, %v", n, err)
	}

	res = run(t, g, `MATCH (u:User {id: 3}) RETURN u.verified AS n`)
	if _, err := res.IntErr(0, "n"); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Errorf("NULL column: err = %v", err)
	}

	res = run(t, g, `MATCH (u:User {id: 1}) RETURN u.name AS n`)
	if _, err := res.IntErr(0, "n"); err == nil {
		t.Error("string column: want error, got none")
	}

	res = run(t, g, `MATCH (u:User) RETURN count(*) AS n`)
	if _, err := res.IntErr(3, "n"); err == nil {
		t.Error("row out of range: want error, got none")
	}
}
