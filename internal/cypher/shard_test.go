package cypher

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// chainGraph builds n Person nodes {idx: 0..n-1} linked by NEXT edges in
// index order, with a Tag node every tenth person. Insertion order is the
// serial scan order, so row-order regressions are easy to spot.
func chainGraph(n int) *graph.Graph {
	g := graph.New("chain")
	var prev *graph.Node
	for i := 0; i < n; i++ {
		p := g.AddNode([]string{"Person"}, graph.Props{"idx": graph.NewInt(int64(i))})
		if prev != nil {
			g.MustAddEdge(prev.ID, p.ID, []string{"NEXT"}, nil)
		}
		if i%10 == 0 {
			tag := g.AddNode([]string{"Tag"}, graph.Props{"decade": graph.NewInt(int64(i / 10))})
			g.MustAddEdge(p.ID, tag.ID, []string{"TAGGED"}, nil)
		}
		prev = p
	}
	return g
}

func TestMorselCut(t *testing.T) {
	nodes := make([]*graph.Node, 0, 10)
	for i := 0; i < 10; i++ {
		nodes = append(nodes, &graph.Node{ID: graph.ID(i)})
	}
	cases := []struct {
		size int
		want []int // morsel lengths
	}{
		{10, []int{10}},
		{5, []int{5, 5}},
		{4, []int{4, 4, 2}},
		{3, []int{3, 3, 3, 1}},
		{1, []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{25, []int{10}}, // morsel size > candidate count: one short morsel
		{0, []int{10}},  // <= 0 falls back to the default (256 > 10)
	}
	for _, tc := range cases {
		morsels := morselCut(nodes, tc.size)
		if len(morsels) != len(tc.want) {
			t.Errorf("size=%d: %d morsels, want %d", tc.size, len(morsels), len(tc.want))
			continue
		}
		// Concatenating morsels must reproduce the input exactly: the
		// tag-order merge relies on contiguity to preserve serial row order.
		i := 0
		for mi, morsel := range morsels {
			if len(morsel) != tc.want[mi] {
				t.Errorf("size=%d morsel %d: len %d, want %d", tc.size, mi, len(morsel), tc.want[mi])
			}
			for _, n := range morsel {
				if n != nodes[i] {
					t.Errorf("size=%d: morsel order diverges from input at %d", tc.size, i)
				}
				i++
			}
		}
		if i != len(nodes) {
			t.Errorf("size=%d: morsels cover %d of %d candidates", tc.size, i, len(nodes))
		}
	}
	if got := morselCut(nil, 4); len(got) != 0 {
		t.Errorf("morselCut(nil) = %d morsels, want 0", len(got))
	}
}

// TestShardedRowOrderMatchesSerial is the regression test for deterministic
// result ordering: with reordering off, a sharded non-aggregate query must
// return rows byte-identical to — and in the same order as — the serial
// executor, at every worker count.
func TestShardedRowOrderMatchesSerial(t *testing.T) {
	g := chainGraph(200)
	queries := []string{
		`MATCH (p:Person) RETURN p.idx`,
		`MATCH (p:Person) WHERE p.idx > 57 RETURN p.idx`,
		`MATCH (a:Person)-[:NEXT]->(b:Person) RETURN a.idx, b.idx`,
		`MATCH (p:Person)-[:TAGGED]->(t:Tag) RETURN p.idx, t.decade`,
		`MATCH (p:Person) OPTIONAL MATCH (p)-[:TAGGED]->(t:Tag) RETURN p.idx, t.decade`,
		`MATCH (a:Person)-[:NEXT]->(b)-[:NEXT]->(c) RETURN a.idx, c.idx`,
	}
	serial := NewExecutor(g)
	serial.SetReorder(false)
	for _, workers := range []int{1, 2, 3, 8, 64} {
		ex := NewExecutor(g)
		ex.SetShardWorkers(workers)
		ex.SetReorder(false)
		for _, q := range queries {
			want, wantErr := oracleRun(serial, q)
			got, gotErr := oracleRun(ex, q)
			if wantErr != "" || gotErr != "" {
				t.Fatalf("workers=%d %q: serial err=%q sharded err=%q", workers, q, wantErr, gotErr)
			}
			if !rowsEqual(want, got) {
				t.Errorf("workers=%d %q: row order diverges\nserial:  %v\nsharded: %v", workers, q, want, got)
			}
		}
	}
}

// Sharded collect() must concatenate per-shard accumulations in shard order,
// reproducing the serial accumulation order exactly.
func TestShardedCollectOrderDeterministic(t *testing.T) {
	g := chainGraph(100)
	queries := []string{
		`MATCH (p:Person) RETURN collect(p.idx) AS xs`,
		`MATCH (a:Person)-[:NEXT]->(b:Person) RETURN count(*) AS n, collect(b.idx) AS xs`,
	}
	serial := NewExecutor(g)
	serial.SetReorder(false)
	for _, workers := range []int{1, 2, 8} {
		ex := NewExecutor(g)
		ex.SetShardWorkers(workers)
		ex.SetReorder(false)
		for _, q := range queries {
			want, _ := oracleRun(serial, q)
			got, _ := oracleRun(ex, q)
			if !rowsEqual(want, got) {
				t.Errorf("workers=%d %q:\nserial:  %v\nsharded: %v", workers, q, want, got)
			}
		}
	}
}

// ExecStats must expose how the query was sharded: worker count, morsel
// cut, per-morsel row counts summing to the total, and the cost-based part
// order.
func TestShardedExecStats(t *testing.T) {
	g := chainGraph(100)
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(25))
	res, err := ex.Run(`MATCH (p:Person) WHERE p.idx >= 0 RETURN p.idx`, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Exec
	if !st.Sharded || st.ShardWorkers != 4 {
		t.Fatalf("Sharded=%v ShardWorkers=%d, want true/4", st.Sharded, st.ShardWorkers)
	}
	if st.Morsels != 4 || st.MorselSize != 25 {
		t.Fatalf("Morsels=%d MorselSize=%d, want 4/25", st.Morsels, st.MorselSize)
	}
	if len(st.ShardRows) != 4 {
		t.Fatalf("ShardRows = %v, want 4 entries", st.ShardRows)
	}
	total := 0
	for _, n := range st.ShardRows {
		total += n
	}
	if total != len(res.Rows) {
		t.Errorf("sum(ShardRows) = %d, want %d", total, len(res.Rows))
	}
	out := st.String()
	if want := "shards: 4 worker(s)"; !strings.Contains(out, want) {
		t.Errorf("ExecStats.String() missing %q:\n%s", want, out)
	}

	// The aggregate fast path reports shard stats too.
	res, err = ex.Run(`MATCH (p:Person) RETURN count(*) AS n`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exec.Sharded || res.Exec.ShardWorkers != 4 {
		t.Errorf("aggregate: Sharded=%v ShardWorkers=%d, want true/4", res.Exec.Sharded, res.Exec.ShardWorkers)
	}
	if res.FirstInt("n") != 100 {
		t.Errorf("sharded count = %d, want 100", res.FirstInt("n"))
	}
}

// A sharded query against a mutated graph must see the post-mutation state
// (executors hold no candidate caches across runs).
func TestShardedSeesMutations(t *testing.T) {
	g := chainGraph(50)
	ex := NewExecutor(g)
	ex.SetShardWorkers(4)
	count := func() int64 {
		res, err := ex.Run(`MATCH (p:Person) RETURN count(*) AS n`, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.FirstInt("n")
	}
	if got := count(); got != 50 {
		t.Fatalf("initial count = %d", got)
	}
	g.AddNode([]string{"Person"}, graph.Props{"idx": graph.NewInt(999)})
	if got := count(); got != 51 {
		t.Errorf("count after AddNode = %d, want 51", got)
	}
}
