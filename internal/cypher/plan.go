package cypher

import (
	"sort"

	"github.com/graphrules/graphrules/internal/graph"
)

// This file implements cost-based ordering for MATCH clauses: whole pattern
// parts are executed smallest-anchor-first, and each part may be reversed so
// matching starts from its cheaper end. Estimates come from the same index
// stats the matcher scans (label buckets, label+property posting lists, edge
// type counts), so the plan and the execution never disagree about what a
// seek would touch. Reordering changes only the order rows are produced in,
// never the result set: every candidate is still re-checked by the matcher,
// and relationship uniqueness is symmetric under part order and direction.

// matchPlan is the planned execution of one MATCH clause's pattern list.
type matchPlan struct {
	// parts in execution order; reversed entries are fresh copies, the
	// source AST is never mutated (it is shared via the plan cache).
	parts    []*PatternPart
	order    []int     // parts[i] was Patterns[order[i]]
	reversed []bool    // parts[i] runs right-to-left relative to the source
	est      []float64 // anchor cardinality estimate per planned part
	// reordered is true when any part moved or flipped relative to source
	// order, i.e. when row order may differ from the naive plan.
	reordered bool
}

// identityPlan plans the parts exactly as written.
func identityPlan(parts []*PatternPart) *matchPlan {
	p := &matchPlan{parts: parts}
	p.order = make([]int, len(parts))
	p.reversed = make([]bool, len(parts))
	p.est = make([]float64, len(parts))
	for i := range parts {
		p.order[i] = i
		p.est[i] = -1 // unestimated
	}
	return p
}

// planMatch orders the clause's pattern parts by estimated cost. bound holds
// the variable names already bound when the clause runs; ranges holds the
// clause's seekable WHERE intervals (nil when range pushdown is off), which
// sharpen anchor estimates for range-selective parts. When any part's
// property expressions reference variables in ways the planner cannot prove
// safe under reordering, it falls back to the identity plan.
func (ex *Executor) planMatch(parts []*PatternPart, bound map[string]bool, ranges whereRanges) *matchPlan {
	if ex.noReorder || len(parts) == 0 {
		return identityPlan(parts)
	}
	// Verify the source order is self-consistent forward; if a part refers
	// to variables no earlier part introduces, execution-order semantics are
	// load-bearing and reordering must not touch them.
	known := copyBound(bound)
	for _, part := range parts {
		if !orientationSafe(part, false, known) {
			return identityPlan(parts)
		}
		addIntroduced(part, known)
	}

	plan := &matchPlan{}
	known = copyBound(bound)
	remaining := make([]int, len(parts))
	for i := range parts {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestPos, bestRev := -1, false
		var bestCost float64
		for pos, idx := range remaining {
			part := parts[idx]
			if !orientationSafe(part, false, known) {
				continue // depends on a part not yet placed
			}
			cost := ex.partCost(part, false, known, ranges)
			if bestPos == -1 || cost < bestCost {
				bestPos, bestRev, bestCost = pos, false, cost
			}
			if reversible(part) && orientationSafe(part, true, known) {
				if rc := ex.partCost(part, true, known, ranges); rc < bestCost {
					bestPos, bestRev, bestCost = pos, true, rc
				}
			}
		}
		if bestPos == -1 {
			// Unplaceable under current bindings (only possible with exotic
			// cross-part references); give up on reordering entirely.
			return identityPlan(parts)
		}
		idx := remaining[bestPos]
		part := parts[idx]
		if bestRev {
			part = reversePart(part)
		}
		plan.parts = append(plan.parts, part)
		plan.order = append(plan.order, idx)
		plan.reversed = append(plan.reversed, bestRev)
		plan.est = append(plan.est, ex.estAnchor(part, known, ranges))
		addIntroduced(part, known)
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}
	for i, idx := range plan.order {
		if idx != i || plan.reversed[i] {
			plan.reordered = true
			break
		}
	}
	return plan
}

// estAnchor estimates how many candidate nodes anchoring the part
// enumerates, mirroring the matcher's actual anchor choice (bound variable,
// equality or range index seek, edge-derived anchor, smallest label bucket,
// full scan). Range counts come from the same ordered postings the matcher
// seeks, so range-selective parts cost what they will actually scan.
func (ex *Executor) estAnchor(part *PatternPart, bound map[string]bool, ranges whereRanges) float64 {
	np := part.Nodes[0]
	if np.Var != "" && bound[np.Var] {
		return 1
	}
	if !ex.noPushdown && len(np.Labels) > 0 {
		best := -1
		for _, l := range np.Labels {
			for _, k := range sortedPropKeys(np.Props) {
				lit, ok := np.Props[k].(*Literal)
				if !ok {
					continue
				}
				n := len(ex.g.LabelPropNodes(l, k, lit.Value))
				if best == -1 || n < best {
					best = n
				}
			}
			if byKey := ranges.forVar(np.Var); len(byKey) > 0 {
				for _, k := range sortedRangeKeys(byKey) {
					r := byKey[k]
					if c := ex.g.LabelPropRangeCount(l, k, r.lo, r.hi); best == -1 || c < best {
						best = c
					}
				}
			}
		}
		if best >= 0 {
			return float64(best)
		}
	}
	if len(np.Labels) > 0 {
		best := -1
		for _, l := range np.Labels {
			if n := len(ex.g.LabelNodes(l)); best == -1 || n < best {
				best = n
			}
		}
		return float64(best)
	}
	if !ex.noPushdown {
		if est, ok := ex.estEdgeAnchor(part, ranges); ok {
			return est
		}
	}
	return float64(ex.g.NodeCount())
}

// estEdgeAnchor estimates the edge-derived anchor the matcher would take
// for an unlabeled, relationship-constrained part (see
// edgeAnchorCandidates); ok=false when that anchor would not engage.
func (ex *Executor) estEdgeAnchor(part *PatternPart, ranges whereRanges) (float64, bool) {
	if len(part.Rels) == 0 {
		return 0, false
	}
	rel := part.Rels[0]
	if rel.IsVarLength() || len(rel.Types) == 0 {
		return 0, false
	}
	eq := constRelProps(rel)
	rr := ranges.forVar(rel.Var)
	if len(eq) == 0 && len(rr) == 0 {
		return 0, false
	}
	eqKeys := make([]string, 0, len(eq))
	for k := range eq {
		eqKeys = append(eqKeys, k)
	}
	sort.Strings(eqKeys)
	total := 0
	for _, t := range rel.Types {
		best := -1
		for _, k := range eqKeys {
			b := graph.ValueBound(eq[k], true)
			if c := ex.g.TypePropRangeCount(t, k, b, b); best == -1 || c < best {
				best = c
			}
		}
		for _, k := range sortedRangeKeys(rr) {
			r := rr[k]
			if c := ex.g.TypePropRangeCount(t, k, r.lo, r.hi); best == -1 || c < best {
				best = c
			}
		}
		total += best
	}
	if rel.Direction == DirBoth {
		total *= 2
	}
	if n := ex.g.NodeCount(); total >= n {
		return 0, false
	}
	return float64(total), true
}

// partCost estimates the matching work of one part in the given orientation:
// anchor cardinality times per-hop fanout times target-label selectivity.
func (ex *Executor) partCost(part *PatternPart, reversed bool, bound map[string]bool, ranges whereRanges) float64 {
	p := part
	if reversed {
		p = reversePart(part)
	}
	total := float64(ex.g.NodeCount())
	if total < 1 {
		total = 1
	}
	cost := ex.estAnchor(p, bound, ranges)
	for i, rel := range p.Rels {
		fanout := ex.relFanout(rel) / total
		if fanout < 0.01 {
			fanout = 0.01 // keep longer chains from rounding to free
		}
		sel := 1.0
		target := p.Nodes[i+1]
		if target.Var != "" && bound[target.Var] {
			sel = 1 / total
		} else if len(target.Labels) > 0 {
			best := -1
			for _, l := range target.Labels {
				if n := len(ex.g.LabelNodes(l)); best == -1 || n < best {
					best = n
				}
			}
			sel = float64(best) / total
		}
		cost *= fanout * total * sel
	}
	return cost
}

// relFanout estimates how many edges one expansion of rel examines across
// the whole graph (the union of its admissible types).
func (ex *Executor) relFanout(rel *RelPattern) float64 {
	if len(rel.Types) == 0 {
		return float64(ex.g.EdgeCount())
	}
	n := 0
	for _, t := range rel.Types {
		n += len(ex.g.EdgesWithType(t))
	}
	return float64(n)
}

// reversible reports whether flipping the part end-for-end is semantically
// invisible. Variable-length relationships are excluded: their path variable
// binds the traversed edge IDs in order, which reversal would flip.
func reversible(part *PatternPart) bool {
	if len(part.Rels) == 0 {
		return false // nothing to gain
	}
	for _, r := range part.Rels {
		if r.IsVarLength() {
			return false
		}
	}
	return true
}

// reversePart returns a fresh copy of the part walked right-to-left, with
// every relationship direction flipped. Shared NodePattern/RelPattern
// internals (labels, props) are reused read-only.
func reversePart(part *PatternPart) *PatternPart {
	n := len(part.Nodes)
	rp := &PatternPart{
		Nodes: make([]*NodePattern, n),
		Rels:  make([]*RelPattern, len(part.Rels)),
	}
	for i, np := range part.Nodes {
		rp.Nodes[n-1-i] = np
	}
	for i, rel := range part.Rels {
		flipped := *rel
		switch rel.Direction {
		case DirOut:
			flipped.Direction = DirIn
		case DirIn:
			flipped.Direction = DirOut
		}
		rp.Rels[len(part.Rels)-1-i] = &flipped
	}
	return rp
}

// orientationSafe reports whether matching the part in the given orientation
// only ever evaluates property expressions whose variables are already
// bound: either before the clause, or earlier along the walk itself.
func orientationSafe(part *PatternPart, reversed bool, bound map[string]bool) bool {
	p := part
	if reversed {
		p = reversePart(part)
	}
	seen := copyBound(bound)
	check := func(props map[string]Expr) bool {
		for _, e := range props {
			for v := range exprVars(e) {
				if !seen[v] {
					return false
				}
			}
		}
		return true
	}
	for i, np := range p.Nodes {
		if !check(np.Props) {
			return false
		}
		if np.Var != "" {
			seen[np.Var] = true
		}
		if i < len(p.Rels) {
			rel := p.Rels[i]
			if !check(rel.Props) {
				return false
			}
			if rel.Var != "" {
				seen[rel.Var] = true
			}
		}
	}
	return true
}

// addIntroduced marks the part's variables as bound.
func addIntroduced(part *PatternPart, bound map[string]bool) {
	for _, np := range part.Nodes {
		if np.Var != "" {
			bound[np.Var] = true
		}
	}
	for _, rel := range part.Rels {
		if rel.Var != "" {
			bound[rel.Var] = true
		}
	}
}

func copyBound(bound map[string]bool) map[string]bool {
	out := make(map[string]bool, len(bound))
	for k, v := range bound {
		if v {
			out[k] = true
		}
	}
	return out
}

func sortedPropKeys(props map[string]Expr) []string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// exprVars collects every variable name an expression references, including
// variables inside pattern predicates.
func exprVars(e Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(Expr)
	walkPart := func(p *PatternPart) {
		for _, np := range p.Nodes {
			if np.Var != "" {
				out[np.Var] = true
			}
			for _, pe := range np.Props {
				walk(pe)
			}
		}
		for _, rel := range p.Rels {
			if rel.Var != "" {
				out[rel.Var] = true
			}
			for _, pe := range rel.Props {
				walk(pe)
			}
		}
	}
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
			return
		case *Variable:
			out[x.Name] = true
		case *PropAccess:
			walk(x.Target)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.E)
		case *Neg:
			walk(x.E)
		case *IsNull:
			walk(x.E)
		case *HasLabels:
			walk(x.E)
		case *FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ListLit:
			for _, el := range x.Elems {
				walk(el)
			}
		case *Index:
			walk(x.Target)
			walk(x.Sub)
		case *CaseExpr:
			walk(x.Operand)
			for i := range x.Whens {
				walk(x.Whens[i])
				walk(x.Thens[i])
			}
			walk(x.Else)
		case *PatternPred:
			walkPart(x.Pattern)
		}
	}
	walk(e)
	return out
}
