package cypher

import (
	"strings"
	"sync"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

func fp(t *testing.T, src string) *Footprint {
	t.Helper()
	f, err := FootprintOf(src)
	if err != nil {
		t.Fatalf("FootprintOf(%q): %v", src, err)
	}
	return f
}

func TestFootprintExtraction(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{
			"MATCH (p:Person) RETURN count(p) AS n",
			"nodes:[Person] edges:[] keys:[]",
		},
		{
			"MATCH (p:Person) WHERE p.age > 30 RETURN p.name",
			"nodes:[Person] edges:[] keys:[age name]",
		},
		{
			"MATCH (a:User)-[r:MEMBER_OF]->(g:Group) RETURN count(r) AS n",
			"nodes:[Group User] edges:[MEMBER_OF] keys:[]",
		},
		{
			// Unlabeled node widens the node side only.
			"MATCH (n) RETURN count(n) AS n",
			"nodes:any edges:[] keys:[]",
		},
		{
			// Untyped rel widens the edge side.
			"MATCH (a:User)-[r]->(b:User) RETURN count(r) AS n",
			"nodes:[User] edges:any keys:[]",
		},
		{
			// Inline props are key reads.
			"MATCH (p:Person {id: 1}) RETURN count(p) AS n",
			"nodes:[Person] edges:[] keys:[id]",
		},
		{
			// keys() widens the key set.
			"MATCH (p:Person) RETURN keys(p) AS k",
			"nodes:[Person] edges:[] keys:all",
		},
		{
			// Label predicate in WHERE reads that label's membership.
			"MATCH (n:User) WHERE n:Admin RETURN count(n) AS n",
			"nodes:[Admin User] edges:[] keys:[]",
		},
		{
			// Pattern predicate contributes its pattern; the bound-var
			// reference (u) is syntactically unlabeled, so the node side
			// conservatively widens (scope analysis could tighten this).
			"MATCH (u:User) WHERE (u)-[:OWNS]->(:Device) RETURN count(u) AS n",
			"nodes:any edges:[OWNS] keys:[]",
		},
		{
			"CREATE (n:X) RETURN n",
			"nodes:any edges:any keys:all mutates",
		},
	}
	for _, c := range cases {
		if got := fp(t, c.src).String(); got != c.want {
			t.Errorf("footprint(%q)\n got %s\nwant %s", c.src, got, c.want)
		}
	}
}

// deltaFor applies mutate to a fresh graph (after setup) and returns the
// delta of the LAST committed epoch.
func deltaFor(t *testing.T, setup, mutate func(g *graph.Graph)) *graph.Delta {
	t.Helper()
	g := graph.New("d")
	if setup != nil {
		setup(g)
	}
	var last *graph.Delta
	defer g.OnCommit(func(d *graph.Delta) { last = d })()
	mutate(g)
	if last == nil {
		t.Fatal("mutation committed no epoch")
	}
	return last
}

func TestFootprintIntersects(t *testing.T) {
	addPerson := func(g *graph.Graph) { g.AddNode([]string{"Person"}, graph.Props{"age": graph.NewInt(1)}) }

	personCount := fp(t, "MATCH (p:Person) RETURN count(p) AS n")
	personAge := fp(t, "MATCH (p:Person) WHERE p.age > 30 RETURN count(p) AS n")
	memberOf := fp(t, "MATCH (a:User)-[r:MEMBER_OF]->(g:Group) RETURN count(r) AS n")

	// Structural node change under the matched label: intersects.
	d := deltaFor(t, nil, addPerson)
	if !personCount.Intersects(d) || !personAge.Intersects(d) {
		t.Error("Person add must intersect Person queries")
	}
	if memberOf.Intersects(d) {
		t.Error("Person add must not intersect MEMBER_OF query")
	}

	// Property change on an unread key: count(p) is label-only, age query
	// reads age — neither reads "city".
	d = deltaFor(t, addPerson, func(g *graph.Graph) {
		_ = g.SetNodeProp(g.Nodes()[0], "city", graph.NewString("x"))
	})
	if personCount.Intersects(d) {
		t.Error("city change must not intersect count-only query")
	}
	if personAge.Intersects(d) {
		t.Error("city change must not intersect age query")
	}

	// Property change on the read key: intersects the age query only.
	d = deltaFor(t, addPerson, func(g *graph.Graph) {
		_ = g.SetNodeProp(g.Nodes()[0], "age", graph.NewInt(50))
	})
	if personCount.Intersects(d) {
		t.Error("age change must not intersect count-only query")
	}
	if !personAge.Intersects(d) {
		t.Error("age change must intersect age query")
	}

	// Edge epoch under a different type: no intersection.
	d = deltaFor(t, func(g *graph.Graph) {
		a := g.AddNode([]string{"User"}, nil)
		b := g.AddNode([]string{"Group"}, nil)
		g.MustAddEdge(a.ID, b.ID, []string{"OWNS"}, nil)
	}, func(g *graph.Graph) {
		g.RemoveEdge(g.Edges()[0])
	})
	if memberOf.Intersects(d) {
		t.Error("OWNS removal must not intersect MEMBER_OF query")
	}

	// Matching edge type: intersects (and the endpoint labels too).
	d = deltaFor(t, func(g *graph.Graph) {
		g.AddNode([]string{"User"}, nil)
		g.AddNode([]string{"Group"}, nil)
	}, func(g *graph.Graph) {
		ids := g.Nodes()
		g.MustAddEdge(ids[0], ids[1], []string{"MEMBER_OF"}, nil)
	})
	if !memberOf.Intersects(d) {
		t.Error("MEMBER_OF add must intersect MEMBER_OF query")
	}

	// AddNodeLabels: a node gaining Person must intersect Person queries
	// (structural under old + new labels).
	d = deltaFor(t, func(g *graph.Graph) {
		g.AddNode([]string{"Other"}, nil)
	}, func(g *graph.Graph) {
		_ = g.AddNodeLabels(g.Nodes()[0], "Person")
	})
	if !personCount.Intersects(d) {
		t.Error("label gain must intersect Person query")
	}

	// Unlabeled-node query intersects any structural node change.
	anyNode := fp(t, "MATCH (n) RETURN count(n) AS n")
	d = deltaFor(t, nil, addPerson)
	if !anyNode.Intersects(d) {
		t.Error("unlabeled query must intersect any node add")
	}

	// Mutating queries intersect everything.
	mut := fp(t, "CREATE (n:Z) RETURN n")
	if !mut.Intersects(&graph.Delta{}) {
		t.Error("mutating query must always intersect")
	}
}

func TestFootprintMerge(t *testing.T) {
	f := fp(t, "MATCH (p:Person) RETURN count(p) AS n")
	f.Merge(fp(t, "MATCH (a:User)-[r:MEMBER_OF]->(g:Group) WHERE r.since > 0 RETURN count(r) AS n"))
	want := "nodes:[Group Person User] edges:[MEMBER_OF] keys:[since]"
	if got := f.String(); got != want {
		t.Errorf("merged footprint %s, want %s", got, want)
	}
}

// TestSnapshotPinStableScan: with WithSnapshotPin, a query result is a
// function of the epoch at execution start — a writer committing between
// two executions changes the result, but the pinned view inside one
// execution is stable even under heavy concurrent commits.
func TestSnapshotPinStableScan(t *testing.T) {
	g := graph.New("pin")
	for i := 0; i < 200; i++ {
		g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
	}
	ex := NewExecutor(g, WithSnapshotPin(true), WithShardWorkers(2), WithMorselSize(16))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
			ids := g.Nodes()
			g.RemoveNode(ids[len(ids)-1])
		}
	}()

	for iter := 0; iter < 100; iter++ {
		// Both aggregates in ONE query must observe the same epoch: with a
		// live graph a writer could commit between clause evaluations of
		// two queries, but within one pinned execution count parity holds.
		res, err := ex.Run("MATCH (n:N) RETURN count(n) AS n", nil)
		if err != nil {
			t.Fatal(err)
		}
		n := res.Rows[0][res.Column("n")].Val.Int()
		if n < 200 || n > 201 {
			t.Fatalf("count %d outside [200, 201]", n)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotPinMutationsStayLive: CREATE under a pinned executor still
// writes to the live graph and is visible afterwards.
func TestSnapshotPinMutationsStayLive(t *testing.T) {
	g := graph.New("pinmut")
	ex := NewExecutor(g, WithSnapshotPin(true))
	if _, err := ex.Run("CREATE (n:Made {x: 1}) RETURN n", nil); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 1 {
		t.Fatalf("live graph has %d nodes", g.NodeCount())
	}
	res, err := ex.Run("MATCH (n:Made) RETURN count(n) AS n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][res.Column("n")].Val.Int() != 1 {
		t.Fatal("pinned read does not see earlier committed write")
	}
}

// TestFootprintUnknownWidens: defensive widening renders as wild.
func TestFootprintUnknownWidens(t *testing.T) {
	f := NewFootprint()
	f.widen()
	if !f.Wild() {
		t.Fatal("widen did not wild")
	}
	if !strings.Contains(f.String(), "nodes:any") {
		t.Fatalf("String: %s", f.String())
	}
}
