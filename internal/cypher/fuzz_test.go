package cypher

import (
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// FuzzParse checks that the parser never panics and that whatever parses
// also round-trips through its String rendering. Run the seed corpus with
// plain `go test`; extend with `go test -fuzz=FuzzParse ./internal/cypher`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`MATCH (n) RETURN n`,
		`MATCH (a:User)-[r:POSTS]->(b:Tweet) WHERE a.id > 1 RETURN count(*) AS n`,
		`MATCH (a)-[*1..3]->(b) RETURN b`,
		`OPTIONAL MATCH (a {k: 'v'}) WHERE a.x IS NULL RETURN DISTINCT a.x ORDER BY a.x DESC SKIP 1 LIMIT 2`,
		`UNWIND [1, 2.5, 'x', null, [true]] AS v RETURN collect(DISTINCT v)`,
		`CREATE (a:X {n: 1})-[:R {w: 2}]->(b)`,
		`MATCH (n) SET n.a = n.b + 1, n:Lbl DETACH DELETE n`,
		`MATCH (n) WHERE NOT (n)-[:R]->(:X) AND n.s =~ '^a.*$' OR n.k IN [1,2] RETURN CASE WHEN n.x THEN 1 ELSE 2 END`,
		"MATCH (n:`weird label`) RETURN n.`odd key`",
		`RETURN $p + -1 % 2 * 3 / 4`,
		`MATCH (n) RETURN size(n.list[0]) // comment`,
		`/* block */ RETURN 1;`,
		`MATCH (a)<-[:R|:S]-(b) RETURN exists((a)-[:T]->(b))`,
		`)(((`,
		`MATCH`,
		`RETURN '\x'`,
		`RETURN 'unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("String() of a parsed query failed to re-parse:\nsrc: %q\nout: %q\nerr: %v", src, text, err)
		}
		if q2.String() != text {
			t.Fatalf("String() not a fixed point:\n1: %q\n2: %q", text, q2.String())
		}
	})
}

// FuzzExecute checks the executor never panics on parseable input against
// a small graph: errors are acceptable, crashes are not.
func FuzzExecute(f *testing.F) {
	seeds := []string{
		`MATCH (u:User) RETURN count(*)`,
		`MATCH (u:User)-[:FOLLOWS]->(v) RETURN v.name ORDER BY v.name LIMIT 2`,
		`MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c > 1 RETURN count(*)`,
		`UNWIND range(1, 3) AS x RETURN sum(x)`,
		`MATCH (n) WHERE n.text CONTAINS 'hello' RETURN n`,
		`RETURN 1/0`,
		`MATCH (a)-[*]->(b) RETURN count(*)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := socialGraph()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 500 {
			return // keep per-case work bounded
		}
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Execute against a copy-free read path; mutations are fine since
		// each failure case is independent of graph size invariants.
		_, _ = NewExecutor(g).Execute(q, map[string]graph.Value{"p": graph.NewInt(1)})
	})
}
