package cypher

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError reports a lexical or grammatical error with its byte offset in
// the query text.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cypher: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

// Lex tokenizes a query. It returns a SyntaxError for malformed input
// (unterminated strings, stray characters).
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src}
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		// next() leaves the cursor exactly one past the token's last source
		// byte (leading space/comments are skipped before Pos is recorded).
		tok.End = lx.pos
		toks = append(toks, tok)
		if tok.Type == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByteAt(1) == '*':
			start := l.pos
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return &SyntaxError{Pos: start, Msg: "unterminated block comment"}
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Type: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]

	// Decode a full rune for the identifier check: a raw byte >= 0x80 is
	// NOT a letter (rune(c) would misread 0xFF as 'ÿ' and loop forever on
	// invalid UTF-8).
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case r != utf8.RuneError && isIdentStart(r):
		return l.lexIdent(), nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c == '`':
		return l.lexBacktickIdent()
	}

	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>":
		l.pos += 2
		return Token{Type: TokNeq, Text: two, Pos: start}, nil
	case "<=":
		l.pos += 2
		return Token{Type: TokLte, Text: two, Pos: start}, nil
	case ">=":
		l.pos += 2
		return Token{Type: TokGte, Text: two, Pos: start}, nil
	case "=~":
		l.pos += 2
		return Token{Type: TokRegex, Text: two, Pos: start}, nil
	case "..":
		l.pos += 2
		return Token{Type: TokDotDot, Text: two, Pos: start}, nil
	case "!=":
		// Not official Cypher, but LLMs emit it; treat as <>.
		l.pos += 2
		return Token{Type: TokNeq, Text: "<>", Pos: start}, nil
	}

	l.pos++
	one := string(c)
	var tt TokenType
	switch c {
	case '(':
		tt = TokLParen
	case ')':
		tt = TokRParen
	case '[':
		tt = TokLBracket
	case ']':
		tt = TokRBracket
	case '{':
		tt = TokLBrace
	case '}':
		tt = TokRBrace
	case ',':
		tt = TokComma
	case ':':
		tt = TokColon
	case ';':
		tt = TokSemi
	case '.':
		tt = TokDot
	case '|':
		tt = TokPipe
	case '$':
		tt = TokDollar
	case '=':
		tt = TokEq
	case '<':
		tt = TokLt
	case '>':
		tt = TokGt
	case '+':
		tt = TokPlus
	case '-':
		tt = TokMinus
	case '*':
		tt = TokStar
	case '/':
		tt = TokSlash
	case '%':
		tt = TokPercent
	default:
		return Token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
	return Token{Type: tt, Text: one, Pos: start}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() Token {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if r == utf8.RuneError && sz == 1 {
			break // invalid UTF-8 byte; never part of an identifier
		}
		if !isIdentPart(r) {
			break
		}
		l.pos += sz
	}
	if l.pos == start {
		// Defensive: the caller guarantees an identifier start, but never
		// emit a zero-width token (it would loop the lexer forever).
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Type: TokKeyword, Text: upper, Orig: text, Pos: start}
	}
	return Token{Type: TokIdent, Text: text, Pos: start}
}

func (l *lexer) lexBacktickIdent() (Token, error) {
	start := l.pos
	l.pos++ // opening backtick
	for l.pos < len(l.src) && l.src[l.pos] != '`' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{}, &SyntaxError{Pos: start, Msg: "unterminated backquoted identifier"}
	}
	text := l.src[start+1 : l.pos]
	l.pos++ // closing backtick
	return Token{Type: TokIdent, Text: text, Pos: start}, nil
}

func (l *lexer) lexNumber() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	isFloat := false
	// A '.' starts a fraction only when followed by a digit ("1..3" must lex
	// as INT DOTDOT INT, and "n.1" is invalid anyway).
	if l.peekByte() == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9' {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		save := l.pos
		l.pos++
		if b := l.peekByte(); b == '+' || b == '-' {
			l.pos++
		}
		if d := l.peekByte(); d >= '0' && d <= '9' {
			isFloat = true
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		return Token{Type: TokFloat, Text: text, Pos: start}, nil
	}
	return Token{Type: TokInt, Text: text, Pos: start}, nil
}

func (l *lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Token{Type: TokString, Text: b.String(), Pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string"}
			}
			esc := l.src[l.pos]
			l.pos++
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"', '`':
				b.WriteByte(esc)
			default:
				// Preserve unknown escapes verbatim (regex literals such as
				// '\\d' arrive here as \d after the first unescape).
				b.WriteByte('\\')
				b.WriteByte(esc)
			}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string"}
}
