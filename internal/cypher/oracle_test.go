package cypher

// Differential oracle for the sharded, cost-reordered executor: every query
// in a corpus (a fixed schema-derived set plus seeded randomized queries)
// runs under the serial no-reorder reference configuration and under the
// full {workers 0,1,2,8} x {reorder on/off} x {range pushdown on/off} x
// {morsel size default/17} grid, and the results must agree. No-reorder
// configurations must reproduce the serial row order exactly (tag-ordered
// morsel merge preserves it, and range seeks return candidates in
// scan-equivalent order); reorder-on configurations are compared as
// canonically sorted row multisets, since part reordering is allowed to
// permute unordered results. Sharded configurations must additionally
// report ExecStats.Seeks identical to the serial run with the same
// reorder/pushdown flags: the morsel merge dedups worker seek records by
// the same identity recordSeek uses, so entries, order, Est and Rows all
// survive parallel execution unchanged.
//
// Environment knobs (all optional):
//
//	GRAPHRULES_ORACLE_SEED      generator seed (default 1)
//	GRAPHRULES_ORACLE_RANDOM    randomized queries per dataset (default 60;
//	                            CI's oracle job runs the full 200)
//	GRAPHRULES_ORACLE_ARTIFACT  file to append failing query reproductions to

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

type oracleConfig struct {
	name     string
	shard    int
	reorder  bool
	pushdown bool // range/edge pushdown (reference runs with it ON)
	morsel   int  // morsel size for sharded configs (0 = default 256)
}

// oracleGrid is every configuration compared against the serial reference:
// the full cross product of shard workers, reorder, range pushdown and
// morsel size, minus the reference configuration itself (shard 0, no
// reorder, pushdown). Morsel size only exists for sharded configurations;
// 17 is small and odd, so every dataset's anchor scans cut into many
// ragged morsels and the work-stealing reassembly is exercised hard.
var oracleGrid = buildOracleGrid()

func buildOracleGrid() []oracleConfig {
	var grid []oracleConfig
	for _, shard := range []int{0, 1, 2, 8} {
		for _, morsel := range []int{0, 17} {
			if shard == 0 && morsel != 0 {
				continue // morsel size is meaningless without workers
			}
			for _, reorder := range []bool{false, true} {
				for _, pushdown := range []bool{true, false} {
					if shard == 0 && !reorder && pushdown {
						continue // the serial reference itself
					}
					name := fmt.Sprintf("shard%d", shard)
					if reorder {
						name += "-reorder"
					} else {
						name += "-noreorder"
					}
					if !pushdown {
						name += "-nopush"
					}
					if morsel != 0 {
						name += fmt.Sprintf("-m%d", morsel)
					}
					grid = append(grid, oracleConfig{
						name: name, shard: shard, reorder: reorder, pushdown: pushdown, morsel: morsel,
					})
				}
			}
		}
	}
	return grid
}

func newOracleExecutor(g *graph.Graph, cfg oracleConfig) *Executor {
	return NewExecutor(g,
		WithShardWorkers(cfg.shard),
		WithReorder(cfg.reorder),
		WithRangePushdown(cfg.pushdown),
		WithMorselSize(cfg.morsel),
	)
}

// oracleRun executes one query and renders every result row to a canonical
// string (column order is part of the rendering, row order is preserved).
func oracleRun(ex *Executor, src string) (rows []string, errStr string) {
	rows, _, errStr = oracleRunSeeks(ex, src)
	return rows, errStr
}

// oracleRunSeeks is oracleRun plus the run's recorded index-seek stats, for
// the serial-vs-sharded seek parity comparison.
func oracleRunSeeks(ex *Executor, src string) (rows []string, seeks []SeekInfo, errStr string) {
	res, err := ex.Run(src, nil)
	if err != nil {
		return nil, nil, err.Error()
	}
	rows = make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.Hashable())
		}
		rows = append(rows, b.String())
	}
	return rows, res.Exec.Seeks, ""
}

func sortedCopy(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

func rowsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeOracleArtifact appends a failing-query reproduction to the artifact
// file named by GRAPHRULES_ORACLE_ARTIFACT, for CI upload.
func writeOracleArtifact(dataset string, seed int64, cfg, query, detail string) {
	path := os.Getenv("GRAPHRULES_ORACLE_ARTIFACT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "dataset=%s seed=%d config=%s\nquery: %s\n%s\n\n", dataset, seed, cfg, query, detail)
}

func envInt64(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

func TestDifferentialOracle(t *testing.T) {
	seed := envInt64("GRAPHRULES_ORACLE_SEED", 1)
	nRandom := int(envInt64("GRAPHRULES_ORACLE_RANDOM", 60))
	if testing.Short() && os.Getenv("GRAPHRULES_ORACLE_RANDOM") == "" {
		nRandom = 15
	}
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen, err := datasets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g := gen(datasets.Options{Seed: 42, ViolationRate: 0.03})
			sch := newOracleSchema(g)
			rng := rand.New(rand.NewSource(seed))
			corpus := sch.fixedCorpus()
			for i := 0; i < nRandom; i++ {
				corpus = append(corpus, sch.randomQuery(rng))
			}

			ref := newOracleExecutor(g, oracleConfig{shard: 0, reorder: false, pushdown: true})
			grid := make([]*Executor, len(oracleGrid))
			for i, cfg := range oracleGrid {
				grid[i] = newOracleExecutor(g, cfg)
			}

			// Queries are independent and every executor is safe for
			// concurrent use, so comparisons run on a worker pool; failures
			// are reported with the reproducing seed.
			var (
				wg   sync.WaitGroup
				next atomic.Int64
				mu   sync.Mutex
			)
			checkQuery := func(q string) {
				refRows, refSeeks, refErr := oracleRunSeeks(ref, q)
				refSorted := sortedCopy(refRows)
				// Serial Seeks per (reorder, pushdown) flag pair: sharded
				// configurations must reproduce the same-flags serial list
				// exactly. The grid iterates shard 0 first, so every pair is
				// recorded before a sharded configuration reads it.
				comboSeeks := map[[2]bool][]SeekInfo{{false, true}: refSeeks}
				for i, cfg := range oracleGrid {
					gotRows, gotSeeks, gotErr := oracleRunSeeks(grid[i], q)
					fail := func(kind, detail string) {
						mu.Lock()
						defer mu.Unlock()
						writeOracleArtifact(name, seed, cfg.name, q, detail)
						t.Errorf("%s under %s (reproduce with GRAPHRULES_ORACLE_SEED=%d):\nquery: %s\n%s",
							kind, cfg.name, seed, q, detail)
					}
					if (refErr != "") != (gotErr != "") {
						fail("error divergence", fmt.Sprintf("reference err=%q, %s err=%q", refErr, cfg.name, gotErr))
						return
					}
					if refErr != "" {
						continue // both failed; nothing further to compare
					}
					if !cfg.reorder {
						// Same written part order and tag-ordered morsel merge:
						// row order must be byte-identical to serial.
						if !rowsEqual(refRows, gotRows) {
							fail("row-order divergence", fmt.Sprintf("serial order %v\n%s order %v", refRows, cfg.name, gotRows))
							return
						}
					} else if !rowsEqual(refSorted, sortedCopy(gotRows)) {
						fail("result-set divergence", fmt.Sprintf("serial sorted %v\n%s sorted %v", refSorted, cfg.name, sortedCopy(gotRows)))
						return
					}
					key := [2]bool{cfg.reorder, cfg.pushdown}
					if cfg.shard == 0 {
						comboSeeks[key] = gotSeeks
					} else if serialSeeks, ok := comboSeeks[key]; ok && !reflect.DeepEqual(serialSeeks, gotSeeks) {
						fail("seek-stats divergence", fmt.Sprintf("serial seeks %v\n%s seeks %v", serialSeeks, cfg.name, gotSeeks))
						return
					}
				}
			}
			workers := runtime.GOMAXPROCS(0)
			if workers > len(corpus) {
				workers = len(corpus)
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(corpus) || t.Failed() {
							return
						}
						checkQuery(corpus[i])
					}
				}()
			}
			wg.Wait()
		})
	}
}

// ---------- schema-driven query generation ----------

type propSample struct {
	key string
	val graph.Value
}

type relSample struct {
	typ      string
	from, to string // primary endpoint labels of a sample edge
	count    int
	// props: deterministic edge-property samples (int/string valued only),
	// drawn from the first edges of the type — fuel for edge-index seeks.
	props []propSample
}

type oracleSchema struct {
	g      *graph.Graph
	labels []string
	count  map[string]int
	rels   []relSample
	// props: label -> deterministic samples (int/string valued only)
	props map[string][]propSample
	// intProps: label -> samples whose value is an integer
	intProps map[string][]propSample
	// strProps: label -> samples whose value is a plain string (fuel for
	// STARTS WITH prefix seeks)
	strProps map[string][]propSample
}

func newOracleSchema(g *graph.Graph) *oracleSchema {
	sch := &oracleSchema{
		g:        g,
		count:    map[string]int{},
		props:    map[string][]propSample{},
		intProps: map[string][]propSample{},
		strProps: map[string][]propSample{},
	}
	for _, l := range g.NodeLabels() {
		n := len(g.NodesWithLabel(l))
		if n == 0 {
			continue
		}
		sch.labels = append(sch.labels, l)
		sch.count[l] = n
		seen := map[string]bool{}
		nodes := g.LabelNodes(l)
		if len(nodes) > 50 {
			nodes = nodes[:50]
		}
		for _, node := range nodes {
			keys := make([]string, 0, len(node.Props))
			for k := range node.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if seen[k] {
					continue
				}
				v := node.Props[k]
				if _, ok := cypherLit(v); !ok {
					continue
				}
				seen[k] = true
				ps := propSample{key: k, val: v}
				sch.props[l] = append(sch.props[l], ps)
				if v.Kind() == graph.KindInt {
					sch.intProps[l] = append(sch.intProps[l], ps)
				}
				if v.Kind() == graph.KindString {
					sch.strProps[l] = append(sch.strProps[l], ps)
				}
			}
		}
	}
	for _, typ := range g.EdgeTypes() {
		ids := g.EdgesWithType(typ)
		if len(ids) == 0 {
			continue
		}
		e := g.Edge(ids[0])
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil || len(from.Labels) == 0 || len(to.Labels) == 0 {
			continue
		}
		rs := relSample{typ: typ, from: from.Labels[0], to: to.Labels[0], count: len(ids)}
		sample := ids
		if len(sample) > 50 {
			sample = sample[:50]
		}
		eseen := map[string]bool{}
		for _, id := range sample {
			ed := g.Edge(id)
			if ed == nil {
				continue
			}
			keys := make([]string, 0, len(ed.Props))
			for k := range ed.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if eseen[k] {
					continue
				}
				v := ed.Props[k]
				if _, ok := cypherLit(v); !ok {
					continue
				}
				eseen[k] = true
				rs.props = append(rs.props, propSample{key: k, val: v})
			}
		}
		sch.rels = append(sch.rels, rs)
	}
	return sch
}

// cypherLit renders a stored value as a Cypher literal; only int and
// "plain" string values are representable (no quoting edge cases).
func cypherLit(v graph.Value) (string, bool) {
	switch v.Kind() {
	case graph.KindInt:
		return strconv.FormatInt(v.Int(), 10), true
	case graph.KindString:
		s := v.Str()
		if strings.ContainsAny(s, `'\`) {
			return "", false
		}
		return "'" + s + "'", true
	}
	return "", false
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// fixedCorpus is the deterministic, schema-derived part of the corpus: one
// instance of every tricky shape per applicable label/relationship.
func (sch *oracleSchema) fixedCorpus() []string {
	qs := []string{
		"MATCH (a) RETURN count(*) AS n",
	}
	if sch.g.EdgeCount() <= 20000 {
		qs = append(qs, "MATCH (a)-[r]->(b) RETURN count(*) AS n")
	}
	for _, l := range sch.labels {
		qs = append(qs, fmt.Sprintf("MATCH (a:%s) RETURN count(*) AS n", l))
		for _, ps := range sch.props[l] {
			lit, _ := cypherLit(ps.val)
			qs = append(qs,
				fmt.Sprintf("MATCH (a:%s {%s: %s}) RETURN count(*) AS n", l, ps.key, lit),
				fmt.Sprintf("MATCH (a:%s) WHERE a.%s IS NULL RETURN count(*) AS n", l, ps.key),
				fmt.Sprintf("MATCH (a:%s) RETURN min(a.%s) AS mn, max(a.%s) AS mx, count(*) AS n", l, ps.key, ps.key),
			)
			if sch.count[l] <= 5000 {
				qs = append(qs, fmt.Sprintf("MATCH (a:%s) RETURN DISTINCT a.%s AS v ORDER BY v", l, ps.key))
			}
			break // one prop per label keeps the fixed corpus compact
		}
		// Range-predicate shapes: these exercise the ordered-index seek path
		// under pushdown configurations and the plain filter path without.
		if len(sch.intProps[l]) > 0 {
			ps := sch.intProps[l][0]
			v := ps.val.Int()
			qs = append(qs,
				fmt.Sprintf("MATCH (a:%s) WHERE a.%s >= %d RETURN count(*) AS n", l, ps.key, v),
				fmt.Sprintf("MATCH (a:%s) WHERE a.%s < %d RETURN count(*) AS n", l, ps.key, v),
				fmt.Sprintf("MATCH (a:%s) WHERE a.%s > %d AND a.%s <= %d RETURN count(*) AS n", l, ps.key, v-3, ps.key, v+3),
			)
			if sch.count[l] <= 5000 {
				qs = append(qs, fmt.Sprintf("MATCH (a:%s) WHERE a.%s >= %d RETURN a.%s AS x", l, ps.key, v, ps.key))
			}
		}
		if len(sch.strProps[l]) > 0 {
			ps := sch.strProps[l][0]
			if s := asciiPrefix(ps.val.Str(), 2); s != "" {
				qs = append(qs, fmt.Sprintf("MATCH (a:%s) WHERE a.%s STARTS WITH '%s' RETURN count(*) AS n", l, ps.key, s))
			}
		}
	}
	for _, r := range sch.rels {
		qs = append(qs,
			fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to),
			fmt.Sprintf("MATCH (b:%s)<-[:%s]-(a:%s) RETURN count(*) AS n", r.to, r.typ, r.from),
			fmt.Sprintf("MATCH (a:%s)-[:%s]->(a) RETURN count(*) AS n", r.from, r.typ),
		)
		if sch.count[r.from] <= 5000 {
			qs = append(qs, fmt.Sprintf(
				"MATCH (a:%s) OPTIONAL MATCH (a)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to))
		}
		if r.count <= 5000 {
			qs = append(qs, fmt.Sprintf(
				"UNWIND [1, 2] AS x MATCH (a:%s)-[:%s]->(b) RETURN count(*) AS n", r.from, r.typ))
		}
		// Edge-property shapes: inline equality, WHERE equality and WHERE
		// range on a typed relationship variable — these drive the
		// edge-index seek path for unlabeled anchors under pushdown.
		if len(r.props) > 0 && r.count <= 20000 {
			ps := r.props[0]
			lit, _ := cypherLit(ps.val)
			qs = append(qs,
				fmt.Sprintf("MATCH (a)-[r:%s {%s: %s}]->(b) RETURN count(*) AS n", r.typ, ps.key, lit),
				fmt.Sprintf("MATCH (a)-[r:%s]->(b) WHERE r.%s = %s RETURN count(*) AS n", r.typ, ps.key, lit),
			)
			if ps.val.Kind() == graph.KindInt {
				qs = append(qs, fmt.Sprintf(
					"MATCH (a)-[r:%s]->(b) WHERE r.%s >= %d RETURN count(*) AS n", r.typ, ps.key, ps.val.Int()))
				qs = append(qs, fmt.Sprintf(
					"MATCH (b)<-[r:%s]-(a) WHERE r.%s < %d RETURN count(*) AS n", r.typ, ps.key, ps.val.Int()+1))
			}
		}
	}
	return qs
}

// asciiPrefix returns up to n leading ASCII bytes of s (stopping before any
// multi-byte rune so the prefix is always a valid query literal), or "" if
// the first byte is non-ASCII.
func asciiPrefix(s string, n int) string {
	i := 0
	for i < len(s) && i < n && s[i] < 0x80 {
		i++
	}
	return s[:i]
}

// randomQuery draws one read-only query whose estimated work is bounded, so
// a 200-query corpus stays fast even on the 43k-node Twitter graph.
func (sch *oracleSchema) randomQuery(rng *rand.Rand) string {
	for {
		if q, ok := sch.tryRandomQuery(rng); ok {
			return q
		}
	}
}

func (sch *oracleSchema) tryRandomQuery(rng *rand.Rand) (string, bool) {
	switch rng.Intn(16) {
	case 0: // label count
		l := pick(rng, sch.labels)
		return fmt.Sprintf("MATCH (a:%s) RETURN count(*) AS n", l), true
	case 1: // index-seek count (pushdown + fast path)
		l := pick(rng, sch.labels)
		if len(sch.props[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[l])
		lit, _ := cypherLit(ps.val)
		return fmt.Sprintf("MATCH (a:%s {%s: %s}) RETURN count(*) AS n", l, ps.key, lit), true
	case 2: // one-hop path count, random orientation
		r := pick(rng, sch.rels)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to), true
		}
		return fmt.Sprintf("MATCH (b:%s)<-[:%s]-(a:%s) RETURN count(*) AS n", r.to, r.typ, r.from), true
	case 3: // undirected expansion
		r := pick(rng, sch.rels)
		if r.count > 10000 {
			return "", false
		}
		return fmt.Sprintf("MATCH (a:%s)-[:%s]-(b) RETURN count(*) AS n", r.from, r.typ), true
	case 4: // two-hop chain (types joined on the shared middle label)
		r1 := pick(rng, sch.rels)
		for _, r2 := range sch.rels {
			if r2.from == r1.to && r1.count+r2.count <= 15000 {
				return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s)-[:%s]->(c) RETURN count(*) AS n",
					r1.from, r1.typ, r1.to, r2.typ), true
			}
		}
		return "", false
	case 5: // WHERE on an integer property
		l := pick(rng, sch.labels)
		if len(sch.intProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.intProps[l])
		return fmt.Sprintf("MATCH (a:%s) WHERE a.%s > %d RETURN count(a.%s) AS n",
			l, ps.key, ps.val.Int()-int64(rng.Intn(5)), ps.key), true
	case 6: // DISTINCT aggregate over a property
		r := pick(rng, sch.rels)
		if len(sch.props[r.to]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[r.to])
		return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(DISTINCT b.%s) AS n",
			r.from, r.typ, r.to, ps.key), true
	case 7: // non-aggregate projection (exercises the row merge path)
		r := pick(rng, sch.rels)
		if r.count > 10000 || len(sch.props[r.from]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[r.from])
		q := fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN a.%s AS x", r.from, r.typ, r.to, ps.key)
		if rng.Intn(2) == 0 {
			q += " ORDER BY x"
		}
		return q, true
	case 8: // cartesian product of two small labels
		la, lb := pick(rng, sch.labels), pick(rng, sch.labels)
		if sch.count[la]*sch.count[lb] > 250000 {
			return "", false
		}
		return fmt.Sprintf("MATCH (a:%s), (b:%s) RETURN count(*) AS n", la, lb), true
	case 9: // cross-part bound variable (part 2 anchors on part 1's target)
		r1 := pick(rng, sch.rels)
		for _, r2 := range sch.rels {
			if r2.from == r1.to && r1.count+r2.count <= 15000 {
				return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s), (b)-[:%s]->(c) RETURN count(*) AS n",
					r1.from, r1.typ, r1.to, r2.typ), true
			}
		}
		return "", false
	case 10: // integer sum / avg (exact at any shard count)
		l := pick(rng, sch.labels)
		if len(sch.intProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.intProps[l])
		fn := pick(rng, []string{"sum", "min", "max"})
		return fmt.Sprintf("MATCH (a:%s) RETURN %s(a.%s) AS n", l, fn, ps.key), true
	case 11: // grouped WITH pipeline
		r := pick(rng, sch.rels)
		if r.count > 10000 {
			return "", false
		}
		return fmt.Sprintf(
			"MATCH (a:%s)-[:%s]->(b) WITH a, count(b) AS c WHERE c > 1 RETURN count(*) AS n",
			r.from, r.typ), true
	case 12: // ordered-index range seek (one- or two-sided)
		l := pick(rng, sch.labels)
		if len(sch.intProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.intProps[l])
		v := ps.val.Int()
		switch rng.Intn(3) {
		case 0:
			op := pick(rng, []string{">", ">=", "<", "<="})
			return fmt.Sprintf("MATCH (a:%s) WHERE a.%s %s %d RETURN count(*) AS n", l, ps.key, op, v), true
		case 1:
			lo, hi := v-int64(rng.Intn(5)), v+int64(rng.Intn(5))
			return fmt.Sprintf("MATCH (a:%s) WHERE a.%s >= %d AND a.%s < %d RETURN count(*) AS n",
				l, ps.key, lo, ps.key, hi), true
		default: // range seek feeding an expansion (reorder interplay)
			for _, r := range sch.rels {
				if r.from == l && r.count <= 10000 {
					return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b) WHERE a.%s <= %d RETURN count(*) AS n",
						l, r.typ, ps.key, v), true
				}
			}
			return "", false
		}
	case 13: // STARTS WITH prefix seek
		l := pick(rng, sch.labels)
		if len(sch.strProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.strProps[l])
		pfx := asciiPrefix(ps.val.Str(), 1+rng.Intn(3))
		if pfx == "" {
			return "", false
		}
		return fmt.Sprintf("MATCH (a:%s) WHERE a.%s STARTS WITH '%s' RETURN count(*) AS n", l, ps.key, pfx), true
	case 14: // edge-property equality seek (inline or WHERE)
		r := pick(rng, sch.rels)
		if len(r.props) == 0 || r.count > 20000 {
			return "", false
		}
		ps := pick(rng, r.props)
		lit, _ := cypherLit(ps.val)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("MATCH (a)-[r:%s {%s: %s}]->(b) RETURN count(*) AS n", r.typ, ps.key, lit), true
		}
		return fmt.Sprintf("MATCH (a)-[r:%s]->(b) WHERE r.%s = %s RETURN count(*) AS n", r.typ, ps.key, lit), true
	default: // edge-property range seek
		r := pick(rng, sch.rels)
		if r.count > 20000 {
			return "", false
		}
		var ints []propSample
		for _, ps := range r.props {
			if ps.val.Kind() == graph.KindInt {
				ints = append(ints, ps)
			}
		}
		if len(ints) == 0 {
			return "", false
		}
		ps := pick(rng, ints)
		op := pick(rng, []string{">", ">=", "<", "<="})
		return fmt.Sprintf("MATCH (a)-[r:%s]->(b) WHERE r.%s %s %d RETURN count(*) AS n",
			r.typ, ps.key, op, ps.val.Int()), true
	}
}
