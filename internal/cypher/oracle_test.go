package cypher

// Differential oracle for the sharded, cost-reordered executor: every query
// in a corpus (a fixed schema-derived set plus seeded randomized queries)
// runs under the serial no-reorder reference configuration and under a grid
// of {sharded x {1,2,8 workers}} x {reorder on/off} configurations, and the
// results must agree. No-reorder configurations must reproduce the serial
// row order exactly (contiguous shard merge preserves it); reorder-on
// configurations are compared as canonically sorted row multisets, since
// part reordering is allowed to permute unordered results.
//
// Environment knobs (all optional):
//
//	GRAPHRULES_ORACLE_SEED      generator seed (default 1)
//	GRAPHRULES_ORACLE_RANDOM    randomized queries per dataset (default 60;
//	                            CI's oracle job runs the full 200)
//	GRAPHRULES_ORACLE_ARTIFACT  file to append failing query reproductions to

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

type oracleConfig struct {
	name    string
	shard   int
	reorder bool
}

// oracleGrid is every configuration compared against the serial reference.
var oracleGrid = []oracleConfig{
	{"shard0-reorder", 0, true},
	{"shard1-noreorder", 1, false},
	{"shard1-reorder", 1, true},
	{"shard2-noreorder", 2, false},
	{"shard2-reorder", 2, true},
	{"shard8-noreorder", 8, false},
	{"shard8-reorder", 8, true},
}

func newOracleExecutor(g *graph.Graph, cfg oracleConfig) *Executor {
	ex := NewExecutor(g)
	ex.SetShardWorkers(cfg.shard)
	ex.SetReorder(cfg.reorder)
	return ex
}

// oracleRun executes one query and renders every result row to a canonical
// string (column order is part of the rendering, row order is preserved).
func oracleRun(ex *Executor, src string) (rows []string, errStr string) {
	res, err := ex.Run(src, nil)
	if err != nil {
		return nil, err.Error()
	}
	rows = make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.Hashable())
		}
		rows = append(rows, b.String())
	}
	return rows, ""
}

func sortedCopy(rows []string) []string {
	out := append([]string(nil), rows...)
	sort.Strings(out)
	return out
}

func rowsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeOracleArtifact appends a failing-query reproduction to the artifact
// file named by GRAPHRULES_ORACLE_ARTIFACT, for CI upload.
func writeOracleArtifact(dataset string, seed int64, cfg, query, detail string) {
	path := os.Getenv("GRAPHRULES_ORACLE_ARTIFACT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "dataset=%s seed=%d config=%s\nquery: %s\n%s\n\n", dataset, seed, cfg, query, detail)
}

func envInt64(name string, def int64) int64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return def
}

func TestDifferentialOracle(t *testing.T) {
	seed := envInt64("GRAPHRULES_ORACLE_SEED", 1)
	nRandom := int(envInt64("GRAPHRULES_ORACLE_RANDOM", 60))
	if testing.Short() && os.Getenv("GRAPHRULES_ORACLE_RANDOM") == "" {
		nRandom = 15
	}
	for _, name := range datasets.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen, err := datasets.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g := gen(datasets.Options{Seed: 42, ViolationRate: 0.03})
			sch := newOracleSchema(g)
			rng := rand.New(rand.NewSource(seed))
			corpus := sch.fixedCorpus()
			for i := 0; i < nRandom; i++ {
				corpus = append(corpus, sch.randomQuery(rng))
			}

			ref := newOracleExecutor(g, oracleConfig{shard: 0, reorder: false})
			grid := make([]*Executor, len(oracleGrid))
			for i, cfg := range oracleGrid {
				grid[i] = newOracleExecutor(g, cfg)
			}

			// Queries are independent and every executor is safe for
			// concurrent use, so comparisons run on a worker pool; failures
			// are reported with the reproducing seed.
			var (
				wg   sync.WaitGroup
				next atomic.Int64
				mu   sync.Mutex
			)
			checkQuery := func(q string) {
				refRows, refErr := oracleRun(ref, q)
				refSorted := sortedCopy(refRows)
				for i, cfg := range oracleGrid {
					gotRows, gotErr := oracleRun(grid[i], q)
					fail := func(kind, detail string) {
						mu.Lock()
						defer mu.Unlock()
						writeOracleArtifact(name, seed, cfg.name, q, detail)
						t.Errorf("%s under %s (reproduce with GRAPHRULES_ORACLE_SEED=%d):\nquery: %s\n%s",
							kind, cfg.name, seed, q, detail)
					}
					if (refErr != "") != (gotErr != "") {
						fail("error divergence", fmt.Sprintf("reference err=%q, %s err=%q", refErr, cfg.name, gotErr))
						return
					}
					if refErr != "" {
						continue // both failed; nothing further to compare
					}
					if !cfg.reorder {
						// Same written part order and contiguous shard merge:
						// row order must be byte-identical to serial.
						if !rowsEqual(refRows, gotRows) {
							fail("row-order divergence", fmt.Sprintf("serial order %v\n%s order %v", refRows, cfg.name, gotRows))
							return
						}
						continue
					}
					if !rowsEqual(refSorted, sortedCopy(gotRows)) {
						fail("result-set divergence", fmt.Sprintf("serial sorted %v\n%s sorted %v", refSorted, cfg.name, sortedCopy(gotRows)))
						return
					}
				}
			}
			workers := runtime.GOMAXPROCS(0)
			if workers > len(corpus) {
				workers = len(corpus)
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(corpus) || t.Failed() {
							return
						}
						checkQuery(corpus[i])
					}
				}()
			}
			wg.Wait()
		})
	}
}

// ---------- schema-driven query generation ----------

type propSample struct {
	key string
	val graph.Value
}

type relSample struct {
	typ      string
	from, to string // primary endpoint labels of a sample edge
	count    int
}

type oracleSchema struct {
	g      *graph.Graph
	labels []string
	count  map[string]int
	rels   []relSample
	// props: label -> deterministic samples (int/string valued only)
	props map[string][]propSample
	// intProps: label -> samples whose value is an integer
	intProps map[string][]propSample
}

func newOracleSchema(g *graph.Graph) *oracleSchema {
	sch := &oracleSchema{
		g:        g,
		count:    map[string]int{},
		props:    map[string][]propSample{},
		intProps: map[string][]propSample{},
	}
	for _, l := range g.NodeLabels() {
		n := len(g.NodesWithLabel(l))
		if n == 0 {
			continue
		}
		sch.labels = append(sch.labels, l)
		sch.count[l] = n
		seen := map[string]bool{}
		nodes := g.LabelNodes(l)
		if len(nodes) > 50 {
			nodes = nodes[:50]
		}
		for _, node := range nodes {
			keys := make([]string, 0, len(node.Props))
			for k := range node.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if seen[k] {
					continue
				}
				v := node.Props[k]
				if _, ok := cypherLit(v); !ok {
					continue
				}
				seen[k] = true
				ps := propSample{key: k, val: v}
				sch.props[l] = append(sch.props[l], ps)
				if v.Kind() == graph.KindInt {
					sch.intProps[l] = append(sch.intProps[l], ps)
				}
			}
		}
	}
	for _, typ := range g.EdgeTypes() {
		ids := g.EdgesWithType(typ)
		if len(ids) == 0 {
			continue
		}
		e := g.Edge(ids[0])
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil || len(from.Labels) == 0 || len(to.Labels) == 0 {
			continue
		}
		sch.rels = append(sch.rels, relSample{typ: typ, from: from.Labels[0], to: to.Labels[0], count: len(ids)})
	}
	return sch
}

// cypherLit renders a stored value as a Cypher literal; only int and
// "plain" string values are representable (no quoting edge cases).
func cypherLit(v graph.Value) (string, bool) {
	switch v.Kind() {
	case graph.KindInt:
		return strconv.FormatInt(v.Int(), 10), true
	case graph.KindString:
		s := v.Str()
		if strings.ContainsAny(s, `'\`) {
			return "", false
		}
		return "'" + s + "'", true
	}
	return "", false
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// fixedCorpus is the deterministic, schema-derived part of the corpus: one
// instance of every tricky shape per applicable label/relationship.
func (sch *oracleSchema) fixedCorpus() []string {
	qs := []string{
		"MATCH (a) RETURN count(*) AS n",
	}
	if sch.g.EdgeCount() <= 20000 {
		qs = append(qs, "MATCH (a)-[r]->(b) RETURN count(*) AS n")
	}
	for _, l := range sch.labels {
		qs = append(qs, fmt.Sprintf("MATCH (a:%s) RETURN count(*) AS n", l))
		for _, ps := range sch.props[l] {
			lit, _ := cypherLit(ps.val)
			qs = append(qs,
				fmt.Sprintf("MATCH (a:%s {%s: %s}) RETURN count(*) AS n", l, ps.key, lit),
				fmt.Sprintf("MATCH (a:%s) WHERE a.%s IS NULL RETURN count(*) AS n", l, ps.key),
				fmt.Sprintf("MATCH (a:%s) RETURN min(a.%s) AS mn, max(a.%s) AS mx, count(*) AS n", l, ps.key, ps.key),
			)
			if sch.count[l] <= 5000 {
				qs = append(qs, fmt.Sprintf("MATCH (a:%s) RETURN DISTINCT a.%s AS v ORDER BY v", l, ps.key))
			}
			break // one prop per label keeps the fixed corpus compact
		}
	}
	for _, r := range sch.rels {
		qs = append(qs,
			fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to),
			fmt.Sprintf("MATCH (b:%s)<-[:%s]-(a:%s) RETURN count(*) AS n", r.to, r.typ, r.from),
			fmt.Sprintf("MATCH (a:%s)-[:%s]->(a) RETURN count(*) AS n", r.from, r.typ),
		)
		if sch.count[r.from] <= 5000 {
			qs = append(qs, fmt.Sprintf(
				"MATCH (a:%s) OPTIONAL MATCH (a)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to))
		}
		if r.count <= 5000 {
			qs = append(qs, fmt.Sprintf(
				"UNWIND [1, 2] AS x MATCH (a:%s)-[:%s]->(b) RETURN count(*) AS n", r.from, r.typ))
		}
	}
	return qs
}

// randomQuery draws one read-only query whose estimated work is bounded, so
// a 200-query corpus stays fast even on the 43k-node Twitter graph.
func (sch *oracleSchema) randomQuery(rng *rand.Rand) string {
	for {
		if q, ok := sch.tryRandomQuery(rng); ok {
			return q
		}
	}
}

func (sch *oracleSchema) tryRandomQuery(rng *rand.Rand) (string, bool) {
	switch rng.Intn(12) {
	case 0: // label count
		l := pick(rng, sch.labels)
		return fmt.Sprintf("MATCH (a:%s) RETURN count(*) AS n", l), true
	case 1: // index-seek count (pushdown + fast path)
		l := pick(rng, sch.labels)
		if len(sch.props[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[l])
		lit, _ := cypherLit(ps.val)
		return fmt.Sprintf("MATCH (a:%s {%s: %s}) RETURN count(*) AS n", l, ps.key, lit), true
	case 2: // one-hop path count, random orientation
		r := pick(rng, sch.rels)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(*) AS n", r.from, r.typ, r.to), true
		}
		return fmt.Sprintf("MATCH (b:%s)<-[:%s]-(a:%s) RETURN count(*) AS n", r.to, r.typ, r.from), true
	case 3: // undirected expansion
		r := pick(rng, sch.rels)
		if r.count > 10000 {
			return "", false
		}
		return fmt.Sprintf("MATCH (a:%s)-[:%s]-(b) RETURN count(*) AS n", r.from, r.typ), true
	case 4: // two-hop chain (types joined on the shared middle label)
		r1 := pick(rng, sch.rels)
		for _, r2 := range sch.rels {
			if r2.from == r1.to && r1.count+r2.count <= 15000 {
				return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s)-[:%s]->(c) RETURN count(*) AS n",
					r1.from, r1.typ, r1.to, r2.typ), true
			}
		}
		return "", false
	case 5: // WHERE on an integer property
		l := pick(rng, sch.labels)
		if len(sch.intProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.intProps[l])
		return fmt.Sprintf("MATCH (a:%s) WHERE a.%s > %d RETURN count(a.%s) AS n",
			l, ps.key, ps.val.Int()-int64(rng.Intn(5)), ps.key), true
	case 6: // DISTINCT aggregate over a property
		r := pick(rng, sch.rels)
		if len(sch.props[r.to]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[r.to])
		return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN count(DISTINCT b.%s) AS n",
			r.from, r.typ, r.to, ps.key), true
	case 7: // non-aggregate projection (exercises the row merge path)
		r := pick(rng, sch.rels)
		if r.count > 10000 || len(sch.props[r.from]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.props[r.from])
		q := fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s) RETURN a.%s AS x", r.from, r.typ, r.to, ps.key)
		if rng.Intn(2) == 0 {
			q += " ORDER BY x"
		}
		return q, true
	case 8: // cartesian product of two small labels
		la, lb := pick(rng, sch.labels), pick(rng, sch.labels)
		if sch.count[la]*sch.count[lb] > 250000 {
			return "", false
		}
		return fmt.Sprintf("MATCH (a:%s), (b:%s) RETURN count(*) AS n", la, lb), true
	case 9: // cross-part bound variable (part 2 anchors on part 1's target)
		r1 := pick(rng, sch.rels)
		for _, r2 := range sch.rels {
			if r2.from == r1.to && r1.count+r2.count <= 15000 {
				return fmt.Sprintf("MATCH (a:%s)-[:%s]->(b:%s), (b)-[:%s]->(c) RETURN count(*) AS n",
					r1.from, r1.typ, r1.to, r2.typ), true
			}
		}
		return "", false
	case 10: // integer sum / avg (exact at any shard count)
		l := pick(rng, sch.labels)
		if len(sch.intProps[l]) == 0 {
			return "", false
		}
		ps := pick(rng, sch.intProps[l])
		fn := pick(rng, []string{"sum", "min", "max"})
		return fmt.Sprintf("MATCH (a:%s) RETURN %s(a.%s) AS n", l, fn, ps.key), true
	default: // grouped WITH pipeline
		r := pick(rng, sch.rels)
		if r.count > 10000 {
			return "", false
		}
		return fmt.Sprintf(
			"MATCH (a:%s)-[:%s]->(b) WITH a, count(b) AS c WHERE c > 1 RETURN count(*) AS n",
			r.from, r.typ), true
	}
}
