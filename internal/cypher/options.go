package cypher

import "time"

// Option configures an Executor at construction:
//
//	ex := cypher.NewExecutor(g,
//		cypher.WithShardWorkers(8),
//		cypher.WithPlanCacheCap(256),
//		cypher.WithRangePushdown(false),
//	)
//
// Options are the one place executor knobs are defined; the legacy Set*
// methods are deprecated shims over them, and the graphrules facade and
// mining.Config forward []Option verbatim, so a new knob added here is
// immediately reachable from every API layer.
type Option func(*Executor)

// WithIndexPushdown toggles the label+property equality index pushdown (on
// by default). Disabling it forces plain label-bucket scans and also
// disables range pushdown, which rides on the same matcher gate.
func WithIndexPushdown(on bool) Option {
	return func(ex *Executor) { ex.noPushdown = !on }
}

// WithRangePushdown toggles the ordered-index range pushdown (on by
// default): inequality and STARTS WITH conjuncts in WHERE, plus
// relationship-property constraints, become index range seeks.
func WithRangePushdown(on bool) Option {
	return func(ex *Executor) { ex.noRangePushdown = !on }
}

// WithCountFastPath toggles the single-aggregate fast path (on by default).
func WithCountFastPath(on bool) Option {
	return func(ex *Executor) { ex.noCountFast = !on }
}

// WithReorder toggles cost-based pattern-part ordering (on by default).
// Disabling it pins the written part order and orientation, which also pins
// the serial row order — the differential oracle's reference mode.
func WithReorder(on bool) Option {
	return func(ex *Executor) { ex.noReorder = !on }
}

// WithShardWorkers configures sharded MATCH execution: eligible anchor
// scans are partitioned across n workers and merged in shard order,
// preserving the serial row order. n <= 0 keeps the plain serial path;
// n == 1 runs the shard machinery with a single shard (useful for
// differential tests).
func WithShardWorkers(n int) Option {
	return func(ex *Executor) {
		if n < 0 {
			n = 0
		}
		ex.shardWorkers = n
	}
}

// WithMorselSize sets how many anchor candidates each morsel of a sharded
// scan covers (default 256). Shard workers steal morsels from a shared
// queue and per-morsel outputs are reassembled in candidate order, so the
// size only trades scheduling overhead against load balance — it never
// changes results. n <= 0 restores the default.
func WithMorselSize(n int) Option {
	return func(ex *Executor) {
		if n < 0 {
			n = 0
		}
		ex.morselSize = n
	}
}

// WithPlanCacheCap bounds the plan cache to n entries, evicting
// least-recently-used plans beyond the cap. n <= 0 keeps the default cap.
func WithPlanCacheCap(n int) Option {
	return func(ex *Executor) { ex.setPlanCacheCap(n) }
}

// WithMaxRows caps the number of rows one query may materialize (matched
// rows, OPTIONAL padding rows, UNWIND expansions) summed across all shard
// workers. Exceeding it kills the query with a *ResourceExhaustedError
// carrying the partial ExecStats. n <= 0 disables the cap (default).
// A query that finishes under the cap is byte-identical to ungoverned.
func WithMaxRows(n int) Option {
	return func(ex *Executor) {
		if n < 0 {
			n = 0
		}
		ex.maxRows = n
	}
}

// WithMemoryBudget bounds a query's approximate retained allocation:
// materialized rows and aggregate-state elements charge an estimated byte
// cost against the budget as they are created. The accounting is
// deliberately coarse — it bounds order-of-magnitude blowups (runaway
// cartesian products, unbounded collect()) rather than exact footprints.
// n <= 0 disables the budget (default).
func WithMemoryBudget(n int64) Option {
	return func(ex *Executor) {
		if n < 0 {
			n = 0
		}
		ex.memBudget = n
	}
}

// WithQueryDeadline bounds one query's wall-clock execution time,
// enforced cooperatively on the same amortized stride as context polls.
// Unlike a context deadline it needs no timer goroutine per query and
// reports a typed *ResourceExhaustedError with partial stats rather than
// context.DeadlineExceeded. d <= 0 disables it (default).
func WithQueryDeadline(d time.Duration) Option {
	return func(ex *Executor) {
		if d < 0 {
			d = 0
		}
		ex.queryDeadline = d
	}
}

// WithAdmission gates every ExecuteCtx through an admission controller:
// Admit runs before the query touches the graph (its error — typically a
// typed rejection — is returned verbatim) and the returned done func is
// called with the query's final error, letting the controller classify
// completions vs budget kills. internal/governor provides the standard
// implementation. nil disables gating (default).
func WithAdmission(a Admission) Option {
	return func(ex *Executor) { ex.admission = a }
}

// WithSnapshotPin pins every read-only query to the graph epoch current
// when its execution starts: the scan runs against a frozen snapshot view,
// so concurrent epoch commits never change what one query observes
// mid-scan. Mutating queries (CREATE/SET/DELETE) always run on the live
// graph regardless of this option. Off by default — without concurrent
// writers the live graph is the same view for free.
func WithSnapshotPin(on bool) Option {
	return func(ex *Executor) { ex.snapshotPin = on }
}
