package cypher

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// socialGraph builds a small Twitter-like fixture:
//
//	alice, bob, carol : User      (alice follows bob, bob follows carol,
//	                               carol follows carol — a self-follow)
//	t1, t2, t3        : Tweet     (alice posts t1 & t2, bob posts t3;
//	                               t3 retweets t1; t2 has no text)
//	h1                : Hashtag   (t1 tagged h1)
func socialGraph() *graph.Graph {
	g := graph.New("social")
	alice := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(1), "name": graph.NewString("alice"), "verified": graph.NewBool(true)})
	bob := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(2), "name": graph.NewString("bob"), "verified": graph.NewBool(false)})
	carol := g.AddNode([]string{"User"}, graph.Props{"id": graph.NewInt(3), "name": graph.NewString("carol")})
	t1 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(101), "text": graph.NewString("hello world"), "createdAt": graph.NewInt(1000)})
	t2 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(102), "createdAt": graph.NewInt(2000)})
	t3 := g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(103), "text": graph.NewString("re: hello"), "createdAt": graph.NewInt(500)})
	h1 := g.AddNode([]string{"Hashtag"}, graph.Props{"name": graph.NewString("intro")})

	g.MustAddEdge(alice.ID, bob.ID, []string{"FOLLOWS"}, graph.Props{"since": graph.NewInt(2019)})
	g.MustAddEdge(bob.ID, carol.ID, []string{"FOLLOWS"}, nil)
	g.MustAddEdge(carol.ID, carol.ID, []string{"FOLLOWS"}, nil) // violation: self-follow
	g.MustAddEdge(alice.ID, t1.ID, []string{"POSTS"}, nil)
	g.MustAddEdge(alice.ID, t2.ID, []string{"POSTS"}, nil)
	g.MustAddEdge(bob.ID, t3.ID, []string{"POSTS"}, nil)
	g.MustAddEdge(t3.ID, t1.ID, []string{"RETWEETS"}, nil) // violation: t3 older than t1
	g.MustAddEdge(t1.ID, h1.ID, []string{"TAGS"}, nil)
	return g
}

func run(t *testing.T, g *graph.Graph, src string) *Result {
	t.Helper()
	res, err := NewExecutor(g).Run(src, nil)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

func runErr(t *testing.T, g *graph.Graph, src string) error {
	t.Helper()
	_, err := NewExecutor(g).Run(src, nil)
	if err == nil {
		t.Fatalf("Run(%q): expected error", src)
	}
	return err
}

func TestScanByLabel(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Errorf("users = %d", res.FirstInt("c"))
	}
	res = run(t, g, `MATCH (n) RETURN count(*) AS c`)
	if res.FirstInt("c") != 7 {
		t.Errorf("all nodes = %d", res.FirstInt("c"))
	}
	res = run(t, g, `MATCH (x:Ghost) RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Error("unknown label should match nothing")
	}
}

func TestExpand(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User)-[:POSTS]->(t:Tweet) RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Errorf("posts = %d", res.FirstInt("c"))
	}
	// Direction flip: tweets do not post users.
	res = run(t, g, `MATCH (u:User)<-[:POSTS]-(t:Tweet) RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Errorf("reversed posts = %d, want 0", res.FirstInt("c"))
	}
	// Undirected sees both.
	res = run(t, g, `MATCH (u:User)-[:POSTS]-(t:Tweet) RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Errorf("undirected posts = %d", res.FirstInt("c"))
	}
	// Two-hop.
	res = run(t, g, `MATCH (u:User)-[:POSTS]->(:Tweet)-[:TAGS]->(h:Hashtag) RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "alice" {
		t.Errorf("two-hop result wrong: %+v", res.Rows)
	}
}

func TestSelfLoopAndWhere(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User)-[:FOLLOWS]->(u) RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "carol" {
		t.Errorf("self-follow detection wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (a:User)-[:FOLLOWS]->(b:User) WHERE a = b RETURN count(*) AS c`)
	if res.FirstInt("c") != 1 {
		t.Error("entity equality in WHERE failed")
	}
	res = run(t, g, `MATCH (a:User)-[:FOLLOWS]->(b:User) WHERE a <> b RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("entity inequality failed")
	}
}

func TestWhereNullSemantics(t *testing.T) {
	g := socialGraph()
	// carol has no verified property: comparison yields null, row dropped.
	res := run(t, g, `MATCH (u:User) WHERE u.verified = false RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "bob" {
		t.Errorf("null-compare filter wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (u:User) WHERE u.verified IS NULL RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "carol" {
		t.Errorf("IS NULL wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (t:Tweet) WHERE t.text IS NOT NULL RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("IS NOT NULL wrong")
	}
	// NOT null is null -> dropped.
	res = run(t, g, `MATCH (u:User) WHERE NOT (u.verified = false) RETURN count(*) AS c`)
	if res.FirstInt("c") != 1 {
		t.Errorf("NOT over null = %d, want 1 (alice only)", res.FirstInt("c"))
	}
}

func TestAggregation(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User)-[:POSTS]->(t:Tweet) WITH u.name AS name, count(*) AS c RETURN name, c ORDER BY name`)
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	if res.Value(0, "name").Str() != "alice" || res.Int(0, "c") != 2 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Value(1, "name").Str() != "bob" || res.Int(1, "c") != 1 {
		t.Errorf("row 1 = %v", res.Rows[1])
	}
}

func TestAggregateFunctions(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (t:Tweet) RETURN count(t.text) AS nonNull, count(*) AS total, min(t.createdAt) AS mn, max(t.createdAt) AS mx, sum(t.createdAt) AS sm, avg(t.createdAt) AS av`)
	if res.Int(0, "nonNull") != 2 || res.Int(0, "total") != 3 {
		t.Error("count variants wrong")
	}
	if res.Int(0, "mn") != 500 || res.Int(0, "mx") != 2000 || res.Int(0, "sm") != 3500 {
		t.Error("min/max/sum wrong")
	}
	if av := res.Value(0, "av"); av.Kind() != graph.KindFloat || av.Float() < 1166 || av.Float() > 1167 {
		t.Errorf("avg = %v", av)
	}
}

func TestCollectAndDistinct(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User)-[:FOLLOWS]->(v:User) RETURN collect(v.name) AS names`)
	names := res.Value(0, "names")
	if names.Kind() != graph.KindList || len(names.List()) != 3 {
		t.Fatalf("collect = %v", names)
	}
	res = run(t, g, `MATCH (u:User)-[:FOLLOWS]->(v:User) RETURN count(DISTINCT v.name) AS c`)
	if res.FirstInt("c") != 2 {
		t.Errorf("count distinct = %d", res.FirstInt("c"))
	}
	res = run(t, g, `MATCH (u:User)-[:FOLLOWS]->(v:User) RETURN DISTINCT v.name AS n ORDER BY n`)
	if res.Len() != 2 || res.Value(0, "n").Str() != "bob" {
		t.Errorf("DISTINCT rows wrong: %+v", res.Rows)
	}
}

func TestCountOverEmptyInput(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (x:Ghost) RETURN count(*) AS c`)
	if res.Len() != 1 || res.FirstInt("c") != 0 {
		t.Errorf("count over empty = %+v", res.Rows)
	}
	// With a grouping key there are no groups, hence no rows.
	res = run(t, g, `MATCH (x:Ghost) RETURN x.name AS n, count(*) AS c`)
	if res.Len() != 0 {
		t.Errorf("grouped count over empty should have no rows, got %d", res.Len())
	}
}

func TestOptionalMatch(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) OPTIONAL MATCH (u)-[:POSTS]->(t:Tweet) RETURN u.name AS n, count(t) AS c ORDER BY n`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	// carol posts nothing -> t null -> count(t) = 0.
	if res.Value(2, "n").Str() != "carol" || res.Int(2, "c") != 0 {
		t.Errorf("carol row = %v", res.Rows[2])
	}
	if res.Int(0, "c") != 2 {
		t.Errorf("alice count = %d", res.Int(0, "c"))
	}
}

func TestPatternPredicate(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) WHERE NOT (u)-[:POSTS]->(:Tweet) RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "carol" {
		t.Errorf("NOT pattern wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (u:User) WHERE (u)-[:FOLLOWS]->(u) RETURN u.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "carol" {
		t.Errorf("pattern pred self-loop wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (u:User) WHERE exists((u)-[:POSTS]->()) RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("exists(pattern) wrong")
	}
}

func TestRegexMatch(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) WHERE u.name =~ '[a-c].*' RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Error("regex should match all three names")
	}
	res = run(t, g, `MATCH (u:User) WHERE u.name =~ 'ali' RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Error("=~ must be a full match")
	}
	err := runErr(t, g, `MATCH (u:User) WHERE u.name =~ '[' RETURN count(*)`)
	if !strings.Contains(err.Error(), "regular expression") {
		t.Errorf("bad regex error = %v", err)
	}
}

func TestStringOperators(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (t:Tweet) WHERE t.text STARTS WITH 'hello' RETURN count(*) AS c`)
	if res.FirstInt("c") != 1 {
		t.Error("STARTS WITH wrong")
	}
	res = run(t, g, `MATCH (t:Tweet) WHERE t.text CONTAINS 'hello' RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("CONTAINS wrong")
	}
	res = run(t, g, `RETURN 'a' + 'b' + 1 AS s`)
	if res.Value(0, "s").Str() != "ab1" {
		t.Errorf("concat = %v", res.Value(0, "s"))
	}
}

func TestInListAndFunctions(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) WHERE u.id IN [1, 3] RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("IN list wrong")
	}
	res = run(t, g, `RETURN size([1,2,3]) AS s, size('abcd') AS t, head([7,8]) AS h, last([7,8]) AS l`)
	if res.Int(0, "s") != 3 || res.Int(0, "t") != 4 || res.Int(0, "h") != 7 || res.Int(0, "l") != 8 {
		t.Error("size/head/last wrong")
	}
	res = run(t, g, `RETURN toString(42) AS a, toInteger('17') AS b, coalesce(null, 5) AS c, abs(-3) AS d`)
	if res.Value(0, "a").Str() != "42" || res.Int(0, "b") != 17 || res.Int(0, "c") != 5 || res.Int(0, "d") != 3 {
		t.Error("conversions wrong")
	}
	res = run(t, g, `MATCH (u:User {id: 1}) RETURN labels(u) AS ls, id(u) AS i`)
	if ls := res.Value(0, "ls"); ls.Kind() != graph.KindList || ls.List()[0].Str() != "User" {
		t.Error("labels() wrong")
	}
	res = run(t, g, `MATCH (:User {id:1})-[r:FOLLOWS]->() RETURN type(r) AS t, r.since AS s`)
	if res.Value(0, "t").Str() != "FOLLOWS" || res.Int(0, "s") != 2019 {
		t.Error("type()/edge prop wrong")
	}
}

func TestArithmetic(t *testing.T) {
	g := graph.New("a")
	res := run(t, g, `RETURN 7 / 2 AS idiv, 7.0 / 2 AS fdiv, 7 % 3 AS m, -(3) AS neg, 2 * 3 + 1 AS x`)
	if res.Int(0, "idiv") != 3 || res.Value(0, "fdiv").Float() != 3.5 || res.Int(0, "m") != 1 || res.Int(0, "neg") != -3 || res.Int(0, "x") != 7 {
		t.Errorf("arithmetic wrong: %+v", res.Rows)
	}
	err := runErr(t, g, `RETURN 1 / 0`)
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("div by zero error = %v", err)
	}
}

func TestOrderBySkipLimit(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) RETURN u.id AS id ORDER BY id DESC`)
	if res.Int(0, "id") != 3 || res.Int(2, "id") != 1 {
		t.Errorf("order desc wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (u:User) RETURN u.id AS id ORDER BY id SKIP 1 LIMIT 1`)
	if res.Len() != 1 || res.Int(0, "id") != 2 {
		t.Errorf("skip/limit wrong: %+v", res.Rows)
	}
}

func TestUnwind(t *testing.T) {
	g := graph.New("u")
	res := run(t, g, `UNWIND [1, 2, 3] AS x RETURN sum(x) AS s`)
	if res.FirstInt("s") != 6 {
		t.Error("unwind sum wrong")
	}
	res = run(t, g, `UNWIND [] AS x RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Error("unwind empty wrong")
	}
	res = run(t, g, `UNWIND range(1, 4) AS x RETURN count(*) AS c`)
	if res.FirstInt("c") != 4 {
		t.Error("unwind range wrong")
	}
}

func TestCreateSetDelete(t *testing.T) {
	g := graph.New("m")
	ex := NewExecutor(g)
	res, err := ex.Run(`CREATE (a:User {id: 1})-[:KNOWS {w: 2}]->(b:User {id: 2})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesCreated != 2 || res.Stats.EdgesCreated != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatal("graph not mutated")
	}
	res, err = ex.Run(`MATCH (a:User {id: 1}) SET a.name = 'alice', a:Person`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PropertiesSet != 1 || res.Stats.LabelsAdded != 1 {
		t.Errorf("set stats = %+v", res.Stats)
	}
	r2, _ := ex.Run(`MATCH (a:Person) RETURN a.name AS n`, nil)
	if r2.Len() != 1 || r2.Value(0, "n").Str() != "alice" {
		t.Error("SET did not apply")
	}
	// DELETE with relationships requires DETACH.
	if _, err := ex.Run(`MATCH (a:User {id: 1}) DELETE a`, nil); err == nil {
		t.Error("DELETE with rels should fail")
	}
	res, err = ex.Run(`MATCH (a:User {id: 1}) DETACH DELETE a`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesDeleted != 1 || res.Stats.EdgesDeleted != 1 {
		t.Errorf("delete stats = %+v", res.Stats)
	}
	if g.NodeCount() != 1 {
		t.Error("node not deleted")
	}
}

func TestCreateFromMatch(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	before := g.EdgeCount()
	_, err := ex.Run(`MATCH (a:User {id: 1}), (b:User {id: 3}) CREATE (a)-[:FOLLOWS]->(b)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != before+1 {
		t.Error("edge not created")
	}
}

func TestMultipleMatchJoin(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (a:User {name: 'alice'}) MATCH (a)-[:POSTS]->(t) RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Error("join via bound var wrong")
	}
	// Cartesian product when disconnected.
	res = run(t, g, `MATCH (a:User) MATCH (h:Hashtag) RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Error("cartesian wrong")
	}
}

func TestRelationshipUniqueness(t *testing.T) {
	g := graph.New("ru")
	a := g.AddNode([]string{"N"}, nil)
	b := g.AddNode([]string{"N"}, nil)
	g.MustAddEdge(a.ID, b.ID, []string{"R"}, nil)
	// A single edge cannot serve both hops of a two-hop pattern.
	res := run(t, g, `MATCH (x)-[:R]-(y)-[:R]-(z) RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Errorf("relationship uniqueness violated: %d", res.FirstInt("c"))
	}
	// Two distinct edges are fine.
	c := g.AddNode([]string{"N"}, nil)
	g.MustAddEdge(b.ID, c.ID, []string{"R"}, nil)
	res = run(t, g, `MATCH (x)-[:R]->(y)-[:R]->(z) RETURN count(*) AS c`)
	if res.FirstInt("c") != 1 {
		t.Errorf("two-hop = %d", res.FirstInt("c"))
	}
}

func TestVarLengthPaths(t *testing.T) {
	g := graph.New("vl")
	n := make([]*graph.Node, 4)
	for i := range n {
		n[i] = g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
	}
	for i := 0; i < 3; i++ {
		g.MustAddEdge(n[i].ID, n[i+1].ID, []string{"R"}, nil)
	}
	res := run(t, g, `MATCH (a:N {i: 0})-[:R*1..3]->(b) RETURN count(*) AS c`)
	if res.FirstInt("c") != 3 {
		t.Errorf("1..3 reach = %d, want 3", res.FirstInt("c"))
	}
	res = run(t, g, `MATCH (a:N {i: 0})-[:R*2]->(b) RETURN b.i AS i`)
	if res.Len() != 1 || res.Int(0, "i") != 2 {
		t.Errorf("*2 wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (a:N {i: 0})-[r:R*]->(b:N {i: 3}) RETURN size(r) AS hops`)
	if res.Len() != 1 || res.Int(0, "hops") != 3 {
		t.Errorf("path var wrong: %+v", res.Rows)
	}
}

func TestParameters(t *testing.T) {
	g := socialGraph()
	res, err := NewExecutor(g).Run(`MATCH (u:User) WHERE u.id = $id RETURN u.name AS n`,
		map[string]graph.Value{"id": graph.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Value(0, "n").Str() != "bob" {
		t.Errorf("param query wrong: %+v", res.Rows)
	}
	if _, err := NewExecutor(g).Run(`RETURN $missing`, map[string]graph.Value{}); err == nil {
		t.Error("missing param should fail")
	}
}

func TestCaseExpression(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) RETURN u.name AS n, CASE WHEN u.verified THEN 'v' ELSE 'u' END AS f ORDER BY n`)
	if res.Value(0, "f").Str() != "v" || res.Value(1, "f").Str() != "u" {
		t.Errorf("case wrong: %+v", res.Rows)
	}
	// carol: u.verified null -> not true -> ELSE branch.
	if res.Value(2, "f").Str() != "u" {
		t.Error("case with null operand wrong")
	}
}

func TestRuntimeErrors(t *testing.T) {
	g := socialGraph()
	for _, src := range []string{
		`MATCH (n) RETURN boom(n)`,
		`MATCH (n) RETURN undefined_var`,
		`MATCH (n) WHERE n.id RETURN n`,                            // non-boolean WHERE
		`MATCH (n) RETURN count(*) + max(n.id) MATCH (m) RETURN m`, // RETURN not last
		`RETURN sum('x')`,
	} {
		if _, err := NewExecutor(g).Run(src, nil); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestUniquenessQueryShape(t *testing.T) {
	// The canonical generated uniqueness-violation query shape.
	g := graph.New("uq")
	g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(1)})
	g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(1)}) // dup
	g.AddNode([]string{"Tweet"}, graph.Props{"id": graph.NewInt(2)})
	res := run(t, g, `MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c > 1 RETURN count(*) AS violations`)
	if res.FirstInt("violations") != 1 {
		t.Errorf("violations = %d", res.FirstInt("violations"))
	}
	res = run(t, g, `MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c = 1 RETURN count(*) AS ok`)
	if res.FirstInt("ok") != 1 {
		t.Errorf("ok groups = %d", res.FirstInt("ok"))
	}
}

func TestEndpointLabelQueryShape(t *testing.T) {
	g := socialGraph()
	// Every POSTS edge must end at a Tweet.
	res := run(t, g, `MATCH (a)-[:POSTS]->(b) WHERE NOT b:Tweet RETURN count(*) AS bad`)
	if res.FirstInt("bad") != 0 {
		t.Error("endpoint check wrong")
	}
	res = run(t, g, `MATCH (a)-[:POSTS]->(b) WHERE b:Tweet RETURN count(*) AS good`)
	if res.FirstInt("good") != 3 {
		t.Error("endpoint positive check wrong")
	}
}

func TestTemporalQueryShape(t *testing.T) {
	g := socialGraph()
	// Retweet must be newer than the original: t3(500) retweets t1(1000) -> violation.
	res := run(t, g, `MATCH (r:Tweet)-[:RETWEETS]->(o:Tweet) WHERE r.createdAt < o.createdAt RETURN count(*) AS bad`)
	if res.FirstInt("bad") != 1 {
		t.Errorf("temporal violations = %d", res.FirstInt("bad"))
	}
}

func TestResultHelpers(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User {id: 1}) RETURN u, u.name AS name`)
	if res.Column("name") != 1 || res.Column("nope") != -1 {
		t.Error("Column lookup wrong")
	}
	if res.Value(5, "name").Kind() != graph.KindNull {
		t.Error("out-of-range Value should be null")
	}
	if !strings.Contains(res.Rows[0][0].Display(), "User") {
		t.Error("node Display wrong")
	}
	empty := &Result{}
	if empty.FirstInt("x") != 0 || empty.FirstInt("") != 0 {
		t.Error("FirstInt on empty result")
	}
}

func TestWithStar(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User {id: 1}) WITH *, u.name AS n RETURN n, u.id AS id`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "alice" || res.Int(0, "id") != 1 {
		t.Errorf("WITH * wrong: %+v", res.Rows)
	}
}

func TestDatumHashableDistinct(t *testing.T) {
	g := socialGraph()
	n1 := g.Node(0)
	if NodeDatum(n1).Hashable() == ValDatum(graph.NewInt(0)).Hashable() {
		t.Error("node 0 must not collide with int 0")
	}
	if NodeDatum(n1).Hashable() == EdgeDatum(g.Edge(0)).Hashable() {
		t.Error("node 0 must not collide with edge 0")
	}
}
