package cypher

import (
	"context"
	"sync"

	"github.com/graphrules/graphrules/internal/graph"
)

// This file implements sharded MATCH execution: the anchor-candidate range
// of the first planned pattern part (a label-bucket snapshot or index
// posting list) is partitioned into contiguous chunks, one worker matches
// each chunk with its own matcher and evaluation context, and the per-shard
// results are merged in chunk order. Because the chunks partition the serial
// candidate sequence contiguously, concatenating shard outputs in shard
// order reproduces exactly the serial row order, and merging per-shard
// aggregate states in shard order reproduces the serial accumulation.

// recordPlan publishes the chosen part order and estimates to the execution
// stats so Explain and the REPL profile command can show them.
func recordPlan(m *matcher, plan *matchPlan) {
	if m.exec == nil || len(plan.order) == 0 {
		return
	}
	m.exec.PartOrder = append([]int(nil), plan.order...)
	m.exec.PartEst = append([]float64(nil), plan.est...)
	m.exec.Reordered = plan.reordered
}

// anchorUnbound reports whether the first planned part anchors on a variable
// not already bound in row — the precondition for partitioning the anchor
// scan. A bound anchor means the scan has exactly one candidate and there is
// nothing to shard.
func anchorUnbound(parts []*PatternPart, row Row) bool {
	if len(parts) == 0 {
		return false
	}
	np := parts[0].Nodes[0]
	if np.Var == "" {
		return true
	}
	_, bound := row[np.Var]
	return !bound
}

// shardChunks splits the candidate slice into at most `workers` contiguous
// chunks of near-equal size, preserving candidate order across the
// concatenation of the chunks.
func shardChunks(cands []*graph.Node, workers int) [][]*graph.Node {
	if len(cands) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	size := (len(cands) + workers - 1) / workers
	chunks := make([][]*graph.Node, 0, workers)
	for i := 0; i < len(cands); i += size {
		end := i + size
		if end > len(cands) {
			end = len(cands)
		}
		chunks = append(chunks, cands[i:end])
	}
	return chunks
}

// mergeWorkerStats folds a shard worker's scan counters into the main
// execution stats. Plan/shard metadata stays with the main stats.
func mergeWorkerStats(dst, src *ExecStats) {
	if dst == nil {
		return
	}
	dst.RowsScanned += src.RowsScanned
	dst.IndexSeeks += src.IndexSeeks
	dst.IndexRows += src.IndexRows
	dst.RangeSeeks += src.RangeSeeks
	dst.RangeRows += src.RangeRows
	dst.EdgeSeeks += src.EdgeSeeks
	dst.EdgeRows += src.EdgeRows
	for _, info := range src.Seeks {
		dup := false
		for _, s := range dst.Seeks {
			if s.Var == info.Var && s.Label == info.Label && s.Key == info.Key &&
				s.Bounds == info.Bounds && s.Edge == info.Edge {
				dup = true
				break
			}
		}
		if !dup {
			dst.Seeks = append(dst.Seeks, info)
		}
	}
}

// matchAllAnchored is matchAll restricted to a pre-enumerated anchor
// candidate slice for the first part. It shares one relationship-uniqueness
// scope across all parts (per-MATCH semantics) and accounts the RowsScanned
// for the slice it walks; the caller performed the anchor enumeration (and
// recorded any index seek) exactly once for all shards.
func (m *matcher) matchAllAnchored(parts []*PatternPart, cands []*graph.Node, row Row, cb func(Row) error) error {
	if m.exec != nil {
		m.exec.RowsScanned += len(cands)
	}
	first := parts[0]
	np := first.Nodes[0]
	used := map[graph.ID]bool{}

	// rest continues with parts[1:] once part 0 is fully matched.
	rest := func(r Row) error {
		var rec func(i int, r Row) error
		rec = func(i int, r Row) error {
			if i == len(parts) {
				return cb(r)
			}
			return m.matchPart(parts[i], r, used, func(r2 Row) error {
				return rec(i+1, r2)
			})
		}
		return rec(1, r)
	}

	for _, n := range cands {
		if err := m.pollCtx(); err != nil {
			return err
		}
		ok, err := m.nodeSatisfies(np, n, row)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if np.Var != "" {
			row[np.Var] = NodeDatum(n)
		}
		if len(first.Rels) == 0 {
			err = rest(row)
		} else {
			err = m.expandRel(first, 0, n, row, used, rest)
		}
		if np.Var != "" {
			delete(row, np.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// shardWorker is the per-shard private state: its own matcher (stats sink)
// and evaluation context (the expression regex cache is not thread-safe, so
// contexts are never shared across workers).
type shardWorker struct {
	m   *matcher
	ctx *evalCtx
}

func (ex *Executor) newShardWorker(params map[string]graph.Value, pushdown bool, ranges whereRanges, cctx context.Context) *shardWorker {
	wm := &matcher{g: ex.g, pushdown: pushdown, ranges: ranges, exec: &ExecStats{}, cctx: cctx}
	wctx := newEvalCtx(ex.g, params, wm)
	wm.ctx = wctx
	return &shardWorker{m: wm, ctx: wctx}
}

// execMatchSharded runs one MATCH clause with the anchor scan partitioned
// across the worker pool. Eligibility (single input row, unbound anchor) is
// checked by the caller. Shard outputs are concatenated in shard order,
// which preserves the serial row order; the first error in shard order is
// the serial-first error, because shards partition the candidate sequence
// contiguously and every earlier chunk completed without error.
func (ex *Executor) execMatchSharded(ctx *evalCtx, m *matcher, cl *MatchClause, plan *matchPlan, newVars []string, row Row, st *Stats) ([]Row, error) {
	st.RowsExamined++
	cands := m.anchorCandidates(plan.parts[0])
	chunks := shardChunks(cands, ex.shardWorkers)

	type shardOut struct {
		w    *shardWorker
		rows []Row
		err  error
	}
	outs := make([]shardOut, len(chunks))
	var wg sync.WaitGroup
	for si := range chunks {
		wg.Add(1)
		go func(si int, chunk []*graph.Node) {
			defer wg.Done()
			o := &outs[si]
			o.w = ex.newShardWorker(ctx.params, m.pushdown, m.ranges, m.cctx)
			wrow := row.clone()
			o.err = o.w.m.matchAllAnchored(plan.parts, chunk, wrow, func(r Row) error {
				if cl.Where != nil {
					t, err := o.w.ctx.evalBool(cl.Where, r)
					if err != nil {
						return err
					}
					if t != triTrue {
						return nil
					}
				}
				o.rows = append(o.rows, r.clone())
				return nil
			})
		}(si, chunks[si])
	}
	wg.Wait()

	var out []Row
	shardRows := make([]int, len(chunks))
	for si := range outs {
		if outs[si].err != nil {
			return nil, outs[si].err
		}
		shardRows[si] = len(outs[si].rows)
		out = append(out, outs[si].rows...)
		mergeWorkerStats(m.exec, outs[si].w.m.exec)
	}
	if m.exec != nil {
		m.exec.Sharded = true
		m.exec.ShardWorkers = ex.shardWorkers
		m.exec.ShardRows = shardRows
	}
	if len(out) == 0 && cl.Optional {
		r := row.clone()
		for _, v := range newVars {
			if _, bound := r[v]; !bound {
				r[v] = NullDatum
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// shardAggregate is the sharded count-aggregate fast path: each worker
// streams its chunk's matches into a private aggregate state and the states
// are merged in shard order into a fresh final state.
func (ex *Executor) shardAggregate(ctx *evalCtx, m *matcher, plan *matchPlan, where Expr, fc *FuncCall) (*aggState, error) {
	cands := m.anchorCandidates(plan.parts[0])
	chunks := shardChunks(cands, ex.shardWorkers)

	type shardOut struct {
		w    *shardWorker
		st   *aggState
		rows int
		err  error
	}
	outs := make([]shardOut, len(chunks))
	var wg sync.WaitGroup
	for si := range chunks {
		wg.Add(1)
		go func(si int, chunk []*graph.Node) {
			defer wg.Done()
			o := &outs[si]
			o.w = ex.newShardWorker(ctx.params, m.pushdown, m.ranges, m.cctx)
			o.st = newAggState(fc)
			o.err = o.w.m.matchAllAnchored(plan.parts, chunk, Row{}, func(r Row) error {
				if where != nil {
					t, err := o.w.ctx.evalBool(where, r)
					if err != nil {
						return err
					}
					if t != triTrue {
						return nil
					}
				}
				o.rows++
				return o.st.add(o.w.ctx, r)
			})
		}(si, chunks[si])
	}
	wg.Wait()

	final := newAggState(fc)
	shardRows := make([]int, len(chunks))
	for si := range outs {
		if outs[si].err != nil {
			return nil, outs[si].err
		}
		shardRows[si] = outs[si].rows
		if err := final.merge(outs[si].st); err != nil {
			return nil, err
		}
		mergeWorkerStats(m.exec, outs[si].w.m.exec)
	}
	if m.exec != nil {
		m.exec.Sharded = true
		m.exec.ShardWorkers = ex.shardWorkers
		m.exec.ShardRows = shardRows
	}
	return final, nil
}
