package cypher

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/graphrules/graphrules/internal/graph"
)

// This file implements morsel-driven sharded MATCH execution: the
// anchor-candidate range of the first planned pattern part (a label-bucket
// snapshot or index posting list) is cut into small fixed-size morsels,
// each tagged with its sequence index. Workers pull morsels from a shared
// queue (work-stealing: a worker that finishes a cheap morsel immediately
// grabs the next one, so a skewed hub morsel never strands the rest of the
// pool behind one contiguous chunk). Because the morsels partition the
// serial candidate sequence contiguously and outputs are reassembled in
// tag order, concatenating per-morsel rows reproduces exactly the serial
// row order — including collect() element order and DISTINCT dedup — and
// merging per-morsel aggregate states in tag order reproduces the serial
// accumulation.

// defaultMorselSize is the anchor-candidate count per morsel when the
// executor has no explicit WithMorselSize configuration. Small enough to
// balance Zipf-hub skew across workers, large enough to amortize the
// per-morsel scheduling cost.
const defaultMorselSize = 256

// morselCap returns the executor's effective morsel size.
func (ex *Executor) morselCap() int {
	if ex.morselSize > 0 {
		return ex.morselSize
	}
	return defaultMorselSize
}

// recordPlan publishes the chosen part order and estimates to the execution
// stats so Explain and the REPL profile command can show them.
func recordPlan(m *matcher, plan *matchPlan) {
	if m.exec == nil || len(plan.order) == 0 {
		return
	}
	m.exec.PartOrder = append([]int(nil), plan.order...)
	m.exec.PartEst = append([]float64(nil), plan.est...)
	m.exec.Reordered = plan.reordered
}

// anchorUnbound reports whether the first planned part anchors on a variable
// not already bound in row — the precondition for partitioning the anchor
// scan. A bound anchor means the scan has exactly one candidate and there is
// nothing to shard.
func anchorUnbound(parts []*PatternPart, row Row) bool {
	if len(parts) == 0 {
		return false
	}
	np := parts[0].Nodes[0]
	if np.Var == "" {
		return true
	}
	_, bound := row[np.Var]
	return !bound
}

// morselCut splits the candidate slice into contiguous morsels of at most
// size candidates each, preserving candidate order across the concatenation
// of the morsels. The morsel at index t covers candidates [t*size,
// (t+1)*size) — the index is the reassembly tag.
func morselCut(cands []*graph.Node, size int) [][]*graph.Node {
	if len(cands) == 0 {
		return nil
	}
	if size < 1 {
		size = defaultMorselSize
	}
	morsels := make([][]*graph.Node, 0, (len(cands)+size-1)/size)
	for i := 0; i < len(cands); i += size {
		end := i + size
		if end > len(cands) {
			end = len(cands)
		}
		morsels = append(morsels, cands[i:end])
	}
	return morsels
}

// seekIdent is the identity recordSeek dedups on: two SeekInfo entries with
// the same ident describe the same logical seek (later parts re-anchor once
// per outer row); Est and Rows are deterministic per ident.
type seekIdent struct {
	vr, label, key, bounds string
	edge                   bool
}

func seekIdentOf(s SeekInfo) seekIdent {
	return seekIdent{vr: s.Var, label: s.Label, key: s.Key, bounds: s.Bounds, edge: s.Edge}
}

// mergeWorkerStats folds a shard worker's scan counters into the main
// execution stats; plan/shard metadata stays with the main stats. Seeks
// merge by the same identity key recordSeek dedups on — (Var, Label, Key,
// Bounds, Edge), keeping the first occurrence in merge order — so the
// merged list matches the serial run's Seeks exactly: every worker records
// a given seek with identical Est/Rows (candidate enumeration is
// deterministic), each worker lists its seeks in plan execution order, and
// keep-first across workers preserves that order. seen carries the
// identity set across successive merges into the same dst, replacing the
// old O(S²) full-field scan (which also diverged from serial by treating
// Est/Rows as part of the identity).
func mergeWorkerStats(dst, src *ExecStats, seen map[seekIdent]bool) {
	if dst == nil {
		return
	}
	dst.RowsScanned += src.RowsScanned
	dst.IndexSeeks += src.IndexSeeks
	dst.IndexRows += src.IndexRows
	dst.RangeSeeks += src.RangeSeeks
	dst.RangeRows += src.RangeRows
	dst.EdgeSeeks += src.EdgeSeeks
	dst.EdgeRows += src.EdgeRows
	for _, info := range src.Seeks {
		id := seekIdentOf(info)
		if seen[id] {
			continue
		}
		seen[id] = true
		dst.Seeks = append(dst.Seeks, info)
	}
}

// matchAllAnchored is matchAll restricted to a pre-enumerated anchor
// candidate slice for the first part. It shares one relationship-uniqueness
// scope across all parts (per-MATCH semantics) and accounts the RowsScanned
// for the slice it walks; the caller performed the anchor enumeration (and
// recorded any index seek) exactly once for all morsels.
//
// The loop is batched: per-candidate work that is constant across the slice
// is hoisted out. Stats accounting happens once up front, the cancellation
// poll runs on a candidate stride instead of per candidate, and the
// anchor's property constraints — which depend only on the outer row, never
// on the (unbound) anchor variable — are evaluated once, on the first
// candidate that passes the label check, so the rest of the slice reduces
// to direct scalar comparisons. Evaluating lazily on the first
// label-passing candidate (rather than eagerly per slice) preserves the
// serial error surface: a slice where no candidate carries the labels never
// evaluates the property expressions, exactly like the serial path.
func (m *matcher) matchAllAnchored(parts []*PatternPart, cands []*graph.Node, row Row, cb func(Row) error) error {
	if len(cands) == 0 {
		return nil
	}
	if m.exec != nil {
		m.exec.RowsScanned += len(cands)
	}
	first := parts[0]
	np := first.Nodes[0]
	used := map[graph.ID]bool{}

	// rest continues with parts[1:] once part 0 is fully matched.
	rest := func(r Row) error {
		var rec func(i int, r Row) error
		rec = func(i int, r Row) error {
			if i == len(parts) {
				return cb(r)
			}
			return m.matchPart(parts[i], r, used, func(r2 Row) error {
				return rec(i+1, r2)
			})
		}
		return rec(1, r)
	}

	type propWant struct {
		key  string
		want graph.Value
	}
	var wants []propWant
	wantsReady := len(np.Props) == 0

candidates:
	for i, n := range cands {
		if i&15 == 0 {
			if err := m.pollCtx(); err != nil {
				return err
			}
		}
		for _, l := range np.Labels {
			if !n.HasLabel(l) {
				continue candidates
			}
		}
		if !wantsReady {
			wants = make([]propWant, 0, len(np.Props))
			for k, e := range np.Props {
				want, err := m.ctx.eval(e, row)
				if err != nil {
					return err
				}
				wants = append(wants, propWant{key: k, want: want.Scalar()})
			}
			wantsReady = true
		}
		for _, pw := range wants {
			if !n.Prop(pw.key).Equal(pw.want) {
				continue candidates
			}
		}
		var err error
		if np.Var != "" {
			row[np.Var] = NodeDatum(n)
		}
		if len(first.Rels) == 0 {
			err = rest(row)
		} else {
			err = m.expandRel(first, 0, n, row, used, rest)
		}
		if np.Var != "" {
			delete(row, np.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// shardWorker is the per-worker private state: its own matcher (stats
// sink), evaluation context (the expression regex cache is not thread-safe,
// so contexts are never shared across workers) and working row. One worker
// processes many morsels sequentially, reusing all three — pattern bindings
// are undone on backtrack, so the row returns to its prototype state
// between morsels.
type shardWorker struct {
	m   *matcher
	ctx *evalCtx
	row Row
}

// newShardWorker builds a worker against g — the scan's graph view, which
// under WithSnapshotPin is the pinned epoch snapshot rather than ex.g.
func (ex *Executor) newShardWorker(g *graph.Graph, params map[string]graph.Value, pushdown bool, ranges whereRanges, cctx context.Context, bud *budget) *shardWorker {
	wm := &matcher{g: g, pushdown: pushdown, ranges: ranges, exec: &ExecStats{}, cctx: cctx, bud: bud}
	wctx := newEvalCtx(g, params, wm)
	wm.ctx = wctx
	return &shardWorker{m: wm, ctx: wctx}
}

// scanMorsels drives one sharded scan of nMorsels morsels over a
// work-stealing pool of at most ex.shardWorkers workers: each worker pulls
// the next unclaimed morsel index from a shared counter and runs fn on it.
// fn must confine its side effects to the tag-indexed slot for its morsel;
// scanMorsels guarantees every fn call has returned before it does (so the
// caller may reassemble slots in tag order without synchronization).
//
// The scan runs under a context derived from the caller's: the first morsel
// error cancels it, so sibling workers stop at their next poll instead of
// finishing their morsels for nothing. Completed workers' scan stats are
// merged into m.exec unconditionally — error or not — so a failed query
// still reports the scan work it did.
//
// Error selection mirrors the serial order: if the caller's own context was
// cancelled that error wins; otherwise the lowest-tagged real (non
// cancellation-induced) morsel error is returned, which for the common
// single-error case is exactly the error serial execution would have
// surfaced first.
func (ex *Executor) scanMorsels(ctx *evalCtx, m *matcher, proto Row, nMorsels int, fn func(w *shardWorker, mi int) error) error {
	if nMorsels == 0 {
		return nil
	}
	workers := ex.shardWorkers
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers < 1 {
		workers = 1
	}

	parent := m.cctx
	if parent == nil {
		parent = context.Background()
	}
	cctx, cancel := context.WithCancel(parent)
	defer cancel()

	errs := make([]error, nMorsels)
	workerStats := make([]*ExecStats, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := ex.newShardWorker(m.g, ctx.params, m.pushdown, m.ranges, cctx, m.bud)
			w.row = proto.clone()
			workerStats[wi] = w.m.exec
			for cctx.Err() == nil {
				mi := int(next.Add(1)) - 1
				if mi >= nMorsels {
					return
				}
				if err := runMorsel(fn, w, mi); err != nil {
					errs[mi] = err
					cancel()
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	if m.exec != nil {
		seen := make(map[seekIdent]bool, len(m.exec.Seeks))
		for _, s := range m.exec.Seeks {
			seen[seekIdentOf(s)] = true
		}
		for _, ws := range workerStats {
			if ws != nil {
				mergeWorkerStats(m.exec, ws, seen)
			}
		}
	}

	if err := parent.Err(); err != nil {
		return err
	}
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			// Induced by our own cancel after a sibling's real error;
			// keep looking for that error. Retained as a fallback so a
			// (theoretically) all-cancellation outcome still errs.
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}

// runMorsel executes fn on one morsel with panic containment: a panic in
// the evaluator or matcher on this worker becomes a *PanicError assigned
// to the morsel's error slot, flowing through the same lowest-tag
// first-error selection as any other morsel failure — the process
// survives and the query fails with serial-consistent error choice.
func runMorsel(fn func(w *shardWorker, mi int) error, w *shardWorker, mi int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = recoverToError(p)
		}
	}()
	return fn(w, mi)
}

// recordMorselStats publishes the shard/morsel metadata of the last sharded
// clause. Called on success and error paths alike: a failed scan still
// reports how its anchor range was cut and what each morsel produced before
// the cancellation (unprocessed morsels report zero).
func recordMorselStats(m *matcher, workers, nMorsels, size int, perMorselRows []int) {
	if m.exec == nil {
		return
	}
	m.exec.Sharded = true
	m.exec.ShardWorkers = workers
	m.exec.ShardRows = perMorselRows
	m.exec.Morsels = nMorsels
	m.exec.MorselSize = size
}

// execMatchSharded runs one MATCH clause with the anchor scan cut into
// morsels and executed by the work-stealing pool. Eligibility (single input
// row, unbound anchor) is checked by the caller. Per-morsel outputs are
// concatenated in tag order, which preserves the serial row order because
// the morsels partition the candidate sequence contiguously.
func (ex *Executor) execMatchSharded(ctx *evalCtx, m *matcher, cl *MatchClause, plan *matchPlan, newVars []string, row Row, st *Stats) ([]Row, error) {
	st.RowsExamined++
	cands := m.anchorCandidates(plan.parts[0])
	size := ex.morselCap()
	morsels := morselCut(cands, size)

	outs := make([][]Row, len(morsels))
	err := ex.scanMorsels(ctx, m, row, len(morsels), func(w *shardWorker, mi int) error {
		return w.m.matchAllAnchored(plan.parts, morsels[mi], w.row, func(r Row) error {
			if cl.Where != nil {
				t, err := w.ctx.evalBool(cl.Where, r)
				if err != nil {
					return err
				}
				if t != triTrue {
					return nil
				}
			}
			if err := w.m.bud.chargeRow(r); err != nil {
				return err
			}
			outs[mi] = append(outs[mi], r.clone())
			return nil
		})
	})

	morselRows := make([]int, len(morsels))
	var out []Row
	for mi := range outs {
		morselRows[mi] = len(outs[mi])
		out = append(out, outs[mi]...)
	}
	recordMorselStats(m, ex.shardWorkers, len(morsels), size, morselRows)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 && cl.Optional {
		r := row.clone()
		for _, v := range newVars {
			if _, bound := r[v]; !bound {
				r[v] = NullDatum
			}
		}
		if err := m.bud.chargeRow(r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// shardAggregate is the sharded count-aggregate fast path: each morsel
// streams its matches into a private aggregate state and the states are
// merged in tag order into a fresh final state, reproducing the serial
// accumulation (including DISTINCT dedup and collect order).
func (ex *Executor) shardAggregate(ctx *evalCtx, m *matcher, plan *matchPlan, where Expr, fc *FuncCall) (*aggState, error) {
	cands := m.anchorCandidates(plan.parts[0])
	size := ex.morselCap()
	morsels := morselCut(cands, size)

	states := make([]*aggState, len(morsels))
	morselRows := make([]int, len(morsels))
	err := ex.scanMorsels(ctx, m, Row{}, len(morsels), func(w *shardWorker, mi int) error {
		st := newAggState(fc)
		states[mi] = st
		return w.m.matchAllAnchored(plan.parts, morsels[mi], w.row, func(r Row) error {
			if where != nil {
				t, err := w.ctx.evalBool(where, r)
				if err != nil {
					return err
				}
				if t != triTrue {
					return nil
				}
			}
			morselRows[mi]++
			return st.add(w.ctx, r)
		})
	})

	recordMorselStats(m, ex.shardWorkers, len(morsels), size, morselRows)
	if err != nil {
		return nil, err
	}
	final := newAggState(fc)
	for _, st := range states {
		if err := final.merge(st); err != nil {
			return nil, err
		}
	}
	return final, nil
}
