package cypher

import (
	"strings"
	"testing"
)

func TestExplainBasics(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	plan, err := ex.Explain(`MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.id > 1
		WITH u.name AS name, count(*) AS c WHERE c > 0
		RETURN name, c ORDER BY c DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"NodeRangeSeek(u:User.id > 1) ~3 candidate(s)",
		"Expand(POSTS, dir=out)",
		"~3 edge(s) of type",
		"Filter: (u.id > 1)",
		"Project (WITH): name, c [grouped aggregate]",
		"Filter: (c > 0)",
		"Project (RETURN): name, c [sort x1] [paginate]",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestExplainAnchors(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	plan, err := ex.Explain(`MATCH (n) MATCH (n)-[:FOLLOWS]->(m:User) RETURN count(*)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "AllNodesScan(n) ~7 candidate(s)") {
		t.Errorf("unlabeled scan missing:\n%s", plan)
	}
	if !strings.Contains(plan, "AnchorOnBound(n)") {
		t.Errorf("bound anchor missing:\n%s", plan)
	}
}

func TestExplainMutationsAndVarLength(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	plan, err := ex.Explain(`MATCH (a:User)-[:FOLLOWS*1..3]->(b) CREATE (a)-[:AUDITED]->(x:Log) SET x.at = 1 DETACH DELETE x`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hops 1..3", "Create (1 pattern(s))", "Set (1 item(s))", "DetachDelete (1 target(s))"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	plan, err = ex.Explain(`UNWIND [1,2] AS x RETURN x`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Unwind [1, 2] AS x") {
		t.Errorf("unwind missing:\n%s", plan)
	}
}

func TestExplainParseError(t *testing.T) {
	if _, err := NewExecutor(socialGraph()).Explain(`MATCH (`); err == nil {
		t.Error("broken query should fail to explain")
	}
}

func TestExplainSmallestLabelAnchor(t *testing.T) {
	g := socialGraph()
	// Add a second label so multi-label anchoring picks the rarer one.
	ex := NewExecutor(g)
	if _, err := ex.Run(`MATCH (u:User {id: 1}) SET u:Vip`, nil); err != nil {
		t.Fatal(err)
	}
	plan, err := ex.Explain(`MATCH (v:User:Vip) RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeByLabelScan(v:Vip) ~1 candidate(s)") {
		t.Errorf("anchor should pick the rarer label:\n%s", plan)
	}
}
