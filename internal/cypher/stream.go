package cypher

// Streaming execution: the engine-side half of the Session/Cursor API.
//
// The classic executor materializes every clause's output rows before the
// caller sees anything, which is the wrong shape for a wire protocol —
// Bolt streams RECORD messages under client-driven flow control, and a
// query returning a million rows should not retain them all server-side.
// streamFastPlan recognizes the transport workload's canonical read shape
//
//	MATCH ... [WHERE ...] RETURN <non-aggregate items> [SKIP n] [LIMIT n]
//
// and execMatchStream pipelines it end to end: each pattern match is
// projected and handed to the cursor's sink immediately, so the first row
// reaches the client while the scan is still running, result memory is
// O(channel buffer), and LIMIT stops the scan as soon as it is satisfied
// instead of scanning to completion. Queries outside the shape (WITH,
// aggregation, ORDER BY, DISTINCT, mutations, sharded executors) fall back
// to the materialized path and the cursor drains Result.Rows — observable
// behaviour is identical either way, only the delivery cadence differs.

import (
	"context"
	"errors"
)

// streamSink carries rows from an executing query to its Cursor. Emission
// blocks when the channel buffer is full — that backpressure is what lets
// a Bolt PULL with a small n pace a huge scan — and unblocks when the
// cursor's context is cancelled (Close, RESET, disconnect).
type streamSink struct {
	cctx context.Context
	cols chan []string
	rows chan []Datum
}

// streamBuffer is the per-cursor row buffer: deep enough to decouple the
// scan from per-row channel latency, small enough that an unread stream
// retains almost nothing.
const streamBuffer = 64

func newStreamSink(cctx context.Context) *streamSink {
	return &streamSink{
		cctx: cctx,
		cols: make(chan []string, 1),
		rows: make(chan []Datum, streamBuffer),
	}
}

// publishColumns announces the result header. It is delivered at most
// once; the cursor's Columns() blocks on it.
func (s *streamSink) publishColumns(cols []string) {
	select {
	case s.cols <- cols:
	default:
	}
}

// emit hands one projected row to the cursor, honoring cancellation.
func (s *streamSink) emit(row []Datum) error {
	select {
	case s.rows <- row:
		return nil
	case <-s.cctx.Done():
		return s.cctx.Err()
	}
}

// streamFastPlan recognizes a single non-optional MATCH followed by a
// RETURN of plain (non-aggregate) items with optional SKIP/LIMIT — the
// shape execMatchStream can pipeline without materializing rows. Star
// projections, DISTINCT and ORDER BY need the full row set and fall back.
func streamFastPlan(q *Query) (*MatchClause, *ReturnClause, bool) {
	if len(q.Clauses) != 2 {
		return nil, nil, false
	}
	mc, ok := q.Clauses[0].(*MatchClause)
	if !ok || mc.Optional {
		return nil, nil, false
	}
	rc, ok := q.Clauses[1].(*ReturnClause)
	if !ok {
		return nil, nil, false
	}
	p := &rc.Projection
	if p.Star || p.Distinct || len(p.OrderBy) > 0 || len(p.Items) == 0 {
		return nil, nil, false
	}
	for _, it := range p.Items {
		if ContainsAggregate(it.Expr) {
			return nil, nil, false
		}
	}
	return mc, rc, true
}

// projectionCols names the output columns of a projection item list,
// deduplicating exactly like the materialized projector.
func projectionCols(items []*ReturnItem) []string {
	cols := make([]string, len(items))
	seen := map[string]bool{}
	for i, it := range items {
		name := it.Name()
		for seen[name] {
			name += "_"
		}
		seen[name] = true
		cols[i] = name
	}
	return cols
}

// execMatchStream runs the streaming plan: pattern matches are WHERE-
// filtered, projected, charged against the row/memory budget and emitted
// to the sink one at a time. SKIP drops the first n projected rows and
// LIMIT aborts the scan once satisfied (errStopMatching), so a LIMIT 10
// over a million-node label scans only as far as its tenth match.
func (ex *Executor) execMatchStream(ctx *evalCtx, m *matcher, mc *MatchClause, rc *ReturnClause, res *Result, sink *streamSink) error {
	p := &rc.Projection
	items := p.Items
	cols := projectionCols(items)

	skip := 0
	limit := -1
	if p.Skip != nil {
		n, err := ex.evalPosInt(ctx, p.Skip, "SKIP")
		if err != nil {
			return err
		}
		skip = n
	}
	if p.Limit != nil {
		n, err := ex.evalPosInt(ctx, p.Limit, "LIMIT")
		if err != nil {
			return err
		}
		limit = n
	}

	res.Columns = cols
	res.Exec.Streamed = true
	sink.publishColumns(cols)

	if limit == 0 {
		return nil
	}

	m.ranges = ex.clauseRanges(mc.Where)
	plan := ex.planMatch(mc.Patterns, nil, m.ranges)
	recordPlan(m, plan)
	res.Stats.RowsExamined++

	emitted := 0
	err := m.matchAll(plan.parts, Row{}, func(r Row) error {
		if mc.Where != nil {
			t, err := ctx.evalBool(mc.Where, r)
			if err != nil {
				return err
			}
			if t != triTrue {
				return nil
			}
		}
		if skip > 0 {
			skip--
			return nil
		}
		vals := make([]Datum, len(items))
		for i, it := range items {
			d, err := ctx.eval(it.Expr, r)
			if err != nil {
				return err
			}
			vals[i] = d
		}
		// A streamed row is never retained server-side, but it still counts
		// against the row cap (the budget bounds client-visible output) and
		// charges the channel-resident estimate against memory.
		if err := m.bud.chargeRows(1); err != nil {
			return err
		}
		if err := m.bud.chargeMem(int64(len(vals)) * 64); err != nil {
			return err
		}
		if err := sink.emit(vals); err != nil {
			return err
		}
		emitted++
		if limit >= 0 && emitted >= limit {
			return errStopMatching
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopMatching) {
		return err
	}
	return nil
}
