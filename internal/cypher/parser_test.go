package cypher

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`MATCH (n:User) WHERE n.id >= 10 RETURN count(*) // comment`)
	if err != nil {
		t.Fatal(err)
	}
	var types []TokenType
	for _, tk := range toks {
		types = append(types, tk.Type)
	}
	want := []TokenType{
		TokKeyword, TokLParen, TokIdent, TokColon, TokIdent, TokRParen,
		TokKeyword, TokIdent, TokDot, TokIdent, TokGte, TokInt,
		TokKeyword, TokIdent, TokLParen, TokStar, TokRParen, TokEOF,
	}
	if len(types) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(types), len(want), toks)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, types[i], want[i])
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := Lex(`'a\'b' "c\nd" '\d+'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a'b" {
		t.Errorf("tok0 = %q", toks[0].Text)
	}
	if toks[1].Text != "c\nd" {
		t.Errorf("tok1 = %q", toks[1].Text)
	}
	if toks[2].Text != `\d+` {
		t.Errorf("tok2 = %q (regex escapes must survive)", toks[2].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`1 2.5 1e3 1..3`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokInt || toks[1].Type != TokFloat || toks[2].Type != TokFloat {
		t.Errorf("number kinds wrong: %v", toks[:3])
	}
	if toks[3].Type != TokInt || toks[4].Type != TokDotDot || toks[5].Type != TokInt {
		t.Errorf("range lexing wrong: %v", toks[3:6])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "`unterminated", "/* unterminated", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
	if _, err := Lex("'trailing\\"); err == nil {
		t.Error("trailing backslash should fail")
	}
}

func TestParseMatchReturn(t *testing.T) {
	q := mustParse(t, `MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.id > 5 RETURN u.name AS name, count(*) AS c`)
	if len(q.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	m, ok := q.Clauses[0].(*MatchClause)
	if !ok {
		t.Fatal("first clause should be MATCH")
	}
	if m.Optional || len(m.Patterns) != 1 || m.Where == nil {
		t.Errorf("match = %+v", m)
	}
	p := m.Patterns[0]
	if len(p.Nodes) != 2 || len(p.Rels) != 1 {
		t.Fatalf("pattern shape wrong: %s", p)
	}
	if p.Nodes[0].Var != "u" || p.Nodes[0].Labels[0] != "User" {
		t.Error("node 0 wrong")
	}
	if p.Rels[0].Direction != DirOut || p.Rels[0].Types[0] != "POSTS" {
		t.Error("rel wrong")
	}
	r := q.Clauses[1].(*ReturnClause)
	if len(r.Items) != 2 || r.Items[0].Alias != "name" || r.Items[1].Alias != "c" {
		t.Errorf("return items wrong: %+v", r.Items)
	}
}

func TestParseDirections(t *testing.T) {
	q := mustParse(t, `MATCH (a)<-[:R]-(b)-[x]-(c) RETURN a`)
	p := q.Clauses[0].(*MatchClause).Patterns[0]
	if p.Rels[0].Direction != DirIn {
		t.Error("rel 0 should be DirIn")
	}
	if p.Rels[1].Direction != DirBoth || p.Rels[1].Var != "x" {
		t.Error("rel 1 should be undirected with var x")
	}
	if _, err := Parse(`MATCH (a)<-[:R]->(b) RETURN a`); err == nil {
		t.Error("bidirectional arrow should fail")
	}
}

func TestParseVarLength(t *testing.T) {
	cases := map[string][2]int{
		`MATCH (a)-[*]->(b) RETURN a`:        {1, -1},
		`MATCH (a)-[*2]->(b) RETURN a`:       {2, 2},
		`MATCH (a)-[*1..3]->(b) RETURN a`:    {1, 3},
		`MATCH (a)-[*2..]->(b) RETURN a`:     {2, -1},
		`MATCH (a)-[*..4]->(b) RETURN a`:     {1, 4},
		`MATCH (a)-[r:T*1..2]->(b) RETURN a`: {1, 2},
	}
	for src, want := range cases {
		q := mustParse(t, src)
		r := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
		if r.MinHops != want[0] || r.MaxHops != want[1] {
			t.Errorf("%s: hops = %d..%d, want %d..%d", src, r.MinHops, r.MaxHops, want[0], want[1])
		}
		if !r.IsVarLength() {
			t.Errorf("%s: should be var-length", src)
		}
	}
}

func TestParseMultiTypeRel(t *testing.T) {
	q := mustParse(t, `MATCH (a)-[:R1|R2|:R3]->(b) RETURN a`)
	r := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
	if len(r.Types) != 3 || r.Types[2] != "R3" {
		t.Errorf("types = %v", r.Types)
	}
}

func TestParsePropsInPattern(t *testing.T) {
	q := mustParse(t, `MATCH (n:User {name: 'bob', age: 30}) RETURN n`)
	n := q.Clauses[0].(*MatchClause).Patterns[0].Nodes[0]
	if len(n.Props) != 2 {
		t.Fatalf("props = %v", n.Props)
	}
	if lit, ok := n.Props["age"].(*Literal); !ok || lit.Value.Int() != 30 {
		t.Error("age prop wrong")
	}
}

func TestParseOperatorsPrecedence(t *testing.T) {
	q := mustParse(t, `RETURN 1 + 2 * 3 = 7 AND NOT false OR true AS x`)
	e := q.Clauses[0].(*ReturnClause).Items[0].Expr
	or, ok := e.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top should be OR: %s", e.exprString())
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("left of OR should be AND")
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != OpEq {
		t.Fatal("left of AND should be =")
	}
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != OpAdd {
		t.Fatal("= lhs should be +")
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != OpMul {
		t.Fatal("+ rhs should be *")
	}
}

func TestParseComparisonVariants(t *testing.T) {
	srcs := []string{
		`MATCH (n) WHERE n.a <> 1 RETURN n`,
		`MATCH (n) WHERE n.a != 1 RETURN n`, // lexed as <>
		`MATCH (n) WHERE n.s =~ '[a-z]+' RETURN n`,
		`MATCH (n) WHERE n.s STARTS WITH 'a' AND n.s ENDS WITH 'z' RETURN n`,
		`MATCH (n) WHERE n.s CONTAINS 'mid' RETURN n`,
		`MATCH (n) WHERE n.a IN [1, 2, 3] RETURN n`,
		`MATCH (n) WHERE n.a IS NULL OR n.b IS NOT NULL RETURN n`,
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseLabelPredicate(t *testing.T) {
	q := mustParse(t, `MATCH (n) WHERE n:User:Admin RETURN n`)
	w := q.Clauses[0].(*MatchClause).Where
	hl, ok := w.(*HasLabels)
	if !ok || len(hl.Labels) != 2 || hl.Labels[1] != "Admin" {
		t.Fatalf("where = %s", w.exprString())
	}
}

func TestParsePatternPredicate(t *testing.T) {
	q := mustParse(t, `MATCH (a:User) WHERE NOT (a)-[:FOLLOWS]->(a) RETURN a`)
	w := q.Clauses[0].(*MatchClause).Where
	n, ok := w.(*Not)
	if !ok {
		t.Fatalf("where = %T", w)
	}
	if _, ok := n.E.(*PatternPred); !ok {
		t.Fatalf("inner = %T, want PatternPred", n.E)
	}
}

func TestParseExistsForms(t *testing.T) {
	for _, src := range []string{
		`MATCH (a) WHERE exists(a.name) RETURN a`,
		`MATCH (a) WHERE exists((a)-[:R]->()) RETURN a`,
		`MATCH (a) WHERE EXISTS { (a)-[:R]->(:X) } RETURN a`,
		`MATCH (a) WHERE EXISTS((a)-[:R]->(b)) RETURN a`,
	} {
		mustParse(t, src)
	}
	q := mustParse(t, `MATCH (a) WHERE exists(a.name) RETURN a`)
	w := q.Clauses[0].(*MatchClause).Where
	fc, ok := w.(*FuncCall)
	if !ok || fc.Name != "exists" {
		t.Fatalf("exists(prop) should parse as FuncCall, got %T", w)
	}
	q2 := mustParse(t, `MATCH (a) WHERE exists((a)-[:R]->()) RETURN a`)
	if _, ok := q2.Clauses[0].(*MatchClause).Where.(*PatternPred); !ok {
		t.Fatal("exists(pattern) should parse as PatternPred")
	}
}

func TestParseParenExprVsPattern(t *testing.T) {
	q := mustParse(t, `RETURN (1 + 2) * 3 AS x`)
	e := q.Clauses[0].(*ReturnClause).Items[0].Expr
	if mul, ok := e.(*Binary); !ok || mul.Op != OpMul {
		t.Fatalf("paren expr broken: %s", e.exprString())
	}
}

func TestParseWithPipeline(t *testing.T) {
	q := mustParse(t, `MATCH (n:User) WITH n.id AS id, count(*) AS c WHERE c > 1 RETURN id ORDER BY id DESC SKIP 1 LIMIT 5`)
	w := q.Clauses[1].(*WithClause)
	if len(w.Items) != 2 || w.Where == nil {
		t.Fatal("WITH shape wrong")
	}
	r := q.Clauses[2].(*ReturnClause)
	if len(r.OrderBy) != 1 || !r.OrderBy[0].Desc || r.Skip == nil || r.Limit == nil {
		t.Fatal("RETURN modifiers wrong")
	}
}

func TestParseDistinctAndStar(t *testing.T) {
	q := mustParse(t, `MATCH (n) RETURN DISTINCT n.x`)
	if !q.Clauses[1].(*ReturnClause).Distinct {
		t.Error("DISTINCT not set")
	}
	q2 := mustParse(t, `MATCH (n) RETURN *`)
	if !q2.Clauses[1].(*ReturnClause).Star {
		t.Error("Star not set")
	}
	q3 := mustParse(t, `MATCH (n) WITH *, n.x AS x RETURN x`)
	w := q3.Clauses[1].(*WithClause)
	if !w.Star || len(w.Items) != 1 {
		t.Error("WITH *, item wrong")
	}
}

func TestParseCountDistinct(t *testing.T) {
	q := mustParse(t, `MATCH (n) RETURN count(DISTINCT n.x) AS c, collect(DISTINCT n.y) AS ys`)
	items := q.Clauses[1].(*ReturnClause).Items
	if fc := items[0].Expr.(*FuncCall); !fc.Distinct || fc.Name != "count" {
		t.Error("count(DISTINCT) wrong")
	}
	if fc := items[1].Expr.(*FuncCall); !fc.Distinct || fc.Name != "collect" {
		t.Error("collect(DISTINCT) wrong")
	}
}

func TestParseUnwindCreateSetDelete(t *testing.T) {
	mustParse(t, `UNWIND [1,2,3] AS x RETURN x`)
	mustParse(t, `CREATE (a:User {id: 1})-[:KNOWS]->(b:User {id: 2})`)
	mustParse(t, `MATCH (n:User) SET n.seen = true, n:Audited`)
	mustParse(t, `MATCH (n:User) DETACH DELETE n`)
	mustParse(t, `MATCH (n)-[r]->() DELETE r`)
}

func TestParseCase(t *testing.T) {
	mustParse(t, `MATCH (n) RETURN CASE WHEN n.x > 0 THEN 'pos' ELSE 'neg' END AS sign`)
	mustParse(t, `MATCH (n) RETURN CASE n.k WHEN 1 THEN 'one' WHEN 2 THEN 'two' END AS w`)
	if _, err := Parse(`RETURN CASE END`); err == nil {
		t.Error("CASE without WHEN should fail")
	}
}

func TestParseParams(t *testing.T) {
	q := mustParse(t, `MATCH (n {id: $id}) RETURN n.name`)
	props := q.Clauses[0].(*MatchClause).Patterns[0].Nodes[0].Props
	if _, ok := props["id"].(*Parameter); !ok {
		t.Error("parameter not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FOO (n)`,
		`MATCH n RETURN n`,
		`MATCH (n RETURN n`,
		`MATCH (n) RETURN`,
		`MATCH (n) WHERE RETURN n`,
		`RETURN 1 AS`,
		`MATCH (a)-[:R->(b) RETURN a`,
		`MERGE (n) RETURN n`,
		`MATCH (n) RETURN n UNION MATCH (m) RETURN m`,
		`MATCH (n) RETURN n MATCH (m) RETURN m`,
		`UNWIND [1] RETURN 1`,
		`SET RETURN 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE u.id > 5 RETURN u.name AS name, count(*) AS c`,
		`MATCH (a)<-[r:R]-(b) WHERE a.x IS NOT NULL RETURN DISTINCT a.x ORDER BY a.x DESC LIMIT 3`,
		`OPTIONAL MATCH (a:X {k: 1}) RETURN a`,
		`UNWIND [1, 2] AS x WITH x WHERE x > 1 RETURN x`,
		`MATCH (a) WHERE NOT (a)-[:R]->(a) RETURN count(*)`,
		`MATCH (n) WHERE n.s =~ '^[a-z]+$' RETURN n.s`,
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", text, err)
			continue
		}
		if q2.String() != text {
			t.Errorf("round-trip not stable:\n1: %s\n2: %s", text, q2.String())
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse(`MATCH (n WHERE n.x RETURN n`)
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("error should mention offset: %v", se)
	}
}
