package cypher

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// TestPlanCacheLRUEviction pins the eviction policy: with the cap at 2,
// touching an entry protects it and the least-recently-used entry is the
// one evicted.
func TestPlanCacheLRUEviction(t *testing.T) {
	ex := NewExecutor(socialGraph())
	ex.SetPlanCacheCap(2)

	q1 := `MATCH (u:User) RETURN count(*) AS n`
	q2 := `MATCH (t:Tweet) RETURN count(*) AS n`
	q3 := `MATCH (u:User {verified: true}) RETURN count(*) AS n`

	mustRun := func(q string) *Result {
		t.Helper()
		res, err := ex.Run(q, nil)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		return res
	}

	mustRun(q1) // miss; cache [q1]
	mustRun(q2) // miss; cache [q2 q1]
	if res := mustRun(q1); !res.Exec.PlanCacheHit {
		t.Fatal("q1 should still be cached") // promotes q1; cache [q1 q2]
	}
	mustRun(q3) // miss; evicts q2 (LRU); cache [q3 q1]

	st := ex.PlanCacheStats()
	if st.Evictions != 1 || st.Entries != 2 || st.Cap != 2 {
		t.Fatalf("after first eviction: %+v, want evictions=1 entries=2 cap=2", st)
	}

	// q1 was promoted by its hit, so it must have survived the eviction...
	if res := mustRun(q1); !res.Exec.PlanCacheHit {
		t.Error("q1 was promoted and should not have been evicted")
	}
	// ...and q2, the least recently used, must be gone.
	if res := mustRun(q2); res.Exec.PlanCacheHit {
		t.Error("q2 should have been evicted")
	}

	st = ex.PlanCacheStats()
	if st.Evictions != 2 || st.Entries != 2 {
		t.Errorf("after q2 re-insert: %+v, want evictions=2 entries=2", st)
	}
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("counters: %+v, want hits=2 misses=4", st)
	}
}

// TestPlanCacheCapShrink lowers the cap below the live entry count and
// checks the cache immediately evicts down to it, keeping the most
// recently used entries.
func TestPlanCacheCapShrink(t *testing.T) {
	ex := NewExecutor(socialGraph())
	queries := make([]string, 4)
	for i := range queries {
		queries[i] = fmt.Sprintf(`MATCH (u:User) RETURN count(*) + %d AS n`, i)
		if _, err := ex.Run(queries[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	ex.SetPlanCacheCap(1)
	st := ex.PlanCacheStats()
	if st.Entries != 1 || st.Cap != 1 || st.Evictions != 3 {
		t.Fatalf("after shrink: %+v, want entries=1 cap=1 evictions=3", st)
	}
	// The survivor is the most recently used query.
	res, err := ex.Run(queries[len(queries)-1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exec.PlanCacheHit {
		t.Error("most recently used entry should survive the shrink")
	}

	// Restoring the default cap re-enables growth.
	ex.SetPlanCacheCap(0)
	if st := ex.PlanCacheStats(); st.Cap != planCacheLimit {
		t.Errorf("cap = %d, want default %d", st.Cap, planCacheLimit)
	}
}

// denseGraph returns a label-homogeneous graph sized so a triple
// cartesian MATCH takes far longer than the cancellation delay below.
func denseGraph(n int) *graph.Graph {
	g := graph.New("dense")
	for i := 0; i < n; i++ {
		g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
	}
	return g
}

// TestRunCtxCancellation cancels a long cartesian scan shortly after it
// starts and expects a prompt ctx error; if cancellation were ignored the
// query would run to completion and return nil.
func TestRunCtxCancellation(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ex := NewExecutor(denseGraph(400))
			if shards > 0 {
				ex.SetShardWorkers(shards)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			_, err := ex.RunCtx(ctx, `MATCH (a:N), (b:N), (c:N) RETURN count(*) AS n`, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestRunCtxPreCancelled verifies an already-expired context never starts
// clause execution.
func TestRunCtxPreCancelled(t *testing.T) {
	ex := NewExecutor(socialGraph())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ex.RunCtx(ctx, `MATCH (u:User) WHERE u.verified RETURN u.name AS name`, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxBackground confirms the context plumbing is invisible to
// plain Run callers.
func TestRunCtxBackground(t *testing.T) {
	ex := NewExecutor(denseGraph(10))
	res, err := ex.RunCtx(context.Background(), `MATCH (a:N) RETURN count(*) AS n`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][res.Column("n")]; n.Val.Int() != 10 {
		t.Fatalf("count = %v, want 10", n)
	}
}
