package cypher

import (
	"fmt"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// Benchmarks for morsel-driven sharded execution. The graph is deliberately
// skewed: anchor fanout follows a Zipf-like curve with the heavy hubs first
// in candidate order, the worst case for contiguous chunking (the first
// chunk holds nearly all the work). Work-stealing morsels re-balance that
// load; contiguous scheduling is emulated by setting the morsel size to
// ceil(candidates/workers), which hands each worker one fat morsel. As with
// the shard benchmarks, a single-CPU machine shows only scheduling overhead
// — the skew win needs real parallel hardware.

const zipfAnchors = 2000

// zipfHubGraph builds zipfAnchors Person nodes whose LIKES fanout decays as
// maxFan/(i+1): node 0 carries maxFan edges, the tail carries one each.
func zipfHubGraph(b *testing.B) *graph.Graph {
	b.Helper()
	const maxFan = 4096
	const items = 512
	g := graph.New("zipfhub")
	targets := make([]graph.ID, items)
	for i := range targets {
		targets[i] = g.AddNode([]string{"Item"}, graph.Props{"id": graph.NewInt(int64(i))}).ID
	}
	for i := 0; i < zipfAnchors; i++ {
		p := g.AddNode([]string{"Person"}, graph.Props{"id": graph.NewInt(int64(i))})
		fan := maxFan / (i + 1)
		if fan < 1 {
			fan = 1
		}
		for j := 0; j < fan; j++ {
			if _, err := g.AddEdge(p.ID, targets[(i+j)%items], []string{"LIKES"}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// BenchmarkMorselMatch measures the batched anchored-match loop itself: the
// per-candidate context polls, property-filter setup and stats accounting
// are hoisted out of the inner loop, so the single-worker configurations
// must not be slower than the pre-batching executor.
func BenchmarkMorselMatch(b *testing.B) {
	g := zipfHubGraph(b)
	const q = `MATCH (p:Person)-[:LIKES]->(i:Item) WHERE p.id >= 100 RETURN count(*) AS n`
	for _, workers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ex := NewExecutor(g, WithShardWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMorselSkew compares the work-stealing morsel schedule against an
// emulated contiguous split (morsel size = ceil(candidates/workers), i.e.
// one fat morsel per worker) on the hub-skewed graph. Under contiguous
// scheduling the first worker owns every hub; morsels let idle workers
// steal the tail while the hub morsels are still running.
func BenchmarkMorselSkew(b *testing.B) {
	g := zipfHubGraph(b)
	const q = `MATCH (p:Person)-[:LIKES]->(i:Item) RETURN count(*) AS n`
	for _, workers := range []int{1, 2, 4, 8} {
		contiguous := (zipfAnchors + workers - 1) / workers
		for _, cfg := range []struct {
			name string
			size int
		}{
			{"morsel", 0}, // default 256-candidate morsels
			{"contiguous", contiguous},
		} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, cfg.name), func(b *testing.B) {
				ex := NewExecutor(g, WithShardWorkers(workers), WithMorselSize(cfg.size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ex.Run(q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
