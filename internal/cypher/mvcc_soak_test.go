package cypher

// MVCC soak: concurrent epoch publishers against live snapshot-pinned
// scans. This is the test the race detector is for — batches of mutations
// commit as fast as they can while sharded morsel scans and ordered-index
// range seeks run against pinned snapshots, and a cancellation storm
// checks that aborted sharded queries join all their workers (no goroutine
// leak). Beyond -race cleanliness, every scan asserts the semantic
// invariant: a pinned query observes exactly one epoch, so its aggregates
// are internally consistent even though writers never pause.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/graph"
)

// soakGraph: nodes with an ordered-index-friendly int property, two labels,
// and typed edges, so the workload hits label scans, range seeks and
// adjacency reads.
func soakGraph(n int) *graph.Graph {
	g := graph.New("soak")
	prev := graph.ID(0)
	for i := 0; i < n; i++ {
		nd := g.AddNode([]string{"S"}, graph.Props{"i": graph.NewInt(int64(i)), "even": graph.NewBool(i%2 == 0)})
		if prev != 0 {
			g.MustAddEdge(prev, nd.ID, []string{"NEXT"}, graph.Props{"w": graph.NewInt(int64(i))})
		}
		prev = nd.ID
	}
	return g
}

// TestMVCCSoakPublishersVsScans runs epoch publishers (single mutators and
// batches) against concurrent pinned scans until the deadline. Each scan
// checks pair-consistency: both aggregates of one query must describe the
// same epoch.
func TestMVCCSoakPublishersVsScans(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	const base = 500
	g := soakGraph(base)
	ex := NewExecutor(g, WithSnapshotPin(true), WithShardWorkers(4), WithMorselSize(32))

	deadline := time.After(2 * time.Second)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var published atomic.Int64

	// Publisher 1: single-mutation epochs — add a node, touch a property,
	// remove the node again, so the live count oscillates around base.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nd := g.AddNode([]string{"S"}, graph.Props{"i": graph.NewInt(int64(base + i))})
			_ = g.SetNodeProp(nd.ID, "even", graph.NewBool(i%2 == 0))
			g.RemoveNode(nd.ID)
			published.Add(3)
		}
	}()

	// Publisher 2: batch epochs — add a small chain, then remove it in a
	// second batch; each batch is one atomic epoch with a cascade.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := g.NewBatch()
			n1 := b.AddNode([]string{"S", "Tmp"}, graph.Props{"i": graph.NewInt(int64(base + 1000 + i))})
			n2 := b.AddNode([]string{"Tmp"}, nil)
			b.AddEdge(n1.ID, n2.ID, []string{"NEXT"}, nil)
			if _, err := b.Commit(); err != nil {
				t.Errorf("batch add: %v", err)
				return
			}
			rb := g.NewBatch()
			rb.RemoveNode(n1.ID)
			rb.RemoveNode(n2.ID)
			if _, err := rb.Commit(); err != nil {
				t.Errorf("batch remove: %v", err)
				return
			}
			published.Add(2)
		}
	}()

	// Readers: morsel label scans and range seeks against pinned views.
	queries := []struct {
		src   string
		check func(t *testing.T, total, part int64)
	}{
		{
			// Pair-consistency: the even + odd split must sum to the total
			// observed in the same pinned execution.
			src: `MATCH (n:S) WITH count(n) AS total MATCH (m:S) WHERE m.even RETURN total AS a, count(m) AS b`,
			check: func(t *testing.T, total, evens int64) {
				if evens > total {
					t.Errorf("pinned scan tore: evens %d > total %d", evens, total)
				}
			},
		},
		{
			// Range seek over the ordered property index: every node with
			// i >= 0 IS every S node in the same pinned view.
			src: `MATCH (n:S) WITH count(n) AS total MATCH (m:S) WHERE m.i >= 0 RETURN total AS a, count(m) AS b`,
			check: func(t *testing.T, total, ranged int64) {
				if total != ranged {
					t.Errorf("range seek saw %d nodes, label scan saw %d in one pinned query", ranged, total)
				}
			},
		},
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(r+i)%len(queries)]
				res, err := ex.Run(q.src, nil)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				a := res.Rows[0][res.Column("a")].Val.Int()
				b := res.Rows[0][res.Column("b")].Val.Int()
				q.check(t, a, b)
			}
		}(r)
	}

	<-deadline
	close(stop)
	wg.Wait()
	if published.Load() == 0 {
		t.Error("no epochs published during soak")
	}
	t.Logf("soak published %d epochs, final epoch %d", published.Load(), g.Epoch())
}

// TestMVCCSoakCancellationNoLeak cancels sharded pinned queries mid-flight
// while publishers keep committing, then requires the goroutine count to
// settle back to baseline: aborted morsel workers must all be joined.
func TestMVCCSoakCancellationNoLeak(t *testing.T) {
	g := soakGraph(300)
	ex := NewExecutor(g, WithSnapshotPin(true), WithShardWorkers(8), WithMorselSize(8))
	before := runtime.NumGoroutine()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nd := g.AddNode([]string{"S"}, graph.Props{"i": graph.NewInt(int64(10000 + i))})
			g.RemoveNode(nd.ID)
		}
	}()

	// A cross-product query big enough that cancellation lands mid-scan.
	src := `MATCH (a:S), (b:S), (c:S) RETURN count(*) AS n`
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
		_, err := ex.RunCtx(ctx, src, nil)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d before, %d after\n%s", before, n,
			buf[:runtime.Stack(buf, true)])
	}
}

// TestMVCCSoakMaintainerUnderWriters is the end-to-end shape: a metrics-
// style subscriber re-running pinned queries from the commit path while an
// independent reader hammers the executor. (The full rule-level version
// lives in internal/metrics; this keeps a cypher-local regression.)
func TestMVCCSoakMaintainerUnderWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	g := soakGraph(200)
	ex := NewExecutor(g, WithSnapshotPin(true), WithShardWorkers(2), WithMorselSize(16))

	var subRuns atomic.Int64
	cancel := g.OnCommit(func(d *graph.Delta) {
		// Subscribers run on the commit path: the pinned view here must be
		// exactly the just-committed epoch.
		res, err := ex.Run(`MATCH (n:S) RETURN count(n) AS n`, nil)
		if err != nil {
			t.Errorf("subscriber query: %v", err)
			return
		}
		if got := res.Rows[0][res.Column("n")].Val.Int(); got < 200 {
			t.Errorf("subscriber saw %d < base 200", got)
		}
		subRuns.Add(1)
	})
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ex.Run(fmt.Sprintf(`MATCH (n:S) WHERE n.i >= %d RETURN count(n) AS n`, i%200), nil); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		g.AddNode([]string{"S"}, graph.Props{"i": graph.NewInt(int64(500 + i))})
	}
	close(stop)
	wg.Wait()
	if subRuns.Load() != 50 {
		t.Errorf("subscriber ran %d times, want 50", subRuns.Load())
	}
}
