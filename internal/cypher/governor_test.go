package cypher

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
)

// asExhausted unwraps err to a *ResourceExhaustedError or fails the test.
func asExhausted(t *testing.T, err error) *ResourceExhaustedError {
	t.Helper()
	var re *ResourceExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceExhaustedError, got %T: %v", err, err)
	}
	return re
}

func TestMaxRowsKillSerial(t *testing.T) {
	g := chainGraph(200)
	ex := NewExecutor(g, WithMaxRows(10))
	_, err := ex.Run(`MATCH (p:Person) RETURN p.idx`, nil)
	re := asExhausted(t, err)
	if re.Resource != "rows" || re.Limit != 10 {
		t.Fatalf("resource=%q limit=%d, want rows/10", re.Resource, re.Limit)
	}
	if re.Used <= re.Limit {
		t.Fatalf("Used=%d should exceed Limit=%d", re.Used, re.Limit)
	}
	if !re.ResourceExhausted() {
		t.Fatal("ResourceExhausted() must report true")
	}
}

func TestMaxRowsKillShardedWithPartialStats(t *testing.T) {
	g := chainGraph(500)
	ex := NewExecutor(g, WithMaxRows(25), WithShardWorkers(4), WithMorselSize(16))
	_, err := ex.Run(`MATCH (p:Person) RETURN p.idx`, nil)
	re := asExhausted(t, err)
	if re.Resource != "rows" {
		t.Fatalf("resource=%q, want rows", re.Resource)
	}
	// The kill happened inside a morsel worker; the partial ExecStats
	// stamped into the error must still describe the sharded scan.
	if !re.Stats.Sharded || re.Stats.Morsels == 0 {
		t.Fatalf("partial stats missing shard metadata: %+v", re.Stats)
	}
}

func TestMemoryBudgetKill(t *testing.T) {
	g := chainGraph(300)
	ex := NewExecutor(g, WithMemoryBudget(512))
	_, err := ex.Run(`MATCH (p:Person) RETURN p.idx`, nil)
	re := asExhausted(t, err)
	if re.Resource != "memory" || re.Limit != 512 {
		t.Fatalf("resource=%q limit=%d, want memory/512", re.Resource, re.Limit)
	}
}

func TestMemoryBudgetKillCollect(t *testing.T) {
	// The collect() aggregate charges per retained element, so an unbounded
	// collect dies on the memory budget even though it materializes few rows.
	g := chainGraph(300)
	ex := NewExecutor(g, WithMemoryBudget(2048))
	_, err := ex.Run(`MATCH (p:Person) RETURN collect(p.idx) AS xs`, nil)
	re := asExhausted(t, err)
	if re.Resource != "memory" {
		t.Fatalf("resource=%q, want memory", re.Resource)
	}
}

func TestUnwindChargesRowBudget(t *testing.T) {
	g := graph.New("tiny")
	g.AddNode([]string{"Person"}, nil)
	ex := NewExecutor(g, WithMaxRows(50))
	_, err := ex.Run(`UNWIND range(0, 1000) AS x RETURN x`, nil)
	re := asExhausted(t, err)
	if re.Resource != "rows" {
		t.Fatalf("resource=%q, want rows", re.Resource)
	}
}

func TestQueryDeadlineKill(t *testing.T) {
	g := chainGraph(2000)
	ex := NewExecutor(g, WithQueryDeadline(time.Nanosecond))
	_, err := ex.Run(`MATCH (a:Person)-[:NEXT]->(b:Person) RETURN a.idx, b.idx`, nil)
	re := asExhausted(t, err)
	if re.Resource != "deadline" {
		t.Fatalf("resource=%q, want deadline", re.Resource)
	}
	if re.Used < re.Limit {
		t.Fatalf("Used=%d below Limit=%d", re.Used, re.Limit)
	}
}

// TestUnderBudgetIdentity: generous budgets must never change results —
// governed output is byte-identical to ungoverned, serial and sharded.
func TestUnderBudgetIdentity(t *testing.T) {
	g := chainGraph(200)
	queries := []string{
		`MATCH (p:Person) RETURN p.idx`,
		`MATCH (p:Person) WHERE p.idx > 57 RETURN p.idx`,
		`MATCH (p:Person) OPTIONAL MATCH (p)-[:TAGGED]->(t:Tag) RETURN p.idx, t.decade`,
		`MATCH (p:Person) RETURN collect(p.idx) AS xs`,
		`UNWIND range(0, 20) AS x RETURN x`,
	}
	plain := NewExecutor(g)
	plain.SetReorder(false)
	for _, workers := range []int{0, 4} {
		governed := NewExecutor(g,
			WithMaxRows(1_000_000),
			WithMemoryBudget(1<<30),
			WithQueryDeadline(time.Hour),
			WithShardWorkers(workers))
		governed.SetReorder(false)
		for _, q := range queries {
			want, wantErr := oracleRun(plain, q)
			got, gotErr := oracleRun(governed, q)
			if wantErr != gotErr {
				t.Fatalf("workers=%d %q: err %q vs %q", workers, q, wantErr, gotErr)
			}
			if !rowsEqual(want, got) {
				t.Errorf("workers=%d %q: governed output diverges\nplain:    %v\ngoverned: %v", workers, q, want, got)
			}
		}
	}
}

// TestPanicRecoveredSerial: an evaluator panic surfaces as a *PanicError
// with the panic value and stack, not a process crash.
func TestPanicRecoveredSerial(t *testing.T) {
	testFuncs = map[string]func(d Datum) (Datum, error){
		"detonate": func(d Datum) (Datum, error) { panic("boom at " + d.Display()) },
	}
	defer func() { testFuncs = nil }()

	g := chainGraph(50)
	ex := NewExecutor(g)
	_, err := ex.Run(`MATCH (p:Person) RETURN detonate(p.idx)`, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Stack == "" {
		t.Fatal("PanicError must carry the stack")
	}
}

// TestPanicRecoveredSharded: a panic inside one morsel worker flows through
// the first-error path — the query fails with a *PanicError, sibling
// workers are cancelled, and the scan's partial stats survive. The executor
// stays usable afterwards.
func TestPanicRecoveredSharded(t *testing.T) {
	testFuncs = map[string]func(d Datum) (Datum, error){
		"fuse": func(d Datum) (Datum, error) {
			if d.Val.Kind() == graph.KindInt && d.Val.Int() == 137 {
				panic("morsel worker detonation")
			}
			return d, nil
		},
	}
	defer func() { testFuncs = nil }()

	g := chainGraph(300)
	ex := NewExecutor(g, WithShardWorkers(4), WithMorselSize(16))
	res, err := ex.Run(`MATCH (p:Person) WHERE fuse(p.idx) >= 0 RETURN p.idx`, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if res == nil || !res.Exec.Sharded {
		t.Fatalf("failed sharded query must still report scan stats, got %+v", res)
	}

	// The recovered executor keeps working.
	res2, err := ex.Run(`MATCH (p:Person) WHERE p.idx < 3 RETURN p.idx`, nil)
	if err != nil || len(res2.Rows) != 3 {
		t.Fatalf("executor unusable after recovered panic: rows=%v err=%v", res2, err)
	}
}

// BenchmarkGovernedMatch measures governor overhead on the hot scan path:
// the same sharded two-hop query ungoverned vs under (never-hit) budgets.
func BenchmarkGovernedMatch(b *testing.B) {
	g := chainGraph(2000)
	q := `MATCH (a:Person)-[:NEXT]->(b:Person) WHERE a.idx >= 0 RETURN a.idx, b.idx`
	run := func(b *testing.B, ex *Executor) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ungoverned", func(b *testing.B) {
		run(b, NewExecutor(g, WithShardWorkers(4)))
	})
	b.Run("governed", func(b *testing.B) {
		run(b, NewExecutor(g, WithShardWorkers(4),
			WithMaxRows(10_000_000), WithMemoryBudget(1<<40), WithQueryDeadline(time.Hour)))
	})
}

// TestBudgetedOracle extends the differential oracle with resource budgets:
// under generous budgets every configuration in a {workers x morsel x
// pushdown} grid must stay byte-identical to the ungoverned serial
// reference, and under starvation budgets every run must either still
// match the reference exactly or die with the typed budget error — a
// budget kill is never allowed to degrade into a silently wrong answer.
func TestBudgetedOracle(t *testing.T) {
	gen, err := datasets.ByName(datasets.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	g := gen(datasets.Options{Seed: 42, ViolationRate: 0.03})
	sch := newOracleSchema(g)
	rng := rand.New(rand.NewSource(7))
	corpus := sch.fixedCorpus()
	for i := 0; i < 15; i++ {
		corpus = append(corpus, sch.randomQuery(rng))
	}

	// No-reorder grid: row order must be byte-identical to serial, so the
	// budget comparison is exact, not just set-equal.
	var grid []oracleConfig
	for _, shard := range []int{0, 2, 8} {
		for _, morsel := range []int{0, 17} {
			if shard == 0 && morsel != 0 {
				continue
			}
			for _, pushdown := range []bool{true, false} {
				if shard == 0 && pushdown {
					continue // the ungoverned serial reference itself
				}
				grid = append(grid, oracleConfig{
					name:  fmt.Sprintf("shard%d-m%d-push%v", shard, morsel, pushdown),
					shard: shard, pushdown: pushdown, morsel: morsel,
				})
			}
		}
	}

	ref := newOracleExecutor(g, oracleConfig{shard: 0, reorder: false, pushdown: true})
	generous := func(cfg oracleConfig) *Executor {
		return NewExecutor(g,
			WithShardWorkers(cfg.shard), WithRangePushdown(cfg.pushdown), WithMorselSize(cfg.morsel),
			WithMaxRows(1<<20), WithMemoryBudget(1<<30), WithQueryDeadline(time.Minute))
	}
	starved := func(cfg oracleConfig) *Executor {
		return NewExecutor(g,
			WithShardWorkers(cfg.shard), WithRangePushdown(cfg.pushdown), WithMorselSize(cfg.morsel),
			WithMaxRows(2))
	}

	for _, q := range corpus {
		refRows, refErr := oracleRun(ref, q)
		for _, cfg := range grid {
			gotRows, gotErr := oracleRun(generous(cfg), q)
			if refErr != gotErr {
				t.Fatalf("generous %s: error divergence on %q: ref=%q got=%q", cfg.name, q, refErr, gotErr)
			}
			if refErr == "" && !rowsEqual(refRows, gotRows) {
				t.Fatalf("generous %s: rows diverged on %q:\nref %v\ngot %v", cfg.name, q, refRows, gotRows)
			}

			res, err := starved(cfg).Run(q, nil)
			switch {
			case err == nil:
				if refErr != "" {
					t.Fatalf("starved %s: succeeded on %q but reference errored: %q", cfg.name, q, refErr)
				}
				got := renderRows(res)
				if !rowsEqual(refRows, got) {
					t.Fatalf("starved %s: under-budget run diverged on %q:\nref %v\ngot %v", cfg.name, q, refRows, got)
				}
			case refErr != "" && err.Error() == refErr:
				// Same non-budget failure as the reference: acceptable.
			default:
				var re *ResourceExhaustedError
				if !errors.As(err, &re) {
					t.Fatalf("starved %s: non-budget error on %q: %T %v", cfg.name, q, err, err)
				}
			}
		}
	}
}

// renderRows canonicalizes a result like oracleRunSeeks does.
func renderRows(res *Result) []string {
	rows := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.Hashable())
		}
		rows = append(rows, b.String())
	}
	return rows
}
