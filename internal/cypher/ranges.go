package cypher

import (
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// This file extracts index-seekable range constraints from WHERE clauses:
// inequality conjuncts (`v.key < lit`, `>=`, closed intervals built from two
// conjuncts) and string prefixes (`v.key STARTS WITH 'p'`), turned into
// sort-key intervals for the ordered property index (graph/rangeindex.go).
//
// Extraction is conservative: a range only ever narrows the anchor
// candidate set, and every candidate is still re-checked by the full WHERE
// evaluation, so missing a constraint costs performance, never correctness.
// The one soundness requirement is that a seek interval be a superset of
// the values the predicate accepts. Numeric bounds are therefore widened to
// inclusive: int64s beyond 2^53 collapse onto shared float64 sort keys, so
// an exclusive bound could wrongly drop a value whose exact comparison
// succeeds. String and bool sort keys are exact and keep strict bounds.

// Sort-key kind-band fences (see graph.Value.SortKey): every bool key lies
// in ["0:", "1:"), numerics in ["1:", "2:"), strings in ["2:", "3:").
// Clamping the open side of an interval to the literal's band keeps e.g.
// `a.x > 5` from sweeping in every string-valued node.
const (
	bandBool    = "0:"
	bandNumeric = "1:"
	bandString  = "2:"
	bandList    = "3:"
)

// propRange is the intersected seek interval for one (variable, key) pair,
// plus the source predicate that won each side, for Explain/ExecStats
// rendering (a conjunct subsumed by a tighter one is not displayed).
type propRange struct {
	lo, hi         graph.Bound
	loTerm, hiTerm string // e.g. ">= 30", "< 100", "STARTS WITH 'ab'"
}

// String renders the user-level predicates behind the interval.
func (r *propRange) String() string {
	if r.loTerm != "" && r.loTerm == r.hiTerm {
		return r.loTerm // a prefix predicate owns both sides
	}
	var parts []string
	if r.loTerm != "" {
		parts = append(parts, r.loTerm)
	}
	if r.hiTerm != "" {
		parts = append(parts, r.hiTerm)
	}
	return strings.Join(parts, " AND ")
}

// whereRanges maps variable name -> property key -> seek interval.
type whereRanges map[string]map[string]*propRange

// forVar returns the ranges constraining one variable (nil when none).
func (w whereRanges) forVar(name string) map[string]*propRange {
	if w == nil || name == "" {
		return nil
	}
	return w[name]
}

// extractRanges walks the top-level AND conjunction of a WHERE expression
// and collects seekable intervals. It returns nil when nothing is seekable.
func extractRanges(where Expr) whereRanges {
	if where == nil {
		return nil
	}
	var conjs []Expr
	splitAnd(where, &conjs)
	var out whereRanges
	for _, c := range conjs {
		b, ok := c.(*Binary)
		if !ok {
			continue
		}
		op := b.Op
		v, key, lit, flipped, ok := rangePropLiteral(b)
		if !ok || lit.Value.IsNull() {
			continue
		}
		if flipped {
			// lit OP v.key: mirror the comparison. STARTS WITH cannot be
			// mirrored into a constraint on v.key.
			switch op {
			case OpLt:
				op = OpGt
			case OpGt:
				op = OpLt
			case OpLte:
				op = OpGte
			case OpGte:
				op = OpLte
			default:
				continue
			}
		}
		lo, hi, term, ok := boundsFor(op, lit.Value)
		if !ok {
			continue
		}
		if out == nil {
			out = whereRanges{}
		}
		byKey := out[v.Name]
		if byKey == nil {
			byKey = map[string]*propRange{}
			out[v.Name] = byKey
		}
		r := byKey[key]
		if r == nil {
			r = &propRange{}
			byKey[key] = r
		}
		// A side's display term belongs to the predicate that constrains it
		// directly; the kind-band fence a one-sided comparison puts on its
		// open side tightens the interval but claims no term.
		loPrimary := op == OpGt || op == OpGte || op == OpStartsWith
		hiPrimary := op == OpLt || op == OpLte || op == OpStartsWith
		if lo.Set && loTighter(lo, r.lo) {
			r.lo = lo
			if loPrimary {
				r.loTerm = term
			}
		}
		if hi.Set && hiTighter(hi, r.hi) {
			r.hi = hi
			if hiPrimary {
				r.hiTerm = term
			}
		}
	}
	return out
}

// splitAnd flattens a top-level AND tree into its conjuncts.
func splitAnd(e Expr, out *[]Expr) {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		splitAnd(b.L, out)
		splitAnd(b.R, out)
		return
	}
	*out = append(*out, e)
}

// rangePropLiteral decomposes a comparison into (v.key, literal) in either
// operand order; flipped reports the literal was on the left.
func rangePropLiteral(b *Binary) (v *Variable, key string, lit *Literal, flipped, ok bool) {
	if pa, okL := b.L.(*PropAccess); okL {
		if vv, okV := pa.Target.(*Variable); okV {
			if l, okR := b.R.(*Literal); okR {
				return vv, pa.Key, l, false, true
			}
		}
	}
	if pa, okR := b.R.(*PropAccess); okR {
		if vv, okV := pa.Target.(*Variable); okV {
			if l, okL := b.L.(*Literal); okL {
				return vv, pa.Key, l, true, true
			}
		}
	}
	return nil, "", nil, false, false
}

// boundsFor turns one predicate (already normalized to property-on-left)
// into a seek interval, clamping the open side to the literal's kind band.
func boundsFor(op BinaryOp, lit graph.Value) (lo, hi graph.Bound, term string, ok bool) {
	bandLo, bandHi, ok := kindBand(lit.Kind())
	if !ok {
		return graph.Bound{}, graph.Bound{}, "", false
	}
	// exact = the literal's sort key identifies exactly its value; numeric
	// keys are lossy for huge ints, so strict bounds are widened (see the
	// file comment).
	exact := lit.Kind() != graph.KindInt && lit.Kind() != graph.KindFloat
	litB := func(strict bool) graph.Bound {
		return graph.ValueBound(lit, !strict || !exact)
	}
	switch op {
	case OpGt:
		return litB(true), graph.RawBound(bandHi, false), "> " + litDisplay(lit), true
	case OpGte:
		return litB(false), graph.RawBound(bandHi, false), ">= " + litDisplay(lit), true
	case OpLt:
		return graph.RawBound(bandLo, true), litB(true), "< " + litDisplay(lit), true
	case OpLte:
		return graph.RawBound(bandLo, true), litB(false), "<= " + litDisplay(lit), true
	case OpStartsWith:
		if lit.Kind() != graph.KindString {
			return graph.Bound{}, graph.Bound{}, "", false
		}
		pfx := bandString + lit.Str()
		return graph.RawBound(pfx, true), prefixSuccessor(pfx, bandList),
			"STARTS WITH " + litDisplay(lit), true
	}
	return graph.Bound{}, graph.Bound{}, "", false
}

// kindBand returns the sort-key band fences for a literal kind; comparisons
// against other kinds (lists, nulls) are not extracted.
func kindBand(k graph.Kind) (lo, hi string, ok bool) {
	switch k {
	case graph.KindBool:
		return bandBool, bandNumeric, true
	case graph.KindInt, graph.KindFloat:
		return bandNumeric, bandString, true
	case graph.KindString:
		return bandString, bandList, true
	}
	return "", "", false
}

// prefixSuccessor returns the exclusive upper bound for keys starting with
// pfx: the shortest string greater than every such key. When no successor
// exists inside the band (all 0xff), the band ceiling is the bound.
func prefixSuccessor(pfx, bandCeil string) graph.Bound {
	b := []byte(pfx)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return graph.RawBound(string(b[:i+1]), false)
		}
	}
	return graph.RawBound(bandCeil, false)
}

// litDisplay renders a literal for seek-bound display.
func litDisplay(v graph.Value) string { return (&Literal{Value: v}).exprString() }

// loTighter reports whether a is a tighter (higher) lower bound than b. An
// unset bound is loosest.
func loTighter(a, b graph.Bound) bool {
	if !b.Set {
		return true
	}
	if a.SortKey != b.SortKey {
		return a.SortKey > b.SortKey
	}
	return !a.Inclusive && b.Inclusive
}

// hiTighter reports whether a is a tighter (lower) upper bound than b.
func hiTighter(a, b graph.Bound) bool {
	if !b.Set {
		return true
	}
	if a.SortKey != b.SortKey {
		return a.SortKey < b.SortKey
	}
	return !a.Inclusive && b.Inclusive
}

// sortedRangeKeys returns a range map's property keys in sorted order, for
// deterministic seek and estimate choices.
func sortedRangeKeys(byKey map[string]*propRange) []string {
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// constRelProps returns the constant-literal inline properties of a rel
// pattern (nil when none), mirroring the node inline-equality pushdown.
func constRelProps(rp *RelPattern) map[string]graph.Value {
	var out map[string]graph.Value
	for k, e := range rp.Props {
		lit, ok := e.(*Literal)
		if !ok || lit.Value.IsNull() {
			continue
		}
		if out == nil {
			out = map[string]graph.Value{}
		}
		out[k] = lit.Value
	}
	return out
}
