package cypher

import (
	"fmt"
	"testing"

	"github.com/graphrules/graphrules/internal/datasets"
)

// Benchmarks comparing serial execution to sharded execution on the
// WWC2019 dataset (the paper's largest hand-modelled graph). Worker count 0
// is the serial baseline. Note that on a single-CPU machine sharding is pure
// overhead; the speedup only materialises with real parallel hardware.

func benchGraph(b *testing.B) *Executor {
	b.Helper()
	gen, err := datasets.ByName("WWC2019")
	if err != nil {
		b.Fatal(err)
	}
	g := gen(datasets.Options{Seed: 42, ViolationRate: 0.03})
	return NewExecutor(g)
}

func benchQuery(b *testing.B, query string, workers int) {
	b.Helper()
	ex := benchGraph(b)
	ex.SetShardWorkers(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(query, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedCount exercises the count-aggregate fast path: anchor
// scan + relationship expansion folded into per-shard aggregate states.
func BenchmarkShardedCount(b *testing.B) {
	const q = `MATCH (p:Person)-[:IN_SQUAD]->(s:Squad) RETURN count(*) AS n`
	for _, workers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchQuery(b, q, workers)
		})
	}
}

// BenchmarkShardedMatch exercises the general row-producing path with a
// WHERE re-filter and row merge in shard order.
func BenchmarkShardedMatch(b *testing.B) {
	const q = `MATCH (p:Person)-[:IN_SQUAD]->(s:Squad) WHERE p.id >= 10250 RETURN p.name, s.id`
	for _, workers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchQuery(b, q, workers)
		})
	}
}
