package cypher

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// ExecError reports a runtime execution failure (type errors, unknown
// variables or functions, division by zero).
type ExecError struct {
	Msg string
}

func (e *ExecError) Error() string { return "cypher: " + e.Msg }

func execErrf(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}

// Datum is one bound value in a row: a node, an edge, or a scalar value.
// The zero Datum is the null scalar.
type Datum struct {
	Node *graph.Node
	Edge *graph.Edge
	Val  graph.Value
}

// NullDatum is the null scalar datum.
var NullDatum = Datum{}

// ValDatum wraps a scalar value.
func ValDatum(v graph.Value) Datum { return Datum{Val: v} }

// NodeDatum wraps a node.
func NodeDatum(n *graph.Node) Datum { return Datum{Node: n} }

// EdgeDatum wraps an edge.
func EdgeDatum(e *graph.Edge) Datum { return Datum{Edge: e} }

// IsEntity reports whether the datum holds a node or an edge.
func (d Datum) IsEntity() bool { return d.Node != nil || d.Edge != nil }

// IsNull reports whether the datum is the null scalar.
func (d Datum) IsNull() bool { return !d.IsEntity() && d.Val.IsNull() }

// Scalar lowers the datum to a plain value. Entities lower to their ID (a
// documented coercion that makes collect(n)/grouping on nodes total).
func (d Datum) Scalar() graph.Value {
	switch {
	case d.Node != nil:
		return graph.NewInt(int64(d.Node.ID))
	case d.Edge != nil:
		return graph.NewInt(int64(d.Edge.ID))
	default:
		return d.Val
	}
}

// Hashable returns a grouping key distinguishing entities from scalars.
func (d Datum) Hashable() string {
	switch {
	case d.Node != nil:
		return "N" + strconv.FormatInt(int64(d.Node.ID), 10)
	case d.Edge != nil:
		return "E" + strconv.FormatInt(int64(d.Edge.ID), 10)
	default:
		return "V" + d.Val.Hashable()
	}
}

// Display renders the datum for human-readable output.
func (d Datum) Display() string {
	switch {
	case d.Node != nil:
		return fmt.Sprintf("(%s {id:%d})", strings.Join(d.Node.Labels, ":"), d.Node.ID)
	case d.Edge != nil:
		return fmt.Sprintf("[:%s {id:%d}]", d.Edge.Type(), d.Edge.ID)
	default:
		return d.Val.Display()
	}
}

// Row is one binding table row: variable name to datum.
type Row map[string]Datum

func (r Row) clone() Row {
	out := make(Row, len(r)+2)
	for k, v := range r {
		out[k] = v
	}
	return out
}

// evalCtx carries everything expression evaluation needs.
type evalCtx struct {
	g       *graph.Graph
	params  map[string]graph.Value
	matcher *matcher
	// aggResults maps aggregate FuncCall nodes (by identity) to their
	// computed value for the current group; non-nil only while projecting a
	// grouped result.
	aggResults map[*FuncCall]Datum
	regexCache map[string]*regexp.Regexp
}

func newEvalCtx(g *graph.Graph, params map[string]graph.Value, m *matcher) *evalCtx {
	return &evalCtx{g: g, params: params, matcher: m, regexCache: map[string]*regexp.Regexp{}}
}

func (c *evalCtx) compileRegex(pat string) (*regexp.Regexp, error) {
	if re, ok := c.regexCache[pat]; ok {
		return re, nil
	}
	// Cypher's =~ is a full match.
	re, err := regexp.Compile("^(?:" + pat + ")$")
	if err != nil {
		return nil, execErrf("invalid regular expression %q: %v", pat, err)
	}
	c.regexCache[pat] = re
	return re, nil
}

// eval evaluates an expression in a row context.
func (c *evalCtx) eval(e Expr, row Row) (Datum, error) {
	switch x := e.(type) {
	case *Literal:
		return ValDatum(x.Value), nil
	case *Variable:
		d, ok := row[x.Name]
		if !ok {
			return NullDatum, execErrf("variable `%s` not defined", x.Name)
		}
		return d, nil
	case *Parameter:
		if c.params == nil {
			return NullDatum, execErrf("parameter $%s supplied to a query without parameters", x.Name)
		}
		v, ok := c.params[x.Name]
		if !ok {
			return NullDatum, execErrf("missing parameter $%s", x.Name)
		}
		return ValDatum(v), nil
	case *PropAccess:
		t, err := c.eval(x.Target, row)
		if err != nil {
			return NullDatum, err
		}
		switch {
		case t.Node != nil:
			return ValDatum(t.Node.Prop(x.Key)), nil
		case t.Edge != nil:
			return ValDatum(t.Edge.Prop(x.Key)), nil
		case t.Val.IsNull():
			return NullDatum, nil
		default:
			return NullDatum, execErrf("type error: cannot access property .%s on %s", x.Key, t.Val.Kind())
		}
	case *Binary:
		return c.evalBinary(x, row)
	case *Not:
		v, err := c.evalBool(x.E, row)
		if err != nil {
			return NullDatum, err
		}
		return ValDatum(notTri(v)), nil
	case *Neg:
		v, err := c.eval(x.E, row)
		if err != nil {
			return NullDatum, err
		}
		sv := v.Scalar()
		switch sv.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindInt:
			return ValDatum(graph.NewInt(-sv.Int())), nil
		case graph.KindFloat:
			return ValDatum(graph.NewFloat(-sv.Float())), nil
		default:
			return NullDatum, execErrf("type error: cannot negate %s", sv.Kind())
		}
	case *IsNull:
		v, err := c.eval(x.E, row)
		if err != nil {
			return NullDatum, err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return ValDatum(graph.NewBool(res)), nil
	case *HasLabels:
		t, err := c.eval(x.E, row)
		if err != nil {
			return NullDatum, err
		}
		if t.IsNull() {
			return NullDatum, nil
		}
		switch {
		case t.Node != nil:
			for _, l := range x.Labels {
				if !t.Node.HasLabel(l) {
					return ValDatum(graph.NewBool(false)), nil
				}
			}
			return ValDatum(graph.NewBool(true)), nil
		case t.Edge != nil:
			for _, l := range x.Labels {
				if !t.Edge.HasLabel(l) {
					return ValDatum(graph.NewBool(false)), nil
				}
			}
			return ValDatum(graph.NewBool(true)), nil
		default:
			return NullDatum, execErrf("type error: label predicate on a %s value", t.Val.Kind())
		}
	case *FuncCall:
		if c.aggResults != nil {
			if d, ok := c.aggResults[x]; ok {
				return d, nil
			}
		}
		if aggregateFuncs[x.Name] {
			return NullDatum, execErrf("aggregate function %s() used outside an aggregating projection", x.Name)
		}
		return c.evalFunc(x, row)
	case *ListLit:
		elems := make([]graph.Value, len(x.Elems))
		for i, ee := range x.Elems {
			d, err := c.eval(ee, row)
			if err != nil {
				return NullDatum, err
			}
			elems[i] = d.Scalar()
		}
		return ValDatum(graph.NewList(elems...)), nil
	case *Index:
		t, err := c.eval(x.Target, row)
		if err != nil {
			return NullDatum, err
		}
		s, err := c.eval(x.Sub, row)
		if err != nil {
			return NullDatum, err
		}
		tv, sv := t.Scalar(), s.Scalar()
		if tv.IsNull() || sv.IsNull() {
			return NullDatum, nil
		}
		if tv.Kind() != graph.KindList || sv.Kind() != graph.KindInt {
			return NullDatum, execErrf("type error: %s[%s] subscript", tv.Kind(), sv.Kind())
		}
		lst := tv.List()
		idx := sv.Int()
		if idx < 0 {
			idx += int64(len(lst))
		}
		if idx < 0 || idx >= int64(len(lst)) {
			return NullDatum, nil
		}
		return ValDatum(lst[idx]), nil
	case *PatternPred:
		if c.matcher == nil {
			return NullDatum, execErrf("pattern predicate not supported in this context")
		}
		found, err := c.matcher.exists(x.Pattern, row)
		if err != nil {
			return NullDatum, err
		}
		return ValDatum(graph.NewBool(found)), nil
	case *CaseExpr:
		return c.evalCase(x, row)
	default:
		return NullDatum, execErrf("unsupported expression %T", e)
	}
}

// tri is three-valued logic: -1 false, 0 unknown(null), 1 true.
type tri int8

const (
	triFalse tri = -1
	triNull  tri = 0
	triTrue  tri = 1
)

func notTri(t tri) graph.Value {
	switch t {
	case triTrue:
		return graph.NewBool(false)
	case triFalse:
		return graph.NewBool(true)
	default:
		return graph.Null
	}
}

func triOf(v graph.Value) (tri, error) {
	switch v.Kind() {
	case graph.KindNull:
		return triNull, nil
	case graph.KindBool:
		if v.Bool() {
			return triTrue, nil
		}
		return triFalse, nil
	default:
		return triNull, execErrf("type error: expected a boolean, got %s", v.Kind())
	}
}

func triValue(t tri) graph.Value {
	switch t {
	case triTrue:
		return graph.NewBool(true)
	case triFalse:
		return graph.NewBool(false)
	default:
		return graph.Null
	}
}

// evalBool evaluates an expression to three-valued logic.
func (c *evalCtx) evalBool(e Expr, row Row) (tri, error) {
	d, err := c.eval(e, row)
	if err != nil {
		return triNull, err
	}
	return triOf(d.Scalar())
}

func (c *evalCtx) evalBinary(b *Binary, row Row) (Datum, error) {
	switch b.Op {
	case OpAnd, OpOr, OpXor:
		l, err := c.evalBool(b.L, row)
		if err != nil {
			return NullDatum, err
		}
		// Short-circuit where three-valued logic allows it.
		if b.Op == OpAnd && l == triFalse {
			return ValDatum(graph.NewBool(false)), nil
		}
		if b.Op == OpOr && l == triTrue {
			return ValDatum(graph.NewBool(true)), nil
		}
		r, err := c.evalBool(b.R, row)
		if err != nil {
			return NullDatum, err
		}
		switch b.Op {
		case OpAnd:
			switch {
			case r == triFalse:
				return ValDatum(graph.NewBool(false)), nil
			case l == triTrue && r == triTrue:
				return ValDatum(graph.NewBool(true)), nil
			default:
				return NullDatum, nil
			}
		case OpOr:
			switch {
			case r == triTrue:
				return ValDatum(graph.NewBool(true)), nil
			case l == triFalse && r == triFalse:
				return ValDatum(graph.NewBool(false)), nil
			default:
				return NullDatum, nil
			}
		default: // XOR
			if l == triNull || r == triNull {
				return NullDatum, nil
			}
			return ValDatum(graph.NewBool((l == triTrue) != (r == triTrue))), nil
		}
	}

	ld, err := c.eval(b.L, row)
	if err != nil {
		return NullDatum, err
	}
	rd, err := c.eval(b.R, row)
	if err != nil {
		return NullDatum, err
	}

	// Entity equality compares identity.
	if (b.Op == OpEq || b.Op == OpNeq) && ld.IsEntity() && rd.IsEntity() {
		same := (ld.Node != nil && rd.Node != nil && ld.Node.ID == rd.Node.ID) ||
			(ld.Edge != nil && rd.Edge != nil && ld.Edge.ID == rd.Edge.ID)
		if b.Op == OpNeq {
			same = !same
		}
		return ValDatum(graph.NewBool(same)), nil
	}

	l, r := ld.Scalar(), rd.Scalar()
	switch b.Op {
	case OpEq, OpNeq:
		if l.IsNull() || r.IsNull() {
			return NullDatum, nil
		}
		eq := l.Equal(r)
		if b.Op == OpNeq {
			eq = !eq
		}
		return ValDatum(graph.NewBool(eq)), nil
	case OpLt, OpGt, OpLte, OpGte:
		if l.IsNull() || r.IsNull() {
			return NullDatum, nil
		}
		cv, ok := l.Compare(r)
		if !ok {
			// Incomparable kinds yield null (Neo4j semantics).
			return NullDatum, nil
		}
		var res bool
		switch b.Op {
		case OpLt:
			res = cv < 0
		case OpGt:
			res = cv > 0
		case OpLte:
			res = cv <= 0
		default:
			res = cv >= 0
		}
		return ValDatum(graph.NewBool(res)), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return arith(b.Op, l, r)
	case OpIn:
		if r.IsNull() {
			return NullDatum, nil
		}
		if r.Kind() != graph.KindList {
			return NullDatum, execErrf("type error: IN requires a list, got %s", r.Kind())
		}
		if l.IsNull() {
			return NullDatum, nil
		}
		sawNull := false
		for _, e := range r.List() {
			if e.IsNull() {
				sawNull = true
				continue
			}
			if l.Equal(e) {
				return ValDatum(graph.NewBool(true)), nil
			}
		}
		if sawNull {
			return NullDatum, nil
		}
		return ValDatum(graph.NewBool(false)), nil
	case OpRegex:
		if l.IsNull() || r.IsNull() {
			return NullDatum, nil
		}
		if l.Kind() != graph.KindString {
			return NullDatum, nil
		}
		if r.Kind() != graph.KindString {
			return NullDatum, execErrf("type error: =~ requires a string pattern, got %s", r.Kind())
		}
		re, err := c.compileRegex(r.Str())
		if err != nil {
			return NullDatum, err
		}
		return ValDatum(graph.NewBool(re.MatchString(l.Str()))), nil
	case OpStartsWith, OpEndsWith, OpContains:
		if l.IsNull() || r.IsNull() {
			return NullDatum, nil
		}
		if l.Kind() != graph.KindString || r.Kind() != graph.KindString {
			return NullDatum, nil
		}
		var res bool
		switch b.Op {
		case OpStartsWith:
			res = strings.HasPrefix(l.Str(), r.Str())
		case OpEndsWith:
			res = strings.HasSuffix(l.Str(), r.Str())
		default:
			res = strings.Contains(l.Str(), r.Str())
		}
		return ValDatum(graph.NewBool(res)), nil
	default:
		return NullDatum, execErrf("unsupported binary operator")
	}
}

func arith(op BinaryOp, l, r graph.Value) (Datum, error) {
	if l.IsNull() || r.IsNull() {
		return NullDatum, nil
	}
	// String concatenation.
	if op == OpAdd && (l.Kind() == graph.KindString || r.Kind() == graph.KindString) {
		ls, rs := l, r
		if ls.Kind() != graph.KindString {
			ls = graph.NewString(ls.Display())
		}
		if rs.Kind() != graph.KindString {
			rs = graph.NewString(rs.Display())
		}
		return ValDatum(graph.NewString(ls.Str() + rs.Str())), nil
	}
	// List concatenation.
	if op == OpAdd && l.Kind() == graph.KindList && r.Kind() == graph.KindList {
		out := append(append([]graph.Value{}, l.List()...), r.List()...)
		return ValDatum(graph.NewList(out...)), nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return NullDatum, execErrf("type error: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	bothInt := l.Kind() == graph.KindInt && r.Kind() == graph.KindInt
	switch op {
	case OpAdd:
		if bothInt {
			return ValDatum(graph.NewInt(l.Int() + r.Int())), nil
		}
		return ValDatum(graph.NewFloat(lf + rf)), nil
	case OpSub:
		if bothInt {
			return ValDatum(graph.NewInt(l.Int() - r.Int())), nil
		}
		return ValDatum(graph.NewFloat(lf - rf)), nil
	case OpMul:
		if bothInt {
			return ValDatum(graph.NewInt(l.Int() * r.Int())), nil
		}
		return ValDatum(graph.NewFloat(lf * rf)), nil
	case OpDiv:
		if bothInt {
			if r.Int() == 0 {
				return NullDatum, execErrf("division by zero")
			}
			return ValDatum(graph.NewInt(l.Int() / r.Int())), nil
		}
		if rf == 0 {
			return NullDatum, execErrf("division by zero")
		}
		return ValDatum(graph.NewFloat(lf / rf)), nil
	case OpMod:
		if bothInt {
			if r.Int() == 0 {
				return NullDatum, execErrf("division by zero")
			}
			return ValDatum(graph.NewInt(l.Int() % r.Int())), nil
		}
		return NullDatum, execErrf("type error: %% requires integers")
	}
	return NullDatum, execErrf("unsupported arithmetic operator")
}

func (c *evalCtx) evalCase(x *CaseExpr, row Row) (Datum, error) {
	if x.Operand != nil {
		op, err := c.eval(x.Operand, row)
		if err != nil {
			return NullDatum, err
		}
		for i := range x.Whens {
			w, err := c.eval(x.Whens[i], row)
			if err != nil {
				return NullDatum, err
			}
			if !op.Scalar().IsNull() && op.Scalar().Equal(w.Scalar()) {
				return c.eval(x.Thens[i], row)
			}
		}
	} else {
		for i := range x.Whens {
			t, err := c.evalBool(x.Whens[i], row)
			if err != nil {
				return NullDatum, err
			}
			if t == triTrue {
				return c.eval(x.Thens[i], row)
			}
		}
	}
	if x.Else != nil {
		return c.eval(x.Else, row)
	}
	return NullDatum, nil
}
