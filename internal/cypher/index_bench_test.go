package cypher

import (
	"testing"
)

// Benchmarks comparing ordered-index range seeks against the equivalent
// full label/edge scans on the WWC2019 dataset. The "seek" variants run
// with range pushdown enabled (the default); the "fullscan" baselines
// disable it, forcing the anchor to enumerate every candidate and rely on
// the WHERE re-filter. The ratio between the two is the selectivity win
// recorded in BENCH_index.json.

func benchIndexQuery(b *testing.B, query string, pushdown bool) {
	b.Helper()
	ex := benchGraph(b)
	WithRangePushdown(pushdown)(ex)
	// Warm the ordered index outside the timed region so the seek variant
	// measures steady-state lookups, not the one-time build.
	if _, err := ex.Run(query, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(query, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeSeek measures a selective numeric range on a labeled node:
// ~60 of ~2360 Person nodes satisfy the predicate, so the ordered index
// should skip ~97% of the label bucket.
func BenchmarkRangeSeek(b *testing.B) {
	const q = `MATCH (p:Person) WHERE p.id >= 12300 RETURN count(*) AS n`
	b.Run("seek", func(b *testing.B) { benchIndexQuery(b, q, true) })
	b.Run("fullscan", func(b *testing.B) { benchIndexQuery(b, q, false) })
}

// BenchmarkEdgePropSeek measures a selective range on a relationship
// property: SCORED_GOAL minutes are uniform in 1..90, so >= 85 keeps ~7%
// of the edges, and the seek derives its node anchors from the ordered
// edge index instead of scanning all nodes.
func BenchmarkEdgePropSeek(b *testing.B) {
	const q = `MATCH ()-[g:SCORED_GOAL]->() WHERE g.minute >= 85 RETURN count(*) AS n`
	b.Run("seek", func(b *testing.B) { benchIndexQuery(b, q, true) })
	b.Run("fullscan", func(b *testing.B) { benchIndexQuery(b, q, false) })
}
