package cypher

import (
	"fmt"
	"sort"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// Query is a parsed Cypher statement: an ordered list of clauses.
type Query struct {
	Clauses []Clause
}

// String renders the query back to Cypher text.
func (q *Query) String() string {
	parts := make([]string, len(q.Clauses))
	for i, c := range q.Clauses {
		parts[i] = c.clauseString()
	}
	return strings.Join(parts, " ")
}

// quoteIdent renders an identifier, backtick-quoting it when it is not a
// plain name (so Query.String output always re-parses).
func quoteIdent(s string) string {
	plain := s != ""
	for i, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9') {
			continue
		}
		plain = false
		break
	}
	if plain {
		return s
	}
	return "`" + s + "`"
}

// Clause is one query clause (MATCH, WITH, RETURN, ...).
type Clause interface {
	clauseString() string
}

// Direction of a relationship pattern.
type Direction uint8

const (
	DirBoth Direction = iota // -[]-
	DirOut                   // -[]->
	DirIn                    // <-[]-
)

// NodePattern is a node element in a pattern: (v:Label {key: expr}).
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Expr

	// Span covers '(' through ')'; LabelSpans[i] covers Labels[i]'s name
	// token. Both are zero for programmatically built patterns.
	Span       Span
	LabelSpans []Span
}

func (n *NodePattern) String() string {
	var b strings.Builder
	b.WriteByte('(')
	if n.Var != "" {
		b.WriteString(quoteIdent(n.Var))
	}
	for _, l := range n.Labels {
		b.WriteByte(':')
		b.WriteString(quoteIdent(l))
	}
	if len(n.Props) > 0 {
		b.WriteString(" " + propsString(n.Props))
	}
	b.WriteByte(')')
	return b.String()
}

// RelPattern is a relationship element in a pattern: -[v:TYPE {..}]->.
// MinHops/MaxHops describe variable-length paths; both are 1 for a plain
// relationship, and MaxHops<0 means unbounded.
type RelPattern struct {
	Var       string
	Types     []string
	Props     map[string]Expr
	Direction Direction
	MinHops   int
	MaxHops   int

	// Span covers the whole relationship element including its arrowheads
	// ('<-[...]-' / '-[...]->'); TypeSpans[i] covers Types[i]'s name token.
	Span      Span
	TypeSpans []Span
}

// IsVarLength reports whether the pattern is a variable-length relationship.
func (r *RelPattern) IsVarLength() bool {
	return r.MinHops != 1 || r.MaxHops != 1
}

func (r *RelPattern) String() string {
	var b strings.Builder
	if r.Direction == DirIn {
		b.WriteByte('<')
	}
	b.WriteByte('-')
	inner := ""
	if r.Var != "" {
		inner = quoteIdent(r.Var)
	}
	if len(r.Types) > 0 {
		quoted := make([]string, len(r.Types))
		for i, t := range r.Types {
			quoted[i] = quoteIdent(t)
		}
		inner += ":" + strings.Join(quoted, "|")
	}
	if r.IsVarLength() {
		if r.MaxHops < 0 {
			inner += fmt.Sprintf("*%d..", r.MinHops)
		} else {
			inner += fmt.Sprintf("*%d..%d", r.MinHops, r.MaxHops)
		}
	}
	if len(r.Props) > 0 {
		inner += " " + propsString(r.Props)
	}
	if inner != "" {
		b.WriteString("[" + inner + "]")
	}
	b.WriteByte('-')
	if r.Direction == DirOut {
		b.WriteByte('>')
	}
	return b.String()
}

func propsString(props map[string]Expr) string {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = quoteIdent(k) + ": " + props[k].exprString()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// PatternPart is one comma-separated path pattern: alternating node and
// relationship elements, starting and ending with a node.
type PatternPart struct {
	Nodes []*NodePattern // len = len(Rels)+1
	Rels  []*RelPattern
}

// SourceSpan returns the byte span of the whole part in the query source
// (zero when the part was built programmatically).
func (p *PatternPart) SourceSpan() Span {
	if len(p.Nodes) == 0 || p.Nodes[0].Span.IsZero() {
		return Span{}
	}
	return Span{Start: p.Nodes[0].Span.Start, End: p.Nodes[len(p.Nodes)-1].Span.End}
}

func (p *PatternPart) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		b.WriteString(n.String())
		if i < len(p.Rels) {
			b.WriteString(p.Rels[i].String())
		}
	}
	return b.String()
}

// MatchClause is MATCH or OPTIONAL MATCH with an optional WHERE.
type MatchClause struct {
	Optional bool
	Patterns []*PatternPart
	Where    Expr
}

func (m *MatchClause) clauseString() string {
	var b strings.Builder
	if m.Optional {
		b.WriteString("OPTIONAL ")
	}
	b.WriteString("MATCH ")
	parts := make([]string, len(m.Patterns))
	for i, p := range m.Patterns {
		parts[i] = p.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	if m.Where != nil {
		b.WriteString(" WHERE " + m.Where.exprString())
	}
	return b.String()
}

// ReturnItem is one projection expression with an optional alias.
type ReturnItem struct {
	Expr  Expr
	Alias string // "" means derive from expression text
}

// Name returns the output column name for the item.
func (ri *ReturnItem) Name() string {
	if ri.Alias != "" {
		return ri.Alias
	}
	return ri.Expr.exprString()
}

func (ri *ReturnItem) String() string {
	if ri.Alias != "" {
		return ri.Expr.exprString() + " AS " + quoteIdent(ri.Alias)
	}
	return ri.Expr.exprString()
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr Expr
	Desc bool
}

// Projection carries the shared shape of WITH and RETURN.
type Projection struct {
	Distinct bool
	Star     bool // RETURN * / WITH *
	Items    []*ReturnItem
	OrderBy  []*SortItem
	Skip     Expr
	Limit    Expr
}

func (p *Projection) projString() string {
	var b strings.Builder
	if p.Distinct {
		b.WriteString("DISTINCT ")
	}
	if p.Star {
		b.WriteString("*")
		if len(p.Items) > 0 {
			b.WriteString(", ")
		}
	}
	parts := make([]string, len(p.Items))
	for i, it := range p.Items {
		parts[i] = it.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	if len(p.OrderBy) > 0 {
		keys := make([]string, len(p.OrderBy))
		for i, s := range p.OrderBy {
			keys[i] = s.Expr.exprString()
			if s.Desc {
				keys[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if p.Skip != nil {
		b.WriteString(" SKIP " + p.Skip.exprString())
	}
	if p.Limit != nil {
		b.WriteString(" LIMIT " + p.Limit.exprString())
	}
	return b.String()
}

// WithClause is WITH ... [WHERE ...].
type WithClause struct {
	Projection
	Where Expr
}

func (w *WithClause) clauseString() string {
	s := "WITH " + w.projString()
	if w.Where != nil {
		s += " WHERE " + w.Where.exprString()
	}
	return s
}

// ReturnClause is RETURN ... .
type ReturnClause struct {
	Projection
}

func (r *ReturnClause) clauseString() string { return "RETURN " + r.projString() }

// UnwindClause is UNWIND expr AS var.
type UnwindClause struct {
	Expr  Expr
	Alias string
}

func (u *UnwindClause) clauseString() string {
	return "UNWIND " + u.Expr.exprString() + " AS " + quoteIdent(u.Alias)
}

// CreateClause is CREATE pattern[, pattern...].
type CreateClause struct {
	Patterns []*PatternPart
}

func (c *CreateClause) clauseString() string {
	parts := make([]string, len(c.Patterns))
	for i, p := range c.Patterns {
		parts[i] = p.String()
	}
	return "CREATE " + strings.Join(parts, ", ")
}

// SetItem is one assignment in a SET clause: either a property assignment
// (target.key = expr) or a label addition (target:Label).
type SetItem struct {
	Target string
	Key    string   // property key; empty for label set
	Labels []string // labels to add; empty for property set
	Value  Expr
}

func (si *SetItem) String() string {
	if len(si.Labels) > 0 {
		quoted := make([]string, len(si.Labels))
		for i, l := range si.Labels {
			quoted[i] = quoteIdent(l)
		}
		return quoteIdent(si.Target) + ":" + strings.Join(quoted, ":")
	}
	return quoteIdent(si.Target) + "." + quoteIdent(si.Key) + " = " + si.Value.exprString()
}

// SetClause is SET item[, item...].
type SetClause struct {
	Items []*SetItem
}

func (s *SetClause) clauseString() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "SET " + strings.Join(parts, ", ")
}

// DeleteClause is [DETACH] DELETE expr[, expr...].
type DeleteClause struct {
	Detach bool
	Exprs  []Expr
}

func (d *DeleteClause) clauseString() string {
	parts := make([]string, len(d.Exprs))
	for i, e := range d.Exprs {
		parts[i] = e.exprString()
	}
	kw := "DELETE "
	if d.Detach {
		kw = "DETACH DELETE "
	}
	return kw + strings.Join(parts, ", ")
}

// ---------- Expressions ----------

// Expr is an expression AST node.
type Expr interface {
	exprString() string
}

// Literal wraps a constant value.
type Literal struct {
	Value graph.Value
}

func (l *Literal) exprString() string {
	if l.Value.Kind() == graph.KindString {
		// Backslashes first, so escaped quotes aren't double-escaped.
		s := strings.ReplaceAll(l.Value.Str(), `\`, `\\`)
		return "'" + strings.ReplaceAll(s, "'", `\'`) + "'"
	}
	return l.Value.String()
}

// Variable references a bound name. Span covers the name token (zero when
// built programmatically).
type Variable struct {
	Name string
	Span Span
}

func (v *Variable) exprString() string { return quoteIdent(v.Name) }

// Parameter references an externally supplied value: $name.
type Parameter struct {
	Name string
}

func (p *Parameter) exprString() string { return "$" + p.Name }

// PropAccess is expr.key. KeySpan covers the key token (zero when built
// programmatically).
type PropAccess struct {
	Target  Expr
	Key     string
	KeySpan Span
}

func (p *PropAccess) exprString() string { return p.Target.exprString() + "." + quoteIdent(p.Key) }

// BinaryOp identifies a binary operator.
type BinaryOp uint8

const (
	OpEq BinaryOp = iota
	OpNeq
	OpLt
	OpGt
	OpLte
	OpGte
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpIn
	OpRegex
	OpStartsWith
	OpEndsWith
	OpContains
)

var binOpText = map[BinaryOp]string{
	OpEq: "=", OpNeq: "<>", OpLt: "<", OpGt: ">", OpLte: "<=", OpGte: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpIn: "IN", OpRegex: "=~",
	OpStartsWith: "STARTS WITH", OpEndsWith: "ENDS WITH", OpContains: "CONTAINS",
}

// Binary is L op R. OpSpan covers the operator token (the first keyword for
// multi-word operators such as STARTS WITH); zero when built
// programmatically.
type Binary struct {
	Op     BinaryOp
	L, R   Expr
	OpSpan Span
}

func (b *Binary) exprString() string {
	return "(" + b.L.exprString() + " " + binOpText[b.Op] + " " + b.R.exprString() + ")"
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

func (n *Not) exprString() string { return "NOT " + n.E.exprString() }

// Neg is unary minus.
type Neg struct {
	E Expr
}

func (n *Neg) exprString() string { return "-" + n.E.exprString() }

// IsNull is `expr IS NULL` (or IS NOT NULL when Negate).
type IsNull struct {
	E      Expr
	Negate bool
}

func (i *IsNull) exprString() string {
	if i.Negate {
		return i.E.exprString() + " IS NOT NULL"
	}
	return i.E.exprString() + " IS NULL"
}

// HasLabels is the label predicate `v:Label1:Label2`.
type HasLabels struct {
	E      Expr
	Labels []string
}

func (h *HasLabels) exprString() string {
	quoted := make([]string, len(h.Labels))
	for i, l := range h.Labels {
		quoted[i] = quoteIdent(l)
	}
	return h.E.exprString() + ":" + strings.Join(quoted, ":")
}

// FuncCall invokes a built-in function; Star marks count(*). NameSpan
// covers the function-name token (zero when built programmatically).
type FuncCall struct {
	Name     string // lowercase
	Distinct bool
	Star     bool
	Args     []Expr
	NameSpan Span
}

func (f *FuncCall) exprString() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.exprString()
	}
	inner := strings.Join(parts, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return f.Name + "(" + inner + ")"
}

// ListLit is a list literal [e1, e2, ...].
type ListLit struct {
	Elems []Expr
}

func (l *ListLit) exprString() string {
	parts := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		parts[i] = e.exprString()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Index is expr[expr] subscripting.
type Index struct {
	Target Expr
	Sub    Expr
}

func (ix *Index) exprString() string {
	return ix.Target.exprString() + "[" + ix.Sub.exprString() + "]"
}

// PatternPred is a pattern used as a boolean predicate in WHERE, including
// the exists((..)-[..]-(..)) form.
type PatternPred struct {
	Pattern *PatternPart
}

func (p *PatternPred) exprString() string { return p.Pattern.String() }

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []Expr
	Thens   []Expr
	Else    Expr
}

func (c *CaseExpr) exprString() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteString(" " + c.Operand.exprString())
	}
	for i := range c.Whens {
		b.WriteString(" WHEN " + c.Whens[i].exprString() + " THEN " + c.Thens[i].exprString())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.exprString())
	}
	b.WriteString(" END")
	return b.String()
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate function call (outside nested aggregates' arguments, which
// Cypher forbids anyway).
func ContainsAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncCall:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
		return false
	case *Binary:
		return ContainsAggregate(x.L) || ContainsAggregate(x.R)
	case *Not:
		return ContainsAggregate(x.E)
	case *Neg:
		return ContainsAggregate(x.E)
	case *IsNull:
		return ContainsAggregate(x.E)
	case *HasLabels:
		return ContainsAggregate(x.E)
	case *PropAccess:
		return ContainsAggregate(x.Target)
	case *Index:
		return ContainsAggregate(x.Target) || ContainsAggregate(x.Sub)
	case *ListLit:
		for _, e := range x.Elems {
			if ContainsAggregate(e) {
				return true
			}
		}
		return false
	case *CaseExpr:
		if ContainsAggregate(x.Operand) || ContainsAggregate(x.Else) {
			return true
		}
		for i := range x.Whens {
			if ContainsAggregate(x.Whens[i]) || ContainsAggregate(x.Thens[i]) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// aggregateFuncs lists built-in aggregate function names (lowercase).
var aggregateFuncs = map[string]bool{
	"count": true, "collect": true, "sum": true, "avg": true,
	"min": true, "max": true,
}

// IsAggregateFunc reports whether name (lowercase) is a built-in aggregate
// function.
func IsAggregateFunc(name string) bool { return aggregateFuncs[name] }
