package cypher

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

func TestStringFunctions(t *testing.T) {
	g := graph.New("s")
	res := run(t, g, `RETURN toLower('AbC') AS lo, toUpper('aBc') AS up, trim('  x ') AS tr,
		substring('hello', 1, 3) AS sub, substring('hello', 2) AS tail, split('a,b,c', ',') AS parts`)
	if res.Value(0, "lo").Str() != "abc" || res.Value(0, "up").Str() != "ABC" || res.Value(0, "tr").Str() != "x" {
		t.Error("case/trim functions wrong")
	}
	if res.Value(0, "sub").Str() != "ell" || res.Value(0, "tail").Str() != "llo" {
		t.Error("substring wrong")
	}
	if parts := res.Value(0, "parts"); parts.Kind() != graph.KindList || len(parts.List()) != 3 {
		t.Error("split wrong")
	}
	// Error paths.
	runErr(t, g, `RETURN toLower(1)`)
	runErr(t, g, `RETURN substring('x', 9)`)
	runErr(t, g, `RETURN substring(1, 2)`)
	runErr(t, g, `RETURN split(1, ',')`)
}

func TestConversionFunctions(t *testing.T) {
	g := graph.New("c")
	res := run(t, g, `RETURN toFloat('1.5') AS f, toFloat(2) AS fi, toBoolean('true') AS bt,
		toBoolean('FALSE') AS bf, toBoolean('?') AS bn, toInteger(3.9) AS ti, toInteger('2.5') AS ts`)
	if res.Value(0, "f").Float() != 1.5 || res.Value(0, "fi").Float() != 2 {
		t.Error("toFloat wrong")
	}
	if !res.Value(0, "bt").Bool() || res.Value(0, "bf").Bool() || !res.Value(0, "bn").IsNull() {
		t.Error("toBoolean wrong")
	}
	if res.Int(0, "ti") != 3 || res.Int(0, "ts") != 2 {
		t.Error("toInteger wrong")
	}
	res = run(t, g, `RETURN toInteger('x') AS nope, toFloat(null) AS fn`)
	if !res.Value(0, "nope").IsNull() || !res.Value(0, "fn").IsNull() {
		t.Error("invalid conversions should be null")
	}
}

func TestStartEndNodeAndKeys(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (:User {id: 1})-[r:FOLLOWS]->() RETURN startNode(r) AS s, endNode(r) AS e, keys(r) AS ks`)
	if res.Rows[0][0].Node == nil || res.Rows[0][1].Node == nil {
		t.Fatal("startNode/endNode should return nodes")
	}
	if res.Rows[0][0].Node.Prop("name").Str() != "alice" {
		t.Error("startNode wrong")
	}
	ks := res.Value(0, "ks")
	if ks.Kind() != graph.KindList || ks.List()[0].Str() != "since" {
		t.Errorf("keys(r) = %v", ks)
	}
	runErr(t, g, `MATCH (u:User) RETURN startNode(u)`)
	runErr(t, g, `MATCH (u:User) RETURN type(u)`)
	runErr(t, g, `MATCH ()-[r]->() RETURN labels(r)`)
}

func TestListOperations(t *testing.T) {
	g := graph.New("l")
	res := run(t, g, `RETURN [1,2] + [3] AS cat, [1,2,3][0] AS first, [1,2,3][-1] AS last, [1,2,3][9] AS oob`)
	if cat := res.Value(0, "cat"); len(cat.List()) != 3 {
		t.Error("list concat wrong")
	}
	if res.Int(0, "first") != 1 || res.Int(0, "last") != 3 {
		t.Error("list index wrong")
	}
	if !res.Value(0, "oob").IsNull() {
		t.Error("out-of-bounds index should be null")
	}
	// IN with null members.
	res = run(t, g, `RETURN 2 IN [1, null, 2] AS hit, 3 IN [1, null] AS miss`)
	if !res.Value(0, "hit").Bool() {
		t.Error("IN with hit wrong")
	}
	if !res.Value(0, "miss").IsNull() {
		t.Error("IN miss over null-bearing list should be null")
	}
	runErr(t, g, `RETURN 1 IN 2`)
	runErr(t, g, `RETURN [1][true]`)
}

func TestXorAndBooleanNulls(t *testing.T) {
	g := graph.New("x")
	res := run(t, g, `RETURN true XOR false AS a, true XOR true AS b, (null = 1) XOR true AS c`)
	if !res.Value(0, "a").Bool() || res.Value(0, "b").Bool() {
		t.Error("XOR wrong")
	}
	if !res.Value(0, "c").IsNull() {
		t.Error("XOR with null should be null")
	}
	// OR short-circuit and null combination.
	res = run(t, g, `RETURN (null = 1) OR true AS t, (null = 1) OR false AS n, false OR false AS f`)
	if !res.Value(0, "t").Bool() || !res.Value(0, "n").IsNull() || res.Value(0, "f").Bool() {
		t.Error("OR three-valued logic wrong")
	}
	res = run(t, g, `RETURN (null = 1) AND false AS f2, (null = 1) AND true AS n2`)
	if res.Value(0, "f2").Bool() || !res.Value(0, "n2").IsNull() {
		t.Error("AND three-valued logic wrong")
	}
	runErr(t, g, `RETURN 1 AND true`)
}

func TestCaseWithOperand(t *testing.T) {
	g := graph.New("cs")
	res := run(t, g, `RETURN CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END AS w,
		CASE 9 WHEN 1 THEN 'one' END AS miss`)
	if res.Value(0, "w").Str() != "two" {
		t.Error("operand CASE wrong")
	}
	if !res.Value(0, "miss").IsNull() {
		t.Error("unmatched CASE without ELSE should be null")
	}
}

func TestNullArithmeticAndConcat(t *testing.T) {
	g := graph.New("na")
	res := run(t, g, `RETURN null + 1 AS n, 'v=' + 2.5 AS s, -1.5 AS negf`)
	if !res.Value(0, "n").IsNull() {
		t.Error("null arithmetic should be null")
	}
	if res.Value(0, "s").Str() != "v=2.5" {
		t.Error("string+number concat wrong")
	}
	if res.Value(0, "negf").Float() != -1.5 {
		t.Error("unary minus on float wrong")
	}
	runErr(t, g, `RETURN true + 1`)
	runErr(t, g, `RETURN -'x'`)
	runErr(t, g, `RETURN 1.5 % 2`)
	runErr(t, g, `RETURN 1.0 / 0.0`)
}

func TestBacktickIdentifiers(t *testing.T) {
	g := graph.New("bt")
	g.AddNode([]string{"Weird Label"}, graph.Props{"id": graph.NewInt(1)})
	res := run(t, g, "MATCH (n:`Weird Label`) RETURN count(*) AS c")
	if res.FirstInt("c") != 1 {
		t.Error("backtick label match failed")
	}
}

func TestAggregateInExpression(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) RETURN count(*) + 1 AS plus, collect(u.id)[0] AS firstID`)
	if res.Int(0, "plus") != 4 {
		t.Errorf("count(*)+1 = %d", res.Int(0, "plus"))
	}
	if res.Int(0, "firstID") != 1 {
		t.Errorf("collect()[0] = %d", res.Int(0, "firstID"))
	}
	// Aggregate misuse.
	runErr(t, g, `MATCH (u:User) WHERE count(*) > 1 RETURN u`)
}

func TestRelPropsInPattern(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (a)-[r:FOLLOWS {since: 2019}]->(b) RETURN b.name AS n`)
	if res.Len() != 1 || res.Value(0, "n").Str() != "bob" {
		t.Errorf("rel props filter wrong: %+v", res.Rows)
	}
	res = run(t, g, `MATCH (a)-[r:FOLLOWS {since: 1999}]->(b) RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Error("non-matching rel props should filter")
	}
}

func TestSetOnMissingAndNullTargets(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	if _, err := ex.Run(`MATCH (u:User) SET ghost.x = 1`, nil); err == nil {
		t.Error("SET on undefined var should fail")
	}
	// SET on a null from OPTIONAL MATCH is a no-op.
	if _, err := ex.Run(`MATCH (u:User {id: 3}) OPTIONAL MATCH (u)-[:POSTS]->(t) SET t.flag = true`, nil); err != nil {
		t.Errorf("SET on null should no-op: %v", err)
	}
	// SET a scalar target fails.
	if _, err := ex.Run(`MATCH (u:User) WITH u.id AS x SET x.y = 1`, nil); err == nil {
		t.Error("SET on scalar should fail")
	}
}

func TestDeleteNullAndScalar(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	if _, err := ex.Run(`MATCH (u:User {id: 3}) OPTIONAL MATCH (u)-[:POSTS]->(t) DELETE t`, nil); err != nil {
		t.Errorf("DELETE null should no-op: %v", err)
	}
	if _, err := ex.Run(`MATCH (u:User) WITH u.id AS x DELETE x`, nil); err == nil {
		t.Error("DELETE scalar should fail")
	}
}

func TestUnwindScalarAndNull(t *testing.T) {
	g := graph.New("us")
	res := run(t, g, `UNWIND 5 AS x RETURN x`)
	if res.Len() != 1 || res.Int(0, "x") != 5 {
		t.Error("UNWIND scalar should yield one row")
	}
	res = run(t, g, `UNWIND null AS x RETURN count(*) AS c`)
	if res.FirstInt("c") != 0 {
		t.Error("UNWIND null should yield no rows")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	g := graph.New("ob")
	for i, pair := range [][2]int64{{1, 9}, {1, 3}, {0, 5}} {
		g.AddNode([]string{"N"}, graph.Props{"a": graph.NewInt(pair[0]), "b": graph.NewInt(pair[1]), "i": graph.NewInt(int64(i))})
	}
	res := run(t, g, `MATCH (n:N) RETURN n.a AS a, n.b AS b ORDER BY a ASC, b DESC`)
	if res.Int(0, "a") != 0 || res.Int(1, "b") != 9 || res.Int(2, "b") != 3 {
		t.Errorf("multi-key order wrong: %+v", res.Rows)
	}
	// SKIP/LIMIT type errors.
	runErr(t, g, `MATCH (n:N) RETURN n.a LIMIT 'x'`)
	runErr(t, g, `MATCH (n:N) RETURN n.a SKIP -1`)
}

func TestResultHelpersMore(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `RETURN 2.9 AS f`)
	if res.Int(0, "f") != 2 {
		t.Error("Int on float column should truncate")
	}
	res = run(t, g, `MATCH (:User {id:1})-[r:FOLLOWS]->() RETURN r`)
	if !strings.Contains(res.Rows[0][0].Display(), "FOLLOWS") {
		t.Error("edge Display wrong")
	}
	if NullDatum.Display() != "null" {
		t.Error("null Display wrong")
	}
}

func TestClauseStringRoundTripsMutations(t *testing.T) {
	srcs := []string{
		`CREATE (a:User {id: 1})-[:KNOWS]->(b:User)`,
		`MATCH (n:User) SET n.seen = true, n:Audited`,
		`MATCH (n:User) DETACH DELETE n`,
		`MATCH (n)-[r]->() DELETE r`,
		`UNWIND [1, 2] AS x RETURN x`,
		`MATCH (a)-[r:R*2..3]->(b) RETURN count(*)`,
		`MATCH (a {k: 1})-[r:R {w: 2}]->(b) RETURN CASE WHEN a.k > 0 THEN 'p' ELSE 'n' END AS s`,
		`MATCH (n) RETURN n.x SKIP 1 LIMIT 2`,
		`MATCH (n) WHERE n.name STARTS WITH 'a' RETURN DISTINCT n.name ORDER BY n.name DESC`,
		`MATCH (n) RETURN count(DISTINCT n.x)`,
		`RETURN $param`,
		`RETURN -x.value`,
		`RETURN NOT true`,
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", text, err)
			continue
		}
		if q2.String() != text {
			t.Errorf("unstable round trip:\n1: %s\n2: %s", text, q2.String())
		}
	}
}

func TestOptionalMatchWithWhere(t *testing.T) {
	g := socialGraph()
	// WHERE belongs to the OPTIONAL MATCH: rows failing it become null.
	res := run(t, g, `MATCH (u:User) OPTIONAL MATCH (u)-[:POSTS]->(t:Tweet) WHERE t.createdAt > 1500
		RETURN u.name AS n, count(t) AS c ORDER BY n`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	// alice has one tweet after 1500 (t2 at 2000).
	if res.Int(0, "c") != 1 {
		t.Errorf("alice count = %d", res.Int(0, "c"))
	}
	if res.Int(1, "c") != 0 || res.Int(2, "c") != 0 {
		t.Error("bob/carol should have zero")
	}
}

func TestCreateValidationErrors(t *testing.T) {
	g := graph.New("cv")
	ex := NewExecutor(g)
	for _, src := range []string{
		`CREATE (a)-[:R]-(b)`,       // undirected
		`CREATE (a)-[:R|S]->(b)`,    // multi-type
		`CREATE (a)-[:R*2]->(b)`,    // var length
		`CREATE (a:X) CREATE (a:Y)`, // re-labeling bound var
	} {
		if _, err := ex.Run(src, nil); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
	// CREATE with evaluated props and incoming direction.
	res, err := ex.Run(`CREATE (a:X {v: 1 + 1})<-[:R {w: 2 * 2}]-(b:Y)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesCreated != 2 || res.Stats.EdgesCreated != 1 {
		t.Error("create stats wrong")
	}
	r2, _ := ex.Run(`MATCH (b:Y)-[r:R]->(a:X) RETURN r.w AS w, a.v AS v`, nil)
	if r2.Int(0, "w") != 4 || r2.Int(0, "v") != 2 {
		t.Error("incoming-direction create wrong")
	}
}

func TestCoalesceAndRange(t *testing.T) {
	g := graph.New("cr")
	res := run(t, g, `RETURN coalesce(null, null, 'x') AS c, range(0, 10, 5) AS r, range(3, 1, -1) AS rev`)
	if res.Value(0, "c").Str() != "x" {
		t.Error("coalesce wrong")
	}
	if r := res.Value(0, "r").List(); len(r) != 3 || r[2].Int() != 10 {
		t.Error("range step wrong")
	}
	if rev := res.Value(0, "rev").List(); len(rev) != 3 || rev[0].Int() != 3 {
		t.Error("reverse range wrong")
	}
	runErr(t, g, `RETURN range(1, 2, 0)`)
	runErr(t, g, `RETURN range('a', 'b')`)
}

func TestAbsHeadLastEdgeCases(t *testing.T) {
	g := graph.New("ah")
	res := run(t, g, `RETURN abs(-2.5) AS af, head([]) AS h, last([]) AS l, size(null) AS s`)
	if res.Value(0, "af").Float() != 2.5 {
		t.Error("abs float wrong")
	}
	if !res.Value(0, "h").IsNull() || !res.Value(0, "l").IsNull() || !res.Value(0, "s").IsNull() {
		t.Error("empty-list/null edge cases wrong")
	}
	runErr(t, g, `RETURN abs('x')`)
	runErr(t, g, `RETURN head(1)`)
	runErr(t, g, `RETURN size(true)`)
}

func TestMinMaxStrings(t *testing.T) {
	g := graph.New("mm")
	for _, s := range []string{"cherry", "apple", "banana"} {
		g.AddNode([]string{"F"}, graph.Props{"name": graph.NewString(s)})
	}
	res := run(t, g, `MATCH (f:F) RETURN min(f.name) AS mn, max(f.name) AS mx`)
	if res.Value(0, "mn").Str() != "apple" || res.Value(0, "mx").Str() != "cherry" {
		t.Errorf("string min/max wrong: %+v", res.Rows)
	}
}

func TestExistsPropertyFunction(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) WHERE exists(u.verified) RETURN count(*) AS c`)
	if res.FirstInt("c") != 2 {
		t.Errorf("exists(prop) = %d", res.FirstInt("c"))
	}
}

func TestSemicolonTermination(t *testing.T) {
	g := socialGraph()
	res := run(t, g, `MATCH (u:User) RETURN count(*) AS c;`)
	if res.FirstInt("c") != 3 {
		t.Error("trailing semicolon should be accepted")
	}
}
