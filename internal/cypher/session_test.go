package cypher

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
)

func sessionGraph(n int) *graph.Graph {
	g := graph.New("session")
	for i := 0; i < n; i++ {
		g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
	}
	return g
}

// drain collects all rows from a cursor and returns them with the
// terminal error.
func drain(c *Cursor) ([][]Datum, error) {
	var rows [][]Datum
	for c.Next() {
		rows = append(rows, c.Record())
	}
	return rows, c.Err()
}

func TestSessionStreamedRun(t *testing.T) {
	ex := NewExecutor(sessionGraph(10))
	s := ex.OpenSession()
	defer s.Close()

	c, err := s.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cols := c.Columns(); len(cols) != 1 || cols[0] != "i" {
		t.Fatalf("columns = %v", cols)
	}
	rows, err := drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	res, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exec.Streamed {
		t.Fatalf("expected streamed execution, got:\n%s", res.Exec.String())
	}
	if res.Rows != nil {
		t.Fatalf("streamed summary should not retain rows")
	}
}

func TestSessionStreamSkipLimit(t *testing.T) {
	ex := NewExecutor(sessionGraph(100))
	s := ex.OpenSession()
	defer s.Close()

	c, err := s.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i SKIP 5 LIMIT 7`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
}

// TestSessionMaterializedFallback runs an aggregate (outside the stream
// plan shape) and expects identical cursor behaviour via the replay path.
func TestSessionMaterializedFallback(t *testing.T) {
	ex := NewExecutor(sessionGraph(10))
	s := ex.OpenSession()
	defer s.Close()

	c, err := s.Run(context.Background(), `MATCH (n:N) RETURN count(*) AS n`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Val.Int() != 10 {
		t.Fatalf("rows = %v", rows)
	}
	res, _ := c.Summary()
	if res.Exec.Streamed {
		t.Fatalf("aggregate should not take the streaming plan")
	}
}

// TestSessionStreamBudgetKill verifies a row-budget kill surfaces as a
// typed error on the cursor after the rows that preceded it.
func TestSessionStreamBudgetKill(t *testing.T) {
	ex := NewExecutor(sessionGraph(100), WithMaxRows(10))
	s := ex.OpenSession()
	defer s.Close()

	c, err := s.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drain(c)
	var re *ResourceExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceExhaustedError", err)
	}
	if re.Resource != "rows" {
		t.Fatalf("resource = %q, want rows", re.Resource)
	}
	if len(rows) > 10 {
		t.Fatalf("got %d rows past a 10-row budget", len(rows))
	}
}

// TestSessionEarlyClose closes a cursor mid-stream: the run goroutine
// must exit (no leak), Err must stay nil (deliberate close), and the
// next Run on the session must work.
func TestSessionEarlyClose(t *testing.T) {
	ex := NewExecutor(sessionGraph(2000))
	s := ex.OpenSession()
	defer s.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c, err := s.Run(context.Background(), `MATCH (a:N), (b:N) RETURN a.i AS x`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Next() {
			t.Fatalf("iter %d: no first row", i)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestSessionAdmission wires a governor and checks Run admits
// synchronously, rejections surface at Run, and counters reconcile once
// streams finish.
func TestSessionAdmission(t *testing.T) {
	gov := governor.New(governor.Config{MaxConcurrent: 1, MaxQueue: 0})
	ex := NewExecutor(sessionGraph(50), WithAdmission(gov))

	s1 := ex.OpenSession()
	defer s1.Close()
	c1, err := s1.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The slot is held while c1 streams: a second run must be rejected.
	s2 := ex.OpenSession()
	defer s2.Close()
	_, err = s2.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i`, nil)
	var rej *governor.AdmissionRejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *AdmissionRejectedError", err)
	}
	if _, err := drain(c1); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	st := gov.Stats()
	if st.Active != 0 || st.Admitted != st.Completed+st.Killed {
		t.Fatalf("governor counters do not reconcile: %+v", st)
	}
}

func TestSessionTxCommit(t *testing.T) {
	ex := NewExecutor(sessionGraph(0))
	s := ex.OpenSession()
	defer s.Close()

	if err := s.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := s.Run(context.Background(), `CREATE (p:P {k: 1})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := len(ex.g.NodesWithLabel("P")); n != 1 {
		t.Fatalf("committed nodes = %d, want 1", n)
	}
	if err := s.Commit(); !errors.Is(err, ErrNoTx) {
		t.Fatalf("double commit err = %v, want ErrNoTx", err)
	}
}

func TestSessionTxRollbackCreate(t *testing.T) {
	ex := NewExecutor(sessionGraph(3))
	s := ex.OpenSession()
	defer s.Close()

	if err := s.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`CREATE (p:P {k: 1})`,
		`CREATE (q:P {k: 2})`,
	} {
		c, err := s.Run(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := drain(c); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(ex.g.NodesWithLabel("P")); n != 2 {
		t.Fatalf("pre-rollback: %d P nodes (read-uncommitted writes should be live)", n)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := len(ex.g.NodesWithLabel("P")); n != 0 {
		t.Fatalf("post-rollback: %d P nodes, want 0", n)
	}
	if n := len(ex.g.NodesWithLabel("N")); n != 3 {
		t.Fatalf("post-rollback: %d N nodes, want 3", n)
	}
}

func TestSessionTxRollbackSetAndDelete(t *testing.T) {
	g := graph.New("tx")
	a := g.AddNode([]string{"A"}, graph.Props{"v": graph.NewInt(1)})
	b := g.AddNode([]string{"A"}, graph.Props{"v": graph.NewInt(2)})
	e := g.MustAddEdge(a.ID, b.ID, []string{"R"}, graph.Props{"w": graph.NewInt(9)})
	ex := NewExecutor(g)
	s := ex.OpenSession()
	defer s.Close()

	if err := s.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`MATCH (x:A) WHERE x.v = 1 SET x.v = 100`,
		`MATCH (x:A) WHERE x.v = 2 DETACH DELETE x`, // cascades the edge
	} {
		c, err := s.Run(context.Background(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := drain(c); err != nil {
			t.Fatal(err)
		}
	}
	if g.Node(b.ID) != nil {
		t.Fatalf("delete did not apply in-tx")
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := g.Node(a.ID); n == nil || n.Prop("v").Int() != 1 {
		t.Fatalf("SET not rolled back: %+v", n)
	}
	if n := g.Node(b.ID); n == nil || n.Prop("v").Int() != 2 {
		t.Fatalf("DELETE not rolled back: %+v", n)
	}
	if ge := g.Edge(e.ID); ge == nil || ge.Prop("w").Int() != 9 {
		t.Fatalf("cascaded edge not restored: %+v", ge)
	}
}

// TestSessionTxExcludesAutoCommitWrites: while a transaction is open,
// another session's auto-commit write must block until commit; reads
// proceed.
func TestSessionTxExcludesAutoCommitWrites(t *testing.T) {
	ex := NewExecutor(sessionGraph(3))
	s1 := ex.OpenSession()
	defer s1.Close()
	if err := s1.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := ex.OpenSession()
	defer s2.Close()
	// A read on another session is not blocked by the open tx.
	c, err := s2.Run(context.Background(), `MATCH (n:N) RETURN n.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := drain(c); err != nil || len(rows) != 3 {
		t.Fatalf("read under open tx: rows=%d err=%v", len(rows), err)
	}
	// An auto-commit write on another session queues behind the tx; with
	// a short ctx it must time out in lock acquisition, not deadlock.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = s2.Run(ctx, `CREATE (p:P)`, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("write under open tx: err = %v, want deadline exceeded", err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit the write goes through.
	c, err = s2.Run(context.Background(), `CREATE (p:P)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(c); err != nil {
		t.Fatal(err)
	}
	if n := len(ex.g.NodesWithLabel("P")); n != 1 {
		t.Fatalf("post-commit write: %d P nodes, want 1", n)
	}
}

// TestSessionCloseRollsBack: closing a session with an open transaction
// rolls it back.
func TestSessionCloseRollsBack(t *testing.T) {
	ex := NewExecutor(sessionGraph(0))
	s := ex.OpenSession()
	if err := s.Begin(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := s.Run(context.Background(), `CREATE (p:P)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drain(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(ex.g.NodesWithLabel("P")); n != 0 {
		t.Fatalf("close did not roll back: %d P nodes", n)
	}
	if _, err := s.Run(context.Background(), `MATCH (n) RETURN n`, nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("run after close: %v, want ErrSessionClosed", err)
	}
}

// TestStreamMatchesMaterialized cross-checks the streaming plan against
// the classic executor on the same query.
func TestStreamMatchesMaterialized(t *testing.T) {
	g := sessionGraph(50)
	queries := []string{
		`MATCH (n:N) RETURN n.i AS i`,
		`MATCH (n:N) WHERE n.i > 25 RETURN n.i AS i`,
		`MATCH (n:N) RETURN n.i AS a, n.i AS a`, // column dedup
	}
	for _, q := range queries {
		ref, err := NewExecutor(g).Run(q, nil)
		if err != nil {
			t.Fatalf("%s: ref: %v", q, err)
		}
		s := NewExecutor(g).OpenSession()
		c, err := s.Run(context.Background(), q, nil)
		if err != nil {
			t.Fatalf("%s: stream: %v", q, err)
		}
		cols := c.Columns()
		rows, err := drain(c)
		if err != nil {
			t.Fatalf("%s: drain: %v", q, err)
		}
		if len(cols) != len(ref.Columns) {
			t.Fatalf("%s: cols %v vs %v", q, cols, ref.Columns)
		}
		for i := range cols {
			if cols[i] != ref.Columns[i] {
				t.Fatalf("%s: cols %v vs %v", q, cols, ref.Columns)
			}
		}
		if len(rows) != len(ref.Rows) {
			t.Fatalf("%s: %d rows vs %d", q, len(rows), len(ref.Rows))
		}
		s.Close()
	}
}
