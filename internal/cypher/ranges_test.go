package cypher

import (
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/graph"
)

// rowStrings renders result rows canonically for order-sensitive
// comparison.
func rowStrings(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var b strings.Builder
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.Hashable())
		}
		out = append(out, b.String())
	}
	return out
}

func TestExtractRanges(t *testing.T) {
	parse := func(t *testing.T, src string) Expr {
		t.Helper()
		q, err := Parse("MATCH (a) WHERE " + src + " RETURN a")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return q.Clauses[0].(*MatchClause).Where
	}
	cases := []struct {
		where string
		vr    string
		key   string
		want  string // propRange.String() rendering, "" = no range extracted
	}{
		{"a.x > 5", "a", "x", "> 5"},
		{"a.x >= 5", "a", "x", ">= 5"},
		{"a.x < 5", "a", "x", "< 5"},
		{"a.x <= 5", "a", "x", "<= 5"},
		{"5 < a.x", "a", "x", "> 5"},
		{"a.x > 2 AND a.x <= 9", "a", "x", "> 2 AND <= 9"},
		{"a.x > 2 AND a.x > 7", "a", "x", "> 7"},
		{"a.name STARTS WITH 'al'", "a", "name", "STARTS WITH 'al'"},
		{"a.x > 5 OR a.y < 2", "a", "x", ""}, // OR is not a conjunction
		{"a.x > b.y", "a", "x", ""},          // non-literal bound
		{"a.x = 5", "a", "x", ""},            // equality is the eq index's job
	}
	for _, tc := range cases {
		w := extractRanges(parse(t, tc.where))
		r := w.forVar(tc.vr)[tc.key]
		got := ""
		if r != nil {
			got = r.String()
		}
		if got != tc.want {
			t.Errorf("extractRanges(%q)[%s.%s] = %q, want %q", tc.where, tc.vr, tc.key, got, tc.want)
		}
	}
}

// TestRangePushdownEquivalence pins that range pushdown changes the access
// path (RangeSeeks > 0) but never the rows or their order.
func TestRangePushdownEquivalence(t *testing.T) {
	g := socialGraph()
	queries := []string{
		"MATCH (u:User) WHERE u.id >= 2 RETURN u.name AS n",
		"MATCH (u:User) WHERE u.id > 1 AND u.id < 3 RETURN u.name AS n",
		"MATCH (t:Tweet) WHERE t.createdAt <= 1000 RETURN t.id AS i",
		"MATCH (u:User) WHERE u.name STARTS WITH 'a' RETURN u.id AS i",
		"MATCH (u:User)-[:POSTS]->(t:Tweet) WHERE t.createdAt < 1500 RETURN u.name AS n, t.id AS i",
	}
	on := NewExecutor(g)
	off := NewExecutor(g, WithRangePushdown(false))
	for _, q := range queries {
		ron, err := on.Run(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		roff, err := off.Run(q, nil)
		if err != nil {
			t.Fatalf("%s (pushdown off): %v", q, err)
		}
		a, b := rowStrings(ron), rowStrings(roff)
		if strings.Join(a, "\n") != strings.Join(b, "\n") {
			t.Errorf("%s: pushdown changed rows\non:  %v\noff: %v", q, a, b)
		}
		if ron.Exec.RangeSeeks == 0 {
			t.Errorf("%s: expected a range seek with pushdown on, stats: %+v", q, ron.Exec)
		}
		if roff.Exec.RangeSeeks != 0 {
			t.Errorf("%s: pushdown off still seeked: %+v", q, roff.Exec)
		}
	}
}

// TestEdgePropSeek pins the edge-index path for unlabeled anchors with
// typed, property-constrained relationships.
func TestEdgePropSeek(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	for _, q := range []string{
		"MATCH (a)-[r:FOLLOWS {since: 2019}]->(b) RETURN a.name AS x, b.name AS y",
		"MATCH (a)-[r:FOLLOWS]->(b) WHERE r.since >= 2019 RETURN a.name AS x",
	} {
		res, err := ex.Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%s: got %d rows, want 1", q, len(res.Rows))
		}
		if res.Exec.EdgeSeeks == 0 {
			t.Errorf("%s: expected an edge seek, stats: %+v", q, res.Exec)
		}
	}
	// Same rows without pushdown.
	off := NewExecutor(g, WithIndexPushdown(false))
	res, err := off.Run("MATCH (a)-[r:FOLLOWS]->(b) WHERE r.since >= 2019 RETURN a.name AS x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Exec.EdgeSeeks != 0 {
		t.Fatalf("pushdown-off edge query: %d rows, %d edge seeks", len(res.Rows), res.Exec.EdgeSeeks)
	}
}

// TestSeekInfoReported checks Explain and ExecStats surface the chosen seek
// bounds with estimated vs. actual rows.
func TestSeekInfoReported(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	res, err := ex.Run("MATCH (u:User) WHERE u.id >= 2 RETURN count(*) AS n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exec.Seeks) == 0 {
		t.Fatalf("no SeekInfo recorded: %+v", res.Exec)
	}
	s := res.Exec.Seeks[0]
	if s.Var != "u" || s.Label != "User" || s.Key != "id" || s.Edge {
		t.Fatalf("seek descriptor: %+v", s)
	}
	if !strings.Contains(s.String(), "NodeRangeSeek(u:User.id >= 2)") {
		t.Fatalf("seek rendering: %s", s.String())
	}
	if s.Est != 2 || s.Rows != 2 {
		t.Fatalf("est/rows = %d/%d, want 2/2", s.Est, s.Rows)
	}
	if !strings.Contains(res.Exec.String(), "range seeks:") {
		t.Fatalf("ExecStats.String missing range seeks: %s", res.Exec.String())
	}

	plan, err := ex.Explain("MATCH (u:User) WHERE u.id >= 2 RETURN count(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NodeRangeSeek(u:User.id >= 2) ~2 candidate(s)") {
		t.Fatalf("explain missing range seek bounds:\n%s", plan)
	}
}

// TestExistsSuspendsRanges pins that WHERE ranges never narrow the anchor
// of a pattern-predicate probe that reuses a variable name.
func TestExistsSuspendsRanges(t *testing.T) {
	g := socialGraph()
	ex := NewExecutor(g)
	// The outer `u` is range-constrained; the exists() probe binds its own
	// anonymous pattern over the bound u, and must not inherit bounds for
	// unrelated vars.
	res, err := ex.Run(
		"MATCH (u:User) WHERE u.id >= 1 AND exists((u)-[:POSTS]->()) RETURN u.name AS n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // alice and bob post; carol does not
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

// TestOptionsAndShimsAgree pins the functional options API and the
// deprecated Set* shims to identical behavior.
func TestOptionsAndShimsAgree(t *testing.T) {
	g := socialGraph()

	viaOpts := NewExecutor(g,
		WithShardWorkers(4),
		WithReorder(false),
		WithRangePushdown(false),
		WithIndexPushdown(false),
		WithCountFastPath(false),
		WithPlanCacheCap(2),
	)
	viaSetters := NewExecutor(g)
	viaSetters.SetShardWorkers(4)
	viaSetters.SetReorder(false)
	viaSetters.SetRangePushdown(false)
	viaSetters.SetIndexPushdown(false)
	viaSetters.SetCountFastPath(false)
	viaSetters.SetPlanCacheCap(2)

	if viaOpts.shardWorkers != viaSetters.shardWorkers ||
		viaOpts.noReorder != viaSetters.noReorder ||
		viaOpts.noRangePushdown != viaSetters.noRangePushdown ||
		viaOpts.noPushdown != viaSetters.noPushdown ||
		viaOpts.noCountFast != viaSetters.noCountFast {
		t.Fatalf("options %+v and setters %+v configure different executors",
			viaOpts.shardWorkers, viaSetters.shardWorkers)
	}

	q := "MATCH (u:User) WHERE u.id >= 2 RETURN u.name AS n"
	a, err := viaOpts.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaSetters.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowStrings(a), "\n") != strings.Join(rowStrings(b), "\n") {
		t.Fatalf("options/setters diverged: %v vs %v", rowStrings(a), rowStrings(b))
	}
	if a.Exec.RangeSeeks != 0 || b.Exec.RangeSeeks != 0 {
		t.Fatal("range pushdown should be off under both constructions")
	}
}

// TestNumericBoundWidening pins the int/float unification: numeric bounds
// widen to inclusive at the seek layer, and the WHERE re-check restores
// exactness, so mixed int/float comparisons stay correct.
func TestNumericBoundWidening(t *testing.T) {
	g := graph.New("nums")
	g.AddNode([]string{"N"}, graph.Props{"x": graph.NewFloat(2.5)})
	g.AddNode([]string{"N"}, graph.Props{"x": graph.NewInt(2)})
	g.AddNode([]string{"N"}, graph.Props{"x": graph.NewInt(3)})
	// Only 2.5 falls strictly between 2 and 3; the widened seek may admit
	// the endpoints but the WHERE re-check must reject them.
	on, err := NewExecutor(g).Run("MATCH (n:N) WHERE n.x > 2 AND n.x < 3 RETURN n.x AS x", nil)
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewExecutor(g, WithRangePushdown(false)).Run("MATCH (n:N) WHERE n.x > 2 AND n.x < 3 RETURN n.x AS x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Rows) != 1 {
		t.Fatalf("strict numeric range returned %d rows, want 1 (just 2.5)", len(on.Rows))
	}
	if strings.Join(rowStrings(on), "\n") != strings.Join(rowStrings(off), "\n") {
		t.Fatalf("widening broke equivalence: %v vs %v", rowStrings(on), rowStrings(off))
	}
}
