package cypher

import (
	"sort"
	"strconv"
	"strings"

	"github.com/graphrules/graphrules/internal/graph"
)

// evalFunc dispatches non-aggregate built-in functions.
func (c *evalCtx) evalFunc(f *FuncCall, row Row) (Datum, error) {
	argN := func(n int) error {
		if len(f.Args) != n {
			return execErrf("%s() expects %d argument(s), got %d", f.Name, n, len(f.Args))
		}
		return nil
	}
	one := func() (Datum, error) {
		if err := argN(1); err != nil {
			return NullDatum, err
		}
		return c.eval(f.Args[0], row)
	}

	switch f.Name {
	case "id":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		switch {
		case d.Node != nil:
			return ValDatum(graph.NewInt(int64(d.Node.ID))), nil
		case d.Edge != nil:
			return ValDatum(graph.NewInt(int64(d.Edge.ID))), nil
		case d.IsNull():
			return NullDatum, nil
		default:
			return NullDatum, execErrf("id() requires a node or relationship")
		}
	case "labels":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		if d.IsNull() {
			return NullDatum, nil
		}
		if d.Node == nil {
			return NullDatum, execErrf("labels() requires a node")
		}
		out := make([]graph.Value, len(d.Node.Labels))
		for i, l := range d.Node.Labels {
			out[i] = graph.NewString(l)
		}
		return ValDatum(graph.NewList(out...)), nil
	case "type":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		if d.IsNull() {
			return NullDatum, nil
		}
		if d.Edge == nil {
			return NullDatum, execErrf("type() requires a relationship")
		}
		return ValDatum(graph.NewString(d.Edge.Type())), nil
	case "keys":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		var props graph.Props
		switch {
		case d.Node != nil:
			props = d.Node.Props
		case d.Edge != nil:
			props = d.Edge.Props
		case d.IsNull():
			return NullDatum, nil
		default:
			return NullDatum, execErrf("keys() requires a node or relationship")
		}
		keys := props.Keys()
		out := make([]graph.Value, len(keys))
		for i, k := range keys {
			out[i] = graph.NewString(k)
		}
		return ValDatum(graph.NewList(out...)), nil
	case "startnode", "endnode":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		if d.IsNull() {
			return NullDatum, nil
		}
		if d.Edge == nil {
			return NullDatum, execErrf("%s() requires a relationship", f.Name)
		}
		id := d.Edge.From
		if f.Name == "endnode" {
			id = d.Edge.To
		}
		return NodeDatum(c.g.Node(id)), nil
	case "exists":
		// exists(n.prop): true when the property is present.
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		return ValDatum(graph.NewBool(!d.IsNull())), nil
	case "size", "length":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindList:
			return ValDatum(graph.NewInt(int64(len(v.List())))), nil
		case graph.KindString:
			return ValDatum(graph.NewInt(int64(len(v.Str())))), nil
		default:
			return NullDatum, execErrf("%s() requires a list or string, got %s", f.Name, v.Kind())
		}
	case "head", "last":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		if v.IsNull() {
			return NullDatum, nil
		}
		if v.Kind() != graph.KindList {
			return NullDatum, execErrf("%s() requires a list", f.Name)
		}
		lst := v.List()
		if len(lst) == 0 {
			return NullDatum, nil
		}
		if f.Name == "head" {
			return ValDatum(lst[0]), nil
		}
		return ValDatum(lst[len(lst)-1]), nil
	case "tostring":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		if v.IsNull() {
			return NullDatum, nil
		}
		return ValDatum(graph.NewString(v.Display())), nil
	case "tointeger", "toint":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindInt:
			return ValDatum(v), nil
		case graph.KindFloat:
			return ValDatum(graph.NewInt(int64(v.Float()))), nil
		case graph.KindString:
			if n, err := strconv.ParseInt(strings.TrimSpace(v.Str()), 10, 64); err == nil {
				return ValDatum(graph.NewInt(n)), nil
			}
			if fl, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64); err == nil {
				return ValDatum(graph.NewInt(int64(fl))), nil
			}
			return NullDatum, nil
		default:
			return NullDatum, nil
		}
	case "tofloat":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindInt:
			return ValDatum(graph.NewFloat(float64(v.Int()))), nil
		case graph.KindFloat:
			return ValDatum(v), nil
		case graph.KindString:
			if fl, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64); err == nil {
				return ValDatum(graph.NewFloat(fl)), nil
			}
			return NullDatum, nil
		default:
			return NullDatum, nil
		}
	case "toboolean":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindBool:
			return ValDatum(v), nil
		case graph.KindString:
			switch strings.ToLower(strings.TrimSpace(v.Str())) {
			case "true":
				return ValDatum(graph.NewBool(true)), nil
			case "false":
				return ValDatum(graph.NewBool(false)), nil
			}
			return NullDatum, nil
		default:
			return NullDatum, nil
		}
	case "tolower", "toupper", "trim":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		if v.IsNull() {
			return NullDatum, nil
		}
		if v.Kind() != graph.KindString {
			return NullDatum, execErrf("%s() requires a string", f.Name)
		}
		switch f.Name {
		case "tolower":
			return ValDatum(graph.NewString(strings.ToLower(v.Str()))), nil
		case "toupper":
			return ValDatum(graph.NewString(strings.ToUpper(v.Str()))), nil
		default:
			return ValDatum(graph.NewString(strings.TrimSpace(v.Str()))), nil
		}
	case "substring":
		if len(f.Args) != 2 && len(f.Args) != 3 {
			return NullDatum, execErrf("substring() expects 2 or 3 arguments")
		}
		sd, err := c.eval(f.Args[0], row)
		if err != nil {
			return NullDatum, err
		}
		fromD, err := c.eval(f.Args[1], row)
		if err != nil {
			return NullDatum, err
		}
		sv, fv := sd.Scalar(), fromD.Scalar()
		if sv.IsNull() || fv.IsNull() {
			return NullDatum, nil
		}
		if sv.Kind() != graph.KindString || fv.Kind() != graph.KindInt {
			return NullDatum, execErrf("substring() type error")
		}
		s := sv.Str()
		from := int(fv.Int())
		if from < 0 || from > len(s) {
			return NullDatum, execErrf("substring() start out of range")
		}
		end := len(s)
		if len(f.Args) == 3 {
			ld, err := c.eval(f.Args[2], row)
			if err != nil {
				return NullDatum, err
			}
			lv := ld.Scalar()
			if lv.IsNull() {
				return NullDatum, nil
			}
			if lv.Kind() != graph.KindInt {
				return NullDatum, execErrf("substring() type error")
			}
			end = from + int(lv.Int())
			if end > len(s) {
				end = len(s)
			}
		}
		return ValDatum(graph.NewString(s[from:end])), nil
	case "split":
		if err := argN(2); err != nil {
			return NullDatum, err
		}
		sd, err := c.eval(f.Args[0], row)
		if err != nil {
			return NullDatum, err
		}
		dd, err := c.eval(f.Args[1], row)
		if err != nil {
			return NullDatum, err
		}
		sv, dv := sd.Scalar(), dd.Scalar()
		if sv.IsNull() || dv.IsNull() {
			return NullDatum, nil
		}
		if sv.Kind() != graph.KindString || dv.Kind() != graph.KindString {
			return NullDatum, execErrf("split() requires strings")
		}
		parts := strings.Split(sv.Str(), dv.Str())
		out := make([]graph.Value, len(parts))
		for i, p := range parts {
			out[i] = graph.NewString(p)
		}
		return ValDatum(graph.NewList(out...)), nil
	case "abs":
		d, err := one()
		if err != nil {
			return NullDatum, err
		}
		v := d.Scalar()
		switch v.Kind() {
		case graph.KindNull:
			return NullDatum, nil
		case graph.KindInt:
			if v.Int() < 0 {
				return ValDatum(graph.NewInt(-v.Int())), nil
			}
			return ValDatum(v), nil
		case graph.KindFloat:
			if v.Float() < 0 {
				return ValDatum(graph.NewFloat(-v.Float())), nil
			}
			return ValDatum(v), nil
		default:
			return NullDatum, execErrf("abs() requires a number")
		}
	case "coalesce":
		for _, a := range f.Args {
			d, err := c.eval(a, row)
			if err != nil {
				return NullDatum, err
			}
			if !d.IsNull() {
				return d, nil
			}
		}
		return NullDatum, nil
	case "range":
		if len(f.Args) != 2 && len(f.Args) != 3 {
			return NullDatum, execErrf("range() expects 2 or 3 arguments")
		}
		vals := make([]int64, 0, 3)
		for _, a := range f.Args {
			d, err := c.eval(a, row)
			if err != nil {
				return NullDatum, err
			}
			v := d.Scalar()
			if v.Kind() != graph.KindInt {
				return NullDatum, execErrf("range() requires integers")
			}
			vals = append(vals, v.Int())
		}
		step := int64(1)
		if len(vals) == 3 {
			step = vals[2]
		}
		if step == 0 {
			return NullDatum, execErrf("range() step must not be zero")
		}
		var out []graph.Value
		if step > 0 {
			for i := vals[0]; i <= vals[1]; i += step {
				out = append(out, graph.NewInt(i))
			}
		} else {
			for i := vals[0]; i >= vals[1]; i += step {
				out = append(out, graph.NewInt(i))
			}
		}
		return ValDatum(graph.NewList(out...)), nil
	default:
		if fn, ok := testFuncs[f.Name]; ok {
			d, err := one()
			if err != nil {
				return NullDatum, err
			}
			return fn(d)
		}
		return NullDatum, execErrf("unknown function %s()", f.Name)
	}
}

// testFuncs lets in-package tests register extra scalar functions — the
// fault-injection hook the governor's panic-recovery regression tests use
// to detonate a panic deep inside (sharded) evaluation. Empty in
// production; consulted only after every built-in misses.
var testFuncs map[string]func(d Datum) (Datum, error)

// aggState accumulates one aggregate function over the rows of a group.
type aggState struct {
	fn       *FuncCall
	bud      *budget // memory budget charged per retained element; nil ungoverned
	count    int64
	sumI     int64
	sumF     float64
	sawFloat bool
	sawVal   bool
	minV     graph.Value
	maxV     graph.Value
	items    []graph.Value
	distinct map[string]bool
}

func newAggState(fn *FuncCall) *aggState {
	st := &aggState{fn: fn}
	if fn.Distinct {
		st.distinct = map[string]bool{}
	}
	return st
}

// add feeds one input row into the aggregate.
func (st *aggState) add(c *evalCtx, row Row) error {
	st.bud = c.bud()
	if st.fn.Star { // count(*)
		st.count++
		return nil
	}
	if len(st.fn.Args) != 1 {
		return execErrf("%s() expects 1 argument", st.fn.Name)
	}
	d, err := c.eval(st.fn.Args[0], row)
	if err != nil {
		return err
	}
	if d.IsNull() {
		return nil // aggregates skip nulls
	}
	return st.addValue(d.Scalar())
}

// addValue feeds one already-evaluated non-null value into the aggregate.
func (st *aggState) addValue(v graph.Value) error {
	if st.distinct != nil {
		h := v.Hashable()
		if st.distinct[h] {
			return nil
		}
		st.distinct[h] = true
		// Retain every first-seen distinct value so shard-local states can
		// merge with cross-shard deduplication (see merge); collect reads
		// the same list as its result.
		if err := st.bud.chargeMem(aggStateBytes); err != nil {
			return err
		}
		st.items = append(st.items, v)
	}
	st.count++
	st.sawVal = true
	switch st.fn.Name {
	case "collect":
		if st.distinct == nil {
			if err := st.bud.chargeMem(aggStateBytes); err != nil {
				return err
			}
			st.items = append(st.items, v)
		}
	case "sum", "avg":
		f, ok := v.AsFloat()
		if !ok {
			return execErrf("%s() requires numeric input, got %s", st.fn.Name, v.Kind())
		}
		st.sumF += f
		if v.Kind() == graph.KindFloat {
			st.sawFloat = true
		} else {
			st.sumI += v.Int()
		}
	case "min":
		if st.minV.IsNull() {
			st.minV = v
		} else if cv, ok := v.Compare(st.minV); ok && cv < 0 {
			st.minV = v
		}
	case "max":
		if st.maxV.IsNull() {
			st.maxV = v
		} else if cv, ok := v.Compare(st.maxV); ok && cv > 0 {
			st.maxV = v
		}
	}
	return nil
}

// result produces the aggregate's final value.
func (st *aggState) result() Datum {
	switch st.fn.Name {
	case "count":
		return ValDatum(graph.NewInt(st.count))
	case "collect":
		return ValDatum(graph.NewList(st.items...))
	case "sum":
		if st.sawFloat {
			return ValDatum(graph.NewFloat(st.sumF))
		}
		return ValDatum(graph.NewInt(st.sumI))
	case "avg":
		if !st.sawVal {
			return NullDatum
		}
		return ValDatum(graph.NewFloat(st.sumF / float64(st.count)))
	case "min":
		return ValDatum(st.minV)
	case "max":
		return ValDatum(st.maxV)
	default:
		return NullDatum
	}
}

// merge folds another state for the same aggregate into st. Shard workers
// each accumulate a private state over their candidate range; merging the
// states in shard order reproduces exactly the serial accumulation, because
// shards partition the serial candidate sequence contiguously. For DISTINCT
// aggregates the shard-local states retain their first-seen values, which
// merge replays through addValue so cross-shard duplicates collapse.
func (st *aggState) merge(o *aggState) error {
	if st.distinct != nil {
		for _, v := range o.items {
			if err := st.addValue(v); err != nil {
				return err
			}
		}
		return nil
	}
	st.count += o.count
	st.sumI += o.sumI
	st.sumF += o.sumF
	st.sawFloat = st.sawFloat || o.sawFloat
	st.sawVal = st.sawVal || o.sawVal
	st.items = append(st.items, o.items...)
	if st.minV.IsNull() {
		st.minV = o.minV
	} else if !o.minV.IsNull() {
		if cv, ok := o.minV.Compare(st.minV); ok && cv < 0 {
			st.minV = o.minV
		}
	}
	if st.maxV.IsNull() {
		st.maxV = o.maxV
	} else if !o.maxV.IsNull() {
		if cv, ok := o.maxV.Compare(st.maxV); ok && cv > 0 {
			st.maxV = o.maxV
		}
	}
	return nil
}

// collectAggregates gathers the aggregate FuncCall nodes inside an
// expression, in deterministic order.
func collectAggregates(e Expr, out *[]*FuncCall) {
	switch x := e.(type) {
	case nil:
		return
	case *FuncCall:
		if aggregateFuncs[x.Name] {
			*out = append(*out, x)
			return // nested aggregates are illegal; don't descend
		}
		for _, a := range x.Args {
			collectAggregates(a, out)
		}
	case *Binary:
		collectAggregates(x.L, out)
		collectAggregates(x.R, out)
	case *Not:
		collectAggregates(x.E, out)
	case *Neg:
		collectAggregates(x.E, out)
	case *IsNull:
		collectAggregates(x.E, out)
	case *HasLabels:
		collectAggregates(x.E, out)
	case *PropAccess:
		collectAggregates(x.Target, out)
	case *Index:
		collectAggregates(x.Target, out)
		collectAggregates(x.Sub, out)
	case *ListLit:
		for _, el := range x.Elems {
			collectAggregates(el, out)
		}
	case *CaseExpr:
		collectAggregates(x.Operand, out)
		for i := range x.Whens {
			collectAggregates(x.Whens[i], out)
			collectAggregates(x.Thens[i], out)
		}
		collectAggregates(x.Else, out)
	}
}

// sortedVarNames returns the sorted variable names bound in a row.
func sortedVarNames(r Row) []string {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
