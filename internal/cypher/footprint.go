package cypher

// Query footprints for O(delta) maintenance.
//
// A Footprint conservatively over-approximates what parts of the graph a
// query's result can depend on: which node labels and edge types it reads,
// and which property keys. Intersected with a graph.Delta — the per-epoch
// change summary — it answers "can this epoch have changed this query's
// result?" without running anything. Soundness is one-directional by
// design: a footprint may claim dependence it doesn't have (wasting a
// re-evaluation), but must never miss one (which would let a stale score
// survive). Anything the extractor does not understand therefore widens to
// "depends on everything".

import (
	"fmt"
	"sort"

	"github.com/graphrules/graphrules/internal/graph"
)

// Footprint is the read set of a query, over-approximated.
type Footprint struct {
	// NodeLabels / EdgeTypes are the labels and relationship types whose
	// element sets or properties the query reads. AnyNode / AnyEdge widen
	// to all of them (an unlabeled node or untyped relationship pattern
	// can bind anything).
	NodeLabels map[string]bool
	EdgeTypes  map[string]bool
	AnyNode    bool
	AnyEdge    bool

	// Keys are the property keys read; AllKeys widens to every key
	// (keys()/properties() make the whole map observable).
	Keys    map[string]bool
	AllKeys bool

	// Mutates marks a query with CREATE/SET/DELETE clauses. A mutating
	// query is never a pure function of a snapshot, so it intersects
	// every delta.
	Mutates bool
}

// NewFootprint returns an empty footprint (depends on nothing).
func NewFootprint() *Footprint {
	return &Footprint{
		NodeLabels: map[string]bool{},
		EdgeTypes:  map[string]bool{},
		Keys:       map[string]bool{},
	}
}

// widen makes the footprint depend on everything except mutation status.
func (f *Footprint) widen() {
	f.AnyNode = true
	f.AnyEdge = true
	f.AllKeys = true
}

// Wild reports whether the footprint has widened to everything.
func (f *Footprint) Wild() bool { return f.AnyNode && f.AnyEdge && f.AllKeys }

// Merge unions other into f (the footprint of running both queries).
func (f *Footprint) Merge(other *Footprint) {
	for l := range other.NodeLabels {
		f.NodeLabels[l] = true
	}
	for t := range other.EdgeTypes {
		f.EdgeTypes[t] = true
	}
	for k := range other.Keys {
		f.Keys[k] = true
	}
	f.AnyNode = f.AnyNode || other.AnyNode
	f.AnyEdge = f.AnyEdge || other.AnyEdge
	f.AllKeys = f.AllKeys || other.AllKeys
	f.Mutates = f.Mutates || other.Mutates
}

// Intersects reports whether an epoch's delta can affect the query's
// result. Per changed label/type: a structural change (membership) always
// intersects a label the query reads; a property-only change intersects
// when the query reads one of the changed keys (or all keys).
func (f *Footprint) Intersects(d *graph.Delta) bool {
	if f.Mutates {
		return true
	}
	for label, ed := range d.NodeChanges {
		if !f.AnyNode && !f.NodeLabels[label] {
			continue
		}
		if ed.Structural || f.AllKeys {
			return true
		}
		for k := range ed.Keys {
			if f.Keys[k] {
				return true
			}
		}
	}
	for typ, ed := range d.EdgeChanges {
		if !f.AnyEdge && !f.EdgeTypes[typ] {
			continue
		}
		if ed.Structural || f.AllKeys {
			return true
		}
		for k := range ed.Keys {
			if f.Keys[k] {
				return true
			}
		}
	}
	return false
}

// String renders the footprint compactly (for Explain/debugging).
func (f *Footprint) String() string {
	nodes := "nodes:any"
	if !f.AnyNode {
		nodes = fmt.Sprintf("nodes:%v", sortedKeys(f.NodeLabels))
	}
	edges := "edges:any"
	if !f.AnyEdge {
		edges = fmt.Sprintf("edges:%v", sortedKeys(f.EdgeTypes))
	}
	keys := "keys:all"
	if !f.AllKeys {
		keys = fmt.Sprintf("keys:%v", sortedKeys(f.Keys))
	}
	s := nodes + " " + edges + " " + keys
	if f.Mutates {
		s += " mutates"
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// QueryMutates reports whether the query contains a mutation clause.
func QueryMutates(q *Query) bool {
	for _, c := range q.Clauses {
		switch c.(type) {
		case *CreateClause, *SetClause, *DeleteClause:
			return true
		}
	}
	return false
}

// ExtractFootprint computes the footprint of a parsed query.
func ExtractFootprint(q *Query) *Footprint {
	f := NewFootprint()
	for _, c := range q.Clauses {
		switch cl := c.(type) {
		case *MatchClause:
			for _, p := range cl.Patterns {
				f.addPattern(p)
			}
			f.addExpr(cl.Where)
		case *WithClause:
			f.addProjection(&cl.Projection)
			f.addExpr(cl.Where)
		case *ReturnClause:
			f.addProjection(&cl.Projection)
		case *UnwindClause:
			f.addExpr(cl.Expr)
		case *CreateClause, *SetClause, *DeleteClause:
			// Mutations invalidate everything: the written elements, and —
			// through cascades — whatever a later epoch re-reads.
			f.Mutates = true
			f.widen()
		default:
			// A clause this extractor predates: assume it reads everything.
			f.widen()
		}
	}
	return f
}

// FootprintOf parses src and extracts its footprint.
func FootprintOf(src string) (*Footprint, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExtractFootprint(q), nil
}

func (f *Footprint) addPattern(p *PatternPart) {
	for _, np := range p.Nodes {
		if len(np.Labels) == 0 {
			f.AnyNode = true
		}
		for _, l := range np.Labels {
			f.NodeLabels[l] = true
		}
		for k, e := range np.Props {
			f.Keys[k] = true
			f.addExpr(e)
		}
	}
	for _, rp := range p.Rels {
		if len(rp.Types) == 0 {
			f.AnyEdge = true
		}
		for _, t := range rp.Types {
			f.EdgeTypes[t] = true
		}
		for k, e := range rp.Props {
			f.Keys[k] = true
			f.addExpr(e)
		}
	}
}

func (f *Footprint) addProjection(p *Projection) {
	for _, it := range p.Items {
		f.addExpr(it.Expr)
	}
	for _, s := range p.OrderBy {
		f.addExpr(s.Expr)
	}
	f.addExpr(p.Skip)
	f.addExpr(p.Limit)
}

func (f *Footprint) addExpr(e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Literal, *Variable, *Parameter:
		return
	case *PropAccess:
		f.Keys[x.Key] = true
		f.addExpr(x.Target)
	case *Binary:
		f.addExpr(x.L)
		f.addExpr(x.R)
	case *Not:
		f.addExpr(x.E)
	case *Neg:
		f.addExpr(x.E)
	case *IsNull:
		f.addExpr(x.E)
	case *HasLabels:
		// Membership of these labels is read; membership changes are
		// structural under the label, so listing them suffices.
		for _, l := range x.Labels {
			f.NodeLabels[l] = true
		}
		f.addExpr(x.E)
	case *FuncCall:
		switch x.Name {
		case "keys", "properties":
			// The entire property map becomes observable.
			f.AllKeys = true
		}
		for _, a := range x.Args {
			f.addExpr(a)
		}
	case *ListLit:
		for _, el := range x.Elems {
			f.addExpr(el)
		}
	case *Index:
		f.addExpr(x.Target)
		f.addExpr(x.Sub)
	case *PatternPred:
		f.addPattern(x.Pattern)
	case *CaseExpr:
		f.addExpr(x.Operand)
		for i := range x.Whens {
			f.addExpr(x.Whens[i])
			f.addExpr(x.Thens[i])
		}
		f.addExpr(x.Else)
	default:
		// Unknown expression node: widen rather than risk unsoundness.
		f.widen()
	}
}
