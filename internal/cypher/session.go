package cypher

// Session is the transport-agnostic query API: the Bolt server
// (internal/bolt), the cypher REPL and library callers all consume the
// engine through it. A Session owns at most one live Cursor (starting a
// new run closes the previous one, mirroring Bolt's one-stream-per-
// connection discipline) and optionally one explicit transaction.
//
// Streaming: Run executes the query on a dedicated goroutine and returns
// immediately with a Cursor; rows flow through a bounded channel, so a
// slow consumer backpressures the scan instead of materializing the
// result (stream.go). Queries outside the streaming plan shape fall back
// to the materialized executor and their rows are replayed through the
// same channel — the Cursor contract is identical either way.
//
// Admission: when the Executor carries an admission controller, Run
// admits synchronously — callers see AdmissionRejectedError before any
// goroutine is spawned — and the slot is released when the stream
// finishes (drained, failed, or closed), so governor counters track live
// streams, not just in-flight calls.
//
// Transactions: Begin takes the Executor's transaction lock exclusively,
// making explicit transactions single-writer across every session of the
// Executor; auto-commit mutating runs take it shared so they pair freely
// with each other but never interleave with an open transaction. Writes
// inside a transaction apply to the live graph immediately (readers on
// other sessions observe them — read-uncommitted, documented in
// DESIGN.md); Commit just publishes by releasing the lock, while
// Rollback compensates: every entity touched by the transaction (tracked
// via the graph's OnCommit deltas) is removed and its pre-transaction
// state restored from the Begin-time snapshot under the original IDs
// (graph.RestoreNode/RestoreEdge). Isolation holds only among writers
// that share the Executor (or at least its transaction lock).

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/graphrules/graphrules/internal/graph"
)

// Session errors, matched by transports to map onto protocol failures.
var (
	ErrSessionClosed    = errors.New("cypher: session is closed")
	ErrTxOpen           = errors.New("cypher: transaction already open")
	ErrNoTx             = errors.New("cypher: no open transaction")
	ErrCursorUnfinished = errors.New("cypher: cursor still streaming")
)

// Session is a stateful query channel over one Executor. Safe for
// sequential use; methods must not be called concurrently with each
// other (each network connection or REPL owns its own Session).
type Session struct {
	ex     *Executor
	mu     sync.Mutex
	cur    *Cursor
	tx     *sessionTx
	closed bool
}

// sessionTx is one open explicit transaction: the Begin-time snapshot,
// the commit-delta subscription capturing touched entity IDs, and the
// exclusive transaction-lock release.
type sessionTx struct {
	snap      *graph.Graph
	cancelSub func()
	unlock    func()

	mu    sync.Mutex // guards nodes/edges: OnCommit runs on the committing goroutine
	nodes map[graph.ID]bool
	edges map[graph.ID]bool
}

// OpenSession opens a session over the executor. Sessions share the
// executor's budgets, admission controller and transaction lock.
func (ex *Executor) OpenSession() *Session {
	return &Session{ex: ex}
}

// Run parses src and starts executing it, returning a streaming Cursor.
// Parse errors, admission rejections and context errors surface here;
// execution errors (budget kills, evaluation failures) surface on the
// Cursor after the rows that preceded them. A previous unfinished Cursor
// on this session is closed first.
func (s *Session) Run(cctx context.Context, src string, params map[string]graph.Value) (*Cursor, error) {
	if cctx == nil {
		cctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.finishCursorLocked()

	q, hit, err := s.ex.plan(src)
	if err != nil {
		return nil, err
	}

	// An auto-commit mutating run holds the transaction lock shared for
	// its whole execution, so it never interleaves with an open explicit
	// transaction (which holds it exclusively). Inside a transaction the
	// session already holds the exclusive lock — RWMutex is not
	// reentrant, so it must not be re-acquired here. Reads are untouched.
	var unlock func()
	if s.tx == nil && QueryMutates(q) {
		unlock, err = s.ex.lockTx(cctx, true)
		if err != nil {
			return nil, err
		}
	}

	var done func(error)
	if s.ex.admission != nil {
		done, err = s.ex.admission.Admit(cctx)
		if err != nil {
			if unlock != nil {
				unlock()
			}
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(cctx)
	c := &Cursor{
		sink:   newStreamSink(ctx),
		cancel: cancel,
		fin:    make(chan struct{}),
	}
	s.cur = c

	go func() {
		res, rerr := s.ex.executeProtected(ctx, q, params, c.sink)
		if res != nil {
			res.Exec.PlanCacheHit = hit
		}
		if rerr == nil && res != nil && !res.Exec.Streamed {
			// Materialized fallback: replay the collected rows through the
			// cursor channel so consumers see one contract.
			c.sink.publishColumns(res.Columns)
			for _, r := range res.Rows {
				if e := c.sink.emit(r); e != nil {
					rerr = e
					break
				}
			}
			res.Rows = nil
		}
		c.res, c.err = res, rerr
		close(c.sink.rows)
		close(c.fin)
		if done != nil {
			done(rerr)
		}
		if unlock != nil {
			unlock()
		}
	}()
	return c, nil
}

// finishCursorLocked closes the session's live cursor, if any, waiting
// for its goroutine (and its admission slot and lock holds) to finish.
func (s *Session) finishCursorLocked() {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
}

// Begin opens an explicit transaction: it acquires the executor's
// transaction lock exclusively (honoring ctx while queueing behind other
// writers), snapshots the graph for rollback, and subscribes to commit
// deltas to track the transaction's write set.
func (s *Session) Begin(cctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if s.tx != nil {
		return ErrTxOpen
	}
	s.finishCursorLocked()
	unlock, err := s.ex.lockTx(cctx, false)
	if err != nil {
		return err
	}
	tx := &sessionTx{
		snap:   s.ex.g.Snapshot(),
		unlock: unlock,
		nodes:  map[graph.ID]bool{},
		edges:  map[graph.ID]bool{},
	}
	tx.cancelSub = s.ex.g.OnCommit(func(d *graph.Delta) {
		tx.mu.Lock()
		for _, id := range d.Nodes {
			tx.nodes[id] = true
		}
		for _, id := range d.Edges {
			tx.edges[id] = true
		}
		tx.mu.Unlock()
	})
	s.tx = tx
	return nil
}

// Commit publishes the open transaction. Writes were applied to the live
// graph as they executed, so commit is release-only: drop the delta
// subscription and the exclusive lock. An unfinished cursor is closed
// first so no transaction statement is still executing at release.
func (s *Session) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == nil {
		return ErrNoTx
	}
	s.finishCursorLocked()
	tx := s.tx
	s.tx = nil
	tx.cancelSub()
	tx.unlock()
	return nil
}

// Rollback undoes the open transaction: every entity its statements
// touched is removed and the pre-transaction state restored from the
// Begin-time snapshot, under the original IDs. The compensation commits
// as ordinary epochs, so WAL and other subscribers log a consistent
// history.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == nil {
		return ErrNoTx
	}
	s.finishCursorLocked()
	tx := s.tx
	s.tx = nil
	tx.cancelSub()
	err := s.ex.rollbackTx(tx)
	tx.unlock()
	return err
}

// InTx reports whether the session has an open explicit transaction.
func (s *Session) InTx() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil
}

// Close ends the session: the live cursor is closed and an open
// transaction rolled back. Further calls return ErrSessionClosed.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.finishCursorLocked()
	if tx := s.tx; tx != nil {
		s.tx = nil
		tx.cancelSub()
		err := s.ex.rollbackTx(tx)
		tx.unlock()
		return err
	}
	return nil
}

// rollbackTx compensates one transaction's writes. Touched nodes are
// removed (cascading their current edges), then pre-transaction nodes
// are restored before edges so endpoints always exist. Untouched
// pre-transaction edges incident to a touched node are cascaded by the
// removal step, so they are restored too.
func (ex *Executor) rollbackTx(tx *sessionTx) error {
	g := ex.g
	snap := tx.snap
	tx.mu.Lock()
	nodes := sortedIDs(tx.nodes)
	edges := sortedIDs(tx.edges)
	tx.mu.Unlock()

	restoreEdges := map[graph.ID]bool{}
	for _, id := range edges {
		if snap.Edge(id) != nil {
			restoreEdges[id] = true
		}
	}
	for _, id := range nodes {
		if snap.Node(id) == nil {
			continue
		}
		for _, eid := range snap.OutEdges(id) {
			restoreEdges[eid] = true
		}
		for _, eid := range snap.InEdges(id) {
			restoreEdges[eid] = true
		}
	}

	for _, id := range nodes {
		if g.Node(id) != nil {
			g.RemoveNode(id)
		}
	}
	for _, id := range edges {
		if g.Edge(id) != nil {
			g.RemoveEdge(id)
		}
	}

	var firstErr error
	for _, id := range nodes {
		n := snap.Node(id)
		if n == nil {
			continue
		}
		if err := g.RestoreNode(n); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, id := range sortedIDs(restoreEdges) {
		e := snap.Edge(id)
		if e == nil || g.Edge(id) != nil {
			continue
		}
		if err := g.RestoreEdge(e); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func sortedIDs(m map[graph.ID]bool) []graph.ID {
	ids := make([]graph.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// lockTx acquires the executor's transaction lock (shared or exclusive)
// while honoring ctx cancellation: acquisition runs on a helper
// goroutine and exactly one side — the caller or the helper — claims the
// outcome, so an abandoned acquisition releases the lock itself and
// nothing leaks.
func (ex *Executor) lockTx(cctx context.Context, shared bool) (func(), error) {
	lock, unlock := ex.txMu.Lock, ex.txMu.Unlock
	if shared {
		lock, unlock = ex.txMu.RLock, ex.txMu.RUnlock
	}
	if cctx == nil || cctx.Done() == nil {
		lock()
		return unlock, nil
	}
	if err := cctx.Err(); err != nil {
		return nil, err
	}
	acquired := make(chan struct{})
	var claimed atomic.Bool
	go func() {
		lock()
		if claimed.CompareAndSwap(false, true) {
			close(acquired)
		} else {
			// Caller gave up while we queued; the lock is ours to release.
			unlock()
		}
	}()
	select {
	case <-acquired:
		return unlock, nil
	case <-cctx.Done():
		if claimed.CompareAndSwap(false, true) {
			return nil, cctx.Err()
		}
		// The helper won the claim race: the lock was acquired. Release
		// it and report the cancellation.
		<-acquired
		unlock()
		return nil, cctx.Err()
	}
}

// Cursor streams one run's rows. Next/Record/Err follow the database/sql
// idiom; Close cancels the run and releases its resources. A Cursor is
// not safe for concurrent use.
type Cursor struct {
	sink   *streamSink
	cancel context.CancelFunc
	fin    chan struct{} // closed after res/err are set and the run goroutine is done

	cols   []string
	colsOK bool
	cur    []Datum
	res    *Result
	err    error
	closed atomic.Bool
}

// Next advances to the next row, blocking until one is available or the
// stream ends. It returns false at end of stream — check Err then.
func (c *Cursor) Next() bool {
	row, ok := <-c.sink.rows
	if !ok {
		c.cur = nil
		return false
	}
	c.cur = row
	return true
}

// Record returns the current row. Valid after a true Next until the next
// Next call; the slice must not be retained across calls if mutated.
func (c *Cursor) Record() []Datum { return c.cur }

// Columns returns the result header, blocking until the run has
// determined it (immediately for streamed plans; at completion for
// materialized fallbacks that fail before projecting).
func (c *Cursor) Columns() []string {
	if c.colsOK {
		return c.cols
	}
	select {
	case cols := <-c.sink.cols:
		c.cols, c.colsOK = cols, true
	case <-c.fin:
		select {
		case cols := <-c.sink.cols:
			c.cols, c.colsOK = cols, true
		default:
			if c.res != nil {
				c.cols, c.colsOK = c.res.Columns, true
			}
		}
	}
	return c.cols
}

// Err returns the run's terminal error, or nil while streaming or after
// a clean finish. A cancellation caused by Close is not an error.
func (c *Cursor) Err() error {
	select {
	case <-c.fin:
	default:
		return nil
	}
	if c.err != nil && c.closed.Load() && errors.Is(c.err, context.Canceled) {
		return nil
	}
	return c.err
}

// Close cancels the run, drains the stream and waits for the run
// goroutine to finish (releasing its admission slot and lock holds).
// Closing a finished cursor is a no-op; Close returns Err.
func (c *Cursor) Close() error {
	c.closed.Store(true)
	c.cancel()
	for range c.sink.rows {
		// Drain so a producer blocked mid-emit always unblocks.
	}
	<-c.fin
	return c.Err()
}

// Summary returns the run's Result (stats, profile, columns; Rows are
// nil — they streamed through the cursor) and terminal error. It blocks
// until the stream completes, so call it after Next returns false or
// after Close.
func (c *Cursor) Summary() (*Result, error) {
	<-c.fin
	return c.res, c.Err()
}
