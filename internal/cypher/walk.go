package cypher

import "sort"

// This file exports read-only AST traversal helpers shared by the lint and
// correction layers. The walkers visit expressions in source order within
// each clause and never mutate the tree.

// WalkExpr visits e and every sub-expression, calling fn on each node
// (pre-order). A nil expression is a no-op.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Not:
		WalkExpr(x.E, fn)
	case *Neg:
		WalkExpr(x.E, fn)
	case *IsNull:
		WalkExpr(x.E, fn)
	case *HasLabels:
		WalkExpr(x.E, fn)
	case *PropAccess:
		WalkExpr(x.Target, fn)
	case *Index:
		WalkExpr(x.Target, fn)
		WalkExpr(x.Sub, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *ListLit:
		for _, el := range x.Elems {
			WalkExpr(el, fn)
		}
	case *CaseExpr:
		WalkExpr(x.Operand, fn)
		for i := range x.Whens {
			WalkExpr(x.Whens[i], fn)
			WalkExpr(x.Thens[i], fn)
		}
		WalkExpr(x.Else, fn)
	case *PatternPred:
		WalkPatternExprs(x.Pattern, fn)
	}
}

// WalkPatternExprs visits every expression nested in a pattern part's inline
// property maps.
func WalkPatternExprs(part *PatternPart, fn func(Expr)) {
	for _, n := range part.Nodes {
		for _, e := range n.Props {
			WalkExpr(e, fn)
		}
	}
	for _, r := range part.Rels {
		for _, e := range r.Props {
			WalkExpr(e, fn)
		}
	}
}

// WalkExprs visits every expression in every clause of the query.
func WalkExprs(q *Query, fn func(Expr)) {
	forEachClauseExpr(q, func(e Expr, _ Clause) { WalkExpr(e, fn) })
}

// forEachClauseExpr calls fn on each top-level expression of each clause
// (WHERE conditions, projection items, ORDER BY keys, SKIP/LIMIT, UNWIND
// sources, SET values, DELETE targets, and pattern property maps).
func forEachClauseExpr(q *Query, fn func(Expr, Clause)) {
	visitPattern := func(part *PatternPart, cl Clause) {
		for _, n := range part.Nodes {
			for _, e := range n.Props {
				fn(e, cl)
			}
		}
		for _, r := range part.Rels {
			for _, e := range r.Props {
				fn(e, cl)
			}
		}
	}
	visitProj := func(p Projection, cl Clause) {
		for _, it := range p.Items {
			fn(it.Expr, cl)
		}
		for _, s := range p.OrderBy {
			fn(s.Expr, cl)
		}
		if p.Skip != nil {
			fn(p.Skip, cl)
		}
		if p.Limit != nil {
			fn(p.Limit, cl)
		}
	}
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *MatchClause:
			for _, p := range c.Patterns {
				visitPattern(p, cl)
			}
			if c.Where != nil {
				fn(c.Where, cl)
			}
		case *WithClause:
			visitProj(c.Projection, cl)
			if c.Where != nil {
				fn(c.Where, cl)
			}
		case *ReturnClause:
			visitProj(c.Projection, cl)
		case *UnwindClause:
			fn(c.Expr, cl)
		case *CreateClause:
			for _, p := range c.Patterns {
				visitPattern(p, cl)
			}
		case *SetClause:
			for _, it := range c.Items {
				if it.Value != nil {
					fn(it.Value, cl)
				}
			}
		case *DeleteClause:
			for _, e := range c.Exprs {
				fn(e, cl)
			}
		}
	}
}

// ForEachPattern visits every pattern part in the query: MATCH and CREATE
// patterns plus pattern predicates nested anywhere in expressions.
func ForEachPattern(q *Query, fn func(*PatternPart)) {
	visitExpr := func(e Expr) {
		if pp, ok := e.(*PatternPred); ok {
			fn(pp.Pattern)
		}
	}
	for _, cl := range q.Clauses {
		switch c := cl.(type) {
		case *MatchClause:
			for _, p := range c.Patterns {
				fn(p)
			}
		case *CreateClause:
			for _, p := range c.Patterns {
				fn(p)
			}
		}
	}
	WalkExprs(q, visitExpr)
}

// builtinFuncs lists the non-aggregate built-in functions evalFunc
// dispatches (lowercase). Keep in sync with functions.go.
var builtinFuncs = map[string]bool{
	"id": true, "labels": true, "type": true, "keys": true,
	"startnode": true, "endnode": true, "exists": true,
	"size": true, "length": true, "head": true, "last": true,
	"tostring": true, "tointeger": true, "toint": true, "tofloat": true,
	"toboolean": true, "tolower": true, "toupper": true, "trim": true,
	"substring": true, "split": true, "abs": true, "coalesce": true,
	"range": true,
}

// KnownFunction reports whether name (case-insensitive) is a built-in
// function — aggregate or scalar — the executor can evaluate.
func KnownFunction(name string) bool {
	l := lower(name)
	return builtinFuncs[l] || aggregateFuncs[l]
}

// BuiltinFunctionNames returns the sorted names of every built-in function,
// scalar and aggregate.
func BuiltinFunctionNames() []string {
	out := make([]string, 0, len(builtinFuncs)+len(aggregateFuncs))
	for n := range builtinFuncs {
		out = append(out, n)
	}
	for n := range aggregateFuncs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return lowerSlow(s)
		}
	}
	return s
}

func lowerSlow(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
