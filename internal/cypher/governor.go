package cypher

// This file implements the per-query resource governor: cooperative
// budgets enforced inside the executor so one runaway query (an unbounded
// cartesian product, a pathological variable-length expansion) degrades
// into a typed error instead of taking the process down. Three budgets
// exist — a materialized-row cap, an approximate memory budget, and a
// per-query deadline — all configured as executor options (WithMaxRows,
// WithMemoryBudget, WithQueryDeadline) and all enforced at the same
// amortized cadence as the existing context polls, so an ungoverned
// executor pays nothing and a governed one pays one nil check per
// allocation site.
//
// A budget is shared across the morsel workers of a sharded scan (the
// counters are atomics), so the cap bounds the whole query, not each
// worker; a budget kill raised inside a worker flows through the existing
// first-error sibling-cancellation path exactly like any other morsel
// error. Budgets never change the result of a query that finishes under
// them — enforcement only ever truncates with a typed error, which the
// differential oracle pins (TestBudgetedOracle).

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// ResourceExhaustedError reports a query killed by its resource budget.
// It carries the execution stats accumulated up to the kill, so callers
// (and the REPL's profile command) can see how much work the query did
// before it hit the wall.
type ResourceExhaustedError struct {
	// Resource names the exhausted budget: "rows", "memory" or "deadline".
	Resource string
	// Limit is the configured budget (rows, bytes, or nanoseconds).
	Limit int64
	// Used is the consumption observed at the kill. For "deadline" it is
	// the elapsed nanoseconds when the poll fired.
	Used int64
	// Stats are the partial execution stats at the kill: rows scanned,
	// seeks taken, shard/morsel metadata. Populated by ExecuteCtx on the
	// way out, after worker stats merge.
	Stats ExecStats
}

func (e *ResourceExhaustedError) Error() string {
	switch e.Resource {
	case "deadline":
		return fmt.Sprintf("cypher: query exceeded its %s deadline (ran %s)",
			time.Duration(e.Limit), time.Duration(e.Used).Round(time.Millisecond))
	case "memory":
		return fmt.Sprintf("cypher: query exceeded its %d-byte memory budget (reached %d bytes)", e.Limit, e.Used)
	default:
		return fmt.Sprintf("cypher: query exceeded its %d-row budget (reached %d rows)", e.Limit, e.Used)
	}
}

// ResourceExhausted marks the error as a budget kill; admission
// controllers use it (via errors.As) to count kills separately from
// ordinary failures without importing this package's types.
func (e *ResourceExhaustedError) ResourceExhausted() bool { return true }

// PanicError is a recovered evaluator panic converted to an error: a bug
// in an expression or matcher path surfaces as a failed query — with the
// panic value and stack for the report — instead of crashing the process.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cypher: internal panic during execution: %v", e.Value)
}

// recoverToError converts a recovered panic value into a *PanicError.
func recoverToError(p any) error {
	return &PanicError{Value: p, Stack: string(debug.Stack())}
}

// Admission gates query execution: ExecuteCtx calls Admit before running
// and the returned done func exactly once after, with the query's final
// error. An admission controller bounds concurrency and queueing
// (internal/governor provides one); Admit returning an error rejects the
// query before it touches the graph.
type Admission interface {
	Admit(ctx context.Context) (done func(err error), err error)
}

// budget is one execution's shared resource-budget state. The counters
// are atomics because a sharded scan's morsel workers charge them
// concurrently; with no sharding they degrade to uncontended atomic adds,
// one per materialized row — noise next to the map clone that produced
// the row.
type budget struct {
	maxRows int64     // > 0 enables the row cap
	maxMem  int64     // > 0 enables the memory budget
	start   time.Time // execution start, for deadline accounting
	limit   time.Duration
	rows    atomic.Int64
	mem     atomic.Int64
}

// newBudget builds the execution budget, or nil when no limit is set
// (the nil receiver makes every charge a single comparison).
func (ex *Executor) newBudget() *budget {
	if ex.maxRows <= 0 && ex.memBudget <= 0 && ex.queryDeadline <= 0 {
		return nil
	}
	b := &budget{maxRows: int64(ex.maxRows), maxMem: ex.memBudget, limit: ex.queryDeadline}
	if b.limit > 0 {
		b.start = time.Now()
	}
	return b
}

// chargeRows accounts n materialized rows against the row cap.
func (b *budget) chargeRows(n int) error {
	if b == nil || b.maxRows <= 0 {
		return nil
	}
	if used := b.rows.Add(int64(n)); used > b.maxRows {
		return &ResourceExhaustedError{Resource: "rows", Limit: b.maxRows, Used: used}
	}
	return nil
}

// chargeMem accounts approximately n bytes of retained allocation
// against the memory budget.
func (b *budget) chargeMem(n int64) error {
	if b == nil || b.maxMem <= 0 {
		return nil
	}
	if used := b.mem.Add(n); used > b.maxMem {
		return &ResourceExhaustedError{Resource: "memory", Limit: b.maxMem, Used: used}
	}
	return nil
}

// checkDeadline reports a deadline kill. Callers amortize it on the same
// stride as context polls; it costs one time.Now when armed.
func (b *budget) checkDeadline() error {
	if b == nil || b.limit <= 0 {
		return nil
	}
	if elapsed := time.Since(b.start); elapsed > b.limit {
		return &ResourceExhaustedError{Resource: "deadline", Limit: int64(b.limit), Used: int64(elapsed)}
	}
	return nil
}

// rowBytes estimates the retained size of one materialized row: the map
// header plus one bucket entry (string header + datum) per binding. A
// deliberate over-approximation on the cheap side — the budget bounds
// order-of-magnitude blowups, not byte-exact accounting.
func rowBytes(r Row) int64 { return 48 + int64(len(r))*64 }

// chargeRow accounts one materialized row (count and approximate bytes).
func (b *budget) chargeRow(r Row) error {
	if b == nil {
		return nil
	}
	if err := b.chargeRows(1); err != nil {
		return err
	}
	return b.chargeMem(rowBytes(r))
}

// aggStateBytes is the approximate retained cost charged per element a
// collect()/DISTINCT aggregate state accumulates.
const aggStateBytes = 48

// bud returns the evaluation context's budget (nil when ungoverned or
// when the context was built without a matcher); every budget method is
// nil-receiver safe, so callers charge unconditionally.
func (c *evalCtx) bud() *budget {
	if c == nil || c.matcher == nil {
		return nil
	}
	return c.matcher.bud
}

// finishExhausted stamps the partial execution stats into a budget-kill
// error on the way out of ExecuteCtx (after worker-stat merging), so the
// typed error is self-contained even when the caller drops the Result.
func finishExhausted(err error, res *Result) {
	var re *ResourceExhaustedError
	if errors.As(err, &re) && res != nil {
		re.Stats = res.Exec
	}
}
