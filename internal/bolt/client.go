package bolt

// Client is a minimal Bolt driver: enough protocol to connect, run
// queries and stream records from any Bolt 4.2–5.0 server. It exists so
// the repo can exercise graphd end-to-end (tests, the load harness, the
// README quickstart) without an external driver dependency; the exported
// Send/Recv pair also allows pipelining (RUN+PULL in one flight), which
// the load harness uses.

import (
	"fmt"
	"net"
)

// ServerFailure is a FAILURE summary raised by the server, carrying the
// Neo4j-style status code drivers dispatch on.
type ServerFailure struct {
	Code    string
	Message string
}

func (e *ServerFailure) Error() string {
	return fmt.Sprintf("bolt: server failure %s: %s", e.Code, e.Message)
}

// Client drives one Bolt connection. Not safe for concurrent use.
type Client struct {
	nc    net.Conn
	enc   Encoder
	buf   []byte
	Major byte
	Minor byte
}

// Dial connects to addr and negotiates the protocol version.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the client handshake on an existing connection
// (e.g. one end of a net.Pipe for in-process tests).
func NewClient(nc net.Conn) (*Client, error) {
	major, minor, err := clientHandshake(nc)
	if err != nil {
		return nil, err
	}
	c := &Client{nc: nc, Major: major, Minor: minor}
	c.enc.V5 = major >= 5
	return c, nil
}

// Send writes one request message.
func (c *Client) Send(tag byte, fields ...any) error {
	c.enc.Reset()
	if err := c.enc.AppendStructure(tag, fields...); err != nil {
		return err
	}
	return writeMessage(c.nc, c.enc.Bytes())
}

// Recv reads one response message.
func (c *Client) Recv() (Structure, error) {
	payload, err := readMessage(c.nc, c.buf)
	if err != nil {
		return Structure{}, err
	}
	c.buf = payload
	v, rest, err := Decode(payload)
	if err != nil {
		return Structure{}, err
	}
	st, ok := v.(Structure)
	if !ok || len(rest) != 0 {
		return Structure{}, fmt.Errorf("bolt: response is not a single structure")
	}
	return st, nil
}

// summary awaits a SUCCESS, converting FAILURE to *ServerFailure and
// IGNORED to an error.
func (c *Client) summary() (map[string]any, error) {
	st, err := c.Recv()
	if err != nil {
		return nil, err
	}
	return asSummary(st)
}

// asSummary projects a summary message; RECORD is rejected.
func asSummary(st Structure) (map[string]any, error) {
	switch st.Tag {
	case msgSuccess:
		if len(st.Fields) > 0 {
			meta, _ := st.Fields[0].(map[string]any)
			return meta, nil
		}
		return map[string]any{}, nil
	case msgFailure:
		f := &ServerFailure{}
		if len(st.Fields) > 0 {
			if meta, ok := st.Fields[0].(map[string]any); ok {
				f.Code, _ = meta["code"].(string)
				f.Message, _ = meta["message"].(string)
			}
		}
		return nil, f
	case msgIgnored:
		return nil, fmt.Errorf("bolt: request ignored (connection in failed state; RESET required)")
	default:
		return nil, fmt.Errorf("bolt: unexpected response %s", tagName(st.Tag))
	}
}

// SendRun enqueues a RUN without awaiting its summary, for pipelining
// (follow with SendPull, then RecvSummary + RecvStream).
func (c *Client) SendRun(query string, params map[string]any) error {
	if params == nil {
		params = map[string]any{}
	}
	return c.Send(msgRun, query, params, map[string]any{})
}

// SendPull enqueues a PULL without awaiting records.
func (c *Client) SendPull(n int64) error {
	return c.Send(msgPull, map[string]any{"n": n})
}

// RecvSummary awaits one summary message (SUCCESS metadata, or an error
// for FAILURE/IGNORED).
func (c *Client) RecvSummary() (map[string]any, error) {
	return c.summary()
}

// RecvStream reads records until the stream's closing summary.
func (c *Client) RecvStream() (records [][]any, hasMore bool, meta map[string]any, err error) {
	for {
		st, err := c.Recv()
		if err != nil {
			return nil, false, nil, err
		}
		if st.Tag == msgRecord {
			if len(st.Fields) > 0 {
				row, _ := st.Fields[0].([]any)
				records = append(records, row)
			}
			continue
		}
		meta, err = asSummary(st)
		if err != nil {
			return records, false, nil, err
		}
		more, _ := meta["has_more"].(bool)
		return records, more, meta, nil
	}
}

// Hello authenticates the connection (the server currently accepts any
// principal) and returns the server's HELLO metadata.
func (c *Client) Hello(agent string) (map[string]any, error) {
	if err := c.Send(msgHello, map[string]any{
		"user_agent": agent,
		"scheme":     "none",
	}); err != nil {
		return nil, err
	}
	return c.summary()
}

// Run starts a query and returns the result's column names.
func (c *Client) Run(query string, params map[string]any) ([]string, error) {
	if params == nil {
		params = map[string]any{}
	}
	if err := c.Send(msgRun, query, params, map[string]any{}); err != nil {
		return nil, err
	}
	meta, err := c.summary()
	if err != nil {
		return nil, err
	}
	var cols []string
	if fs, ok := meta["fields"].([]any); ok {
		for _, f := range fs {
			if s, ok := f.(string); ok {
				cols = append(cols, s)
			}
		}
	}
	return cols, nil
}

// Pull requests up to n records (n < 0 for all) and returns them with
// the has_more flag and the closing summary metadata.
func (c *Client) Pull(n int64) (records [][]any, hasMore bool, meta map[string]any, err error) {
	if err := c.SendPull(n); err != nil {
		return nil, false, nil, err
	}
	return c.RecvStream()
}

// RunAll runs a query and drains the whole stream.
func (c *Client) RunAll(query string, params map[string]any) (cols []string, records [][]any, err error) {
	cols, err = c.Run(query, params)
	if err != nil {
		return nil, nil, err
	}
	for {
		recs, more, _, err := c.Pull(1000)
		if err != nil {
			return cols, records, err
		}
		records = append(records, recs...)
		if !more {
			return cols, records, nil
		}
	}
}

// Begin opens an explicit transaction.
func (c *Client) Begin() error {
	if err := c.Send(msgBegin, map[string]any{}); err != nil {
		return err
	}
	_, err := c.summary()
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	if err := c.Send(msgCommit); err != nil {
		return err
	}
	_, err := c.summary()
	return err
}

// Rollback rolls back the open transaction.
func (c *Client) Rollback() error {
	if err := c.Send(msgRollback); err != nil {
		return err
	}
	_, err := c.summary()
	return err
}

// Reset clears a failed connection state (and rolls back an open
// transaction server-side).
func (c *Client) Reset() error {
	if err := c.Send(msgReset); err != nil {
		return err
	}
	_, err := c.summary()
	return err
}

// Close sends GOODBYE (best-effort) and closes the connection.
func (c *Client) Close() error {
	_ = c.Send(msgGoodbye)
	return c.nc.Close()
}

// CloseAbrupt drops the connection without GOODBYE or draining, as a
// crashed client would. Used by disconnect-storm tests.
func (c *Client) CloseAbrupt() error {
	return c.nc.Close()
}
