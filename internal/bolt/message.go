package bolt

// Message layer: request/summary tags, chunked transfer framing and the
// handshake. One Bolt message is one packstream structure, shipped as a
// sequence of chunks — each a 16-bit big-endian size prefix plus that
// many payload bytes — terminated by a zero-size chunk.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request message tags (client → server).
const (
	msgHello    = 0x01
	msgGoodbye  = 0x02
	msgReset    = 0x0F
	msgRun      = 0x10
	msgBegin    = 0x11
	msgCommit   = 0x12
	msgRollback = 0x13
	msgDiscard  = 0x2F
	msgPull     = 0x3F
)

// Summary/record message tags (server → client).
const (
	msgSuccess = 0x70
	msgRecord  = 0x71
	msgIgnored = 0x7E
	msgFailure = 0x7F
)

func tagName(tag byte) string {
	switch tag {
	case msgHello:
		return "HELLO"
	case msgGoodbye:
		return "GOODBYE"
	case msgReset:
		return "RESET"
	case msgRun:
		return "RUN"
	case msgBegin:
		return "BEGIN"
	case msgCommit:
		return "COMMIT"
	case msgRollback:
		return "ROLLBACK"
	case msgDiscard:
		return "DISCARD"
	case msgPull:
		return "PULL"
	case msgSuccess:
		return "SUCCESS"
	case msgRecord:
		return "RECORD"
	case msgIgnored:
		return "IGNORED"
	case msgFailure:
		return "FAILURE"
	default:
		return fmt.Sprintf("MSG(0x%02X)", tag)
	}
}

// maxMessageSize bounds one reassembled message (16 MiB): large enough
// for any realistic record, small enough that a hostile peer cannot make
// the server buffer unbounded input.
const maxMessageSize = 16 << 20

// maxChunk is the largest chunk payload the 16-bit size prefix allows.
const maxChunk = 0xFFFF

// writeMessage ships one encoded message as chunks + end marker.
func writeMessage(w io.Writer, payload []byte) error {
	var hdr [2]byte
	for len(payload) > 0 {
		n := len(payload)
		if n > maxChunk {
			n = maxChunk
		}
		binary.BigEndian.PutUint16(hdr[:], uint16(n))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
	}
	binary.BigEndian.PutUint16(hdr[:], 0)
	_, err := w.Write(hdr[:])
	return err
}

// readMessage reassembles one chunked message. A leading zero-size chunk
// (a "noop" keep-alive some drivers send) is skipped rather than treated
// as an empty message.
func readMessage(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	buf = buf[:0]
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[:]))
		if n == 0 {
			if len(buf) == 0 {
				continue // noop chunk between messages
			}
			return buf, nil
		}
		if len(buf)+n > maxMessageSize {
			return nil, fmt.Errorf("bolt: message exceeds %d bytes", maxMessageSize)
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
}

// ---------- handshake ----------

// Handshake magic preamble.
var magic = [4]byte{0x60, 0x60, 0xB0, 0x17}

// supportedVersions lists the protocol versions this server speaks, in
// preference order. 5.1+ (LOGON-based authentication) is deliberately
// absent: drivers negotiate down to 5.0 or 4.4.
var supportedVersions = [][2]byte{{5, 0}, {4, 4}, {4, 3}, {4, 2}}

// negotiate performs the server side of the Bolt handshake: the client
// sends the magic plus four version proposals (each possibly a range);
// the server answers with the best mutually supported version, or 0.0.0.0
// and an error when there is none.
func negotiate(rw io.ReadWriter) (major, minor byte, err error) {
	var in [20]byte
	if _, err := io.ReadFull(rw, in[:]); err != nil {
		return 0, 0, fmt.Errorf("bolt: handshake read: %w", err)
	}
	if [4]byte(in[:4]) != magic {
		return 0, 0, fmt.Errorf("bolt: bad handshake magic % X", in[:4])
	}
	for i := 0; i < 4 && major == 0; i++ {
		p := in[4+i*4 : 8+i*4]
		// Proposal layout: [reserved, minorRange, minor, major]; the range
		// extends the proposal to `minorRange` consecutive lower minors.
		pMajor, pMinor, pRange := p[3], p[2], p[1]
		for _, v := range supportedVersions {
			if v[0] != pMajor {
				continue
			}
			if v[1] <= pMinor && int(v[1]) >= int(pMinor)-int(pRange) {
				major, minor = v[0], v[1]
				break
			}
		}
	}
	out := [4]byte{0, 0, minor, major}
	if _, werr := rw.Write(out[:]); werr != nil {
		return 0, 0, fmt.Errorf("bolt: handshake write: %w", werr)
	}
	if major == 0 {
		return 0, 0, fmt.Errorf("bolt: no mutually supported version in % X", in[4:])
	}
	return major, minor, nil
}

// clientHandshake performs the client side, proposing the server's own
// preference list (used by the in-repo driver and tests).
func clientHandshake(rw io.ReadWriter) (major, minor byte, err error) {
	out := make([]byte, 0, 20)
	out = append(out, magic[:]...)
	for _, v := range supportedVersions {
		out = append(out, 0, 0, v[1], v[0])
	}
	if _, err := rw.Write(out); err != nil {
		return 0, 0, err
	}
	var in [4]byte
	if _, err := io.ReadFull(rw, in[:]); err != nil {
		return 0, 0, err
	}
	if in[3] == 0 {
		return 0, 0, fmt.Errorf("bolt: server rejected all proposed versions")
	}
	return in[3], in[2], nil
}
