// Package bolt implements the Bolt graph-database wire protocol —
// packstream serialization, chunked message framing, version
// negotiation and the server-side session state machine — so stock
// Neo4j drivers and tools can talk to the graphrules engine over TCP.
//
// Protocol support targets Bolt 4.2–4.4 and 5.0: every version a
// mainstream driver negotiates without the 5.1+ LOGON flow. The version
// only changes the Node/Relationship record encoding (5.x adds string
// element IDs); the message grammar served here is the common subset.
package bolt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Packstream markers. Tiny types embed their size in the marker byte;
// sized types carry an 8/16/32-bit big-endian length after it.
const (
	mNull    = 0xC0
	mFloat   = 0xC1
	mFalse   = 0xC2
	mTrue    = 0xC3
	mInt8    = 0xC8
	mInt16   = 0xC9
	mInt32   = 0xCA
	mInt64   = 0xCB
	mBytes8  = 0xCC
	mBytes16 = 0xCD
	mBytes32 = 0xCE
	mTinyStr = 0x80
	mStr8    = 0xD0
	mStr16   = 0xD1
	mStr32   = 0xD2
	mTinyLst = 0x90
	mLst8    = 0xD4
	mLst16   = 0xD5
	mLst32   = 0xD6
	mTinyMap = 0xA0
	mMap8    = 0xD8
	mMap16   = 0xD9
	mMap32   = 0xDA
	mTinyStc = 0xB0
)

// Structure is a generic packstream structure: a tag byte plus fields.
// Messages and graph entities are all structures on the wire; the
// decoder returns them in this raw form and typed views (Node,
// Relationship, message structs) are projected at the protocol layer.
type Structure struct {
	Tag    byte
	Fields []any
}

// Graph-entity structure tags.
const (
	tagNode         = 0x4E // 'N'
	tagRelationship = 0x52 // 'R'
)

// Node is a Bolt node record value. ElementID is only on the wire for
// Bolt 5.x; the server synthesizes it from the numeric ID.
type Node struct {
	ID        int64
	Labels    []string
	Props     map[string]any
	ElementID string
}

// Relationship is a Bolt relationship record value.
type Relationship struct {
	ID             int64
	StartID        int64
	EndID          int64
	Type           string
	Props          map[string]any
	ElementID      string
	StartElementID string
	EndElementID   string
}

// Encoder appends packstream values to a growing buffer. The zero value
// encodes Bolt 4.x entity structures; set V5 for 5.x element-ID fields.
type Encoder struct {
	buf []byte
	V5  bool
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Append encodes one value. Supported: nil, bool, all Go integer types,
// float64/float32, string, []byte, []any, []string, map[string]any,
// Node, Relationship and Structure.
func (e *Encoder) Append(v any) error {
	switch x := v.(type) {
	case nil:
		e.buf = append(e.buf, mNull)
	case bool:
		if x {
			e.buf = append(e.buf, mTrue)
		} else {
			e.buf = append(e.buf, mFalse)
		}
	case int64:
		e.AppendInt(x)
	case int:
		e.AppendInt(int64(x))
	case int8:
		e.AppendInt(int64(x))
	case int16:
		e.AppendInt(int64(x))
	case int32:
		e.AppendInt(int64(x))
	case uint8:
		e.AppendInt(int64(x))
	case uint16:
		e.AppendInt(int64(x))
	case uint32:
		e.AppendInt(int64(x))
	case uint64:
		if x > math.MaxInt64 {
			return fmt.Errorf("bolt: uint64 %d overflows packstream int", x)
		}
		e.AppendInt(int64(x))
	case float64:
		e.AppendFloat(x)
	case float32:
		e.AppendFloat(float64(x))
	case string:
		e.AppendString(x)
	case []byte:
		e.appendBytes(x)
	case []any:
		if err := e.appendSize(mTinyLst, mLst8, len(x)); err != nil {
			return err
		}
		for _, it := range x {
			if err := e.Append(it); err != nil {
				return err
			}
		}
	case []string:
		if err := e.appendSize(mTinyLst, mLst8, len(x)); err != nil {
			return err
		}
		for _, it := range x {
			e.AppendString(it)
		}
	case map[string]any:
		if err := e.appendSize(mTinyMap, mMap8, len(x)); err != nil {
			return err
		}
		for k, it := range x {
			e.AppendString(k)
			if err := e.Append(it); err != nil {
				return err
			}
		}
	case Node:
		return e.appendNode(x)
	case *Node:
		return e.appendNode(*x)
	case Relationship:
		return e.appendRelationship(x)
	case *Relationship:
		return e.appendRelationship(*x)
	case Structure:
		return e.AppendStructure(x.Tag, x.Fields...)
	default:
		return fmt.Errorf("bolt: cannot encode %T", v)
	}
	return nil
}

// AppendInt encodes an integer in its smallest representation.
func (e *Encoder) AppendInt(n int64) {
	switch {
	case n >= -16 && n <= 127:
		e.buf = append(e.buf, byte(n))
	case n >= math.MinInt8 && n <= math.MaxInt8:
		e.buf = append(e.buf, mInt8, byte(n))
	case n >= math.MinInt16 && n <= math.MaxInt16:
		e.buf = append(e.buf, mInt16)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	case n >= math.MinInt32 && n <= math.MaxInt32:
		e.buf = append(e.buf, mInt32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	default:
		e.buf = append(e.buf, mInt64)
		e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(n))
	}
}

// AppendFloat encodes a 64-bit float.
func (e *Encoder) AppendFloat(f float64) {
	e.buf = append(e.buf, mFloat)
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// AppendString encodes a UTF-8 string.
func (e *Encoder) AppendString(s string) {
	n := len(s)
	switch {
	case n <= 15:
		e.buf = append(e.buf, mTinyStr|byte(n))
	case n <= math.MaxUint8:
		e.buf = append(e.buf, mStr8, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, mStr16)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, mStr32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
	e.buf = append(e.buf, s...)
}

func (e *Encoder) appendBytes(b []byte) {
	n := len(b)
	switch {
	case n <= math.MaxUint8:
		e.buf = append(e.buf, mBytes8, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, mBytes16)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, mBytes32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
	e.buf = append(e.buf, b...)
}

// appendSize writes a collection header: tiny marker when the size fits
// a nibble, otherwise the 8/16/32-bit sized marker family starting at
// sized8.
func (e *Encoder) appendSize(tiny, sized8 byte, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("bolt: negative collection size %d", n)
	case n <= 15:
		e.buf = append(e.buf, tiny|byte(n))
	case n <= math.MaxUint8:
		e.buf = append(e.buf, sized8, byte(n))
	case n <= math.MaxUint16:
		e.buf = append(e.buf, sized8+1)
		e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(n))
	default:
		e.buf = append(e.buf, sized8+2)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(n))
	}
	return nil
}

// AppendStructure encodes a structure header plus its fields. Structures
// hold at most 15 fields on the wire.
func (e *Encoder) AppendStructure(tag byte, fields ...any) error {
	if len(fields) > 15 {
		return fmt.Errorf("bolt: structure with %d fields exceeds the wire maximum of 15", len(fields))
	}
	e.buf = append(e.buf, mTinyStc|byte(len(fields)), tag)
	for _, f := range fields {
		if err := e.Append(f); err != nil {
			return err
		}
	}
	return nil
}

func (e *Encoder) appendNode(n Node) error {
	props := n.Props
	if props == nil {
		props = map[string]any{}
	}
	labels := n.Labels
	if labels == nil {
		labels = []string{}
	}
	if e.V5 {
		return e.AppendStructure(tagNode, n.ID, labels, props, n.ElementID)
	}
	return e.AppendStructure(tagNode, n.ID, labels, props)
}

func (e *Encoder) appendRelationship(r Relationship) error {
	props := r.Props
	if props == nil {
		props = map[string]any{}
	}
	if e.V5 {
		return e.AppendStructure(tagRelationship, r.ID, r.StartID, r.EndID, r.Type,
			props, r.ElementID, r.StartElementID, r.EndElementID)
	}
	return e.AppendStructure(tagRelationship, r.ID, r.StartID, r.EndID, r.Type, props)
}

// maxNesting bounds decoder recursion so hostile input cannot exhaust
// the stack.
const maxNesting = 64

// Decode reads one packstream value off the front of b and returns it
// with the remaining bytes. Structures come back as Structure; the
// caller projects typed views. Integers are int64, collections []any /
// map[string]any.
func Decode(b []byte) (any, []byte, error) {
	return decodeValue(b, 0)
}

func decodeValue(b []byte, depth int) (any, []byte, error) {
	if depth > maxNesting {
		return nil, nil, fmt.Errorf("bolt: nesting deeper than %d", maxNesting)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("bolt: truncated value")
	}
	marker := b[0]
	b = b[1:]

	// Tiny ints occupy the whole non-marker space.
	if marker < 0x80 { // 0..127
		return int64(marker), b, nil
	}
	if marker >= 0xF0 { // -16..-1
		return int64(int8(marker)), b, nil
	}

	switch {
	case marker&0xF0 == mTinyStr:
		return decodeString(b, int(marker&0x0F))
	case marker&0xF0 == mTinyLst:
		return decodeList(b, int(marker&0x0F), depth)
	case marker&0xF0 == mTinyMap:
		return decodeMap(b, int(marker&0x0F), depth)
	case marker&0xF0 == mTinyStc:
		return decodeStructure(b, int(marker&0x0F), depth)
	}

	switch marker {
	case mNull:
		return nil, b, nil
	case mTrue:
		return true, b, nil
	case mFalse:
		return false, b, nil
	case mFloat:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("bolt: truncated float")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
	case mInt8:
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("bolt: truncated int8")
		}
		return int64(int8(b[0])), b[1:], nil
	case mInt16:
		if len(b) < 2 {
			return nil, nil, fmt.Errorf("bolt: truncated int16")
		}
		return int64(int16(binary.BigEndian.Uint16(b))), b[2:], nil
	case mInt32:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("bolt: truncated int32")
		}
		return int64(int32(binary.BigEndian.Uint32(b))), b[4:], nil
	case mInt64:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("bolt: truncated int64")
		}
		return int64(binary.BigEndian.Uint64(b)), b[8:], nil
	case mBytes8, mBytes16, mBytes32:
		n, rest, err := decodeSize(b, marker-mBytes8)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < n {
			return nil, nil, fmt.Errorf("bolt: truncated bytes")
		}
		out := make([]byte, n)
		copy(out, rest[:n])
		return out, rest[n:], nil
	case mStr8, mStr16, mStr32:
		n, rest, err := decodeSize(b, marker-mStr8)
		if err != nil {
			return nil, nil, err
		}
		return decodeString(rest, n)
	case mLst8, mLst16, mLst32:
		n, rest, err := decodeSize(b, marker-mLst8)
		if err != nil {
			return nil, nil, err
		}
		return decodeList(rest, n, depth)
	case mMap8, mMap16, mMap32:
		n, rest, err := decodeSize(b, marker-mMap8)
		if err != nil {
			return nil, nil, err
		}
		return decodeMap(rest, n, depth)
	default:
		return nil, nil, fmt.Errorf("bolt: unknown marker 0x%02X", marker)
	}
}

// decodeSize reads an 8/16/32-bit big-endian collection size; width is
// 0, 1 or 2 for the three marker variants.
func decodeSize(b []byte, width byte) (int, []byte, error) {
	switch width {
	case 0:
		if len(b) < 1 {
			return 0, nil, fmt.Errorf("bolt: truncated size8")
		}
		return int(b[0]), b[1:], nil
	case 1:
		if len(b) < 2 {
			return 0, nil, fmt.Errorf("bolt: truncated size16")
		}
		return int(binary.BigEndian.Uint16(b)), b[2:], nil
	default:
		if len(b) < 4 {
			return 0, nil, fmt.Errorf("bolt: truncated size32")
		}
		n := binary.BigEndian.Uint32(b)
		if n > math.MaxInt32 {
			return 0, nil, fmt.Errorf("bolt: size %d too large", n)
		}
		return int(n), b[4:], nil
	}
}

func decodeString(b []byte, n int) (any, []byte, error) {
	if len(b) < n {
		return nil, nil, fmt.Errorf("bolt: truncated string")
	}
	return string(b[:n]), b[n:], nil
}

func decodeList(b []byte, n, depth int) (any, []byte, error) {
	// Each element needs at least one marker byte; reject sizes the
	// remaining input cannot possibly satisfy before allocating.
	if n > len(b) {
		return nil, nil, fmt.Errorf("bolt: list size %d exceeds input", n)
	}
	out := make([]any, 0, n)
	var v any
	var err error
	for i := 0; i < n; i++ {
		v, b, err = decodeValue(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, v)
	}
	return out, b, nil
}

func decodeMap(b []byte, n, depth int) (any, []byte, error) {
	if n > len(b)/2 {
		return nil, nil, fmt.Errorf("bolt: map size %d exceeds input", n)
	}
	out := make(map[string]any, n)
	var k, v any
	var err error
	for i := 0; i < n; i++ {
		k, b, err = decodeValue(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		key, ok := k.(string)
		if !ok {
			return nil, nil, fmt.Errorf("bolt: non-string map key %T", k)
		}
		v, b, err = decodeValue(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		out[key] = v
	}
	return out, b, nil
}

func decodeStructure(b []byte, n, depth int) (any, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("bolt: truncated structure tag")
	}
	st := Structure{Tag: b[0]}
	b = b[1:]
	var v any
	var err error
	for i := 0; i < n; i++ {
		v, b, err = decodeValue(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		st.Fields = append(st.Fields, v)
	}
	return st, b, nil
}
