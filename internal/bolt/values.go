package bolt

// Conversions between engine values (graph.Value, cypher.Datum) and the
// wire representation (packstream-encodable any, Node, Relationship).

import (
	"strconv"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
)

// wireValue lowers one graph.Value to a packstream-encodable value.
func wireValue(v graph.Value) any {
	switch v.Kind() {
	case graph.KindBool:
		return v.Bool()
	case graph.KindInt:
		return v.Int()
	case graph.KindFloat:
		return v.Float()
	case graph.KindString:
		return v.Str()
	case graph.KindList:
		l := v.List()
		out := make([]any, len(l))
		for i, e := range l {
			out[i] = wireValue(e)
		}
		return out
	default:
		return nil
	}
}

// wireProps lowers a property map.
func wireProps(p graph.Props) map[string]any {
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = wireValue(v)
	}
	return out
}

// wireNode lowers a graph node to its Bolt record value.
func wireNode(n *graph.Node) Node {
	return Node{
		ID:        int64(n.ID),
		Labels:    n.Labels,
		Props:     wireProps(n.Props),
		ElementID: strconv.FormatInt(int64(n.ID), 10),
	}
}

// wireRelationship lowers a graph edge. Bolt relationships carry exactly
// one type; the engine allows multi-label edges, so the first label is
// the wire type (the full list rides in the properties when longer).
func wireRelationship(e *graph.Edge) Relationship {
	typ := ""
	if len(e.Labels) > 0 {
		typ = e.Labels[0]
	}
	props := wireProps(e.Props)
	if len(e.Labels) > 1 {
		props["__labels"] = append([]any(nil), toAnySlice(e.Labels)...)
	}
	return Relationship{
		ID:             int64(e.ID),
		StartID:        int64(e.From),
		EndID:          int64(e.To),
		Type:           typ,
		Props:          props,
		ElementID:      strconv.FormatInt(int64(e.ID), 10),
		StartElementID: strconv.FormatInt(int64(e.From), 10),
		EndElementID:   strconv.FormatInt(int64(e.To), 10),
	}
}

func toAnySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// wireRecord lowers one cursor row to the RECORD field list.
func wireRecord(row []cypher.Datum) []any {
	out := make([]any, len(row))
	for i, d := range row {
		switch {
		case d.Node != nil:
			out[i] = wireNode(d.Node)
		case d.Edge != nil:
			out[i] = wireRelationship(d.Edge)
		default:
			out[i] = wireValue(d.Val)
		}
	}
	return out
}

// engineParams raises a decoded Bolt parameter map to engine values.
// Nested maps have no graph.Value representation and become null, as do
// entity structures — parameters are scalars and lists in practice.
func engineParams(m map[string]any) map[string]graph.Value {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]graph.Value, len(m))
	for k, v := range m {
		out[k] = graph.Of(v)
	}
	return out
}
