package bolt

import (
	"errors"
	"net"
	"strings"
	"testing"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/governor"
	"github.com/graphrules/graphrules/internal/graph"
)

// startServer brings up a Bolt server on a loopback listener and returns
// a connected, HELLO-completed client.
func startServer(t *testing.T, ex *cypher.Executor) (*Client, *Server) {
	t.Helper()
	srv := NewServer(Config{Executor: ex, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	meta, err := c.Hello("graphrules-test/1")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := meta["server"].(string); !strings.HasPrefix(s, "graphrules/") {
		t.Fatalf("server agent = %v", meta["server"])
	}
	return c, srv
}

func boltGraph(n int) *graph.Graph {
	g := graph.New("bolt")
	var prev *graph.Node
	for i := 0; i < n; i++ {
		node := g.AddNode([]string{"N"}, graph.Props{"i": graph.NewInt(int64(i))})
		if prev != nil {
			g.MustAddEdge(prev.ID, node.ID, []string{"NEXT"}, nil)
		}
		prev = node
	}
	return g
}

func TestServerVersionNegotiation(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(1)))
	if c.Major != 5 || c.Minor != 0 {
		t.Fatalf("negotiated %d.%d, want 5.0", c.Major, c.Minor)
	}
}

func TestServerRunPullStreaming(t *testing.T) {
	c, srv := startServer(t, cypher.NewExecutor(boltGraph(25)))

	cols, err := c.Run(`MATCH (n:N) RETURN n.i AS i`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "i" {
		t.Fatalf("columns = %v", cols)
	}
	// Paged PULL: two batches of 10 then the tail of 5.
	var total int
	for _, want := range []struct {
		n    int
		more bool
	}{{10, true}, {10, true}, {10, false}} {
		recs, more, _, err := c.Pull(10)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
		if more != want.more {
			t.Fatalf("after %d records: has_more = %v, want %v", total, more, want.more)
		}
	}
	if total != 25 {
		t.Fatalf("streamed %d records, want 25", total)
	}
	if st := srv.Stats(); st.RecordsOut != 25 || st.QueriesRun != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

func TestServerEntityRecords(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(3)))

	_, recs, err := c.RunAll(`MATCH (a:N)-[r:NEXT]->(b:N) RETURN a, r, b LIMIT 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0]) != 3 {
		t.Fatalf("records = %v", recs)
	}
	n, ok := recs[0][0].(Structure)
	if !ok || n.Tag != tagNode || len(n.Fields) != 4 {
		t.Fatalf("node value = %#v (want v5 node structure)", recs[0][0])
	}
	labels, _ := n.Fields[1].([]any)
	if len(labels) != 1 || labels[0] != "N" {
		t.Fatalf("node labels = %v", labels)
	}
	r, ok := recs[0][1].(Structure)
	if !ok || r.Tag != tagRelationship || len(r.Fields) != 8 {
		t.Fatalf("relationship value = %#v", recs[0][1])
	}
	if r.Fields[3] != "NEXT" {
		t.Fatalf("relationship type = %v", r.Fields[3])
	}
}

func TestServerParams(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(10)))
	_, recs, err := c.RunAll(`MATCH (n:N) WHERE n.i = $want RETURN n.i AS i`,
		map[string]any{"want": int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0][0] != int64(4) {
		t.Fatalf("records = %v", recs)
	}
}

func TestServerSyntaxFailureAndReset(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(1)))

	_, err := c.Run(`MATCH (n RETURN n`, nil)
	var sf *ServerFailure
	if !errors.As(err, &sf) || sf.Code != codeSyntaxError {
		t.Fatalf("err = %v, want %s", err, codeSyntaxError)
	}
	// The connection is now failed: further requests are IGNORED.
	if _, err := c.Run(`MATCH (n:N) RETURN n`, nil); err == nil ||
		!strings.Contains(err.Error(), "ignored") {
		t.Fatalf("post-failure run err = %v, want ignored", err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, recs, err := c.RunAll(`MATCH (n:N) RETURN n.i AS i`, nil); err != nil || len(recs) != 1 {
		t.Fatalf("post-reset run: recs=%d err=%v", len(recs), err)
	}
}

func TestServerBudgetKillFailure(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(100), cypher.WithMaxRows(10)))

	if _, err := c.Run(`MATCH (n:N) RETURN n.i AS i`, nil); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := c.Pull(-1)
	var sf *ServerFailure
	if !errors.As(err, &sf) || sf.Code != codeResourceExceeded {
		t.Fatalf("err = %v, want %s", err, codeResourceExceeded)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAdmissionRejectFailure(t *testing.T) {
	gov := governor.New(governor.Config{MaxConcurrent: 1, MaxQueue: 0})
	// The result must overflow the cursor's channel buffer so the scan —
	// and with it the admission slot — stays live until the client pulls.
	ex := cypher.NewExecutor(boltGraph(500), cypher.WithAdmission(gov))
	c1, _ := startServer(t, ex)
	// Hold the only slot by leaving a stream open on a second connection.
	if _, err := c1.Run(`MATCH (n:N) RETURN n.i AS i`, nil); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(Config{Executor: ex})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l)
	defer srv2.Close()
	c2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Hello("t"); err != nil {
		t.Fatal(err)
	}
	_, err = c2.Run(`MATCH (n:N) RETURN n.i AS i`, nil)
	var sf *ServerFailure
	if !errors.As(err, &sf) || sf.Code != codeNoThreads {
		t.Fatalf("err = %v, want %s", err, codeNoThreads)
	}

	// Drain the first stream; the slot frees and the governor reconciles.
	if _, _, _, err := c1.Pull(-1); err != nil {
		t.Fatal(err)
	}
	st := gov.Stats()
	if st.Active != 0 || st.Admitted != st.Completed+st.Killed {
		t.Fatalf("governor counters: %+v", st)
	}
}

func TestServerExplicitTx(t *testing.T) {
	g := boltGraph(0)
	c, srv := startServer(t, cypher.NewExecutor(g))

	// BEGIN … COMMIT persists.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunAll(`CREATE (p:P {k: 1})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesWithLabel("P")); n != 1 {
		t.Fatalf("committed P nodes = %d, want 1", n)
	}

	// BEGIN … ROLLBACK undoes.
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunAll(`CREATE (q:Q {k: 2})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := len(g.NodesWithLabel("Q")); n != 0 {
		t.Fatalf("rolled-back Q nodes = %d, want 0", n)
	}

	st := srv.Stats()
	if st.TxBegun != 2 || st.TxCommitted != 1 || st.TxRolledBack != 1 {
		t.Fatalf("tx counters: %+v", st)
	}
}

// TestServerDisconnectRollsBack drops a connection mid-transaction and
// expects the server to roll it back.
func TestServerDisconnectRollsBack(t *testing.T) {
	g := boltGraph(0)
	ex := cypher.NewExecutor(g)
	c, srv := startServer(t, ex)

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RunAll(`CREATE (p:P)`, nil); err != nil {
		t.Fatal(err)
	}
	c.nc.Close() // abrupt disconnect, no GOODBYE
	srv.Close()  // waits for the handler to unwind

	if n := len(g.NodesWithLabel("P")); n != 0 {
		t.Fatalf("post-disconnect P nodes = %d, want 0 (tx must roll back)", n)
	}
	// A fresh session can take the tx lock: the dropped one released it.
	s := ex.OpenSession()
	defer s.Close()
	if err := s.Begin(nil); err != nil {
		t.Fatalf("tx lock still held after disconnect: %v", err)
	}
}

func TestServerWriteSummaryStats(t *testing.T) {
	c, _ := startServer(t, cypher.NewExecutor(boltGraph(0)))
	if _, err := c.Run(`CREATE (p:P {k: 1})`, nil); err != nil {
		t.Fatal(err)
	}
	_, _, meta, err := c.Pull(-1)
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := meta["type"].(string); typ != "w" {
		t.Fatalf("summary type = %v, want w", meta["type"])
	}
	stats, _ := meta["stats"].(map[string]any)
	if stats["nodes-created"] != int64(1) {
		t.Fatalf("summary stats = %v", stats)
	}
}

func TestServerRejectsBadHandshake(t *testing.T) {
	srv := NewServer(Config{Executor: cypher.NewExecutor(boltGraph(1))})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Wrong magic: the server must drop the connection without a reply.
	if _, err := nc.Write(make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if n, err := nc.Read(buf); err == nil && n == 4 && buf[3] != 0 {
		t.Fatalf("server negotiated %v after bad magic", buf)
	}
}
