package bolt

import (
	"math"
	"reflect"
	"testing"
)

// FuzzPackstream feeds arbitrary bytes to the decoder (must never panic
// or over-read) and, when they decode, re-encodes and re-decodes the
// value, requiring a fixed point: decode ∘ encode ∘ decode = decode.
// That property catches width-selection bugs (a value that re-encodes
// into a different representation must still decode equal) and any
// asymmetry between the two directions.
func FuzzPackstream(f *testing.F) {
	seed := [][]byte{
		{mNull},
		{mTrue},
		{0x2A}, // tiny int 42
		{0xF0}, // tiny int -16
		{mTinyStr | 2, 'h', 'i'},
		{mInt64, 0, 0, 0, 0, 0, 0, 0, 1},
		{mFloat, 0x40, 0x09, 0x21, 0xF9, 0xF0, 0x1B, 0x86, 0x6E},
		{mTinyLst | 2, 0x01, mTinyStr | 1, 'x'},
		{mTinyMap | 1, mTinyStr | 1, 'k', 0x07},
		{mTinyStc | 1, tagNode, 0x05},
		{mLst8, 3, 1, 2, 3},
		{mStr16, 0x00, 0x03, 'a', 'b', 'c'},
		{mBytes8, 2, 0xDE, 0xAD},
	}
	// A real message as produced by the encoder.
	var e Encoder
	_ = e.Append(map[string]any{"fields": []any{"a", "b"}, "n": int64(-1)})
	seed = append(seed, append([]byte(nil), e.Bytes()...))

	for _, s := range seed {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := Decode(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more trailing bytes than input")
		}
		if hasNaN(v) {
			return // NaN breaks equality; the bits still round-trip
		}
		var enc Encoder
		if err := enc.Append(v); err != nil {
			t.Fatalf("decoded value failed to re-encode: %v (%#v)", err, v)
		}
		v2, rest2, err := Decode(enc.Bytes())
		if err != nil {
			t.Fatalf("re-encoded value failed to decode: %v (%#v)", err, v)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded value left %d trailing bytes", len(rest2))
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("round trip changed value: %#v -> %#v", v, v2)
		}
	})
}

// hasNaN walks a decoded value for NaN floats.
func hasNaN(v any) bool {
	switch x := v.(type) {
	case float64:
		return math.IsNaN(x)
	case []any:
		for _, e := range x {
			if hasNaN(e) {
				return true
			}
		}
	case map[string]any:
		for _, e := range x {
			if hasNaN(e) {
				return true
			}
		}
	case Structure:
		for _, e := range x.Fields {
			if hasNaN(e) {
				return true
			}
		}
	}
	return false
}
