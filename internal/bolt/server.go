package bolt

// Server: connection acceptance and the per-connection Bolt state
// machine.
//
//	connected --HELLO--> ready --RUN--> streaming --PULL*--> ready
//	   ready --BEGIN--> txReady --RUN--> txStreaming --PULL*--> txReady
//	   txReady --COMMIT|ROLLBACK--> ready
//	   any request error --> failed --(IGNORED...)--> RESET --> ready
//
// Every RUN flows through the engine Session API (internal/cypher), so
// admission control, per-query budgets and transaction locking behave
// identically over the wire and in-process. PULL streams records
// straight off the session Cursor — client flow control (PULL n)
// composes with the cursor's bounded channel, so a slow client
// backpressures the scan itself.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/graphrules/graphrules/internal/cypher"
)

// Config configures a Server. Executor is required; it carries the
// graph, budgets and the admission controller shared by all connections.
type Config struct {
	Executor *cypher.Executor
	// Agent is the server identification string sent in the HELLO
	// response ("graphrules/graphd" when empty).
	Agent string
	// Logf receives connection-level diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// BaseContext, when non-nil, supplies the parent context for every
	// connection's queries (as in net/http.Server) — cancelling it kills
	// in-flight queries on server shutdown.
	BaseContext func() context.Context
}

// ServerStats is a snapshot of the server's monotonic counters plus the
// current number of live connections.
type ServerStats struct {
	ConnectionsTotal  int64 `json:"connections_total"`
	ConnectionsActive int64 `json:"connections_active"`
	MessagesIn        int64 `json:"messages_in"`
	QueriesRun        int64 `json:"queries_run"`
	RecordsOut        int64 `json:"records_out"`
	Failures          int64 `json:"failures"`
	TxBegun           int64 `json:"tx_begun"`
	TxCommitted       int64 `json:"tx_committed"`
	TxRolledBack      int64 `json:"tx_rolled_back"`
}

// Server serves the Bolt protocol over accepted connections.
type Server struct {
	ex      *cypher.Executor
	agent   string
	logf    func(string, ...any)
	baseCtx func() context.Context

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	nextConnID atomic.Int64

	connTotal    atomic.Int64
	connActive   atomic.Int64
	messagesIn   atomic.Int64
	queriesRun   atomic.Int64
	recordsOut   atomic.Int64
	failures     atomic.Int64
	txBegun      atomic.Int64
	txCommitted  atomic.Int64
	txRolledBack atomic.Int64
}

// NewServer builds a Server over the executor.
func NewServer(cfg Config) *Server {
	agent := cfg.Agent
	if agent == "" {
		agent = "graphrules/graphd"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background //graphrules:ctxshim server-root default, overridable via Config.BaseContext
	}
	return &Server{
		ex:        cfg.Executor,
		agent:     agent,
		logf:      logf,
		baseCtx:   base,
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnectionsTotal:  s.connTotal.Load(),
		ConnectionsActive: s.connActive.Load(),
		MessagesIn:        s.messagesIn.Load(),
		QueriesRun:        s.queriesRun.Load(),
		RecordsOut:        s.recordsOut.Load(),
		Failures:          s.failures.Load(),
		TxBegun:           s.txBegun.Load(),
		TxCommitted:       s.txCommitted.Load(),
		TxRolledBack:      s.txRolledBack.Load(),
	}
}

// Serve accepts connections from l until the listener fails or the
// server is closed. It blocks; run it on its own goroutine to serve
// several listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("bolt: server is closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(nc)
		}()
	}
}

// Close stops the server: listeners and live connections are closed and
// all connection handlers awaited (their sessions roll back open
// transactions on close).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers a live connection; it reports false when the server is
// already closed (the caller must drop the connection).
func (s *Server) track(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// Connection states.
const (
	stateConnected = iota // handshake done, HELLO pending
	stateReady
	stateStreaming
	stateTxReady
	stateTxStreaming
	stateFailed
)

// handler is one connection's protocol state.
type handler struct {
	srv  *Server
	ctx  context.Context
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  Encoder
	sess *cypher.Session

	state   int
	cursor  *cypher.Cursor
	pending []cypher.Datum // one row peeked past a PULL batch (has_more)
	connID  string
}

// ServeConn runs the Bolt protocol on one already-accepted connection
// (exported so tests and in-process clients can drive a net.Pipe end).
func (s *Server) ServeConn(nc net.Conn) {
	defer nc.Close()
	if !s.track(nc) {
		return
	}
	defer s.untrack(nc)
	s.connTotal.Add(1)
	s.connActive.Add(1)
	defer s.connActive.Add(-1)

	major, minor, err := negotiate(nc)
	if err != nil {
		s.logf("bolt: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx())
	defer cancel()
	h := &handler{
		srv:    s,
		ctx:    ctx,
		br:     bufio.NewReader(nc),
		bw:     bufio.NewWriter(nc),
		sess:   s.ex.OpenSession(),
		state:  stateConnected,
		connID: fmt.Sprintf("bolt-%d", s.nextConnID.Add(1)),
	}
	h.enc.V5 = major >= 5
	// Closing the session closes the live cursor and rolls back an open
	// transaction — a dropped connection never leaks a stream, a
	// governor slot or the transaction lock.
	defer h.sess.Close()
	_ = minor
	h.loop()
}

// loop reads and dispatches messages until the connection ends.
func (h *handler) loop() {
	buf := make([]byte, 0, 4096)
	for {
		payload, err := readMessage(h.br, buf)
		if err != nil {
			return // EOF or broken connection
		}
		buf = payload
		v, rest, err := Decode(payload)
		if err != nil {
			h.srv.logf("bolt: %s: undecodable message: %v", h.connID, err)
			return
		}
		st, ok := v.(Structure)
		if !ok || len(rest) != 0 {
			h.srv.logf("bolt: %s: message is not a single structure", h.connID)
			return
		}
		h.srv.messagesIn.Add(1)
		if !h.dispatch(st) {
			return
		}
		if err := h.bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch handles one request; false ends the connection.
func (h *handler) dispatch(st Structure) bool {
	switch st.Tag {
	case msgGoodbye:
		return false
	case msgReset:
		h.onReset()
		return true
	}

	if h.state == stateConnected {
		if st.Tag != msgHello {
			h.fail(fmt.Errorf("bolt: expected HELLO, got %s", tagName(st.Tag)))
			return true
		}
		h.onHello()
		return true
	}
	if h.state == stateFailed {
		h.send(msgIgnored, map[string]any{})
		return true
	}

	switch st.Tag {
	case msgHello:
		h.fail(fmt.Errorf("bolt: duplicate HELLO"))
	case msgRun:
		h.onRun(st)
	case msgPull:
		h.onPull(st)
	case msgDiscard:
		h.onDiscard()
	case msgBegin:
		h.onBegin()
	case msgCommit:
		h.onCommit()
	case msgRollback:
		h.onRollback()
	default:
		h.fail(fmt.Errorf("bolt: unexpected message %s", tagName(st.Tag)))
	}
	return true
}

// send writes one summary/record message.
func (h *handler) send(tag byte, fields ...any) {
	h.enc.Reset()
	if err := h.enc.AppendStructure(tag, fields...); err != nil {
		h.srv.logf("bolt: %s: encode: %v", h.connID, err)
		return
	}
	if err := writeMessage(h.bw, h.enc.Bytes()); err != nil {
		h.srv.logf("bolt: %s: write: %v", h.connID, err)
	}
}

// fail sends FAILURE and enters the failed state (requests are IGNORED
// until RESET).
func (h *handler) fail(err error) {
	h.srv.failures.Add(1)
	h.closeCursor()
	h.send(msgFailure, failureMeta(err))
	h.state = stateFailed
}

func (h *handler) closeCursor() {
	if h.cursor != nil {
		h.cursor.Close()
		h.cursor = nil
	}
	h.pending = nil
}

func (h *handler) onHello() {
	h.send(msgSuccess, map[string]any{
		"server":        h.srv.agent,
		"connection_id": h.connID,
	})
	h.state = stateReady
}

func (h *handler) onReset() {
	h.closeCursor()
	if h.sess.InTx() {
		if err := h.sess.Rollback(); err != nil {
			h.srv.logf("bolt: %s: reset rollback: %v", h.connID, err)
		}
		h.srv.txRolledBack.Add(1)
	}
	if h.state != stateConnected {
		h.state = stateReady
	}
	h.send(msgSuccess, map[string]any{})
}

func (h *handler) onRun(st Structure) {
	if h.state != stateReady && h.state != stateTxReady {
		h.fail(fmt.Errorf("bolt: RUN while %s", stateName(h.state)))
		return
	}
	if len(st.Fields) < 1 {
		h.fail(fmt.Errorf("bolt: RUN without a query"))
		return
	}
	query, ok := st.Fields[0].(string)
	if !ok {
		h.fail(fmt.Errorf("bolt: RUN query is %T, not string", st.Fields[0]))
		return
	}
	var params map[string]any
	if len(st.Fields) > 1 {
		params, _ = st.Fields[1].(map[string]any)
	}
	cur, err := h.sess.Run(h.ctx, query, engineParams(params))
	if err != nil {
		h.fail(err)
		return
	}
	h.srv.queriesRun.Add(1)
	h.cursor = cur
	h.pending = nil
	meta := map[string]any{"fields": cur.Columns(), "t_first": int64(0)}
	if h.state == stateTxReady {
		meta["qid"] = int64(0)
		h.state = stateTxStreaming
	} else {
		h.state = stateStreaming
	}
	h.send(msgSuccess, meta)
}

// nextRow yields the next record, consuming the peeked row first.
func (h *handler) nextRow() ([]cypher.Datum, bool) {
	if h.pending != nil {
		row := h.pending
		h.pending = nil
		return row, true
	}
	if h.cursor.Next() {
		return h.cursor.Record(), true
	}
	return nil, false
}

func (h *handler) onPull(st Structure) {
	if h.state != stateStreaming && h.state != stateTxStreaming {
		h.fail(fmt.Errorf("bolt: PULL while %s", stateName(h.state)))
		return
	}
	n := int64(-1)
	if len(st.Fields) > 0 {
		if extra, ok := st.Fields[0].(map[string]any); ok {
			if v, ok := extra["n"].(int64); ok {
				n = v
			}
		}
	}
	sent := int64(0)
	exhausted := false
	for n < 0 || sent < n {
		row, ok := h.nextRow()
		if !ok {
			exhausted = true
			break
		}
		h.send(msgRecord, wireRecord(row))
		h.srv.recordsOut.Add(1)
		sent++
	}
	if !exhausted {
		// Batch filled; peek one row to distinguish "more to come" from
		// "ended exactly at the batch boundary".
		if row, ok := h.nextRow(); ok {
			h.pending = row
			h.send(msgSuccess, map[string]any{"has_more": true})
			return
		}
		exhausted = true
	}
	_ = exhausted
	res, err := h.cursor.Summary()
	if err != nil {
		h.fail(err)
		return
	}
	h.closeCursor()
	meta := map[string]any{"t_last": int64(0), "type": "r"}
	if res != nil && res.Stats.NodesCreated+res.Stats.EdgesCreated+
		res.Stats.PropertiesSet+res.Stats.NodesDeleted+res.Stats.EdgesDeleted+
		res.Stats.LabelsAdded > 0 {
		meta["type"] = "w"
		meta["stats"] = map[string]any{
			"nodes-created":         int64(res.Stats.NodesCreated),
			"relationships-created": int64(res.Stats.EdgesCreated),
			"properties-set":        int64(res.Stats.PropertiesSet),
			"labels-added":          int64(res.Stats.LabelsAdded),
			"nodes-deleted":         int64(res.Stats.NodesDeleted),
			"relationships-deleted": int64(res.Stats.EdgesDeleted),
		}
	}
	if h.state == stateTxStreaming {
		h.state = stateTxReady
	} else {
		h.state = stateReady
	}
	h.send(msgSuccess, meta)
}

func (h *handler) onDiscard() {
	if h.state != stateStreaming && h.state != stateTxStreaming {
		h.fail(fmt.Errorf("bolt: DISCARD while %s", stateName(h.state)))
		return
	}
	h.closeCursor()
	if h.state == stateTxStreaming {
		h.state = stateTxReady
	} else {
		h.state = stateReady
	}
	h.send(msgSuccess, map[string]any{})
}

func (h *handler) onBegin() {
	if h.state != stateReady {
		h.fail(fmt.Errorf("bolt: BEGIN while %s", stateName(h.state)))
		return
	}
	if err := h.sess.Begin(h.ctx); err != nil {
		h.fail(err)
		return
	}
	h.srv.txBegun.Add(1)
	h.state = stateTxReady
	h.send(msgSuccess, map[string]any{})
}

func (h *handler) onCommit() {
	if h.state != stateTxReady {
		h.fail(fmt.Errorf("bolt: COMMIT while %s", stateName(h.state)))
		return
	}
	if err := h.sess.Commit(); err != nil {
		h.fail(err)
		return
	}
	h.srv.txCommitted.Add(1)
	h.state = stateReady
	h.send(msgSuccess, map[string]any{})
}

func (h *handler) onRollback() {
	if h.state != stateTxReady {
		h.fail(fmt.Errorf("bolt: ROLLBACK while %s", stateName(h.state)))
		return
	}
	if err := h.sess.Rollback(); err != nil {
		h.fail(err)
		return
	}
	h.srv.txRolledBack.Add(1)
	h.state = stateReady
	h.send(msgSuccess, map[string]any{})
}

func stateName(st int) string {
	switch st {
	case stateConnected:
		return "connected"
	case stateReady:
		return "ready"
	case stateStreaming:
		return "streaming"
	case stateTxReady:
		return "tx-ready"
	case stateTxStreaming:
		return "tx-streaming"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", st)
	}
}
