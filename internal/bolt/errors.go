package bolt

// Mapping from engine errors to Bolt FAILURE metadata. Drivers dispatch
// on the code's classification segment (ClientError / TransientError /
// DatabaseError), so the mapping keeps the engine's error taxonomy
// visible to stock clients: admission rejections and row/memory budget
// kills are transient (retry later, maybe smaller), deadline kills and
// syntax errors are the client's to fix, panics are server faults.

import (
	"context"
	"errors"

	"github.com/graphrules/graphrules/internal/cypher"
)

// Bolt failure codes served by this server.
const (
	codeSyntaxError      = "Neo.ClientError.Statement.SyntaxError"
	codeInvalidRequest   = "Neo.ClientError.Request.Invalid"
	codeTxTimedOut       = "Neo.ClientError.Transaction.TransactionTimedOut"
	codeTerminated       = "Neo.ClientError.Transaction.Terminated"
	codeNoThreads        = "Neo.TransientError.Request.NoThreadsAvailable"
	codeResourceExceeded = "Neo.TransientError.General.ResourceExhausted"
	codeOutOfMemory      = "Neo.TransientError.General.MemoryPoolOutOfMemoryError"
	codeUnknownError     = "Neo.DatabaseError.General.UnknownError"
	codeExecutionFailed  = "Neo.DatabaseError.Statement.ExecutionFailed"
)

// admissionRejected matches any admission controller's typed rejection
// without coupling to one implementation (internal/governor's error
// carries this marker method).
type admissionRejected interface{ AdmissionRejected() bool }

// failureMeta builds the FAILURE metadata map for an engine error.
func failureMeta(err error) map[string]any {
	return map[string]any{"code": failureCode(err), "message": err.Error()}
}

func failureCode(err error) string {
	var adm admissionRejected
	var re *cypher.ResourceExhaustedError
	var pe *cypher.PanicError
	var se *cypher.SyntaxError
	switch {
	case errors.As(err, &adm):
		return codeNoThreads
	case errors.As(err, &re):
		switch re.Resource {
		case "memory":
			return codeOutOfMemory
		case "deadline":
			return codeTxTimedOut
		default:
			return codeResourceExceeded
		}
	case errors.As(err, &se):
		return codeSyntaxError
	case errors.As(err, &pe):
		return codeUnknownError
	case errors.Is(err, context.DeadlineExceeded):
		return codeTxTimedOut
	case errors.Is(err, context.Canceled):
		return codeTerminated
	case errors.Is(err, cypher.ErrTxOpen), errors.Is(err, cypher.ErrNoTx),
		errors.Is(err, cypher.ErrSessionClosed):
		return codeInvalidRequest
	default:
		return codeExecutionFailed
	}
}
