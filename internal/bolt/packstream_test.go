package bolt

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// roundTrip encodes v and decodes it back.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	var e Encoder
	if err := e.Append(v); err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	got, rest, err := Decode(e.Bytes())
	if err != nil {
		t.Fatalf("decode %v: %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %v: %d trailing bytes", v, len(rest))
	}
	return got
}

func TestPackstreamScalars(t *testing.T) {
	cases := []any{
		nil, true, false,
		int64(0), int64(1), int64(-1), int64(-16), int64(-17), int64(127), int64(128),
		int64(-128), int64(-129), int64(32767), int64(-32768), int64(32768),
		int64(math.MaxInt32), int64(math.MinInt32), int64(math.MaxInt32) + 1,
		int64(math.MaxInt64), int64(math.MinInt64),
		float64(0), 3.14159, math.Inf(1), -0.0,
		"", "a", "héllo wörld", strings.Repeat("x", 15), strings.Repeat("x", 16),
		strings.Repeat("y", 256), strings.Repeat("z", 70000),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}
}

func TestPackstreamIntWidths(t *testing.T) {
	// The encoder must pick the smallest representation.
	cases := []struct {
		n    int64
		size int
	}{
		{0, 1}, {127, 1}, {-16, 1},
		{-17, 2}, {-128, 2},
		{128, 3}, {32767, 3}, {-32768, 3},
		{32768, 5}, {math.MaxInt32, 5},
		{math.MaxInt32 + 1, 9}, {math.MinInt64, 9},
	}
	for _, c := range cases {
		var e Encoder
		e.AppendInt(c.n)
		if len(e.Bytes()) != c.size {
			t.Errorf("int %d encoded to %d bytes, want %d", c.n, len(e.Bytes()), c.size)
		}
	}
}

func TestPackstreamCollections(t *testing.T) {
	cases := []any{
		[]any{},
		[]any{int64(1), "two", 3.0, nil, true},
		map[string]any{},
		map[string]any{"k": int64(1), "nested": []any{"a", "b"}},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v -> %#v", v, got)
		}
	}

	// Sized collection boundaries (16 and 256 elements).
	for _, n := range []int{15, 16, 255, 256} {
		l := make([]any, n)
		for i := range l {
			l[i] = int64(i)
		}
		got := roundTrip(t, l)
		if !reflect.DeepEqual(got, l) {
			t.Errorf("list of %d did not round trip", n)
		}
	}
}

func TestPackstreamBytes(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 70000} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)
		}
		got := roundTrip(t, b)
		if !reflect.DeepEqual(got, b) {
			t.Errorf("bytes of %d did not round trip", n)
		}
	}
}

func TestPackstreamStructure(t *testing.T) {
	st := Structure{Tag: 0x66, Fields: []any{int64(1), "x", []any{true}}}
	got := roundTrip(t, st)
	if !reflect.DeepEqual(got, st) {
		t.Errorf("structure round trip: %#v", got)
	}

	var e Encoder
	if err := e.AppendStructure(0x01, make([]any, 16)...); err == nil {
		t.Errorf("16-field structure should be rejected")
	}
}

func TestPackstreamNodeEncoding(t *testing.T) {
	n := Node{ID: 7, Labels: []string{"Person"}, Props: map[string]any{"name": "amy"}, ElementID: "7"}

	var v4 Encoder
	if err := v4.Append(n); err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(v4.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st := got.(Structure)
	if st.Tag != tagNode || len(st.Fields) != 3 {
		t.Fatalf("v4 node: tag 0x%02X fields %d, want 0x4E/3", st.Tag, len(st.Fields))
	}

	v5 := Encoder{V5: true}
	if err := v5.Append(n); err != nil {
		t.Fatal(err)
	}
	got, _, err = Decode(v5.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st = got.(Structure)
	if st.Tag != tagNode || len(st.Fields) != 4 {
		t.Fatalf("v5 node: tag 0x%02X fields %d, want 0x4E/4", st.Tag, len(st.Fields))
	}
	if st.Fields[3] != "7" {
		t.Fatalf("v5 element id = %v", st.Fields[3])
	}
}

func TestPackstreamRelationshipEncoding(t *testing.T) {
	r := Relationship{ID: 3, StartID: 1, EndID: 2, Type: "KNOWS",
		ElementID: "3", StartElementID: "1", EndElementID: "2"}
	for _, v5 := range []bool{false, true} {
		e := Encoder{V5: v5}
		if err := e.Append(r); err != nil {
			t.Fatal(err)
		}
		got, _, err := Decode(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		st := got.(Structure)
		want := 5
		if v5 {
			want = 8
		}
		if st.Tag != tagRelationship || len(st.Fields) != want {
			t.Fatalf("v5=%v relationship: tag 0x%02X fields %d, want 0x52/%d",
				v5, st.Tag, len(st.Fields), want)
		}
	}
}

// TestPackstreamTruncated feeds every strict prefix of a valid encoding;
// all must error, none may panic.
func TestPackstreamTruncated(t *testing.T) {
	var e Encoder
	if err := e.Append(map[string]any{
		"list": []any{int64(300), "str", 2.5},
		"node": Node{ID: 1, Labels: []string{"L"}, Props: map[string]any{"k": int64(99999)}},
	}); err != nil {
		t.Fatal(err)
	}
	full := e.Bytes()
	for i := 0; i < len(full); i++ {
		if _, _, err := Decode(full[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(full))
		}
	}
}

func TestPackstreamHostileSizes(t *testing.T) {
	cases := [][]byte{
		{mLst32, 0xFF, 0xFF, 0xFF, 0xFF},       // 4G-element list
		{mStr32, 0xFF, 0xFF, 0xFF, 0xFF, 'a'},  // 4G-char string
		{mMap32, 0x00, 0xFF, 0xFF, 0xFF, 0x80}, // huge map
	}
	for _, b := range cases {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("hostile input % X decoded without error", b)
		}
	}
	// Deep nesting must hit the recursion bound, not the stack.
	deep := make([]byte, 0, 4096)
	for i := 0; i < 2000; i++ {
		deep = append(deep, mTinyLst|1)
	}
	deep = append(deep, mNull)
	if _, _, err := Decode(deep); err == nil {
		t.Errorf("2000-deep nesting decoded without error")
	}
}
