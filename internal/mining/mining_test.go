package mining

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/textenc"
)

func wwc(t *testing.T) *graph.Graph {
	t.Helper()
	return datasets.WWC2019(datasets.DefaultOptions())
}

func TestMineRequiresModel(t *testing.T) {
	if _, err := Mine(wwc(t), Config{}); err == nil {
		t.Fatal("missing model should error")
	}
}

func TestMineSlidingWindowEndToEnd(t *testing.T) {
	g := wwc(t)
	res, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != SlidingWindow || res.Mode != prompt.ZeroShot {
		t.Error("defaults wrong")
	}
	if len(res.Rules) == 0 || len(res.Rules) > llm.LLaMA3().MaxRules {
		t.Fatalf("rules = %d", len(res.Rules))
	}
	if res.Windows < 10 {
		t.Errorf("windows = %d, WWC2019 should need many", res.Windows)
	}
	if res.MiningSeconds <= 0 || res.TranslationSeconds <= 0 {
		t.Error("timing not accounted")
	}
	if res.CypherTotal != len(res.Rules) {
		t.Errorf("cypher total %d != rules %d", res.CypherTotal, len(res.Rules))
	}
	if res.CypherCorrect > res.CypherTotal || res.CypherCorrect == 0 {
		t.Errorf("cypher correct = %d/%d", res.CypherCorrect, res.CypherTotal)
	}
	if res.Aggregate.Rules == 0 {
		t.Error("no rules scored")
	}
	sum := 0
	for _, n := range res.ErrorCounts {
		sum += n
	}
	if sum != res.CypherTotal {
		t.Error("error census does not cover all queries")
	}
	// Every corrected rule must have category syntax or direction.
	for _, mr := range res.Rules {
		if mr.Corrected && mr.Category != correction.SyntaxError && mr.Category != correction.DirectionError {
			t.Errorf("rule %q corrected with category %v", mr.NL, mr.Category)
		}
		if mr.Category == correction.HallucinatedProperty && mr.Corrected {
			t.Error("hallucinated rule must not be corrected")
		}
	}
}

func TestMineRAGEndToEnd(t *testing.T) {
	g := wwc(t)
	res, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), Method: RAG})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 1 {
		t.Errorf("RAG should prompt once, got %d", res.Windows)
	}
	if res.BrokenPatterns != 0 {
		t.Error("RAG has no window boundaries")
	}
	if res.IndexSeconds <= 0 {
		t.Error("RAG indexing not accounted")
	}
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined")
	}
}

func TestRAGFasterThanSlidingWindow(t *testing.T) {
	g := wwc(t)
	m := llm.NewSim(llm.LLaMA3(), 1)
	swa, err := Mine(g, Config{Model: m, Method: SlidingWindow})
	if err != nil {
		t.Fatal(err)
	}
	rag, err := Mine(g, Config{Model: m, Method: RAG})
	if err != nil {
		t.Fatal(err)
	}
	if rag.MiningSeconds*10 > swa.MiningSeconds {
		t.Errorf("RAG should be much faster: rag=%.1f swa=%.1f", rag.MiningSeconds, swa.MiningSeconds)
	}
}

func TestMineDeterminism(t *testing.T) {
	g := wwc(t)
	cfg := Config{Model: llm.NewSim(llm.Mixtral(), 5)}
	a, err := Mine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		if a.Rules[i].NL != b.Rules[i].NL {
			t.Errorf("rule %d differs: %q vs %q", i, a.Rules[i].NL, b.Rules[i].NL)
		}
		if a.Rules[i].Score.Counts != b.Rules[i].Score.Counts {
			t.Error("scores differ between identical runs")
		}
	}
	if a.MiningSeconds != b.MiningSeconds {
		t.Error("simulated timing differs between identical runs")
	}
}

func TestFewShotBudget(t *testing.T) {
	g := wwc(t)
	m := llm.NewSim(llm.LLaMA3(), 1)
	few, err := Mine(g, Config{Model: m, Mode: prompt.FewShot})
	if err != nil {
		t.Fatal(err)
	}
	if len(few.Rules) > llm.LLaMA3().MaxRulesFewShot {
		t.Errorf("few-shot rules = %d, budget %d", len(few.Rules), llm.LLaMA3().MaxRulesFewShot)
	}
}

func TestScoresMatchDirectEvaluation(t *testing.T) {
	// Every correct, uncorrected rule's score must equal evaluating the
	// rule's reference queries directly.
	g := wwc(t)
	res, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range res.Rules {
		if mr.Category != correction.Correct || mr.EvalErr != nil {
			continue
		}
		want, err := metrics.EvaluateQueries(g, mr.Rule.Queries())
		if err != nil {
			t.Fatalf("%s: %v", mr.NL, err)
		}
		if mr.Score.Counts != want {
			t.Errorf("%s: pipeline counts %+v != direct %+v", mr.NL, mr.Score.Counts, want)
		}
	}
}

func TestAlternativeEncoders(t *testing.T) {
	g := wwc(t)
	for name, enc := range textenc.Encoders() {
		res, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), Encoder: enc})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Encoder != name {
			t.Errorf("encoder name = %q", res.Encoder)
		}
		if name == "incident" && len(res.Rules) == 0 {
			t.Error("incident encoder mined nothing")
		}
	}
}

func TestWindowParamsPropagate(t *testing.T) {
	g := wwc(t)
	small, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), WindowTokens: 2000, OverlapTokens: 100})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), WindowTokens: 16000, OverlapTokens: 500})
	if err != nil {
		t.Fatal(err)
	}
	if small.Windows <= big.Windows {
		t.Errorf("smaller windows should mean more calls: %d vs %d", small.Windows, big.Windows)
	}
}

func TestMethodString(t *testing.T) {
	if SlidingWindow.String() != "Sliding Window Attention" || RAG.String() != "RAG" {
		t.Error("method names wrong")
	}
	if _, err := Mine(wwc(t), Config{Model: llm.NewSim(llm.LLaMA3(), 1), Method: Method(9)}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestTotalSimSeconds(t *testing.T) {
	r := &Result{MiningSeconds: 1, TranslationSeconds: 2, IndexSeconds: 3}
	if r.TotalSimSeconds() != 6 {
		t.Error("TotalSimSeconds wrong")
	}
}

func TestWriteJSON(t *testing.T) {
	g := wwc(t)
	res, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["dataset"] != "WWC2019" || decoded["model"] != "Llama-3" {
		t.Errorf("header wrong: %v", decoded["dataset"])
	}
	ruleList, ok := decoded["rules"].([]any)
	if !ok || len(ruleList) != len(res.Rules) {
		t.Fatalf("rules array wrong")
	}
	first := ruleList[0].(map[string]any)
	for _, key := range []string{"nl", "kind", "formal", "cypherCategory", "supportQuery", "coveragePct"} {
		if _, present := first[key]; !present {
			t.Errorf("rule JSON missing %q", key)
		}
	}
	if _, present := decoded["errorCounts"]; !present {
		t.Error("errorCounts missing")
	}
}

func TestOverlapSentinel(t *testing.T) {
	g := wwc(t)
	withOverlap, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), WindowTokens: 4000})
	if err != nil {
		t.Fatal(err)
	}
	noOverlap, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), WindowTokens: 4000, OverlapTokens: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Without overlap the stride grows, so fewer windows — and more broken
	// patterns, since nothing protects boundary blocks.
	if noOverlap.Windows >= withOverlap.Windows {
		t.Errorf("no-overlap windows %d should be fewer than default %d", noOverlap.Windows, withOverlap.Windows)
	}
	if noOverlap.BrokenPatterns <= withOverlap.BrokenPatterns {
		t.Errorf("no-overlap broken %d should exceed default %d",
			noOverlap.BrokenPatterns, withOverlap.BrokenPatterns)
	}
}
