package mining

import (
	"context"

	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/rules"
)

// MaintainedRules returns the run's rules that scored successfully — the
// set worth keeping current as the graph keeps evolving after the mining
// run. Rules whose translation or evaluation failed are excluded: they
// have no valid score to maintain.
func (r *Result) MaintainedRules() []rules.Rule {
	var rs []rules.Rule
	for _, mr := range r.Rules {
		if mr.Rule != nil && mr.EvalErr == nil && mr.TranslateErr == nil {
			rs = append(rs, mr.Rule)
		}
	}
	return rs
}

// Maintainer builds the maintainer with a background context for its
// initial scoring; use MaintainerCtx to make it cancelable.
//
//graphrules:ctxshim
func (r *Result) Maintainer(g *graph.Graph, opts ...cypher.Option) *metrics.Maintainer {
	return r.MaintainerCtx(context.Background(), g, opts...)
}

// MaintainerCtx builds a metrics.Maintainer over the run's successfully
// scored rules, bound to g: the mined scores are recomputed in full once
// (under ctx), then kept exact incrementally — each committed epoch
// re-scores only the rules whose query footprint the epoch's delta
// intersects. Call Attach/AttachCtx on the result to subscribe it to g's
// commit stream. Executor options pass through to the maintainer's
// shared scorer.
func (r *Result) MaintainerCtx(ctx context.Context, g *graph.Graph, opts ...cypher.Option) *metrics.Maintainer {
	return metrics.NewMaintainerCtx(ctx, g, r.MaintainedRules(), opts...)
}
