// Package mining implements the paper's end-to-end pipeline (Figures 1-2):
// encode the property graph as text, feed it to an LLM through sliding
// windows or RAG retrieval, parse the generated natural-language rules,
// translate each rule to Cypher with a second prompt, classify and correct
// the generated queries (§4.4), and score every rule with
// support/coverage/confidence (§4.2).
package mining

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/embedding"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/textenc"
	"github.com/graphrules/graphrules/internal/vectorstore"
)

// RuleBudgeter is optionally implemented by models that bound how many
// merged rules one mining run should keep.
type RuleBudgeter interface {
	RuleBudget(fewShot bool) int
}

// Method selects how the encoded graph reaches the model (§3.1).
type Method uint8

const (
	// SlidingWindow prompts the model once per overlapping window.
	SlidingWindow Method = iota
	// RAG embeds chunks into a vector store and prompts once with the
	// retrieved top-k chunks.
	RAG
)

// String returns the method name as used in the paper's tables.
func (m Method) String() string {
	if m == RAG {
		return "RAG"
	}
	return "Sliding Window Attention"
}

// Methods lists both methods in paper order.
var Methods = []Method{SlidingWindow, RAG}

// Config parameterizes one mining run.
type Config struct {
	Model llm.Model
	// Method defaults to SlidingWindow.
	Method Method
	// Mode defaults to zero-shot.
	Mode prompt.Mode
	// Encoder defaults to the incident encoder (the paper's choice).
	Encoder textenc.Encoder
	// WindowTokens/OverlapTokens default to the paper's 8000/500. Pass a
	// negative OverlapTokens to disable overlap entirely (0 selects the
	// default).
	WindowTokens  int
	OverlapTokens int
	// RAGChunkTokens defaults to 400, RAGTopK to 8.
	RAGChunkTokens int
	RAGTopK        int
	// EmbedDim defaults to embedding.DefaultDim.
	EmbedDim int
	// ExcludeRules lists natural-language rule statements a domain expert
	// rejected; they are passed to the model as prompt exclusions and
	// filtered from the merged output (interactive refinement, §5).
	ExcludeRules []string
	// Parallel sets how many sliding-window prompts run concurrently
	// (default 1). The paper's §4.3 names parallel prompting as the main
	// lever for efficient LLM rule mining; with N > 1 the Model must be
	// safe for concurrent use (SimModel is). Results are merged in window
	// order, so parallelism never changes the mined rules.
	Parallel int
	// ScoreWorkers sets the worker-pool size for the step-2 metric
	// scoring of the corrected query sets (default: Parallel). Unlike
	// Parallel it has no effect on the simulated LLM timings or the mined
	// rule set: scoring is deterministic at any worker count. Negative
	// values select GOMAXPROCS.
	ScoreWorkers int
	// ShardWorkers sets per-query sharded MATCH execution during scoring:
	// eligible anchor scans are partitioned across this many workers inside
	// the executor (default 0 = serial). Like ScoreWorkers it never changes
	// counts or rule order, only wall time.
	ShardWorkers int
}

func (c Config) withDefaults() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("mining: Config.Model is required")
	}
	if c.Encoder == nil {
		c.Encoder = textenc.IncidentEncoder{}
	}
	if c.WindowTokens == 0 {
		c.WindowTokens = textenc.DefaultWindowTokens
	}
	switch {
	case c.OverlapTokens == 0:
		c.OverlapTokens = textenc.DefaultOverlapTokens
	case c.OverlapTokens < 0:
		c.OverlapTokens = 0
	}
	if c.RAGChunkTokens == 0 {
		c.RAGChunkTokens = 400
	}
	if c.RAGTopK == 0 {
		c.RAGTopK = 8
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = embedding.DefaultDim
	}
	if c.Parallel == 0 {
		c.Parallel = 1
	}
	if c.Parallel < 0 {
		return c, fmt.Errorf("mining: Parallel must be positive, got %d", c.Parallel)
	}
	if c.ScoreWorkers == 0 {
		c.ScoreWorkers = c.Parallel
	}
	return c, nil
}

// MinedRule is one rule's full journey through the pipeline.
type MinedRule struct {
	NL        string
	Rule      rules.Rule
	Generated rules.QuerySet      // raw model output (step 2)
	Final     rules.QuerySet      // after the correction protocol
	Category  correction.Category // §4.4 classification of Generated
	Corrected bool
	Score     metrics.Score
	// Windows lists the sliding-window indexes that proposed the rule.
	Windows []int
	// EvalErr records a rule whose final queries still failed to execute
	// (possible for hallucinated queries that are also unexecutable).
	EvalErr error
}

// Result is the outcome of one mining run.
type Result struct {
	Dataset string
	Model   string
	Method  Method
	Mode    prompt.Mode
	Encoder string

	Rules []MinedRule

	// Aggregate covers the rules that evaluated successfully.
	Aggregate metrics.Aggregate

	// MiningSeconds is the total simulated LLM compute for rule generation
	// (the quantity Table 5 reports); with Parallel > 1 workers,
	// ParallelSeconds is the simulated wall time of the same work (the
	// makespan of the window schedule). TranslationSeconds covers the
	// step-2 calls; IndexSeconds is RAG embedding/indexing overhead.
	MiningSeconds      float64
	ParallelSeconds    float64
	TranslationSeconds float64
	IndexSeconds       float64
	// WallClock measures the real runtime of the whole pipeline run.
	WallClock time.Duration

	Windows        int // LLM calls in step 1
	BrokenPatterns int // §4.5 boundary-break count (sliding window only)

	// CypherCorrect / CypherTotal reproduce Table 6's cells.
	CypherCorrect int
	CypherTotal   int
	// ErrorCounts censuses the §4.4 categories.
	ErrorCounts map[correction.Category]int
}

// embedTokensPerSecond is the cost-model throughput of the stand-in
// embedding model used for RAG indexing.
const embedTokensPerSecond = 20000

// Mine runs the full pipeline on a graph.
func Mine(g *graph.Graph, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{
		Dataset:     g.Name(),
		Model:       cfg.Model.Name(),
		Method:      cfg.Method,
		Mode:        cfg.Mode,
		Encoder:     cfg.Encoder.Name(),
		ErrorCounts: map[correction.Category]int{},
	}

	enc := cfg.Encoder.Encode(g)

	// ---- Step 1: rule generation ----
	type seenRule struct {
		rule    rules.Rule
		windows []int
		borda   float64
	}
	var order []string
	seen := map[string]*seenRule{}
	excluded := map[string]bool{}
	for _, nl := range cfg.ExcludeRules {
		if r, ok := rules.ParseNL(nl); ok {
			excluded[r.DedupKey()] = true
		}
	}
	record := func(nl string, window, rank int) {
		r, ok := rules.ParseNL(nl)
		if !ok {
			return // the model emitted something outside the rule grammar
		}
		key := r.DedupKey()
		if excluded[key] {
			return // defensive: a model may ignore the exclusion instruction
		}
		sr := seen[key]
		if sr == nil {
			sr = &seenRule{rule: r}
			seen[key] = sr
			order = append(order, key)
		}
		sr.windows = append(sr.windows, window)
		sr.borda += 1 / float64(1+rank)
	}

	switch cfg.Method {
	case SlidingWindow:
		windows, err := textenc.SlidingWindows(enc, cfg.WindowTokens, cfg.OverlapTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		res.Windows = len(windows)
		broken, err := textenc.BrokenBlocks(enc, cfg.WindowTokens, cfg.OverlapTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		res.BrokenPatterns = len(broken)
		responses, err := completeWindows(cfg, windows)
		if err != nil {
			return nil, err
		}
		workers := make([]float64, cfg.Parallel)
		for i, resp := range responses {
			res.MiningSeconds += resp.SimSeconds
			// Greedy makespan: each worker takes the next window as it
			// frees up, which is how a real worker pool schedules.
			minW := 0
			for w := range workers {
				if workers[w] < workers[minW] {
					minW = w
				}
			}
			workers[minW] += resp.SimSeconds
			for rank, nl := range llm.ParseRuleLines(resp.Text) {
				record(nl, windows[i].Index, rank)
			}
		}
		for _, w := range workers {
			if w > res.ParallelSeconds {
				res.ParallelSeconds = w
			}
		}
	case RAG:
		chunks, err := textenc.Chunks(enc, cfg.RAGChunkTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		embedder, err := embedding.NewHashing(cfg.EmbedDim)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		store, err := vectorstore.New(cfg.EmbedDim)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		for _, ch := range chunks {
			if _, err := store.Add(ch.Text, embedder.Embed(ch.Text), nil); err != nil {
				return nil, fmt.Errorf("mining: %w", err)
			}
			res.IndexSeconds += float64(ch.TokenCount()) / embedTokensPerSecond
		}
		// Phase 1 of the RAG prompting (§3.1.2): the rule request itself is
		// the retrieval query.
		query := prompt.RuleGeneration(cfg.Mode, "")
		hits, err := store.Search(embedder.Embed(query), cfg.RAGTopK, nil)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		var retrieved string
		for _, h := range hits {
			retrieved += h.Doc.Text + "\n"
		}
		res.Windows = 1
		p := prompt.RuleGenerationWithExclusions(cfg.Mode, retrieved, cfg.ExcludeRules)
		resp, err := cfg.Model.Complete(p)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		res.MiningSeconds += resp.SimSeconds
		for rank, nl := range llm.ParseRuleLines(resp.Text) {
			record(nl, 0, rank)
		}
	default:
		return nil, fmt.Errorf("mining: unknown method %d", cfg.Method)
	}

	// ---- Merge: combine per-window rules into one set (§3.1.1) ----
	// Each call's answer is rank-ordered by the model's own preference, so
	// the merge scores every rule Borda-style: a rule gains 1/(1+rank) per
	// window that proposed it. Rules the model puts first in a few windows
	// compete with rules it mentions late everywhere; the merged set is
	// capped at the model's rule budget.
	sort.SliceStable(order, func(i, j int) bool {
		return seen[order[i]].borda > seen[order[j]].borda
	})
	budget := 12
	if b, ok := cfg.Model.(RuleBudgeter); ok {
		budget = b.RuleBudget(cfg.Mode == prompt.FewShot)
	}
	if len(order) > budget {
		order = order[:budget]
	}

	// ---- Step 2: Cypher translation, correction and scoring ----
	schema := graph.ExtractSchema(g)
	schemaText := schema.Describe()
	var mined []MinedRule
	var finals []rules.QuerySet
	for _, key := range order {
		sr := seen[key]
		mr := MinedRule{NL: sr.rule.NL(), Rule: sr.rule, Windows: sr.windows}

		p := prompt.CypherTranslation(mr.NL, schemaText)
		resp, err := cfg.Model.Complete(p)
		if err != nil {
			return nil, fmt.Errorf("mining: translation: %w", err)
		}
		res.TranslationSeconds += resp.SimSeconds
		qs, ok := llm.ParseQuerySet(resp.Text)
		if !ok {
			// The model declined; skip the rule entirely (it never reaches
			// the tables, matching the paper's dropped rules).
			continue
		}
		mr.Generated = qs
		mr.Category = correction.Classify(qs, schema)
		res.CypherTotal++
		if mr.Category == correction.Correct {
			res.CypherCorrect++
		}
		res.ErrorCounts[mr.Category]++
		mr.Final, mr.Corrected = correction.Fix(qs, sr.rule, mr.Category)
		mined = append(mined, mr)
		finals = append(finals, mr.Final)
	}

	// Score all corrected query sets through one shared executor (and plan
	// cache), cfg.ScoreWorkers at a time; output order is the rule order.
	counts, evalErrs := metrics.EvaluateQuerySets(g, finals,
		metrics.EvalOptions{Workers: cfg.ScoreWorkers, ShardWorkers: cfg.ShardWorkers})
	var scores []metrics.Score
	for i := range mined {
		mr := mined[i]
		if evalErrs[i] != nil {
			mr.EvalErr = evalErrs[i]
		} else {
			mr.Score = metrics.Score{
				Rule:       mr.Rule,
				Counts:     counts[i],
				Coverage:   counts[i].Coverage(),
				Confidence: counts[i].Confidence(),
			}
			scores = append(scores, mr.Score)
		}
		res.Rules = append(res.Rules, mr)
	}
	res.Aggregate = metrics.Aggregated(scores)
	res.WallClock = time.Since(start)
	return res, nil
}

// completeWindows runs the step-1 completions, cfg.Parallel at a time,
// returning responses in window order.
func completeWindows(cfg Config, windows []textenc.Window) ([]llm.Response, error) {
	responses := make([]llm.Response, len(windows))
	if cfg.Parallel <= 1 {
		for i, w := range windows {
			resp, err := cfg.Model.Complete(prompt.RuleGenerationWithExclusions(cfg.Mode, w.Text, cfg.ExcludeRules))
			if err != nil {
				return nil, fmt.Errorf("mining: window %d: %w", w.Index, err)
			}
			responses[i] = resp
		}
		return responses, nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for n := 0; n < cfg.Parallel; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(windows) || len(errs) > 0 {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				resp, err := cfg.Model.Complete(prompt.RuleGenerationWithExclusions(cfg.Mode, windows[i].Text, cfg.ExcludeRules))
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("mining: window %d: %w", windows[i].Index, err))
					mu.Unlock()
					return
				}
				responses[i] = resp
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return responses, nil
}

// TotalSimSeconds returns the full simulated pipeline latency.
func (r *Result) TotalSimSeconds() float64 {
	return r.MiningSeconds + r.TranslationSeconds + r.IndexSeconds
}
