// Package mining implements the paper's end-to-end pipeline (Figures 1-2):
// encode the property graph as text, feed it to an LLM through sliding
// windows or RAG retrieval, parse the generated natural-language rules,
// translate each rule to Cypher with a second prompt, classify and correct
// the generated queries (§4.4), and score every rule with
// support/coverage/confidence (§4.2).
package mining

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/graphrules/graphrules/internal/correction"
	"github.com/graphrules/graphrules/internal/cypher"
	"github.com/graphrules/graphrules/internal/embedding"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/lint"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/metrics"
	"github.com/graphrules/graphrules/internal/prompt"
	"github.com/graphrules/graphrules/internal/resilience"
	"github.com/graphrules/graphrules/internal/rules"
	"github.com/graphrules/graphrules/internal/textenc"
	"github.com/graphrules/graphrules/internal/vectorstore"
)

// RuleBudgeter is optionally implemented by models that bound how many
// merged rules one mining run should keep.
type RuleBudgeter interface {
	RuleBudget(fewShot bool) int
}

// ruleBudget resolves the rule budget for a model, walking any middleware
// chain (resilience stacks, fault injectors) down to the model that
// actually implements RuleBudgeter.
func ruleBudget(m llm.Model, fewShot bool) int {
	for m != nil {
		if b, ok := m.(RuleBudgeter); ok {
			return b.RuleBudget(fewShot)
		}
		w, ok := m.(llm.ModelWrapper)
		if !ok {
			break
		}
		m = w.Unwrap()
	}
	return 12
}

// FailurePolicy selects how Mine treats window-level completion failures.
type FailurePolicy uint8

const (
	// FailFast aborts the run when any window's completion fails, after
	// attempting every window so the error reports them all.
	FailFast FailurePolicy = iota
	// BestEffort drops failed windows (recording them in
	// Result.WindowErrors) and mines from the survivors, as long as the
	// Config.MinWindowSuccess floor is met.
	BestEffort
)

// Method selects how the encoded graph reaches the model (§3.1).
type Method uint8

const (
	// SlidingWindow prompts the model once per overlapping window.
	SlidingWindow Method = iota
	// RAG embeds chunks into a vector store and prompts once with the
	// retrieved top-k chunks.
	RAG
)

// String returns the method name as used in the paper's tables.
func (m Method) String() string {
	if m == RAG {
		return "RAG"
	}
	return "Sliding Window Attention"
}

// Methods lists both methods in paper order.
var Methods = []Method{SlidingWindow, RAG}

// Config parameterizes one mining run.
type Config struct {
	Model llm.Model
	// Method defaults to SlidingWindow.
	Method Method
	// Mode defaults to zero-shot.
	Mode prompt.Mode
	// Encoder defaults to the incident encoder (the paper's choice).
	Encoder textenc.Encoder
	// WindowTokens/OverlapTokens default to the paper's 8000/500. Pass a
	// negative OverlapTokens to disable overlap entirely (0 selects the
	// default).
	WindowTokens  int
	OverlapTokens int
	// RAGChunkTokens defaults to 400, RAGTopK to 8.
	RAGChunkTokens int
	RAGTopK        int
	// EmbedDim defaults to embedding.DefaultDim.
	EmbedDim int
	// ExcludeRules lists natural-language rule statements a domain expert
	// rejected; they are passed to the model as prompt exclusions and
	// filtered from the merged output (interactive refinement, §5).
	ExcludeRules []string
	// Parallel sets how many sliding-window prompts run concurrently
	// (default 1). The paper's §4.3 names parallel prompting as the main
	// lever for efficient LLM rule mining; with N > 1 the Model must be
	// safe for concurrent use (SimModel is). Results are merged in window
	// order, so parallelism never changes the mined rules.
	Parallel int
	// ScoreWorkers sets the worker-pool size for the step-2 metric
	// scoring of the corrected query sets (default: Parallel). Unlike
	// Parallel it has no effect on the simulated LLM timings or the mined
	// rule set: scoring is deterministic at any worker count. Negative
	// values select GOMAXPROCS.
	ScoreWorkers int
	// ShardWorkers sets per-query sharded MATCH execution during scoring:
	// eligible anchor scans are partitioned across this many workers inside
	// the executor (default 0 = serial). Like ScoreWorkers it never changes
	// counts or rule order, only wall time. Negative values are rejected.
	ShardWorkers int
	// MorselSize sets the anchor-candidate morsel size for sharded scans
	// during scoring (default 0 = the executor's built-in size). A pure
	// scheduling knob: results are identical at any value. Negative values
	// are rejected.
	MorselSize int
	// ExecOptions are cypher executor options applied to the scoring
	// executor after ShardWorkers and MorselSize (pushdown toggles,
	// plan-cache cap, ...). None of them change counts or rule order.
	ExecOptions []cypher.Option
	// MaxRows / MemoryBudget / QueryDeadline set per-query resource
	// budgets on the scoring executor (cypher.WithMaxRows etc.): a rule
	// whose query blows a budget records a typed *cypher.
	// ResourceExhaustedError as its EvalErr instead of stalling the whole
	// mining run. Zero disables each. A query finishing under budget
	// scores identically to ungoverned, so budgets never change the
	// counts of rules they don't kill.
	MaxRows       int
	MemoryBudget  int64
	QueryDeadline time.Duration
	// Admission gates scoring queries through an admission controller
	// (internal/governor); nil runs ungated.
	Admission cypher.Admission
	// FailurePolicy defaults to FailFast.
	FailurePolicy FailurePolicy
	// MinWindowSuccess is the minimum fraction of sliding windows that
	// must complete for a BestEffort run to proceed; 0 requires at least
	// one window. Values outside [0, 1] are rejected.
	MinWindowSuccess float64
	// Resilience configures the middleware stack Mine wraps around Model
	// (retries, per-call timeout, circuit breaker, rate limit); the zero
	// value installs nothing and calls Model directly.
	Resilience resilience.Config
}

func (c Config) withDefaults() (Config, error) {
	if c.Model == nil {
		return c, fmt.Errorf("mining: Config.Model is required")
	}
	if c.Encoder == nil {
		c.Encoder = textenc.IncidentEncoder{}
	}
	if c.WindowTokens == 0 {
		c.WindowTokens = textenc.DefaultWindowTokens
	}
	switch {
	case c.OverlapTokens == 0:
		c.OverlapTokens = textenc.DefaultOverlapTokens
	case c.OverlapTokens < 0:
		c.OverlapTokens = 0
	}
	if c.RAGChunkTokens == 0 {
		c.RAGChunkTokens = 400
	}
	if c.RAGTopK == 0 {
		c.RAGTopK = 8
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = embedding.DefaultDim
	}
	if c.Parallel == 0 {
		c.Parallel = 1
	}
	if c.Parallel < 0 {
		return c, fmt.Errorf("mining: Parallel must be positive, got %d", c.Parallel)
	}
	if c.ScoreWorkers == 0 {
		c.ScoreWorkers = c.Parallel
	}
	if c.ShardWorkers < 0 {
		return c, fmt.Errorf("mining: ShardWorkers must be non-negative, got %d", c.ShardWorkers)
	}
	if c.MorselSize < 0 {
		return c, fmt.Errorf("mining: MorselSize must be non-negative, got %d", c.MorselSize)
	}
	if c.MaxRows < 0 || c.MemoryBudget < 0 || c.QueryDeadline < 0 {
		return c, fmt.Errorf("mining: resource budgets must be non-negative")
	}
	if c.MinWindowSuccess < 0 || c.MinWindowSuccess > 1 {
		return c, fmt.Errorf("mining: MinWindowSuccess must be in [0, 1], got %g", c.MinWindowSuccess)
	}
	return c, nil
}

// MinedRule is one rule's full journey through the pipeline.
type MinedRule struct {
	NL        string
	Rule      rules.Rule
	Generated rules.QuerySet      // raw model output (step 2)
	Final     rules.QuerySet      // after the correction protocol
	Category  correction.Category // §4.4 classification of Generated
	// Lint holds the full diagnostics the schema-aware linter produced for
	// the generated query set (support, body and head queries concatenated);
	// Category is derived from the error-category subset of these.
	Lint      []lint.Diagnostic
	Corrected bool
	Score     metrics.Score
	// Windows lists the sliding-window indexes that proposed the rule.
	Windows []int
	// EvalErr records a rule whose final queries still failed to execute
	// (possible for hallucinated queries that are also unexecutable).
	EvalErr error
	// TranslateErr records a rule whose step-2 translation call failed
	// after all resilience retries; under BestEffort the rule stays in
	// the result unscored instead of aborting the run.
	TranslateErr error
}

// WindowError records one sliding window whose completion ultimately
// failed after the resilience stack gave up.
type WindowError struct {
	// Window is the sliding-window index the failure belongs to.
	Window int
	// Attempts is how many completion attempts were made for the window.
	Attempts int
	Err      error
}

// Result is the outcome of one mining run.
type Result struct {
	Dataset string
	Model   string
	Method  Method
	Mode    prompt.Mode
	Encoder string

	Rules []MinedRule

	// Aggregate covers the rules that evaluated successfully.
	Aggregate metrics.Aggregate

	// MiningSeconds is the total simulated LLM compute for rule generation
	// (the quantity Table 5 reports); with Parallel > 1 workers,
	// ParallelSeconds is the simulated wall time of the same work (the
	// makespan of the window schedule). TranslationSeconds covers the
	// step-2 calls; IndexSeconds is RAG embedding/indexing overhead.
	MiningSeconds      float64
	ParallelSeconds    float64
	TranslationSeconds float64
	IndexSeconds       float64
	// WallClock measures the real runtime of the whole pipeline run.
	WallClock time.Duration

	Windows        int // LLM calls in step 1
	BrokenPatterns int // §4.5 boundary-break count (sliding window only)

	// WindowErrors lists the step-1 windows that failed after all
	// retries; empty on a clean run. Under BestEffort the run continued
	// without them.
	WindowErrors []WindowError
	// Resilience snapshots the middleware stack's counters (retry totals,
	// breaker transitions, ...) when Config.Resilience installed one.
	Resilience *resilience.StackStats

	// CypherCorrect / CypherTotal reproduce Table 6's cells.
	CypherCorrect int
	CypherTotal   int
	// ErrorCounts censuses the §4.4 categories.
	ErrorCounts map[correction.Category]int
	// LintCounts censuses lint findings across all generated query sets,
	// keyed by analyzer name — a finer-grained view than ErrorCounts that
	// also covers findings outside the paper's three error classes.
	LintCounts map[string]int
}

// embedTokensPerSecond is the cost-model throughput of the stand-in
// embedding model used for RAG indexing.
const embedTokensPerSecond = 20000

// Mine runs the full pipeline on a graph.
func Mine(g *graph.Graph, cfg Config) (*Result, error) {
	return MineCtx(context.Background(), g, cfg)
}

// MineCtx is Mine with cancellation: a done context aborts in-flight
// completions and metric queries and the call returns ctx.Err() promptly,
// regardless of the failure policy.
func MineCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	model := cfg.Model
	var stack *resilience.Stack
	if cfg.Resilience.Enabled() {
		stack = resilience.NewStack(model, cfg.Resilience)
		model = stack
	}
	start := time.Now()
	res := &Result{
		Dataset:     g.Name(),
		Model:       cfg.Model.Name(),
		Method:      cfg.Method,
		Mode:        cfg.Mode,
		Encoder:     cfg.Encoder.Name(),
		ErrorCounts: map[correction.Category]int{},
		LintCounts:  map[string]int{},
	}

	enc := cfg.Encoder.Encode(g)

	// ---- Step 1: rule generation ----
	type seenRule struct {
		rule    rules.Rule
		windows []int
		borda   float64
	}
	var order []string
	seen := map[string]*seenRule{}
	excluded := map[string]bool{}
	for _, nl := range cfg.ExcludeRules {
		if r, ok := rules.ParseNL(nl); ok {
			excluded[r.DedupKey()] = true
		}
	}
	record := func(nl string, window, rank int) {
		r, ok := rules.ParseNL(nl)
		if !ok {
			return // the model emitted something outside the rule grammar
		}
		key := r.DedupKey()
		if excluded[key] {
			return // defensive: a model may ignore the exclusion instruction
		}
		sr := seen[key]
		if sr == nil {
			sr = &seenRule{rule: r}
			seen[key] = sr
			order = append(order, key)
		}
		sr.windows = append(sr.windows, window)
		sr.borda += 1 / float64(1+rank)
	}

	switch cfg.Method {
	case SlidingWindow:
		windows, err := textenc.SlidingWindows(enc, cfg.WindowTokens, cfg.OverlapTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		res.Windows = len(windows)
		broken, err := textenc.BrokenBlocks(enc, cfg.WindowTokens, cfg.OverlapTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		res.BrokenPatterns = len(broken)
		outcomes, err := completeWindows(ctx, cfg, model, windows)
		if err != nil {
			return nil, err
		}
		var failed []error
		workers := make([]float64, cfg.Parallel)
		for i, o := range outcomes {
			if o.err != nil {
				we := WindowError{
					Window:   windows[i].Index,
					Attempts: resilience.Attempts(o.err),
					Err:      o.err,
				}
				res.WindowErrors = append(res.WindowErrors, we)
				failed = append(failed, fmt.Errorf("window %d (%d attempt(s)): %w", we.Window, we.Attempts, o.err))
				continue
			}
			res.MiningSeconds += o.resp.SimSeconds
			// Greedy makespan: each worker takes the next window as it
			// frees up, which is how a real worker pool schedules.
			minW := 0
			for w := range workers {
				if workers[w] < workers[minW] {
					minW = w
				}
			}
			workers[minW] += o.resp.SimSeconds
			for rank, nl := range llm.ParseRuleLines(o.resp.Text) {
				record(nl, windows[i].Index, rank)
			}
		}
		for _, w := range workers {
			if w > res.ParallelSeconds {
				res.ParallelSeconds = w
			}
		}
		if len(failed) > 0 {
			if cfg.FailurePolicy == FailFast {
				return nil, fmt.Errorf("mining: %d of %d windows failed: %w",
					len(failed), len(windows), errors.Join(failed...))
			}
			need := 1
			if cfg.MinWindowSuccess > 0 {
				need = int(math.Ceil(cfg.MinWindowSuccess * float64(len(windows))))
			}
			if ok := len(windows) - len(failed); ok < need {
				return nil, fmt.Errorf("mining: best effort abandoned: only %d of %d windows succeeded, need %d: %w",
					ok, len(windows), need, errors.Join(failed...))
			}
		}
	case RAG:
		chunks, err := textenc.Chunks(enc, cfg.RAGChunkTokens)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		embedder, err := embedding.NewHashing(cfg.EmbedDim)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		store, err := vectorstore.New(cfg.EmbedDim)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		for _, ch := range chunks {
			if _, err := store.Add(ch.Text, embedder.Embed(ch.Text), nil); err != nil {
				return nil, fmt.Errorf("mining: %w", err)
			}
			res.IndexSeconds += float64(ch.TokenCount()) / embedTokensPerSecond
		}
		// Phase 1 of the RAG prompting (§3.1.2): the rule request itself is
		// the retrieval query.
		query := prompt.RuleGeneration(cfg.Mode, "")
		hits, err := store.Search(embedder.Embed(query), cfg.RAGTopK, nil)
		if err != nil {
			return nil, fmt.Errorf("mining: %w", err)
		}
		var retrieved string
		for _, h := range hits {
			retrieved += h.Doc.Text + "\n"
		}
		res.Windows = 1
		p := prompt.RuleGenerationWithExclusions(cfg.Mode, retrieved, cfg.ExcludeRules)
		resp, err := llm.CompleteCtx(ctx, model, p)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			// RAG has exactly one completion; losing it fails the success
			// floor under every policy.
			return nil, fmt.Errorf("mining: RAG completion failed after %d attempt(s): %w",
				resilience.Attempts(err), err)
		}
		res.MiningSeconds += resp.SimSeconds
		for rank, nl := range llm.ParseRuleLines(resp.Text) {
			record(nl, 0, rank)
		}
	default:
		return nil, fmt.Errorf("mining: unknown method %d", cfg.Method)
	}

	// ---- Merge: combine per-window rules into one set (§3.1.1) ----
	// Each call's answer is rank-ordered by the model's own preference, so
	// the merge scores every rule Borda-style: a rule gains 1/(1+rank) per
	// window that proposed it. Rules the model puts first in a few windows
	// compete with rules it mentions late everywhere; the merged set is
	// capped at the model's rule budget.
	sort.SliceStable(order, func(i, j int) bool {
		return seen[order[i]].borda > seen[order[j]].borda
	})
	budget := ruleBudget(cfg.Model, cfg.Mode == prompt.FewShot)
	if len(order) > budget {
		order = order[:budget]
	}

	// ---- Step 2: Cypher translation, correction and scoring ----
	schema := graph.ExtractSchema(g)
	schemaText := schema.Describe()
	var mined []MinedRule
	var finals []rules.QuerySet
	var scoreIdx []int // finals[i] scores mined[scoreIdx[i]]
	for _, key := range order {
		sr := seen[key]
		mr := MinedRule{NL: sr.rule.NL(), Rule: sr.rule, Windows: sr.windows}

		p := prompt.CypherTranslation(mr.NL, schemaText)
		resp, err := llm.CompleteCtx(ctx, model, p)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if cfg.FailurePolicy == FailFast {
				return nil, fmt.Errorf("mining: translation of %q failed after %d attempt(s): %w",
					mr.NL, resilience.Attempts(err), err)
			}
			// BestEffort keeps the rule, unscored, with the failure on
			// record: the NL rule was mined even if its Cypher was lost.
			mr.TranslateErr = err
			mined = append(mined, mr)
			continue
		}
		res.TranslationSeconds += resp.SimSeconds
		qs, ok := llm.ParseQuerySet(resp.Text)
		if !ok {
			// The model declined; skip the rule entirely (it never reaches
			// the tables, matching the paper's dropped rules).
			continue
		}
		mr.Generated = qs
		rep := correction.Analyze(qs, schema)
		mr.Category = rep.Category
		mr.Lint = rep.All()
		res.CypherTotal++
		if mr.Category == correction.Correct {
			res.CypherCorrect++
		}
		res.ErrorCounts[mr.Category]++
		for _, d := range mr.Lint {
			res.LintCounts[d.Analyzer]++
		}
		mr.Final, mr.Corrected = correction.Fix(qs, sr.rule, mr.Category)
		mined = append(mined, mr)
		finals = append(finals, mr.Final)
		scoreIdx = append(scoreIdx, len(mined)-1)
	}

	// Cross-query lint: duplicate rules that slipped past the NL-level
	// dedup (same query patterns up to variable renaming), support queries
	// that don't contain their body pattern, and head/body variable-naming
	// drift; findings are censused with the per-query ones by analyzer.
	entries := make([]lint.RuleSetEntry, len(mined))
	for i := range mined {
		entries[i] = lint.RuleSetEntry{
			Name:    mined[i].NL,
			Support: mined[i].Final.Support,
			Body:    mined[i].Final.Body,
			Head:    mined[i].Final.HeadTotal,
		}
	}
	for _, f := range lint.RuleSetLint(entries) {
		mined[f.Index].Lint = append(mined[f.Index].Lint, f.Diag)
		res.LintCounts[f.Diag.Analyzer]++
	}

	// Score all corrected query sets through one shared executor (and plan
	// cache), cfg.ScoreWorkers at a time; output order is the rule order.
	counts, evalErrs := metrics.EvaluateQuerySetsCtx(ctx, g, finals,
		metrics.EvalOptions{Workers: cfg.ScoreWorkers, ShardWorkers: cfg.ShardWorkers,
			MorselSize: cfg.MorselSize, ExecOptions: cfg.ExecOptions,
			MaxRows: cfg.MaxRows, MemoryBudget: cfg.MemoryBudget,
			QueryDeadline: cfg.QueryDeadline, Admission: cfg.Admission})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var scores []metrics.Score
	for fi, mi := range scoreIdx {
		mr := &mined[mi]
		if evalErrs[fi] != nil {
			mr.EvalErr = evalErrs[fi]
			continue
		}
		mr.Score = metrics.Score{
			Rule:       mr.Rule,
			Counts:     counts[fi],
			Coverage:   counts[fi].Coverage(),
			Confidence: counts[fi].Confidence(),
		}
		scores = append(scores, mr.Score)
	}
	res.Rules = mined
	res.Aggregate = metrics.Aggregated(scores)
	if stack != nil {
		st := stack.Stats()
		res.Resilience = &st
	}
	res.WallClock = time.Since(start)
	return res, nil
}

// windowOutcome is one window's completion result; exactly one of resp /
// err is meaningful.
type windowOutcome struct {
	resp llm.Response
	err  error
}

// completeWindows runs the step-1 completions, cfg.Parallel at a time,
// returning per-window outcomes in window order. Every window is attempted
// even when earlier ones fail — the caller's failure policy decides what
// the failures mean, and a FailFast abort can then report all of them
// instead of an arbitrary first. Only context cancellation stops the
// schedule early, and it is the only error this function itself returns.
func completeWindows(ctx context.Context, cfg Config, model llm.Model, windows []textenc.Window) ([]windowOutcome, error) {
	outcomes := make([]windowOutcome, len(windows))
	complete := func(i int) {
		p := prompt.RuleGenerationWithExclusions(cfg.Mode, windows[i].Text, cfg.ExcludeRules)
		outcomes[i].resp, outcomes[i].err = llm.CompleteCtx(ctx, model, p)
	}
	if cfg.Parallel <= 1 {
		for i := range windows {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			complete(i)
		}
	} else {
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next int
		)
		for n := 0; n < cfg.Parallel; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					mu.Lock()
					if next >= len(windows) {
						mu.Unlock()
						return
					}
					i := next
					next++
					mu.Unlock()
					complete(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outcomes, nil
}

// TotalSimSeconds returns the full simulated pipeline latency.
func (r *Result) TotalSimSeconds() float64 {
	return r.MiningSeconds + r.TranslationSeconds + r.IndexSeconds
}
