package mining

import (
	"testing"

	"github.com/graphrules/graphrules/internal/llm"
)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(wwc(t), Config{Model: llm.NewSim(llm.LLaMA3(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestSession(t)
	if s.Rounds() != 1 {
		t.Fatalf("rounds = %d", s.Rounds())
	}
	pending := s.Pending()
	if len(pending) == 0 {
		t.Fatal("no pending rules")
	}

	// Accept one, reject one.
	if err := s.Accept(pending[0].Rule.DedupKey()); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject(pending[1].NL); err != nil { // by NL reference
		t.Fatal(err)
	}
	if len(s.Accepted()) != 1 {
		t.Errorf("accepted = %d", len(s.Accepted()))
	}
	if len(s.Pending()) != len(pending)-2 {
		t.Errorf("pending = %d, want %d", len(s.Pending()), len(pending)-2)
	}

	rejectedKey := pending[1].Rule.DedupKey()
	acceptedKey := pending[0].Rule.DedupKey()

	res, err := s.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != 2 {
		t.Error("refine should advance rounds")
	}
	for _, mr := range res.Rules {
		if mr.Rule.DedupKey() == rejectedKey {
			t.Errorf("rejected rule %q resurfaced after refine", rejectedKey)
		}
	}

	// Export puts accepted first.
	exported := s.Export()
	if len(exported) == 0 || exported[0].DedupKey() != acceptedKey {
		t.Error("export should lead with accepted rules")
	}
	for _, r := range exported {
		if r.DedupKey() == rejectedKey {
			t.Error("export must not contain rejected rules")
		}
	}
}

func TestSessionRefineSurfacesNewRules(t *testing.T) {
	s := newTestSession(t)
	before := map[string]bool{}
	for _, mr := range s.Pending() {
		before[mr.Rule.DedupKey()] = true
	}
	// Reject everything; refinement must bring in rules we have not seen.
	for _, mr := range s.Pending() {
		if err := s.Reject(mr.Rule.DedupKey()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Refine(); err != nil {
		t.Fatal(err)
	}
	fresh := 0
	for _, mr := range s.Pending() {
		if !before[mr.Rule.DedupKey()] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("refine after rejecting all rules should surface new candidates")
	}
}

func TestSessionErrors(t *testing.T) {
	s := newTestSession(t)
	if err := s.Accept("no-such-rule"); err == nil {
		t.Error("accepting unknown rule should fail")
	}
	if err := s.Reject("no-such-rule"); err == nil {
		t.Error("rejecting unknown rule should fail")
	}
	key := s.Pending()[0].Rule.DedupKey()
	if err := s.Accept(key); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject(key); err == nil {
		t.Error("rejecting an accepted rule should fail")
	}
}

func TestParallelMiningEquivalent(t *testing.T) {
	g := wwc(t)
	serial, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rules) != len(par.Rules) {
		t.Fatalf("parallelism changed results: %d vs %d rules", len(serial.Rules), len(par.Rules))
	}
	for i := range serial.Rules {
		if serial.Rules[i].NL != par.Rules[i].NL {
			t.Errorf("rule %d differs under parallelism", i)
		}
	}
	if serial.MiningSeconds != par.MiningSeconds {
		t.Error("total simulated compute should not change")
	}
	if par.ParallelSeconds >= serial.MiningSeconds {
		t.Errorf("4-way parallel makespan %.1f should beat serial %.1f",
			par.ParallelSeconds, serial.MiningSeconds)
	}
	if par.ParallelSeconds*5 < serial.MiningSeconds {
		t.Errorf("4 workers cannot speed up more than 4x: %.1f vs %.1f",
			par.ParallelSeconds, serial.MiningSeconds)
	}
	if _, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), Parallel: -1}); err == nil {
		t.Error("negative parallelism should fail")
	}
}
