package mining

import (
	"context"
	"fmt"
	"sort"

	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/rules"
)

// Session implements the paper's interactive rule-mining future work (§5):
// a domain expert reviews mined rules, accepts or rejects them, and
// re-mines; rejected rules are fed back to the model as prompt exclusions
// so the next round surfaces fresh candidates, while accepted rules are
// pinned across rounds.
type Session struct {
	g   *graph.Graph
	cfg Config

	accepted map[string]MinedRule
	rejected map[string]string // dedup key -> NL
	current  *Result
	rounds   int
}

// NewSession mines an initial rule set and opens a review session. It is a
// wrapper over NewSessionCtx with a background context.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	return NewSessionCtx(context.Background(), g, cfg)
}

// NewSessionCtx is NewSession with cancellation: a done context aborts the
// initial mining round's LLM calls and metric queries promptly.
func NewSessionCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Session, error) {
	s := &Session{
		g:        g,
		cfg:      cfg,
		accepted: map[string]MinedRule{},
		rejected: map[string]string{},
	}
	if err := s.mine(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Session) mine(ctx context.Context) error {
	cfg := s.cfg
	cfg.ExcludeRules = s.exclusions()
	res, err := MineCtx(ctx, s.g, cfg)
	if err != nil {
		return err
	}
	s.current = res
	s.rounds++
	return nil
}

func (s *Session) exclusions() []string {
	keys := make([]string, 0, len(s.rejected))
	for k := range s.rejected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = s.rejected[k]
	}
	return out
}

// Rounds returns how many mining rounds have run.
func (s *Session) Rounds() int { return s.rounds }

// Pending returns the current round's rules that are neither accepted nor
// rejected yet, in mined order.
func (s *Session) Pending() []MinedRule {
	var out []MinedRule
	for _, mr := range s.current.Rules {
		key := mr.Rule.DedupKey()
		if _, ok := s.accepted[key]; ok {
			continue
		}
		if _, ok := s.rejected[key]; ok {
			continue
		}
		out = append(out, mr)
	}
	return out
}

// Accepted returns the expert-approved rules, sorted by dedup key.
func (s *Session) Accepted() []MinedRule {
	keys := make([]string, 0, len(s.accepted))
	for k := range s.accepted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]MinedRule, len(keys))
	for i, k := range keys {
		out[i] = s.accepted[k]
	}
	return out
}

// find locates a rule of the current round by dedup key or exact NL.
func (s *Session) find(ref string) (MinedRule, error) {
	for _, mr := range s.current.Rules {
		if mr.Rule.DedupKey() == ref || mr.NL == ref {
			return mr, nil
		}
	}
	return MinedRule{}, fmt.Errorf("mining: session: no rule %q in the current round", ref)
}

// Accept pins a rule across rounds. ref is the rule's dedup key or its
// exact natural-language statement.
func (s *Session) Accept(ref string) error {
	mr, err := s.find(ref)
	if err != nil {
		return err
	}
	key := mr.Rule.DedupKey()
	delete(s.rejected, key)
	s.accepted[key] = mr
	return nil
}

// Reject marks a rule as unwanted; the next Refine round excludes it.
func (s *Session) Reject(ref string) error {
	mr, err := s.find(ref)
	if err != nil {
		return err
	}
	key := mr.Rule.DedupKey()
	if _, ok := s.accepted[key]; ok {
		return fmt.Errorf("mining: session: rule %q is already accepted; un-accept is not supported", ref)
	}
	s.rejected[key] = mr.NL
	return nil
}

// Refine re-mines with all rejections excluded; it is a wrapper over
// RefineCtx with a background context.
func (s *Session) Refine() (*Result, error) {
	return s.RefineCtx(context.Background())
}

// RefineCtx re-mines with all rejections excluded, honoring cancellation.
// Newly surfaced rules join Pending; accepted rules stay pinned.
//
// RefineCtx is atomic with respect to the session: if the underlying mine
// fails (model outage, cancellation, policy floor not met), the error is
// returned and the session is untouched — Rounds(), the accepted and
// rejected sets, and the current round's rules all keep their pre-call
// values, so a failed refinement can simply be retried.
func (s *Session) RefineCtx(ctx context.Context) (*Result, error) {
	if err := s.mine(ctx); err != nil {
		return nil, err
	}
	return s.current, nil
}

// Export returns the session's final rule set: accepted rules first, then
// the still-pending rules of the last round.
func (s *Session) Export() []rules.Rule {
	var out []rules.Rule
	for _, mr := range s.Accepted() {
		out = append(out, mr.Rule)
	}
	for _, mr := range s.Pending() {
		out = append(out, mr.Rule)
	}
	return out
}
