package mining

import (
	"encoding/json"
	"io"

	"github.com/graphrules/graphrules/internal/rules"
)

// jsonReport is the serializable shape of a mining run, for downstream
// tooling (dashboards, CI gates on rule confidence, diffing runs).
type jsonReport struct {
	Dataset string `json:"dataset"`
	Model   string `json:"model"`
	Method  string `json:"method"`
	Mode    string `json:"mode"`
	Encoder string `json:"encoder"`

	Rules []jsonRule `json:"rules"`

	Aggregate struct {
		Rules          int     `json:"rules"`
		MeanSupport    float64 `json:"meanSupport"`
		MeanCoverage   float64 `json:"meanCoveragePct"`
		MeanConfidence float64 `json:"meanConfidencePct"`
	} `json:"aggregate"`

	MiningSeconds      float64 `json:"miningSeconds"`
	ParallelSeconds    float64 `json:"parallelSeconds,omitempty"`
	TranslationSeconds float64 `json:"translationSeconds"`
	IndexSeconds       float64 `json:"indexSeconds,omitempty"`
	WallClockMillis    int64   `json:"wallClockMillis"`

	Windows        int `json:"llmCalls"`
	BrokenPatterns int `json:"brokenPatterns"`
	CypherCorrect  int `json:"cypherCorrect"`
	CypherTotal    int `json:"cypherTotal"`

	ErrorCounts map[string]int `json:"errorCounts"`
	LintCounts  map[string]int `json:"lintCounts,omitempty"`
}

type jsonRule struct {
	NL         string  `json:"nl"`
	Kind       string  `json:"kind"`
	DedupKey   string  `json:"key"`
	Formal     string  `json:"formal"`
	Category   string  `json:"cypherCategory"`
	Corrected  bool    `json:"corrected"`
	Support    int64   `json:"support"`
	Body       int64   `json:"body"`
	HeadTotal  int64   `json:"headTotal"`
	Coverage   float64 `json:"coveragePct"`
	Confidence float64 `json:"confidencePct"`
	Windows    []int   `json:"windows,omitempty"`
	EvalError  string  `json:"evalError,omitempty"`

	Lint []jsonDiagnostic `json:"lint,omitempty"`

	SupportQuery string `json:"supportQuery"`
	Explanation  string `json:"explanation"`
}

// jsonDiagnostic is one lint finding on a generated query.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Message  string `json:"message"`
}

// WriteJSON serializes the result as indented JSON for downstream tooling.
func (r *Result) WriteJSON(w io.Writer) error {
	rep := jsonReport{
		Dataset: r.Dataset,
		Model:   r.Model,
		Method:  r.Method.String(),
		Mode:    r.Mode.String(),
		Encoder: r.Encoder,

		MiningSeconds:      r.MiningSeconds,
		ParallelSeconds:    r.ParallelSeconds,
		TranslationSeconds: r.TranslationSeconds,
		IndexSeconds:       r.IndexSeconds,
		WallClockMillis:    r.WallClock.Milliseconds(),
		Windows:            r.Windows,
		BrokenPatterns:     r.BrokenPatterns,
		CypherCorrect:      r.CypherCorrect,
		CypherTotal:        r.CypherTotal,
		ErrorCounts:        map[string]int{},
	}
	rep.Aggregate.Rules = r.Aggregate.Rules
	rep.Aggregate.MeanSupport = r.Aggregate.MeanSupport
	rep.Aggregate.MeanCoverage = r.Aggregate.MeanCoverage
	rep.Aggregate.MeanConfidence = r.Aggregate.MeanConfidence
	for cat, n := range r.ErrorCounts {
		rep.ErrorCounts[cat.String()] = n
	}
	if len(r.LintCounts) > 0 {
		rep.LintCounts = map[string]int{}
		for name, n := range r.LintCounts {
			rep.LintCounts[name] = n
		}
	}
	for _, mr := range r.Rules {
		jr := jsonRule{
			NL:           mr.NL,
			Kind:         mr.Rule.Kind().String(),
			DedupKey:     mr.Rule.DedupKey(),
			Formal:       mr.Rule.Formal(),
			Category:     mr.Category.String(),
			Corrected:    mr.Corrected,
			Windows:      mr.Windows,
			SupportQuery: mr.Final.Support,
		}
		for _, d := range mr.Lint {
			jr.Lint = append(jr.Lint, jsonDiagnostic{
				Analyzer: d.Analyzer,
				Severity: d.Severity.String(),
				Start:    d.Span.Start,
				End:      d.Span.End,
				Message:  d.Message,
			})
		}
		if mr.EvalErr != nil {
			jr.EvalError = mr.EvalErr.Error()
		} else {
			jr.Support = mr.Score.Counts.Support
			jr.Body = mr.Score.Counts.Body
			jr.HeadTotal = mr.Score.Counts.HeadTotal
			jr.Coverage = mr.Score.Coverage
			jr.Confidence = mr.Score.Confidence
			jr.Explanation = rules.Explain(mr.Rule, mr.Score.Counts)
		}
		rep.Rules = append(rep.Rules, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
