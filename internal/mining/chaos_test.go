package mining

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphrules/graphrules/internal/datasets"
	"github.com/graphrules/graphrules/internal/graph"
	"github.com/graphrules/graphrules/internal/llm"
	"github.com/graphrules/graphrules/internal/resilience"
)

// ruleFingerprint reduces a result to what the paper's tables report:
// each rule's statement with its counts, plus the aggregate row.
func ruleFingerprint(res *Result) string {
	var b strings.Builder
	for _, mr := range res.Rules {
		fmt.Fprintf(&b, "%s %+v corrected=%t\n", mr.NL, mr.Score.Counts, mr.Corrected)
	}
	fmt.Fprintf(&b, "agg %+v\n", res.Aggregate)
	return b.String()
}

// TestChaosConvergesToCleanRun is the headline fault-injection property:
// with >20% of prompts failing transiently (half of those as hangs that
// only a per-attempt timeout can unstick), a resilient BestEffort run must
// produce exactly the clean run's rules, counts and aggregates on every
// dataset, with no window lost.
func TestChaosConvergesToCleanRun(t *testing.T) {
	gens := map[string]func(datasets.Options) *graph.Graph{
		"wwc2019":       datasets.WWC2019,
		"twitter":       datasets.Twitter,
		"cybersecurity": datasets.Cybersecurity,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			g := gen(datasets.DefaultOptions())

			clean, err := Mine(g, Config{Model: llm.NewSim(llm.LLaMA3(), 1), Parallel: 4})
			if err != nil {
				t.Fatal(err)
			}

			faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
				Seed:          42,
				TransientRate: 0.35,
				HangRate:      0.5,
				Hang:          5 * time.Second,
			})
			chaotic, err := Mine(g, Config{
				Model:         faulty,
				Parallel:      4,
				FailurePolicy: BestEffort,
				Resilience: resilience.Config{
					Retries:     3,
					CallTimeout: 100 * time.Millisecond,
					Seed:        1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			if st := faulty.Stats(); st.Transients == 0 {
				t.Error("chaos harness injected no transient faults; the test is vacuous")
			}
			if len(chaotic.WindowErrors) != 0 {
				t.Errorf("transient-only faults must all be retried away, got %d window errors: %v",
					len(chaotic.WindowErrors), chaotic.WindowErrors[0].Err)
			}
			if got, want := ruleFingerprint(chaotic), ruleFingerprint(clean); got != want {
				t.Errorf("chaotic run diverged from clean run:\nclean:\n%s\nchaotic:\n%s", want, got)
			}
			if chaotic.Resilience == nil || chaotic.Resilience.Retry == nil {
				t.Fatal("resilience stats missing")
			}
			if chaotic.Resilience.Retry.Retries == 0 {
				t.Error("no retries recorded despite injected transients")
			}
		})
	}
}

// TestChaosCancellation cancels a run whose model hangs on every prompt
// and requires MineCtx to return ctx.Err() promptly without leaking the
// window workers.
func TestChaosCancellation(t *testing.T) {
	g := wwc(t)
	faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
		Seed:          7,
		TransientRate: 1,
		HangRate:      1,
		Hang:          30 * time.Second,
		MaxTransient:  3,
	})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := MineCtx(ctx, g, Config{Model: faulty, Parallel: 4, FailurePolicy: BestEffort})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; hung completions were not interrupted", elapsed)
	}
	// The window workers are joined before MineCtx returns, so the
	// goroutine count must settle back to the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestChaosPermanentFailures drives windows into unrecoverable errors and
// checks both failure policies: BestEffort mines from the survivors while
// reporting every lost window with its attempt count, FailFast aborts
// with an error that names all failed windows, not just the first.
func TestChaosPermanentFailures(t *testing.T) {
	g := wwc(t)
	newFaulty := func() *llm.FaultyModel {
		return llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
			Seed:          11,
			PermanentRate: 0.3,
		})
	}
	res := resilience.Config{Retries: 2, Seed: 1}

	best, err := Mine(g, Config{
		Model: newFaulty(), FailurePolicy: BestEffort, Resilience: res,
	})
	if err != nil {
		t.Fatalf("best effort should survive partial failure: %v", err)
	}
	if len(best.WindowErrors) == 0 {
		t.Fatal("no window errors recorded; PermanentRate had no effect")
	}
	for _, we := range best.WindowErrors {
		if we.Err == nil {
			t.Errorf("window %d: nil error recorded", we.Window)
		}
		// Permanent faults are not transient, so the retry layer must
		// not burn its budget on them: exactly one attempt each.
		if we.Attempts != 1 {
			t.Errorf("window %d: attempts = %d, want 1 (permanent errors are not retried)", we.Window, we.Attempts)
		}
	}
	if len(best.Rules) == 0 {
		t.Error("surviving windows produced no rules")
	}

	_, err = Mine(g, Config{Model: newFaulty(), Resilience: res}) // FailFast default
	if err == nil {
		t.Fatal("fail-fast run should error")
	}
	if n := strings.Count(err.Error(), "window "); n < 2 {
		t.Errorf("fail-fast error should name every failed window, found %d mention(s): %v", n, err)
	}
}

// TestChaosRetryExhaustion under-provisions the retry budget relative to
// the fault schedule and checks lost windows report how many attempts
// were burned before giving up.
func TestChaosRetryExhaustion(t *testing.T) {
	g := wwc(t)
	faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
		Seed:          13,
		TransientRate: 0.3,
		MaxTransient:  3, // up to 3 consecutive transients, but only 2 attempts below
	})
	res, err := Mine(g, Config{
		Model:         faulty,
		FailurePolicy: BestEffort,
		Resilience:    resilience.Config{Retries: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WindowErrors) == 0 {
		t.Fatal("expected some windows to exhaust their 2 attempts")
	}
	for _, we := range res.WindowErrors {
		if we.Attempts != 2 {
			t.Errorf("window %d: attempts = %d, want 2 (retry exhausted)", we.Window, we.Attempts)
		}
	}
}

// TestChaosBestEffortFloor sets a success floor no run can meet and
// checks BestEffort gives up with the joined window errors.
func TestChaosBestEffortFloor(t *testing.T) {
	g := wwc(t)
	faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
		Seed:          11,
		PermanentRate: 0.3,
	})
	_, err := Mine(g, Config{
		Model:            faulty,
		FailurePolicy:    BestEffort,
		MinWindowSuccess: 1.0,
	})
	if err == nil || !strings.Contains(err.Error(), "best effort abandoned") {
		t.Fatalf("err = %v, want best-effort floor failure", err)
	}
}

// TestChaosGarbageDegradesGracefully feeds the pipeline only corrupted
// completions: nothing parses, but nothing errors either — the run ends
// with zero rules instead of a crash.
func TestChaosGarbageDegradesGracefully(t *testing.T) {
	g := wwc(t)
	faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
		Seed:        3,
		GarbageRate: 1,
	})
	res, err := Mine(g, Config{Model: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 0 || res.Aggregate.Rules != 0 {
		t.Errorf("fully garbled run mined %d rules, want 0", len(res.Rules))
	}
	if st := faulty.Stats(); st.Garbage == 0 {
		t.Error("no garbage injected; the test is vacuous")
	}
}

// TestChaosBreakerTransitions checks the run's Result surfaces the
// breaker's state history when failures trip it.
func TestChaosBreakerTransitions(t *testing.T) {
	g := wwc(t)
	faulty := llm.NewFaulty(llm.NewSim(llm.LLaMA3(), 1), llm.FaultConfig{
		Seed:          5,
		PermanentRate: 0.4,
	})
	res, err := Mine(g, Config{
		Model:         faulty,
		FailurePolicy: BestEffort,
		Resilience: resilience.Config{
			BreakerFailures: 2,
			BreakerCooldown: time.Nanosecond, // re-probe immediately: no window starves
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience == nil || res.Resilience.Breaker == nil {
		t.Fatal("breaker stats missing from result")
	}
	tr := res.Resilience.Breaker.Transitions
	if len(tr) < 2 {
		t.Fatalf("transitions = %v, want the breaker to open at least once and recover", tr)
	}
	sawOpen := false
	for _, x := range tr {
		if x.To == resilience.BreakerOpen {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Errorf("no transition to open in %v", tr)
	}
}

// switchModel wraps a model and fails every completion matching a prompt
// predicate once armed; it stays transparent to the rule-budget lookup
// via Unwrap.
type switchModel struct {
	inner llm.Model
	armed atomic.Bool
	match func(string) bool
}

func (m *switchModel) Name() string      { return m.inner.Name() }
func (m *switchModel) Unwrap() llm.Model { return m.inner }

func (m *switchModel) Complete(p string) (llm.Response, error) {
	if m.armed.Load() && m.match(p) {
		return llm.Response{}, errors.New("backend down")
	}
	return m.inner.Complete(p)
}

// TestChaosTranslationFailureBestEffort fails only the step-2 translation
// prompts: under BestEffort the affected rules stay in the result with
// TranslateErr set and no score, and the run still aggregates the rest.
func TestChaosTranslationFailureBestEffort(t *testing.T) {
	m := &switchModel{
		inner: llm.NewSim(llm.LLaMA3(), 1),
		match: func(p string) bool { return strings.HasPrefix(p, "Translate the following") },
	}
	m.armed.Store(true)
	res, err := Mine(wwc(t), Config{Model: m, FailurePolicy: BestEffort})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) == 0 {
		t.Fatal("mined no rules")
	}
	for _, mr := range res.Rules {
		if mr.TranslateErr == nil {
			t.Errorf("rule %q: expected a translation error", mr.NL)
		}
		if mr.Score.Rule != nil {
			t.Errorf("rule %q: scored despite failed translation", mr.NL)
		}
	}
	if res.CypherTotal != 0 || res.Aggregate.Rules != 0 {
		t.Errorf("cypherTotal=%d aggRules=%d, want 0/0", res.CypherTotal, res.Aggregate.Rules)
	}

	// FailFast keeps the old contract: the first translation failure
	// aborts the run.
	if _, err := Mine(wwc(t), Config{Model: m}); err == nil || !strings.Contains(err.Error(), "translation") {
		t.Errorf("fail-fast translation error = %v", err)
	}
}

// TestSessionRefineAtomicity flips the model into a failing state between
// rounds and checks a failed Refine leaves the session exactly as it was.
func TestSessionRefineAtomicity(t *testing.T) {
	m := &switchModel{
		inner: llm.NewSim(llm.LLaMA3(), 1),
		match: func(string) bool { return true },
	}
	s, err := NewSession(wwc(t), Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pending()) < 2 {
		t.Fatalf("need at least 2 pending rules, got %d", len(s.Pending()))
	}
	if err := s.Accept(s.Pending()[0].Rule.DedupKey()); err != nil {
		t.Fatal(err)
	}
	if err := s.Reject(s.Pending()[0].Rule.DedupKey()); err != nil {
		t.Fatal(err)
	}
	rounds := s.Rounds()
	accepted := s.Accepted()
	pending := s.Pending()
	current := s.current

	m.armed.Store(true)
	if _, err := s.Refine(); err == nil {
		t.Fatal("refine with a dead model should error")
	}

	if s.Rounds() != rounds {
		t.Errorf("rounds changed: %d -> %d", rounds, s.Rounds())
	}
	if s.current != current {
		t.Error("current round replaced despite failed refine")
	}
	if got := s.Accepted(); len(got) != len(accepted) || got[0].Rule.DedupKey() != accepted[0].Rule.DedupKey() {
		t.Error("accepted set changed")
	}
	if got := s.Pending(); len(got) != len(pending) {
		t.Errorf("pending changed: %d -> %d", len(pending), len(got))
	}

	// The failure is recoverable: disarm and the next Refine succeeds.
	m.armed.Store(false)
	if _, err := s.Refine(); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != rounds+1 {
		t.Errorf("rounds = %d, want %d", s.Rounds(), rounds+1)
	}
}
