package prompt

import (
	"reflect"
	"strings"
	"testing"
)

func TestRuleGenerationWithExclusions(t *testing.T) {
	rejected := []string{
		"Each User node should have a unique id property.",
		"A node should not have a FOLLOWS relationship to itself.",
	}
	p := RuleGenerationWithExclusions(FewShot, "graph body", rejected)
	if !IsRuleGeneration(p) || !IsFewShot(p) {
		t.Error("refinement prompt lost its markers")
	}
	if !strings.Contains(p, "rejected the following rules") {
		t.Error("exclusion header missing")
	}
	if ExtractGraphText(p) != "graph body" {
		t.Errorf("graph text = %q", ExtractGraphText(p))
	}
	got := ExtractExclusions(p)
	if !reflect.DeepEqual(got, rejected) {
		t.Errorf("ExtractExclusions = %v, want %v", got, rejected)
	}
}

func TestExtractExclusionsAbsent(t *testing.T) {
	if got := ExtractExclusions(RuleGeneration(ZeroShot, "g")); got != nil {
		t.Errorf("no exclusions expected, got %v", got)
	}
	if got := ExtractExclusions("random text"); got != nil {
		t.Errorf("foreign text should have no exclusions, got %v", got)
	}
}

func TestExclusionsDoNotLeakIntoGraphText(t *testing.T) {
	p := RuleGenerationWithExclusions(ZeroShot, "Node 1 with labels X has no properties.",
		[]string{"Each X node should have a id property."})
	gt := ExtractGraphText(p)
	if strings.Contains(gt, "rejected") {
		t.Errorf("graph text contaminated: %q", gt)
	}
}
